package msc

import (
	"msc/internal/gen/rgg"
	"msc/internal/gen/social"
	"msc/internal/geom"
	"msc/internal/mobility"
	"msc/internal/netbuild"
)

// This file exposes the workload generators behind the paper's evaluation
// (§VII-A): random geometric graphs, Gowalla-style location-based social
// networks, and RPGM tactical mobility traces.

// Generator configuration and result types.
type (
	// RGGConfig parameterizes a Random Geometric graph in the unit square.
	RGGConfig = rgg.Config
	// SocialConfig parameterizes a synthetic location-based social
	// network (clustered venues, proximity links).
	SocialConfig = social.Config
	// SocialNetwork is a generated location-based social network.
	SocialNetwork = social.Network
	// MobilityConfig parameterizes an RPGM mobility trace.
	MobilityConfig = mobility.Config
	// MobilityTrace is a node-position time series with group structure.
	MobilityTrace = mobility.Trace
	// FailureModel maps link distance to failure probability (failure
	// proportional to distance, §VII-A3).
	FailureModel = netbuild.FailureModel
	// Point is a 2-D position.
	Point = geom.Point
)

// GenerateRGG draws a Random Geometric graph: n nodes uniform in the unit
// square, linked within cfg.Radius, failures proportional to distance.
func GenerateRGG(cfg RGGConfig, rng *Rand) (*Graph, error) {
	return rgg.Generate(cfg, rng)
}

// GenerateSocial draws a Gowalla-style location-based social network per
// cfg; DefaultSocialConfig mirrors the scale of the paper's Austin
// subgraph (134 users, ~1.9k proximity links).
func GenerateSocial(cfg SocialConfig, rng *Rand) (*SocialNetwork, error) {
	return social.Generate(cfg, rng)
}

// DefaultSocialConfig returns the paper-scale social workload parameters.
func DefaultSocialConfig() SocialConfig { return social.DefaultConfig() }

// ScaledSocialConfig scales the paper's Gowalla-subgraph parameters to a
// target user count at constant check-in density: venues grow with users
// and the downtown area with √users, while radio and venue physics stay
// fixed. ScaledSocialConfig(134) equals DefaultSocialConfig(); pair it
// with the bounded distance backend for city-scale instances.
func ScaledSocialConfig(users int) SocialConfig { return social.ScaledConfig(users) }

// GenerateMobilityTrace draws a Reference Point Group Mobility trace
// (groups following leaders, members jittering around them), the synthetic
// surrogate for the tactical traces of §VII-A2.
func GenerateMobilityTrace(cfg MobilityConfig, rng *Rand) (*MobilityTrace, error) {
	return mobility.Generate(cfg, rng)
}

// DefaultMobilityConfig returns the tactical-trace-scale parameters
// (7 groups, 90 nodes).
func DefaultMobilityConfig() MobilityConfig { return mobility.DefaultConfig() }

// ProximityGraph builds the wireless graph over node positions: one link
// per pair within fm.Radius, with distance-proportional failure.
func ProximityGraph(pts []Point, fm FailureModel) (*Graph, error) {
	return netbuild.Proximity(pts, fm)
}
