// Package msc maintains social connections in wireless networks by placing
// reliable "shortcut" links, implementing Qiu, Ma & Cao, "Maintaining
// Social Connections through Direct Link Placement in Wireless Networks"
// (ICDCS 2019).
//
// # The problem
//
// A wireless network is an undirected graph whose links fail independently
// with known probabilities. Among all node pairs, a set S of m important
// social pairs (commander↔squad leaders, control center↔rescue teams) must
// stay connected: each pair needs some path whose end-to-end failure
// probability is at most a threshold p_t. When the raw network cannot
// provide that, up to k reliable zero-failure links (satellite or UAV
// links — "shortcut edges") may be added anywhere. The MSC problem asks
// for the placement of at most k shortcuts maximizing the number of
// maintained pairs. It is NP-hard, and its objective σ is not submodular.
//
// # Quick start
//
//	b := msc.NewGraphBuilder(4)
//	b.AddEdge(0, 1, msc.LengthFromProb(0.3))
//	b.AddEdge(1, 2, msc.LengthFromProb(0.3))
//	b.AddEdge(2, 3, msc.LengthFromProb(0.3))
//	g, _ := b.Build()
//	ps, _ := msc.NewPairSet(4, []msc.Pair{{U: 0, W: 3}, {U: 1, W: 3}, {U: 0, W: 2}})
//	inst, _ := msc.NewInstance(g, ps, msc.NewThreshold(0.25), 1, nil)
//	res := msc.Sandwich(inst)
//	fmt.Println(res.Best) // placed shortcuts and maintained pairs
//
// # Algorithms
//
//   - Sandwich (AA): the paper's approximation algorithm — greedy runs on
//     two submodular bounds μ ≤ σ ≤ ν plus σ itself, best-of-three, with a
//     data-dependent approximation guarantee (Eq. 5).
//   - GreedySigma / GreedyMu / GreedyNu: the individual arms.
//   - SolveCommonNode: the (1−1/e) max-coverage greedy for the MSC-CN
//     special case where all pairs share a node (§IV).
//   - EA: the GSEMO-style evolutionary algorithm (Algorithm 1).
//   - AEA: the adaptive evolutionary algorithm (Algorithm 2).
//   - RandomPlacement: the best-of-R random baseline.
//   - Exhaustive: exact optimum by enumeration (small instances).
//
// All algorithms accept the Problem interface, so they run unchanged on
// dynamic networks (a series of topologies sharing one placement, §VI) via
// NewDynamicProblem.
//
// This facade re-exports the library's core types; the heavy lifting lives
// in the internal packages (see DESIGN.md for the map).
package msc

import (
	"context"
	"io"
	"time"

	"msc/internal/core"
	"msc/internal/dynamic"
	"msc/internal/failprob"
	"msc/internal/graph"
	"msc/internal/pairs"
	"msc/internal/shortestpath"
	"msc/internal/telemetry"
	"msc/internal/xrand"
)

// Core model types.
type (
	// Graph is an immutable weighted undirected network; edge lengths are
	// −ln(1−p_fail). Build with NewGraphBuilder.
	Graph = graph.Graph
	// GraphBuilder accumulates edges and produces a Graph.
	GraphBuilder = graph.Builder
	// Edge is an undirected edge or shortcut, canonical with U < V.
	Edge = graph.Edge
	// NodeID identifies a node (dense ids 0..N-1).
	NodeID = graph.NodeID
	// Pair is an important social pair.
	Pair = pairs.Pair
	// PairSet is a validated set of important social pairs.
	PairSet = pairs.Set
	// Threshold is the connectivity requirement in both its probability
	// (p_t) and distance (d_t) forms.
	Threshold = failprob.Threshold
	// DistanceSource abstracts shortest-path access: a dense DistanceTable,
	// a LazyDistanceTable, or a BoundedDistanceTable; InstanceOptions.Table
	// accepts any of them.
	DistanceSource = shortestpath.DistanceSource
	// DistanceTable is an eagerly materialized all-pairs shortest-path
	// table.
	DistanceTable = shortestpath.Table
	// LazyDistanceTable computes Dijkstra rows on demand and memoizes them
	// in a sharded, concurrency-safe cache; construction is O(1) instead
	// of n Dijkstras.
	LazyDistanceTable = shortestpath.LazyTable
	// LazyTableOptions tune a LazyDistanceTable (row cap, shard count).
	LazyTableOptions = shortestpath.LazyOptions
	// BoundedDistanceTable computes bounded-reach Dijkstra rows on demand
	// and stores them sparsely: per-row memory scales with the d_t-ball,
	// not with n. Distances beyond the reach read +Inf — exact for any
	// consumer that only compares distances against a threshold ≤ reach,
	// which is all the MSC solvers ever do.
	BoundedDistanceTable = shortestpath.BoundedTable
	// BoundedTableOptions tune a BoundedDistanceTable (reach, row cap,
	// shard count, ALT landmark count).
	BoundedTableOptions = shortestpath.BoundedOptions
	// SparseDistanceRow is a compact (node, distance) distance row as
	// returned by BoundedDistanceTable.SparseRow; absent nodes read +Inf.
	SparseDistanceRow = shortestpath.SparseRow
	// DistBackend selects the distance backend an instance builds when no
	// table is supplied: BackendAuto, BackendDense, BackendLazy, or
	// BackendBounded.
	DistBackend = core.DistBackend
	// EvalMode selects how searches maintain their state across Add
	// commits: EvalIncremental or EvalRebuild.
	EvalMode = core.EvalMode
	// Survivability selects the failure model an instance optimizes
	// against: SurviveNone, SurviveShortcut, or SurviveNode.
	Survivability = core.Survivability
	// CostModel selects how candidate shortcuts are priced under a
	// knapsack budget: CostUnit, CostLength, or CostTable.
	CostModel = core.CostModel
	// Rand is the deterministic randomness source used by the randomized
	// algorithms and generators.
	Rand = xrand.Rand
)

// Problem-and-solver types.
type (
	// Instance is a single-topology MSC instance.
	Instance = core.Instance
	// InstanceOptions tune instance construction.
	InstanceOptions = core.Options
	// Problem abstracts single-topology and dynamic instances.
	Problem = core.Problem
	// Search is the incremental σ evaluator used by custom heuristics.
	Search = core.Search
	// Placement is a set of shortcut edges with its σ value.
	Placement = core.Placement
	// SandwichResult reports the approximation algorithm with its bound.
	SandwichResult = core.SandwichResult
	// CommonNodeResult reports the MSC-CN greedy.
	CommonNodeResult = core.CommonNodeResult
	// EAOptions tune EA; EAResult reports it.
	EAOptions = core.EAOptions
	// EAResult reports an EA run.
	EAResult = core.EAResult
	// AEAOptions tune AEA; AEAResult reports it.
	AEAOptions = core.AEAOptions
	// AEAResult reports an AEA run.
	AEAResult = core.AEAResult
	// DynamicProblem evaluates one placement against a topology series.
	DynamicProblem = dynamic.Problem
	// Option configures a solver entry point (e.g. Parallelism).
	Option = core.Option
	// ParallelSearch is a Search whose candidate scans shard across
	// workers after SetWorkers, with results identical to a serial scan.
	ParallelSearch = core.ParallelSearch
	// StopReason classifies why a solver run ended.
	StopReason = core.StopReason
	// StopInfo reports how a run ended (reason, rounds, σ); solvers attach
	// it to Placement.Stop.
	StopInfo = core.StopInfo
	// ShardPanicError is the typed panic value a failing parallel-scan
	// shard surfaces on the caller's goroutine.
	ShardPanicError = core.ShardPanicError
	// InputError reports a structurally invalid solver argument.
	InputError = core.InputError
	// WorstCaseProblem extends Problem with the worst-case objective σ⁻
	// of survivable instances.
	WorstCaseProblem = core.WorstCaseProblem
	// BudgetProblem extends Problem with the knapsack budget and candidate
	// prices of budget-weighted instances (InstanceOptions.Budget).
	BudgetProblem = core.BudgetProblem
	// Checkpoint snapshots a resumable EA/AEA run at an iteration
	// boundary; see EAOptions.Resume / AEAOptions.Resume.
	Checkpoint = telemetry.CheckpointEvent
	// CheckpointSolution is one archived solution inside a Checkpoint.
	CheckpointSolution = telemetry.CheckpointSolution
)

// Stop reasons attached to Placement.Stop by supervised solver runs.
const (
	StopConverged  = core.StopConverged
	StopDeadline   = core.StopDeadline
	StopCanceled   = core.StopCanceled
	StopEvalBudget = core.StopEvalBudget
)

// Distance backends selectable via InstanceOptions.DistBackend. BackendAuto
// (the zero value) picks dense below DefaultLazyThreshold nodes, lazy from
// there up to DefaultBoundedThreshold, and bounded at or above; placements
// and σ/μ/ν are identical across backends.
const (
	BackendAuto    = core.BackendAuto
	BackendDense   = core.BackendDense
	BackendLazy    = core.BackendLazy
	BackendBounded = core.BackendBounded
	// DefaultLazyThreshold is the BackendAuto dense→lazy switchover.
	DefaultLazyThreshold = core.DefaultLazyThreshold
	// DefaultBoundedThreshold is the BackendAuto lazy→bounded switchover.
	DefaultBoundedThreshold = core.DefaultBoundedThreshold
)

// Evaluation modes selectable via InstanceOptions.EvalMode. EvalModeAuto
// (the zero value) resolves to EvalIncremental — O(n) row merges and delta
// gains rescans when a search commits a shortcut — unless
// SetDefaultEvalMode installed a different default; EvalRebuild restores
// the full-recompute reference path. Placements, σ values, and gains
// arrays are identical across modes.
const (
	EvalModeAuto    = core.EvalModeAuto
	EvalIncremental = core.EvalIncremental
	EvalRebuild     = core.EvalRebuild
)

// Survivability modes selectable via InstanceOptions.Survive. SurviveAuto
// (the zero value) resolves to SurviveNone unless SetDefaultSurvivability
// installed a different default. Under SurviveShortcut or SurviveNode the
// solvers maximize the worst-case σ⁻ over all single shortcut or node
// failures, breaking ties by fault-free σ; see DESIGN.md §11.
const (
	SurviveAuto     = core.SurviveAuto
	SurviveNone     = core.SurviveNone
	SurviveShortcut = core.SurviveShortcut
	SurviveNode     = core.SurviveNode
)

// Cost models selectable via InstanceOptions.CostModel. CostModelAuto (the
// zero value) resolves to CostUnit unless SetDefaultCostModel installed a
// different default. A knapsack budget B (InstanceOptions.Budget) replaces
// the cardinality budget k whenever any budget option is set; unit-cost
// runs with B = k are bit-for-bit identical to cardinality-k runs. See
// DESIGN.md §12.
const (
	CostModelAuto = core.CostModelAuto
	CostUnit      = core.CostUnit
	CostLength    = core.CostLength
	CostTable     = core.CostTable
)

// Parallelism fixes the number of candidate-scan workers a solver may use:
// 1 restores the fully serial code path, n <= 0 (or omitting the option)
// selects the package default. Placements are identical for every worker
// count — the parallel scans reduce deterministically (see DESIGN.md).
func Parallelism(n int) Option { return core.Parallelism(n) }

// SetDefaultParallelism sets the worker count used by solvers given no
// explicit Parallelism option; n <= 0 restores the GOMAXPROCS default.
func SetDefaultParallelism(n int) { core.SetDefaultParallelism(n) }

// WithContext makes a solver run cancelable: when ctx is canceled the
// solver stops at its next supervision point and returns the best
// feasible placement found so far, with Placement.Stop reporting why and
// how far it got. A nil or never-canceled context changes nothing — the
// placement is bit-identical to an unsupervised run.
func WithContext(ctx context.Context) Option { return core.WithContext(ctx) }

// WithDeadline bounds a solver run's wall-clock time; d <= 0 means no
// deadline. Combines with WithContext (whichever fires first stops the
// run).
func WithDeadline(d time.Duration) Option { return core.WithDeadline(d) }

// NewRandFromState rebuilds a Rand at a previously captured (seed, draws)
// state; used by checkpoint resume. See Rand.State.
func NewRandFromState(seed int64, draws uint64) *Rand { return xrand.NewFromState(seed, draws) }

// LastCheckpoint scans a telemetry JSONL stream (e.g. the file written by
// mscplace -checkpoint) and returns its final checkpoint event, from
// which an EA or AEA run can resume.
func LastCheckpoint(r io.Reader) (*Checkpoint, error) { return telemetry.LastCheckpoint(r) }

// NewGraphBuilder returns a builder for a network with n nodes.
func NewGraphBuilder(n int) *GraphBuilder { return graph.NewBuilder(n) }

// LengthFromProb converts a link failure probability p ∈ [0, 1) to the
// edge length −ln(1−p) used by Graph.
func LengthFromProb(p float64) float64 { return failprob.LengthFromProb(p) }

// ProbFromLength converts a path length back to its failure probability.
func ProbFromLength(l float64) float64 { return failprob.ProbFromLength(l) }

// NewThreshold builds the connectivity requirement from a failure
// probability bound p_t ∈ [0, 1).
func NewThreshold(pt float64) Threshold { return failprob.NewThreshold(pt) }

// NewPairSet validates and builds the important social pairs for an
// n-node network.
func NewPairSet(n int, ps []Pair) (*PairSet, error) { return pairs.NewSet(n, ps) }

// NewDistanceTable precomputes all-pairs shortest paths; share it across
// instances with different thresholds via InstanceOptions.Table.
func NewDistanceTable(g *Graph) *DistanceTable { return shortestpath.NewTable(g, 0) }

// NewLazyDistanceTable wraps g in an on-demand distance source: rows are
// computed by Dijkstra on first use and memoized. Share it across
// instances via InstanceOptions.Table when n is large and only a sparse
// set of rows will ever be read.
func NewLazyDistanceTable(g *Graph, opts LazyTableOptions) *LazyDistanceTable {
	return shortestpath.NewLazyTable(g, opts)
}

// NewBoundedDistanceTable wraps g in a bounded-reach sparse distance
// source: rows hold only the nodes within opts.Reach of the source, and
// everything beyond reads +Inf. Share it across instances whose d_t is at
// most the reach via InstanceOptions.Table.
func NewBoundedDistanceTable(g *Graph, opts BoundedTableOptions) (*BoundedDistanceTable, error) {
	return shortestpath.NewBoundedTable(g, opts)
}

// RowBytesResident reports the bytes of distance-row payload currently
// resident across every row cache in the process (lazy dense rows, bounded
// sparse rows, materialized dense rows, landmark potentials) — the
// msc_row_bytes_resident gauge as a plain value.
func RowBytesResident() int64 { return shortestpath.RowBytesResident() }

// SetDefaultDistBackend sets the distance backend used by instances built
// with BackendAuto; BackendAuto restores the node-threshold rule. Wired to
// the -dist-backend flag of mscplace and mscbench.
func SetDefaultDistBackend(b DistBackend) { core.SetDefaultDistBackend(b) }

// SetDefaultLandmarks sets the ALT landmark count bounded-backend
// instances build when InstanceOptions.Landmarks is 0; 0 restores the
// built-in default, negative disables landmarks. Wired to the -landmarks
// flag of mscplace and mscbench.
func SetDefaultLandmarks(k int) { core.SetDefaultLandmarks(k) }

// ParseDistBackend validates a -dist-backend flag value ("auto", "dense",
// "lazy", "bounded").
func ParseDistBackend(s string) (DistBackend, error) { return core.ParseDistBackend(s) }

// SetDefaultEvalMode sets the evaluation mode used by instances built with
// EvalModeAuto; EvalModeAuto restores the incremental default. Wired to
// the -eval flag of mscplace and mscbench.
func SetDefaultEvalMode(m EvalMode) { core.SetDefaultEvalMode(m) }

// ParseEvalMode validates an -eval flag value ("auto", "incremental",
// "rebuild").
func ParseEvalMode(s string) (EvalMode, error) { return core.ParseEvalMode(s) }

// SetDefaultSurvivability sets the failure model used by instances built
// with SurviveAuto; SurviveAuto restores the fault-free default. Wired to
// the -survive flag of mscplace and mscbench.
func SetDefaultSurvivability(m Survivability) { core.SetDefaultSurvivability(m) }

// ParseSurvivability validates a -survive flag value ("auto", "none",
// "shortcut", "node").
func ParseSurvivability(s string) (Survivability, error) { return core.ParseSurvivability(s) }

// WithSurvivability returns instance options selecting the failure model
// the objective must survive — shorthand for the common
// NewInstance(..., &InstanceOptions{Survive: mode}) call.
func WithSurvivability(mode Survivability) *InstanceOptions {
	return &InstanceOptions{Survive: mode}
}

// WithBudget returns instance options replacing the cardinality budget k
// with a knapsack budget B priced by the given cost model — shorthand for
// the common NewInstance(..., &InstanceOptions{Budget: b, CostModel: m})
// call.
func WithBudget(b float64, m CostModel) *InstanceOptions {
	return &InstanceOptions{Budget: b, CostModel: m}
}

// SetDefaultCostModel sets the cost model used by budgeted instances built
// with CostModelAuto; CostModelAuto restores the unit default. Wired to the
// -cost-model flag of mscplace and mscbench.
func SetDefaultCostModel(m CostModel) { core.SetDefaultCostModel(m) }

// SetDefaultBudget sets the knapsack budget applied to instances built
// without explicit budget options; 0 restores cardinality placement. Wired
// to the -budget flag of mscbench.
func SetDefaultBudget(b float64) { core.SetDefaultBudget(b) }

// ParseCostModel validates a -cost-model flag value ("auto", "unit",
// "length", "table").
func ParseCostModel(s string) (CostModel, error) { return core.ParseCostModel(s) }

// NumCandidatesFor returns the size n(n−1)/2 of the candidate-shortcut
// universe of an n-node instance — the length InstanceOptions.Costs must
// have.
func NumCandidatesFor(n int) int { return core.NumCandidatesFor(n) }

// CandidateIndexFor returns the candidate index of the shortcut edge e in
// an n-node instance's enumeration; use it to address InstanceOptions.Costs
// entries by endpoint pair.
func CandidateIndexFor(n int, e Edge) int { return core.CandidateIndexFor(n, e) }

// SampleViolatingPairs randomly picks m pairs whose current best path
// violates the distance threshold — the paper's evaluation setup
// (§VII-A3).
func SampleViolatingPairs(t DistanceSource, thr Threshold, m int, rng *Rand) (*PairSet, error) {
	return pairs.SampleViolating(t, thr.D, m, rng)
}

// SampleViolatingPairsRandom draws m distinct threshold-violating pairs
// by rejection sampling point distance queries instead of enumerating
// all ~n²/2 candidates — same uniform distribution over violating pairs
// as SampleViolatingPairs, but each trial costs one Dist call, so it
// composes with the lazy and bounded backends at 10⁴–10⁶ nodes. It fails
// after 1000·m unproductive draws, the regime where violating pairs are
// rare and the exhaustive sampler is the right tool.
func SampleViolatingPairsRandom(t DistanceSource, thr Threshold, m int, rng *Rand) (*PairSet, error) {
	return pairs.SampleViolatingRandom(t, thr.D, m, rng, 0)
}

// NewInstance validates and builds a single-topology MSC instance with
// shortcut budget k. opts may be nil.
func NewInstance(g *Graph, ps *PairSet, thr Threshold, k int, opts *InstanceOptions) (*Instance, error) {
	return core.NewInstance(g, ps, thr, k, opts)
}

// NewDynamicProblem bundles per-time-instance MSC instances into a dynamic
// problem (§VI): one placement, objective Σ_i σ_i.
func NewDynamicProblem(insts []*Instance) (*DynamicProblem, error) {
	return dynamic.NewProblem(insts)
}

// NewRand returns a deterministic randomness source for the randomized
// algorithms; equal seeds reproduce runs exactly.
func NewRand(seed int64) *Rand { return xrand.New(seed) }

// Sandwich runs the paper's approximation algorithm (AA): best of the
// greedy placements for μ, σ, and ν, with the data-dependent bound of
// Eq. (5).
func Sandwich(p Problem, opts ...Option) SandwichResult { return core.Sandwich(p, opts...) }

// GreedySigma greedily maximizes σ directly (the F_σ arm).
func GreedySigma(p Problem, opts ...Option) Placement { return core.GreedySigma(p, opts...) }

// GreedyMu greedily maximizes the submodular lower bound μ.
func GreedyMu(p Problem) Placement { return core.GreedyMu(p) }

// GreedyNu greedily maximizes the submodular upper bound ν.
func GreedyNu(p Problem) Placement { return core.GreedyNu(p) }

// SolveCommonNode runs the (1−1/e)-approximate max-coverage greedy for
// instances whose pairs all share a common node (MSC-CN, §IV).
func SolveCommonNode(inst *Instance) (CommonNodeResult, error) {
	return core.SolveCommonNode(inst)
}

// EA runs the evolutionary algorithm of §V-C (Algorithm 1).
func EA(p Problem, opts EAOptions, rng *Rand) EAResult { return core.EA(p, opts, rng) }

// AEA runs the adaptive evolutionary algorithm of §V-D (Algorithm 2).
func AEA(p Problem, opts AEAOptions, rng *Rand) AEAResult { return core.AEA(p, opts, rng) }

// DefaultAEAOptions mirror the paper's evaluation settings (r=500, l=10,
// δ=0.05).
func DefaultAEAOptions() AEAOptions { return core.DefaultAEAOptions() }

// RandomPlacement returns the best of `trials` uniform random placements —
// the baseline of §VII-C. It rejects trials < 1 and budgets exceeding the
// candidate universe with a typed *InputError.
func RandomPlacement(p Problem, trials int, rng *Rand, opts ...Option) (Placement, error) {
	return core.RandomPlacement(p, trials, rng, opts...)
}

// Exhaustive computes the exact optimum by enumeration; exponential, for
// small instances (maxEvals caps the σ evaluations).
func Exhaustive(p Problem, maxEvals int, opts ...Option) (Placement, error) {
	return core.Exhaustive(p, maxEvals, opts...)
}

// ExhaustiveBudget computes the exact optimal budget-feasible placement of
// a budgeted problem by enumerating every selection whose total cost fits
// the budget; exponential, for small instances (maxEvals caps the σ
// evaluations).
func ExhaustiveBudget(p Problem, maxEvals int, opts ...Option) (Placement, error) {
	return core.ExhaustiveBudget(p, maxEvals, opts...)
}

// SelectionEdges converts a solver's candidate-index selection to edges.
func SelectionEdges(p Problem, sel []int) []Edge { return core.SelectionEdges(p, sel) }

// Diagnostics and refinement (library extensions beyond the paper).
type (
	// PairStatus is the per-pair diagnostic of a placement.
	PairStatus = core.PairStatus
	// PlacementSummary condenses pair statuses into counts.
	PlacementSummary = core.Summary
	// LocalSearchOptions tune the swap-refinement pass.
	LocalSearchOptions = core.LocalSearchOptions
)

// Report evaluates a placement pair by pair: failure probability before
// and after, whether the pair is maintained, and whether a shortcut is
// responsible.
func Report(inst *Instance, sel []int) []PairStatus { return inst.Report(sel) }

// SummarizeReport aggregates pair statuses into counts.
func SummarizeReport(statuses []PairStatus) PlacementSummary { return core.Summarize(statuses) }

// FormatReport renders pair statuses as an aligned table, worst first.
func FormatReport(statuses []PairStatus) string { return core.FormatReport(statuses) }

// GreedySigmaCurve returns σ after each successive greedy shortcut
// (curve[0] = baseline): the marginal value of every unit of budget.
func GreedySigmaCurve(p Problem, opts ...Option) []int { return core.GreedySigmaCurve(p, opts...) }

// LocalSearch refines a placement by best-improvement (drop, add) swaps
// until a swap-local optimum; it never returns a worse placement.
func LocalSearch(p Problem, start []int, opts LocalSearchOptions) Placement {
	return core.LocalSearch(p, start, opts)
}

// Telemetry (see internal/telemetry and the DESIGN.md telemetry section):
// work counters accumulated by the solver stack, and typed trace events
// streamed to a sink. A nil sink is free; attaching one never changes any
// placement.
type (
	// TelemetrySink receives trace events; nil means telemetry off.
	TelemetrySink = telemetry.Sink
	// TelemetryEvent is one typed trace event.
	TelemetryEvent = telemetry.Event
	// JSONLSink serializes events as one JSON object per line.
	JSONLSink = telemetry.JSONLSink
	// AtomicJSONLSink is the crash-safe JSONLSink for checkpoint files:
	// every Emit rewrites the file via temp-file + fsync + rename, so the
	// on-disk stream is never torn mid-line.
	AtomicJSONLSink = telemetry.AtomicJSONLSink
	// FanoutSink multiplexes one event stream to attached sinks and live
	// channel subscribers (the ops server's /events stream).
	FanoutSink = telemetry.FanoutSink
	// RingSink keeps the last N events for flight-recorder dumps.
	RingSink = telemetry.RingSink
	// RoundEvent traces one committed solver round.
	RoundEvent = telemetry.RoundEvent
	// SandwichEvent summarizes the three sandwich arms and the bound.
	SandwichEvent = telemetry.SandwichEvent
	// DynamicStepEvent traces one committed shortcut on a dynamic problem.
	DynamicStepEvent = telemetry.DynamicStepEvent
	// RunRecord is the schema-stable end-of-run summary the commands emit.
	RunRecord = telemetry.RunRecord
	// CounterSnapshot is a point-in-time copy of the work counters.
	CounterSnapshot = telemetry.CounterSnapshot
)

// NewJSONLSink returns a sink writing one JSON object per event line to w;
// Emit is safe for concurrent use and the first write error is sticky
// (check Err after the run).
func NewJSONLSink(w io.Writer) *JSONLSink { return telemetry.NewJSONL(w) }

// NewAtomicJSONLSink returns a crash-safe sink that atomically rewrites
// path on every event (temp file + fsync + rename). Use it for checkpoint
// streams, where a torn final line would scrap the resume; keep
// NewJSONLSink for hot per-round traces.
func NewAtomicJSONLSink(path string) *AtomicJSONLSink { return telemetry.NewAtomicJSONL(path) }

// NewFanoutSink returns an empty event fanout; attach sinks and subscribe
// live consumers, then pass it wherever a TelemetrySink goes.
func NewFanoutSink() *FanoutSink { return telemetry.NewFanout() }

// NewRingSink returns a flight-recorder ring holding the last n events.
func NewRingSink(n int) *RingSink { return telemetry.NewRing(n) }

// WithSink attaches a telemetry sink to a solver entry point; per-round
// trace events stream to it. Placements are byte-identical with and
// without a sink.
func WithSink(s TelemetrySink) Option { return core.WithSink(s) }

// CountersSnapshot copies the process-wide solver work counters (Dijkstra
// runs, edge relaxations, candidate/σ/μ/ν evaluations, overlay activity).
// Snapshot before and after a run and Sub the two to cost it; totals are
// identical at every worker count.
func CountersSnapshot() CounterSnapshot { return telemetry.Global().Snapshot() }

// ResetCounters zeroes the process-wide solver work counters.
func ResetCounters() { telemetry.Global().Reset() }
