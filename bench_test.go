// Benchmarks regenerating every table and figure of the paper's evaluation
// (§VII), plus ablations for the design decisions called out in DESIGN.md.
//
// Run the full suite (several minutes — Fig 5(a) alone runs 30-topology
// dynamic instances at paper scale):
//
//	go test -bench=. -benchmem
//
// Each experiment bench reports the regenerated rows/series through the
// custom metric "sigma_total" (sum of all series values) so regressions in
// solution quality show up alongside time/allocs.
package msc_test

import (
	"fmt"
	"math"
	"runtime"
	"testing"

	"msc"
	"msc/internal/experiments"
	"msc/internal/maxcover"
	"msc/internal/shortestpath"
	"msc/internal/xrand"
)

func benchCfg() experiments.Config { return experiments.Config{Seed: 1} }

func sumTable(t *experiments.Table) float64 {
	total := 0.0
	for _, r := range t.Rows {
		for _, c := range r.Cells {
			total += c
		}
	}
	return total
}

func sumFigs(figs ...*experiments.Figure) float64 {
	total := 0.0
	for _, f := range figs {
		for _, s := range f.Series {
			for _, y := range s.Y {
				total += y
			}
		}
	}
	return total
}

// BenchmarkTable1RatioRGG regenerates Table I: the sandwich bound ratio
// σ(F_σ)/ν(F_σ) on the Random Geometric graph (n=100, m=17).
func BenchmarkTable1RatioRGG(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		last = sumTable(benchCfg().Table1())
	}
	b.ReportMetric(last, "sigma_total")
}

// BenchmarkTable2RatioGowalla regenerates Table II on the Gowalla-style
// network (n≈134, m=63).
func BenchmarkTable2RatioGowalla(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		last = sumTable(benchCfg().Table2())
	}
	b.ReportMetric(last, "sigma_total")
}

// BenchmarkFig1Placement regenerates Fig. 1: AA vs random placement on a
// geometric instance.
func BenchmarkFig1Placement(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		res := benchCfg().Fig1()
		last = float64(res.AA.Sigma - res.Random.Sigma)
	}
	b.ReportMetric(last, "aa_minus_random")
}

// BenchmarkFig2AAvsRandom regenerates Fig. 2 (both datasets).
func BenchmarkFig2AAvsRandom(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		last = sumFigs(benchCfg().Fig2()...)
	}
	b.ReportMetric(last, "sigma_total")
}

// BenchmarkFig3Algorithms regenerates Fig. 3: AA vs EA vs AEA across k
// (r=500, l=10, δ=0.05).
func BenchmarkFig3Algorithms(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		last = sumFigs(benchCfg().Fig3()...)
	}
	b.ReportMetric(last, "sigma_total")
}

// BenchmarkFig4Convergence regenerates Fig. 4: solution quality as a
// function of the iteration count r.
func BenchmarkFig4Convergence(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		last = sumFigs(benchCfg().Fig4()...)
	}
	b.ReportMetric(last, "sigma_total")
}

// BenchmarkFig5aDynamic regenerates Fig. 5(a): dynamic networks across k
// (n=50, m=30, T=30). The heaviest experiment in the suite.
func BenchmarkFig5aDynamic(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		last = sumFigs(benchCfg().Fig5a())
	}
	b.ReportMetric(last, "sigma_total")
}

// BenchmarkFig5bDynamicT regenerates Fig. 5(b): dynamic networks across T.
func BenchmarkFig5bDynamicT(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		last = sumFigs(benchCfg().Fig5b())
	}
	b.ReportMetric(last, "sigma_total")
}

// ---------------------------------------------------------------------------
// Ablations.

// benchInstance builds a paper-scale RGG instance for the ablations.
func benchInstance(b *testing.B, k int) *msc.Instance {
	b.Helper()
	rng := msc.NewRand(99)
	g, err := msc.GenerateRGG(msc.RGGConfig{
		N: 100, Radius: 0.18, FailureAtRadius: 0.08, RequireConnected: true,
	}, rng)
	if err != nil {
		b.Fatal(err)
	}
	table := msc.NewDistanceTable(g)
	thr := msc.NewThreshold(0.14)
	ps, err := msc.SampleViolatingPairs(table, thr, 80, rng)
	if err != nil {
		b.Fatal(err)
	}
	inst, err := msc.NewInstance(g, ps, thr, k, &msc.InstanceOptions{
		AllowTrivial: true, Table: table,
	})
	if err != nil {
		b.Fatal(err)
	}
	return inst
}

// BenchmarkOracleSigma measures σ evaluation through the terminal
// metric-closure overlay (the design choice of DESIGN.md §4.1)...
func BenchmarkOracleSigma(b *testing.B) {
	inst := benchInstance(b, 8)
	rng := msc.NewRand(5)
	sel := rng.SampleDistinct(inst.NumCandidates(), 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = inst.Sigma(sel)
	}
}

// BenchmarkNaiveSigma is the baseline: σ via fresh Dijkstras on the
// materialized augmented graph, one per pair source.
func BenchmarkNaiveSigma(b *testing.B) {
	inst := benchInstance(b, 8)
	rng := msc.NewRand(5)
	sel := rng.SampleDistinct(inst.NumCandidates(), 8)
	edges := msc.SelectionEdges(inst, sel)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count := 0
		for _, p := range inst.Pairs().Pairs() {
			dist := shortestpath.AugmentedDistances(inst.Graph(), edges, p.U)
			if dist[p.W] <= inst.Threshold().D {
				count++
			}
		}
		_ = count
	}
}

// BenchmarkLazyGreedyCoverage measures CELF lazy greedy on the μ coverage
// problem (4950 candidate sets over 80 pairs)...
func BenchmarkLazyGreedyCoverage(b *testing.B) {
	inst := benchInstance(b, 10)
	prob := inst.MuProblem()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = maxcover.LazyGreedy(prob)
	}
}

// BenchmarkPlainGreedyCoverage is the baseline: plain greedy re-evaluating
// every candidate's marginal each round.
func BenchmarkPlainGreedyCoverage(b *testing.B) {
	inst := benchInstance(b, 10)
	prob := inst.MuProblem()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = maxcover.Greedy(prob)
	}
}

// BenchmarkEAMutationBinomial measures EA's mutation via binomial
// flip-count sampling (O(expected flips) per mutation).
func BenchmarkEAMutationBinomial(b *testing.B) {
	rng := xrand.New(3)
	const numCand = 4950
	for i := 0; i < b.N; i++ {
		flips := rng.Binomial(numCand, 1.0/numCand)
		if flips > 0 {
			_ = rng.SampleDistinct(numCand, flips)
		}
	}
}

// BenchmarkEAMutationPerBit is the baseline: one Bernoulli draw per
// candidate bit.
func BenchmarkEAMutationPerBit(b *testing.B) {
	rng := xrand.New(3)
	const numCand = 4950
	for i := 0; i < b.N; i++ {
		for c := 0; c < numCand; c++ {
			if rng.Bernoulli(1.0 / numCand) {
				_ = c
			}
		}
	}
}

// BenchmarkAEADelta sweeps the exploration parameter δ and reports the
// achieved σ, quantifying the randomization/greediness trade-off the
// paper's §V-D discusses.
func BenchmarkAEADelta(b *testing.B) {
	for _, delta := range []float64{0, 0.05, 0.2, 0.5} {
		b.Run(deltaName(delta), func(b *testing.B) {
			inst := benchInstance(b, 8)
			var sigma int
			for i := 0; i < b.N; i++ {
				res := msc.AEA(inst, msc.AEAOptions{
					Iterations: 200, PopSize: 10, Delta: delta,
				}, msc.NewRand(17))
				sigma = res.Best.Sigma
			}
			b.ReportMetric(float64(sigma), "sigma")
		})
	}
}

// BenchmarkAEASeedGreedy compares AEA's random seeding (paper) against the
// greedy-seeded extension, which guarantees AEA ≥ the F_σ arm.
func BenchmarkAEASeedGreedy(b *testing.B) {
	for _, seedGreedy := range []bool{false, true} {
		name := "random_seed"
		if seedGreedy {
			name = "greedy_seed"
		}
		b.Run(name, func(b *testing.B) {
			inst := benchInstance(b, 8)
			var sigma int
			for i := 0; i < b.N; i++ {
				res := msc.AEA(inst, msc.AEAOptions{
					Iterations: 200, PopSize: 10, Delta: 0.05, SeedGreedy: seedGreedy,
				}, msc.NewRand(17))
				sigma = res.Best.Sigma
			}
			b.ReportMetric(float64(sigma), "sigma")
		})
	}
}

// BenchmarkGreedySigmaParallel measures the parallel candidate-scan engine
// on a 200-node RGG (19900 candidate shortcuts, 150 pairs): GreedySigma at
// Parallelism(1) — the exact serial code path — versus GOMAXPROCS workers.
// Placements are identical at every worker count (the engine's determinism
// contract); only wall-clock time differs. Compare the two sub-benchmarks'
// ns/op for the speedup; on a single-core host they coincide.
func BenchmarkGreedySigmaParallel(b *testing.B) {
	rng := msc.NewRand(99)
	g, err := msc.GenerateRGG(msc.RGGConfig{
		N: 200, Radius: 0.13, FailureAtRadius: 0.08, RequireConnected: true,
	}, rng)
	if err != nil {
		b.Fatal(err)
	}
	table := msc.NewDistanceTable(g)
	thr := msc.NewThreshold(0.14)
	ps, err := msc.SampleViolatingPairs(table, thr, 150, rng)
	if err != nil {
		b.Fatal(err)
	}
	inst, err := msc.NewInstance(g, ps, thr, 8, &msc.InstanceOptions{
		AllowTrivial: true, Table: table,
	})
	if err != nil {
		b.Fatal(err)
	}
	legs := []struct {
		name    string
		workers int
	}{
		{"par1_serial", 1},
		{fmt.Sprintf("par%d_gomaxprocs", runtime.GOMAXPROCS(0)), runtime.GOMAXPROCS(0)},
		// The forced leg measures sharding overhead when the host has
		// fewer cores than workers (pure cost, no speedup available).
		{"par8_forced", 8},
	}
	for _, leg := range legs {
		if leg.workers == 1 && leg.name != "par1_serial" {
			continue // GOMAXPROCS = 1: the gomaxprocs leg duplicates serial
		}
		workers := leg.workers
		b.Run(leg.name, func(b *testing.B) {
			var sigma int
			for i := 0; i < b.N; i++ {
				sigma = msc.GreedySigma(inst, msc.Parallelism(workers)).Sigma
			}
			b.ReportMetric(float64(sigma), "sigma")
		})
	}
}

func deltaName(d float64) string {
	if d == 0 {
		return "delta_0"
	}
	return "delta_0p" + trimFloat(d)
}

func trimFloat(d float64) string {
	v := int(math.Round(d * 100))
	digits := []byte{byte('0' + v/10), byte('0' + v%10)}
	return string(digits)
}

// BenchmarkExt1Baselines regenerates the extension experiment: MSC-aware
// placement vs the all-pairs baselines of references [7] and [8].
func BenchmarkExt1Baselines(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		last = sumFigs(benchCfg().Ext1()...)
	}
	b.ReportMetric(last, "sigma_total")
}

// BenchmarkExt2Delivery regenerates the end-to-end delivery validation:
// discrete-event simulation of a tactical operation under placements of
// increasing budget.
func BenchmarkExt2Delivery(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		last = sumFigs(benchCfg().Ext2())
	}
	b.ReportMetric(last, "sigma_total")
}

// BenchmarkExt3Prediction regenerates the prediction-robustness extension:
// placements planned on dead-reckoned topologies graded against reality.
func BenchmarkExt3Prediction(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		last = sumFigs(benchCfg().Ext3())
	}
	b.ReportMetric(last, "sigma_total")
}

// BenchmarkExt4Weighted regenerates the importance-weights extension:
// weight-aware vs weight-blind placement under a weighted objective.
func BenchmarkExt4Weighted(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		last = sumFigs(benchCfg().Ext4())
	}
	b.ReportMetric(last, "sigma_total")
}
