// Quickstart: build a small wireless network, mark the social pairs that
// matter, and let the sandwich approximation algorithm place reliable
// shortcut links.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"msc"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A 10-node multihop network shaped like two clusters joined by one
	// lossy relay chain. Link failure probabilities are per-transmission.
	//
	//   0-1-2          7-8-9
	//   |X|     3-4-5-6    |X|        (clusters are dense and reliable,
	//   cluster A  chain   cluster B   the chain is long and lossy)
	b := msc.NewGraphBuilder(10)
	addLink := func(u, v msc.NodeID, pFail float64) {
		b.AddEdge(u, v, msc.LengthFromProb(pFail))
	}
	// Cluster A: nodes 0, 1, 2 — short reliable links.
	addLink(0, 1, 0.02)
	addLink(1, 2, 0.02)
	addLink(0, 2, 0.03)
	// Relay chain 2-3-4-5-6-7: each hop fails 15% of the time.
	for u := msc.NodeID(2); u < 7; u++ {
		addLink(u, u+1, 0.15)
	}
	// Cluster B: nodes 7, 8, 9.
	addLink(7, 8, 0.02)
	addLink(8, 9, 0.02)
	addLink(7, 9, 0.03)
	g, err := b.Build()
	if err != nil {
		return err
	}

	// Three cross-cluster social pairs must stay connected with failure
	// probability at most 25%. The raw chain fails ≈ 1-(0.85)^5 ≈ 56%.
	ps, err := msc.NewPairSet(10, []msc.Pair{
		{U: 0, W: 9},
		{U: 1, W: 8},
		{U: 2, W: 7},
	})
	if err != nil {
		return err
	}
	thr := msc.NewThreshold(0.25)

	// Budget: one satellite link.
	inst, err := msc.NewInstance(g, ps, thr, 1, nil)
	if err != nil {
		return err
	}

	fmt.Printf("before placement: %d/%d pairs meet p_t=%.2f\n",
		inst.BaseSigma(), ps.Len(), thr.P)

	res := msc.Sandwich(inst)
	fmt.Printf("after placing %d shortcut(s): %d/%d pairs maintained\n",
		len(res.Best.Edges), res.Best.Sigma, ps.Len())
	for _, e := range res.Best.Edges {
		fmt.Printf("  shortcut: node %d <-> node %d (reliable link)\n", e.U, e.V)
	}
	fmt.Printf("guarantee: ≥ %.2f × optimal (sandwich bound, Eq. 5)\n", res.ApproxFactor)

	// Validate the promise by simulation: sample link failures and check
	// that each maintained pair's best path succeeds ≥ 75% of the time.
	nw, err := msc.NewSimNetwork(g, res.Best.Edges)
	if err != nil {
		return err
	}
	sim, err := msc.SimulateDelivery(nw, ps.Pairs(), 20000, msc.NewRand(42))
	if err != nil {
		return err
	}
	fmt.Println("delivery simulation (20000 trials):")
	for _, r := range sim {
		fmt.Printf("  pair %v: best-path %.1f%% (predicted %.1f%%), any-path %.1f%%\n",
			r.Pair, 100*r.BestPath, 100*r.PredictedBestPath, 100*r.AnyPath)
	}
	return nil
}
