// Battlefield: a platoon of squads moves across terrain; the commander
// must keep squad-to-squad command links alive while the topology churns —
// the dynamic-network setting of the paper (§VI).
//
// The scenario generates a Reference Point Group Mobility trace (squads
// following leaders), snapshots it into a topology series, marks the
// violated command pairs at each time instance, and places one set of
// reliable links (e.g., SATCOM terminals pairing two radios) that serves
// the WHOLE operation: the objective is Σ_i σ_i across all time instances.
//
// Run with:
//
//	go run ./examples/battlefield
package main

import (
	"fmt"
	"log"

	"msc"
)

const (
	squads     = 7
	soldiers   = 49
	horizonT   = 12   // predicted time instances
	pairsPerT  = 12   // command links needing maintenance per instance
	budget     = 3    // reliable link kits available
	pThreshold = 0.10 // per-message failure bound
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rng := msc.NewRand(7)

	cfg := msc.DefaultMobilityConfig()
	cfg.Groups = squads
	cfg.Nodes = soldiers
	cfg.Steps = horizonT
	trace, err := msc.GenerateMobilityTrace(cfg, rng)
	if err != nil {
		return err
	}

	radio := msc.FailureModel{Radius: 700, FailureAtRadius: 0.25}
	thr := msc.NewThreshold(pThreshold)

	// One MSC instance per predicted time instance, each with its own
	// violated command pairs.
	insts := make([]*msc.Instance, 0, horizonT)
	for t := 0; t < trace.T(); t++ {
		g, err := trace.Snapshot(t, radio)
		if err != nil {
			return err
		}
		table := msc.NewDistanceTable(g)
		ps, err := msc.SampleViolatingPairs(table, thr, pairsPerT, rng)
		if err != nil {
			return fmt.Errorf("t=%d: %w", t, err)
		}
		inst, err := msc.NewInstance(g, ps, thr, budget,
			&msc.InstanceOptions{Table: table})
		if err != nil {
			return err
		}
		insts = append(insts, inst)
	}
	prob, err := msc.NewDynamicProblem(insts)
	if err != nil {
		return err
	}
	total := prob.MaxSigma()
	fmt.Printf("operation: %d soldiers in %d squads, %d time instances\n",
		soldiers, squads, horizonT)
	fmt.Printf("command links to maintain: %d (%d per instance), budget %d reliable links\n\n",
		total, pairsPerT, budget)

	aa := msc.Sandwich(prob)
	fmt.Printf("sandwich algorithm:   %d/%d maintained across the operation\n", aa.Best.Sigma, total)

	aeaOpts := msc.DefaultAEAOptions()
	aeaOpts.Iterations = 300
	aea := msc.AEA(prob, aeaOpts, rng)
	fmt.Printf("adaptive evolutionary: %d/%d maintained\n", aea.Best.Sigma, total)

	rnd, err := msc.RandomPlacement(prob, 300, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("random baseline:       %d/%d maintained\n\n", rnd.Sigma, total)

	best := aa.Best
	if aea.Best.Sigma > best.Sigma {
		best = aea.Best
	}
	fmt.Println("chosen reliable links (soldier radio pairs):")
	for _, e := range best.Edges {
		fmt.Printf("  squad %d soldier %d <-> squad %d soldier %d\n",
			trace.GroupOf[e.U], e.U, trace.GroupOf[e.V], e.V)
	}
	perT := prob.SigmaPerInstance(best.Selection)
	fmt.Println("\nmaintained per time instance:")
	for t, s := range perT {
		fmt.Printf("  t=%2d: %2d/%d\n", t, s, pairsPerT)
	}

	// Close the loop: replay the whole operation in the discrete-event
	// simulator and measure how many command messages actually arrive,
	// with and without the chosen reliable links.
	tp, err := msc.NewTraceTopology(trace, radio)
	if err != nil {
		return err
	}
	// Message traffic between the t=0 command pairs, every 30 s.
	flows := msc.PeriodicFlows(insts[0].Pairs().Pairs(), 30)
	duration := cfg.StepSeconds * float64(horizonT)
	simulate := func(shortcuts []msc.Edge) (float64, error) {
		res, err := msc.RunDeliverySim(msc.DeliverySimConfig{
			Topology:        tp,
			Shortcuts:       shortcuts,
			Flows:           flows,
			DurationSeconds: duration,
			HopSeconds:      0.5,
			MaxRetries:      1,
			Seed:            99,
		})
		if err != nil {
			return 0, err
		}
		return res.DeliveryRatio, nil
	}
	before, err := simulate(nil)
	if err != nil {
		return err
	}
	after, err := simulate(best.Edges)
	if err != nil {
		return err
	}
	fmt.Printf("\nsimulated message delivery across the operation:\n")
	fmt.Printf("  without reliable links: %.1f%%\n", 100*before)
	fmt.Printf("  with the %d placed links: %.1f%%\n", len(best.Edges), 100*after)
	return nil
}
