// Gowalla: maintain friendships in a location-based social network — the
// paper's real-world workload (§VII-A1). Users check in around a downtown
// area; users within radio range (200 m) can relay for each other, with
// link failure growing with distance. Important social pairs are the
// friendships whose current relay paths are too unreliable.
//
// By default the example generates a synthetic Gowalla-style network
// (clustered check-ins at venues — the structure that makes one shortcut
// between two venues maintain several friendships at once). Given the real
// SNAP files it uses them instead:
//
//	go run ./examples/gowalla
//	go run ./examples/gowalla -checkins Gowalla_totalCheckins.txt -edges Gowalla_edges.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"msc"
	"msc/internal/gen/social"
	"msc/internal/pairs"
)

const (
	pThreshold = 0.25
	budget     = 5
	numPairs   = 40
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		checkins = flag.String("checkins", "", "SNAP Gowalla_totalCheckins.txt (optional)")
		edges    = flag.String("edges", "", "SNAP Gowalla_edges.txt (optional)")
	)
	flag.Parse()

	rng := msc.NewRand(11)
	g, friendPairs, err := loadOrGenerate(*checkins, *edges, rng)
	if err != nil {
		return err
	}
	fmt.Printf("network: %d users, %d proximity links\n", g.N(), g.M())

	thr := msc.NewThreshold(pThreshold)
	table := msc.NewDistanceTable(g)

	// Prefer real friendships that currently violate the threshold; fall
	// back to random violating pairs when no friendship list exists.
	ps, err := violatingPairs(table, thr, friendPairs, g.N(), rng)
	if err != nil {
		return err
	}
	inst, err := msc.NewInstance(g, ps, thr, budget, &msc.InstanceOptions{
		Table:        table,
		AllowTrivial: true,
	})
	if err != nil {
		return err
	}

	fmt.Printf("important pairs: %d friendships with delivery failure > %.0f%%\n",
		ps.Len(), 100*thr.P)
	fmt.Printf("budget: %d reliable links\n\n", budget)

	res := msc.Sandwich(inst)
	rnd, err := msc.RandomPlacement(inst, 500, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sandwich algorithm: %d/%d friendships maintained\n", res.Best.Sigma, ps.Len())
	fmt.Printf("random baseline:    %d/%d\n\n", rnd.Sigma, ps.Len())

	fmt.Println("placed links:")
	for _, e := range res.Best.Edges {
		fmt.Printf("  %s <-> %s\n", g.Label(e.U), g.Label(e.V))
	}
	fmt.Printf("\nper-shortcut leverage: %.1f friendships maintained per link\n",
		float64(res.Best.Sigma)/float64(max(1, len(res.Best.Edges))))
	return nil
}

func loadOrGenerate(checkinsPath, edgesPath string, rng *msc.Rand) (*msc.Graph, []msc.Pair, error) {
	if checkinsPath != "" {
		cf, err := os.Open(checkinsPath)
		if err != nil {
			return nil, nil, err
		}
		defer cf.Close()
		var friendships io.Reader
		if edgesPath != "" {
			ef, err := os.Open(edgesPath)
			if err != nil {
				return nil, nil, err
			}
			defer ef.Close()
			friendships = ef
		}
		loaded, err := social.Load(cf, friendships, social.AustinEvening, 200, 0.45)
		if err != nil {
			return nil, nil, err
		}
		friends := make([]msc.Pair, 0, len(loaded.Friends))
		for _, f := range loaded.Friends {
			friends = append(friends, msc.Pair{U: f[0], W: f[1]})
		}
		return loaded.Graph, friends, nil
	}
	net, err := msc.GenerateSocial(msc.DefaultSocialConfig(), rng)
	if err != nil {
		return nil, nil, err
	}
	// Synthetic friendships: mostly within venues, some across.
	friends := syntheticFriendships(net, rng)
	return net.Graph, friends, nil
}

// syntheticFriendships draws friendships biased toward shared venues.
func syntheticFriendships(net *msc.SocialNetwork, rng *msc.Rand) []msc.Pair {
	n := net.Graph.N()
	seen := map[msc.Pair]bool{}
	var out []msc.Pair
	for len(out) < 6*n {
		u := msc.NodeID(rng.Intn(n))
		w := msc.NodeID(rng.Intn(n))
		if u == w {
			continue
		}
		sameVenue := net.VenueOf[u] >= 0 && net.VenueOf[u] == net.VenueOf[w]
		// Friends are 8× likelier inside a venue.
		keepProb := 0.08
		if sameVenue {
			keepProb = 0.64
		}
		if !rng.Bernoulli(keepProb) {
			continue
		}
		p := msc.Pair{U: u, W: w}
		if p.U > p.W {
			p.U, p.W = p.W, p.U
		}
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}

// violatingPairs picks up to numPairs violating friendships (or random
// violating pairs when friendships are empty).
func violatingPairs(table *msc.DistanceTable, thr msc.Threshold, friends []msc.Pair, n int, rng *msc.Rand) (*msc.PairSet, error) {
	var violating []msc.Pair
	for _, p := range friends {
		if table.Dist(p.U, p.W) > thr.D {
			violating = append(violating, p)
		}
	}
	if len(violating) >= numPairs {
		rng.Shuffle(len(violating), func(i, j int) {
			violating[i], violating[j] = violating[j], violating[i]
		})
		return msc.NewPairSet(n, dedupe(violating[:numPairs]))
	}
	return msc.SampleViolatingPairs(table, thr, numPairs, rng)
}

func dedupe(ps []msc.Pair) []msc.Pair {
	seen := map[msc.Pair]bool{}
	out := ps[:0]
	for _, p := range ps {
		c := pairs.New(p.U, p.W)
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
