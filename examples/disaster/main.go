// Disaster recovery: a control center must maintain connections to every
// rescue team spread across a damaged area — the MSC-CN special case of
// the paper (§IV), where all important pairs share a common node and the
// (1−1/e)-approximate max-coverage greedy applies.
//
// The scenario builds a random geometric network over the operations area
// (links degrade with distance — debris, interference), marks the control
// center ↔ team-leader pairs, and compares the specialized common-node
// greedy against the general sandwich algorithm and the random baseline.
//
// Run with:
//
//	go run ./examples/disaster
package main

import (
	"fmt"
	"log"

	"msc"
)

const (
	nodes      = 70   // responders in the field
	teams      = 14   // team leaders the center must reach
	budget     = 4    // satellite uplinks available
	pThreshold = 0.12 // required delivery failure bound
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rng := msc.NewRand(2026)

	// The operations area: responders scattered over the unit square,
	// radio range 0.25, links failing proportionally to distance.
	g, err := msc.GenerateRGG(msc.RGGConfig{
		N:                nodes,
		Radius:           0.25,
		FailureAtRadius:  0.12,
		RequireConnected: true,
	}, rng)
	if err != nil {
		return err
	}

	// Node 0 is the control center. Team leaders are the responders whose
	// current link quality to the center is WORST — exactly the
	// connections that need help.
	table := msc.NewDistanceTable(g)
	thr := msc.NewThreshold(pThreshold)
	leaders := worstConnected(table, 0, teams)
	pairList := make([]msc.Pair, len(leaders))
	for i, w := range leaders {
		pairList[i] = msc.Pair{U: 0, W: w}
	}
	ps, err := msc.NewPairSet(nodes, pairList)
	if err != nil {
		return err
	}
	inst, err := msc.NewInstance(g, ps, thr, budget, nil)
	if err != nil {
		return err
	}
	fmt.Printf("control center must reach %d team leaders with failure ≤ %.0f%%\n",
		teams, 100*thr.P)
	fmt.Printf("before placement: %d/%d connections meet the bound\n\n",
		inst.BaseSigma(), teams)

	// The common-node greedy (Theorem 5: ≥ (1−1/e) of optimal).
	cn, err := msc.SolveCommonNode(inst)
	if err != nil {
		return err
	}
	fmt.Printf("MSC-CN greedy (all shortcuts uplink to the center):\n")
	fmt.Printf("  maintained %d/%d with %d uplinks\n", cn.Placement.Sigma, teams, len(cn.Placement.Edges))
	for _, e := range cn.Placement.Edges {
		fmt.Printf("  uplink: center <-> responder %d\n", other(e, 0))
	}

	// The general algorithms for comparison: shortcuts may land anywhere.
	aa := msc.Sandwich(inst)
	rnd, err := msc.RandomPlacement(inst, 500, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ngeneral sandwich algorithm: maintained %d/%d\n", aa.Best.Sigma, teams)
	fmt.Printf("random baseline (best of 500): maintained %d/%d\n", rnd.Sigma, teams)

	// Validate the center's links by simulation.
	nw, err := msc.NewSimNetwork(g, cn.Placement.Edges)
	if err != nil {
		return err
	}
	sim, err := msc.SimulateDelivery(nw, ps.Pairs(), 5000, rng)
	if err != nil {
		return err
	}
	ok := 0
	for _, r := range sim {
		if r.BestPath >= 1-thr.P-0.02 { // 2% simulation slack
			ok++
		}
	}
	fmt.Printf("\nsimulation check: %d/%d maintained pairs deliver within the bound\n",
		ok, teams)
	return nil
}

// worstConnected returns the `count` nodes with the largest shortest-path
// distance from src (ties by id).
func worstConnected(t *msc.DistanceTable, src msc.NodeID, count int) []msc.NodeID {
	type nd struct {
		v msc.NodeID
		d float64
	}
	row := t.Row(src)
	all := make([]nd, 0, len(row))
	for v, d := range row {
		if msc.NodeID(v) != src {
			all = append(all, nd{v: msc.NodeID(v), d: d})
		}
	}
	// Selection sort of the top `count` — n is tiny.
	for i := 0; i < count && i < len(all); i++ {
		maxJ := i
		for j := i + 1; j < len(all); j++ {
			if all[j].d > all[maxJ].d {
				maxJ = j
			}
		}
		all[i], all[maxJ] = all[maxJ], all[i]
	}
	out := make([]msc.NodeID, count)
	for i := range out {
		out[i] = all[i].v
	}
	return out
}

func other(e msc.Edge, center msc.NodeID) msc.NodeID {
	if e.U == center {
		return e.V
	}
	return e.U
}
