module msc

go 1.22
