package msc_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"msc"
)

// buildQuickstartGraph mirrors examples/quickstart: two reliable clusters
// joined by a lossy chain.
func buildQuickstartGraph(t *testing.T) *msc.Graph {
	t.Helper()
	b := msc.NewGraphBuilder(10)
	add := func(u, v msc.NodeID, p float64) { b.AddEdge(u, v, msc.LengthFromProb(p)) }
	add(0, 1, 0.02)
	add(1, 2, 0.02)
	add(0, 2, 0.03)
	for u := msc.NodeID(2); u < 7; u++ {
		add(u, u+1, 0.15)
	}
	add(7, 8, 0.02)
	add(8, 9, 0.02)
	add(7, 9, 0.03)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestEndToEndPlacementFlow(t *testing.T) {
	g := buildQuickstartGraph(t)
	ps, err := msc.NewPairSet(10, []msc.Pair{{U: 0, W: 9}, {U: 1, W: 8}, {U: 2, W: 7}})
	if err != nil {
		t.Fatal(err)
	}
	thr := msc.NewThreshold(0.25)
	inst, err := msc.NewInstance(g, ps, thr, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if inst.BaseSigma() != 0 {
		t.Fatalf("baseline σ = %d, want 0 (chain too lossy)", inst.BaseSigma())
	}
	res := msc.Sandwich(inst)
	if res.Best.Sigma != 3 {
		t.Fatalf("one shortcut should maintain all 3 pairs, got %d", res.Best.Sigma)
	}
	if len(res.Best.Edges) != 1 {
		t.Fatalf("placed %d edges, want 1", len(res.Best.Edges))
	}
	// The guarantee factor is in (0, 1−1/e].
	if res.ApproxFactor <= 0 || res.ApproxFactor > 1-1/math.E+1e-12 {
		t.Fatalf("approx factor = %v", res.ApproxFactor)
	}

	// Validate the delivery promise end-to-end by simulation.
	nw, err := msc.NewSimNetwork(g, res.Best.Edges)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := msc.SimulateDelivery(nw, ps.Pairs(), 20000, msc.NewRand(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range sim {
		if r.PredictedBestPath < 1-thr.P {
			t.Fatalf("pair %v predicted %v < 1-p_t", r.Pair, r.PredictedBestPath)
		}
		if math.Abs(r.BestPath-r.PredictedBestPath) > 0.02 {
			t.Fatalf("pair %v: simulated %v vs predicted %v", r.Pair, r.BestPath, r.PredictedBestPath)
		}
		if r.AnyPath < r.BestPath {
			t.Fatalf("pair %v: any-path < best-path", r.Pair)
		}
	}
}

func TestTrivialInstanceRejected(t *testing.T) {
	g := buildQuickstartGraph(t)
	ps, err := msc.NewPairSet(10, []msc.Pair{{U: 0, W: 9}})
	if err != nil {
		t.Fatal(err)
	}
	// m=1 ≤ k=2: trivial per §III-C.
	if _, err := msc.NewInstance(g, ps, msc.NewThreshold(0.2), 2, nil); err == nil {
		t.Fatal("expected trivial-instance rejection")
	}
	// Explicitly allowed when opted in.
	if _, err := msc.NewInstance(g, ps, msc.NewThreshold(0.2), 2,
		&msc.InstanceOptions{AllowTrivial: true}); err != nil {
		t.Fatal(err)
	}
}

func TestGeneratorsThroughFacade(t *testing.T) {
	rng := msc.NewRand(5)
	g, err := msc.GenerateRGG(msc.RGGConfig{N: 40, Radius: 0.3, FailureAtRadius: 0.1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 40 {
		t.Fatalf("rgg n = %d", g.N())
	}
	net, err := msc.GenerateSocial(msc.DefaultSocialConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	if net.Graph.N() != 134 {
		t.Fatalf("social n = %d", net.Graph.N())
	}
	cfg := msc.DefaultMobilityConfig()
	cfg.Nodes = 20
	cfg.Steps = 3
	tr, err := msc.GenerateMobilityTrace(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if tr.T() != 3 || tr.N() != 20 {
		t.Fatal("trace shape wrong")
	}
	snap, err := tr.Snapshot(0, msc.FailureModel{Radius: 900, FailureAtRadius: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if snap.N() != 20 {
		t.Fatal("snapshot shape wrong")
	}
}

func TestDynamicThroughFacade(t *testing.T) {
	rng := msc.NewRand(6)
	cfg := msc.DefaultMobilityConfig()
	cfg.Nodes = 21
	cfg.Groups = 3
	cfg.Steps = 3
	tr, err := msc.GenerateMobilityTrace(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	thr := msc.NewThreshold(0.12)
	fm := msc.FailureModel{Radius: 700, FailureAtRadius: 0.25}
	var insts []*msc.Instance
	for i := 0; i < tr.T(); i++ {
		g, err := tr.Snapshot(i, fm)
		if err != nil {
			t.Fatal(err)
		}
		table := msc.NewDistanceTable(g)
		ps, err := msc.SampleViolatingPairs(table, thr, 5, rng)
		if err != nil {
			t.Fatal(err)
		}
		inst, err := msc.NewInstance(g, ps, thr, 2, &msc.InstanceOptions{Table: table})
		if err != nil {
			t.Fatal(err)
		}
		insts = append(insts, inst)
	}
	prob, err := msc.NewDynamicProblem(insts)
	if err != nil {
		t.Fatal(err)
	}
	res := msc.Sandwich(prob)
	if res.Best.Sigma < 0 || res.Best.Sigma > prob.MaxSigma() {
		t.Fatalf("dynamic σ = %d out of range", res.Best.Sigma)
	}
	aea := msc.AEA(prob, msc.AEAOptions{Iterations: 40, PopSize: 4, Delta: 0.1}, rng)
	if len(aea.Best.Edges) != 2 {
		t.Fatal("AEA budget mismatch")
	}
}

func TestInstanceJSONRoundTripThroughFacade(t *testing.T) {
	g := buildQuickstartGraph(t)
	ps, err := msc.NewPairSet(10, []msc.Pair{{U: 0, W: 9}, {U: 1, W: 8}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := msc.WriteInstanceJSON(&buf, g, ps, 0.25, 1); err != nil {
		t.Fatal(err)
	}
	doc, err := msc.ReadInstanceJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := doc.Graph()
	if err != nil {
		t.Fatal(err)
	}
	if g2.M() != g.M() || doc.Budget != 1 || doc.FailureThreshold != 0.25 {
		t.Fatal("round trip lost data")
	}
}

func TestSceneRendering(t *testing.T) {
	rng := msc.NewRand(7)
	g, err := msc.GenerateRGG(msc.RGGConfig{N: 30, Radius: 0.35, FailureAtRadius: 0.1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	table := msc.NewDistanceTable(g)
	ps, err := msc.SampleViolatingPairs(table, msc.NewThreshold(0.1), 4, rng)
	if err != nil {
		t.Skip("no violating pairs on this draw")
	}
	sc := msc.Scene{Graph: g, Pairs: ps, Shortcuts: []msc.Edge{{U: 0, V: 5}}, Title: "facade"}
	var svg bytes.Buffer
	if err := msc.WriteSceneSVG(&svg, sc, msc.SVGOptions{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(svg.String(), "<svg") {
		t.Fatal("not an SVG")
	}
	var ascii bytes.Buffer
	if err := msc.WriteSceneASCII(&ascii, sc); err != nil {
		t.Fatal(err)
	}
	if ascii.Len() == 0 {
		t.Fatal("empty ASCII render")
	}
}

func TestCommonNodeThroughFacade(t *testing.T) {
	g := buildQuickstartGraph(t)
	ps, err := msc.NewPairSet(10, []msc.Pair{{U: 0, W: 9}, {U: 0, W: 7}, {U: 0, W: 8}})
	if err != nil {
		t.Fatal(err)
	}
	inst, err := msc.NewInstance(g, ps, msc.NewThreshold(0.25), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := msc.SolveCommonNode(inst)
	if err != nil {
		t.Fatal(err)
	}
	if res.Common != 0 {
		t.Fatalf("common node = %d", res.Common)
	}
	if res.Placement.Sigma < 1 {
		t.Fatal("common-node greedy maintained nothing")
	}
	for _, e := range res.Placement.Edges {
		if e.U != 0 && e.V != 0 {
			t.Fatalf("shortcut %v not incident to the common node", e)
		}
	}
}

func TestExhaustiveThroughFacade(t *testing.T) {
	g := buildQuickstartGraph(t)
	ps, err := msc.NewPairSet(10, []msc.Pair{{U: 0, W: 9}, {U: 1, W: 8}, {U: 2, W: 7}})
	if err != nil {
		t.Fatal(err)
	}
	inst, err := msc.NewInstance(g, ps, msc.NewThreshold(0.25), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := msc.Exhaustive(inst, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	aa := msc.Sandwich(inst)
	if aa.Best.Sigma > opt.Sigma {
		t.Fatalf("AA %d beats 'optimal' %d", aa.Best.Sigma, opt.Sigma)
	}
	if float64(aa.Best.Sigma) < aa.ApproxFactor*float64(opt.Sigma)-1e-9 {
		t.Fatal("sandwich bound violated")
	}
}

func TestDiagnosticsThroughFacade(t *testing.T) {
	g := buildQuickstartGraph(t)
	ps, err := msc.NewPairSet(10, []msc.Pair{{U: 0, W: 9}, {U: 1, W: 8}, {U: 2, W: 7}})
	if err != nil {
		t.Fatal(err)
	}
	inst, err := msc.NewInstance(g, ps, msc.NewThreshold(0.25), 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	pl := msc.GreedySigma(inst)
	statuses := msc.Report(inst, pl.Selection)
	sum := msc.SummarizeReport(statuses)
	if sum.Maintained != pl.Sigma {
		t.Fatalf("summary maintained %d != σ %d", sum.Maintained, pl.Sigma)
	}
	if out := msc.FormatReport(statuses); !strings.Contains(out, "p_after") {
		t.Fatal("report format missing columns")
	}
	curve := msc.GreedySigmaCurve(inst)
	if curve[len(curve)-1] != pl.Sigma {
		t.Fatalf("curve end %d != greedy σ %d", curve[len(curve)-1], pl.Sigma)
	}
	refined := msc.LocalSearch(inst, pl.Selection, msc.LocalSearchOptions{})
	if refined.Sigma < pl.Sigma {
		t.Fatal("local search worsened the placement")
	}
}

func TestDeliverySimThroughFacade(t *testing.T) {
	g := buildQuickstartGraph(t)
	flows := msc.PeriodicFlows([]msc.Pair{{U: 0, W: 9}}, 1)
	res, err := msc.RunDeliverySim(msc.DeliverySimConfig{
		Topology:        msc.StaticTopology{G: g},
		Shortcuts:       []msc.Edge{{U: 0, V: 9}},
		Flows:           flows,
		DurationSeconds: 100,
		HopSeconds:      0.01,
		Seed:            1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.DeliveryRatio != 1 {
		t.Fatalf("direct shortcut delivery = %v", res.DeliveryRatio)
	}
}
