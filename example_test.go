package msc_test

import (
	"fmt"

	"msc"
)

// ExampleSandwich places one reliable link in a lossy relay chain so that
// all three important pairs meet the failure bound.
func ExampleSandwich() {
	// 0-1-2-3-4: each hop fails 20% of the time.
	b := msc.NewGraphBuilder(5)
	for u := msc.NodeID(0); u < 4; u++ {
		b.AddEdge(u, u+1, msc.LengthFromProb(0.2))
	}
	g, _ := b.Build()
	ps, _ := msc.NewPairSet(5, []msc.Pair{{U: 0, W: 4}, {U: 0, W: 3}, {U: 1, W: 4}})
	inst, _ := msc.NewInstance(g, ps, msc.NewThreshold(0.3), 1, nil)

	res := msc.Sandwich(inst)
	fmt.Printf("maintained %d/3 pairs with %d shortcut\n", res.Best.Sigma, len(res.Best.Edges))
	// Output:
	// maintained 3/3 pairs with 1 shortcut
}

// ExampleGreedySigmaCurve shows the marginal value of each additional
// reliable link: the budget curve a planner reads before buying hardware.
func ExampleGreedySigmaCurve() {
	// Two disconnected islands 0-1 and 2-3, plus isolated nodes 4, 5.
	b := msc.NewGraphBuilder(6)
	b.AddEdge(0, 1, msc.LengthFromProb(0.05))
	b.AddEdge(2, 3, msc.LengthFromProb(0.05))
	g, _ := b.Build()
	ps, _ := msc.NewPairSet(6, []msc.Pair{
		{U: 0, W: 2}, {U: 1, W: 3}, {U: 4, W: 5}, {U: 0, W: 4},
	})
	inst, _ := msc.NewInstance(g, ps, msc.NewThreshold(0.2), 3, nil)

	fmt.Println(msc.GreedySigmaCurve(inst))
	// Output:
	// [0 2 3 4]
}

// ExampleWithSurvivability places links that keep a pair connected even
// through the failure of any single placed shortcut: the survivable
// objective makes the solver buy redundancy a fault-free run would skip.
func ExampleWithSurvivability() {
	// 0-1-2-3-4: each hop fails 20% of the time, so the long-range pairs
	// violate the 30% bound without help.
	b := msc.NewGraphBuilder(5)
	for u := msc.NodeID(0); u < 4; u++ {
		b.AddEdge(u, u+1, msc.LengthFromProb(0.2))
	}
	g, _ := b.Build()
	ps, _ := msc.NewPairSet(5, []msc.Pair{{U: 0, W: 4}, {U: 0, W: 3}, {U: 1, W: 4}})

	plain, _ := msc.NewInstance(g, ps, msc.NewThreshold(0.3), 2, nil)
	hard, _ := msc.NewInstance(g, ps, msc.NewThreshold(0.3), 2,
		msc.WithSurvivability(msc.SurviveShortcut))

	// Fault-free greedy stops after one link; the survivable greedy buys a
	// second, redundant one so a single link failure cannot cut the pairs.
	pp := msc.GreedySigma(plain)
	fmt.Printf("fault-free: %d link(s), pairs kept through a failure: %d/3\n",
		len(pp.Edges), hard.SigmaWorst(pp.Selection))
	hp := msc.GreedySigma(hard)
	fmt.Printf("survivable: %d link(s), pairs kept through a failure: %d/3\n",
		len(hp.Edges), hard.SigmaWorst(hp.Selection))
	// Output:
	// fault-free: 1 link(s), pairs kept through a failure: 0/3
	// survivable: 2 link(s), pairs kept through a failure: 3/3
}

// ExampleGreedySigma_budget replaces the cardinality budget k with a
// knapsack budget B: shortcuts are priced by the connectivity they bridge
// (1 + D0/d_t under CostLength), so the solver weighs cheap nearby links
// against expensive long-haul ones.
func ExampleGreedySigma_budget() {
	// A lossy chain 0-1-2-3-4-5; three pairs of increasing span violate
	// the bound.
	b := msc.NewGraphBuilder(6)
	for u := msc.NodeID(0); u < 5; u++ {
		b.AddEdge(u, u+1, msc.LengthFromProb(0.15))
	}
	g, _ := b.Build()
	ps, _ := msc.NewPairSet(6, []msc.Pair{{U: 0, W: 2}, {U: 3, W: 5}, {U: 0, W: 5}})
	inst, _ := msc.NewInstance(g, ps, msc.NewThreshold(0.2), 1,
		msc.WithBudget(3.5, msc.CostLength))

	pl := msc.GreedySigma(inst)
	fmt.Printf("maintained %d/3 pairs with %d link(s), spent %.2f of B=%.1f\n",
		pl.Sigma, len(pl.Edges), inst.CostOf(pl.Selection), inst.Budget())
	// Output:
	// maintained 2/3 pairs with 2 link(s), spent 3.46 of B=3.5
}

// ExampleSolveCommonNode handles the special case where every important
// pair shares a node (a control center), which reduces to max coverage
// with a (1−1/e) guarantee.
func ExampleSolveCommonNode() {
	// A star of lossy spokes around node 0 plus two remote nodes.
	b := msc.NewGraphBuilder(5)
	b.AddEdge(0, 1, msc.LengthFromProb(0.4))
	b.AddEdge(1, 2, msc.LengthFromProb(0.4))
	b.AddEdge(0, 3, msc.LengthFromProb(0.4))
	b.AddEdge(3, 4, msc.LengthFromProb(0.4))
	g, _ := b.Build()
	ps, _ := msc.NewPairSet(5, []msc.Pair{{U: 0, W: 2}, {U: 0, W: 4}, {U: 0, W: 1}})
	inst, _ := msc.NewInstance(g, ps, msc.NewThreshold(0.45), 1, nil)

	res, _ := msc.SolveCommonNode(inst)
	// One uplink cannot reach both remote spokes: 2/3 is optimal here.
	fmt.Printf("common node %d, maintained %d/3\n", res.Common, res.Placement.Sigma)
	// Output:
	// common node 0, maintained 2/3
}
