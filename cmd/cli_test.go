// Package cmd_test drives the command-line tools end to end through the
// go toolchain: generate an instance, solve it, and render it — the same
// pipeline the README documents.
package cmd_test

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// runTool executes `go run ./cmd/<tool> args...` from the module root.
func runTool(t *testing.T, tool string, args ...string) string {
	t.Helper()
	cmdArgs := append([]string{"run", "./cmd/" + tool}, args...)
	cmd := exec.Command("go", cmdArgs...)
	cmd.Dir = ".." // tests run in cmd/; the module root is one up
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v failed: %v\n%s", tool, args, err, out)
	}
	return string(out)
}

func TestPipelineGenPlaceViz(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go toolchain")
	}
	dir := t.TempDir()
	inst := filepath.Join(dir, "inst.json")
	placement := filepath.Join(dir, "placement.json")
	svg := filepath.Join(dir, "picture.svg")

	runTool(t, "mscgen", "-kind", "rgg", "-n", "50", "-m", "10", "-pt", "0.12",
		"-k", "3", "-seed", "7", "-out", inst)
	raw, err := os.ReadFile(inst)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]interface{}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("instance not valid JSON: %v", err)
	}
	if doc["nodes"].(float64) != 50 {
		t.Fatalf("nodes = %v", doc["nodes"])
	}

	out := runTool(t, "mscplace", "-in", inst, "-alg", "sandwich", "-out", placement)
	if !strings.Contains(out, "maintained:") || !strings.Contains(out, "shortcut:") {
		t.Fatalf("mscplace output unexpected:\n%s", out)
	}
	praw, err := os.ReadFile(placement)
	if err != nil {
		t.Fatal(err)
	}
	var pdoc struct {
		Sigma     int        `json:"maintained_pairs"`
		Shortcuts [][2]int32 `json:"shortcuts"`
	}
	if err := json.Unmarshal(praw, &pdoc); err != nil {
		t.Fatal(err)
	}
	if pdoc.Sigma < 1 || len(pdoc.Shortcuts) == 0 {
		t.Fatalf("placement trivial: %+v", pdoc)
	}

	runTool(t, "mscviz", "-in", inst, "-placement", placement, "-out", svg)
	sraw, err := os.ReadFile(svg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(sraw), "<svg") {
		t.Fatal("mscviz did not produce SVG")
	}

	ascii := runTool(t, "mscviz", "-in", inst, "-placement", placement, "-ascii")
	if !strings.Contains(ascii, "legend:") {
		t.Fatalf("ascii render unexpected:\n%s", ascii)
	}
}

func TestMscgenMobilityTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go toolchain")
	}
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.csv")
	runTool(t, "mscgen", "-kind", "mobility", "-n", "20", "-steps", "4", "-out", trace)
	raw, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	content := string(raw)
	if !strings.HasPrefix(content, "# step_seconds=") {
		t.Fatalf("trace header missing:\n%.100s", content)
	}
	// 20 nodes × 4 steps + header + comment.
	lines := strings.Count(content, "\n")
	if lines < 80 {
		t.Fatalf("trace too short: %d lines", lines)
	}
}

func TestMscbenchQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go toolchain")
	}
	out := runTool(t, "mscbench", "-exp", "table1", "-quick")
	if !strings.Contains(out, "Table I") {
		t.Fatalf("mscbench output unexpected:\n%s", out)
	}
	csv := runTool(t, "mscbench", "-exp", "fig5b", "-quick", "-csv")
	if !strings.Contains(csv, "T,") {
		t.Fatalf("csv output unexpected:\n%s", csv)
	}
}

func TestMscplaceAlgorithms(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go toolchain")
	}
	dir := t.TempDir()
	inst := filepath.Join(dir, "inst.json")
	runTool(t, "mscgen", "-kind", "rgg", "-n", "40", "-m", "8", "-pt", "0.12",
		"-k", "2", "-seed", "3", "-out", inst)
	for _, alg := range []string{"greedy", "mu", "nu", "ea", "aea", "random"} {
		out := runTool(t, "mscplace", "-in", inst, "-alg", alg, "-iters", "50")
		if !strings.Contains(out, "maintained:") {
			t.Fatalf("alg %s output unexpected:\n%s", alg, out)
		}
	}
}

func TestMscsimPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go toolchain")
	}
	dir := t.TempDir()
	inst := filepath.Join(dir, "inst.json")
	placement := filepath.Join(dir, "placement.json")
	runTool(t, "mscgen", "-kind", "rgg", "-n", "40", "-m", "8", "-pt", "0.12",
		"-k", "2", "-seed", "9", "-out", inst)
	runTool(t, "mscplace", "-in", inst, "-alg", "sandwich", "-out", placement,
		"-report", "-refine")
	out := runTool(t, "mscsim", "-in", inst, "-placement", placement, "-trials", "500")
	if !strings.Contains(out, "best-path") || !strings.Contains(out, "maintained:") {
		t.Fatalf("mscsim output unexpected:\n%s", out)
	}
}
