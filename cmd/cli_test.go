// Package cmd_test drives the command-line tools end to end through the
// go toolchain: generate an instance, solve it, and render it — the same
// pipeline the README documents.
package cmd_test

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"

	"msc/internal/telemetry"
)

// runTool executes `go run ./cmd/<tool> args...` from the module root.
func runTool(t *testing.T, tool string, args ...string) string {
	t.Helper()
	cmdArgs := append([]string{"run", "./cmd/" + tool}, args...)
	cmd := exec.Command("go", cmdArgs...)
	cmd.Dir = ".." // tests run in cmd/; the module root is one up
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v failed: %v\n%s", tool, args, err, out)
	}
	return string(out)
}

func TestPipelineGenPlaceViz(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go toolchain")
	}
	dir := t.TempDir()
	inst := filepath.Join(dir, "inst.json")
	placement := filepath.Join(dir, "placement.json")
	svg := filepath.Join(dir, "picture.svg")

	runTool(t, "mscgen", "-kind", "rgg", "-n", "50", "-m", "10", "-pt", "0.12",
		"-k", "3", "-seed", "7", "-out", inst)
	raw, err := os.ReadFile(inst)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]interface{}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("instance not valid JSON: %v", err)
	}
	if doc["nodes"].(float64) != 50 {
		t.Fatalf("nodes = %v", doc["nodes"])
	}

	out := runTool(t, "mscplace", "-in", inst, "-alg", "sandwich", "-out", placement)
	if !strings.Contains(out, "maintained:") || !strings.Contains(out, "shortcut:") {
		t.Fatalf("mscplace output unexpected:\n%s", out)
	}
	praw, err := os.ReadFile(placement)
	if err != nil {
		t.Fatal(err)
	}
	var pdoc struct {
		Sigma     int        `json:"maintained_pairs"`
		Shortcuts [][2]int32 `json:"shortcuts"`
	}
	if err := json.Unmarshal(praw, &pdoc); err != nil {
		t.Fatal(err)
	}
	if pdoc.Sigma < 1 || len(pdoc.Shortcuts) == 0 {
		t.Fatalf("placement trivial: %+v", pdoc)
	}

	runTool(t, "mscviz", "-in", inst, "-placement", placement, "-out", svg)
	sraw, err := os.ReadFile(svg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(sraw), "<svg") {
		t.Fatal("mscviz did not produce SVG")
	}

	ascii := runTool(t, "mscviz", "-in", inst, "-placement", placement, "-ascii")
	if !strings.Contains(ascii, "legend:") {
		t.Fatalf("ascii render unexpected:\n%s", ascii)
	}
}

func TestMscgenMobilityTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go toolchain")
	}
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.csv")
	runTool(t, "mscgen", "-kind", "mobility", "-n", "20", "-steps", "4", "-out", trace)
	raw, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	content := string(raw)
	if !strings.HasPrefix(content, "# step_seconds=") {
		t.Fatalf("trace header missing:\n%.100s", content)
	}
	// 20 nodes × 4 steps + header + comment.
	lines := strings.Count(content, "\n")
	if lines < 80 {
		t.Fatalf("trace too short: %d lines", lines)
	}
}

func TestMscbenchQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go toolchain")
	}
	out := runTool(t, "mscbench", "-exp", "table1", "-quick")
	if !strings.Contains(out, "Table I") {
		t.Fatalf("mscbench output unexpected:\n%s", out)
	}
	csv := runTool(t, "mscbench", "-exp", "fig5b", "-quick", "-csv")
	if !strings.Contains(csv, "T,") {
		t.Fatalf("csv output unexpected:\n%s", csv)
	}
}

func TestMscplaceAlgorithms(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go toolchain")
	}
	dir := t.TempDir()
	inst := filepath.Join(dir, "inst.json")
	runTool(t, "mscgen", "-kind", "rgg", "-n", "40", "-m", "8", "-pt", "0.12",
		"-k", "2", "-seed", "3", "-out", inst)
	for _, alg := range []string{"greedy", "mu", "nu", "ea", "aea", "random"} {
		out := runTool(t, "mscplace", "-in", inst, "-alg", alg, "-iters", "50")
		if !strings.Contains(out, "maintained:") {
			t.Fatalf("alg %s output unexpected:\n%s", alg, out)
		}
	}
}

func TestMscsimPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go toolchain")
	}
	dir := t.TempDir()
	inst := filepath.Join(dir, "inst.json")
	placement := filepath.Join(dir, "placement.json")
	runTool(t, "mscgen", "-kind", "rgg", "-n", "40", "-m", "8", "-pt", "0.12",
		"-k", "2", "-seed", "9", "-out", inst)
	runTool(t, "mscplace", "-in", inst, "-alg", "sandwich", "-out", placement,
		"-report", "-refine")
	out := runTool(t, "mscsim", "-in", inst, "-placement", placement, "-trials", "500")
	if !strings.Contains(out, "best-path") || !strings.Contains(out, "maintained:") {
		t.Fatalf("mscsim output unexpected:\n%s", out)
	}
}

// runToolErr executes a tool expecting a non-zero exit; it returns the
// combined output.
func runToolErr(t *testing.T, tool string, args ...string) string {
	t.Helper()
	cmdArgs := append([]string{"run", "./cmd/" + tool}, args...)
	cmd := exec.Command("go", cmdArgs...)
	cmd.Dir = ".."
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("%s %v succeeded, want failure:\n%s", tool, args, out)
	}
	return string(out)
}

func TestVersionFlagAllCommands(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go toolchain")
	}
	for _, tool := range []string{"mscgen", "mscplace", "mscsim", "mscviz", "mscbench"} {
		out := runTool(t, tool, "-version")
		// Build info always carries at least the tool name and Go version.
		if !strings.HasPrefix(out, tool+" ") || !strings.Contains(out, "go1") {
			t.Errorf("%s -version output unexpected: %q", tool, out)
		}
	}
}

func TestMscbenchRejectsUnknownExp(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go toolchain")
	}
	out := runToolErr(t, "mscbench", "-exp", "tabel1")
	if !strings.Contains(out, `unknown experiment "tabel1"`) || !strings.Contains(out, "table1") {
		t.Fatalf("error should name the typo and list valid ids:\n%s", out)
	}
	// A typo hiding in a comma-separated list must fail before anything
	// runs, not midway through the suite.
	out = runToolErr(t, "mscbench", "-exp", "table1,nope", "-quick")
	if strings.Contains(out, "Table I") {
		t.Fatalf("experiments ran before validation:\n%s", out)
	}
}

func TestMscbenchJSONLRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go toolchain")
	}
	dir := t.TempDir()
	records := filepath.Join(dir, "out.jsonl")
	runTool(t, "mscbench", "-exp", "table1", "-quick", "-jsonl", records)
	out := runTool(t, "mscbench", "-validate", records)
	if !strings.Contains(out, "events OK") || !strings.Contains(out, "run=") {
		t.Fatalf("validation output unexpected: %q", out)
	}
	raw, err := os.ReadFile(records)
	if err != nil {
		t.Fatal(err)
	}
	// Every line is a schema-stable run record: counters present, σ and
	// instance shape populated for per-solver records.
	var solverRecords int
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		var rec struct {
			Event     string           `json:"event"`
			Algorithm string           `json:"algorithm"`
			Sigma     *int             `json:"sigma"`
			WallMS    *float64         `json:"wall_ms"`
			Counters  map[string]int64 `json:"counters"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line not valid JSON: %v\n%s", err, line)
		}
		if rec.Event != "run" || rec.Sigma == nil || rec.WallMS == nil || rec.Counters == nil {
			t.Fatalf("run record missing required fields: %s", line)
		}
		if rec.Algorithm == "greedy_sigma" {
			solverRecords++
			if *rec.Sigma < 0 || rec.Counters["candidate_evals"] <= 0 {
				t.Fatalf("solver record implausible: %s", line)
			}
		}
	}
	if solverRecords == 0 {
		t.Fatal("no per-solver run records emitted")
	}
	// Corrupting a record must fail validation.
	bad := filepath.Join(dir, "bad.jsonl")
	if err := os.WriteFile(bad, append(raw, []byte("{\"event\":\"run\"}\n")...), 0o644); err != nil {
		t.Fatal(err)
	}
	errOut := runToolErr(t, "mscbench", "-validate", bad)
	if !strings.Contains(errOut, "missing required field") {
		t.Fatalf("corrupt record not rejected:\n%s", errOut)
	}
}

// buildTool compiles ./cmd/<tool> to a throwaway binary. Signal tests
// need a real binary: `go run` interposes the toolchain between the test
// and the tool, and does not reliably forward SIGINT.
func buildTool(t *testing.T, dir, tool string) string {
	t.Helper()
	bin := filepath.Join(dir, tool)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+tool)
	cmd.Dir = ".."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build %s: %v\n%s", tool, err, out)
	}
	return bin
}

// TestMscplaceSIGINTGraceful: interrupting a long solver run must still
// produce the best-so-far placement on stdout, exit 0, and flush a
// schema-valid JSONL file whose run record says stop_reason "canceled".
func TestMscplaceSIGINTGraceful(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go toolchain")
	}
	dir := t.TempDir()
	inst := filepath.Join(dir, "inst.json")
	trace := filepath.Join(dir, "trace.jsonl")
	ckpt := filepath.Join(dir, "ckpt.jsonl")
	runTool(t, "mscgen", "-kind", "rgg", "-n", "80", "-m", "15", "-pt", "0.12",
		"-k", "4", "-seed", "21", "-out", inst)
	bin := buildTool(t, dir, "mscplace")

	cmd := exec.Command(bin, "-in", inst, "-alg", "ea", "-iters", "100000000",
		"-jsonl", trace, "-checkpoint", ckpt, "-checkpoint-every", "1")
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	// Wait until the solver has demonstrably made progress (checkpoints
	// are flushed per iteration), then interrupt it.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if st, err := os.Stat(ckpt); err == nil && st.Size() > 0 {
			break
		}
		if time.Now().After(deadline) {
			_ = cmd.Process.Kill()
			t.Fatalf("no checkpoint appeared; stderr:\n%s", stderr.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := cmd.Process.Signal(syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("mscplace exited non-zero after SIGINT: %v\nstderr:\n%s", err, stderr.String())
		}
	case <-time.After(30 * time.Second):
		_ = cmd.Process.Kill()
		t.Fatalf("mscplace did not exit after SIGINT; stdout so far:\n%s", stdout.String())
	}

	out := stdout.String()
	if !strings.Contains(out, "maintained:") {
		t.Fatalf("no best-so-far placement on stdout:\n%s", out)
	}
	if !strings.Contains(out, "stopped:    canceled") {
		t.Fatalf("stop reason not reported:\n%s", out)
	}

	// The JSONL file must be complete and valid despite the interrupt.
	raw, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	var gotRun bool
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		var rec struct {
			Event      string `json:"event"`
			StopReason string `json:"stop_reason"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line not valid JSON: %v\n%s", err, line)
		}
		if rec.Event == "run" {
			gotRun = true
			if rec.StopReason != "canceled" {
				t.Fatalf("run record stop_reason = %q, want canceled", rec.StopReason)
			}
		}
	}
	if !gotRun {
		t.Fatal("no run record flushed after SIGINT")
	}
	runTool(t, "mscbench", "-validate", trace)

	// The interrupted run left a resumable checkpoint.
	out = runTool(t, "mscplace", "-in", inst, "-alg", "ea", "-iters", "100000000",
		"-resume", ckpt, "-deadline", "100ms")
	if !strings.Contains(out, "maintained:") {
		t.Fatalf("resume from interrupted run failed:\n%s", out)
	}
}

// TestMscplaceDeadline: -deadline bounds the run and reports the reason.
func TestMscplaceDeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go toolchain")
	}
	dir := t.TempDir()
	inst := filepath.Join(dir, "inst.json")
	trace := filepath.Join(dir, "trace.jsonl")
	runTool(t, "mscgen", "-kind", "rgg", "-n", "60", "-m", "12", "-pt", "0.12",
		"-k", "3", "-seed", "22", "-out", inst)
	out := runTool(t, "mscplace", "-in", inst, "-alg", "aea", "-iters", "100000000",
		"-deadline", "200ms", "-jsonl", trace)
	if !strings.Contains(out, "stopped:    deadline") || !strings.Contains(out, "maintained:") {
		t.Fatalf("deadline run output unexpected:\n%s", out)
	}
	raw, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"stop_reason":"deadline"`) {
		t.Fatal("run record missing deadline stop reason")
	}
}

// TestMscplaceCheckpointResumeCLI: a run split in two by -checkpoint /
// -resume prints the same placement as the straight-through run.
func TestMscplaceCheckpointResumeCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go toolchain")
	}
	dir := t.TempDir()
	inst := filepath.Join(dir, "inst.json")
	ckpt := filepath.Join(dir, "ckpt.jsonl")
	runTool(t, "mscgen", "-kind", "rgg", "-n", "50", "-m", "10", "-pt", "0.12",
		"-k", "3", "-seed", "23", "-out", inst)

	straight := runTool(t, "mscplace", "-in", inst, "-alg", "aea", "-iters", "60", "-seed", "4")
	runTool(t, "mscplace", "-in", inst, "-alg", "aea", "-iters", "25", "-seed", "4",
		"-checkpoint", ckpt)
	resumed := runTool(t, "mscplace", "-in", inst, "-alg", "aea", "-iters", "60", "-seed", "4",
		"-resume", ckpt)
	if straight != resumed {
		t.Fatalf("resumed output differs from straight run:\n--- straight:\n%s--- resumed:\n%s", straight, resumed)
	}

	// Mismatched algorithm and non-evolutionary algorithms are typed,
	// early errors.
	out := runToolErr(t, "mscplace", "-in", inst, "-alg", "ea", "-iters", "60", "-resume", ckpt)
	if !strings.Contains(out, "aea") {
		t.Fatalf("algorithm mismatch not named:\n%s", out)
	}
	out = runToolErr(t, "mscplace", "-in", inst, "-alg", "greedy", "-checkpoint", ckpt)
	if !strings.Contains(out, "require -alg ea or aea") {
		t.Fatalf("checkpoint with greedy not rejected:\n%s", out)
	}
}

func TestMscplaceJSONLTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go toolchain")
	}
	dir := t.TempDir()
	inst := filepath.Join(dir, "inst.json")
	trace := filepath.Join(dir, "trace.jsonl")
	runTool(t, "mscgen", "-kind", "rgg", "-n", "40", "-m", "8", "-pt", "0.12",
		"-k", "3", "-seed", "5", "-out", inst)
	out := runTool(t, "mscplace", "-in", inst, "-alg", "greedy", "-jsonl", trace)
	shortcuts := strings.Count(out, "shortcut:")
	raw, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	var rounds int
	var lastRoundSigma, runSigma int
	var gotRun bool
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		var ev struct {
			Event string `json:"event"`
			Sigma int    `json:"sigma"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("line not valid JSON: %v\n%s", err, line)
		}
		switch ev.Event {
		case "round":
			rounds++
			lastRoundSigma = ev.Sigma
		case "run":
			gotRun = true
			runSigma = ev.Sigma
		}
	}
	if rounds != shortcuts {
		t.Fatalf("%d round events for %d printed shortcuts:\n%s", rounds, shortcuts, out)
	}
	if !gotRun {
		t.Fatal("no run record emitted")
	}
	if rounds > 0 && lastRoundSigma != runSigma {
		t.Fatalf("final round σ %d != run record σ %d", lastRoundSigma, runSigma)
	}
	// The mscbench validator accepts mscplace traces too — one schema.
	runTool(t, "mscbench", "-validate", trace)
}

// TestMscplaceBudgetE2E drives a budget-weighted run against the real
// mscplace binary: the knapsack budget and length cost model must show up
// on stdout, in the placement JSON, and in the telemetry run record —
// which must also pass the shared schema validator.
func TestMscplaceBudgetE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go toolchain")
	}
	dir := t.TempDir()
	inst := filepath.Join(dir, "inst.json")
	placement := filepath.Join(dir, "placement.json")
	trace := filepath.Join(dir, "trace.jsonl")
	runTool(t, "mscgen", "-kind", "rgg", "-n", "40", "-m", "8", "-pt", "0.12",
		"-k", "2", "-seed", "3", "-out", inst)
	bin := buildTool(t, dir, "mscplace")

	cmd := exec.Command(bin, "-in", inst, "-alg", "sandwich",
		"-budget", "2", "-cost-model", "length", "-out", placement, "-jsonl", trace)
	rawOut, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("mscplace -budget failed: %v\n%s", err, rawOut)
	}
	out := string(rawOut)
	if !strings.Contains(out, "B=2, cost model length") || !strings.Contains(out, "budget spent") {
		t.Fatalf("budgeted run output missing budget report:\n%s", out)
	}

	// The placement JSON carries the budget triple alongside the shortcuts.
	praw, err := os.ReadFile(placement)
	if err != nil {
		t.Fatal(err)
	}
	var pdoc struct {
		Sigma     int        `json:"maintained_pairs"`
		Budget    float64    `json:"budget"`
		CostModel string     `json:"cost_model"`
		CostSpent float64    `json:"cost_spent"`
		Shortcuts [][2]int32 `json:"shortcuts"`
	}
	if err := json.Unmarshal(praw, &pdoc); err != nil {
		t.Fatal(err)
	}
	if pdoc.Budget != 2 || pdoc.CostModel != "length" {
		t.Fatalf("placement JSON budget fields wrong: %+v", pdoc)
	}
	if pdoc.CostSpent <= 0 || pdoc.CostSpent > pdoc.Budget+1e-9 {
		t.Fatalf("cost_spent %v out of (0, %v]", pdoc.CostSpent, pdoc.Budget)
	}

	// The telemetry run record carries the same triple and the stream passes
	// the shared schema validator.
	f, err := os.Open(trace)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := telemetry.ValidateJSONL(f); err != nil {
		f.Close()
		t.Fatalf("budgeted trace fails schema validation: %v", err)
	}
	f.Close()
	traw, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	var gotRun bool
	for _, line := range strings.Split(strings.TrimSpace(string(traw)), "\n") {
		var rec struct {
			Event     string   `json:"event"`
			Budget    *float64 `json:"budget"`
			CostModel *string  `json:"cost_model"`
			CostSpent *float64 `json:"cost_spent"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line not valid JSON: %v\n%s", err, line)
		}
		if rec.Event != "run" {
			continue
		}
		gotRun = true
		if rec.Budget == nil || rec.CostModel == nil || rec.CostSpent == nil {
			t.Fatalf("run record missing budget fields: %s", line)
		}
		if *rec.Budget != 2 || *rec.CostModel != "length" {
			t.Fatalf("run record budget = %v cost_model = %v, want 2 / length", *rec.Budget, *rec.CostModel)
		}
		if *rec.CostSpent != pdoc.CostSpent {
			t.Fatalf("run record cost_spent %v != placement cost_spent %v", *rec.CostSpent, pdoc.CostSpent)
		}
	}
	if !gotRun {
		t.Fatal("no run record emitted for budgeted run")
	}

	// The same instance solved under -k uses the cardinality output format:
	// the two modes are distinguishable at a glance.
	plain := runTool(t, "mscplace", "-in", inst, "-alg", "sandwich")
	if strings.Contains(plain, "budget spent") {
		t.Fatalf("cardinality run leaked budget report:\n%s", plain)
	}
}

// TestMscsweepEndToEnd drives the sweep orchestrator against real
// binaries: a 2×2 matrix (two solvers × two seeds) generates instances,
// fans mscplace across worker processes, and aggregates the kept JSONL
// records into a trajectory. Every kept record file must pass the
// telemetry schema validator, and the trajectory must self-diff with
// zero regressions.
func TestMscsweepEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go toolchain")
	}
	dir := t.TempDir()
	for _, tool := range []string{"mscgen", "mscplace", "mscsweep"} {
		buildTool(t, dir, tool)
	}
	matrix := filepath.Join(dir, "matrix.json")
	if err := os.WriteFile(matrix, []byte(`{
		"families": ["rgg"], "n": [40], "m": [8], "p_t": [0.12], "k": [2],
		"solvers": ["greedy", "sandwich"], "seeds": [1, 2], "quick": true
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	records := filepath.Join(dir, "records")
	traj := filepath.Join(dir, "BENCH_e2e.json")

	sweepBin := filepath.Join(dir, "mscsweep")
	cmd := exec.Command(sweepBin, "-matrix", matrix, "-tools", dir,
		"-keep", records, "-out", traj, "-host", "e2e", "-workers", "2")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("mscsweep failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "4 runs -> 2 scenarios") {
		t.Fatalf("sweep summary unexpected:\n%s", out)
	}

	// Every kept per-run record file is a schema-valid telemetry stream.
	kept, err := filepath.Glob(filepath.Join(records, "*.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) != 4 {
		t.Fatalf("kept %d record files, want 4: %v", len(kept), kept)
	}
	for _, path := range kept {
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		_, err = telemetry.ValidateJSONL(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
	}

	// mscsweep validates its own trajectory output.
	if out, err := exec.Command(sweepBin, "-validate", traj).CombinedOutput(); err != nil {
		t.Fatalf("trajectory validation failed: %v\n%s", err, out)
	}

	// A trajectory diffed against itself gates clean with zero findings.
	out, err = exec.Command(sweepBin, "-diff", traj, traj).CombinedOutput()
	if err != nil {
		t.Fatalf("self-diff tripped the gate: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "0 regression(s)") {
		t.Fatalf("self-diff not clean:\n%s", out)
	}

	// An injected counter regression must trip the gate with a typed,
	// named finding and a non-zero exit.
	raw, err := os.ReadFile(traj)
	if err != nil {
		t.Fatal(err)
	}
	worse := regexp.MustCompile(`("counters\.dijkstra_runs": \{\n\s*"median": )(\d+)`).
		ReplaceAllString(string(raw), "${1}9999999")
	if worse == string(raw) {
		t.Fatalf("failed to inject regression into trajectory:\n%s", raw)
	}
	worsePath := filepath.Join(dir, "BENCH_worse.json")
	if err := os.WriteFile(worsePath, []byte(worse), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err = exec.Command(sweepBin, "-diff", traj, worsePath).CombinedOutput()
	if err == nil {
		t.Fatalf("gate passed a massive counter regression:\n%s", out)
	}
	if !strings.Contains(string(out), "REGRESSION") || !strings.Contains(string(out), "counters.dijkstra_runs") {
		t.Fatalf("gate failure does not name the finding:\n%s", out)
	}
}
