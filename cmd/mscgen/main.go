// Command mscgen generates MSC problem instances and mobility traces as
// files for the other tools.
//
// Usage:
//
//	mscgen -kind rgg -n 100 -m 17 -pt 0.11 -k 6 -out instance.json
//	mscgen -kind social -m 63 -pt 0.23 -k 6 -out gowalla.json
//	mscgen -kind mobility -n 90 -steps 30 -out trace.csv
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"

	"msc"
	"msc/internal/cli"
	"msc/internal/mobility"
)

func main() { cli.Run("mscgen", run) }

func run(ctx context.Context) error {
	_ = ctx // generation is fast; no supervision points needed
	var (
		kind    = flag.String("kind", "rgg", "workload: rgg|social|mobility")
		n       = flag.Int("n", 100, "node count (rgg, mobility)")
		m       = flag.Int("m", 17, "important social pairs to sample (rgg, social)")
		pt      = flag.Float64("pt", 0.11, "failure-probability threshold p_t")
		k       = flag.Int("k", 6, "shortcut budget recorded in the instance")
		seed    = flag.Int64("seed", 1, "random seed")
		out     = flag.String("out", "", "output path (default stdout)")
		steps   = flag.Int("steps", 30, "time instances (mobility)")
		radius  = flag.Float64("radius", 0, "RGG connection radius (0 = auto-scale with n)")
		users   = flag.Int("users", 0, "social user count (0 = the paper's 134-user Gowalla subgraph; larger values scale venues and area at constant density)")
		version = flag.Bool("version", false, "print version and exit")
	)
	opsF := cli.AddOpsFlags(flag.CommandLine)
	flag.Parse()
	if *version {
		fmt.Println(cli.Version("mscgen"))
		return nil
	}
	plane, err := opsF.Start("mscgen")
	if err != nil {
		return err
	}
	defer func() {
		if cerr := plane.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "mscgen: ops:", cerr)
		}
	}()
	defer plane.Recover()

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	rng := msc.NewRand(*seed)

	switch *kind {
	case "rgg":
		r := *radius
		if r <= 0 {
			// ~1.6× the RGG connectivity threshold sqrt(ln n / (π n)),
			// which keeps RequireConnected reliable at any n.
			r = 1.6 * math.Sqrt(math.Log(float64(*n))/(math.Pi*float64(*n)))
		}
		g, err := msc.GenerateRGG(msc.RGGConfig{
			N:                *n,
			Radius:           r,
			FailureAtRadius:  0.08,
			RequireConnected: true,
		}, rng)
		if err != nil {
			return err
		}
		return writeInstance(w, g, *m, *pt, *k, rng)
	case "social":
		cfg := msc.DefaultSocialConfig()
		if *users > 0 {
			cfg = msc.ScaledSocialConfig(*users)
		}
		net, err := msc.GenerateSocial(cfg, rng)
		if err != nil {
			return err
		}
		return writeInstance(w, net.Graph, *m, *pt, *k, rng)
	case "mobility":
		cfg := msc.DefaultMobilityConfig()
		cfg.Nodes = *n
		cfg.Steps = *steps
		tr, err := msc.GenerateMobilityTrace(cfg, rng)
		if err != nil {
			return err
		}
		return tr.WriteCSV(w)
	default:
		return fmt.Errorf("unknown kind %q", *kind)
	}
}

// writeInstance samples threshold-violating pairs and streams the
// instance to w. The distance backend and sampler follow the node count:
// small networks keep the dense table and the exhaustive sampler (every
// violating pair enumerable, byte-stable output for existing seeds);
// above the dense threshold the exhaustive ~n²/2 scan is the bottleneck,
// so rejection sampling over point queries takes over, backed by lazy
// rows up to the bounded threshold and by bounded-reach sparse rows past
// it — at 10⁶ nodes each trial touches one d_t-ball row instead of an
// 8 MB dense row.
func writeInstance(w *os.File, g *msc.Graph, m int, pt float64, k int, rng *msc.Rand) error {
	thr := msc.NewThreshold(pt)
	var (
		ps  *msc.PairSet
		err error
	)
	switch n := g.N(); {
	case n < msc.DefaultLazyThreshold:
		ps, err = msc.SampleViolatingPairs(msc.NewDistanceTable(g), thr, m, rng)
	case n < msc.DefaultBoundedThreshold:
		ps, err = msc.SampleViolatingPairsRandom(msc.NewLazyDistanceTable(g, msc.LazyTableOptions{}), thr, m, rng)
	default:
		table, terr := msc.NewBoundedDistanceTable(g, msc.BoundedTableOptions{Reach: thr.D})
		if terr != nil {
			return terr
		}
		ps, err = msc.SampleViolatingPairsRandom(table, thr, m, rng)
	}
	if err != nil {
		return err
	}
	return msc.StreamInstanceJSON(w, g, ps, pt, k)
}

// Interface check: the mobility trace type must keep its CSV codec, which
// mscgen and mscplace rely on for file exchange.
var _ = (*mobility.Trace).WriteCSV
