// Command mscsim validates a placement by Monte-Carlo delivery simulation:
// it samples independent link failures and reports, per important pair,
// how often the best path delivered — checking the MSC guarantee (failure
// ≤ p_t for maintained pairs) against actual packet luck.
//
// Usage:
//
//	mscsim -in instance.json -placement placement.json -trials 20000
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"msc"
	"msc/internal/cli"
)

func main() { cli.Run("mscsim", run) }

func run(ctx context.Context) error {
	_ = ctx // simulation batches are short; no supervision points needed
	var (
		in      = flag.String("in", "", "instance JSON (required)")
		place   = flag.String("placement", "", "placement JSON from mscplace -out (optional: empty = no shortcuts)")
		trials  = flag.Int("trials", 10000, "simulation trials")
		seed    = flag.Int64("seed", 1, "random seed")
		version = flag.Bool("version", false, "print version and exit")
	)
	opsF := cli.AddOpsFlags(flag.CommandLine)
	flag.Parse()
	if *version {
		fmt.Println(cli.Version("mscsim"))
		return nil
	}
	plane, err := opsF.Start("mscsim")
	if err != nil {
		return err
	}
	defer func() {
		if cerr := plane.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "mscsim: ops:", cerr)
		}
	}()
	defer plane.Recover()
	if *in == "" {
		return fmt.Errorf("-in is required")
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	doc, err := msc.ReadInstanceJSON(f)
	if err != nil {
		return err
	}
	g, err := doc.Graph()
	if err != nil {
		return err
	}
	ps, err := doc.PairSet()
	if err != nil {
		return err
	}
	if ps == nil {
		return fmt.Errorf("instance carries no important pairs")
	}
	var shortcuts []msc.Edge
	if *place != "" {
		pf, err := os.Open(*place)
		if err != nil {
			return err
		}
		defer pf.Close()
		var pdoc struct {
			Shortcuts [][2]int32 `json:"shortcuts"`
		}
		if err := json.NewDecoder(pf).Decode(&pdoc); err != nil {
			return fmt.Errorf("decode placement: %w", err)
		}
		for _, s := range pdoc.Shortcuts {
			shortcuts = append(shortcuts, msc.Edge{U: s[0], V: s[1]})
		}
	}
	nw, err := msc.NewSimNetwork(g, shortcuts)
	if err != nil {
		return err
	}
	results, err := msc.SimulateDelivery(nw, ps.Pairs(), *trials, msc.NewRand(*seed))
	if err != nil {
		return err
	}
	pt := doc.FailureThreshold
	fmt.Printf("%d trials, %d shortcuts, p_t=%.3g\n\n", *trials, len(shortcuts), pt)
	fmt.Printf("%-12s %-10s %-10s %-10s %s\n", "pair", "best-path", "predicted", "any-path", "meets p_t")
	ok := 0
	for _, r := range results {
		meets := pt > 0 && r.PredictedBestPath >= 1-pt
		if meets {
			ok++
		}
		fmt.Printf("{%d, %d}%-6s %-10.4f %-10.4f %-10.4f %v\n",
			r.Pair.U, r.Pair.W, "", r.BestPath, r.PredictedBestPath, r.AnyPath, meets)
	}
	if pt > 0 {
		fmt.Printf("\nmaintained: %d/%d pairs meet the failure bound analytically\n", ok, len(results))
	}
	return nil
}
