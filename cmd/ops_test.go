// End-to-end coverage of the live observability plane: a real solver
// process run with -ops, scraped over HTTP while it works, streamed over
// SSE, and flight-dumped on SIGQUIT — the workflow EXPERIMENTS.md
// documents.
package cmd_test

import (
	"bufio"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"msc/internal/obs"
	"msc/internal/telemetry"
)

// waitForFile polls until path exists and is non-empty, returning its
// contents.
func waitForFile(t *testing.T, path string, timeout time.Duration) string {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		if raw, err := os.ReadFile(path); err == nil && len(raw) > 0 {
			return string(raw)
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s did not appear within %v", path, timeout)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// httpGetBody fetches url and returns the body, failing the test on any
// error or non-200 status.
func httpGetBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 32*1024)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d\n%s", url, resp.StatusCode, sb.String())
	}
	return sb.String()
}

// TestMscplaceOpsLiveSolve drives the full ops plane against a live
// solver: scrape /metrics while the run is in flight, capture the /events
// SSE stream, dump the flight recorder over HTTP and via SIGQUIT, and
// verify every captured artifact against the telemetry schema.
func TestMscplaceOpsLiveSolve(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go toolchain")
	}
	dir := t.TempDir()
	inst := filepath.Join(dir, "inst.json")
	addrFile := filepath.Join(dir, "ops.addr")
	flight := filepath.Join(dir, "flight.jsonl")
	runTool(t, "mscgen", "-kind", "rgg", "-n", "80", "-m", "15", "-pt", "0.12",
		"-k", "4", "-seed", "31", "-out", inst)
	bin := buildTool(t, dir, "mscplace")

	// An effectively unbounded EA run keeps the process alive while we
	// probe it; each iteration emits a RoundEvent and lands in the round
	// histogram, so the plane has live traffic from the start.
	cmd := exec.Command(bin, "-in", inst, "-alg", "ea", "-iters", "100000000",
		"-ops", "127.0.0.1:0", "-ops-addr-file", addrFile,
		"-flight-recorder", "128", "-flight-dump", flight)
	var stderr strings.Builder
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	base := "http://" + strings.TrimSpace(waitForFile(t, addrFile, 30*time.Second))

	// Subscribe to the SSE stream before poking anything else so the
	// capture overlaps the live solve.
	sseResp, err := http.Get(base + "/events")
	if err != nil {
		t.Fatalf("GET /events: %v", err)
	}
	type sseResult struct {
		data []string
	}
	sseCh := make(chan sseResult, 1)
	go func() {
		defer sseResp.Body.Close()
		var res sseResult
		sc := bufio.NewScanner(sseResp.Body)
		sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
		for sc.Scan() {
			if line, ok := strings.CutPrefix(sc.Text(), "data: "); ok {
				res.data = append(res.data, line)
			}
		}
		// The stream ends when the process exits and the server closes;
		// whatever was captured by then is the artifact under test.
		sseCh <- res
	}()

	if body := httpGetBody(t, base+"/healthz"); !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %q", body)
	}

	// /metrics must show solver progress while the run is live: the round
	// histogram ticks once per EA iteration.
	var samples map[string]float64
	deadline := time.Now().Add(30 * time.Second)
	for {
		body := httpGetBody(t, base+"/metrics")
		samples, err = obs.ParsePrometheus(strings.NewReader(body))
		if err != nil {
			t.Fatalf("/metrics does not parse: %v\n%s", err, body)
		}
		if samples["msc_round_wall_seconds_count"] > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no rounds observed on live /metrics; stderr:\n%s", stderr.String())
		}
		time.Sleep(50 * time.Millisecond)
	}
	for _, name := range []string{
		"msc_round_wall_seconds", "msc_sigma_evals_total",
		"msc_row_cache_hit_ratio", "msc_goroutines",
		"msc_events_subscribers", "msc_flightrecorder_events_total",
	} {
		if _, ok := samples[name]; !ok {
			if _, hok := samples[name+"_count"]; !hok {
				t.Errorf("live /metrics missing %s", name)
			}
		}
	}
	if samples["msc_events_subscribers"] != 1 {
		t.Errorf("msc_events_subscribers = %v, want 1 (the SSE capture)", samples["msc_events_subscribers"])
	}

	// The HTTP flight-recorder dump is schema-valid JSONL with rounds.
	counts, verr := telemetry.ValidateJSONL(strings.NewReader(httpGetBody(t, base+"/debug/flightrecorder")))
	if verr != nil {
		t.Fatalf("/debug/flightrecorder invalid: %v", verr)
	}
	if counts["round"] == 0 {
		t.Fatal("/debug/flightrecorder holds no round events during a live run")
	}

	// SIGQUIT dumps the recorder to -flight-dump and keeps the run alive.
	if err := cmd.Process.Signal(syscall.SIGQUIT); err != nil {
		t.Fatal(err)
	}
	waitForFile(t, flight, 30*time.Second)
	f, err := os.Open(flight)
	if err != nil {
		t.Fatal(err)
	}
	counts, verr = telemetry.ValidateJSONL(f)
	f.Close()
	if verr != nil {
		t.Fatalf("SIGQUIT flight dump invalid: %v", verr)
	}
	if counts["round"] == 0 {
		t.Fatal("SIGQUIT flight dump holds no round events")
	}
	// Still serving after the dump: SIGQUIT must not kill the process.
	httpGetBody(t, base+"/healthz")

	// Graceful shutdown: SIGINT ends the solve with the best-so-far
	// placement and exit 0, and the SSE capture terminates with it.
	if err := cmd.Process.Signal(syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	waitErr := make(chan error, 1)
	go func() { waitErr <- cmd.Wait() }()
	select {
	case err := <-waitErr:
		if err != nil {
			t.Fatalf("mscplace exited non-zero: %v\nstderr:\n%s", err, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("mscplace did not exit after SIGINT; stderr:\n%s", stderr.String())
	}
	var sse sseResult
	select {
	case sse = <-sseCh:
	case <-time.After(30 * time.Second):
		t.Fatal("SSE capture did not terminate after process exit")
	}
	if len(sse.data) == 0 {
		t.Fatal("SSE capture is empty")
	}
	// The data lines of the SSE stream are, stitched together, a
	// schema-valid JSONL document.
	counts, verr = telemetry.ValidateJSONL(strings.NewReader(strings.Join(sse.data, "\n") + "\n"))
	if verr != nil {
		t.Fatalf("SSE event stream invalid: %v", verr)
	}
	if counts["round"] == 0 {
		t.Fatal("SSE stream carried no round events")
	}
}

// TestMscplaceOpsGoldenMetricNames pins the metric-name surface: a real
// greedy solve with the full plane up must export exactly the names in
// docs/metrics.golden. A new metric is a deliberate act — add it to the
// golden file in the same change.
func TestMscplaceOpsGoldenMetricNames(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go toolchain")
	}
	dir := t.TempDir()
	inst := filepath.Join(dir, "inst.json")
	dump := filepath.Join(dir, "metrics.prom")
	runTool(t, "mscgen", "-kind", "rgg", "-n", "50", "-m", "10", "-pt", "0.12",
		"-k", "3", "-seed", "17", "-out", inst)
	// -ops brings the HTTP server (and its per-server metrics) up;
	// -metrics-dump makes the final exposition deterministic to read.
	runTool(t, "mscplace", "-in", inst, "-alg", "greedy",
		"-ops", "127.0.0.1:0", "-metrics-dump", dump)

	f, err := os.Open(dump)
	if err != nil {
		t.Fatal(err)
	}
	samples, perr := obs.ParsePrometheus(f)
	f.Close()
	if perr != nil {
		t.Fatal(perr)
	}
	got := obs.MetricNames(samples)

	raw, err := os.ReadFile(filepath.Join("..", "docs", "metrics.golden"))
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	var want []string
	for _, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if line != "" && !strings.HasPrefix(line, "#") {
			want = append(want, line)
		}
	}
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Fatalf("metric names drifted from docs/metrics.golden\ngot:\n  %s\nwant:\n  %s",
			strings.Join(got, "\n  "), strings.Join(want, "\n  "))
	}
	// A greedy solve exercises the row cache and the incremental
	// evaluator; their metrics must carry real traffic, not just names.
	if samples["msc_dijkstra_runs_total"] == 0 {
		t.Error("greedy solve recorded no Dijkstra runs")
	}
	if samples["msc_round_wall_seconds_count"] == 0 {
		t.Error("greedy solve recorded no rounds")
	}
}

// TestMscsweepHarvestMetrics: -harvest-metrics runs children with their
// ops planes up and folds each child's final exposition into the sweep.
func TestMscsweepHarvestMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go toolchain")
	}
	dir := t.TempDir()
	for _, tool := range []string{"mscgen", "mscplace", "mscsweep"} {
		buildTool(t, dir, tool)
	}
	matrix := filepath.Join(dir, "matrix.json")
	if err := os.WriteFile(matrix, []byte(`{
		"families": ["rgg"], "n": [40], "m": [8], "p_t": [0.12], "k": [2],
		"solvers": ["greedy"], "seeds": [1, 2], "quick": true
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	traj := filepath.Join(dir, "BENCH_harvest.json")
	out, err := exec.Command(filepath.Join(dir, "mscsweep"),
		"-matrix", matrix, "-tools", dir, "-out", traj, "-host", "harvest",
		"-workers", "2", "-harvest-metrics").CombinedOutput()
	if err != nil {
		t.Fatalf("mscsweep -harvest-metrics failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "metrics=") {
		t.Fatalf("progress lines carry no harvested-metric counts:\n%s", out)
	}
	if !strings.Contains(string(out), "harvested") {
		t.Fatalf("no harvest summary printed:\n%s", out)
	}
}
