package main

import (
	"reflect"
	"strings"
	"testing"
)

func TestResolveIDs(t *testing.T) {
	cases := []struct {
		name    string
		exp     string
		want    []string
		wantErr string
	}{
		{"single id", "table1", []string{"table1"}, ""},
		{"comma list keeps given order", "fig3,table1", []string{"fig3", "table1"}, ""},
		{"whitespace trimmed", " table1 , fig2 ", []string{"table1", "fig2"}, ""},
		{"all expands to suite order", "all", validIDs, ""},
		{"duplicate id runs once", "table1,table1", []string{"table1"}, ""},
		{"duplicate keeps first occurrence order", "fig2,table1,fig2,table1", []string{"fig2", "table1"}, ""},
		{"id then all does not repeat it", "fig3,all", append([]string{"fig3"}, removeID(validIDs, "fig3")...), ""},
		{"all then id does not repeat it", "all,table2", validIDs, ""},
		{"all twice is one suite", "all,all", validIDs, ""},
		{"unknown id fails fast", "table1,bogus", nil, `unknown experiment "bogus"`},
		{"empty element fails", "table1,,fig1", nil, `unknown experiment ""`},
		{"empty value fails", "", nil, `unknown experiment ""`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := resolveIDs(tc.exp)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("error = %v, want containing %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("resolveIDs(%q) = %v, want %v", tc.exp, got, tc.want)
			}
		})
	}
}

func removeID(ids []string, drop string) []string {
	out := make([]string, 0, len(ids))
	for _, id := range ids {
		if id != drop {
			out = append(out, id)
		}
	}
	return out
}
