// Command mscbench regenerates the tables and figures of the paper's
// evaluation (§VII) and prints them as aligned text (or CSV).
//
// Usage:
//
//	mscbench -exp table1              # Table I on the RG graph
//	mscbench -exp all -seed 7         # everything, custom seed
//	mscbench -exp fig3 -csv           # Fig. 3 series as CSV
//	mscbench -exp fig1 -svg out/      # also write Fig. 1 SVG renderings
//	mscbench -exp fig5a -quick        # reduced-scale smoke run
//	mscbench -exp table1 -quick -jsonl out.jsonl   # machine-readable run records
//	mscbench -validate out.jsonl      # schema-check a JSONL record file
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"msc/internal/cli"
	"msc/internal/core"
	"msc/internal/experiments"
	"msc/internal/shortestpath"
	"msc/internal/telemetry"
	"msc/internal/viz"
)

func main() { cli.Run("mscbench", run) }

// validIDs lists every runnable experiment, in suite order. "all" expands
// to exactly this list.
var validIDs = []string{"table1", "table2", "fig1", "fig2", "fig3", "fig4", "fig5a", "fig5b", "ext1", "ext2", "ext3", "ext4"}

// resolveIDs expands and validates a comma-separated -exp value. Unknown
// ids fail fast — before any experiment runs — with the full valid set, so
// a typo can never masquerade as a clean empty run. Repeated ids (given
// twice, or once plus via "all") run once, keeping first-occurrence order:
// each experiment owns its id in the output, so a duplicate would double
// the suite's wall time and emit ambiguous duplicate records.
func resolveIDs(exp string) ([]string, error) {
	known := make(map[string]bool, len(validIDs))
	for _, id := range validIDs {
		known[id] = true
	}
	var ids []string
	seen := make(map[string]bool, len(validIDs))
	add := func(id string) {
		if !seen[id] {
			seen[id] = true
			ids = append(ids, id)
		}
	}
	for _, id := range strings.Split(exp, ",") {
		id = strings.TrimSpace(id)
		switch {
		case id == "all":
			for _, v := range validIDs {
				add(v)
			}
		case known[id]:
			add(id)
		default:
			return nil, fmt.Errorf("unknown experiment %q: valid ids are %s, all", id, strings.Join(validIDs, ", "))
		}
	}
	if len(ids) == 0 {
		return nil, fmt.Errorf("no experiment ids given: valid ids are %s, all", strings.Join(validIDs, ", "))
	}
	return ids, nil
}

func run(ctx context.Context) (retErr error) {
	_ = ctx // suite experiments run to completion; records stay comparable
	var (
		exp      = flag.String("exp", "all", "experiment id(s), comma-separated: "+strings.Join(validIDs, "|")+"|all")
		seed     = flag.Int64("seed", 1, "random seed (equal seeds reproduce runs exactly)")
		quick    = flag.Bool("quick", false, "reduced-scale smoke run")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned text")
		svg      = flag.String("svg", "", "directory to write fig1 SVG renderings into")
		par      = flag.Int("par", 0, "candidate-scan workers: 1 = serial, 0 = GOMAXPROCS (results are identical either way)")
		budgetF  = flag.Float64("budget", 0, "knapsack budget B replacing the cardinality budget k on every instance; prices come from -cost-model (0 = cardinality placement)")
		distB    = cli.AddDistBackendFlag(flag.CommandLine)
		lmF      = cli.AddLandmarksFlag(flag.CommandLine)
		evalM    = cli.AddEvalModeFlag(flag.CommandLine)
		survM    = cli.AddSurviveFlag(flag.CommandLine)
		costM    = cli.AddCostModelFlag(flag.CommandLine)
		jsonl    = flag.String("jsonl", "", "write machine-readable run records as JSON lines to this file")
		validate = flag.String("validate", "", "validate a JSONL run-record file against the telemetry schema and exit")
		version  = flag.Bool("version", false, "print version and exit")
	)
	prof := cli.AddProfileFlags(flag.CommandLine)
	opsF := cli.AddOpsFlags(flag.CommandLine)
	flag.Parse()
	if *version {
		fmt.Println(cli.Version("mscbench"))
		return nil
	}
	if *validate != "" {
		return validateFile(*validate)
	}
	core.SetDefaultParallelism(*par)
	backend, err := core.ParseDistBackend(*distB)
	if err != nil {
		return err
	}
	core.SetDefaultDistBackend(backend)
	core.SetDefaultLandmarks(*lmF)
	evalMode, err := core.ParseEvalMode(*evalM)
	if err != nil {
		return err
	}
	core.SetDefaultEvalMode(evalMode)
	survive, err := core.ParseSurvivability(*survM)
	if err != nil {
		return err
	}
	core.SetDefaultSurvivability(survive)
	costModel, err := core.ParseCostModel(*costM)
	if err != nil {
		return err
	}
	if costModel == core.CostTable {
		// A per-candidate table needs one price vector per instance; the
		// suite builds many instances, so only the shared models apply.
		return fmt.Errorf(`-cost-model table needs a per-instance price table (use mscplace -cost-table); mscbench supports unit and length`)
	}
	if *budgetF != 0 {
		if *budgetF < 0 {
			return fmt.Errorf("-budget must be non-negative, got %v", *budgetF)
		}
		core.SetDefaultBudget(*budgetF)
		core.SetDefaultCostModel(costModel)
	}

	ids, err := resolveIDs(*exp)
	if err != nil {
		return err
	}
	stopProf, err := prof.Start()
	if err != nil {
		return err
	}
	defer stopProf()
	plane, err := opsF.Start("mscbench")
	if err != nil {
		return err
	}
	defer func() {
		if cerr := plane.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "mscbench: ops:", cerr)
		}
	}()
	defer plane.Recover()

	cfg := experiments.Config{Seed: *seed, Quick: *quick}
	var jsonlSink *telemetry.JSONLSink
	if *jsonl != "" {
		f, err := os.Create(*jsonl)
		if err != nil {
			return err
		}
		defer f.Close()
		jsonlSink = telemetry.NewJSONL(f)
		// A sink write that failed silently poisons BENCH aggregation;
		// surface the sticky error as a nonzero exit.
		defer func() {
			if err := jsonlSink.Err(); err != nil && retErr == nil {
				retErr = fmt.Errorf("jsonl: %w", err)
			}
		}()
	}
	// One sink feeds the experiments: the plane's fanout when ops is on
	// (JSONL attached), the bare JSONL sink otherwise. Typed-nil sinks
	// never reach the interface.
	var sink telemetry.Sink
	if jsonlSink != nil {
		sink = jsonlSink
	}
	if plane != nil {
		plane.Attach(sink)
		sink = plane.Sink()
	}
	cfg.Sink = sink
	for _, id := range ids {
		before := telemetry.Global().Snapshot()
		start := time.Now()
		if err := runOne(cfg, id, *csv, *svg); err != nil {
			return err
		}
		elapsed := time.Since(start)
		if sink != nil {
			// A whole-experiment record on top of the per-solver records
			// Config.Sink emits: no single σ applies, so Sigma is −1 by
			// schema convention.
			sink.Emit(telemetry.RunRecord{
				Name:        id,
				Algorithm:   "experiment",
				Seed:        *seed,
				Workers:     *par,
				DistBackend: *distB,
				EvalMode:    *evalM,
				Survive:     *survM,
				Quick:       *quick,
				Budget:      *budgetF,
				CostModel:   benchCostModel(*budgetF, costModel),
				Sigma:       -1,
				SigmaWorst:  -1,
				WallMS:      float64(elapsed.Nanoseconds()) / 1e6,

				RowBytesResident: shortestpath.RowBytesResident(),
				Counters:         telemetry.Global().Snapshot().Sub(before),
			})
		}
		fmt.Printf("[%s took %v]\n\n", id, elapsed.Round(time.Millisecond))
	}
	return nil
}

// benchCostModel names the cost model of a budgeted suite run ("" for
// cardinality runs, the resolved model otherwise — auto prices unit).
func benchCostModel(budget float64, m core.CostModel) string {
	if budget == 0 {
		return ""
	}
	if m == core.CostModelAuto {
		m = core.CostUnit
	}
	return string(m)
}

// validateFile schema-checks a JSONL record file and prints the per-kind
// line counts. An empty file is an error: CI points this at freshly
// emitted records, where zero lines means the emitter is broken.
func validateFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	counts, err := telemetry.ValidateJSONL(f)
	if err != nil {
		return fmt.Errorf("validate %s: %w", path, err)
	}
	total := 0
	kinds := make([]string, 0, len(counts))
	for kind, n := range counts {
		total += n
		kinds = append(kinds, kind)
	}
	if total == 0 {
		return fmt.Errorf("validate %s: no events found", path)
	}
	sort.Strings(kinds)
	fmt.Printf("%s: %d events OK", path, total)
	for _, kind := range kinds {
		fmt.Printf(" %s=%d", kind, counts[kind])
	}
	fmt.Println()
	return nil
}

func runOne(cfg experiments.Config, id string, csv bool, svgDir string) error {
	emitTable := func(t *experiments.Table) {
		if csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Println(t.Format())
		}
	}
	emitFigs := func(figs ...*experiments.Figure) {
		for _, f := range figs {
			if csv {
				fmt.Print(f.CSV())
			} else {
				fmt.Println(f.Format())
			}
		}
	}
	switch id {
	case "table1":
		emitTable(cfg.Table1())
	case "table2":
		emitTable(cfg.Table2())
	case "fig1":
		res := cfg.Fig1()
		fmt.Printf("Fig 1: placement comparison (k=%d, p_t=%.2f)\n", res.K, res.Pt)
		fmt.Printf("  AA:     %v\n", res.AA)
		fmt.Printf("  Random: %v\n\n", res.Random)
		if err := viz.WriteASCII(os.Stdout, res.SceneAA); err != nil {
			return err
		}
		if err := viz.WriteASCII(os.Stdout, res.SceneRandom); err != nil {
			return err
		}
		if svgDir != "" {
			if err := writeSVGs(res, svgDir); err != nil {
				return err
			}
		}
	case "fig2":
		emitFigs(cfg.Fig2()...)
	case "fig3":
		emitFigs(cfg.Fig3()...)
	case "fig4":
		emitFigs(cfg.Fig4()...)
	case "fig5a":
		emitFigs(cfg.Fig5a())
	case "fig5b":
		emitFigs(cfg.Fig5b())
	case "ext1":
		emitFigs(cfg.Ext1()...)
	case "ext2":
		emitFigs(cfg.Ext2())
	case "ext3":
		emitFigs(cfg.Ext3())
	case "ext4":
		emitFigs(cfg.Ext4())
	default:
		return fmt.Errorf("unknown experiment %q", id)
	}
	return nil
}

func writeSVGs(res experiments.Fig1Result, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, item := range []struct {
		name  string
		scene viz.Scene
	}{
		{"fig1_aa.svg", res.SceneAA},
		{"fig1_random.svg", res.SceneRandom},
	} {
		f, err := os.Create(filepath.Join(dir, item.name))
		if err != nil {
			return err
		}
		if err := viz.WriteSVG(f, item.scene, viz.SVGOptions{}); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", filepath.Join(dir, item.name))
	}
	return nil
}
