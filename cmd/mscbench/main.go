// Command mscbench regenerates the tables and figures of the paper's
// evaluation (§VII) and prints them as aligned text (or CSV).
//
// Usage:
//
//	mscbench -exp table1              # Table I on the RG graph
//	mscbench -exp all -seed 7         # everything, custom seed
//	mscbench -exp fig3 -csv           # Fig. 3 series as CSV
//	mscbench -exp fig1 -svg out/      # also write Fig. 1 SVG renderings
//	mscbench -exp fig5a -quick        # reduced-scale smoke run
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"msc/internal/core"
	"msc/internal/experiments"
	"msc/internal/viz"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mscbench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exp   = flag.String("exp", "all", "experiment id: table1|table2|fig1|fig2|fig3|fig4|fig5a|fig5b|ext1|ext2|ext3|ext4|all")
		seed  = flag.Int64("seed", 1, "random seed (equal seeds reproduce runs exactly)")
		quick = flag.Bool("quick", false, "reduced-scale smoke run")
		csv   = flag.Bool("csv", false, "emit CSV instead of aligned text")
		svg   = flag.String("svg", "", "directory to write fig1 SVG renderings into")
		par   = flag.Int("par", 0, "candidate-scan workers: 1 = serial, 0 = GOMAXPROCS (results are identical either way)")
	)
	flag.Parse()
	core.SetDefaultParallelism(*par)

	cfg := experiments.Config{Seed: *seed, Quick: *quick}
	ids := strings.Split(*exp, ",")
	if *exp == "all" {
		ids = []string{"table1", "table2", "fig1", "fig2", "fig3", "fig4", "fig5a", "fig5b", "ext1", "ext2", "ext3", "ext4"}
	}
	for _, id := range ids {
		start := time.Now()
		if err := runOne(cfg, strings.TrimSpace(id), *csv, *svg); err != nil {
			return err
		}
		fmt.Printf("[%s took %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

func runOne(cfg experiments.Config, id string, csv bool, svgDir string) error {
	emitTable := func(t *experiments.Table) {
		if csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Println(t.Format())
		}
	}
	emitFigs := func(figs ...*experiments.Figure) {
		for _, f := range figs {
			if csv {
				fmt.Print(f.CSV())
			} else {
				fmt.Println(f.Format())
			}
		}
	}
	switch id {
	case "table1":
		emitTable(cfg.Table1())
	case "table2":
		emitTable(cfg.Table2())
	case "fig1":
		res := cfg.Fig1()
		fmt.Printf("Fig 1: placement comparison (k=%d, p_t=%.2f)\n", res.K, res.Pt)
		fmt.Printf("  AA:     %v\n", res.AA)
		fmt.Printf("  Random: %v\n\n", res.Random)
		if err := viz.WriteASCII(os.Stdout, res.SceneAA); err != nil {
			return err
		}
		if err := viz.WriteASCII(os.Stdout, res.SceneRandom); err != nil {
			return err
		}
		if svgDir != "" {
			if err := writeSVGs(res, svgDir); err != nil {
				return err
			}
		}
	case "fig2":
		emitFigs(cfg.Fig2()...)
	case "fig3":
		emitFigs(cfg.Fig3()...)
	case "fig4":
		emitFigs(cfg.Fig4()...)
	case "fig5a":
		emitFigs(cfg.Fig5a())
	case "fig5b":
		emitFigs(cfg.Fig5b())
	case "ext1":
		emitFigs(cfg.Ext1()...)
	case "ext2":
		emitFigs(cfg.Ext2())
	case "ext3":
		emitFigs(cfg.Ext3())
	case "ext4":
		emitFigs(cfg.Ext4())
	default:
		return fmt.Errorf("unknown experiment %q", id)
	}
	return nil
}

func writeSVGs(res experiments.Fig1Result, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, item := range []struct {
		name  string
		scene viz.Scene
	}{
		{"fig1_aa.svg", res.SceneAA},
		{"fig1_random.svg", res.SceneRandom},
	} {
		f, err := os.Create(filepath.Join(dir, item.name))
		if err != nil {
			return err
		}
		if err := viz.WriteSVG(f, item.scene, viz.SVGOptions{}); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", filepath.Join(dir, item.name))
	}
	return nil
}
