// Command mscplace computes a shortcut placement for a problem instance
// produced by mscgen (or hand-written in the same JSON format).
//
// Usage:
//
//	mscplace -in instance.json -alg sandwich
//	mscplace -in instance.json -alg aea -iters 800 -seed 7
//	mscplace -in instance.json -alg cn        # common-node special case
//
// The placement is printed one shortcut per line plus a σ summary, and
// optionally written back as JSON with -out.
//
// Runs are supervised: -deadline bounds wall-clock time, SIGINT/SIGTERM
// request a graceful stop, and in both cases the best placement found so
// far is still printed (and recorded in -jsonl with its stop reason).
// For the evolutionary algorithms, -checkpoint snapshots the run
// periodically and -resume continues a checkpointed run bit-identically.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"msc"
	"msc/internal/cli"
	"msc/internal/obs"
)

func main() { cli.Run("mscplace", run) }

type output struct {
	Algorithm  string     `json:"algorithm"`
	K          int        `json:"k"`
	Pt         float64    `json:"p_t"`
	Sigma      int        `json:"maintained_pairs"`
	TotalPairs int        `json:"total_pairs"`
	Shortcuts  [][2]int32 `json:"shortcuts"`
	// RatioBound is the sandwich algorithm's data-dependent guarantee
	// factor σ(F_σ)/ν(F_σ)·(1−1/e); zero for other algorithms.
	RatioBound float64 `json:"ratio_bound,omitempty"`
	// Survive and SigmaWorst report the survivability mode and the
	// worst-case σ⁻ over its single-failure scenarios; omitted under the
	// fault-free objective.
	Survive    string `json:"survive,omitempty"`
	SigmaWorst *int   `json:"sigma_worst,omitempty"`
	// Budget, CostModel, and CostSpent report a budget-weighted run: the
	// knapsack budget B, the cost model pricing the candidates, and the
	// total price of the placement; omitted for cardinality runs.
	Budget    float64 `json:"budget,omitempty"`
	CostModel string  `json:"cost_model,omitempty"`
	CostSpent float64 `json:"cost_spent,omitempty"`
}

func run(ctx context.Context) (retErr error) {
	var (
		in       = flag.String("in", "", "instance JSON (required)")
		alg      = flag.String("alg", "sandwich", "algorithm: sandwich|greedy|mu|nu|ea|aea|random|cn")
		k        = flag.Int("k", 0, "override shortcut budget (default: instance's)")
		pt       = flag.Float64("pt", 0, "override threshold p_t (default: instance's)")
		iters    = flag.Int("iters", 500, "iterations r (ea, aea)")
		seed     = flag.Int64("seed", 1, "random seed (ea, aea, random)")
		outP     = flag.String("out", "", "also write the result as JSON to this path")
		report   = flag.Bool("report", false, "print a per-pair diagnostic table")
		refine   = flag.Bool("refine", false, "apply local-search swap refinement to the placement")
		par      = flag.Int("par", 0, "candidate-scan workers: 1 = serial, 0 = GOMAXPROCS (placements are identical either way)")
		budgetF  = flag.Float64("budget", 0, "knapsack budget B replacing the cardinality budget k; shortcut prices come from -cost-model (0 = cardinality placement)")
		costTab  = flag.String("cost-table", "", "per-pair shortcut price table JSON for -cost-model table")
		distB    = cli.AddDistBackendFlag(flag.CommandLine)
		lmF      = cli.AddLandmarksFlag(flag.CommandLine)
		evalM    = cli.AddEvalModeFlag(flag.CommandLine)
		survM    = cli.AddSurviveFlag(flag.CommandLine)
		costM    = cli.AddCostModelFlag(flag.CommandLine)
		jsonl    = flag.String("jsonl", "", "write per-round telemetry events and a run record as JSON lines to this file")
		deadline = flag.Duration("deadline", 0, "wall-clock budget for the solver; on expiry the best-so-far placement is emitted (0 = none)")
		ckpt     = flag.String("checkpoint", "", "write resumable run snapshots as JSON lines to this file (ea, aea)")
		ckptEach = flag.Int("checkpoint-every", 25, "snapshot cadence in iterations for -checkpoint (0 = final state only)")
		resume   = flag.String("resume", "", "resume an ea/aea run from the last checkpoint in this file; -iters is the total budget")
		version  = flag.Bool("version", false, "print version and exit")
	)
	prof := cli.AddProfileFlags(flag.CommandLine)
	opsF := cli.AddOpsFlags(flag.CommandLine)
	flag.Parse()
	if *version {
		fmt.Println(cli.Version("mscplace"))
		return nil
	}
	msc.SetDefaultParallelism(*par)
	backend, err := msc.ParseDistBackend(*distB)
	if err != nil {
		return err
	}
	evalMode, err := msc.ParseEvalMode(*evalM)
	if err != nil {
		return err
	}
	survive, err := msc.ParseSurvivability(*survM)
	if err != nil {
		return err
	}
	costModel, err := msc.ParseCostModel(*costM)
	if err != nil {
		return err
	}
	budgeted := *budgetF != 0 || costModel != msc.CostModelAuto || *costTab != ""
	if budgeted && *alg == "cn" {
		return fmt.Errorf("-alg cn solves the cardinality common-node case; it does not support -budget")
	}
	if *costTab != "" && costModel != msc.CostModelAuto && costModel != msc.CostTable {
		return fmt.Errorf("-cost-table conflicts with -cost-model %s", costModel)
	}
	if *in == "" {
		return fmt.Errorf("-in is required")
	}
	stopProf, err := prof.Start()
	if err != nil {
		return err
	}
	defer stopProf()
	plane, err := opsF.Start("mscplace")
	if err != nil {
		return err
	}
	defer func() {
		if cerr := plane.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "mscplace: ops:", cerr)
		}
	}()
	// On a solver panic (a shard panic re-raised by ParallelFor), dump the
	// flight recorder before the crash surfaces.
	defer plane.Recover()

	var jsonlSink *msc.JSONLSink
	if *jsonl != "" {
		tf, err := os.Create(*jsonl)
		if err != nil {
			return err
		}
		defer tf.Close()
		jsonlSink = msc.NewJSONLSink(tf)
	}
	// The solver gets ONE sink: the ops plane's fanout when the plane is up
	// (with the JSONL file attached to it), the bare JSONL sink otherwise.
	// A typed-nil *JSONLSink must never reach the interface, so the
	// interface value is only assigned from non-nil concrete sinks.
	var sink msc.TelemetrySink
	if jsonlSink != nil {
		sink = jsonlSink
	}
	if plane != nil {
		plane.Attach(sink)
		sink = plane.Sink()
	}
	if sink != nil {
		// Any sink implies round-level clock reads already, so also feed the
		// obs histograms — RunRecord.ShardImbalance works without -ops.
		obs.SetEnabled(true)
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	doc, err := msc.ReadInstanceJSON(f)
	if err != nil {
		return err
	}
	g, err := doc.Graph()
	if err != nil {
		return err
	}
	ps, err := doc.PairSet()
	if err != nil {
		return err
	}
	if ps == nil {
		return fmt.Errorf("instance carries no important pairs")
	}
	budget := doc.Budget
	if *k > 0 {
		budget = *k
	}
	if budget <= 0 && budgeted {
		// Under -budget the knapsack budget B replaces cardinality k; the
		// instance still validates k ≥ 1, so default it.
		budget = 1
	}
	if budget <= 0 {
		return fmt.Errorf("no shortcut budget: set one in the instance or pass -k")
	}
	threshold := doc.FailureThreshold
	if *pt > 0 {
		threshold = *pt
	}
	if threshold <= 0 {
		return fmt.Errorf("no threshold: set one in the instance or pass -pt")
	}
	instOpts := &msc.InstanceOptions{AllowTrivial: true, DistBackend: backend, Landmarks: *lmF, EvalMode: evalMode,
		Parallelism: *par, Survive: survive}
	if budgeted {
		instOpts.Budget = *budgetF
		instOpts.CostModel = costModel
		if *costTab != "" {
			tf, err := os.Open(*costTab)
			if err != nil {
				return err
			}
			ct, err := msc.ReadCostTable(tf)
			tf.Close()
			if err != nil {
				return err
			}
			// Expand the per-pair table into the dense per-candidate price
			// vector the instance validates against its universe.
			costs := make([]float64, msc.NumCandidatesFor(g.N()))
			for u := int32(0); u < int32(g.N()); u++ {
				for v := u + 1; v < int32(g.N()); v++ {
					costs[msc.CandidateIndexFor(g.N(), msc.Edge{U: u, V: v})] = ct.Cost(u, v)
				}
			}
			instOpts.Costs = costs
			instOpts.CostModel = msc.CostTable
		}
	}
	inst, err := msc.NewInstance(g, ps, msc.NewThreshold(threshold), budget, instOpts)
	if err != nil {
		return err
	}
	// Under a survivability mode placements carry a second figure of merit:
	// the worst-case σ⁻ over the instance's single-failure scenarios.
	survivable := inst.Survive() != msc.SurviveNone
	sigmaWorst := func(sel []int) int { return inst.SigmaWorst(sel) }
	rng := msc.NewRand(*seed)

	// A typed-nil sink must never reach an interface-typed option (it
	// would defeat the solvers' nil fast path), so options are built only
	// when tracing is on.
	solverOpts := []msc.Option{msc.WithContext(ctx), msc.WithDeadline(*deadline)}
	eaOpts := msc.EAOptions{Iterations: *iters, Context: ctx, Deadline: *deadline}
	aeaOpts := msc.DefaultAEAOptions()
	aeaOpts.Iterations = *iters
	aeaOpts.Context = ctx
	aeaOpts.Deadline = *deadline
	lsOpts := msc.LocalSearchOptions{Context: ctx, Deadline: *deadline}
	if sink != nil {
		solverOpts = append(solverOpts, msc.WithSink(sink))
		eaOpts.Sink = sink
		aeaOpts.Sink = sink
		lsOpts.Sink = sink
	}

	evolutionary := *alg == "ea" || *alg == "aea"
	if (*ckpt != "" || *resume != "") && !evolutionary {
		return fmt.Errorf("-checkpoint/-resume require -alg ea or aea, got %q", *alg)
	}
	if *resume != "" {
		rf, err := os.Open(*resume)
		if err != nil {
			return err
		}
		cp, err := msc.LastCheckpoint(rf)
		rf.Close()
		if err != nil {
			return fmt.Errorf("resume %s: %w", *resume, err)
		}
		if cp.Algorithm != *alg {
			return fmt.Errorf("resume %s: checkpoint is from -alg %s, not %s", *resume, cp.Algorithm, *alg)
		}
		if cp.Round > *iters {
			return fmt.Errorf("resume %s: checkpoint at iteration %d exceeds -iters %d", *resume, cp.Round, *iters)
		}
		eaOpts.Resume = cp
		aeaOpts.Resume = cp
	}
	if *ckpt != "" {
		// Checkpoints write crash-safely: each snapshot atomically replaces
		// the file, so a kill mid-write can never tear the stream a later
		// -resume depends on.
		ckptSink := msc.NewAtomicJSONLSink(*ckpt)
		defer func() {
			if err := ckptSink.Err(); err != nil && retErr == nil {
				retErr = fmt.Errorf("checkpoint: %w", err)
			}
		}()
		eaOpts.CheckpointSink = ckptSink
		aeaOpts.CheckpointSink = ckptSink
		eaOpts.CheckpointEvery = *ckptEach
		aeaOpts.CheckpointEvery = *ckptEach
	}
	before := msc.CountersSnapshot()
	imbBefore := obs.ShardImbalance.Snapshot()
	start := time.Now()

	var pl msc.Placement
	var ratio float64
	switch *alg {
	case "sandwich":
		res := msc.Sandwich(inst, solverOpts...)
		pl, ratio = res.Best, res.ApproxFactor
	case "greedy":
		pl = msc.GreedySigma(inst, solverOpts...)
	case "mu":
		pl = msc.GreedyMu(inst)
	case "nu":
		pl = msc.GreedyNu(inst)
	case "ea":
		pl = msc.EA(inst, eaOpts, rng).Best
	case "aea":
		pl = msc.AEA(inst, aeaOpts, rng).Best
	case "random":
		var rerr error
		pl, rerr = msc.RandomPlacement(inst, *iters, rng, solverOpts...)
		if rerr != nil {
			return rerr
		}
	case "cn":
		res, err := msc.SolveCommonNode(inst)
		if err != nil {
			return err
		}
		pl = res.Placement
	default:
		return fmt.Errorf("unknown algorithm %q", *alg)
	}

	if *refine {
		refined := msc.LocalSearch(inst, pl.Selection, lsOpts)
		// Survivable placements compare lexicographically by (σ⁻, σ): a swap
		// that hardens the worst failure scenario wins even at equal σ.
		improved := refined.Sigma > pl.Sigma
		if survivable {
			w := inst.MaxSigma() + 1
			improved = sigmaWorst(refined.Selection)*w+refined.Sigma > sigmaWorst(pl.Selection)*w+pl.Sigma
		}
		if improved {
			fmt.Printf("refinement: σ %d -> %d\n", pl.Sigma, refined.Sigma)
			pl = refined
		}
	}

	declaredWorst := -1
	if survivable {
		declaredWorst = sigmaWorst(pl.Selection)
	}
	costSpent := 0.0
	if budgeted {
		costSpent = inst.CostOf(pl.Selection)
	}
	if sink != nil {
		sink.Emit(msc.RunRecord{
			ShardImbalance:   obs.ShardImbalance.Snapshot().Sub(imbBefore).Mean(),
			Name:             *alg,
			Algorithm:        *alg,
			Seed:             *seed,
			Workers:          *par,
			DistBackend:      *distB,
			EvalMode:         *evalM,
			Survive:          string(inst.Survive()),
			N:                inst.N(),
			Pairs:            ps.Len(),
			Candidates:       inst.NumCandidates(),
			K:                budget,
			Pt:               threshold,
			Budget:           inst.Budget(),
			CostSpent:        costSpent,
			CostModel:        string(inst.CostModel()),
			Sigma:            pl.Sigma,
			MaxSigma:         inst.MaxSigma(),
			SigmaWorst:       declaredWorst,
			WallMS:           float64(time.Since(start).Nanoseconds()) / 1e6,
			RowBytesResident: msc.RowBytesResident(),
			Counters:         msc.CountersSnapshot().Sub(before),
			StopReason:       string(pl.Stop.Reason),
		})
	}
	// A silently failed telemetry file is worse than no file: surface the
	// sticky write error as a nonzero exit after the human-readable output.
	defer func() {
		if jsonlSink == nil || retErr != nil {
			return
		}
		if err := jsonlSink.Err(); err != nil {
			retErr = fmt.Errorf("jsonl: %w", err)
		}
	}()

	fmt.Printf("algorithm:  %s\n", *alg)
	switch pl.Stop.Reason {
	case msc.StopDeadline, msc.StopCanceled:
		fmt.Printf("stopped:    %s after %d rounds (best-so-far placement follows)\n",
			pl.Stop.Reason, pl.Stop.Rounds)
	}
	if budgeted {
		fmt.Printf("maintained: %d / %d pairs (p_t=%.3g, B=%g, cost model %s)\n",
			pl.Sigma, ps.Len(), threshold, inst.Budget(), inst.CostModel())
		fmt.Printf("cost:       %g / %g budget spent\n", costSpent, inst.Budget())
	} else {
		fmt.Printf("maintained: %d / %d pairs (p_t=%.3g, k=%d)\n", pl.Sigma, ps.Len(), threshold, budget)
	}
	if survivable {
		fmt.Printf("worst-case: %d / %d pairs through any single %s failure\n",
			declaredWorst, ps.Len(), inst.Survive())
	}
	if ratio > 0 {
		fmt.Printf("guarantee:  ≥ %.3f × optimal\n", ratio)
	}
	for _, e := range pl.Edges {
		fmt.Printf("shortcut:   %s -- %s\n", g.Label(e.U), g.Label(e.V))
	}
	if *report {
		fmt.Println()
		fmt.Print(msc.FormatReport(msc.Report(inst, pl.Selection)))
	}

	if *outP != "" {
		res := output{
			Algorithm:  *alg,
			K:          budget,
			Pt:         threshold,
			Sigma:      pl.Sigma,
			TotalPairs: ps.Len(),
			RatioBound: ratio,
		}
		if survivable {
			res.Survive = string(inst.Survive())
			res.SigmaWorst = &declaredWorst
		}
		if budgeted {
			res.Budget = inst.Budget()
			res.CostModel = string(inst.CostModel())
			res.CostSpent = costSpent
		}
		for _, e := range pl.Edges {
			res.Shortcuts = append(res.Shortcuts, [2]int32{e.U, e.V})
		}
		of, err := os.Create(*outP)
		if err != nil {
			return err
		}
		defer of.Close()
		enc := json.NewEncoder(of)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			return err
		}
	}
	return nil
}
