// Command mscplace computes a shortcut placement for a problem instance
// produced by mscgen (or hand-written in the same JSON format).
//
// Usage:
//
//	mscplace -in instance.json -alg sandwich
//	mscplace -in instance.json -alg aea -iters 800 -seed 7
//	mscplace -in instance.json -alg cn        # common-node special case
//
// The placement is printed one shortcut per line plus a σ summary, and
// optionally written back as JSON with -out.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"msc"
	"msc/internal/cli"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mscplace:", err)
		os.Exit(1)
	}
}

type output struct {
	Algorithm  string     `json:"algorithm"`
	K          int        `json:"k"`
	Pt         float64    `json:"p_t"`
	Sigma      int        `json:"maintained_pairs"`
	TotalPairs int        `json:"total_pairs"`
	Shortcuts  [][2]int32 `json:"shortcuts"`
	// RatioBound is the sandwich algorithm's data-dependent guarantee
	// factor σ(F_σ)/ν(F_σ)·(1−1/e); zero for other algorithms.
	RatioBound float64 `json:"ratio_bound,omitempty"`
}

func run() error {
	var (
		in      = flag.String("in", "", "instance JSON (required)")
		alg     = flag.String("alg", "sandwich", "algorithm: sandwich|greedy|mu|nu|ea|aea|random|cn")
		k       = flag.Int("k", 0, "override shortcut budget (default: instance's)")
		pt      = flag.Float64("pt", 0, "override threshold p_t (default: instance's)")
		iters   = flag.Int("iters", 500, "iterations r (ea, aea)")
		seed    = flag.Int64("seed", 1, "random seed (ea, aea, random)")
		outP    = flag.String("out", "", "also write the result as JSON to this path")
		report  = flag.Bool("report", false, "print a per-pair diagnostic table")
		refine  = flag.Bool("refine", false, "apply local-search swap refinement to the placement")
		par     = flag.Int("par", 0, "candidate-scan workers: 1 = serial, 0 = GOMAXPROCS (placements are identical either way)")
		jsonl   = flag.String("jsonl", "", "write per-round telemetry events and a run record as JSON lines to this file")
		version = flag.Bool("version", false, "print version and exit")
	)
	prof := cli.AddProfileFlags(flag.CommandLine)
	flag.Parse()
	if *version {
		fmt.Println(cli.Version("mscplace"))
		return nil
	}
	msc.SetDefaultParallelism(*par)
	if *in == "" {
		return fmt.Errorf("-in is required")
	}
	stopProf, err := prof.Start()
	if err != nil {
		return err
	}
	defer stopProf()

	var sink *msc.JSONLSink
	if *jsonl != "" {
		tf, err := os.Create(*jsonl)
		if err != nil {
			return err
		}
		defer tf.Close()
		sink = msc.NewJSONLSink(tf)
		defer func() {
			if err := sink.Err(); err != nil {
				fmt.Fprintln(os.Stderr, "mscplace: jsonl:", err)
			}
		}()
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	doc, err := msc.ReadInstanceJSON(f)
	if err != nil {
		return err
	}
	g, err := doc.Graph()
	if err != nil {
		return err
	}
	ps, err := doc.PairSet()
	if err != nil {
		return err
	}
	if ps == nil {
		return fmt.Errorf("instance carries no important pairs")
	}
	budget := doc.Budget
	if *k > 0 {
		budget = *k
	}
	if budget <= 0 {
		return fmt.Errorf("no shortcut budget: set one in the instance or pass -k")
	}
	threshold := doc.FailureThreshold
	if *pt > 0 {
		threshold = *pt
	}
	if threshold <= 0 {
		return fmt.Errorf("no threshold: set one in the instance or pass -pt")
	}
	inst, err := msc.NewInstance(g, ps, msc.NewThreshold(threshold), budget,
		&msc.InstanceOptions{AllowTrivial: true})
	if err != nil {
		return err
	}
	rng := msc.NewRand(*seed)

	// A typed-nil sink must never reach an interface-typed option (it
	// would defeat the solvers' nil fast path), so options are built only
	// when tracing is on.
	var solverOpts []msc.Option
	eaOpts := msc.EAOptions{Iterations: *iters}
	aeaOpts := msc.DefaultAEAOptions()
	aeaOpts.Iterations = *iters
	lsOpts := msc.LocalSearchOptions{}
	if sink != nil {
		solverOpts = append(solverOpts, msc.WithSink(sink))
		eaOpts.Sink = sink
		aeaOpts.Sink = sink
		lsOpts.Sink = sink
	}
	before := msc.CountersSnapshot()
	start := time.Now()

	var pl msc.Placement
	var ratio float64
	switch *alg {
	case "sandwich":
		res := msc.Sandwich(inst, solverOpts...)
		pl, ratio = res.Best, res.ApproxFactor
	case "greedy":
		pl = msc.GreedySigma(inst, solverOpts...)
	case "mu":
		pl = msc.GreedyMu(inst)
	case "nu":
		pl = msc.GreedyNu(inst)
	case "ea":
		pl = msc.EA(inst, eaOpts, rng).Best
	case "aea":
		pl = msc.AEA(inst, aeaOpts, rng).Best
	case "random":
		pl = msc.RandomPlacement(inst, *iters, rng, solverOpts...)
	case "cn":
		res, err := msc.SolveCommonNode(inst)
		if err != nil {
			return err
		}
		pl = res.Placement
	default:
		return fmt.Errorf("unknown algorithm %q", *alg)
	}

	if *refine {
		refined := msc.LocalSearch(inst, pl.Selection, lsOpts)
		if refined.Sigma > pl.Sigma {
			fmt.Printf("refinement: σ %d -> %d\n", pl.Sigma, refined.Sigma)
			pl = refined
		}
	}

	if sink != nil {
		sink.Emit(msc.RunRecord{
			Name:       *alg,
			Algorithm:  *alg,
			Seed:       *seed,
			Workers:    *par,
			N:          inst.N(),
			Pairs:      ps.Len(),
			Candidates: inst.NumCandidates(),
			K:          budget,
			Pt:         threshold,
			Sigma:      pl.Sigma,
			MaxSigma:   inst.MaxSigma(),
			WallMS:     float64(time.Since(start).Nanoseconds()) / 1e6,
			Counters:   msc.CountersSnapshot().Sub(before),
		})
	}

	fmt.Printf("algorithm:  %s\n", *alg)
	fmt.Printf("maintained: %d / %d pairs (p_t=%.3g, k=%d)\n", pl.Sigma, ps.Len(), threshold, budget)
	if ratio > 0 {
		fmt.Printf("guarantee:  ≥ %.3f × optimal\n", ratio)
	}
	for _, e := range pl.Edges {
		fmt.Printf("shortcut:   %s -- %s\n", g.Label(e.U), g.Label(e.V))
	}
	if *report {
		fmt.Println()
		fmt.Print(msc.FormatReport(msc.Report(inst, pl.Selection)))
	}

	if *outP != "" {
		res := output{
			Algorithm:  *alg,
			K:          budget,
			Pt:         threshold,
			Sigma:      pl.Sigma,
			TotalPairs: ps.Len(),
			RatioBound: ratio,
		}
		for _, e := range pl.Edges {
			res.Shortcuts = append(res.Shortcuts, [2]int32{e.U, e.V})
		}
		of, err := os.Create(*outP)
		if err != nil {
			return err
		}
		defer of.Close()
		enc := json.NewEncoder(of)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			return err
		}
	}
	return nil
}
