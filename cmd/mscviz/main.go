// Command mscviz renders a problem instance (and optionally a placement
// produced by mscplace) as SVG or an ASCII sketch.
//
// Usage:
//
//	mscviz -in instance.json -placement placement.json -out picture.svg
//	mscviz -in instance.json -ascii
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"msc"
	"msc/internal/cli"
)

func main() { cli.Run("mscviz", run) }

type placementFile struct {
	Shortcuts [][2]int32 `json:"shortcuts"`
	Sigma     int        `json:"maintained_pairs"`
}

func run(ctx context.Context) error {
	_ = ctx // rendering is fast; no supervision points needed
	var (
		in      = flag.String("in", "", "instance JSON (required)")
		place   = flag.String("placement", "", "placement JSON from mscplace -out")
		out     = flag.String("out", "", "SVG output path (default stdout)")
		ascii   = flag.Bool("ascii", false, "emit an ASCII sketch instead of SVG")
		title   = flag.String("title", "", "picture title")
		width   = flag.Int("width", 720, "SVG width in pixels")
		version = flag.Bool("version", false, "print version and exit")
	)
	opsF := cli.AddOpsFlags(flag.CommandLine)
	flag.Parse()
	if *version {
		fmt.Println(cli.Version("mscviz"))
		return nil
	}
	plane, err := opsF.Start("mscviz")
	if err != nil {
		return err
	}
	defer func() {
		if cerr := plane.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "mscviz: ops:", cerr)
		}
	}()
	defer plane.Recover()
	if *in == "" {
		return fmt.Errorf("-in is required")
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	doc, err := msc.ReadInstanceJSON(f)
	if err != nil {
		return err
	}
	g, err := doc.Graph()
	if err != nil {
		return err
	}
	ps, err := doc.PairSet()
	if err != nil {
		return err
	}
	sc := msc.Scene{Graph: g, Pairs: ps, Title: *title}
	if *place != "" {
		pf, err := os.Open(*place)
		if err != nil {
			return err
		}
		defer pf.Close()
		var pl placementFile
		if err := json.NewDecoder(pf).Decode(&pl); err != nil {
			return fmt.Errorf("decode placement: %w", err)
		}
		for _, s := range pl.Shortcuts {
			sc.Shortcuts = append(sc.Shortcuts, msc.Edge{U: s[0], V: s[1]})
		}
		if sc.Title == "" {
			sc.Title = fmt.Sprintf("%d shortcuts, %d pairs maintained", len(sc.Shortcuts), pl.Sigma)
		}
	}
	w := os.Stdout
	if *out != "" {
		of, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer of.Close()
		w = of
	}
	if *ascii {
		return msc.WriteSceneASCII(w, sc)
	}
	return msc.WriteSceneSVG(w, sc, msc.SVGOptions{Width: *width})
}
