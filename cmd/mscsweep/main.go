// Command mscsweep runs fleet-scale benchmark sweeps: it expands a
// declarative scenario matrix (graph family × n × m × k × solver ×
// dist-backend × eval-mode × parallelism × seeds) into runs, fans them
// across a bounded pool of worker processes (re-execing mscgen, mscplace,
// and mscbench with -jsonl), aggregates the schema-validated run records
// into a canonical BENCH_<host>.json trajectory (per-scenario medians and
// IQRs), and optionally diffs the result against a committed baseline
// with a noise-aware regression gate.
//
// Usage:
//
//	mscsweep -quick -tools bin -out BENCH_ci.json
//	mscsweep -matrix sweep.json -workers 8 -deadline 2m
//	mscsweep -quick -tools bin -baseline BENCH_ci.json -wall-threshold 0
//	mscsweep -diff BENCH_old.json BENCH_new.json
//	mscsweep -validate BENCH_ci.json
//	mscsweep -quick -list           # print the expanded scenarios and exit
//
// Exit status is 1 when any run fails or the regression gate trips; the
// gate's typed report names every flagged scenario and metric.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	"msc/internal/cli"
	"msc/internal/sweep"
)

func main() { cli.Run("mscsweep", run) }

func run(ctx context.Context) error {
	var (
		quick       = flag.Bool("quick", false, "run the built-in quick smoke matrix")
		matrixPath  = flag.String("matrix", "", "JSON matrix spec (see internal/sweep.Matrix); mutually exclusive with -quick")
		list        = flag.Bool("list", false, "print the expanded scenario list and exit without running")
		workers     = flag.Int("workers", 0, "worker processes (0 = min(NumCPU, 4))")
		tools       = flag.String("tools", "", "directory holding the mscgen/mscplace/mscbench binaries (default: the directory of this executable, then $PATH)")
		outPath     = flag.String("out", "", "trajectory output path (default BENCH_<host>.json)")
		host        = flag.String("host", "", "host label recorded in the trajectory (default: sanitized hostname)")
		keep        = flag.String("keep", "", "keep per-run JSONL records and instances in this directory (default: a temp dir removed on success)")
		baseline    = flag.String("baseline", "", "diff the new trajectory against this baseline file and fail on regression")
		deadline    = flag.Duration("deadline", 2*time.Minute, "per-run wall-clock budget (0 = unbounded)")
		iters       = flag.Int("iters", 200, "iterations for ea/aea/random solvers")
		retries     = flag.Int("retries", 2, "max retries per run for transient child failures (signal-killed or unstartable children, torn record streams); solver errors never retry")
		wallPct     = flag.Float64("wall-threshold", 30, "wall-clock regression threshold in percent (0 disables wall gating — use for cross-host diffs)")
		counterPct  = flag.Float64("counter-threshold", 1, "deterministic-counter and σ regression threshold in percent")
		harvest     = flag.Bool("harvest-metrics", false, "run every child with its ops plane up (-ops 127.0.0.1:0) and harvest its /metrics exposition into the sweep results")
		diffMode    = flag.Bool("diff", false, "diff two trajectory files (args: baseline candidate) and exit")
		validatPath = flag.String("validate", "", "validate a trajectory file and exit")
		version     = flag.Bool("version", false, "print version and exit")
	)
	opsF := cli.AddOpsFlags(flag.CommandLine)
	flag.Parse()
	if *version {
		fmt.Println(cli.Version("mscsweep"))
		return nil
	}
	plane, err := opsF.Start("mscsweep")
	if err != nil {
		return err
	}
	defer func() {
		if cerr := plane.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "mscsweep: ops:", cerr)
		}
	}()
	defer plane.Recover()
	opts := sweep.DefaultDiffOptions()
	opts.WallPct = *wallPct
	opts.CounterPct = *counterPct

	if *validatPath != "" {
		t, err := sweep.ReadTrajectoryFile(*validatPath)
		if err != nil {
			return err
		}
		fmt.Printf("%s: OK (%d scenarios, host %q)\n", *validatPath, len(t.Scenarios), t.Host)
		return nil
	}
	if *diffMode {
		if flag.NArg() != 2 {
			return fmt.Errorf("-diff takes exactly two trajectory files, got %d args", flag.NArg())
		}
		return diffFiles(flag.Arg(0), flag.Arg(1), opts)
	}

	matrix, err := loadMatrix(*quick, *matrixPath)
	if err != nil {
		return err
	}
	scenarios, err := matrix.Expand()
	if err != nil {
		return err
	}
	if *list {
		for _, sc := range scenarios {
			fmt.Printf("%s seed=%d\n", sc.Key(), sc.Seed)
		}
		fmt.Printf("%d runs total\n", len(scenarios))
		return nil
	}

	hostLabel := *host
	if hostLabel == "" {
		hostLabel = defaultHost()
	}
	out := *outPath
	if out == "" {
		out = "BENCH_" + hostLabel + ".json"
	}

	workDir := *keep
	if workDir != "" {
		if err := os.MkdirAll(workDir, 0o755); err != nil {
			return err
		}
	} else {
		tmp, err := os.MkdirTemp("", "mscsweep-*")
		if err != nil {
			return err
		}
		workDir = tmp
		defer os.RemoveAll(tmp)
	}

	procRunner := &sweep.ProcessRunner{
		WorkDir:  workDir,
		Deadline: *deadline,
		Iters:    *iters,
		Ops:      *harvest,
	}
	needBench := len(matrix.Experiments) > 0
	if procRunner.Mscgen, err = findTool(*tools, "mscgen"); err != nil {
		return err
	}
	if procRunner.Mscplace, err = findTool(*tools, "mscplace"); err != nil {
		return err
	}
	if needBench {
		if procRunner.Mscbench, err = findTool(*tools, "mscbench"); err != nil {
			return err
		}
	}
	// Transient infra failures (an OOM-killed child, a torn record file)
	// retry with backoff instead of scrapping the sweep; deterministic
	// solver errors still fail on the first attempt.
	var runner sweep.Runner = procRunner
	if *retries > 0 {
		runner = &sweep.Retrier{Runner: procRunner, Max: *retries}
	}

	poolSize := *workers
	if poolSize <= 0 {
		poolSize = runtime.NumCPU()
		if poolSize > 4 {
			poolSize = 4
		}
	}
	fmt.Printf("sweep: %d runs across %d workers (records in %s)\n", len(scenarios), poolSize, workDir)
	start := time.Now()
	var mu sync.Mutex
	done := 0
	results := sweep.RunAll(ctx, runner, scenarios, poolSize, func(res sweep.Result) {
		mu.Lock()
		defer mu.Unlock()
		done++
		status := "ok"
		if res.Err != nil {
			status = "FAILED"
		}
		extra := ""
		if res.Metrics != nil {
			extra = fmt.Sprintf(" metrics=%d", len(res.Metrics))
		}
		if res.Retries > 0 {
			extra += fmt.Sprintf(" retries=%d", res.Retries)
		}
		fmt.Printf("  [%d/%d] %s seed=%d %s (%.0f ms)%s\n", done, len(scenarios),
			res.Scenario.Key(), res.Scenario.Seed, status, res.Record.WallMS, extra)
	})
	var failures []error
	retried := 0
	for _, res := range results {
		if res.Err != nil {
			failures = append(failures, res.Err)
		}
		retried += res.Retries
	}
	if len(failures) > 0 {
		for _, err := range failures {
			fmt.Fprintln(os.Stderr, err)
		}
		return fmt.Errorf("%d of %d runs failed (records kept in %s)", len(failures), len(scenarios), workDir)
	}

	traj, err := sweep.Aggregate(hostLabel, results)
	if err != nil {
		return err
	}
	if err := sweep.WriteTrajectoryFile(out, traj); err != nil {
		return err
	}
	fmt.Printf("sweep: %d runs -> %d scenarios -> %s in %v\n",
		len(results), len(traj.Scenarios), out, time.Since(start).Round(time.Millisecond))
	if retried > 0 {
		// A sweep that only passes on retry is a flaky fleet; keep that
		// visible in the summary even though the runs succeeded.
		fmt.Printf("sweep: %d transient child failure(s) recovered by retry\n", retried)
	}
	if *harvest {
		var rounds, samples float64
		for _, res := range results {
			rounds += res.Metrics["msc_round_wall_seconds_count"]
			samples += float64(len(res.Metrics))
		}
		fmt.Printf("sweep: harvested %.0f metric samples (%.0f solver rounds observed)\n",
			samples, rounds)
	}

	if *baseline != "" {
		base, err := sweep.ReadTrajectoryFile(*baseline)
		if err != nil {
			return err
		}
		report, err := sweep.Diff(base, traj, opts)
		if err != nil {
			return err
		}
		fmt.Println(report.Format())
		return report.Gate()
	}
	return nil
}

func loadMatrix(quick bool, path string) (sweep.Matrix, error) {
	switch {
	case quick && path != "":
		return sweep.Matrix{}, fmt.Errorf("-quick and -matrix are mutually exclusive")
	case quick:
		return sweep.QuickMatrix(), nil
	case path != "":
		f, err := os.Open(path)
		if err != nil {
			return sweep.Matrix{}, err
		}
		defer f.Close()
		return sweep.ReadMatrix(f)
	default:
		return sweep.Matrix{}, fmt.Errorf("no sweep selected: pass -quick or -matrix spec.json")
	}
}

func diffFiles(basePath, candPath string, opts sweep.DiffOptions) error {
	base, err := sweep.ReadTrajectoryFile(basePath)
	if err != nil {
		return err
	}
	cand, err := sweep.ReadTrajectoryFile(candPath)
	if err != nil {
		return err
	}
	report, err := sweep.Diff(base, cand, opts)
	if err != nil {
		return err
	}
	fmt.Println(report.Format())
	return report.Gate()
}

// findTool resolves a helper binary: an explicit -tools dir wins, then
// the directory of the mscsweep executable itself (the `go build -o bin
// ./cmd/...` layout), then $PATH.
func findTool(toolsDir, name string) (string, error) {
	if toolsDir != "" {
		path := filepath.Join(toolsDir, name)
		if _, err := os.Stat(path); err != nil {
			return "", fmt.Errorf("tool %s not found in -tools %s: %w", name, toolsDir, err)
		}
		// Absolute, so exec never mistakes a separator-free relative path
		// (-tools . joins to a bare "mscgen") for a $PATH lookup.
		abs, err := filepath.Abs(path)
		if err != nil {
			return "", err
		}
		return abs, nil
	}
	if exe, err := os.Executable(); err == nil {
		path := filepath.Join(filepath.Dir(exe), name)
		if _, err := os.Stat(path); err == nil {
			return path, nil
		}
	}
	if path, err := exec.LookPath(name); err == nil {
		return path, nil
	}
	return "", fmt.Errorf("tool %s not found next to mscsweep or on $PATH; build the helpers (go build -o bin ./cmd/...) and pass -tools bin", name)
}

// defaultHost is the hostname reduced to trajectory-safe characters.
func defaultHost() string {
	h, err := os.Hostname()
	if err != nil || h == "" {
		return "unknown"
	}
	var b strings.Builder
	for _, r := range h {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			b.WriteRune(r)
		default:
			b.WriteRune('-')
		}
	}
	return b.String()
}
