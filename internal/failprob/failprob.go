// Package failprob implements the failure-probability ↔ length algebra from
// §III-C of the paper.
//
// A path Λ = v1..vq fails unless every link succeeds, so its failure
// probability is p(Λ) = 1 − Π (1 − p_i). Defining the length of an edge as
// l = −ln(1 − p) turns the product into a sum: p(Λ) = 1 − e^(−len(Λ)), and
// "find the most reliable path" becomes "find the shortest path". A failure
// threshold p_t likewise becomes the distance threshold d_t = −ln(1 − p_t).
package failprob

import (
	"fmt"
	"math"
)

// LengthFromProb converts a link failure probability p ∈ [0, 1) to the edge
// length −ln(1−p). LengthFromProb(0) == 0 (a perfectly reliable shortcut
// edge has length zero, §III-C). It panics outside [0, 1): p == 1 would be a
// permanently dead link, which should simply be omitted from the graph.
func LengthFromProb(p float64) float64 {
	if p < 0 || p >= 1 || math.IsNaN(p) {
		panic(fmt.Sprintf("failprob: probability %v outside [0, 1)", p))
	}
	// math.Log1p(-p) = ln(1-p) computed accurately for small p.
	return -math.Log1p(-p)
}

// ProbFromLength converts a path length back to its failure probability
// 1 − e^(−l). Infinite length (unreachable) maps to probability 1.
func ProbFromLength(l float64) float64 {
	if l < 0 || math.IsNaN(l) {
		panic(fmt.Sprintf("failprob: negative length %v", l))
	}
	if math.IsInf(l, +1) {
		return 1
	}
	// -Expm1(-l) = 1 - e^{-l} computed accurately for small l.
	return -math.Expm1(-l)
}

// PathFailure returns the failure probability of a path whose links have
// the given failure probabilities: 1 − Π (1 − p_i).
func PathFailure(probs []float64) float64 {
	logSurvive := 0.0
	for _, p := range probs {
		if p < 0 || p > 1 || math.IsNaN(p) {
			panic(fmt.Sprintf("failprob: probability %v outside [0, 1]", p))
		}
		if p == 1 {
			return 1
		}
		logSurvive += math.Log1p(-p)
	}
	return -math.Expm1(logSurvive)
}

// Threshold bundles the two equivalent forms of the connectivity
// requirement: a pair is "maintained" iff its best path has failure
// probability ≤ P, i.e. distance ≤ D = −ln(1−P).
type Threshold struct {
	P float64 // failure-probability threshold p_t
	D float64 // distance threshold d_t = −ln(1−p_t)
}

// NewThreshold builds a Threshold from a failure-probability bound
// p ∈ [0, 1).
func NewThreshold(p float64) Threshold {
	return Threshold{P: p, D: LengthFromProb(p)}
}

// MeetsLength reports whether a path of the given length satisfies the
// threshold.
func (t Threshold) MeetsLength(l float64) bool { return l <= t.D }

// MeetsProb reports whether a path with the given failure probability
// satisfies the threshold.
func (t Threshold) MeetsProb(p float64) bool { return p <= t.P }

// String renders the threshold in both forms.
func (t Threshold) String() string {
	return fmt.Sprintf("p_t=%.4g (d_t=%.4g)", t.P, t.D)
}
