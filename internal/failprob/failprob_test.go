package failprob

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLengthFromProbKnownValues(t *testing.T) {
	if got := LengthFromProb(0); got != 0 {
		t.Fatalf("LengthFromProb(0) = %v, want 0 (shortcut edges)", got)
	}
	// -ln(1-0.5) = ln 2
	if got := LengthFromProb(0.5); math.Abs(got-math.Ln2) > 1e-15 {
		t.Fatalf("LengthFromProb(0.5) = %v, want ln 2", got)
	}
}

func TestRoundTrip(t *testing.T) {
	f := func(raw float64) bool {
		p := math.Abs(math.Mod(raw, 1)) * 0.999 // p ∈ [0, 0.999)
		l := LengthFromProb(p)
		back := ProbFromLength(l)
		return math.Abs(back-p) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestProbFromLengthEdges(t *testing.T) {
	if got := ProbFromLength(0); got != 0 {
		t.Fatalf("ProbFromLength(0) = %v", got)
	}
	if got := ProbFromLength(math.Inf(1)); got != 1 {
		t.Fatalf("ProbFromLength(+Inf) = %v, want 1 (unreachable)", got)
	}
}

func TestInvalidInputsPanic(t *testing.T) {
	cases := []func(){
		func() { LengthFromProb(-0.1) },
		func() { LengthFromProb(1) },
		func() { LengthFromProb(math.NaN()) },
		func() { ProbFromLength(-1) },
		func() { ProbFromLength(math.NaN()) },
		func() { PathFailure([]float64{1.5}) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestPathFailure(t *testing.T) {
	// Two links at 0.5 each: fail unless both survive → 1 - 0.25.
	if got := PathFailure([]float64{0.5, 0.5}); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("PathFailure = %v, want 0.75", got)
	}
	if got := PathFailure(nil); got != 0 {
		t.Fatalf("empty path failure = %v, want 0", got)
	}
	if got := PathFailure([]float64{0.2, 1, 0.2}); got != 1 {
		t.Fatalf("dead link path failure = %v, want 1", got)
	}
}

// Property: the additivity identity behind the formulation (§III-C) —
// the failure probability of a concatenated path computed link-wise
// equals converting the summed lengths back.
func TestPathFailureMatchesLengthSum(t *testing.T) {
	f := func(raws []float64) bool {
		probs := make([]float64, 0, len(raws))
		total := 0.0
		for _, r := range raws {
			p := math.Abs(math.Mod(r, 1)) * 0.99
			probs = append(probs, p)
			total += LengthFromProb(p)
		}
		direct := PathFailure(probs)
		viaLength := ProbFromLength(total)
		return math.Abs(direct-viaLength) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestThreshold(t *testing.T) {
	thr := NewThreshold(0.25)
	if math.Abs(thr.D-(-math.Log(0.75))) > 1e-15 {
		t.Fatalf("d_t = %v", thr.D)
	}
	if !thr.MeetsLength(thr.D) || thr.MeetsLength(thr.D+1e-9) {
		t.Fatal("MeetsLength boundary wrong")
	}
	if !thr.MeetsProb(0.25) || thr.MeetsProb(0.2501) {
		t.Fatal("MeetsProb boundary wrong")
	}
	if thr.String() == "" {
		t.Fatal("empty String")
	}
}

// Property: monotone duality — shorter paths always mean lower failure.
func TestMonotoneDuality(t *testing.T) {
	f := func(a, b float64) bool {
		la := math.Abs(math.Mod(a, 10))
		lb := math.Abs(math.Mod(b, 10))
		if la > lb {
			la, lb = lb, la
		}
		return ProbFromLength(la) <= ProbFromLength(lb)+1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
