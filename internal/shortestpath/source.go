package shortestpath

import "msc/internal/graph"

// DistanceSource abstracts read access to the all-pairs shortest-path
// metric of a fixed graph. Two implementations exist:
//
//   - Table materializes every row eagerly (n Dijkstras, n² float64s) and
//     answers queries by plain indexing. Best when most rows will be
//     touched (bound construction, common-node coverage, experiments that
//     sweep thresholds over one network).
//
//   - LazyTable computes rows on demand and memoizes them in a sharded,
//     concurrency-safe cache. Best when only a sparse set of rows is ever
//     read — the overlay oracle touches only the rows of the ≤2m social-
//     pair endpoints plus the ≤2k shortcut endpoints of the selections it
//     evaluates, so instance-construction cost scales with the rows the
//     solver actually uses instead of with n.
//
// Implementations must be safe for concurrent readers, and every method
// must be deterministic: for the same graph, Dist and Row return
// bit-identical values no matter the backend, the call order, or the
// number of goroutines calling. The solver's determinism contract
// (serial == parallel placements, PR 1) rests on that guarantee.
type DistanceSource interface {
	// N returns the number of nodes the source covers.
	N() int
	// Dist returns the shortest-path distance between u and v (+Inf if
	// disconnected).
	Dist(u, v graph.NodeID) float64
	// Row returns the full distance row of u. The returned slice is owned
	// by the source and must not be modified; it remains valid (and
	// immutable) for the caller's lifetime even if the source later
	// evicts the row from its cache.
	Row(u graph.NodeID) []float64
}

var (
	_ DistanceSource = (*Table)(nil)
	_ DistanceSource = (*LazyTable)(nil)
)
