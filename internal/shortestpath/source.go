package shortestpath

import "msc/internal/graph"

// DistanceSource abstracts read access to the all-pairs shortest-path
// metric of a fixed graph. Three implementations exist:
//
//   - Table materializes every row eagerly (n Dijkstras, n² float64s) and
//     answers queries by plain indexing. Best when most rows will be
//     touched (bound construction, common-node coverage, experiments that
//     sweep thresholds over one network).
//
//   - LazyTable computes rows on demand and memoizes them in a sharded,
//     concurrency-safe cache. Best when only a sparse set of rows is ever
//     read — the overlay oracle touches only the rows of the ≤2m social-
//     pair endpoints plus the ≤2k shortcut endpoints of the selections it
//     evaluates, so instance-construction cost scales with the rows the
//     solver actually uses instead of with n.
//
//   - BoundedTable computes rows with a Dijkstra bounded at a reach and
//     stores them sparsely (sorted (node, float32) pairs); everything
//     outside the reach-ball reads as +Inf. Best at 10⁵–10⁶ nodes, where
//     even one dense row is significant and full-graph Dijkstras dominate
//     the run. Its metric differs from the others in two declared ways:
//     distances beyond the reach are reported as +Inf, and in-ball
//     distances carry float32 quantization (≈1e-7 relative). Consumers
//     that only compare distances against a threshold ≤ reach — the
//     entire MSC objective — cannot observe the truncation; the
//     quantization is accepted as the metric itself.
//
// Implementations must be safe for concurrent readers, and every method
// must be deterministic: for the same graph, Dist and Row return
// bit-identical values no matter the call order or the number of
// goroutines calling, and dense/lazy return bit-identical values to each
// other (BoundedTable is deterministic too, but its values follow the
// truncated, quantized metric above). The solver's determinism contract
// (serial == parallel placements, PR 1) rests on that guarantee.
type DistanceSource interface {
	// N returns the number of nodes the source covers.
	N() int
	// Dist returns the shortest-path distance between u and v (+Inf if
	// disconnected).
	Dist(u, v graph.NodeID) float64
	// Row returns the full distance row of u. The returned slice is owned
	// by the source and must not be modified; it remains valid (and
	// immutable) for the caller's lifetime even if the source later
	// evicts the row from its cache.
	Row(u graph.NodeID) []float64
}

// SparseSource is the optional extension a DistanceSource implements when
// its rows are naturally sparse. Reach declares the truncation radius:
// SparseRow entries within Reach are exact (up to float32 quantization),
// everything absent is certified > Reach or unreachable. Consumers use it
// to iterate only the ball instead of scanning n entries per row, and to
// decide whether threshold comparisons against d_t ≤ Reach are safe.
type SparseSource interface {
	DistanceSource
	// Reach returns the truncation radius rows were computed at.
	Reach() float64
	// SparseRow returns u's row in sparse form. Like Row, the result is
	// immutable and stays valid for the caller's lifetime.
	SparseRow(u graph.NodeID) SparseRow
}

var (
	_ DistanceSource = (*Table)(nil)
	_ DistanceSource = (*LazyTable)(nil)
	_ DistanceSource = (*BoundedTable)(nil)
	_ SparseSource   = (*BoundedTable)(nil)
)
