package shortestpath

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"msc/internal/graph"
	"msc/internal/indexheap"
	"msc/internal/obs"
	"msc/internal/telemetry"
)

// rowBytesResident tracks the bytes of distance-row payload currently
// resident across every row cache in the process: LazyTable dense rows
// (8·n per entry), BoundedTable sparse rows, dense rows materialized from
// them, and ALT landmark potential rows. It feeds the
// msc_row_bytes_resident gauge and the RunRecord field of the same name,
// turning the "row memory scales with the d_t-ball, not n" claim into an
// observable number.
var rowBytesResident atomic.Int64

// RowBytesResident reports the bytes of distance-row payload currently
// held by all row caches in the process.
func RowBytesResident() int64 { return rowBytesResident.Load() }

func init() {
	obs.NewGaugeFunc(obs.Default(), "msc_row_bytes_resident",
		"Bytes of distance-row payload resident across all row caches (lazy dense rows, bounded sparse rows, materialized dense rows, landmark potentials).",
		func() float64 { return float64(rowBytesResident.Load()) })
}

// SparseRow is a compact distance row: the nodes inside a bounded-reach
// Dijkstra ball as parallel slices of node ids (sorted ascending) and
// float32 distances. Nodes absent from the row are beyond the reach or
// unreachable and read as +Inf. Distances are quantized to float32
// (≈1e-7 relative error), which the objective tolerates: it only ever
// compares distances against d_t, and the solver treats the stored value
// as the metric.
type SparseRow struct {
	ids  []int32
	dist []float32
}

// Len returns the number of in-ball entries.
func (r SparseRow) Len() int { return len(r.ids) }

// Entry returns the i-th (node, distance) pair in ascending node order.
func (r SparseRow) Entry(i int) (graph.NodeID, float64) {
	return graph.NodeID(r.ids[i]), float64(r.dist[i])
}

// At returns the stored distance to v, or +Inf if v is outside the ball.
func (r SparseRow) At(v graph.NodeID) float64 {
	lo, hi := 0, len(r.ids)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if r.ids[mid] < int32(v) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(r.ids) && r.ids[lo] == int32(v) {
		return float64(r.dist[lo])
	}
	return Inf
}

// Bytes returns the payload size of the row: 8 bytes per entry (int32 id
// + float32 distance), excluding slice headers.
func (r SparseRow) Bytes() int64 { return int64(len(r.ids)) * 8 }

// AppendBinary appends the row's portable binary encoding to dst: a
// little-endian uint32 entry count followed by (uint32 id, IEEE-754
// float32 bits) pairs. DecodeSparseRow inverts it exactly.
func (r SparseRow) AppendBinary(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(r.ids)))
	for i, id := range r.ids {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(id))
		dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(r.dist[i]))
	}
	return dst
}

// DecodeSparseRow parses the encoding produced by AppendBinary. It
// rejects malformed input: short or oversized buffers, unsorted or
// duplicate ids, ids outside int32, and distances that are negative, NaN
// or infinite (a ball entry is always a finite distance ≥ 0). For every
// accepted input, re-encoding the result reproduces the input bytes.
func DecodeSparseRow(data []byte) (SparseRow, error) {
	if len(data) < 4 {
		return SparseRow{}, fmt.Errorf("shortestpath: sparse row: truncated header (%d bytes)", len(data))
	}
	n := binary.LittleEndian.Uint32(data)
	rest := data[4:]
	if uint64(len(rest)) != uint64(n)*8 {
		return SparseRow{}, fmt.Errorf("shortestpath: sparse row: %d entries need %d payload bytes, got %d", n, uint64(n)*8, len(rest))
	}
	r := SparseRow{ids: make([]int32, n), dist: make([]float32, n)}
	prev := int32(-1)
	for i := range r.ids {
		id := binary.LittleEndian.Uint32(rest[i*8:])
		if id > math.MaxInt32 {
			return SparseRow{}, fmt.Errorf("shortestpath: sparse row: node id %d overflows int32", id)
		}
		if int32(id) <= prev {
			return SparseRow{}, fmt.Errorf("shortestpath: sparse row: ids not strictly increasing at entry %d", i)
		}
		d := math.Float32frombits(binary.LittleEndian.Uint32(rest[i*8+4:]))
		if !(d >= 0) || float64(d) > math.MaxFloat32 {
			return SparseRow{}, fmt.Errorf("shortestpath: sparse row: entry %d has invalid distance %v", i, d)
		}
		prev = int32(id)
		r.ids[i] = int32(id)
		r.dist[i] = d
	}
	return r, nil
}

// BoundedOptions tune a BoundedTable. Reach is required; the zero values
// of the remaining fields (unbounded cache, default shards, no landmarks)
// are reasonable for tests, while core.NewInstance passes the resolved
// landmark count.
type BoundedOptions struct {
	// Reach is the exploration bound: rows hold exactly the nodes within
	// Reach of the source. For the MSC objective Reach = d_t suffices —
	// every comparison the solver makes is against d_t, and any augmented
	// path of length ≤ d_t decomposes into graph segments each ≤ d_t, so
	// distances beyond the reach are interchangeable with +Inf. Must be
	// ≥ 0 and not NaN; +Inf degenerates to full (but still sparse) rows.
	Reach float64
	// MaxRows caps cached non-pinned rows (0 = unbounded), exactly as in
	// LazyOptions.
	MaxRows int
	// Shards fixes the cache shard count; 0 picks the LazyTable default.
	Shards int
	// Landmarks is the number of ALT landmarks precomputed at
	// construction for triangle-inequality lower bounds (0 = none). Each
	// landmark costs one full Dijkstra and 4·n bytes.
	Landmarks int
}

// BoundedStats is a point-in-time snapshot of a BoundedTable's activity.
type BoundedStats struct {
	// Hits/Misses/Computes/Evictions mirror LazyStats for the sparse-row
	// cache.
	Hits      int64
	Misses    int64
	Computes  int64
	Evictions int64
	// Cached is the number of sparse rows currently held (pinned
	// included).
	Cached int
	// RowBytes is the resident payload: sparse rows plus any dense rows
	// materialized through Row (8·n each).
	RowBytes int64
	// DenseRows counts rows materialized to dense []float64 form via Row;
	// those are kept for the table's lifetime.
	DenseRows int
	// LandmarkPrunes counts Dist queries answered +Inf straight from the
	// ALT lower bound, without touching (or computing) a row.
	LandmarkPrunes int64
}

// BoundedTable is a DistanceSource specialized for threshold objectives:
// rows are computed with a bounded Dijkstra at the configured reach and
// stored sparsely, so per-row memory scales with the size of the
// reach-ball instead of with n. Everything outside the ball reads as
// +Inf, which is indistinguishable from the true distance for any
// consumer that only compares distances against a threshold ≤ reach.
//
// The cache layer is LazyTable's, verbatim: sharded, concurrency-safe,
// one sync.Once per entry, FIFO eviction under MaxRows, Pin for
// never-evict rows. Dijkstra scratch (heap, distance buffer, touched
// list) lives in a sync.Pool so warm rows allocate only their own sparse
// payload. An optional ALT landmark layer answers provably-unreachable
// Dist queries without a row at all.
type BoundedTable struct {
	g      *graph.Graph
	n      int
	reach  float64
	shards []boundedShard
	lm     *Landmarks

	scratch sync.Pool // *boundedScratch

	// dense holds rows materialized through Row (the DistanceSource
	// dense-row contract: valid and immutable for the caller's
	// lifetime). They are never evicted; bulk row consumers at scale use
	// SparseRow instead.
	denseMu sync.Mutex
	dense   map[graph.NodeID][]float64

	hits      atomic.Int64
	misses    atomic.Int64
	computes  atomic.Int64
	evictions atomic.Int64
	rowBytes  atomic.Int64
	lmPrunes  atomic.Int64
}

type boundedShard struct {
	mu     sync.Mutex
	cap    int // shard's share of MaxRows; -1 = unbounded
	rows   map[graph.NodeID]*boundedRow
	fifo   []graph.NodeID
	pinned map[graph.NodeID]bool
}

// boundedRow is one cache entry; the Once publishes row exactly as in
// lazyRow. bytes is set after the compute so eviction can settle the
// byte accounting; a row evicted mid-compute leaves its bytes counted
// until the table is dropped (the gauge is a resource indicator, not a
// ledger, and the slack is one row).
type boundedRow struct {
	once  sync.Once
	row   SparseRow
	bytes atomic.Int64
}

type boundedScratch struct {
	h *indexheap.Heap
	// dist is kept +Inf-filled between runs; each run resets exactly the
	// entries it touched.
	dist    []float64
	touched []int32
}

// NewBoundedTable wraps g in a bounded-reach sparse distance source. The
// graph must stay immutable for the table's lifetime. It rejects a NaN
// or negative reach: a NaN bound would silently degenerate to full
// exploration (every `d > NaN` comparison is false), which is exactly
// the cost profile this table exists to avoid.
func NewBoundedTable(g *graph.Graph, opts BoundedOptions) (*BoundedTable, error) {
	if math.IsNaN(opts.Reach) {
		return nil, fmt.Errorf("shortestpath: bounded table: reach must not be NaN")
	}
	if opts.Reach < 0 {
		return nil, fmt.Errorf("shortestpath: bounded table: reach must be ≥ 0, got %v", opts.Reach)
	}
	shards := opts.Shards
	if shards <= 0 {
		shards = defaultLazyShards
	}
	if opts.MaxRows > 0 && shards > opts.MaxRows {
		shards = opts.MaxRows
	}
	t := &BoundedTable{
		g:      g,
		n:      g.N(),
		reach:  opts.Reach,
		shards: make([]boundedShard, shards),
		dense:  make(map[graph.NodeID][]float64),
	}
	for i := range t.shards {
		sh := &t.shards[i]
		sh.rows = make(map[graph.NodeID]*boundedRow)
		if opts.MaxRows <= 0 {
			sh.cap = -1
			continue
		}
		sh.cap = opts.MaxRows / shards
		if i < opts.MaxRows%shards {
			sh.cap++
		}
	}
	t.scratch.New = func() any {
		return &boundedScratch{
			h:    indexheap.New(t.n),
			dist: newDistSlice(t.n),
		}
	}
	if opts.Landmarks > 0 {
		t.lm = NewLandmarks(g, opts.Landmarks)
		if t.lm != nil {
			rowBytesResident.Add(t.lm.Bytes())
		}
	}
	return t, nil
}

// N returns the number of nodes the table covers.
func (t *BoundedTable) N() int { return t.n }

// Reach returns the exploration bound rows were computed at.
func (t *BoundedTable) Reach() float64 { return t.reach }

// Landmarks returns the table's ALT layer, or nil if none was built.
func (t *BoundedTable) Landmarks() *Landmarks { return t.lm }

// Pin marks rows as never-evictable, as in LazyTable.Pin.
func (t *BoundedTable) Pin(nodes []graph.NodeID) {
	for _, u := range nodes {
		sh := t.shard(u)
		sh.mu.Lock()
		if sh.pinned == nil {
			sh.pinned = make(map[graph.NodeID]bool)
		}
		if !sh.pinned[u] {
			sh.pinned[u] = true
			for i, v := range sh.fifo {
				if v == u {
					sh.fifo = append(sh.fifo[:i], sh.fifo[i+1:]...)
					break
				}
			}
		}
		sh.mu.Unlock()
	}
}

// Dist returns the stored distance between u and v: the quantized true
// distance if v is within reach of u, +Inf otherwise. When the landmark
// lower bound already proves d(u,v) > reach the row is not touched — the
// answer would be +Inf either way, so the fast path is bit-identical.
func (t *BoundedTable) Dist(u, v graph.NodeID) float64 {
	if t.lm != nil && t.lm.LowerBound(u, v) > t.reach {
		t.lmPrunes.Add(1)
		return Inf
	}
	return t.SparseRow(u).At(v)
}

// Row returns u's row in dense form, materialized from the sparse row on
// first use and kept for the table's lifetime (the DistanceSource row
// contract promises the slice stays valid and immutable). Out-of-ball
// nodes hold +Inf. Bulk consumers that can handle sparsity should prefer
// SparseRow — each dense row costs 8·n bytes forever.
func (t *BoundedTable) Row(u graph.NodeID) []float64 {
	t.denseMu.Lock()
	if d, ok := t.dense[u]; ok {
		t.denseMu.Unlock()
		return d
	}
	t.denseMu.Unlock()
	sr := t.SparseRow(u)
	d := newDistSlice(t.n)
	for i, id := range sr.ids {
		d[id] = float64(sr.dist[i])
	}
	t.denseMu.Lock()
	if prev, ok := t.dense[u]; ok {
		// Another goroutine won the materialization race; use its row so
		// repeated calls keep returning the same slice.
		t.denseMu.Unlock()
		return prev
	}
	t.dense[u] = d
	t.denseMu.Unlock()
	b := int64(t.n) * 8
	t.rowBytes.Add(b)
	rowBytesResident.Add(b)
	return d
}

// SparseRow returns u's sparse bounded row, computing and caching it on
// first use. The row is immutable once published and stays valid after
// eviction, exactly like LazyTable rows.
func (t *BoundedTable) SparseRow(u graph.NodeID) SparseRow {
	sh := t.shard(u)
	sh.mu.Lock()
	e, ok := sh.rows[u]
	if ok {
		sh.mu.Unlock()
		t.hits.Add(1)
		telemetry.Global().RowCacheHits.Add(1)
	} else {
		e = &boundedRow{}
		sh.rows[u] = e
		if sh.pinned == nil || !sh.pinned[u] {
			sh.fifo = append(sh.fifo, u)
			for sh.cap >= 0 && len(sh.fifo) > sh.cap {
				victim := sh.fifo[0]
				sh.fifo = append(sh.fifo[:0], sh.fifo[1:]...)
				ve := sh.rows[victim]
				delete(sh.rows, victim)
				if b := ve.bytes.Load(); b != 0 {
					t.rowBytes.Add(-b)
					rowBytesResident.Add(-b)
				}
				t.evictions.Add(1)
				telemetry.Global().RowCacheEvictions.Add(1)
			}
		}
		sh.mu.Unlock()
		t.misses.Add(1)
		telemetry.Global().RowCacheMisses.Add(1)
	}
	e.once.Do(func() {
		t.computes.Add(1)
		telemetry.Global().RowCacheComputes.Add(1)
		if obs.Enabled() {
			start := time.Now()
			e.row = t.computeRow(u)
			obs.ObserveRowCompute(time.Since(start))
		} else {
			e.row = t.computeRow(u)
		}
		b := e.row.Bytes()
		e.bytes.Store(b)
		t.rowBytes.Add(b)
		rowBytesResident.Add(b)
	})
	return e.row
}

// computeRow runs a bounded Dijkstra from src on pooled scratch and packs
// the settled ball into a SparseRow. Counter discipline matches
// dijkstraInto: one DijkstraRuns increment and one EdgeRelaxations flush
// per run, so per-run totals stay deterministic at every worker count.
func (t *BoundedTable) computeRow(src graph.NodeID) SparseRow {
	sc := t.scratch.Get().(*boundedScratch)
	relaxed := int64(0)
	h, dist := sc.h, sc.dist
	touched := sc.touched[:0]
	bound := t.reach
	g := t.g
	dist[src] = 0
	touched = append(touched, int32(src))
	h.Push(int(src), 0)
	for h.Len() > 0 {
		u, du := h.Pop()
		if du > bound {
			// Every remaining tentative distance is ≥ du > bound: heap
			// keys pop in non-decreasing order, and dist[] mirrors the
			// current keys. The ≤ bound filter below discards them, so
			// only the heap bookkeeping needs resetting.
			h.Reset()
			break
		}
		for _, a := range g.Neighbors(graph.NodeID(u)) {
			if nd := du + a.Length; nd < dist[a.To] {
				if math.IsInf(dist[a.To], 1) {
					touched = append(touched, int32(a.To))
				}
				dist[a.To] = nd
				relaxed++
				h.Push(int(a.To), nd)
			}
		}
	}
	ids := make([]int32, 0, len(touched))
	for _, v := range touched {
		if dist[v] <= bound {
			ids = append(ids, v)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	ds := make([]float32, len(ids))
	for i, v := range ids {
		ds[i] = float32(dist[v])
	}
	for _, v := range touched {
		dist[v] = Inf
	}
	sc.touched = touched[:0]
	t.scratch.Put(sc)
	c := telemetry.Global()
	c.DijkstraRuns.Add(1)
	c.EdgeRelaxations.Add(relaxed)
	return SparseRow{ids: ids, dist: ds}
}

// Stats snapshots the table's counters. Consistent at a quiescent point,
// which is how tests use it.
func (t *BoundedTable) Stats() BoundedStats {
	s := BoundedStats{
		Hits:           t.hits.Load(),
		Misses:         t.misses.Load(),
		Computes:       t.computes.Load(),
		Evictions:      t.evictions.Load(),
		RowBytes:       t.rowBytes.Load(),
		LandmarkPrunes: t.lmPrunes.Load(),
	}
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		s.Cached += len(sh.rows)
		sh.mu.Unlock()
	}
	t.denseMu.Lock()
	s.DenseRows = len(t.dense)
	t.denseMu.Unlock()
	return s
}

func (t *BoundedTable) shard(u graph.NodeID) *boundedShard {
	return &t.shards[int(u)%len(t.shards)]
}
