package shortestpath

import (
	"runtime"
	"sync"

	"msc/internal/graph"
)

// Table is an all-pairs shortest-path distance table for a graph. It is
// immutable after construction and safe for concurrent reads; the solver
// shares one Table across every candidate placement it evaluates.
type Table struct {
	n    int
	dist [][]float64
}

// NewTable computes the all-pairs table by running one Dijkstra per node.
// Rows are computed in parallel across the given number of workers
// (workers <= 0 selects GOMAXPROCS); the result is deterministic for
// every worker count because rows are independent. core.NewInstance plumbs
// its Options.Parallelism here, so table construction honors the same
// worker budget as the candidate scans.
func NewTable(g *graph.Graph, workers int) *Table {
	n := g.N()
	t := &Table{n: n, dist: make([][]float64, n)}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for src := range next {
				t.dist[src] = Dijkstra(g, graph.NodeID(src))
			}
		}()
	}
	for src := 0; src < n; src++ {
		next <- src
	}
	close(next)
	wg.Wait()
	return t
}

// N returns the number of nodes the table covers.
func (t *Table) N() int { return t.n }

// Dist returns the shortest-path distance between u and v (+Inf if
// disconnected).
func (t *Table) Dist(u, v graph.NodeID) float64 { return t.dist[u][v] }

// Row returns the distance row of u. Callers must not modify it.
func (t *Table) Row(u graph.NodeID) []float64 { return t.dist[u] }
