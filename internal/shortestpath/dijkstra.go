// Package shortestpath implements the distance machinery the MSC solver is
// built on: Dijkstra's algorithm (single-source, bounded, with parents), an
// all-pairs distance table, and — crucially — the shortcut-overlay distance
// oracle that evaluates a candidate placement F without re-running Dijkstra
// on the augmented graph G ∪ F.
//
// All distances are the edge-length metric of internal/graph, i.e. the
// −ln(1−p) transform of link failure probabilities; +Inf means unreachable.
package shortestpath

import (
	"math"

	"msc/internal/graph"
	"msc/internal/indexheap"
	"msc/internal/telemetry"
)

// Inf is the distance reported for unreachable nodes.
var Inf = math.Inf(1)

// Dijkstra returns the shortest-path distance from src to every node of g.
// Unreachable nodes get +Inf.
func Dijkstra(g *graph.Graph, src graph.NodeID) []float64 {
	dist := newDistSlice(g.N())
	dijkstraInto(g, src, math.Inf(1), dist, nil)
	return dist
}

// DijkstraWithParents returns distances and a parent array: parent[v] is the
// predecessor of v on a shortest src→v path, or -1 for src and unreachable
// nodes.
func DijkstraWithParents(g *graph.Graph, src graph.NodeID) (dist []float64, parent []graph.NodeID) {
	dist = newDistSlice(g.N())
	parent = make([]graph.NodeID, g.N())
	for i := range parent {
		parent[i] = -1
	}
	dijkstraInto(g, src, math.Inf(1), dist, parent)
	return dist, parent
}

// BoundedDijkstra returns distances from src, exploring only nodes within
// maxDist; nodes farther away (or unreachable) get +Inf. This powers the
// coverage-set construction, which only cares about "within d_t".
func BoundedDijkstra(g *graph.Graph, src graph.NodeID, maxDist float64) []float64 {
	dist := newDistSlice(g.N())
	dijkstraInto(g, src, maxDist, dist, nil)
	return dist
}

// dijkstraInto runs Dijkstra from src into the provided dist slice
// (pre-filled with +Inf), stopping once the frontier exceeds bound. If
// parent is non-nil it is filled with shortest-path predecessors.
func dijkstraInto(g *graph.Graph, src graph.NodeID, bound float64, dist []float64, parent []graph.NodeID) {
	// Relaxations tally into a local; one atomic flush per run keeps the
	// hot loop free of shared writes while the per-run totals (and thus
	// any sum of runs) stay deterministic at every worker count.
	relaxed := int64(0)
	defer func() {
		c := telemetry.Global()
		c.DijkstraRuns.Add(1)
		c.EdgeRelaxations.Add(relaxed)
	}()
	h := indexheap.New(g.N())
	dist[src] = 0
	h.Push(int(src), 0)
	for h.Len() > 0 {
		u, du := h.Pop()
		if du > bound {
			// Everything left in the heap is at least this far away.
			// Reset their tentative distances back to Inf.
			dist[u] = math.Inf(1)
			for h.Len() > 0 {
				v, _ := h.Pop()
				dist[v] = math.Inf(1)
			}
			return
		}
		for _, a := range g.Neighbors(graph.NodeID(u)) {
			if nd := du + a.Length; nd < dist[a.To] {
				dist[a.To] = nd
				relaxed++
				if parent != nil {
					parent[a.To] = graph.NodeID(u)
				}
				h.Push(int(a.To), nd)
			}
		}
	}
}

// PathTo reconstructs the src→dst node sequence from a parent array
// produced by DijkstraWithParents. It returns nil if dst is unreachable.
func PathTo(parent []graph.NodeID, src, dst graph.NodeID) []graph.NodeID {
	if src == dst {
		return []graph.NodeID{src}
	}
	if parent[dst] < 0 {
		return nil
	}
	var rev []graph.NodeID
	for v := dst; v != src; v = parent[v] {
		rev = append(rev, v)
		if parent[v] < 0 {
			return nil
		}
	}
	rev = append(rev, src)
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

func newDistSlice(n int) []float64 {
	dist := make([]float64, n)
	inf := math.Inf(1)
	for i := range dist {
		dist[i] = inf
	}
	return dist
}
