package shortestpath

import (
	"math"
	"sync"
	"testing"
	"testing/quick"

	"msc/internal/graph"
	"msc/internal/xrand"
)

// sameRow fails the test if two distance rows differ anywhere. Lazy rows
// must be bit-identical to dense rows — both come from the same Dijkstra —
// so no tolerance is allowed.
func sameRow(t *testing.T, got, want []float64, ctx string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: row length %d, want %d", ctx, len(got), len(want))
	}
	for v := range got {
		if got[v] != want[v] && !(math.IsInf(got[v], 1) && math.IsInf(want[v], 1)) {
			t.Fatalf("%s: dist[%d] = %v, want %v", ctx, v, got[v], want[v])
		}
	}
}

func TestLazyTableMatchesDense(t *testing.T) {
	rng := xrand.New(17)
	for trial := 0; trial < 10; trial++ {
		g := randomGraph(t, 30, 50, rng)
		dense := NewTable(g, 0)
		lazy := NewLazyTable(g, LazyOptions{})
		if lazy.N() != dense.N() {
			t.Fatalf("N() = %d, want %d", lazy.N(), dense.N())
		}
		for u := 0; u < g.N(); u++ {
			sameRow(t, lazy.Row(graph.NodeID(u)), dense.Row(graph.NodeID(u)), "trial row")
			for v := 0; v < g.N(); v += 5 {
				got := lazy.Dist(graph.NodeID(u), graph.NodeID(v))
				want := dense.Dist(graph.NodeID(u), graph.NodeID(v))
				if got != want {
					t.Fatalf("trial %d: lazy dist(%d,%d) = %v, want %v", trial, u, v, got, want)
				}
			}
		}
	}
}

// TestLazyTableExactlyOnceComputes hammers an uncapped cache from many
// goroutines and checks the exactly-once compute contract: the number of
// Dijkstra runs equals the number of distinct rows requested, no matter how
// many goroutines race for the same row. Runs in CI under -race.
func TestLazyTableExactlyOnceComputes(t *testing.T) {
	rng := xrand.New(23)
	g := randomGraph(t, 64, 120, rng)
	dense := NewTable(g, 0)
	lazy := NewLazyTable(g, LazyOptions{})

	// A fixed set of distinct rows, each requested by every goroutine many
	// times, in a per-goroutine shuffled order so shard/entry races differ.
	distinct := []graph.NodeID{0, 3, 7, 9, 13, 21, 34, 55, 63, 8, 16, 32}
	const workers = 8
	const repeats = 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := xrand.New(seed)
			for rep := 0; rep < repeats; rep++ {
				for _, i := range r.Perm(len(distinct)) {
					u := distinct[i]
					row := lazy.Row(u)
					// Spot-check a value so the row read is real work and a
					// torn row would be observed.
					if row[0] != dense.Dist(u, 0) {
						panic("torn or wrong row")
					}
				}
			}
		}(int64(w) + 100)
	}
	wg.Wait()

	st := lazy.Stats()
	n := int64(len(distinct))
	total := int64(workers * repeats * len(distinct))
	if st.Computes != n {
		t.Errorf("Computes = %d, want %d (one per distinct row)", st.Computes, n)
	}
	if st.Misses != n {
		t.Errorf("Misses = %d, want %d (one per entry creation)", st.Misses, n)
	}
	if st.Hits != total-n {
		t.Errorf("Hits = %d, want %d", st.Hits, total-n)
	}
	if st.Evictions != 0 {
		t.Errorf("Evictions = %d, want 0 (uncapped)", st.Evictions)
	}
	if st.Cached != len(distinct) {
		t.Errorf("Cached = %d, want %d", st.Cached, len(distinct))
	}
	// Every cached row is still correct after the stampede.
	for _, u := range distinct {
		sameRow(t, lazy.Row(u), dense.Row(u), "post-stampede")
	}
}

func TestLazyTableEvictionRespectsCap(t *testing.T) {
	rng := xrand.New(31)
	g := randomGraph(t, 40, 60, rng)
	dense := NewTable(g, 0)
	lazy := NewLazyTable(g, LazyOptions{MaxRows: 4, Shards: 2})

	for u := 0; u < g.N(); u++ {
		sameRow(t, lazy.Row(graph.NodeID(u)), dense.Row(graph.NodeID(u)), "first pass")
		if c := lazy.Stats().Cached; c > 4 {
			t.Fatalf("after row %d: Cached = %d exceeds MaxRows 4", u, c)
		}
	}
	st := lazy.Stats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions after %d distinct rows with MaxRows=4", g.N())
	}
	if st.Misses-st.Evictions != int64(st.Cached) {
		t.Errorf("misses(%d) - evictions(%d) = %d, want Cached %d",
			st.Misses, st.Evictions, st.Misses-st.Evictions, st.Cached)
	}
	// Evicted rows recompute to exactly the same values.
	for u := 0; u < g.N(); u += 3 {
		sameRow(t, lazy.Row(graph.NodeID(u)), dense.Row(graph.NodeID(u)), "after eviction")
	}
}

// TestLazyTableEvictedRowStaysValid holds on to a returned row slice across
// the row's eviction and recomputation: the held slice must keep its
// (immutable) values — eviction only forgets rows, it never reuses them.
func TestLazyTableEvictedRowStaysValid(t *testing.T) {
	rng := xrand.New(37)
	g := randomGraph(t, 30, 45, rng)
	dense := NewTable(g, 0)
	lazy := NewLazyTable(g, LazyOptions{MaxRows: 2, Shards: 1})

	held := lazy.Row(5)
	want := make([]float64, len(held))
	copy(want, held)
	for u := 0; u < g.N(); u++ { // cap 2 → row 5 is long gone
		lazy.Row(graph.NodeID(u))
	}
	if lazy.Stats().Evictions == 0 {
		t.Fatal("expected evictions")
	}
	sameRow(t, held, want, "held slice after eviction")
	sameRow(t, lazy.Row(5), dense.Row(5), "recomputed row")
}

func TestLazyTablePinnedSurviveEviction(t *testing.T) {
	rng := xrand.New(41)
	g := randomGraph(t, 40, 60, rng)
	dense := NewTable(g, 0)
	lazy := NewLazyTable(g, LazyOptions{MaxRows: 2, Shards: 1})

	pinned := []graph.NodeID{5, 11, 23}
	lazy.Pin(pinned)
	for _, u := range pinned {
		sameRow(t, lazy.Row(u), dense.Row(u), "pinned first read")
	}
	computesAfterPinned := lazy.Stats().Computes

	for u := 0; u < g.N(); u++ { // churn the evictable side hard
		lazy.Row(graph.NodeID(u))
	}
	st := lazy.Stats()
	if st.Evictions == 0 {
		t.Fatal("expected evictions from churn")
	}

	before := lazy.Stats()
	for _, u := range pinned {
		sameRow(t, lazy.Row(u), dense.Row(u), "pinned re-read")
	}
	after := lazy.Stats()
	if after.Computes != before.Computes {
		t.Errorf("pinned re-read recomputed rows: computes %d -> %d", before.Computes, after.Computes)
	}
	if after.Hits != before.Hits+int64(len(pinned)) {
		t.Errorf("pinned re-read hits %d -> %d, want +%d", before.Hits, after.Hits, len(pinned))
	}
	_ = computesAfterPinned
}

// TestLazyTablePinPromotesCachedRow pins a row that is already cached as
// evictable: it must leave the FIFO and survive subsequent churn.
func TestLazyTablePinPromotesCachedRow(t *testing.T) {
	rng := xrand.New(43)
	g := randomGraph(t, 30, 45, rng)
	lazy := NewLazyTable(g, LazyOptions{MaxRows: 2, Shards: 1})

	lazy.Row(7)                 // cached evictable
	lazy.Pin([]graph.NodeID{7}) // promote
	lazy.Pin([]graph.NodeID{7}) // idempotent
	for u := 0; u < g.N(); u++ {
		lazy.Row(graph.NodeID(u))
	}
	before := lazy.Stats().Computes
	lazy.Row(7)
	if after := lazy.Stats().Computes; after != before {
		t.Errorf("promoted pinned row was evicted and recomputed: computes %d -> %d", before, after)
	}
}

// TestLazyTableConcurrentCapped stress-tests the capped cache under -race:
// whatever the eviction interleaving, every returned row must be complete
// and correct (never torn, never stale).
func TestLazyTableConcurrentCapped(t *testing.T) {
	rng := xrand.New(47)
	g := randomGraph(t, 48, 90, rng)
	dense := NewTable(g, 0)
	lazy := NewLazyTable(g, LazyOptions{MaxRows: 6, Shards: 3})
	lazy.Pin([]graph.NodeID{1, 2})

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := xrand.New(seed)
			for i := 0; i < 300; i++ {
				u := graph.NodeID(r.Intn(g.N()))
				row := lazy.Row(u)
				v := r.Intn(g.N())
				want := dense.Dist(u, graph.NodeID(v))
				if row[v] != want && !(math.IsInf(row[v], 1) && math.IsInf(want, 1)) {
					errs <- "wrong value under concurrent eviction"
					return
				}
			}
		}(int64(w) + 900)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
	if c := lazy.Stats().Cached; c > 6+2 {
		t.Errorf("Cached = %d, want ≤ cap 6 + 2 pinned", c)
	}
}

// TestLazyTableShardClamp checks that a row cap smaller than the shard
// count shrinks the shard count instead of creating zero-capacity shards
// (which could cache nothing and thrash).
func TestLazyTableShardClamp(t *testing.T) {
	g := lineGraph(t, 10)
	lazy := NewLazyTable(g, LazyOptions{MaxRows: 3, Shards: 16})
	if len(lazy.shards) != 3 {
		t.Fatalf("shards = %d, want clamped to MaxRows 3", len(lazy.shards))
	}
	total := 0
	for i := range lazy.shards {
		if lazy.shards[i].cap < 1 {
			t.Errorf("shard %d has cap %d, want ≥ 1", i, lazy.shards[i].cap)
		}
		total += lazy.shards[i].cap
	}
	if total != 3 {
		t.Errorf("total shard cap = %d, want MaxRows 3", total)
	}
}

// TestNewTableWorkers locks in satellite 4: the dense table is identical
// whatever the worker count — parallel construction only changes wall
// clock, never a distance.
func TestNewTableWorkers(t *testing.T) {
	rng := xrand.New(53)
	g := randomGraph(t, 50, 100, rng)
	serial := NewTable(g, 1)
	for _, workers := range []int{0, 2, 4, 8} {
		par := NewTable(g, workers)
		for u := 0; u < g.N(); u++ {
			sameRow(t, par.Row(graph.NodeID(u)), serial.Row(graph.NodeID(u)), "workers row")
		}
	}
}

// TestQuickOverlayLazyMatchesAugmented is the testing/quick property of
// satellite 3: an Overlay over a LazyTable answers exactly like the naive
// per-query reference AugmentedDistances, for random graphs and shortcut
// sets.
func TestQuickOverlayLazyMatchesAugmented(t *testing.T) {
	property := func(seed int64) bool {
		rng := xrand.New(seed)
		g := randomGraph(t, 4+rng.Intn(20), rng.Intn(30), rng)
		lazy := NewLazyTable(g, LazyOptions{MaxRows: 1 + rng.Intn(8)})
		k := rng.Intn(4)
		var shortcuts []graph.Edge
		for len(shortcuts) < k {
			u := graph.NodeID(rng.Intn(g.N()))
			v := graph.NodeID(rng.Intn(g.N()))
			if u != v {
				shortcuts = append(shortcuts, graph.Edge{U: u, V: v})
			}
		}
		ov := NewOverlay(lazy, shortcuts)
		for src := 0; src < g.N(); src++ {
			want := AugmentedDistances(g, shortcuts, graph.NodeID(src))
			for v := 0; v < g.N(); v++ {
				got := ov.Dist(graph.NodeID(src), graph.NodeID(v))
				if math.Abs(got-want[v]) > 1e-9 && !(math.IsInf(got, 1) && math.IsInf(want[v], 1)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// fuzzGraph decodes a byte string into a small graph plus shortcut set:
// byte 0 sizes the graph, byte 1 picks the shortcut count, and each
// following byte pair is an edge (or shortcut) endpoint pair. Degenerate
// pairs are skipped, so every input decodes to something valid.
func fuzzGraph(data []byte) (*graph.Graph, []graph.Edge, bool) {
	if len(data) < 4 {
		return nil, nil, false
	}
	n := 2 + int(data[0])%14
	wantShortcuts := int(data[1]) % 4
	data = data[2:]
	b := graph.NewBuilder(n)
	var shortcuts []graph.Edge
	edges := 0
	for i := 0; i+1 < len(data); i += 2 {
		u := graph.NodeID(int(data[i]) % n)
		v := graph.NodeID(int(data[i+1]) % n)
		if u == v {
			continue
		}
		if len(shortcuts) < wantShortcuts {
			shortcuts = append(shortcuts, graph.Edge{U: u, V: v})
			continue
		}
		length := 0.1 + float64(int(data[i])^int(data[i+1]))/256.0
		b.AddEdge(u, v, length)
		edges++
	}
	if edges == 0 {
		return nil, nil, false
	}
	g, err := b.Build()
	if err != nil {
		return nil, nil, false
	}
	return g, shortcuts, true
}

// FuzzOverlayLazy fuzzes the lazy backend against the naive reference:
// for any decodable graph and shortcut set, Overlay-over-LazyTable must
// agree with AugmentedDistances, and the LazyTable must agree with the
// dense Table (satellite 3's fuzz seed).
func FuzzOverlayLazy(f *testing.F) {
	f.Add([]byte{8, 2, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 0, 7})
	f.Add([]byte{4, 0, 0, 1, 1, 2, 2, 3})
	f.Add([]byte{15, 3, 1, 14, 0, 7, 3, 9, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14})
	f.Add([]byte{2, 1, 0, 1, 0, 1, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		g, shortcuts, ok := fuzzGraph(data)
		if !ok {
			return
		}
		lazy := NewLazyTable(g, LazyOptions{MaxRows: 3})
		dense := NewTable(g, 0)
		ov := NewOverlay(lazy, shortcuts)
		for src := 0; src < g.N(); src++ {
			want := AugmentedDistances(g, shortcuts, graph.NodeID(src))
			lrow := lazy.Row(graph.NodeID(src))
			drow := dense.Row(graph.NodeID(src))
			for v := 0; v < g.N(); v++ {
				if lrow[v] != drow[v] && !(math.IsInf(lrow[v], 1) && math.IsInf(drow[v], 1)) {
					t.Fatalf("lazy row(%d)[%d] = %v, dense %v", src, v, lrow[v], drow[v])
				}
				got := ov.Dist(graph.NodeID(src), graph.NodeID(v))
				if math.Abs(got-want[v]) > 1e-9 && !(math.IsInf(got, 1) && math.IsInf(want[v], 1)) {
					t.Fatalf("overlay dist(%d,%d) = %v, want %v", src, v, got, want[v])
				}
			}
		}
	})
}
