package shortestpath

import (
	"math"
	"testing"

	"msc/internal/graph"
	"msc/internal/xrand"
)

// lineGraph builds 0-1-2-...-(n-1) with unit lengths.
func lineGraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID(i+1), 1)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatalf("build line graph: %v", err)
	}
	return g
}

// randomGraph builds a random connected-ish weighted graph.
func randomGraph(t *testing.T, n int, extraEdges int, rng *xrand.Rand) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(n)
	// Random spanning tree for connectivity.
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		u := perm[i]
		v := perm[rng.Intn(i)]
		b.AddEdge(graph.NodeID(u), graph.NodeID(v), 0.1+rng.Float64())
	}
	for e := 0; e < extraEdges; e++ {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u != v {
			b.AddEdge(graph.NodeID(u), graph.NodeID(v), 0.1+rng.Float64())
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatalf("build random graph: %v", err)
	}
	return g
}

// floydWarshall is the brute-force all-pairs reference.
func floydWarshall(g *graph.Graph) [][]float64 {
	n := g.N()
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		for j := range d[i] {
			if i != j {
				d[i][j] = math.Inf(1)
			}
		}
	}
	for _, e := range g.Edges() {
		if e.Length < d[e.U][e.V] {
			d[e.U][e.V] = e.Length
			d[e.V][e.U] = e.Length
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if nd := d[i][k] + d[k][j]; nd < d[i][j] {
					d[i][j] = nd
				}
			}
		}
	}
	return d
}

func TestDijkstraLine(t *testing.T) {
	g := lineGraph(t, 5)
	dist := Dijkstra(g, 0)
	for i := 0; i < 5; i++ {
		if dist[i] != float64(i) {
			t.Errorf("dist[%d] = %v, want %d", i, dist[i], i)
		}
	}
}

func TestDijkstraMatchesFloydWarshall(t *testing.T) {
	rng := xrand.New(7)
	for trial := 0; trial < 20; trial++ {
		g := randomGraph(t, 24, 40, rng)
		want := floydWarshall(g)
		for src := 0; src < g.N(); src++ {
			got := Dijkstra(g, graph.NodeID(src))
			for v := range got {
				if math.Abs(got[v]-want[src][v]) > 1e-9 {
					t.Fatalf("trial %d: dist(%d,%d) = %v, want %v", trial, src, v, got[v], want[src][v])
				}
			}
		}
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1, 1)
	// 2, 3 isolated from 0-1; 2-3 connected.
	b.AddEdge(2, 3, 2)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	dist := Dijkstra(g, 0)
	if !math.IsInf(dist[2], 1) || !math.IsInf(dist[3], 1) {
		t.Errorf("isolated nodes should be at +Inf, got %v, %v", dist[2], dist[3])
	}
	if dist[1] != 1 {
		t.Errorf("dist[1] = %v, want 1", dist[1])
	}
}

func TestBoundedDijkstra(t *testing.T) {
	g := lineGraph(t, 10)
	dist := BoundedDijkstra(g, 0, 3.5)
	for i := 0; i < 10; i++ {
		if i <= 3 {
			if dist[i] != float64(i) {
				t.Errorf("dist[%d] = %v, want %d", i, dist[i], i)
			}
		} else if !math.IsInf(dist[i], 1) {
			t.Errorf("dist[%d] = %v, want +Inf beyond bound", i, dist[i])
		}
	}
}

func TestBoundedDijkstraMatchesFiltered(t *testing.T) {
	rng := xrand.New(11)
	for trial := 0; trial < 10; trial++ {
		g := randomGraph(t, 30, 50, rng)
		full := Dijkstra(g, 0)
		bound := 0.5 + rng.Float64()
		got := BoundedDijkstra(g, 0, bound)
		for v := range got {
			want := full[v]
			if want > bound {
				want = math.Inf(1)
			}
			if math.Abs(got[v]-want) > 1e-9 && !(math.IsInf(got[v], 1) && math.IsInf(want, 1)) {
				t.Fatalf("trial %d: bounded dist[%d] = %v, want %v (bound %v)", trial, v, got[v], want, bound)
			}
		}
	}
}

func TestDijkstraWithParentsPath(t *testing.T) {
	rng := xrand.New(3)
	g := randomGraph(t, 20, 30, rng)
	dist, parent := DijkstraWithParents(g, 0)
	for v := 1; v < g.N(); v++ {
		path := PathTo(parent, 0, graph.NodeID(v))
		if path == nil {
			if !math.IsInf(dist[v], 1) {
				t.Fatalf("no path to reachable node %d", v)
			}
			continue
		}
		if path[0] != 0 || path[len(path)-1] != graph.NodeID(v) {
			t.Fatalf("path endpoints wrong: %v", path)
		}
		total := 0.0
		for i := 0; i+1 < len(path); i++ {
			l, ok := g.EdgeLength(path[i], path[i+1])
			if !ok {
				t.Fatalf("path uses nonexistent edge (%d,%d)", path[i], path[i+1])
			}
			total += l
		}
		if math.Abs(total-dist[v]) > 1e-9 {
			t.Fatalf("path length %v != dist %v for node %d", total, dist[v], v)
		}
	}
}

func TestPathToSelf(t *testing.T) {
	g := lineGraph(t, 3)
	_, parent := DijkstraWithParents(g, 1)
	path := PathTo(parent, 1, 1)
	if len(path) != 1 || path[0] != 1 {
		t.Errorf("self path = %v, want [1]", path)
	}
}

func TestTableMatchesDijkstra(t *testing.T) {
	rng := xrand.New(5)
	g := randomGraph(t, 40, 80, rng)
	table := NewTable(g, 0)
	for src := 0; src < g.N(); src += 7 {
		want := Dijkstra(g, graph.NodeID(src))
		for v := range want {
			if table.Dist(graph.NodeID(src), graph.NodeID(v)) != want[v] {
				t.Fatalf("table dist(%d,%d) mismatch", src, v)
			}
		}
	}
}

func TestOverlayMatchesAugmentedDijkstra(t *testing.T) {
	rng := xrand.New(42)
	for trial := 0; trial < 15; trial++ {
		g := randomGraph(t, 25, 35, rng)
		table := NewTable(g, 0)
		// Random shortcut set of size 0..5.
		k := rng.Intn(6)
		var shortcuts []graph.Edge
		for len(shortcuts) < k {
			u := graph.NodeID(rng.Intn(g.N()))
			v := graph.NodeID(rng.Intn(g.N()))
			if u != v {
				shortcuts = append(shortcuts, graph.Edge{U: u, V: v})
			}
		}
		ov := NewOverlay(table, shortcuts)
		for src := 0; src < g.N(); src += 3 {
			want := AugmentedDistances(g, shortcuts, graph.NodeID(src))
			for v := 0; v < g.N(); v++ {
				got := ov.Dist(graph.NodeID(src), graph.NodeID(v))
				if math.Abs(got-want[v]) > 1e-9 {
					t.Fatalf("trial %d: overlay dist(%d,%d) = %v, want %v (F=%v)",
						trial, src, v, got, want[v], shortcuts)
				}
			}
		}
	}
}

func TestOverlayDistRowMatchesDist(t *testing.T) {
	rng := xrand.New(13)
	g := randomGraph(t, 30, 45, rng)
	table := NewTable(g, 0)
	shortcuts := []graph.Edge{{U: 0, V: 15}, {U: 3, V: 22}, {U: 7, V: 29}}
	ov := NewOverlay(table, shortcuts)
	row := make([]float64, g.N())
	for u := 0; u < g.N(); u++ {
		ov.DistRow(graph.NodeID(u), row)
		for v := 0; v < g.N(); v++ {
			if want := ov.Dist(graph.NodeID(u), graph.NodeID(v)); math.Abs(row[v]-want) > 1e-9 {
				t.Fatalf("DistRow(%d)[%d] = %v, want %v", u, v, row[v], want)
			}
		}
	}
}

func TestOverlayChainsShortcuts(t *testing.T) {
	// 0-1-2-3-4 line; shortcuts (0,2) and (2,4) chain into a free ride
	// from 0 to 4.
	g := lineGraph(t, 5)
	table := NewTable(g, 0)
	ov := NewOverlay(table, []graph.Edge{{U: 0, V: 2}, {U: 2, V: 4}})
	if d := ov.Dist(0, 4); d != 0 {
		t.Errorf("chained shortcut distance = %v, want 0", d)
	}
	if d := ov.Dist(1, 3); d != 2 {
		// 1→0 (1) + shortcut 0→2 + shortcut... best is 1-0=1, 0~2 free,
		// 2~4 free, 4-3=1 → total 2; direct 1-2-3 is also 2.
		t.Errorf("dist(1,3) = %v, want 2", d)
	}
}

func TestOverlayEmptyForwardsTable(t *testing.T) {
	g := lineGraph(t, 4)
	table := NewTable(g, 0)
	ov := NewOverlay(table, nil)
	for u := 0; u < 4; u++ {
		for v := 0; v < 4; v++ {
			if ov.Dist(graph.NodeID(u), graph.NodeID(v)) != table.Dist(graph.NodeID(u), graph.NodeID(v)) {
				t.Fatalf("empty overlay differs from table at (%d,%d)", u, v)
			}
		}
	}
}

func TestOverlayDisconnectedComponents(t *testing.T) {
	// Two components bridged only by a shortcut.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1, 1)
	b.AddEdge(2, 3, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	table := NewTable(g, 0)
	ov := NewOverlay(table, []graph.Edge{{U: 1, V: 2}})
	if d := ov.Dist(0, 3); d != 2 {
		t.Errorf("bridged distance = %v, want 2", d)
	}
	ov2 := NewOverlay(table, nil)
	if d := ov2.Dist(0, 3); !math.IsInf(d, 1) {
		t.Errorf("unbridged distance = %v, want +Inf", d)
	}
}
