package shortestpath

import (
	"fmt"
	"runtime/debug"
	"sync"

	"msc/internal/graph"
)

// PanicError carries a panic recovered from an evaluator worker goroutine
// back to the caller's goroutine. Without it an evaluator-shard panic
// would crash the whole process (nothing can recover a panic on another
// goroutine); with it the panic unwinds the caller's stack like any
// other, where core.ParallelFor or a test harness can catch and type it.
type PanicError struct {
	// Shard is the panicking worker's index; Lo/Hi its query range.
	Shard, Lo, Hi int
	// Value is the original panic value.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("shortestpath: panic in evaluator shard %d (queries [%d,%d)): %v", e.Shard, e.Lo, e.Hi, e.Value)
}

// Evaluator batches distance queries against one Overlay across multiple
// goroutines. An Overlay is immutable after construction, so per-pair Dist
// and per-source DistRow queries are embarrassingly parallel; the
// evaluator shards query lists into contiguous blocks, one goroutine per
// shard, and reduces per-shard totals in shard order. Results are
// therefore deterministic and identical to a serial scan for every worker
// count.
type Evaluator struct {
	ov      *Overlay
	workers int
}

// NewEvaluator wraps an overlay oracle with a worker count. workers <= 1
// yields serial evaluation.
func NewEvaluator(ov *Overlay, workers int) *Evaluator {
	if workers < 1 {
		workers = 1
	}
	return &Evaluator{ov: ov, workers: workers}
}

// CountWithin returns the total weight of query pairs (us[i], ws[i]) whose
// augmented distance is at most bound. weights may be nil, giving every
// pair weight 1. The per-shard sums are exact integer arithmetic, so the
// result equals the serial scan's for any worker count.
func (e *Evaluator) CountWithin(us, ws []graph.NodeID, weights []int32, bound float64) int {
	if len(us) != len(ws) {
		panic("shortestpath: CountWithin query length mismatch")
	}
	count := func(lo, hi int) int {
		total := 0
		for i := lo; i < hi; i++ {
			if e.ov.Dist(us[i], ws[i]) <= bound {
				if weights == nil {
					total++
				} else {
					total += int(weights[i])
				}
			}
		}
		return total
	}
	if e.workers <= 1 || len(us) < 2*e.workers {
		return count(0, len(us))
	}
	totals := make([]int, e.workers)
	e.shard(len(us), func(shard, lo, hi int) {
		totals[shard] = count(lo, hi)
	})
	total := 0
	for _, t := range totals {
		total += t
	}
	return total
}

// DistRows fills rows[i] with the augmented distance row of srcs[i], one
// source per unit of sharded work. Each DistRow call owns its output row
// and internal scratch, so the rows are independent.
func (e *Evaluator) DistRows(srcs []graph.NodeID, rows [][]float64) {
	if len(srcs) != len(rows) {
		panic("shortestpath: DistRows length mismatch")
	}
	if e.workers <= 1 || len(srcs) < 2 {
		for i, src := range srcs {
			e.ov.DistRow(src, rows[i])
		}
		return
	}
	e.shard(len(srcs), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			e.ov.DistRow(srcs[i], rows[i])
		}
	})
}

// shard splits [0, n) into contiguous blocks, one goroutine per non-empty
// block, and waits for all of them. A panic inside a worker is recovered
// there — so every other shard drains and the WaitGroup completes — and
// the first panicking shard, in shard order, is re-raised on the caller's
// goroutine as a *PanicError.
func (e *Evaluator) shard(n int, fn func(shard, lo, hi int)) {
	workers := e.workers
	if workers > n {
		workers = n
	}
	panics := make([]*PanicError, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := n * w / workers
		hi := n * (w + 1) / workers
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(shard, lo, hi int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					if inner, ok := r.(*PanicError); ok {
						panics[shard] = inner
						return
					}
					panics[shard] = &PanicError{Shard: shard, Lo: lo, Hi: hi, Value: r, Stack: debug.Stack()}
				}
			}()
			fn(shard, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	for _, p := range panics {
		if p != nil {
			panic(p)
		}
	}
}
