package shortestpath

import (
	"bytes"
	"math"
	"reflect"
	"sync"
	"testing"

	"msc/internal/graph"
	"msc/internal/xrand"
)

// dyadicGraph builds randomGraph with edge lengths snapped to integer
// multiples of 2⁻¹⁰: every path sum is then exactly representable in both
// float32 and float64, so sparse (quantized) and dense rows must agree
// bit for bit wherever both are finite.
func dyadicGraph(t *testing.T, n, extraEdges int, rng *xrand.Rand) *graph.Graph {
	t.Helper()
	dyadic := func(l float64) float64 {
		q := math.Round(l * 1024)
		if q < 1 {
			q = 1
		}
		return q / 1024
	}
	b := graph.NewBuilder(n)
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		b.AddEdge(graph.NodeID(perm[i]), graph.NodeID(perm[rng.Intn(i)]), dyadic(0.1+rng.Float64()))
	}
	for e := 0; e < extraEdges; e++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			b.AddEdge(graph.NodeID(u), graph.NodeID(v), dyadic(0.1+rng.Float64()))
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatalf("build dyadic graph: %v", err)
	}
	return g
}

// --- BoundedDijkstra edge cases -------------------------------------------

func TestBoundedDijkstraZeroBound(t *testing.T) {
	rng := xrand.New(1)
	g := randomGraph(t, 20, 30, rng)
	dist := BoundedDijkstra(g, 7, 0)
	for v, d := range dist {
		if v == 7 {
			if d != 0 {
				t.Errorf("dist[src] = %v, want 0", d)
			}
		} else if !math.IsInf(d, 1) {
			// All edge lengths are ≥ 0.1, so a zero bound settles only src.
			t.Errorf("dist[%d] = %v, want +Inf under bound 0", v, d)
		}
	}
}

func TestBoundedDijkstraInfBoundMatchesDijkstra(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := xrand.New(100 + seed)
		g := randomGraph(t, 25, 40, rng)
		for src := 0; src < g.N(); src += 5 {
			got := BoundedDijkstra(g, graph.NodeID(src), math.Inf(1))
			want := Dijkstra(g, graph.NodeID(src))
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d src %d: BoundedDijkstra(+Inf) differs from Dijkstra", seed, src)
			}
		}
	}
}

// TestBoundedDijkstraNaNBoundExploresFully pins the raw primitive's NaN
// behavior: every `du > NaN` comparison is false, so a NaN bound silently
// degenerates to full exploration. That is exactly why NewBoundedTable
// (and core's backend resolution) reject NaN before it gets here.
func TestBoundedDijkstraNaNBoundExploresFully(t *testing.T) {
	rng := xrand.New(3)
	g := randomGraph(t, 20, 30, rng)
	got := BoundedDijkstra(g, 0, math.NaN())
	want := Dijkstra(g, 0)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("BoundedDijkstra(NaN) should degenerate to full exploration")
	}
}

func TestBoundedDijkstraDisconnectedSource(t *testing.T) {
	// Two components: a 0-1-2 path and a 3-4 edge.
	b := graph.NewBuilder(5)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(3, 4, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	dist := BoundedDijkstra(g, 3, 10)
	want := []float64{Inf, Inf, Inf, 0, 1}
	if !reflect.DeepEqual(dist, want) {
		t.Fatalf("disconnected source: got %v, want %v", dist, want)
	}
}

// --- SparseRow -------------------------------------------------------------

func TestSparseRowAccessors(t *testing.T) {
	r := SparseRow{ids: []int32{2, 5, 9}, dist: []float32{0, 1.5, 2.25}}
	if r.Len() != 3 {
		t.Errorf("Len = %d, want 3", r.Len())
	}
	if r.Bytes() != 24 {
		t.Errorf("Bytes = %d, want 24", r.Bytes())
	}
	if id, d := r.Entry(1); id != 5 || d != 1.5 {
		t.Errorf("Entry(1) = (%d, %v), want (5, 1.5)", id, d)
	}
	for v, want := range map[graph.NodeID]float64{2: 0, 5: 1.5, 9: 2.25} {
		if got := r.At(v); got != want {
			t.Errorf("At(%d) = %v, want %v", v, got, want)
		}
	}
	for _, v := range []graph.NodeID{0, 1, 3, 8, 10, 1000} {
		if got := r.At(v); !math.IsInf(got, 1) {
			t.Errorf("At(%d) = %v, want +Inf", v, got)
		}
	}
	empty := SparseRow{}
	if got := empty.At(0); !math.IsInf(got, 1) {
		t.Errorf("empty row At(0) = %v, want +Inf", got)
	}
}

func TestDecodeSparseRowErrors(t *testing.T) {
	enc := func(r SparseRow) []byte { return r.AppendBinary(nil) }
	valid := enc(SparseRow{ids: []int32{1, 4}, dist: []float32{0.5, 2}})
	if _, err := DecodeSparseRow(valid); err != nil {
		t.Fatalf("valid encoding rejected: %v", err)
	}
	cases := map[string][]byte{
		"empty":          {},
		"short header":   {1, 0},
		"truncated body": valid[:len(valid)-3],
		"oversized body": append(append([]byte{}, valid...), 0),
		"unsorted ids":   enc(SparseRow{ids: []int32{4, 1}, dist: []float32{1, 1}}),
		"duplicate ids":  enc(SparseRow{ids: []int32{4, 4}, dist: []float32{1, 1}}),
		"negative dist":  enc(SparseRow{ids: []int32{1}, dist: []float32{-1}}),
		"NaN dist":       enc(SparseRow{ids: []int32{1}, dist: []float32{float32(math.NaN())}}),
		"Inf dist":       enc(SparseRow{ids: []int32{1}, dist: []float32{float32(math.Inf(1))}}),
	}
	// An id above MaxInt32 can only come from raw bytes.
	overflow := []byte{1, 0, 0, 0, 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}
	cases["id overflow"] = overflow
	for name, data := range cases {
		if _, err := DecodeSparseRow(data); err == nil {
			t.Errorf("%s: decode succeeded, want error", name)
		}
	}
}

// --- BoundedTable ----------------------------------------------------------

func TestBoundedTableMatchesDenseWithinReach(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := xrand.New(500 + seed)
		g := dyadicGraph(t, 30, 50, rng)
		dense := NewTable(g, 0)
		const reach = 0.9
		bt, err := NewBoundedTable(g, BoundedOptions{Reach: reach})
		if err != nil {
			t.Fatal(err)
		}
		for u := 0; u < g.N(); u++ {
			for v := 0; v < g.N(); v++ {
				want := dense.Dist(graph.NodeID(u), graph.NodeID(v))
				got := bt.Dist(graph.NodeID(u), graph.NodeID(v))
				if want <= reach {
					// Dyadic lengths: the float32 quantization is lossless.
					if got != want {
						t.Fatalf("seed %d: Dist(%d,%d) = %v, want %v", seed, u, v, got, want)
					}
				} else if !math.IsInf(got, 1) {
					t.Fatalf("seed %d: Dist(%d,%d) = %v beyond reach, want +Inf", seed, u, v, got)
				}
			}
		}
	}
}

func TestBoundedTableRowMatchesSparse(t *testing.T) {
	rng := xrand.New(600)
	g := dyadicGraph(t, 25, 40, rng)
	bt, err := NewBoundedTable(g, BoundedOptions{Reach: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	row := bt.Row(4)
	if again := bt.Row(4); &again[0] != &row[0] {
		t.Error("Row(4) returned a different slice on the second call")
	}
	sr := bt.SparseRow(4)
	for v := 0; v < g.N(); v++ {
		if row[v] != sr.At(graph.NodeID(v)) {
			t.Fatalf("dense row[%d] = %v, sparse At = %v", v, row[v], sr.At(graph.NodeID(v)))
		}
	}
	st := bt.Stats()
	if st.DenseRows != 1 {
		t.Errorf("DenseRows = %d, want 1", st.DenseRows)
	}
	if want := sr.Bytes() + int64(g.N())*8; st.RowBytes != want {
		t.Errorf("RowBytes = %d, want %d (sparse + one dense row)", st.RowBytes, want)
	}
}

func TestBoundedTableRejectsBadReach(t *testing.T) {
	rng := xrand.New(7)
	g := randomGraph(t, 10, 10, rng)
	if _, err := NewBoundedTable(g, BoundedOptions{Reach: math.NaN()}); err == nil {
		t.Error("NaN reach accepted, want error")
	}
	if _, err := NewBoundedTable(g, BoundedOptions{Reach: -1}); err == nil {
		t.Error("negative reach accepted, want error")
	}
	if _, err := NewBoundedTable(g, BoundedOptions{Reach: math.Inf(1)}); err != nil {
		t.Errorf("+Inf reach rejected: %v", err)
	}
}

func TestBoundedTableEvictionAndBytes(t *testing.T) {
	rng := xrand.New(800)
	g := dyadicGraph(t, 40, 60, rng)
	bt, err := NewBoundedTable(g, BoundedOptions{Reach: 0.8, MaxRows: 4, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	globalBefore := RowBytesResident()
	rows := make([]SparseRow, 12)
	for u := 0; u < 12; u++ {
		rows[u] = bt.SparseRow(graph.NodeID(u))
	}
	st := bt.Stats()
	if st.Cached > 4 {
		t.Errorf("Cached = %d rows, want ≤ 4", st.Cached)
	}
	if st.Evictions != 8 {
		t.Errorf("Evictions = %d, want 8", st.Evictions)
	}
	// Byte accounting: resident bytes equal the sum of the cached rows'
	// payloads, and the process gauge moved by the same amount.
	var want int64
	for u := 8; u < 12; u++ {
		want += rows[u].Bytes()
	}
	if st.RowBytes != want {
		t.Errorf("RowBytes = %d, want %d", st.RowBytes, want)
	}
	if got := RowBytesResident() - globalBefore; got != want {
		t.Errorf("RowBytesResident moved by %d, want %d", got, want)
	}
	// Evicted rows stay valid, and recomputing one matches the original.
	if !reflect.DeepEqual(bt.SparseRow(0), rows[0]) {
		t.Error("recomputed row 0 differs from the evicted original")
	}
}

func TestBoundedTablePinnedSurviveEviction(t *testing.T) {
	rng := xrand.New(900)
	g := dyadicGraph(t, 40, 60, rng)
	bt, err := NewBoundedTable(g, BoundedOptions{Reach: 0.8, MaxRows: 2, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	bt.Pin([]graph.NodeID{5, 6})
	bt.SparseRow(5)
	bt.SparseRow(6)
	before := bt.Stats()
	for u := 10; u < 20; u++ {
		bt.SparseRow(graph.NodeID(u))
	}
	bt.SparseRow(5)
	bt.SparseRow(6)
	after := bt.Stats()
	if got := after.Computes - before.Computes; got != 10 {
		t.Errorf("pinned rows were recomputed: %d computes beyond the 10 cache-thrashing rows", got-10)
	}
	if hits := after.Hits - before.Hits; hits < 2 {
		t.Errorf("pinned rows not served from cache: %d hits", hits)
	}
}

func TestBoundedTableConcurrentOnceCompute(t *testing.T) {
	rng := xrand.New(1000)
	g := dyadicGraph(t, 40, 60, rng)
	bt, err := NewBoundedTable(g, BoundedOptions{Reach: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for u := 0; u < g.N(); u++ {
				bt.SparseRow(graph.NodeID(u))
			}
		}()
	}
	wg.Wait()
	st := bt.Stats()
	if st.Computes != int64(g.N()) {
		t.Errorf("Computes = %d under 8 workers, want exactly %d", st.Computes, g.N())
	}
}

// --- Landmarks -------------------------------------------------------------

func TestLandmarksLowerBoundIsAdmissible(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := xrand.New(1100 + seed)
		g := randomGraph(t, 30, 45, rng)
		dense := NewTable(g, 0)
		lm := NewLandmarks(g, 8)
		if lm == nil || lm.Count() != 8 {
			t.Fatalf("seed %d: NewLandmarks returned %v", seed, lm)
		}
		for u := 0; u < g.N(); u++ {
			for v := 0; v < g.N(); v++ {
				lb := lm.LowerBound(graph.NodeID(u), graph.NodeID(v))
				d := dense.Dist(graph.NodeID(u), graph.NodeID(v))
				if lb > d {
					t.Fatalf("seed %d: LowerBound(%d,%d) = %v exceeds true distance %v", seed, u, v, lb, d)
				}
			}
		}
	}
}

func TestLandmarksDisconnected(t *testing.T) {
	b := graph.NewBuilder(6)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(3, 4, 1)
	b.AddEdge(4, 5, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	lm := NewLandmarks(g, 4)
	// Farthest-point selection must reach both components: an unreached
	// component always scores +Inf, the farthest possible.
	if got := lm.LowerBound(0, 4); !math.IsInf(got, 1) {
		t.Errorf("cross-component LowerBound = %v, want +Inf", got)
	}
	if got := lm.LowerBound(0, 2); math.IsInf(got, 1) || got > 2 {
		t.Errorf("same-component LowerBound = %v, want finite ≤ 2", got)
	}
}

func TestLandmarksCapAndBytes(t *testing.T) {
	rng := xrand.New(1200)
	g := randomGraph(t, 10, 15, rng)
	if lm := NewLandmarks(g, 50); lm.Count() != 10 {
		t.Errorf("landmark count = %d, want capped at n = 10", lm.Count())
	}
	lm := NewLandmarks(g, 4)
	if want := int64(4 * 10 * 4); lm.Bytes() != want {
		t.Errorf("Bytes = %d, want %d", lm.Bytes(), want)
	}
	if NewLandmarks(g, 0) != nil {
		t.Error("NewLandmarks(g, 0) should be nil")
	}
}

func TestBoundedTableLandmarkPrune(t *testing.T) {
	// On a unit line graph d(0, n-1) = n-1, and landmark potentials make
	// that lower bound exact, so a reach-2 table answers far queries from
	// the ALT layer without computing a row.
	g := lineGraph(t, 50)
	bt, err := NewBoundedTable(g, BoundedOptions{Reach: 2, Landmarks: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := bt.Dist(0, 49); !math.IsInf(got, 1) {
		t.Fatalf("Dist(0,49) = %v, want +Inf", got)
	}
	st := bt.Stats()
	if st.LandmarkPrunes == 0 {
		t.Error("far query did not use the landmark prune path")
	}
	if st.Computes != 0 {
		t.Errorf("landmark-pruned query computed %d rows", st.Computes)
	}
	// A near query still goes through the row and stays exact.
	if got := bt.Dist(10, 12); got != 2 {
		t.Errorf("Dist(10,12) = %v, want 2", got)
	}
}

// --- Overlay sparse fast paths --------------------------------------------

// TestOverlaySparseMatchesDense pins the Overlay SparseSource fast paths:
// with an infinite reach over a dyadic graph the bounded rows are exact,
// so overlay distances through the sparse path must be bit-identical to
// the dense-table path.
func TestOverlaySparseMatchesDense(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := xrand.New(1300 + seed)
		g := dyadicGraph(t, 24, 36, rng)
		dense := NewTable(g, 0)
		bt, err := NewBoundedTable(g, BoundedOptions{Reach: math.Inf(1)})
		if err != nil {
			t.Fatal(err)
		}
		shortcuts := []graph.Edge{
			{U: graph.NodeID(rng.Intn(12)), V: graph.NodeID(12 + rng.Intn(12))},
			{U: graph.NodeID(rng.Intn(24)), V: graph.NodeID(rng.Intn(24))},
		}
		if shortcuts[1].U == shortcuts[1].V {
			shortcuts = shortcuts[:1]
		}
		ovDense := NewOverlay(dense, shortcuts)
		ovSparse := NewOverlay(bt, shortcuts)
		rowD := make([]float64, g.N())
		rowS := make([]float64, g.N())
		for u := 0; u < g.N(); u++ {
			for v := 0; v < g.N(); v++ {
				d, s := ovDense.Dist(graph.NodeID(u), graph.NodeID(v)), ovSparse.Dist(graph.NodeID(u), graph.NodeID(v))
				if d != s {
					t.Fatalf("seed %d: overlay Dist(%d,%d): dense %v, sparse %v", seed, u, v, d, s)
				}
			}
			ovDense.DistRow(graph.NodeID(u), rowD)
			ovSparse.DistRow(graph.NodeID(u), rowS)
			if !reflect.DeepEqual(rowD, rowS) {
				t.Fatalf("seed %d: overlay DistRow(%d) differs between dense and sparse paths", seed, u)
			}
		}
	}
}

// --- Fuzz ------------------------------------------------------------------

// FuzzSparseRowRoundTrip checks both directions of the sparse-row codec:
// every accepted byte string re-encodes to itself, and every row built by
// the bounded Dijkstra survives an encode/decode round trip.
func FuzzSparseRowRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add(SparseRow{ids: []int32{0, 3, 7}, dist: []float32{0, 0.5, 1.25}}.AppendBinary(nil))
	f.Add([]byte{2, 0, 0, 0, 5, 0, 0, 0, 0, 0, 128, 63})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodeSparseRow(data)
		if err != nil {
			return
		}
		if got := r.AppendBinary(nil); !bytes.Equal(got, data) {
			t.Fatalf("decode→encode not identity:\nin  %x\nout %x", data, got)
		}
		r2, err := DecodeSparseRow(r.AppendBinary(nil))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(r, r2) {
			t.Fatal("encode→decode changed the row")
		}
	})
}

func TestSparseRowRoundTripFromTable(t *testing.T) {
	rng := xrand.New(1400)
	g := dyadicGraph(t, 30, 45, rng)
	bt, err := NewBoundedTable(g, BoundedOptions{Reach: 1.2})
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.N(); u++ {
		r := bt.SparseRow(graph.NodeID(u))
		dec, err := DecodeSparseRow(r.AppendBinary(nil))
		if err != nil {
			t.Fatalf("row %d: %v", u, err)
		}
		if !reflect.DeepEqual(SparseRow{ids: dec.ids, dist: dec.dist}, SparseRow{ids: r.ids, dist: r.dist}) && r.Len() > 0 {
			t.Fatalf("row %d round trip changed the row", u)
		}
	}
}
