package shortestpath

import (
	"math"

	"msc/internal/graph"
	"msc/internal/telemetry"
)

// Overlay answers shortest-path queries in the augmented graph G ∪ F, where
// F is a set of zero-length shortcut edges, using only the distance rows
// of G exposed by a DistanceSource. It reads exactly the rows of the query
// endpoints and of the shortcut endpoints — with a LazyTable backend that
// sparse access pattern is what keeps σ evaluation independent of n.
//
// Correctness argument: a shortest u→w path in G ∪ F decomposes into maximal
// segments that stay inside G, separated by shortcut traversals. Each G
// segment between two "terminal" nodes a, b (shortcut endpoints, or u/w) has
// length exactly D[a][b]. So the augmented distance equals the shortest path
// in a small terminal graph whose nodes are the ≤2k shortcut endpoints, with
// base weights D[a][b] and weight 0 on shortcut pairs, entered from u and
// exited to w via D. Overlay runs Floyd–Warshall on that terminal graph once
// (O(k³)) and then answers each pair query in O(k²).
//
// This is what makes greedy σ-maximization tractable: evaluating σ(F ∪ {f})
// for all O(n²) candidate edges f touches only the small terminal graph, not
// the full network.
type Overlay struct {
	table DistanceSource
	// endpoints are the distinct shortcut endpoints, in first-seen order.
	endpoints []graph.NodeID
	// h[i][j] is the terminal-graph distance between endpoints[i] and
	// endpoints[j], allowing any number of shortcut traversals.
	h [][]float64
}

// NewOverlay builds the oracle for the given shortcut set. Shortcut edges
// are treated as length 0 regardless of their Length field (they are
// reliable links, §III-C). An empty shortcut set yields an oracle that
// simply forwards to the table.
func NewOverlay(table DistanceSource, shortcuts []graph.Edge) *Overlay {
	telemetry.Global().OverlayBuilds.Add(1)
	o := &Overlay{table: table}
	if len(shortcuts) == 0 {
		return o
	}
	index := make(map[graph.NodeID]int, 2*len(shortcuts))
	addEndpoint := func(v graph.NodeID) int {
		if i, ok := index[v]; ok {
			return i
		}
		i := len(o.endpoints)
		index[v] = i
		o.endpoints = append(o.endpoints, v)
		return i
	}
	type pair struct{ a, b int }
	zero := make([]pair, 0, len(shortcuts))
	for _, f := range shortcuts {
		zero = append(zero, pair{addEndpoint(f.U), addEndpoint(f.V)})
	}
	t := len(o.endpoints)
	o.h = make([][]float64, t)
	for i := 0; i < t; i++ {
		o.h[i] = make([]float64, t)
		for j := 0; j < t; j++ {
			if i == j {
				o.h[i][j] = 0
			} else {
				o.h[i][j] = table.Dist(o.endpoints[i], o.endpoints[j])
			}
		}
	}
	for _, p := range zero {
		o.h[p.a][p.b] = 0
		o.h[p.b][p.a] = 0
	}
	// Floyd–Warshall over the terminal graph.
	for k := 0; k < t; k++ {
		hk := o.h[k]
		for i := 0; i < t; i++ {
			hik := o.h[i][k]
			if math.IsInf(hik, 1) {
				continue
			}
			hi := o.h[i]
			for j := 0; j < t; j++ {
				if nd := hik + hk[j]; nd < hi[j] {
					hi[j] = nd
				}
			}
		}
	}
	return o
}

// Dist returns the shortest-path distance between u and w in G ∪ F.
func (o *Overlay) Dist(u, w graph.NodeID) float64 {
	telemetry.Global().OverlayQueries.Add(1)
	if ss, ok := o.table.(SparseSource); ok {
		return o.distSparse(ss, u, w)
	}
	// One Row call per endpoint: against a lazy backend every extra call
	// is a cache lookup, so the base distance comes from u's row directly.
	du := o.table.Row(u)
	best := du[w]
	t := len(o.endpoints)
	if t == 0 {
		return best
	}
	dw := o.table.Row(w)
	for i := 0; i < t; i++ {
		dui := du[o.endpoints[i]]
		if dui >= best {
			continue
		}
		hi := o.h[i]
		for j := 0; j < t; j++ {
			if d := dui + hi[j] + dw[o.endpoints[j]]; d < best {
				best = d
			}
		}
	}
	return best
}

// distSparse is Dist against a sparse backend: the same minimization over
// the same stored metric, but reading sparse rows so no dense row is ever
// materialized (a BoundedTable keeps dense rows forever). Bit-identical
// to the dense path — Row is defined as the scatter of SparseRow.
func (o *Overlay) distSparse(ss SparseSource, u, w graph.NodeID) float64 {
	du := ss.SparseRow(u)
	best := du.At(w)
	t := len(o.endpoints)
	if t == 0 {
		return best
	}
	dw := ss.SparseRow(w)
	for i := 0; i < t; i++ {
		dui := du.At(o.endpoints[i])
		if dui >= best {
			continue
		}
		hi := o.h[i]
		for j := 0; j < t; j++ {
			if d := dui + hi[j] + dw.At(o.endpoints[j]); d < best {
				best = d
			}
		}
	}
	return best
}

// Endpoints returns the distinct shortcut endpoints the oracle covers.
// Callers must not modify the returned slice.
func (o *Overlay) Endpoints() []graph.NodeID { return o.endpoints }

// DistRow fills out[x] with the augmented distance from u to every node x,
// in O(k² + n·k) — one pass over the terminal graph plus one pass over each
// terminal's base distance row. len(out) must equal the node count.
func (o *Overlay) DistRow(u graph.NodeID, out []float64) {
	telemetry.Global().OverlayRows.Add(1)
	if ss, ok := o.table.(SparseSource); ok {
		o.distRowSparse(ss, u, out)
		return
	}
	du := o.table.Row(u)
	if len(out) != len(du) {
		panic("shortestpath: DistRow output length mismatch")
	}
	copy(out, du)
	t := len(o.endpoints)
	if t == 0 {
		return
	}
	// c[i] = best distance from u to terminal i using any shortcuts:
	// min_j du[t_j] + h[j][i].
	c := make([]float64, t)
	for i := 0; i < t; i++ {
		best := du[o.endpoints[i]]
		for j := 0; j < t; j++ {
			if d := du[o.endpoints[j]] + o.h[j][i]; d < best {
				best = d
			}
		}
		c[i] = best
	}
	for i := 0; i < t; i++ {
		ci := c[i]
		if math.IsInf(ci, 1) {
			continue
		}
		ti := o.table.Row(o.endpoints[i])
		for x := range out {
			if d := ci + ti[x]; d < out[x] {
				out[x] = d
			}
		}
	}
}

// distRowSparse is DistRow against a sparse backend. The base row is an
// +Inf fill plus a scatter of u's ball, and each terminal contributes a
// scatter-min of its own ball — O(k² + k·ball) instead of O(k² + n·k),
// and no dense row is materialized. Values equal the dense path exactly.
func (o *Overlay) distRowSparse(ss SparseSource, u graph.NodeID, out []float64) {
	if len(out) != ss.N() {
		panic("shortestpath: DistRow output length mismatch")
	}
	inf := math.Inf(1)
	for x := range out {
		out[x] = inf
	}
	du := ss.SparseRow(u)
	for i := 0; i < du.Len(); i++ {
		id, d := du.Entry(i)
		out[id] = d
	}
	t := len(o.endpoints)
	if t == 0 {
		return
	}
	c := make([]float64, t)
	for i := 0; i < t; i++ {
		best := du.At(o.endpoints[i])
		for j := 0; j < t; j++ {
			if d := du.At(o.endpoints[j]) + o.h[j][i]; d < best {
				best = d
			}
		}
		c[i] = best
	}
	for i := 0; i < t; i++ {
		ci := c[i]
		if math.IsInf(ci, 1) {
			continue
		}
		ti := ss.SparseRow(o.endpoints[i])
		for k := 0; k < ti.Len(); k++ {
			id, d := ti.Entry(k)
			if nd := ci + d; nd < out[id] {
				out[id] = nd
			}
		}
	}
}

// AugmentedDistances is the naive reference implementation: it materializes
// G ∪ F and runs Dijkstra from src. Shortcut edges get length 0. Used by
// tests and the ablation benchmark to validate Overlay.
func AugmentedDistances(g *graph.Graph, shortcuts []graph.Edge, src graph.NodeID) []float64 {
	b := graph.NewBuilder(g.N())
	for _, e := range g.Edges() {
		b.AddEdge(e.U, e.V, e.Length)
	}
	for _, f := range shortcuts {
		b.AddEdge(f.U, f.V, 0)
	}
	aug, err := b.Build()
	if err != nil {
		// The inputs come from valid graphs, so this cannot happen.
		panic(err)
	}
	return Dijkstra(aug, src)
}
