package shortestpath

import (
	"math"

	"msc/internal/graph"
)

// Landmarks is an ALT-style lower-bound oracle: a small set of landmark
// nodes with precomputed full distance rows ("potentials"). For any pair
// (u,v) the triangle inequality gives d(u,v) ≥ |d(L,u) − d(L,v)| for
// every landmark L, so the best such difference is a certified lower
// bound on the true distance. BoundedTable uses it to answer "farther
// than reach" queries without touching a row; internal/core uses the
// same certificates to skip candidate pairs whose optimistic gain is
// provably zero.
//
// Potentials are stored as float32 to keep the layer at 4·n bytes per
// landmark; LowerBound subtracts the worst-case float32 rounding error
// so quantization can never inflate a bound past the true distance.
type Landmarks struct {
	nodes []graph.NodeID
	pot   [][]float32
}

// f32eps is one float32 ulp step (2⁻²³): the relative rounding error
// bound of float32 quantization. Edge-length sums stay far below
// MaxFloat32, so quantizing a finite float64 distance to float32
// perturbs it by at most a factor of (1 ± f32eps).
const f32eps = 1.0 / (1 << 23)

// NewLandmarks picks k landmarks by deterministic farthest-point
// traversal — node 0 first, then repeatedly the node maximizing the
// minimum distance to the chosen set (ties to the lowest id, with +Inf
// counting as farthest so every connected component receives a landmark
// early) — and computes one full Dijkstra row per landmark. It returns
// nil when k ≤ 0 or the graph is empty; k is capped at n.
func NewLandmarks(g *graph.Graph, k int) *Landmarks {
	n := g.N()
	if k <= 0 || n == 0 {
		return nil
	}
	if k > n {
		k = n
	}
	l := &Landmarks{
		nodes: make([]graph.NodeID, 0, k),
		pot:   make([][]float32, 0, k),
	}
	minDist := newDistSlice(n)
	chosen := make([]bool, n)
	next := graph.NodeID(0)
	for len(l.nodes) < k {
		chosen[next] = true
		d := Dijkstra(g, next)
		row := make([]float32, n)
		for v, dv := range d {
			row[v] = float32(dv)
			if dv < minDist[v] {
				minDist[v] = dv
			}
		}
		l.nodes = append(l.nodes, next)
		l.pot = append(l.pot, row)
		if len(l.nodes) == k {
			break
		}
		best := -1
		bestD := math.Inf(-1)
		for v := 0; v < n; v++ {
			if chosen[v] {
				continue
			}
			if minDist[v] > bestD {
				best, bestD = v, minDist[v]
			}
		}
		if best < 0 {
			break
		}
		next = graph.NodeID(best)
	}
	return l
}

// Count returns the number of landmarks.
func (l *Landmarks) Count() int { return len(l.nodes) }

// Nodes returns the landmark node ids in selection order. The slice is
// owned by the oracle and must not be modified.
func (l *Landmarks) Nodes() []graph.NodeID { return l.nodes }

// Bytes returns the resident potential payload: 4 bytes per node per
// landmark.
func (l *Landmarks) Bytes() int64 {
	if len(l.pot) == 0 {
		return 0
	}
	return int64(len(l.pot)) * int64(len(l.pot[0])) * 4
}

// LowerBound returns a certified lower bound on d(u,v): the best
// triangle-inequality difference over all landmarks, deflated by the
// float32 quantization error so the bound is conservative. A landmark
// reaching exactly one of u,v proves they sit in different components,
// which makes the bound exactly +Inf. With no usable landmark the bound
// is 0 (always sound: distances are non-negative).
func (l *Landmarks) LowerBound(u, v graph.NodeID) float64 {
	best := 0.0
	for _, row := range l.pot {
		a, b := float64(row[u]), float64(row[v])
		ai, bi := math.IsInf(a, 1), math.IsInf(b, 1)
		if ai || bi {
			if ai != bi {
				return Inf
			}
			continue
		}
		lb := a - b
		if lb < 0 {
			lb = -lb
		}
		// a and b each carry ≤ f32eps relative quantization error; the
		// deflation below absorbs the worst case, so lb ≤ true |Δ| ≤
		// d(u,v) holds for the exact distances too.
		lb -= (a + b) * f32eps
		if lb > best {
			best = lb
		}
	}
	return best
}
