package shortestpath

import (
	"sync"
	"sync/atomic"
	"time"

	"msc/internal/graph"
	"msc/internal/obs"
	"msc/internal/telemetry"
)

// LazyOptions tune a LazyTable. The zero value (unbounded cache, default
// shard count) is the right choice for almost every workload.
type LazyOptions struct {
	// MaxRows caps the number of cached non-pinned rows; 0 means
	// unbounded. The cap is distributed across the shards, so each shard
	// holds its share of MaxRows; pinned rows never count against it.
	// Evicted rows are recomputed on the next access — correctness never
	// depends on the cap, only the compute counters do.
	MaxRows int
	// Shards fixes the number of cache shards; 0 picks a default. More
	// shards reduce lock contention between concurrent readers.
	Shards int
}

// LazyStats is a point-in-time snapshot of a LazyTable's cache activity.
type LazyStats struct {
	// Hits counts Row/Dist calls that found the row entry already cached.
	Hits int64
	// Misses counts calls that had to create a new row entry.
	Misses int64
	// Computes counts Dijkstra runs. Without a row cap this equals the
	// number of distinct rows ever requested — each row is computed
	// exactly once no matter how many goroutines race for it.
	Computes int64
	// Evictions counts rows dropped to respect MaxRows.
	Evictions int64
	// Cached is the number of rows currently held (pinned included).
	Cached int
}

// LazyTable is a DistanceSource that computes Dijkstra rows on demand and
// memoizes them in a sharded, concurrency-safe cache. It is safe for
// concurrent use; every row is computed exactly once per cache residency
// (a sync.Once per entry), so concurrent readers of the same row never
// duplicate work and never observe a torn row.
//
// Construction is O(1): where the dense Table pays n Dijkstras and n²
// float64s up front, a LazyTable pays one Dijkstra per distinct row the
// solver actually touches — for the overlay oracle that is the ≤2m
// social-pair endpoints plus the ≤2k shortcut endpoints per evaluated
// selection, independent of n.
type LazyTable struct {
	g      *graph.Graph
	n      int
	shards []lazyShard

	hits      atomic.Int64
	misses    atomic.Int64
	computes  atomic.Int64
	evictions atomic.Int64
}

type lazyShard struct {
	mu sync.Mutex
	// cap is the shard's share of MaxRows (non-pinned rows); -1 means
	// unbounded.
	cap    int
	rows   map[graph.NodeID]*lazyRow
	fifo   []graph.NodeID // insertion order of evictable (non-pinned) rows
	pinned map[graph.NodeID]bool
}

// lazyRow is one cache entry. The Once both guarantees a single Dijkstra
// per residency and publishes dist: every reader goes through Do, which
// gives the read a happens-after edge on the write.
type lazyRow struct {
	once sync.Once
	dist []float64
}

// defaultLazyShards is the shard count when LazyOptions.Shards is 0:
// enough to keep GOMAXPROCS-wide scans from serializing on one lock,
// small enough that per-shard caps stay meaningful.
const defaultLazyShards = 16

// NewLazyTable wraps g in an on-demand distance source. The graph must be
// immutable for the table's lifetime (the same contract NewTable has).
func NewLazyTable(g *graph.Graph, opts LazyOptions) *LazyTable {
	shards := opts.Shards
	if shards <= 0 {
		shards = defaultLazyShards
	}
	if opts.MaxRows > 0 && shards > opts.MaxRows {
		// Never hand a shard a zero cap: with fewer shards than MaxRows
		// every shard can hold at least one row.
		shards = opts.MaxRows
	}
	t := &LazyTable{g: g, n: g.N(), shards: make([]lazyShard, shards)}
	for i := range t.shards {
		sh := &t.shards[i]
		sh.rows = make(map[graph.NodeID]*lazyRow)
		if opts.MaxRows <= 0 {
			sh.cap = -1
			continue
		}
		sh.cap = opts.MaxRows / shards
		if i < opts.MaxRows%shards {
			sh.cap++
		}
	}
	return t
}

// Pin marks the given rows as never-evictable, deterministically exempting
// them from MaxRows. core.NewInstance pins the social-pair endpoint rows:
// they are re-read by every overlay the solver builds, so evicting them
// would turn the hottest rows into permanent cache misses. Pinning does
// not compute the rows — they are still filled on first use.
func (t *LazyTable) Pin(nodes []graph.NodeID) {
	for _, u := range nodes {
		sh := t.shard(u)
		sh.mu.Lock()
		if sh.pinned == nil {
			sh.pinned = make(map[graph.NodeID]bool)
		}
		if !sh.pinned[u] {
			sh.pinned[u] = true
			// If the row was already cached as evictable, promote it.
			for i, v := range sh.fifo {
				if v == u {
					sh.fifo = append(sh.fifo[:i], sh.fifo[i+1:]...)
					break
				}
			}
		}
		sh.mu.Unlock()
	}
}

// N returns the number of nodes the table covers.
func (t *LazyTable) N() int { return t.n }

// Dist returns the shortest-path distance between u and v (+Inf if
// disconnected), computing and caching u's row on first use.
func (t *LazyTable) Dist(u, v graph.NodeID) float64 { return t.Row(u)[v] }

// Row returns the distance row of u, computing it on first use. Callers
// must not modify the returned slice; it stays valid even if the cache
// later evicts the row (rows are immutable once published, so eviction
// only forgets them).
func (t *LazyTable) Row(u graph.NodeID) []float64 {
	sh := t.shard(u)
	sh.mu.Lock()
	e, ok := sh.rows[u]
	if ok {
		sh.mu.Unlock()
		t.hits.Add(1)
		telemetry.Global().RowCacheHits.Add(1)
	} else {
		e = &lazyRow{}
		sh.rows[u] = e
		// Byte accounting is per resident entry: a dense row is 8·n bytes
		// the moment its entry exists (the compute below fills it).
		rowBytesResident.Add(int64(t.n) * 8)
		if sh.pinned == nil || !sh.pinned[u] {
			sh.fifo = append(sh.fifo, u)
			for sh.cap >= 0 && len(sh.fifo) > sh.cap {
				victim := sh.fifo[0]
				sh.fifo = append(sh.fifo[:0], sh.fifo[1:]...)
				delete(sh.rows, victim)
				rowBytesResident.Add(int64(t.n) * -8)
				t.evictions.Add(1)
				telemetry.Global().RowCacheEvictions.Add(1)
			}
		}
		sh.mu.Unlock()
		t.misses.Add(1)
		telemetry.Global().RowCacheMisses.Add(1)
	}
	// Outside the shard lock: concurrent requests for the same row block
	// here on the entry's Once (not on the shard), and requests for other
	// rows in the shard proceed. Exactly one caller runs the Dijkstra.
	e.once.Do(func() {
		t.computes.Add(1)
		telemetry.Global().RowCacheComputes.Add(1)
		if obs.Enabled() {
			start := time.Now()
			e.dist = Dijkstra(t.g, u)
			obs.ObserveRowCompute(time.Since(start))
		} else {
			e.dist = Dijkstra(t.g, u)
		}
	})
	return e.dist
}

// Stats snapshots the cache counters. Consistent when taken at a quiescent
// point (no concurrent Row/Dist calls), which is how tests use it.
func (t *LazyTable) Stats() LazyStats {
	s := LazyStats{
		Hits:      t.hits.Load(),
		Misses:    t.misses.Load(),
		Computes:  t.computes.Load(),
		Evictions: t.evictions.Load(),
	}
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		s.Cached += len(sh.rows)
		sh.mu.Unlock()
	}
	return s
}

func (t *LazyTable) shard(u graph.NodeID) *lazyShard {
	return &t.shards[int(u)%len(t.shards)]
}
