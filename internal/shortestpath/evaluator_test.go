package shortestpath

import (
	"math"
	"runtime"
	"strings"
	"testing"
	"time"

	"msc/internal/graph"
	"msc/internal/xrand"
)

// TestShardPanicIsolation: a panic in one evaluator worker must drain the
// others, leak no goroutines, and surface as a typed *PanicError on the
// caller's goroutine with the failing shard's query range and stack.
func TestShardPanicIsolation(t *testing.T) {
	e := &Evaluator{workers: 4}
	before := runtime.NumGoroutine()
	var got *PanicError
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("panic did not propagate")
			}
			var ok bool
			got, ok = r.(*PanicError)
			if !ok {
				t.Fatalf("recovered %T, want *PanicError", r)
			}
		}()
		e.shard(100, func(shard, lo, hi int) {
			if shard == 3 {
				panic("bad query")
			}
		})
	}()
	if got.Shard != 3 || got.Value != "bad query" {
		t.Fatalf("wrong panic surfaced: %+v", got)
	}
	if got.Lo >= got.Hi || got.Hi > 100 {
		t.Fatalf("range [%d, %d) not a sub-range of [0, 100)", got.Lo, got.Hi)
	}
	if len(got.Stack) == 0 {
		t.Fatal("no stack captured")
	}
	if !strings.Contains(got.Error(), "shard 3") {
		t.Fatalf("Error() = %q", got.Error())
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutines leaked: %d before, %d after", before, after)
	}
}

// evalQueries builds a deterministic query list over the graph's nodes.
func evalQueries(n, q int, rng *xrand.Rand) (us, ws []graph.NodeID) {
	for i := 0; i < q; i++ {
		us = append(us, graph.NodeID(rng.Intn(n)))
		ws = append(ws, graph.NodeID(rng.Intn(n)))
	}
	return us, ws
}

// TestEvaluatorCountWithinMatchesSerial checks the determinism contract on
// both distance backends: weighted and unweighted counts are identical for
// every worker count.
func TestEvaluatorCountWithinMatchesSerial(t *testing.T) {
	rng := xrand.New(61)
	g := randomGraph(t, 40, 70, rng)
	for _, backend := range []struct {
		name string
		src  DistanceSource
	}{
		{"dense", NewTable(g, 0)},
		{"lazy", NewLazyTable(g, LazyOptions{MaxRows: 8})},
	} {
		t.Run(backend.name, func(t *testing.T) {
			ov := NewOverlay(backend.src, []graph.Edge{{U: 0, V: 20}, {U: 5, V: 35}})
			us, ws := evalQueries(g.N(), 200, xrand.New(62))
			weights := make([]int32, len(us))
			for i := range weights {
				weights[i] = int32(1 + i%3)
			}
			bound := 2.5
			serial := NewEvaluator(ov, 1).CountWithin(us, ws, nil, bound)
			serialW := NewEvaluator(ov, 0).CountWithin(us, ws, weights, bound)
			for _, workers := range []int{2, 4, 8} {
				e := NewEvaluator(ov, workers)
				if got := e.CountWithin(us, ws, nil, bound); got != serial {
					t.Errorf("workers=%d: CountWithin = %d, want %d", workers, got, serial)
				}
				if got := e.CountWithin(us, ws, weights, bound); got != serialW {
					t.Errorf("workers=%d weighted: CountWithin = %d, want %d", workers, got, serialW)
				}
			}
		})
	}
}

func TestEvaluatorCountWithinLengthMismatch(t *testing.T) {
	g := lineGraph(t, 4)
	e := NewEvaluator(NewOverlay(NewTable(g, 0), nil), 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on query length mismatch")
		}
	}()
	e.CountWithin([]graph.NodeID{0, 1}, []graph.NodeID{2}, nil, 1)
}

// TestEvaluatorDistRowsMatchesSerial checks DistRows against the naive
// augmented-Dijkstra reference (serially) and against itself for every
// worker count, over a lazy backend.
func TestEvaluatorDistRowsMatchesSerial(t *testing.T) {
	rng := xrand.New(67)
	g := randomGraph(t, 35, 60, rng)
	shortcuts := []graph.Edge{{U: 2, V: 30}, {U: 10, V: 25}}
	ov := NewOverlay(NewLazyTable(g, LazyOptions{}), shortcuts)
	var srcs []graph.NodeID
	for u := 0; u < g.N(); u += 2 {
		srcs = append(srcs, graph.NodeID(u))
	}
	mkRows := func() [][]float64 {
		rows := make([][]float64, len(srcs))
		for i := range rows {
			rows[i] = make([]float64, g.N())
		}
		return rows
	}
	want := mkRows()
	NewEvaluator(ov, 1).DistRows(srcs, want)
	for i, src := range srcs {
		ref := AugmentedDistances(g, shortcuts, src)
		for v := range ref {
			if math.Abs(want[i][v]-ref[v]) > 1e-9 && !(math.IsInf(want[i][v], 1) && math.IsInf(ref[v], 1)) {
				t.Fatalf("serial DistRows src %d node %d = %v, want %v", src, v, want[i][v], ref[v])
			}
		}
	}
	for _, workers := range []int{2, 4, 8} {
		got := mkRows()
		NewEvaluator(ov, workers).DistRows(srcs, got)
		for i := range srcs {
			sameRow(t, got[i], want[i], "parallel DistRows")
		}
	}
}

func TestEvaluatorDistRowsLengthMismatch(t *testing.T) {
	g := lineGraph(t, 4)
	e := NewEvaluator(NewOverlay(NewTable(g, 0), nil), 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on rows length mismatch")
		}
	}()
	e.DistRows([]graph.NodeID{0, 1}, make([][]float64, 1))
}

func TestOverlayEndpointsDistinct(t *testing.T) {
	g := lineGraph(t, 6)
	ov := NewOverlay(NewTable(g, 0), []graph.Edge{{U: 0, V: 3}, {U: 3, V: 5}, {U: 0, V: 5}})
	eps := ov.Endpoints()
	if len(eps) != 3 {
		t.Fatalf("Endpoints() = %v, want the 3 distinct endpoints", eps)
	}
	seen := map[graph.NodeID]bool{}
	for _, v := range eps {
		if seen[v] {
			t.Fatalf("duplicate endpoint %d in %v", v, eps)
		}
		seen[v] = true
	}
	if !seen[0] || !seen[3] || !seen[5] {
		t.Fatalf("Endpoints() = %v, want {0,3,5}", eps)
	}
}
