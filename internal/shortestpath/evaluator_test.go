package shortestpath

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// TestShardPanicIsolation: a panic in one evaluator worker must drain the
// others, leak no goroutines, and surface as a typed *PanicError on the
// caller's goroutine with the failing shard's query range and stack.
func TestShardPanicIsolation(t *testing.T) {
	e := &Evaluator{workers: 4}
	before := runtime.NumGoroutine()
	var got *PanicError
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("panic did not propagate")
			}
			var ok bool
			got, ok = r.(*PanicError)
			if !ok {
				t.Fatalf("recovered %T, want *PanicError", r)
			}
		}()
		e.shard(100, func(shard, lo, hi int) {
			if shard == 3 {
				panic("bad query")
			}
		})
	}()
	if got.Shard != 3 || got.Value != "bad query" {
		t.Fatalf("wrong panic surfaced: %+v", got)
	}
	if got.Lo >= got.Hi || got.Hi > 100 {
		t.Fatalf("range [%d, %d) not a sub-range of [0, 100)", got.Lo, got.Hi)
	}
	if len(got.Stack) == 0 {
		t.Fatal("no stack captured")
	}
	if !strings.Contains(got.Error(), "shard 3") {
		t.Fatalf("Error() = %q", got.Error())
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutines leaked: %d before, %d after", before, after)
	}
}
