package mobility

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"

	"msc/internal/geom"
	"msc/internal/netbuild"
	"msc/internal/xrand"
)

func TestGenerateShape(t *testing.T) {
	cfg := DefaultConfig()
	tr, err := Generate(cfg, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if tr.N() != 90 || tr.T() != 30 {
		t.Fatalf("n=%d T=%d", tr.N(), tr.T())
	}
	groups := map[int]int{}
	for _, g := range tr.GroupOf {
		groups[g]++
	}
	if len(groups) != 7 {
		t.Fatalf("groups = %d, want 7", len(groups))
	}
	for t0 := range tr.Positions {
		for v, p := range tr.Positions[t0] {
			if !cfg.Area.Contains(p) {
				t.Fatalf("t=%d node %d escaped the area: %v", t0, v, p)
			}
		}
	}
}

func TestGroupCohesion(t *testing.T) {
	// Group members must stay within MemberRadius of their group's
	// centroid-ish reference; we allow 2× slack for the clamped boundary.
	cfg := DefaultConfig()
	tr, err := Generate(cfg, xrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < tr.T(); step += 5 {
		centers := make(map[int]geom.Point)
		counts := make(map[int]int)
		for v, p := range tr.Positions[step] {
			g := tr.GroupOf[v]
			centers[g] = centers[g].Add(p)
			counts[g]++
		}
		for g := range centers {
			centers[g] = centers[g].Scale(1 / float64(counts[g]))
		}
		for v, p := range tr.Positions[step] {
			if d := p.Dist(centers[tr.GroupOf[v]]); d > 2.5*cfg.MemberRadius {
				t.Fatalf("t=%d node %d strayed %v from its squad", step, v, d)
			}
		}
	}
}

func TestTopologyChurn(t *testing.T) {
	// Consecutive snapshots should differ (nodes move) but not be
	// unrecognizable; compare edge sets of snapshots far apart.
	tr, err := Generate(DefaultConfig(), xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	fm := netbuild.FailureModel{Radius: 700, FailureAtRadius: 0.2}
	first, err := tr.Snapshot(0, fm)
	if err != nil {
		t.Fatal(err)
	}
	last, err := tr.Snapshot(tr.T()-1, fm)
	if err != nil {
		t.Fatal(err)
	}
	if first.M() == 0 || last.M() == 0 {
		t.Fatal("degenerate snapshots")
	}
	same := 0
	for _, e := range first.Edges() {
		if last.HasEdge(e.U, e.V) {
			same++
		}
	}
	if same == first.M() {
		t.Fatal("topology did not change over 30 steps")
	}
}

func TestGenerateValidation(t *testing.T) {
	rng := xrand.New(1)
	bad := []Config{
		{Groups: 0, Nodes: 10, Steps: 5, Area: geom.UnitSquare},
		{Groups: 2, Nodes: 1, Steps: 5, Area: geom.UnitSquare},
		{Groups: 2, Nodes: 10, Steps: 0, Area: geom.UnitSquare},
		{Groups: 2, Nodes: 10, Steps: 5, Area: geom.UnitSquare, LeaderSpeedMin: 5, LeaderSpeedMax: 1},
	}
	wants := []error{ErrGroups, ErrNodes, ErrSteps, ErrSpeed}
	for i, cfg := range bad {
		if _, err := Generate(cfg, rng); !errors.Is(err, wants[i]) {
			t.Errorf("case %d: err = %v, want %v", i, err, wants[i])
		}
	}
}

func TestSnapshotsAndBounds(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 20
	cfg.Steps = 4
	tr, err := Generate(cfg, xrand.New(4))
	if err != nil {
		t.Fatal(err)
	}
	fm := netbuild.FailureModel{Radius: 800, FailureAtRadius: 0.2}
	gs, err := tr.Snapshots(fm)
	if err != nil {
		t.Fatal(err)
	}
	if len(gs) != 4 {
		t.Fatalf("snapshots = %d", len(gs))
	}
	if _, err := tr.Snapshot(-1, fm); err == nil {
		t.Fatal("expected range error")
	}
	if _, err := tr.Snapshot(4, fm); err == nil {
		t.Fatal("expected range error")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 12
	cfg.Groups = 3
	cfg.Steps = 5
	tr, err := Generate(cfg, xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != tr.N() || back.T() != tr.T() || back.StepSeconds != tr.StepSeconds {
		t.Fatalf("shape changed: n=%d T=%d step=%v", back.N(), back.T(), back.StepSeconds)
	}
	for step := range tr.Positions {
		for v := range tr.Positions[step] {
			a, b := tr.Positions[step][v], back.Positions[step][v]
			// WriteCSV rounds to millimeters.
			if math.Abs(a.X-b.X) > 0.001 || math.Abs(a.Y-b.Y) > 0.001 {
				t.Fatalf("position drift at t=%d v=%d: %v vs %v", step, v, a, b)
			}
		}
	}
	for v := range tr.GroupOf {
		if back.GroupOf[v] != tr.GroupOf[v] {
			t.Fatal("group assignment lost")
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",                               // empty
		"t,node,group,x,y\n",             // header only
		"0,0,0,1.0\n",                    // four fields
		"x,0,0,1.0,2.0\n",                // bad t
		"0,0,0,1.0,2.0\n0,0,0,1.0,2.0\n", // duplicate cell
		"1,0,0,1.0,2.0\n",                // missing t=0 record
	}
	for i, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: expected error for %q", i, in)
		}
	}
}

func TestDeterministic(t *testing.T) {
	a, _ := Generate(DefaultConfig(), xrand.New(9))
	b, _ := Generate(DefaultConfig(), xrand.New(9))
	for step := range a.Positions {
		for v := range a.Positions[step] {
			if a.Positions[step][v] != b.Positions[step][v] {
				t.Fatal("same seed, different trace")
			}
		}
	}
}
