package mobility

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"msc/internal/geom"
)

// Trace files are plain CSV, one position report per line:
//
//	# step_seconds=30
//	t,node,group,x,y
//	0,0,0,1023.5,2311.0
//	...
//
// matching the periodic location updates of the ARL traces closely enough
// that converting a real trace is a one-line awk job.

// WriteCSV encodes the trace.
func (tr *Trace) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# step_seconds=%g\n", tr.StepSeconds); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(bw, "t,node,group,x,y"); err != nil {
		return err
	}
	for t, snapshot := range tr.Positions {
		for v, p := range snapshot {
			if _, err := fmt.Fprintf(bw, "%d,%d,%d,%.3f,%.3f\n", t, v, tr.GroupOf[v], p.X, p.Y); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadCSV decodes a trace written by WriteCSV (or converted from another
// source into the same shape). Records may arrive in any order as long as
// every (t, node) cell is present exactly once.
func ReadCSV(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	tr := &Trace{StepSeconds: 1}
	type rec struct {
		t, node, group int
		p              geom.Point
	}
	var recs []rec
	maxT, maxNode := -1, -1
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, "#"):
			if v, ok := strings.CutPrefix(line, "# step_seconds="); ok {
				s, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
				if err != nil {
					return nil, fmt.Errorf("mobility: line %d: step_seconds: %w", lineNo, err)
				}
				tr.StepSeconds = s
			}
			continue
		case strings.HasPrefix(line, "t,"):
			continue // header
		}
		fields := strings.Split(line, ",")
		if len(fields) != 5 {
			return nil, fmt.Errorf("mobility: line %d: want 5 fields, got %d", lineNo, len(fields))
		}
		t, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("mobility: line %d: t: %w", lineNo, err)
		}
		node, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("mobility: line %d: node: %w", lineNo, err)
		}
		group, err := strconv.Atoi(fields[2])
		if err != nil {
			return nil, fmt.Errorf("mobility: line %d: group: %w", lineNo, err)
		}
		x, err := strconv.ParseFloat(fields[3], 64)
		if err != nil {
			return nil, fmt.Errorf("mobility: line %d: x: %w", lineNo, err)
		}
		y, err := strconv.ParseFloat(fields[4], 64)
		if err != nil {
			return nil, fmt.Errorf("mobility: line %d: y: %w", lineNo, err)
		}
		if t < 0 || node < 0 {
			return nil, fmt.Errorf("mobility: line %d: negative index", lineNo)
		}
		recs = append(recs, rec{t: t, node: node, group: group, p: geom.Point{X: x, Y: y}})
		if t > maxT {
			maxT = t
		}
		if node > maxNode {
			maxNode = node
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("mobility: read trace: %w", err)
	}
	if maxT < 0 || maxNode < 0 {
		return nil, fmt.Errorf("mobility: empty trace")
	}
	steps, nodes := maxT+1, maxNode+1
	tr.Positions = make([][]geom.Point, steps)
	seen := make([][]bool, steps)
	for t := range tr.Positions {
		tr.Positions[t] = make([]geom.Point, nodes)
		seen[t] = make([]bool, nodes)
	}
	tr.GroupOf = make([]int, nodes)
	for _, rc := range recs {
		if seen[rc.t][rc.node] {
			return nil, fmt.Errorf("mobility: duplicate record for t=%d node=%d", rc.t, rc.node)
		}
		seen[rc.t][rc.node] = true
		tr.Positions[rc.t][rc.node] = rc.p
		tr.GroupOf[rc.node] = rc.group
	}
	for t := range seen {
		for v := range seen[t] {
			if !seen[t][v] {
				return nil, fmt.Errorf("mobility: missing record for t=%d node=%d", t, v)
			}
		}
	}
	return tr, nil
}
