// Package mobility generates and manipulates node mobility traces for the
// dynamic-network experiments (paper §VI–VII-E).
//
// The paper's dynamic evaluation uses tactical traces from the US Army
// Research Laboratory's Network Science Research Laboratory: 90 nodes in 7
// groups, periodically reporting positions during an operation. Those
// traces are not redistributable, so this package implements the standard
// synthetic surrogate for that trace family: Reference Point Group
// Mobility (RPGM). Each group follows a leader performing a smoothed
// random walk across the operation area; members jitter around their
// group's reference point. RPGM preserves the two properties the MSC
// experiments depend on — strong intra-group locality (dense, reliable
// links inside squads) and gradual inter-group topology churn.
package mobility

import (
	"errors"
	"fmt"
	"math"

	"msc/internal/geom"
	"msc/internal/graph"
	"msc/internal/netbuild"
	"msc/internal/xrand"
)

// Config parameterizes an RPGM trace.
type Config struct {
	// Groups is the number of squads (ARL traces use 7).
	Groups int
	// Nodes is the total node count, split as evenly as possible across
	// groups (ARL traces use 90).
	Nodes int
	// Area is the operation area in meters.
	Area geom.Rect
	// Steps is the number of recorded time instances T.
	Steps int
	// StepSeconds is the wall-clock gap between instances.
	StepSeconds float64
	// LeaderSpeedMin/Max bound each group leader's speed in m/s; the
	// leader's heading drifts smoothly with bounded turn rate.
	LeaderSpeedMin, LeaderSpeedMax float64
	// MemberRadius is how far members may roam from the group reference
	// point, in meters.
	MemberRadius float64
}

// DefaultConfig mirrors the scale of the ARL tactical traces.
func DefaultConfig() Config {
	return Config{
		Groups:         7,
		Nodes:          90,
		Area:           geom.Rect{MinX: 0, MinY: 0, MaxX: 4000, MaxY: 4000},
		Steps:          30,
		StepSeconds:    30,
		LeaderSpeedMin: 1.0,
		LeaderSpeedMax: 4.0,
		MemberRadius:   120,
	}
}

// Trace holds the positions of every node at every time instance.
type Trace struct {
	// Positions[t][v] is node v's location at instance t.
	Positions [][]geom.Point
	// GroupOf[v] is node v's group index.
	GroupOf []int
	// StepSeconds is the time between instances.
	StepSeconds float64
}

// Errors returned by Generate.
var (
	ErrGroups = errors.New("mobility: need at least one group")
	ErrNodes  = errors.New("mobility: need at least two nodes")
	ErrSteps  = errors.New("mobility: need at least one step")
	ErrSpeed  = errors.New("mobility: speed bounds must satisfy 0 <= min <= max")
)

// Generate produces an RPGM trace, deterministic in rng.
func Generate(cfg Config, rng *xrand.Rand) (*Trace, error) {
	switch {
	case cfg.Groups < 1:
		return nil, fmt.Errorf("%w: %d", ErrGroups, cfg.Groups)
	case cfg.Nodes < 2:
		return nil, fmt.Errorf("%w: %d", ErrNodes, cfg.Nodes)
	case cfg.Steps < 1:
		return nil, fmt.Errorf("%w: %d", ErrSteps, cfg.Steps)
	case cfg.LeaderSpeedMin < 0 || cfg.LeaderSpeedMax < cfg.LeaderSpeedMin:
		return nil, fmt.Errorf("%w: [%v, %v]", ErrSpeed, cfg.LeaderSpeedMin, cfg.LeaderSpeedMax)
	}
	tr := &Trace{
		Positions:   make([][]geom.Point, cfg.Steps),
		GroupOf:     make([]int, cfg.Nodes),
		StepSeconds: cfg.StepSeconds,
	}
	for v := 0; v < cfg.Nodes; v++ {
		tr.GroupOf[v] = v % cfg.Groups
	}
	// Group reference points start spread over the area; headings random.
	type leader struct {
		pos     geom.Point
		heading float64
		speed   float64
	}
	leaders := make([]leader, cfg.Groups)
	for gi := range leaders {
		leaders[gi] = leader{
			pos: geom.Point{
				X: cfg.Area.MinX + rng.Float64()*cfg.Area.Width(),
				Y: cfg.Area.MinY + rng.Float64()*cfg.Area.Height(),
			},
			heading: rng.Float64() * 2 * math.Pi,
			speed:   cfg.LeaderSpeedMin + rng.Float64()*(cfg.LeaderSpeedMax-cfg.LeaderSpeedMin),
		}
	}
	// Members keep a persistent offset target within MemberRadius that
	// slowly re-randomizes, so squads look like loose formations rather
	// than white noise.
	offsets := make([]geom.Point, cfg.Nodes)
	for v := range offsets {
		offsets[v] = randOffset(cfg.MemberRadius, rng)
	}
	for t := 0; t < cfg.Steps; t++ {
		snapshot := make([]geom.Point, cfg.Nodes)
		for v := 0; v < cfg.Nodes; v++ {
			ld := leaders[tr.GroupOf[v]]
			if rng.Float64() < 0.2 {
				offsets[v] = randOffset(cfg.MemberRadius, rng)
			}
			snapshot[v] = cfg.Area.Clamp(ld.pos.Add(offsets[v]))
		}
		tr.Positions[t] = snapshot
		// Advance leaders for the next instance.
		for gi := range leaders {
			ld := &leaders[gi]
			ld.heading += (rng.Float64() - 0.5) * math.Pi / 2 // bounded turn
			ld.speed = clamp(ld.speed+(rng.Float64()-0.5)*0.5,
				cfg.LeaderSpeedMin, cfg.LeaderSpeedMax)
			step := ld.speed * cfg.StepSeconds
			next := ld.pos.Add(geom.Point{
				X: math.Cos(ld.heading) * step,
				Y: math.Sin(ld.heading) * step,
			})
			// Bounce off the area boundary by reflecting the heading.
			if next.X < cfg.Area.MinX || next.X > cfg.Area.MaxX {
				ld.heading = math.Pi - ld.heading
			}
			if next.Y < cfg.Area.MinY || next.Y > cfg.Area.MaxY {
				ld.heading = -ld.heading
			}
			ld.pos = cfg.Area.Clamp(next)
		}
	}
	return tr, nil
}

func randOffset(radius float64, rng *xrand.Rand) geom.Point {
	// Uniform in the disk of the given radius.
	r := radius * math.Sqrt(rng.Float64())
	theta := rng.Float64() * 2 * math.Pi
	return geom.Point{X: r * math.Cos(theta), Y: r * math.Sin(theta)}
}

func clamp(v, lo, hi float64) float64 {
	return math.Min(math.Max(v, lo), hi)
}

// N returns the node count.
func (tr *Trace) N() int { return len(tr.GroupOf) }

// T returns the number of time instances.
func (tr *Trace) T() int { return len(tr.Positions) }

// Snapshot builds the communication graph at time instance t under the
// given radio model.
func (tr *Trace) Snapshot(t int, fm netbuild.FailureModel) (*graph.Graph, error) {
	if t < 0 || t >= tr.T() {
		return nil, fmt.Errorf("mobility: snapshot index %d out of range [0, %d)", t, tr.T())
	}
	return netbuild.Proximity(tr.Positions[t], fm)
}

// Snapshots builds the whole topology series G_1..G_T.
func (tr *Trace) Snapshots(fm netbuild.FailureModel) ([]*graph.Graph, error) {
	out := make([]*graph.Graph, tr.T())
	for t := range out {
		g, err := tr.Snapshot(t, fm)
		if err != nil {
			return nil, fmt.Errorf("mobility: snapshot %d: %w", t, err)
		}
		out[t] = g
	}
	return out, nil
}
