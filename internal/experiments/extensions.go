package experiments

import (
	"fmt"

	"msc/internal/baselines"
	"msc/internal/core"
	"msc/internal/failprob"
	"msc/internal/pairs"
)

// Ext1 is an extension experiment beyond the paper's figures: it
// quantifies the paper's motivating claim (§I–II) that shortcut placement
// aimed at ALL node pairs — diameter minimization [7] or average-distance
// minimization [8], [17] — wastes budget when only the important pairs
// matter. For each k it reports the number of important pairs maintained
// by the MSC-aware sandwich algorithm vs the two all-pairs baselines and
// the random baseline, on both datasets.
func (c Config) Ext1() []*Figure {
	ks := []int{2, 4, 6, 8, 10}
	mRG, mGW := 80, 76
	ptRG, ptGW := 0.14, 0.23
	trials := 500
	sampleSize := 300
	if c.Quick {
		ks = []int{2, 4}
		mRG, mGW = 10, 10
		trials, sampleSize = 30, 60
	}
	figs := make([]*Figure, 0, 2)
	for di, ds := range []dataset{c.rggDataset(), c.socialDataset()} {
		m, pt := mRG, ptRG
		if di == 1 {
			m, pt = mGW, ptGW
		}
		thr := failprob.NewThreshold(pt)
		ps, err := pairs.SampleViolating(ds.table, thr.D, m, c.rng(900+int64(di)))
		if err != nil {
			panic(fmt.Sprintf("experiments: ext1 pairs: %v", err))
		}
		fig := &Figure{
			ID:     fmt.Sprintf("Ext 1(%c)", 'a'+di),
			Title:  fmt.Sprintf("MSC-aware vs all-pairs placement on %s (m=%d, p_t=%.2f)", ds.name, m, pt),
			XLabel: "k",
			YLabel: "maintained social connections (σ)",
		}
		for _, k := range ks {
			fig.X = append(fig.X, float64(k))
		}
		aaY := make([]float64, 0, len(ks))
		diamY := make([]float64, 0, len(ks))
		avgY := make([]float64, 0, len(ks))
		rndY := make([]float64, 0, len(ks))
		for _, k := range ks {
			inst, err := core.NewInstance(ds.g, ps, thr, k, &core.Options{AllowTrivial: true, Table: ds.table})
			if err != nil {
				panic(fmt.Sprintf("experiments: ext1 instance: %v", err))
			}
			aaY = append(aaY, float64(core.Sandwich(inst).Best.Sigma))
			diam := baselines.FarthestPairs(ds.g, ds.table, k)
			diamY = append(diamY, float64(inst.SigmaEdges(diam)))
			avg := baselines.AvgDistanceGreedy(ds.g, ds.table, k, sampleSize, c.rng(910+int64(di)))
			avgY = append(avgY, float64(inst.SigmaEdges(avg)))
			rndY = append(rndY, float64(mustRandom(inst, trials, c.rng(920+int64(di))).Sigma))
		}
		fig.Series = append(fig.Series,
			Series{Name: "MSC (AA)", Y: aaY},
			Series{Name: "Diameter [7]", Y: diamY},
			Series{Name: "AvgDist [8]", Y: avgY},
			Series{Name: "Random", Y: rndY},
		)
		figs = append(figs, fig)
	}
	return figs
}
