// Package experiments regenerates every table and figure of the paper's
// evaluation (§VII) on this repository's substrates. Each experiment is a
// pure function of a Config (seed + quick flag), so runs are reproducible
// bit-for-bit; cmd/mscbench and the root bench suite are thin wrappers
// around it.
package experiments

import (
	"fmt"
	"strings"
)

// Table is a labeled grid of numbers, e.g. Table I's approximation ratios.
type Table struct {
	ID       string
	Title    string
	RowLabel string // meaning of row labels (e.g. "k")
	ColLabel string // meaning of column labels (e.g. "p_t")
	Cols     []string
	Rows     []TableRow
}

// TableRow is one table row.
type TableRow struct {
	Label string
	Cells []float64
}

// Format renders the table as aligned text, mirroring how the paper prints
// Tables I and II.
func (t *Table) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: %s\n", t.ID, t.Title)
	header := make([]string, 0, len(t.Cols)+1)
	header = append(header, fmt.Sprintf("%s\\%s", t.RowLabel, t.ColLabel))
	header = append(header, t.Cols...)
	widths := make([]int, len(header))
	rows := make([][]string, 0, len(t.Rows)+1)
	rows = append(rows, header)
	for _, r := range t.Rows {
		cells := make([]string, 0, len(r.Cells)+1)
		cells = append(cells, r.Label)
		for _, c := range r.Cells {
			cells = append(cells, fmt.Sprintf("%.4f", c))
		}
		rows = append(rows, cells)
	}
	for _, row := range rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	for ri, row := range rows {
		for i, c := range row {
			fmt.Fprintf(&sb, "%-*s", widths[i]+2, c)
		}
		sb.WriteByte('\n')
		if ri == 0 {
			total := 0
			for _, w := range widths {
				total += w + 2
			}
			sb.WriteString(strings.Repeat("-", total))
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var sb strings.Builder
	sb.WriteString(t.RowLabel)
	for _, c := range t.Cols {
		sb.WriteByte(',')
		sb.WriteString(c)
	}
	sb.WriteByte('\n')
	for _, r := range t.Rows {
		sb.WriteString(r.Label)
		for _, c := range r.Cells {
			fmt.Fprintf(&sb, ",%.6g", c)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Figure is a set of named series over a shared x-axis, standing in for
// one of the paper's plots.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	X      []float64
	Series []Series
}

// Series is one curve.
type Series struct {
	Name string
	Y    []float64
}

// Format renders the figure as an aligned text table: one row per x value,
// one column per series — the shape a plotting script would ingest.
func (f *Figure) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: %s\n", f.ID, f.Title)
	fmt.Fprintf(&sb, "y: %s\n", f.YLabel)
	header := make([]string, 0, len(f.Series)+1)
	header = append(header, f.XLabel)
	for _, s := range f.Series {
		header = append(header, s.Name)
	}
	widths := make([]int, len(header))
	rows := [][]string{header}
	for i, x := range f.X {
		row := []string{fmt.Sprintf("%g", x)}
		for _, s := range f.Series {
			if i < len(s.Y) {
				row = append(row, fmt.Sprintf("%.3f", s.Y[i]))
			} else {
				row = append(row, "-")
			}
		}
		rows = append(rows, row)
	}
	for _, row := range rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	for ri, row := range rows {
		for i, c := range row {
			fmt.Fprintf(&sb, "%-*s", widths[i]+2, c)
		}
		sb.WriteByte('\n')
		if ri == 0 {
			total := 0
			for _, w := range widths {
				total += w + 2
			}
			sb.WriteString(strings.Repeat("-", total))
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

// CSV renders the figure data as comma-separated values.
func (f *Figure) CSV() string {
	var sb strings.Builder
	sb.WriteString(f.XLabel)
	for _, s := range f.Series {
		sb.WriteByte(',')
		sb.WriteString(s.Name)
	}
	sb.WriteByte('\n')
	for i, x := range f.X {
		fmt.Fprintf(&sb, "%g", x)
		for _, s := range f.Series {
			if i < len(s.Y) {
				fmt.Fprintf(&sb, ",%.6g", s.Y[i])
			} else {
				sb.WriteString(",")
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
