package experiments

import (
	"fmt"

	"msc/internal/core"
	"msc/internal/failprob"
	"msc/internal/pairs"
)

// Ext4 evaluates the importance-weights extension (§VI notes that "the
// importance level of different social pairs may change over time"; the
// library supports integer importance levels per pair). On an RG instance
// where a few pairs are critical (weight 5) and the rest routine
// (weight 1), it compares the total maintained importance achieved by:
//
//   - weight-aware AA: the sandwich algorithm solving the weighted
//     objective directly;
//   - weight-blind AA: the same algorithm ignoring weights (the paper's
//     objective), graded under the weighted objective;
//   - random placement, graded the same way.
//
// The gap between aware and blind is the value of importance information.
func (c Config) Ext4() *Figure {
	ks := []int{2, 4, 6, 8, 10}
	m, critical, pt := 80, 10, 0.11
	trials := 500
	if c.Quick {
		ks = []int{2, 4}
		m, critical = 10, 3
		trials = 30
	}
	ds := c.rggDataset()
	thr := failprob.NewThreshold(pt)
	ps, err := pairs.SampleViolating(ds.table, thr.D, m, c.rng(980))
	if err != nil {
		panic(fmt.Sprintf("experiments: ext4 pairs: %v", err))
	}
	// The first `critical` sampled pairs carry weight 5.
	weights := make([]int, m)
	for i := range weights {
		if i < critical {
			weights[i] = 5
		} else {
			weights[i] = 1
		}
	}

	fig := &Figure{
		ID: "Ext 4",
		Title: fmt.Sprintf("Importance-aware placement on RG (m=%d, %d critical pairs ×5, p_t=%.2f)",
			m, critical, pt),
		XLabel: "k",
		YLabel: "total maintained importance (weighted σ)",
	}
	for _, k := range ks {
		fig.X = append(fig.X, float64(k))
	}
	awareY := make([]float64, 0, len(ks))
	blindY := make([]float64, 0, len(ks))
	rndY := make([]float64, 0, len(ks))
	for _, k := range ks {
		weighted, err := core.NewInstance(ds.g, ps, thr, k, &core.Options{
			AllowTrivial: true, Table: ds.table, PairWeights: weights,
		})
		if err != nil {
			panic(fmt.Sprintf("experiments: ext4 weighted instance: %v", err))
		}
		unweighted, err := core.NewInstance(ds.g, ps, thr, k, &core.Options{
			AllowTrivial: true, Table: ds.table,
		})
		if err != nil {
			panic(fmt.Sprintf("experiments: ext4 unweighted instance: %v", err))
		}
		aware := core.Sandwich(weighted).Best
		awareY = append(awareY, float64(aware.Sigma))
		blind := core.Sandwich(unweighted).Best
		blindY = append(blindY, float64(weighted.Sigma(blind.Selection)))
		rnd := mustRandom(weighted, trials, c.rng(985+int64(k)))
		rndY = append(rndY, float64(rnd.Sigma))
	}
	fig.Series = append(fig.Series,
		Series{Name: "weight-aware AA", Y: awareY},
		Series{Name: "weight-blind AA", Y: blindY},
		Series{Name: "Random", Y: rndY},
	)
	return fig
}
