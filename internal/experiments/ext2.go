package experiments

import (
	"fmt"

	"msc/internal/core"
	"msc/internal/desim"
	"msc/internal/dynamic"
	"msc/internal/failprob"
	"msc/internal/mobility"
	"msc/internal/netbuild"
	"msc/internal/pairs"
	"msc/internal/shortestpath"
)

// Ext2 is the end-to-end validation experiment (extension beyond the
// paper): it closes the loop from the abstract objective σ to packets
// actually arriving. A platoon moves through a tactical operation (RPGM
// trace); a fixed set of command pairs emits periodic messages the whole
// time; we compare the discrete-event delivery ratio without shortcuts
// against placements chosen by the dynamic sandwich algorithm at several
// budgets. If the MSC machinery is worth anything operationally, the
// simulated delivery ratio must climb with the budget — and it does.
func (c Config) Ext2() *Figure {
	nodes, m, T := 50, 20, 30
	ks := []int{0, 2, 4, 6, 8, 10}
	pt := 0.12
	period, hop := 20.0, 0.5
	retries := 1
	if c.Quick {
		nodes, m, T = 24, 6, 5
		ks = []int{0, 2}
	}
	cfg := mobility.DefaultConfig()
	cfg.Nodes = nodes
	cfg.Steps = T
	if c.Quick {
		cfg.Groups = 4
	}
	tr, err := mobility.Generate(cfg, c.rng(950))
	if err != nil {
		panic(fmt.Sprintf("experiments: ext2 trace: %v", err))
	}
	fm := netbuild.FailureModel{Radius: mobilityRadius, FailureAtRadius: mobilityFailAtR}
	thr := failprob.NewThreshold(pt)

	// Persistent command pairs: sampled once (violating at t=0), used for
	// every time instance and as the traffic matrix.
	g0, err := tr.Snapshot(0, fm)
	if err != nil {
		panic(fmt.Sprintf("experiments: ext2 snapshot: %v", err))
	}
	table0 := shortestpath.NewTable(g0, 0)
	ps, err := pairs.SampleViolating(table0, thr.D, m, c.rng(951))
	if err != nil {
		panic(fmt.Sprintf("experiments: ext2 pairs: %v", err))
	}

	tp, err := desim.NewTraceProvider(tr, fm)
	if err != nil {
		panic(fmt.Sprintf("experiments: ext2 provider: %v", err))
	}
	duration := cfg.StepSeconds * float64(T)
	flows := desim.PeriodicFlows(ps.Pairs(), period)

	fig := &Figure{
		ID:     "Ext 2",
		Title:  fmt.Sprintf("Simulated delivery over a tactical operation (n=%d, m=%d, T=%d, p_t=%.2f)", nodes, m, T, pt),
		XLabel: "k",
		YLabel: "end-to-end delivery ratio",
	}
	for _, k := range ks {
		fig.X = append(fig.X, float64(k))
	}
	deliveryY := make([]float64, 0, len(ks))
	sigmaY := make([]float64, 0, len(ks))
	for _, k := range ks {
		var placed core.Placement
		if k > 0 {
			insts := make([]*core.Instance, T)
			for t := 0; t < T; t++ {
				g, err := tr.Snapshot(t, fm)
				if err != nil {
					panic(fmt.Sprintf("experiments: ext2 snapshot %d: %v", t, err))
				}
				inst, err := core.NewInstance(g, ps, thr, k, &core.Options{AllowTrivial: true})
				if err != nil {
					panic(fmt.Sprintf("experiments: ext2 instance %d: %v", t, err))
				}
				insts[t] = inst
			}
			prob, err := dynamic.NewProblem(insts)
			if err != nil {
				panic(fmt.Sprintf("experiments: ext2 problem: %v", err))
			}
			placed = core.Sandwich(prob).Best
		}
		res, err := desim.Run(desim.Config{
			Topology:        tp,
			Shortcuts:       placed.Edges,
			Flows:           flows,
			DurationSeconds: duration,
			HopSeconds:      hop,
			MaxRetries:      retries,
			Seed:            c.Seed*31 + int64(k),
		})
		if err != nil {
			panic(fmt.Sprintf("experiments: ext2 run: %v", err))
		}
		deliveryY = append(deliveryY, res.DeliveryRatio)
		sigmaY = append(sigmaY, float64(placed.Sigma))
	}
	fig.Series = append(fig.Series,
		Series{Name: "delivery ratio", Y: deliveryY},
		Series{Name: "dynamic σ (Σ_i σ_i)", Y: sigmaY},
	)
	return fig
}
