package experiments

import (
	"fmt"

	"msc/internal/core"
	"msc/internal/failprob"
	"msc/internal/gen/rgg"
	"msc/internal/gen/social"
	"msc/internal/graph"
	"msc/internal/pairs"
	"msc/internal/shortestpath"
	"msc/internal/telemetry"
	"msc/internal/xrand"
)

// Config selects the experiment scale and seed.
type Config struct {
	// Seed drives every random draw; equal seeds reproduce runs exactly.
	Seed int64
	// Quick shrinks instance sizes and iteration counts so the whole
	// suite runs in seconds — used by tests; benchmarks and cmd/mscbench
	// use the paper-scale defaults.
	Quick bool
	// Sink, when non-nil, receives a telemetry RunRecord per solver run an
	// experiment performs (currently the Table I/II grid cells). Results
	// are identical with and without a sink.
	Sink telemetry.Sink
}

func (c Config) rng(stream int64) *xrand.Rand {
	// Independent deterministic stream per use-site.
	return xrand.New(c.Seed*1_000_003 + stream)
}

// Paper-scale workload parameters (§VII-A), with the substitutions recorded
// in DESIGN.md. The failure coefficients are the calibration knobs that
// make the paper's p_t sweeps non-degenerate on our synthetic substrates.
const (
	rggRadius          = 0.18
	rggFailAtRadius    = 0.08
	socialFailAtRadius = 0.45
	mobilityRadius     = 700.0
	mobilityFailAtR    = 0.25
)

// dataset bundles a graph with its distance table so multiple thresholds
// reuse one APSP computation.
type dataset struct {
	name  string
	g     *graph.Graph
	table *shortestpath.Table
}

func (c Config) rggDataset() dataset {
	n := 100
	radius := rggRadius
	if c.Quick {
		// Smaller graphs need a larger radius to stay connected.
		n, radius = 40, 0.27
	}
	g, err := rgg.Generate(rgg.Config{
		N:                n,
		Radius:           radius,
		FailureAtRadius:  rggFailAtRadius,
		RequireConnected: true,
	}, c.rng(1))
	if err != nil {
		panic(fmt.Sprintf("experiments: rgg dataset: %v", err))
	}
	return dataset{name: "RG", g: g, table: shortestpath.NewTable(g, 0)}
}

func (c Config) socialDataset() dataset {
	cfg := social.DefaultConfig()
	cfg.FailureAtRadius = socialFailAtRadius
	if c.Quick {
		cfg.Users = 50
		cfg.Venues = 5
	}
	net, err := social.Generate(cfg, c.rng(2))
	if err != nil {
		panic(fmt.Sprintf("experiments: social dataset: %v", err))
	}
	return dataset{name: "Gowalla", g: net.Graph, table: shortestpath.NewTable(net.Graph, 0)}
}

// instance samples m violating pairs at threshold pt and wraps everything
// as a core instance with budget k.
func (c Config) instance(ds dataset, pt float64, m, k int, stream int64) *core.Instance {
	thr := failprob.NewThreshold(pt)
	ps, err := pairs.SampleViolating(ds.table, thr.D, m, c.rng(stream))
	if err != nil {
		panic(fmt.Sprintf("experiments: sample pairs on %s (p_t=%v, m=%d): %v", ds.name, pt, m, err))
	}
	inst, err := core.NewInstance(ds.g, ps, thr, k, &core.Options{
		AllowTrivial: true, // sweeps include k close to m
		Table:        ds.table,
	})
	if err != nil {
		panic(fmt.Sprintf("experiments: instance on %s: %v", ds.name, err))
	}
	return inst
}
