package experiments

import (
	"fmt"
	"time"

	"msc/internal/core"
	"msc/internal/dynamic"
	"msc/internal/failprob"
	"msc/internal/graph"
	"msc/internal/mobility"
	"msc/internal/netbuild"
	"msc/internal/pairs"
	"msc/internal/shortestpath"
	"msc/internal/telemetry"
	"msc/internal/viz"
	"msc/internal/xrand"
)

// The parameter grids below mirror §VII; Quick mode shrinks them so the
// full suite stays test-sized.

// mustRandom runs the random-placement baseline on an experiment-built
// instance, whose parameters are valid by construction; an InputError here
// is a bug in the experiment code itself.
func mustRandom(p core.Problem, trials int, rng *xrand.Rand, opts ...core.Option) core.Placement {
	pl, err := core.RandomPlacement(p, trials, rng, opts...)
	if err != nil {
		panic(fmt.Sprintf("experiments: random baseline: %v", err))
	}
	return pl
}

func (c Config) table1Params() (ks []int, pts []float64, m int) {
	if c.Quick {
		return []int{2, 4}, []float64{0.08, 0.14}, 8
	}
	return []int{2, 4, 6, 8, 10}, []float64{0.04, 0.08, 0.11, 0.14, 0.18}, 17
}

func (c Config) table2Params() (ks []int, pts []float64, m int) {
	if c.Quick {
		return []int{2, 4}, []float64{0.23, 0.31}, 8
	}
	return []int{2, 4, 6, 8, 10}, []float64{0.23, 0.27, 0.31, 0.35}, 63
}

// ratioTable computes σ(F_σ)/ν(F_σ) across the (k, p_t) grid on one
// dataset — the paper's empirical approximation-ratio diagnostics.
//
// It restricts shortcut endpoints to relay (non-pair) nodes. The published
// Tables I–II require that regime: under the unrestricted universe,
// greedy-σ gains at least one pair per shortcut by directly connecting a
// violating pair, so σ(F_σ) ≥ k and the ratio is forced upward toward 1 as
// k approaches m — whereas the paper's ratios decrease in k with σ(F_σ)
// stalling at small constants (see EXPERIMENTS.md for the decoding).
func (c Config) ratioTable(id, title string, ds dataset, ks []int, pts []float64, m int, stream int64) *Table {
	table := &Table{
		ID:       id,
		Title:    title,
		RowLabel: "k",
		ColLabel: "p_t",
	}
	for _, pt := range pts {
		table.Cols = append(table.Cols, fmt.Sprintf("%.2f", pt))
	}
	for _, k := range ks {
		row := TableRow{Label: fmt.Sprintf("%d", k)}
		for pi, pt := range pts {
			thr := failprob.NewThreshold(pt)
			ps, err := pairs.SampleViolating(ds.table, thr.D, m, c.rng(stream+int64(pi)))
			if err != nil {
				panic(fmt.Sprintf("experiments: %s pairs (p_t=%v): %v", id, pt, err))
			}
			inst, err := core.NewInstance(ds.g, ps, thr, k, &core.Options{
				AllowTrivial:         true,
				Table:                ds.table,
				ExcludePairEndpoints: true,
			})
			if err != nil {
				panic(fmt.Sprintf("experiments: %s instance: %v", id, err))
			}
			var before telemetry.CounterSnapshot
			var start time.Time
			if c.Sink != nil {
				before = telemetry.Global().Snapshot()
				start = time.Now()
			}
			fSigma := core.GreedySigma(inst)
			nu := inst.Nu(fSigma.Selection)
			ratio := 1.0
			if nu > 0 {
				ratio = float64(fSigma.Sigma) / nu
			}
			if c.Sink != nil {
				// Instances inherit the process-default survivability (the
				// mscbench -survive flag); record the resolved mode and, when
				// survivable, the declared worst-case σ⁻ (−1 otherwise).
				sigmaWorst := -1
				if inst.Survive() != core.SurviveNone {
					sigmaWorst = inst.SigmaWorst(fSigma.Selection)
				}
				c.Sink.Emit(telemetry.RunRecord{
					Name:       fmt.Sprintf("%s k=%d pt=%.2f", id, k, pt),
					Algorithm:  "greedy_sigma",
					Seed:       c.Seed,
					Survive:    string(inst.Survive()),
					Quick:      c.Quick,
					N:          inst.N(),
					Pairs:      ps.Len(),
					Candidates: inst.NumCandidates(),
					K:          k,
					Pt:         pt,
					Sigma:      fSigma.Sigma,
					MaxSigma:   inst.MaxSigma(),
					SigmaWorst: sigmaWorst,
					WallMS:     float64(time.Since(start).Nanoseconds()) / 1e6,
					Counters:   telemetry.Global().Snapshot().Sub(before),
				})
			}
			row.Cells = append(row.Cells, ratio)
		}
		table.Rows = append(table.Rows, row)
	}
	return table
}

// Table1 regenerates Table I: the approximation ratio σ(F_σ)/ν(F_σ) on the
// Random Geometric graph (n=100, m=17).
func (c Config) Table1() *Table {
	ks, pts, m := c.table1Params()
	return c.ratioTable("Table I", "σ(F_σ)/ν(F_σ) for Random Geometric graph",
		c.rggDataset(), ks, pts, m, 100)
}

// Table2 regenerates Table II: the same ratio on the Gowalla-style
// location-based social network (n≈134, m=63).
func (c Config) Table2() *Table {
	ks, pts, m := c.table2Params()
	return c.ratioTable("Table II", "σ(F_σ)/ν(F_σ) for Gowalla dataset",
		c.socialDataset(), ks, pts, m, 200)
}

// Fig1Result carries the Fig. 1 reproduction: the shortcut placements of
// the approximation algorithm and the random baseline on the same
// geometric instance, ready to render.
type Fig1Result struct {
	AA                   core.Placement
	Random               core.Placement
	SceneAA, SceneRandom viz.Scene
	// K and Pt echo the instance parameters.
	K  int
	Pt float64
}

// Fig1 regenerates Fig. 1: the placement picture of AA vs random selection
// on a Random Geometric graph.
func (c Config) Fig1() Fig1Result {
	n, m, k, pt, trials := 60, 14, 4, 0.11, 500
	if c.Quick {
		n, m, k, trials = 30, 8, 3, 50
	}
	ds := c.smallRGG(n)
	thr := failprob.NewThreshold(pt)
	ps, err := pairs.SampleViolating(ds.table, thr.D, m, c.rng(300))
	if err != nil {
		panic(fmt.Sprintf("experiments: fig1 pairs: %v", err))
	}
	inst, err := core.NewInstance(ds.g, ps, thr, k, &core.Options{AllowTrivial: true, Table: ds.table})
	if err != nil {
		panic(fmt.Sprintf("experiments: fig1 instance: %v", err))
	}
	aa := core.Sandwich(inst).Best
	rnd := mustRandom(inst, trials, c.rng(301))
	return Fig1Result{
		AA:     aa,
		Random: rnd,
		SceneAA: viz.Scene{
			Graph: ds.g, Pairs: ps, Shortcuts: aa.Edges,
			Title: fmt.Sprintf("Approximation Algorithm: %d/%d pairs maintained", aa.Sigma, m),
		},
		SceneRandom: viz.Scene{
			Graph: ds.g, Pairs: ps, Shortcuts: rnd.Edges,
			Title: fmt.Sprintf("Random Selection (best of %d): %d/%d pairs maintained", trials, rnd.Sigma, m),
		},
		K:  k,
		Pt: pt,
	}
}

func (c Config) smallRGG(n int) dataset {
	full := c.rggDataset()
	if full.g.N() <= n {
		return full
	}
	keep := make([]graph.NodeID, n)
	for i := range keep {
		keep[i] = graph.NodeID(i)
	}
	sub, _ := full.g.InducedSubgraph(keep)
	comp := sub.LargestComponent()
	sub2, _ := sub.InducedSubgraph(comp)
	return dataset{name: "RG-small", g: sub2, table: shortestpath.NewTable(sub2, 0)}
}

// Fig2 regenerates Fig. 2: maintained connections of AA vs the random
// baseline across k, for several p_t, on both datasets. The returned
// figures are [RG, Gowalla].
func (c Config) Fig2() []*Figure {
	ks := []int{2, 4, 6, 8, 10}
	trials := 500
	mRG, mGW := 80, 76
	ptsRG := []float64{0.08, 0.14}
	ptsGW := []float64{0.23, 0.31}
	if c.Quick {
		ks = []int{2, 4}
		trials = 30
		mRG, mGW = 10, 10
		ptsRG = ptsRG[:1]
		ptsGW = ptsGW[:1]
	}
	figs := make([]*Figure, 0, 2)
	for di, ds := range []dataset{c.rggDataset(), c.socialDataset()} {
		m := mRG
		pts := ptsRG
		if di == 1 {
			m = mGW
			pts = ptsGW
		}
		fig := &Figure{
			ID:     fmt.Sprintf("Fig 2(%c)", 'a'+di),
			Title:  fmt.Sprintf("AA vs Random Selection on %s (m=%d)", ds.name, m),
			XLabel: "k",
			YLabel: "maintained social connections (σ)",
		}
		for _, k := range ks {
			fig.X = append(fig.X, float64(k))
		}
		for pi, pt := range pts {
			aaY := make([]float64, 0, len(ks))
			rndY := make([]float64, 0, len(ks))
			thr := failprob.NewThreshold(pt)
			ps, err := pairs.SampleViolating(ds.table, thr.D, m, c.rng(400+int64(10*di+pi)))
			if err != nil {
				panic(fmt.Sprintf("experiments: fig2 pairs: %v", err))
			}
			for _, k := range ks {
				inst, err := core.NewInstance(ds.g, ps, thr, k, &core.Options{AllowTrivial: true, Table: ds.table})
				if err != nil {
					panic(fmt.Sprintf("experiments: fig2 instance: %v", err))
				}
				aaY = append(aaY, float64(core.Sandwich(inst).Best.Sigma))
				rndY = append(rndY, float64(mustRandom(inst, trials, c.rng(450+int64(10*di+pi))).Sigma))
			}
			fig.Series = append(fig.Series,
				Series{Name: fmt.Sprintf("AA p_t=%.2f", pt), Y: aaY},
				Series{Name: fmt.Sprintf("Random p_t=%.2f", pt), Y: rndY},
			)
		}
		figs = append(figs, fig)
	}
	return figs
}

// Fig3 regenerates Fig. 3: AA vs EA vs AEA across k for several p_t, on
// both datasets (r=500, l=10, δ=0.05 as in §VII-D).
func (c Config) Fig3() []*Figure {
	ks := []int{2, 4, 6, 8, 10}
	iters := 500
	mRG, mGW := 80, 76
	ptsRG := []float64{0.08, 0.14}
	ptsGW := []float64{0.23, 0.31}
	if c.Quick {
		ks = []int{2, 4}
		iters = 60
		mRG, mGW = 10, 10
		ptsRG = ptsRG[:1]
		ptsGW = ptsGW[:1]
	}
	figs := make([]*Figure, 0, 2)
	for di, ds := range []dataset{c.rggDataset(), c.socialDataset()} {
		m := mRG
		pts := ptsRG
		if di == 1 {
			m = mGW
			pts = ptsGW
		}
		fig := &Figure{
			ID:     fmt.Sprintf("Fig 3(%c)", 'a'+di),
			Title:  fmt.Sprintf("Proposed algorithms on %s (m=%d, r=%d)", ds.name, m, iters),
			XLabel: "k",
			YLabel: "maintained social connections (σ)",
		}
		for _, k := range ks {
			fig.X = append(fig.X, float64(k))
		}
		for pi, pt := range pts {
			thr := failprob.NewThreshold(pt)
			ps, err := pairs.SampleViolating(ds.table, thr.D, m, c.rng(500+int64(10*di+pi)))
			if err != nil {
				panic(fmt.Sprintf("experiments: fig3 pairs: %v", err))
			}
			aaY := make([]float64, 0, len(ks))
			eaY := make([]float64, 0, len(ks))
			aeaY := make([]float64, 0, len(ks))
			for _, k := range ks {
				inst, err := core.NewInstance(ds.g, ps, thr, k, &core.Options{AllowTrivial: true, Table: ds.table})
				if err != nil {
					panic(fmt.Sprintf("experiments: fig3 instance: %v", err))
				}
				aaY = append(aaY, float64(core.Sandwich(inst).Best.Sigma))
				ea := core.EA(inst, core.EAOptions{Iterations: iters}, c.rng(550+int64(10*di+pi)))
				eaY = append(eaY, float64(ea.Best.Sigma))
				aea := core.AEA(inst, core.AEAOptions{Iterations: iters, PopSize: 10, Delta: 0.05},
					c.rng(560+int64(10*di+pi)))
				aeaY = append(aeaY, float64(aea.Best.Sigma))
			}
			fig.Series = append(fig.Series,
				Series{Name: fmt.Sprintf("AA p_t=%.2f", pt), Y: aaY},
				Series{Name: fmt.Sprintf("EA p_t=%.2f", pt), Y: eaY},
				Series{Name: fmt.Sprintf("AEA p_t=%.2f", pt), Y: aeaY},
			)
		}
		figs = append(figs, fig)
	}
	return figs
}

// Fig4 regenerates Fig. 4: maintained connections of EA and AEA as a
// function of the iteration count r (AA shown as the flat reference), for
// two budgets, on both datasets.
func (c Config) Fig4() []*Figure {
	ksets := []int{4, 8}
	rMax := 500
	checkEvery := 50
	mRG, mGW := 80, 76
	ptRG, ptGW := 0.14, 0.23
	if c.Quick {
		ksets = []int{3}
		rMax, checkEvery = 60, 20
		mRG, mGW = 10, 10
	}
	figs := make([]*Figure, 0, 2)
	for di, ds := range []dataset{c.rggDataset(), c.socialDataset()} {
		m, pt := mRG, ptRG
		if di == 1 {
			m, pt = mGW, ptGW
		}
		fig := &Figure{
			ID:     fmt.Sprintf("Fig 4(%c)", 'a'+di),
			Title:  fmt.Sprintf("Convergence on %s (m=%d, p_t=%.2f)", ds.name, m, pt),
			XLabel: "r",
			YLabel: "maintained social connections (σ)",
		}
		for r := checkEvery; r <= rMax; r += checkEvery {
			fig.X = append(fig.X, float64(r))
		}
		thr := failprob.NewThreshold(pt)
		ps, err := pairs.SampleViolating(ds.table, thr.D, m, c.rng(600+int64(di)))
		if err != nil {
			panic(fmt.Sprintf("experiments: fig4 pairs: %v", err))
		}
		for _, k := range ksets {
			inst, err := core.NewInstance(ds.g, ps, thr, k, &core.Options{AllowTrivial: true, Table: ds.table})
			if err != nil {
				panic(fmt.Sprintf("experiments: fig4 instance: %v", err))
			}
			aa := core.Sandwich(inst).Best
			ea := core.EA(inst, core.EAOptions{Iterations: rMax, RecordTrace: true},
				c.rng(650+int64(10*di+k)))
			aea := core.AEA(inst, core.AEAOptions{Iterations: rMax, PopSize: 10, Delta: 0.05, RecordTrace: true},
				c.rng(660+int64(10*di+k)))
			aaY := make([]float64, 0, len(fig.X))
			eaY := make([]float64, 0, len(fig.X))
			aeaY := make([]float64, 0, len(fig.X))
			for r := checkEvery; r <= rMax; r += checkEvery {
				aaY = append(aaY, float64(aa.Sigma))
				eaY = append(eaY, float64(ea.Trace[r-1]))
				aeaY = append(aeaY, float64(aea.Trace[r-1]))
			}
			fig.Series = append(fig.Series,
				Series{Name: fmt.Sprintf("AA k=%d", k), Y: aaY},
				Series{Name: fmt.Sprintf("EA k=%d", k), Y: eaY},
				Series{Name: fmt.Sprintf("AEA k=%d", k), Y: aeaY},
			)
		}
		figs = append(figs, fig)
	}
	return figs
}

// dynSnapshots carries a mobility trace's topology series with distance
// tables and per-instance pair sets, so budget sweeps reuse them.
type dynSnapshots struct {
	graphs []*graph.Graph
	tables []*shortestpath.Table
	psets  []*pairs.Set
	thr    failprob.Threshold
}

func (c Config) dynSnapshotsAt(pt float64, nodes, m, T int, stream int64) dynSnapshots {
	cfg := mobility.DefaultConfig()
	cfg.Nodes = nodes
	cfg.Steps = T
	if c.Quick {
		cfg.Nodes = 24
		cfg.Groups = 4
	}
	tr, err := mobility.Generate(cfg, c.rng(stream))
	if err != nil {
		panic(fmt.Sprintf("experiments: mobility trace: %v", err))
	}
	fm := netbuild.FailureModel{Radius: mobilityRadius, FailureAtRadius: mobilityFailAtR}
	thr := failprob.NewThreshold(pt)
	out := dynSnapshots{thr: thr}
	prng := c.rng(stream + 1)
	for t := 0; t < tr.T(); t++ {
		g, err := tr.Snapshot(t, fm)
		if err != nil {
			panic(fmt.Sprintf("experiments: snapshot %d: %v", t, err))
		}
		table := shortestpath.NewTable(g, 0)
		ps, err := pairs.SampleViolating(table, thr.D, m, prng)
		if err != nil {
			panic(fmt.Sprintf("experiments: dynamic pairs t=%d: %v", t, err))
		}
		out.graphs = append(out.graphs, g)
		out.tables = append(out.tables, table)
		out.psets = append(out.psets, ps)
	}
	return out
}

// problem builds the dynamic MSC problem over the first T instances with
// budget k.
func (ds dynSnapshots) problem(k, T int) *dynamic.Problem {
	insts := make([]*core.Instance, T)
	for t := 0; t < T; t++ {
		inst, err := core.NewInstance(ds.graphs[t], ds.psets[t], ds.thr, k,
			&core.Options{AllowTrivial: true, Table: ds.tables[t]})
		if err != nil {
			panic(fmt.Sprintf("experiments: dynamic instance t=%d: %v", t, err))
		}
		insts[t] = inst
	}
	prob, err := dynamic.NewProblem(insts)
	if err != nil {
		panic(fmt.Sprintf("experiments: dynamic problem: %v", err))
	}
	return prob
}

// Fig5a regenerates Fig. 5(a): dynamic networks, total maintained
// connections across k for several p_t (n=50, m=30, T=30).
func (c Config) Fig5a() *Figure {
	ks := []int{4, 8, 12, 16, 20}
	pts := []float64{0.10, 0.12}
	nodes, m, T, iters := 50, 30, 30, 500
	if c.Quick {
		ks = []int{2, 4}
		pts = pts[:1]
		nodes, m, T, iters = 24, 6, 4, 40
	}
	fig := &Figure{
		ID:     "Fig 5(a)",
		Title:  fmt.Sprintf("Dynamic networks: maintained connections vs k (n=%d, m=%d, T=%d)", nodes, m, T),
		XLabel: "k",
		YLabel: "total maintained social connections (Σ_i σ_i)",
	}
	for _, k := range ks {
		fig.X = append(fig.X, float64(k))
	}
	for pi, pt := range pts {
		snaps := c.dynSnapshotsAt(pt, nodes, m, T, 700+int64(pi))
		aaY := make([]float64, 0, len(ks))
		eaY := make([]float64, 0, len(ks))
		aeaY := make([]float64, 0, len(ks))
		for _, k := range ks {
			prob := snaps.problem(k, T)
			aaY = append(aaY, float64(core.Sandwich(prob).Best.Sigma))
			ea := core.EA(prob, core.EAOptions{Iterations: iters}, c.rng(750+int64(pi)))
			eaY = append(eaY, float64(ea.Best.Sigma))
			aea := core.AEA(prob, core.AEAOptions{Iterations: iters, PopSize: 10, Delta: 0.05},
				c.rng(760+int64(pi)))
			aeaY = append(aeaY, float64(aea.Best.Sigma))
		}
		fig.Series = append(fig.Series,
			Series{Name: fmt.Sprintf("AA p_t=%.2f", pt), Y: aaY},
			Series{Name: fmt.Sprintf("EA p_t=%.2f", pt), Y: eaY},
			Series{Name: fmt.Sprintf("AEA p_t=%.2f", pt), Y: aeaY},
		)
	}
	return fig
}

// Fig5b regenerates Fig. 5(b): dynamic networks, total maintained
// connections as a function of the number of time instances T, for several
// budgets (p_t=0.12).
func (c Config) Fig5b() *Figure {
	ks := []int{3, 5, 10}
	ts := []int{5, 10, 15, 20, 25, 30}
	nodes, m, pt := 50, 30, 0.12
	if c.Quick {
		ks = []int{2, 4}
		ts = []int{2, 4}
		nodes, m = 24, 6
	}
	maxT := ts[len(ts)-1]
	fig := &Figure{
		ID:     "Fig 5(b)",
		Title:  fmt.Sprintf("Dynamic networks: maintained connections vs T (n=%d, m=%d, p_t=%.2f)", nodes, m, pt),
		XLabel: "T",
		YLabel: "total maintained social connections (Σ_i σ_i)",
	}
	for _, t := range ts {
		fig.X = append(fig.X, float64(t))
	}
	snaps := c.dynSnapshotsAt(pt, nodes, m, maxT, 800)
	for _, k := range ks {
		y := make([]float64, 0, len(ts))
		for _, T := range ts {
			prob := snaps.problem(k, T)
			y = append(y, float64(core.Sandwich(prob).Best.Sigma))
		}
		fig.Series = append(fig.Series, Series{Name: fmt.Sprintf("AA k=%d", k), Y: y})
	}
	return fig
}
