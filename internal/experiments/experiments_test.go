package experiments

import (
	"strings"
	"testing"
)

// Quick-mode runs of every experiment: they must complete, produce
// well-formed reports, and respect the structural relationships the paper
// reports (AA ≥ Random, ratio within (0, 1], monotone-in-k tendencies are
// asserted loosely since quick instances are tiny).

func quickCfg() Config { return Config{Seed: 1, Quick: true} }

func TestTable1Quick(t *testing.T) {
	table := quickCfg().Table1()
	if len(table.Rows) == 0 || len(table.Cols) == 0 {
		t.Fatal("empty table")
	}
	for _, row := range table.Rows {
		if len(row.Cells) != len(table.Cols) {
			t.Fatalf("row %s has %d cells, want %d", row.Label, len(row.Cells), len(table.Cols))
		}
		for _, c := range row.Cells {
			if c < 0 || c > 1.000001 {
				t.Fatalf("ratio %v outside [0, 1]", c)
			}
		}
	}
	text := table.Format()
	if !strings.Contains(text, "Table I") {
		t.Errorf("format missing title: %q", text)
	}
	if csv := table.CSV(); !strings.HasPrefix(csv, "k,") {
		t.Errorf("csv missing header: %q", csv)
	}
}

func TestTable2Quick(t *testing.T) {
	table := quickCfg().Table2()
	if len(table.Rows) == 0 {
		t.Fatal("empty table")
	}
	for _, row := range table.Rows {
		for _, c := range row.Cells {
			if c < 0 || c > 1.000001 {
				t.Fatalf("ratio %v outside [0, 1]", c)
			}
		}
	}
}

func TestFig1Quick(t *testing.T) {
	res := quickCfg().Fig1()
	if res.AA.Sigma < res.Random.Sigma {
		t.Errorf("AA σ=%d below random σ=%d", res.AA.Sigma, res.Random.Sigma)
	}
	if res.SceneAA.Graph == nil || res.SceneRandom.Graph == nil {
		t.Fatal("scenes missing graphs")
	}
	if len(res.SceneAA.Shortcuts) != len(res.AA.Edges) {
		t.Fatal("scene shortcuts out of sync")
	}
}

func TestFig2Quick(t *testing.T) {
	figs := quickCfg().Fig2()
	if len(figs) != 2 {
		t.Fatalf("want 2 figures, got %d", len(figs))
	}
	for _, fig := range figs {
		assertWellFormed(t, fig)
		// AA should never lose to Random at the same (p_t, k).
		for si := 0; si+1 < len(fig.Series); si += 2 {
			aa, rnd := fig.Series[si], fig.Series[si+1]
			for i := range aa.Y {
				if aa.Y[i] < rnd.Y[i] {
					t.Errorf("%s: AA %v < Random %v at x=%v", fig.ID, aa.Y[i], rnd.Y[i], fig.X[i])
				}
			}
		}
	}
}

func TestFig3Quick(t *testing.T) {
	figs := quickCfg().Fig3()
	for _, fig := range figs {
		assertWellFormed(t, fig)
	}
}

func TestFig4Quick(t *testing.T) {
	figs := quickCfg().Fig4()
	for _, fig := range figs {
		assertWellFormed(t, fig)
		// Convergence traces are monotone in r.
		for _, s := range fig.Series {
			if !strings.HasPrefix(s.Name, "EA") && !strings.HasPrefix(s.Name, "AEA") {
				continue
			}
			for i := 1; i < len(s.Y); i++ {
				if s.Y[i] < s.Y[i-1] {
					t.Errorf("%s series %s not monotone at %d", fig.ID, s.Name, i)
				}
			}
		}
	}
}

func TestFig5aQuick(t *testing.T) {
	fig := quickCfg().Fig5a()
	assertWellFormed(t, fig)
	// Total maintained connections grow (weakly) with k for AA.
	for _, s := range fig.Series {
		if !strings.HasPrefix(s.Name, "AA") {
			continue
		}
		for i := 1; i < len(s.Y); i++ {
			if s.Y[i]+1e-9 < s.Y[i-1] {
				t.Errorf("AA series %s decreases with k at %d: %v", s.Name, i, s.Y)
			}
		}
	}
}

func TestFig5bQuick(t *testing.T) {
	fig := quickCfg().Fig5b()
	assertWellFormed(t, fig)
	// Totals grow with T.
	for _, s := range fig.Series {
		for i := 1; i < len(s.Y); i++ {
			if s.Y[i]+1e-9 < s.Y[i-1] {
				t.Errorf("series %s decreases with T: %v", s.Name, s.Y)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := quickCfg().Table1().CSV()
	b := quickCfg().Table1().CSV()
	if a != b {
		t.Fatal("Table1 not deterministic for equal seeds")
	}
}

func assertWellFormed(t *testing.T, fig *Figure) {
	t.Helper()
	if len(fig.X) == 0 || len(fig.Series) == 0 {
		t.Fatalf("%s: empty figure", fig.ID)
	}
	for _, s := range fig.Series {
		if len(s.Y) != len(fig.X) {
			t.Fatalf("%s: series %s has %d points, want %d", fig.ID, s.Name, len(s.Y), len(fig.X))
		}
	}
	if text := fig.Format(); !strings.Contains(text, fig.ID) {
		t.Fatalf("%s: format missing id", fig.ID)
	}
	if csv := fig.CSV(); !strings.Contains(csv, ",") {
		t.Fatalf("%s: csv malformed", fig.ID)
	}
}

func TestExt1Quick(t *testing.T) {
	figs := quickCfg().Ext1()
	if len(figs) != 2 {
		t.Fatalf("want 2 figures, got %d", len(figs))
	}
	for _, fig := range figs {
		assertWellFormed(t, fig)
		// The MSC-aware algorithm must dominate every all-pairs baseline:
		// that is the motivating claim of §I the experiment quantifies.
		aa := fig.Series[0]
		for _, other := range fig.Series[1:] {
			for i := range aa.Y {
				if aa.Y[i] < other.Y[i] {
					t.Errorf("%s: AA %v < %s %v at k=%v",
						fig.ID, aa.Y[i], other.Name, other.Y[i], fig.X[i])
				}
			}
		}
	}
}

func TestExt2Quick(t *testing.T) {
	fig := quickCfg().Ext2()
	assertWellFormed(t, fig)
	delivery := fig.Series[0].Y
	// Delivery with a budget must beat delivery with none.
	if delivery[len(delivery)-1] <= delivery[0] {
		t.Fatalf("placement did not improve delivery: %v", delivery)
	}
	for _, d := range delivery {
		if d < 0 || d > 1 {
			t.Fatalf("delivery ratio %v out of range", d)
		}
	}
}

func TestExt3Quick(t *testing.T) {
	fig := quickCfg().Ext3()
	assertWellFormed(t, fig)
	oracle := fig.Series[0].Y
	// The oracle plans on the graded topologies, so no planner beats it.
	for si := 1; si < len(fig.Series); si++ {
		for i := range oracle {
			if fig.Series[si].Y[i] > oracle[i] {
				t.Errorf("%s beats the oracle at k=%v: %v > %v",
					fig.Series[si].Name, fig.X[i], fig.Series[si].Y[i], oracle[i])
			}
		}
	}
}

func TestExt4Quick(t *testing.T) {
	fig := quickCfg().Ext4()
	assertWellFormed(t, fig)
	aware, blind := fig.Series[0].Y, fig.Series[1].Y
	for i := range aware {
		// Weight-aware AA optimizes the graded objective directly; it
		// must not lose to the weight-blind placement under it.
		if aware[i] < blind[i] {
			t.Errorf("aware %v < blind %v at k=%v", aware[i], blind[i], fig.X[i])
		}
	}
}
