package experiments

import (
	"strings"
	"testing"
)

func TestTableFormatAlignment(t *testing.T) {
	table := &Table{
		ID:       "Test",
		Title:    "alignment",
		RowLabel: "k",
		ColLabel: "p",
		Cols:     []string{"0.1", "0.2"},
		Rows: []TableRow{
			{Label: "2", Cells: []float64{0.5, 0.25}},
			{Label: "10", Cells: []float64{1, 0}},
		},
	}
	out := table.Format()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title + header + separator + 2 rows.
	if len(lines) != 5 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "k\\p") {
		t.Fatalf("header missing row/col labels: %q", lines[1])
	}
	if !strings.Contains(out, "0.5000") || !strings.Contains(out, "0.2500") {
		t.Fatalf("cells not rendered:\n%s", out)
	}
}

func TestTableCSV(t *testing.T) {
	table := &Table{
		RowLabel: "k",
		Cols:     []string{"a", "b"},
		Rows:     []TableRow{{Label: "1", Cells: []float64{0.125, 2}}},
	}
	csv := table.CSV()
	want := "k,a,b\n1,0.125,2\n"
	if csv != want {
		t.Fatalf("csv = %q, want %q", csv, want)
	}
}

func TestFigureFormatRaggedSeries(t *testing.T) {
	fig := &Figure{
		ID:     "F",
		Title:  "ragged",
		XLabel: "x",
		YLabel: "y",
		X:      []float64{1, 2, 3},
		Series: []Series{
			{Name: "full", Y: []float64{1, 2, 3}},
			{Name: "short", Y: []float64{9}},
		},
	}
	out := fig.Format()
	// Missing points render as "-" rather than panicking.
	if !strings.Contains(out, "-") {
		t.Fatalf("ragged series not padded:\n%s", out)
	}
	csv := fig.CSV()
	if !strings.Contains(csv, "x,full,short") {
		t.Fatalf("csv header wrong: %q", csv)
	}
	// Second row of 'short' is empty in CSV.
	if !strings.Contains(csv, "2,2,\n") {
		t.Fatalf("csv padding wrong: %q", csv)
	}
}

func TestConfigStreamsIndependent(t *testing.T) {
	c := Config{Seed: 5}
	a := c.rng(1).Int63()
	b := c.rng(2).Int63()
	if a == b {
		t.Fatal("streams collide")
	}
	// Same stream reproduces.
	if c.rng(1).Int63() != a {
		t.Fatal("stream not reproducible")
	}
	// Different seeds diverge.
	if (Config{Seed: 6}).rng(1).Int63() == a {
		t.Fatal("seeds collide")
	}
}
