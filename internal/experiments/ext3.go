package experiments

import (
	"fmt"

	"msc/internal/core"
	"msc/internal/dynamic"
	"msc/internal/failprob"
	"msc/internal/graph"
	"msc/internal/mobility"
	"msc/internal/netbuild"
	"msc/internal/pairs"
	"msc/internal/predict"
	"msc/internal/shortestpath"
)

// Ext3 probes the assumption §VI leans on: that the dynamic topology
// series is "given by prediction techniques" whose accuracy is out of
// scope. We make the assumption concrete — observe a prefix of a tactical
// trace, dead-reckon the rest (internal/predict), compute the placement on
// the PREDICTED topologies, then grade it against what ACTUALLY happened —
// and compare three planners across the budget sweep:
//
//   - oracle:    placement computed on the actual future (upper bound);
//   - predicted: placement computed on the dead-reckoned future;
//   - frozen:    placement computed assuming nobody moves after the
//     observation window (the strawman predictor);
//   - random:    budget-matched random placement.
//
// The gap between predicted and oracle is the price of prediction error.
func (c Config) Ext3() *Figure {
	nodes, m := 50, 20
	observed, horizon := 10, 20
	ks := []int{2, 4, 6, 8, 10}
	pt := 0.12
	trials := 300
	if c.Quick {
		nodes, m = 24, 6
		observed, horizon = 3, 3
		ks = []int{2, 4}
		trials = 30
	}
	cfg := mobility.DefaultConfig()
	cfg.Nodes = nodes
	cfg.Steps = observed + horizon
	if c.Quick {
		cfg.Groups = 4
	}
	tr, err := mobility.Generate(cfg, c.rng(970))
	if err != nil {
		panic(fmt.Sprintf("experiments: ext3 trace: %v", err))
	}
	fm := netbuild.FailureModel{Radius: mobilityRadius, FailureAtRadius: mobilityFailAtR}
	thr := failprob.NewThreshold(pt)

	// Persistent command pairs sampled on the last observed snapshot.
	gObs, err := tr.Snapshot(observed-1, fm)
	if err != nil {
		panic(fmt.Sprintf("experiments: ext3 snapshot: %v", err))
	}
	ps, err := pairs.SampleViolating(shortestpath.NewTable(gObs, 0), thr.D, m, c.rng(971))
	if err != nil {
		panic(fmt.Sprintf("experiments: ext3 pairs: %v", err))
	}

	// The actual future topologies (ground truth for grading).
	actualGraphs := snapshotRange(tr, observed, horizon, fm)

	// The predicted future.
	predTrace, err := predict.DeadReckon(tr, observed, horizon)
	if err != nil {
		panic(fmt.Sprintf("experiments: ext3 predict: %v", err))
	}
	predGraphs := snapshotRange(predTrace, 0, horizon, fm)

	// The frozen strawman: the last observed topology repeated.
	frozenGraphs := make([]*gsnap, horizon)
	frozenTable := shortestpath.NewTable(gObs, 0)
	for h := range frozenGraphs {
		frozenGraphs[h] = &gsnap{g: gObs, table: frozenTable}
	}

	fig := &Figure{
		ID:     "Ext 3",
		Title:  fmt.Sprintf("Placement under predicted topologies (n=%d, m=%d, observe %d, plan %d ahead)", nodes, m, observed, horizon),
		XLabel: "k",
		YLabel: "actual total maintained connections (Σ_i σ_i)",
	}
	for _, k := range ks {
		fig.X = append(fig.X, float64(k))
	}
	oracleY := make([]float64, 0, len(ks))
	predY := make([]float64, 0, len(ks))
	frozenY := make([]float64, 0, len(ks))
	rndY := make([]float64, 0, len(ks))
	for _, k := range ks {
		actualProb := buildDyn(actualGraphs, ps, thr, k)
		oracle := core.Sandwich(actualProb).Best
		oracleY = append(oracleY, float64(oracle.Sigma))

		predProb := buildDyn(predGraphs, ps, thr, k)
		predicted := core.Sandwich(predProb).Best
		predY = append(predY, float64(actualProb.Sigma(predicted.Selection)))

		frozenProb := buildDyn(frozenGraphs, ps, thr, k)
		frozen := core.Sandwich(frozenProb).Best
		frozenY = append(frozenY, float64(actualProb.Sigma(frozen.Selection)))

		rnd := mustRandom(actualProb, trials, c.rng(975+int64(k)))
		rndY = append(rndY, float64(rnd.Sigma))
	}
	fig.Series = append(fig.Series,
		Series{Name: "oracle (actual future)", Y: oracleY},
		Series{Name: "dead-reckoned forecast", Y: predY},
		Series{Name: "frozen topology", Y: frozenY},
		Series{Name: "random", Y: rndY},
	)
	return fig
}

// gsnap pairs a snapshot graph with its distance table.
type gsnap struct {
	g     *graph.Graph
	table *shortestpath.Table
}

func snapshotRange(tr *mobility.Trace, from, count int, fm netbuild.FailureModel) []*gsnap {
	out := make([]*gsnap, count)
	for h := 0; h < count; h++ {
		g, err := tr.Snapshot(from+h, fm)
		if err != nil {
			panic(fmt.Sprintf("experiments: snapshot %d: %v", from+h, err))
		}
		out[h] = &gsnap{g: g, table: shortestpath.NewTable(g, 0)}
	}
	return out
}

func buildDyn(snaps []*gsnap, ps *pairs.Set, thr failprob.Threshold, k int) *dynamic.Problem {
	insts := make([]*core.Instance, len(snaps))
	for i, s := range snaps {
		inst, err := core.NewInstance(s.g, ps, thr, k, &core.Options{AllowTrivial: true, Table: s.table})
		if err != nil {
			panic(fmt.Sprintf("experiments: ext3 instance %d: %v", i, err))
		}
		insts[i] = inst
	}
	prob, err := dynamic.NewProblem(insts)
	if err != nil {
		panic(fmt.Sprintf("experiments: ext3 problem: %v", err))
	}
	return prob
}
