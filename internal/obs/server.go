package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"msc/internal/telemetry"
)

// ServerOptions configure an ops server. Only Registry is required.
type ServerOptions struct {
	// Registry is the metric set /metrics and /debug/vars export.
	Registry *Registry
	// Events, when non-nil, backs the /events Server-Sent-Events stream:
	// each subscriber receives the live telemetry events the fanout emits.
	Events *telemetry.FanoutSink
	// Recorder, when non-nil, backs /debug/flightrecorder: a GET dumps the
	// buffered events as schema-valid JSONL.
	Recorder *telemetry.RingSink
	// Healthz, when non-nil, is consulted by /healthz; a non-nil error
	// turns the probe into a 503 carrying the error text. Nil means always
	// healthy.
	Healthz func() error
	// EventBuffer is the per-subscriber event buffer for /events
	// (0 = default 256). A subscriber that falls behind loses events
	// rather than stalling the solver.
	EventBuffer int
}

// Server is a running ops HTTP server. It serves until Close.
type Server struct {
	opts ServerOptions
	ln   net.Listener
	srv  *http.Server
	done chan struct{}
}

// expvarOnce guards the process-global expvar publication: expvar.Publish
// panics on duplicate names, and tests start many servers.
var expvarOnce sync.Once

// StartServer binds addr (host:port; port 0 picks a free port) and serves
// the ops endpoints on it until Close:
//
//	/metrics               Prometheus text exposition of opts.Registry
//	/healthz               liveness probe
//	/events                SSE stream of live telemetry events (JSONL data)
//	/debug/flightrecorder  last-N-events JSONL dump
//	/debug/pprof/*         the standard pprof handlers
//	/debug/vars            expvar, including the registry snapshot
//
// Starting the server also enables metric collection (SetEnabled(true)):
// serving a plane nobody feeds would be pointless.
func StartServer(addr string, opts ServerOptions) (*Server, error) {
	if opts.Registry == nil {
		opts.Registry = Default()
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	SetEnabled(true)
	expvarOnce.Do(func() {
		expvar.Publish("msc_metrics", expvar.Func(func() any {
			return defaultRegistry.Snapshot()
		}))
	})
	s := &Server{opts: opts, ln: ln, done: make(chan struct{})}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/events", s.handleEvents)
	mux.HandleFunc("/debug/flightrecorder", s.handleFlightRecorder)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() {
		defer close(s.done)
		_ = s.srv.Serve(ln) // returns http.ErrServerClosed on Close
	}()

	if opts.Events != nil {
		NewGaugeFuncIfAbsent(opts.Registry, "msc_events_subscribers",
			"Live /events subscribers.",
			func() float64 { return float64(opts.Events.Subscribers()) })
		NewCounterFuncIfAbsent(opts.Registry, "msc_events_dropped_total",
			"Events dropped by slow /events subscribers.",
			func() float64 { return float64(opts.Events.Dropped()) })
	}
	if opts.Recorder != nil {
		NewCounterFuncIfAbsent(opts.Registry, "msc_flightrecorder_events_total",
			"Events ever captured by the flight recorder.",
			func() float64 { return float64(opts.Recorder.Total()) })
	}
	return s, nil
}

// Addr returns the server's bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server immediately, dropping open /events streams, and
// waits for the serve loop to exit.
func (s *Server) Close() error {
	err := s.srv.Close()
	<-s.done
	return err
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.opts.Registry.WritePrometheus(w)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.opts.Healthz != nil {
		if err := s.opts.Healthz(); err != nil {
			http.Error(w, "unhealthy: "+err.Error(), http.StatusServiceUnavailable)
			return
		}
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleEvents streams the live telemetry events as Server-Sent Events:
// one message per event, `event:` carrying the telemetry kind and `data:`
// the exact one-line JSONL encoding — so a captured stream's data lines
// form a telemetry.ValidateJSONL-valid document.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if s.opts.Events == nil {
		http.Error(w, "no event stream attached", http.StatusNotFound)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	sub := s.opts.Events.Subscribe(s.opts.EventBuffer)
	defer sub.Close()
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	// An initial comment line flushes headers so clients see the stream is
	// live before the first event fires.
	fmt.Fprintf(w, ": msc event stream\n\n")
	fl.Flush()
	for {
		select {
		case <-r.Context().Done():
			return
		case e, ok := <-sub.Events():
			if !ok {
				return
			}
			line, err := telemetry.EncodeEvent(e)
			if err != nil {
				continue // a malformed event must not kill the stream
			}
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", e.EventKind(), line)
			fl.Flush()
		}
	}
}

func (s *Server) handleFlightRecorder(w http.ResponseWriter, r *http.Request) {
	if s.opts.Recorder == nil {
		http.Error(w, "no flight recorder attached", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/jsonl; charset=utf-8")
	_, _ = s.opts.Recorder.WriteJSONL(w)
}
