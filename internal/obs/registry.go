package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// metric is anything the registry can export. Implementations must be
// safe for concurrent updates while an export runs.
type metric interface {
	metricName() string
	metricHelp() string
	metricType() string
	// writeSamples appends the metric's sample lines (without HELP/TYPE
	// headers) to buf.
	writeSamples(buf []byte) []byte
	// samples adds the metric's flat name→value samples to out (the expvar
	// and harvest form; histogram buckets use name{le="..."} keys).
	samples(out map[string]float64)
}

// Registry holds a named set of metrics and exports them in the
// Prometheus text exposition format and as a flat snapshot map. It is
// dependency-free (stdlib only) so every solver layer can feed it.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]metric
	order   []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// defaultRegistry is the process-wide registry the standard solver metrics
// live in; the ops server exports it.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// register adds m, panicking on a duplicate name — metric names are
// compile-time constants, so a clash is a programming error the first test
// run catches.
func (r *Registry) register(m metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.metrics == nil {
		r.metrics = make(map[string]metric)
	}
	if _, dup := r.metrics[m.metricName()]; dup {
		panic("obs: duplicate metric " + m.metricName())
	}
	r.metrics[m.metricName()] = m
	r.order = append(r.order, m.metricName())
	sort.Strings(r.order)
}

// Names returns the registered metric names, sorted. This is the schema
// the committed golden list in docs/metrics.golden locks down.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.order...)
}

// WritePrometheus exports every metric in the Prometheus text exposition
// format (version 0.0.4), sorted by name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	ms := make([]metric, 0, len(r.order))
	for _, name := range r.order {
		ms = append(ms, r.metrics[name])
	}
	r.mu.Unlock()
	buf := make([]byte, 0, 4096)
	for _, m := range ms {
		buf = append(buf, "# HELP "...)
		buf = append(buf, m.metricName()...)
		buf = append(buf, ' ')
		buf = append(buf, m.metricHelp()...)
		buf = append(buf, "\n# TYPE "...)
		buf = append(buf, m.metricName()...)
		buf = append(buf, ' ')
		buf = append(buf, m.metricType()...)
		buf = append(buf, '\n')
		buf = m.writeSamples(buf)
	}
	_, err := w.Write(buf)
	return err
}

// Snapshot returns every sample as a flat name→value map: counters and
// gauges under their name, histograms as name_count/name_sum plus one
// name_bucket{le="..."} entry per bucket. This is the form /debug/vars
// publishes and the sweep harvester stores.
func (r *Registry) Snapshot() map[string]float64 {
	r.mu.Lock()
	ms := make([]metric, 0, len(r.order))
	for _, name := range r.order {
		ms = append(ms, r.metrics[name])
	}
	r.mu.Unlock()
	out := make(map[string]float64)
	for _, m := range ms {
		m.samples(out)
	}
	return out
}

func appendSample(buf []byte, name string, v float64) []byte {
	buf = append(buf, name...)
	buf = append(buf, ' ')
	buf = strconv.AppendFloat(buf, v, 'g', -1, 64)
	return append(buf, '\n')
}

// Counter is a monotonically increasing integer metric.
type Counter struct {
	name, help string
	v          atomic.Int64
}

// NewCounter registers a counter with the registry.
func NewCounter(r *Registry, name, help string) *Counter {
	c := &Counter{name: name, help: help}
	r.register(c)
	return c
}

// Add increments the counter by d (d must be >= 0).
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) metricName() string { return c.name }
func (c *Counter) metricHelp() string { return c.help }
func (c *Counter) metricType() string { return "counter" }
func (c *Counter) writeSamples(buf []byte) []byte {
	return appendSample(buf, c.name, float64(c.v.Load()))
}
func (c *Counter) samples(out map[string]float64) { out[c.name] = float64(c.v.Load()) }

// Gauge is a float metric that can go up and down. The value is stored as
// IEEE-754 bits in an atomic word, so Set and reads never tear.
type Gauge struct {
	name, help string
	bits       atomic.Uint64
}

// NewGauge registers a gauge with the registry.
func NewGauge(r *Registry, name, help string) *Gauge {
	g := &Gauge{name: name, help: help}
	r.register(g)
	return g
}

// Set stores the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) metricName() string { return g.name }
func (g *Gauge) metricHelp() string { return g.help }
func (g *Gauge) metricType() string { return "gauge" }
func (g *Gauge) writeSamples(buf []byte) []byte {
	return appendSample(buf, g.name, g.Value())
}
func (g *Gauge) samples(out map[string]float64) { out[g.name] = g.Value() }

// funcMetric evaluates a function at export time. It bridges values that
// already live elsewhere — the telemetry work counters, the Go runtime —
// into the registry without a second store.
type funcMetric struct {
	name, help, typ string
	fn              func() float64
}

// NewCounterFunc registers a counter whose value is read from fn at export
// time. fn must be safe for concurrent calls and monotone for the
// exported series to be a well-formed counter.
func NewCounterFunc(r *Registry, name, help string, fn func() float64) {
	r.register(&funcMetric{name: name, help: help, typ: "counter", fn: fn})
}

// NewGaugeFunc registers a gauge whose value is read from fn at export
// time.
func NewGaugeFunc(r *Registry, name, help string, fn func() float64) {
	r.register(&funcMetric{name: name, help: help, typ: "gauge", fn: fn})
}

// registerIfAbsent registers m unless the name is already taken,
// reporting whether it registered. Used by per-server metrics that bind
// to process-global state (tests start several servers; the first wins).
func (r *Registry) registerIfAbsent(m metric) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.metrics == nil {
		r.metrics = make(map[string]metric)
	}
	if _, dup := r.metrics[m.metricName()]; dup {
		return false
	}
	r.metrics[m.metricName()] = m
	r.order = append(r.order, m.metricName())
	sort.Strings(r.order)
	return true
}

// NewCounterFuncIfAbsent is NewCounterFunc that tolerates an existing
// registration instead of panicking.
func NewCounterFuncIfAbsent(r *Registry, name, help string, fn func() float64) {
	r.registerIfAbsent(&funcMetric{name: name, help: help, typ: "counter", fn: fn})
}

// NewGaugeFuncIfAbsent is NewGaugeFunc that tolerates an existing
// registration instead of panicking.
func NewGaugeFuncIfAbsent(r *Registry, name, help string, fn func() float64) {
	r.registerIfAbsent(&funcMetric{name: name, help: help, typ: "gauge", fn: fn})
}

func (f *funcMetric) metricName() string { return f.name }
func (f *funcMetric) metricHelp() string { return f.help }
func (f *funcMetric) metricType() string { return f.typ }
func (f *funcMetric) writeSamples(buf []byte) []byte {
	return appendSample(buf, f.name, f.fn())
}
func (f *funcMetric) samples(out map[string]float64) { out[f.name] = f.fn() }

// Histogram is a fixed-bucket histogram with a zero-allocation,
// lock-free Observe: one linear bucket probe over a small immutable bound
// slice, two atomic adds, and a CAS loop for the float sum. That makes it
// safe to call from solver hot paths when collection is enabled.
type Histogram struct {
	name, help string
	// bounds are the inclusive upper bounds of the finite buckets, strictly
	// increasing; counts has len(bounds)+1 entries, the last being +Inf.
	bounds  []float64
	counts  []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
}

// NewHistogram registers a histogram with the given inclusive bucket
// upper bounds (strictly increasing; the +Inf bucket is implicit).
func NewHistogram(r *Registry, name, help string, bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds not strictly increasing: " + name)
		}
	}
	h := &Histogram{
		name:   name,
		help:   help,
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	r.register(h)
	return h
}

// Observe records one value. It never allocates and never blocks (the sum
// update is a CAS loop that retries only under concurrent observation of
// the same histogram).
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// HistogramSnapshot is a point-in-time copy of a histogram's state.
type HistogramSnapshot struct {
	// Count is the total number of observations and Sum their sum.
	Count int64
	Sum   float64
	// Buckets holds cumulative counts per upper bound, ending with the
	// +Inf bucket (== Count).
	Buckets []int64
}

// Mean returns Sum/Count, or 0 with no observations.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Sub returns the delta snapshot s − prev: the observations made between
// the two snapshots. A zero-value prev (no Buckets) subtracts nothing, so
// before/after diffing works without priming.
func (s HistogramSnapshot) Sub(prev HistogramSnapshot) HistogramSnapshot {
	d := HistogramSnapshot{
		Count:   s.Count - prev.Count,
		Sum:     s.Sum - prev.Sum,
		Buckets: append([]int64(nil), s.Buckets...),
	}
	for i := range prev.Buckets {
		if i < len(d.Buckets) {
			d.Buckets[i] -= prev.Buckets[i]
		}
	}
	return d
}

// Snapshot copies the histogram state. Each field is read atomically; the
// snapshot is consistent at quiescent points, which is how the cmds use it
// (before/after a solver run).
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:   h.count.Load(),
		Sum:     math.Float64frombits(h.sumBits.Load()),
		Buckets: make([]int64, len(h.counts)),
	}
	cum := int64(0)
	for i := range h.counts {
		cum += h.counts[i].Load()
		s.Buckets[i] = cum
	}
	return s
}

func (h *Histogram) metricName() string { return h.name }
func (h *Histogram) metricHelp() string { return h.help }
func (h *Histogram) metricType() string { return "histogram" }

func (h *Histogram) bucketLabel(i int) string {
	if i == len(h.bounds) {
		return "+Inf"
	}
	return strconv.FormatFloat(h.bounds[i], 'g', -1, 64)
}

func (h *Histogram) writeSamples(buf []byte) []byte {
	s := h.Snapshot()
	for i, cum := range s.Buckets {
		buf = append(buf, h.name...)
		buf = append(buf, `_bucket{le="`...)
		buf = append(buf, h.bucketLabel(i)...)
		buf = append(buf, `"} `...)
		buf = strconv.AppendInt(buf, cum, 10)
		buf = append(buf, '\n')
	}
	buf = appendSample(buf, h.name+"_sum", s.Sum)
	buf = append(buf, h.name...)
	buf = append(buf, "_count "...)
	buf = strconv.AppendInt(buf, s.Count, 10)
	return append(buf, '\n')
}

func (h *Histogram) samples(out map[string]float64) {
	s := h.Snapshot()
	for i, cum := range s.Buckets {
		out[fmt.Sprintf(`%s_bucket{le="%s"}`, h.name, h.bucketLabel(i))] = float64(cum)
	}
	out[h.name+"_sum"] = s.Sum
	out[h.name+"_count"] = float64(s.Count)
}

// ExpBuckets returns n strictly increasing bounds start, start·factor,
// start·factor², … — the standard shape for latency and size histograms.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	bounds := make([]float64, n)
	v := start
	for i := range bounds {
		bounds[i] = v
		v *= factor
	}
	return bounds
}

// LinearBuckets returns n bounds start, start+width, start+2·width, ….
func LinearBuckets(start, width float64, n int) []float64 {
	if width <= 0 || n < 1 {
		panic("obs: LinearBuckets needs width > 0, n >= 1")
	}
	bounds := make([]float64, n)
	for i := range bounds {
		bounds[i] = start + float64(i)*width
	}
	return bounds
}
