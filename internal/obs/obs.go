// Package obs is the live observability plane: a dependency-free metrics
// registry (atomic counters, gauges, fixed-bucket histograms with a
// zero-allocation Observe) and an opt-in HTTP ops server exposing it —
// /metrics in the Prometheus text format, /healthz, /debug/pprof,
// /debug/vars (expvar), a /events Server-Sent-Events stream of the typed
// telemetry trace events, and /debug/flightrecorder dumping the last N
// events as schema-valid JSONL.
//
// Where internal/telemetry answers "what work did this run do" after the
// fact (counters diffed per run, JSONL records read post-mortem), obs
// answers "what is this process doing right now": distributions of round
// wall time, Dijkstra row compute cost, merge/rescan sizes, and candidate
// scan shard imbalance, scraped while a solve is running. It is the
// substrate the placement daemon (`mscd`, ROADMAP) mounts directly.
//
// # Overhead contract
//
// Collection is off by default. Every instrumentation site in the solver
// stack guards on Enabled() — one atomic load — before reading a clock or
// observing a histogram, and Histogram.Observe itself never allocates, so
// with the plane disabled the hot paths are bit-for-bit the PR 2 nil-sink
// fast paths (TestCandidateScanZeroAllocs and BenchmarkGainsAddSerialNoSink
// lock that in), and with it enabled the cost is a few atomic adds per
// round-level event — never per candidate.
//
// The package may be imported by every solver layer: it depends only on
// the standard library and internal/telemetry.
package obs

import (
	"encoding/json"
	"runtime"
	"sync/atomic"
	"time"

	"msc/internal/telemetry"
)

// enabled gates metric collection at the instrumentation sites.
var enabled atomic.Bool

// SetEnabled turns metric collection on or off process-wide. The cmds
// enable it when -ops (or a telemetry sink that wants derived metrics) is
// set; libraries may enable it directly.
func SetEnabled(on bool) { enabled.Store(on) }

// Enabled reports whether instrumentation sites should collect. The check
// is one atomic load, cheap enough for round-level sites; per-candidate
// hot loops are never instrumented at all.
func Enabled() bool { return enabled.Load() }

// Standard solver metrics, registered on the Default registry. The ops
// server exports them; instrumentation sites in internal/core and
// internal/shortestpath feed them when Enabled.
var (
	// RoundWall is the wall-clock time of one solver round (one greedy
	// round, one EA/AEA iteration, one local-search swap), in seconds.
	RoundWall = NewHistogram(Default(), "msc_round_wall_seconds",
		"Wall-clock time of one solver round.",
		ExpBuckets(1e-5, 4, 12)) // 10µs … ~42s

	// RowCompute is the cost of one on-demand Dijkstra row computation
	// (lazy-table cache fills and overlay row queries), in seconds.
	RowCompute = NewHistogram(Default(), "msc_row_compute_seconds",
		"Wall-clock time of one on-demand Dijkstra distance-row computation.",
		ExpBuckets(1e-6, 4, 12)) // 1µs … ~4s

	// MergeRows is the number of endpoint distance rows one incremental
	// shortcut commit actually changed (core mergeAdd).
	MergeRows = NewHistogram(Default(), "msc_merge_rows_changed",
		"Endpoint distance rows changed by one incremental shortcut commit.",
		ExpBuckets(1, 4, 10)) // 1 … ~262k

	// RescanPairs is the number of pairs one gains scan recomputed — the
	// full unsatisfied set on a cold scan, only the changed pairs on a
	// delta rescan.
	RescanPairs = NewHistogram(Default(), "msc_rescan_pairs",
		"Pairs whose gains contribution one scan recomputed.",
		ExpBuckets(1, 4, 10))

	// ScenarioEval is the cost of one failure-scenario evaluation by the
	// survivable objective (core surviveSearch): one scenario's incremental
	// merge on commit, or one scenario's (usually warm) gains read during a
	// candidate scan, in seconds.
	ScenarioEval = NewHistogram(Default(), "msc_failure_scenario_eval_seconds",
		"Wall-clock time of one survivable failure-scenario evaluation.",
		ExpBuckets(1e-7, 4, 12)) // 100ns … ~0.4s

	// ShardImbalance is the relative imbalance (max−min)/max of per-shard
	// wall times of one timed sharded candidate scan: 0 = perfectly even,
	// →1 = one shard did all the waiting.
	ShardImbalance = NewHistogram(Default(), "msc_scan_shard_imbalance",
		"Per-scan relative shard wall-time imbalance (max-min)/max.",
		LinearBuckets(0.05, 0.05, 19)) // 0.05 … 0.95
)

// ObserveRound records one solver round's wall time when collection is
// enabled. d is the round's duration.
func ObserveRound(d time.Duration) {
	if enabled.Load() {
		RoundWall.Observe(d.Seconds())
	}
}

// ObserveRowCompute records one on-demand row computation's wall time.
// Callers gate the clock reads on Enabled themselves.
func ObserveRowCompute(d time.Duration) { RowCompute.Observe(d.Seconds()) }

// ObserveMerge records one incremental commit's row-merge width and one
// scan's rescanned-pair count when collection is enabled. Zero-valued
// arguments are skipped: a merge that changed nothing is the cache-hit
// case the histograms are not about.
func ObserveMerge(rowsChanged, pairsRescanned int64) {
	if !enabled.Load() {
		return
	}
	if rowsChanged > 0 {
		MergeRows.Observe(float64(rowsChanged))
	}
	if pairsRescanned > 0 {
		RescanPairs.Observe(float64(pairsRescanned))
	}
}

// ObserveScenarioEval records one failure-scenario evaluation's wall time.
// Callers gate the clock reads on Enabled themselves.
func ObserveScenarioEval(d time.Duration) { ScenarioEval.Observe(d.Seconds()) }

// ObserveScanShards records one timed scan's shard imbalance when
// collection is enabled.
func ObserveScanShards(minNS, maxNS int64, shards int) {
	if !enabled.Load() || shards < 1 || maxNS <= 0 {
		return
	}
	ShardImbalance.Observe(float64(maxNS-minNS) / float64(maxNS))
}

// init bridges the existing telemetry layer and the Go runtime into the
// registry: every telemetry.CounterSnapshot field becomes an exported
// counter (msc_<json_name>_total, read at scrape time, so the two schemas
// can never drift), the lazy-table hit ratio becomes a gauge, and two
// runtime gauges round out the ops picture.
func init() {
	// Counter names come from the CounterSnapshot JSON schema itself via an
	// encode/decode round trip, exactly like the sweep aggregator derives
	// its metric namespace: a counter added to telemetry flows into
	// /metrics (and the golden-list CI diff catches the schema change).
	body, err := json.Marshal(telemetry.CounterSnapshot{})
	if err != nil {
		panic("obs: encode telemetry counters: " + err.Error())
	}
	var fields map[string]int64
	if err := json.Unmarshal(body, &fields); err != nil {
		panic("obs: decode telemetry counters: " + err.Error())
	}
	for name := range fields {
		field := name
		NewCounterFunc(Default(), "msc_"+field+"_total",
			"Solver work counter "+field+" (see internal/telemetry).",
			func() float64 {
				return counterField(telemetry.Global().Snapshot(), field)
			})
	}

	NewGaugeFunc(Default(), "msc_row_cache_hit_ratio",
		"Lazy distance-table row cache hit ratio hits/(hits+misses); 0 before any request.",
		func() float64 {
			s := telemetry.Global().Snapshot()
			total := s.RowCacheHits + s.RowCacheMisses
			if total == 0 {
				return 0
			}
			return float64(s.RowCacheHits) / float64(total)
		})

	NewGaugeFunc(Default(), "msc_goroutines",
		"Number of live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	NewGaugeFunc(Default(), "msc_heap_alloc_bytes",
		"Bytes of allocated heap objects (runtime.MemStats.HeapAlloc).",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapAlloc)
		})
}

// counterField reads one CounterSnapshot field by its JSON name through
// the same round trip init derived the names from.
func counterField(s telemetry.CounterSnapshot, field string) float64 {
	body, err := json.Marshal(s)
	if err != nil {
		return 0
	}
	var m map[string]int64
	if err := json.Unmarshal(body, &m); err != nil {
		return 0
	}
	return float64(m[field])
}
