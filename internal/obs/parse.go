package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// ParsePrometheus reads a Prometheus text exposition (the /metrics output)
// into a flat sample map keyed by the full sample name including labels
// (e.g. `msc_round_wall_seconds_bucket{le="+Inf"}`). Comment and blank
// lines are skipped; a malformed sample line is an error. The sweep
// harvester uses this to fold a child's /metrics dump into its Result.
func ParsePrometheus(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// The value is the field after the last space; the name (with any
		// label set) is everything before it. Label values never contain
		// spaces in our exposition.
		i := strings.LastIndexByte(line, ' ')
		if i <= 0 {
			return nil, fmt.Errorf("obs: metrics line %d: no value: %q", lineNo, line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("obs: metrics line %d: bad value: %v", lineNo, err)
		}
		out[strings.TrimSpace(line[:i])] = v
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// MetricNames extracts the sorted set of base metric names from a parsed
// sample map: label sets and the histogram _bucket/_sum/_count suffixes
// are stripped, so the result matches Registry.Names — the form the
// committed golden list (docs/metrics.golden) records.
func MetricNames(samples map[string]float64) []string {
	set := make(map[string]struct{})
	for name := range samples {
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, suffix) {
				name = strings.TrimSuffix(name, suffix)
				break
			}
		}
		set[name] = struct{}{}
	}
	names := make([]string, 0, len(set))
	for name := range set {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
