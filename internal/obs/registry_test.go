package obs

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeExport(t *testing.T) {
	r := NewRegistry()
	c := NewCounter(r, "test_ops_total", "Ops.")
	g := NewGauge(r, "test_depth", "Depth.")
	c.Add(3)
	c.Add(2)
	g.Set(1.5)
	g.Set(-2.25)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if g.Value() != -2.25 {
		t.Fatalf("gauge = %v, want -2.25", g.Value())
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP test_ops_total Ops.",
		"# TYPE test_ops_total counter",
		"test_ops_total 5",
		"# TYPE test_depth gauge",
		"test_depth -2.25",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	NewCounter(r, "dup_total", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	NewCounter(r, "dup_total", "x")
}

func TestRegisterIfAbsentToleratesDuplicate(t *testing.T) {
	r := NewRegistry()
	calls := 0
	NewGaugeFuncIfAbsent(r, "maybe_dup", "x", func() float64 { calls++; return 1 })
	NewGaugeFuncIfAbsent(r, "maybe_dup", "x", func() float64 { t.Error("second registration won"); return 2 })
	if got := r.Snapshot()["maybe_dup"]; got != 1 {
		t.Fatalf("maybe_dup = %v, want 1 (first registration)", got)
	}
	if calls != 1 {
		t.Fatalf("first fn called %d times during one snapshot", calls)
	}
}

func TestRegistryNamesSorted(t *testing.T) {
	r := NewRegistry()
	NewCounter(r, "zzz_total", "z")
	NewCounter(r, "aaa_total", "a")
	NewGauge(r, "mmm", "m")
	names := r.Names()
	want := []string{"aaa_total", "mmm", "zzz_total"}
	if len(names) != len(want) {
		t.Fatalf("Names() = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", names, want)
		}
	}
}

func TestHistogramBucketsAndSnapshot(t *testing.T) {
	r := NewRegistry()
	h := NewHistogram(r, "test_seconds", "x", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 10, 50, 1000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 6 {
		t.Fatalf("Count = %d, want 6", s.Count)
	}
	if s.Sum != 1066.5 {
		t.Fatalf("Sum = %v, want 1066.5", s.Sum)
	}
	// Bounds are inclusive upper bounds; cumulative counts end at Count.
	wantCum := []int64{2, 4, 5, 6}
	if len(s.Buckets) != len(wantCum) {
		t.Fatalf("Buckets = %v, want %v", s.Buckets, wantCum)
	}
	for i, w := range wantCum {
		if s.Buckets[i] != w {
			t.Fatalf("Buckets = %v, want %v", s.Buckets, wantCum)
		}
	}
	if got := s.Mean(); math.Abs(got-1066.5/6) > 1e-12 {
		t.Fatalf("Mean() = %v", got)
	}
	if got := (HistogramSnapshot{}).Mean(); got != 0 {
		t.Fatalf("empty Mean() = %v, want 0", got)
	}

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`test_seconds_bucket{le="1"} 2`,
		`test_seconds_bucket{le="100"} 5`,
		`test_seconds_bucket{le="+Inf"} 6`,
		"test_seconds_sum 1066.5",
		"test_seconds_count 6",
		"# TYPE test_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramObserveZeroAllocs(t *testing.T) {
	r := NewRegistry()
	h := NewHistogram(r, "alloc_check", "x", ExpBuckets(1e-6, 4, 12))
	allocs := testing.AllocsPerRun(1000, func() { h.Observe(3.14e-4) })
	if allocs != 0 {
		t.Fatalf("Histogram.Observe allocates %v per call, want 0", allocs)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := NewHistogram(r, "conc_seconds", "x", []float64{1, 2, 4})
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(1) // identical values keep the expected Sum exact
			}
		}()
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("Count = %d, want %d", s.Count, workers*per)
	}
	if s.Sum != float64(workers*per) {
		t.Fatalf("Sum = %v, want %v (CAS loop lost updates)", s.Sum, workers*per)
	}
	if s.Buckets[0] != workers*per {
		t.Fatalf("first bucket = %d, want %d", s.Buckets[0], workers*per)
	}
}

func TestBucketHelpers(t *testing.T) {
	exp := ExpBuckets(1, 2, 4)
	for i, want := range []float64{1, 2, 4, 8} {
		if exp[i] != want {
			t.Fatalf("ExpBuckets = %v", exp)
		}
	}
	lin := LinearBuckets(0.5, 0.25, 3)
	for i, want := range []float64{0.5, 0.75, 1.0} {
		if lin[i] != want {
			t.Fatalf("LinearBuckets = %v", lin)
		}
	}
}

func TestParsePrometheusRoundTrip(t *testing.T) {
	r := NewRegistry()
	c := NewCounter(r, "rt_total", "x")
	c.Add(7)
	h := NewHistogram(r, "rt_seconds", "x", []float64{1})
	h.Observe(0.5)
	h.Observe(3)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParsePrometheus(&buf)
	if err != nil {
		t.Fatalf("ParsePrometheus: %v", err)
	}
	want := r.Snapshot()
	if len(parsed) != len(want) {
		t.Fatalf("parsed %d samples, registry has %d", len(parsed), len(want))
	}
	for name, v := range want {
		if parsed[name] != v {
			t.Errorf("sample %s: parsed %v, registry %v", name, parsed[name], v)
		}
	}
	names := MetricNames(parsed)
	if len(names) != 2 || names[0] != "rt_seconds" || names[1] != "rt_total" {
		t.Fatalf("MetricNames = %v, want [rt_seconds rt_total]", names)
	}
}

func TestParsePrometheusRejectsGarbage(t *testing.T) {
	if _, err := ParsePrometheus(strings.NewReader("rt_total notanumber\n")); err == nil {
		t.Fatal("bad value accepted")
	}
	if _, err := ParsePrometheus(strings.NewReader("loneword\n")); err == nil {
		t.Fatal("valueless line accepted")
	}
}

func TestDefaultRegistryHasStandardMetrics(t *testing.T) {
	names := Default().Names()
	has := make(map[string]bool, len(names))
	for _, n := range names {
		has[n] = true
	}
	for _, want := range []string{
		"msc_round_wall_seconds",
		"msc_row_compute_seconds",
		"msc_merge_rows_changed",
		"msc_rescan_pairs",
		"msc_scan_shard_imbalance",
		"msc_row_cache_hit_ratio",
		"msc_sigma_evals_total",     // bridged from telemetry counters
		"msc_dijkstra_runs_total",   // ditto
		"msc_pairs_rescanned_total", // ditto (incremental-eval counters)
		"msc_goroutines",
		"msc_heap_alloc_bytes",
	} {
		if !has[want] {
			t.Errorf("Default registry missing %s (have %v)", want, names)
		}
	}
}

func TestObserveHelpersRespectEnabledGate(t *testing.T) {
	SetEnabled(false)
	defer SetEnabled(false)
	before := RoundWall.Snapshot().Count
	ObserveRound(1e6)
	ObserveMerge(10, 10)
	ObserveScanShards(1, 100, 4)
	if got := RoundWall.Snapshot().Count; got != before {
		t.Fatal("ObserveRound recorded while disabled")
	}
	SetEnabled(true)
	if !Enabled() {
		t.Fatal("Enabled() = false after SetEnabled(true)")
	}
	ObserveRound(1e6)
	ObserveMerge(10, 10)
	ObserveScanShards(1, 100, 4)
	if got := RoundWall.Snapshot().Count; got != before+1 {
		t.Fatalf("RoundWall count moved %d, want 1", got-before)
	}
	// (max-min)/max = 99/100
	s := ShardImbalance.Snapshot()
	if s.Count == 0 {
		t.Fatal("ShardImbalance not recorded while enabled")
	}
}
