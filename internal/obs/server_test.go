package obs

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"msc/internal/telemetry"
)

func startTestServer(t *testing.T, opts ServerOptions) *Server {
	t.Helper()
	s, err := StartServer("127.0.0.1:0", opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestServerMetricsEndpoint(t *testing.T) {
	s := startTestServer(t, ServerOptions{})
	code, body := get(t, "http://"+s.Addr()+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.Contains(body, "# TYPE msc_round_wall_seconds histogram") {
		t.Fatalf("/metrics missing standard histogram:\n%.500s", body)
	}
	// The exposition must parse back into the registry's own snapshot names.
	parsed, err := ParsePrometheus(strings.NewReader(body))
	if err != nil {
		t.Fatalf("scraped /metrics does not parse: %v", err)
	}
	if len(MetricNames(parsed)) < 10 {
		t.Fatalf("scrape yielded only %d metric names", len(MetricNames(parsed)))
	}
}

func TestServerHealthz(t *testing.T) {
	healthy := true
	s := startTestServer(t, ServerOptions{Healthz: func() error {
		if !healthy {
			return fmt.Errorf("solver wedged")
		}
		return nil
	}})
	code, body := get(t, "http://"+s.Addr()+"/healthz")
	if code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("healthy probe: %d %q", code, body)
	}
	healthy = false
	code, body = get(t, "http://"+s.Addr()+"/healthz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "solver wedged") {
		t.Fatalf("unhealthy probe: %d %q", code, body)
	}
}

func TestServerDebugVarsAndPprof(t *testing.T) {
	s := startTestServer(t, ServerOptions{})
	code, body := get(t, "http://"+s.Addr()+"/debug/vars")
	if code != http.StatusOK || !strings.Contains(body, "msc_metrics") {
		t.Fatalf("/debug/vars: %d, msc_metrics published: %v", code, strings.Contains(body, "msc_metrics"))
	}
	code, body = get(t, "http://"+s.Addr()+"/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/: %d", code)
	}
}

func TestServerFlightRecorder(t *testing.T) {
	ring := telemetry.NewRing(8)
	ring.Emit(telemetry.RoundEvent{Algorithm: "greedy_sigma", Round: 0})
	ring.Emit(telemetry.RoundEvent{Algorithm: "greedy_sigma", Round: 1})
	s := startTestServer(t, ServerOptions{Recorder: ring})
	code, body := get(t, "http://"+s.Addr()+"/debug/flightrecorder")
	if code != http.StatusOK {
		t.Fatalf("/debug/flightrecorder status %d", code)
	}
	counts, err := telemetry.ValidateJSONL(strings.NewReader(body))
	if err != nil {
		t.Fatalf("flight recorder dump invalid: %v", err)
	}
	if counts["round"] != 2 {
		t.Fatalf("dump has %d round events, want 2", counts["round"])
	}
}

func TestServerFlightRecorderAbsent(t *testing.T) {
	s := startTestServer(t, ServerOptions{})
	if code, _ := get(t, "http://"+s.Addr()+"/debug/flightrecorder"); code != http.StatusNotFound {
		t.Fatalf("recorder-less /debug/flightrecorder status %d, want 404", code)
	}
}

// TestServerEventsStream pins the /events contract end to end: events
// emitted into the fanout arrive as SSE frames whose data lines form a
// ValidateJSONL-valid stream, in order.
func TestServerEventsStream(t *testing.T) {
	fan := telemetry.NewFanout()
	s := startTestServer(t, ServerOptions{Events: fan})

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+s.Addr()+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET /events: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	r := bufio.NewReader(resp.Body)
	// The server flushes an initial comment so clients know the stream is
	// live; wait for it before emitting, or the emit may race Subscribe.
	first, err := r.ReadString('\n')
	if err != nil || !strings.HasPrefix(first, ":") {
		t.Fatalf("expected initial SSE comment, got %q, %v", first, err)
	}

	const events = 5
	go func() {
		for i := 0; i < events; i++ {
			fan.Emit(telemetry.RoundEvent{Algorithm: "greedy_sigma", Round: i, Sigma: 10 + i})
		}
	}()

	var jsonl bytes.Buffer
	kinds := 0
	for kinds < events {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("stream ended early after %d events: %v", kinds, err)
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, "event: "):
			if got := strings.TrimPrefix(line, "event: "); got != "round" {
				t.Fatalf("event kind %q, want round", got)
			}
		case strings.HasPrefix(line, "data: "):
			jsonl.WriteString(strings.TrimPrefix(line, "data: "))
			jsonl.WriteByte('\n')
			kinds++
		}
	}
	counts, err := telemetry.ValidateJSONL(bytes.NewReader(jsonl.Bytes()))
	if err != nil {
		t.Fatalf("captured /events data is not schema-valid JSONL: %v", err)
	}
	if counts["round"] != events {
		t.Fatalf("captured %d round events, want %d", counts["round"], events)
	}
	if got := fan.Subscribers(); got != 1 {
		t.Fatalf("Subscribers() = %d mid-stream, want 1", got)
	}
	cancel()
	// Subscriber detaches once the handler notices the closed connection.
	deadline := time.Now().Add(5 * time.Second)
	for fan.Subscribers() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("subscriber never detached after client disconnect")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestServerEventsAbsent(t *testing.T) {
	s := startTestServer(t, ServerOptions{})
	if code, _ := get(t, "http://"+s.Addr()+"/events"); code != http.StatusNotFound {
		t.Fatalf("fanout-less /events status %d, want 404", code)
	}
}

func TestServerPortZeroAndClose(t *testing.T) {
	s, err := StartServer("127.0.0.1:0", ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	addr := s.Addr()
	if !strings.HasPrefix(addr, "127.0.0.1:") || strings.HasSuffix(addr, ":0") {
		t.Fatalf("Addr() = %q, want a resolved port", addr)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Fatal("server still serving after Close")
	}
}
