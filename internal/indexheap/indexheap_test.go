package indexheap

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestPushPopOrder(t *testing.T) {
	h := New(10)
	keys := []float64{5, 1, 4, 2, 3}
	for i, k := range keys {
		h.Push(i, k)
	}
	want := []int{1, 3, 4, 2, 0} // items sorted by key
	for _, wantItem := range want {
		item, _ := h.Pop()
		if item != wantItem {
			t.Fatalf("pop order wrong: got %d, want %d", item, wantItem)
		}
	}
	if h.Len() != 0 {
		t.Fatalf("heap not empty: %d", h.Len())
	}
}

func TestDecreaseKey(t *testing.T) {
	h := New(4)
	h.Push(0, 10)
	h.Push(1, 20)
	h.Push(2, 30)
	h.DecreaseKey(2, 5)
	if item, key := h.Pop(); item != 2 || key != 5 {
		t.Fatalf("pop = (%d, %v), want (2, 5)", item, key)
	}
	// Increase attempts are ignored.
	h.DecreaseKey(1, 50)
	if item, _ := h.Pop(); item != 0 {
		t.Fatalf("pop = %d, want 0", item)
	}
}

func TestPushActsAsDecreaseKey(t *testing.T) {
	h := New(3)
	h.Push(0, 10)
	h.Push(0, 3) // lower: decrease
	h.Push(0, 8) // higher: ignored
	if item, key := h.Pop(); item != 0 || key != 3 {
		t.Fatalf("pop = (%d, %v), want (0, 3)", item, key)
	}
}

func TestContainsAndKey(t *testing.T) {
	h := New(3)
	h.Push(1, 7)
	if !h.Contains(1) || h.Contains(0) {
		t.Fatal("Contains wrong")
	}
	if h.Key(1) != 7 {
		t.Fatalf("Key = %v", h.Key(1))
	}
	h.Pop()
	if h.Contains(1) {
		t.Fatal("popped item still contained")
	}
}

func TestReset(t *testing.T) {
	h := New(5)
	for i := 0; i < 5; i++ {
		h.Push(i, float64(i))
	}
	h.Reset()
	if h.Len() != 0 {
		t.Fatalf("len after reset = %d", h.Len())
	}
	for i := 0; i < 5; i++ {
		if h.Contains(i) {
			t.Fatalf("item %d contained after reset", i)
		}
	}
	// Reusable after reset.
	h.Push(3, 1)
	if item, _ := h.Pop(); item != 3 {
		t.Fatal("heap unusable after reset")
	}
}

func TestPopEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Pop()
}

func TestDecreaseKeyAbsentPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2).DecreaseKey(0, 1)
}

// Property: popping everything yields keys in nondecreasing order and
// matches sorting the final key of each item.
func TestQuickHeapSort(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		h := New(n)
		final := make(map[int]float64)
		// Random pushes and decrease-keys.
		for op := 0; op < 3*n; op++ {
			item := rng.Intn(n)
			key := rng.Float64() * 100
			if cur, ok := final[item]; !ok || key < cur {
				final[item] = key
			}
			h.Push(item, key)
		}
		var want []float64
		for _, k := range final {
			want = append(want, k)
		}
		sort.Float64s(want)
		prev := -1.0
		count := 0
		for h.Len() > 0 {
			item, key := h.Pop()
			if key < prev {
				return false
			}
			if final[item] != key {
				return false
			}
			prev = key
			count++
		}
		return count == len(final)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
