// Package indexheap implements an indexed binary min-heap keyed by float64
// priorities, supporting decrease-key in O(log n).
//
// It is the priority queue behind the Dijkstra implementations in
// internal/shortestpath. Items are dense integer ids in [0, n), which lets
// the heap track positions in a flat slice instead of a map.
package indexheap

// Heap is an indexed min-heap over items 0..n-1. The zero value is not
// usable; construct with New.
type Heap struct {
	// heap[i] is the item id stored at heap position i.
	heap []int32
	// pos[item] is the heap position of item, or -1 if absent.
	pos []int32
	// key[item] is the priority of item (valid only while the item is in
	// the heap or after it was pushed at least once).
	key []float64
}

// New returns an empty heap over the item universe [0, n).
func New(n int) *Heap {
	pos := make([]int32, n)
	for i := range pos {
		pos[i] = -1
	}
	return &Heap{
		heap: make([]int32, 0, n),
		pos:  pos,
		key:  make([]float64, n),
	}
}

// Len returns the number of items currently in the heap.
func (h *Heap) Len() int { return len(h.heap) }

// Contains reports whether item is currently in the heap.
func (h *Heap) Contains(item int) bool { return h.pos[item] >= 0 }

// Key returns the last priority assigned to item via Push or DecreaseKey.
// The value is meaningful only if the item was inserted at least once.
func (h *Heap) Key(item int) float64 { return h.key[item] }

// Push inserts item with the given priority. If the item is already in the
// heap, Push behaves like DecreaseKey when the new priority is smaller and
// is a no-op otherwise.
func (h *Heap) Push(item int, priority float64) {
	if h.pos[item] >= 0 {
		if priority < h.key[item] {
			h.key[item] = priority
			h.siftUp(int(h.pos[item]))
		}
		return
	}
	h.key[item] = priority
	h.heap = append(h.heap, int32(item))
	h.pos[item] = int32(len(h.heap) - 1)
	h.siftUp(len(h.heap) - 1)
}

// DecreaseKey lowers the priority of an item already in the heap. It is a
// no-op if the new priority is not smaller. It panics if the item is absent.
func (h *Heap) DecreaseKey(item int, priority float64) {
	if h.pos[item] < 0 {
		panic("indexheap: DecreaseKey on absent item")
	}
	if priority >= h.key[item] {
		return
	}
	h.key[item] = priority
	h.siftUp(int(h.pos[item]))
}

// Pop removes and returns the item with the minimum priority together with
// that priority. It panics on an empty heap.
func (h *Heap) Pop() (item int, priority float64) {
	if len(h.heap) == 0 {
		panic("indexheap: Pop from empty heap")
	}
	top := h.heap[0]
	last := len(h.heap) - 1
	h.swap(0, last)
	h.heap = h.heap[:last]
	h.pos[top] = -1
	if last > 0 {
		h.siftDown(0)
	}
	return int(top), h.key[top]
}

// Reset empties the heap in O(len) so it can be reused without reallocating.
func (h *Heap) Reset() {
	for _, item := range h.heap {
		h.pos[item] = -1
	}
	h.heap = h.heap[:0]
}

func (h *Heap) less(i, j int) bool {
	return h.key[h.heap[i]] < h.key[h.heap[j]]
}

func (h *Heap) swap(i, j int) {
	h.heap[i], h.heap[j] = h.heap[j], h.heap[i]
	h.pos[h.heap[i]] = int32(i)
	h.pos[h.heap[j]] = int32(j)
}

func (h *Heap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *Heap) siftDown(i int) {
	n := len(h.heap)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		smallest := left
		if right := left + 1; right < n && h.less(right, left) {
			smallest = right
		}
		if !h.less(smallest, i) {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}
