// Package graph implements the weighted undirected graph that models the
// wireless network in the MSC problem (paper §III-A).
//
// Nodes are dense integer ids 0..N-1 (mobile devices); each undirected edge
// carries a non-negative length. Per the paper's formulation, the length of
// edge (i,j) is l_ij = -ln(1 - p_ij) where p_ij is the link failure
// probability, so shortest path length corresponds to the most reliable
// path (see internal/failprob for the conversion algebra).
//
// The Graph type is immutable once built (via Builder), which lets the
// solver precompute and share all-pairs distance tables across candidate
// shortcut placements without synchronization.
package graph

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"msc/internal/geom"
)

// NodeID identifies a node; ids are dense in [0, N).
type NodeID = int32

// Edge is an undirected weighted edge. Canonical form has U < V.
type Edge struct {
	U, V   NodeID
	Length float64
}

// Canon returns e with endpoints ordered U < V.
func (e Edge) Canon() Edge {
	if e.U > e.V {
		e.U, e.V = e.V, e.U
	}
	return e
}

// Arc is one direction of an undirected edge, as stored in adjacency lists.
type Arc struct {
	To     NodeID
	Length float64
}

// Graph is an immutable weighted undirected graph. Construct with Builder.
type Graph struct {
	adj    [][]Arc
	edges  []Edge // canonical, sorted (U, V)
	coords []geom.Point
	labels []string
}

// Errors returned by Builder.
var (
	ErrSelfLoop   = errors.New("graph: self loop")
	ErrBadLength  = errors.New("graph: edge length must be finite and non-negative")
	ErrNodeRange  = errors.New("graph: node id out of range")
	ErrCoordCount = errors.New("graph: coordinate count does not match node count")
	ErrLabelCount = errors.New("graph: label count does not match node count")
)

// Builder accumulates nodes and edges and produces an immutable Graph.
// Duplicate edges are merged keeping the minimum length (parallel physical
// links reduce to their most reliable member for shortest-path purposes).
type Builder struct {
	n      int
	edges  map[[2]NodeID]float64
	coords []geom.Point
	labels []string
	err    error
}

// NewBuilder returns a Builder for a graph with n nodes.
func NewBuilder(n int) *Builder {
	return &Builder{n: n, edges: make(map[[2]NodeID]float64)}
}

// AddEdge records an undirected edge between u and v with the given length.
// Errors are sticky and reported by Build.
func (b *Builder) AddEdge(u, v NodeID, length float64) *Builder {
	if b.err != nil {
		return b
	}
	switch {
	case u == v:
		b.err = fmt.Errorf("%w: node %d", ErrSelfLoop, u)
	case u < 0 || v < 0 || int(u) >= b.n || int(v) >= b.n:
		b.err = fmt.Errorf("%w: edge (%d,%d) with n=%d", ErrNodeRange, u, v, b.n)
	case math.IsNaN(length) || math.IsInf(length, 0) || length < 0:
		b.err = fmt.Errorf("%w: (%d,%d) length %v", ErrBadLength, u, v, length)
	default:
		if u > v {
			u, v = v, u
		}
		key := [2]NodeID{u, v}
		if old, ok := b.edges[key]; !ok || length < old {
			b.edges[key] = length
		}
	}
	return b
}

// SetCoords attaches 2-D positions (one per node). Optional; used by the
// geometric generators and the visualizer.
func (b *Builder) SetCoords(coords []geom.Point) *Builder {
	if b.err != nil {
		return b
	}
	if len(coords) != b.n {
		b.err = fmt.Errorf("%w: got %d, want %d", ErrCoordCount, len(coords), b.n)
		return b
	}
	b.coords = append([]geom.Point(nil), coords...)
	return b
}

// SetLabels attaches human-readable node labels (one per node). Optional.
func (b *Builder) SetLabels(labels []string) *Builder {
	if b.err != nil {
		return b
	}
	if len(labels) != b.n {
		b.err = fmt.Errorf("%w: got %d, want %d", ErrLabelCount, len(labels), b.n)
		return b
	}
	b.labels = append([]string(nil), labels...)
	return b
}

// Build finalizes the graph. It returns the first error recorded by the
// builder, if any.
func (b *Builder) Build() (*Graph, error) {
	if b.err != nil {
		return nil, b.err
	}
	g := &Graph{
		adj:    make([][]Arc, b.n),
		edges:  make([]Edge, 0, len(b.edges)),
		coords: b.coords,
		labels: b.labels,
	}
	for key, length := range b.edges {
		g.edges = append(g.edges, Edge{U: key[0], V: key[1], Length: length})
	}
	sort.Slice(g.edges, func(i, j int) bool {
		if g.edges[i].U != g.edges[j].U {
			return g.edges[i].U < g.edges[j].U
		}
		return g.edges[i].V < g.edges[j].V
	})
	for _, e := range g.edges {
		g.adj[e.U] = append(g.adj[e.U], Arc{To: e.V, Length: e.Length})
		g.adj[e.V] = append(g.adj[e.V], Arc{To: e.U, Length: e.Length})
	}
	return g, nil
}

// MustBuild is Build but panics on error; for tests and static literals.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.adj) }

// M returns the number of undirected edges.
func (g *Graph) M() int { return len(g.edges) }

// Edges returns the canonical edge list. Callers must not modify it.
func (g *Graph) Edges() []Edge { return g.edges }

// Neighbors returns the adjacency list of u. Callers must not modify it.
func (g *Graph) Neighbors(u NodeID) []Arc { return g.adj[u] }

// Degree returns the number of incident edges of u.
func (g *Graph) Degree(u NodeID) int { return len(g.adj[u]) }

// EdgeLength returns the length of edge (u,v) and whether it exists.
func (g *Graph) EdgeLength(u, v NodeID) (float64, bool) {
	if u == v {
		return 0, false
	}
	// Scan the shorter adjacency list.
	if len(g.adj[u]) > len(g.adj[v]) {
		u, v = v, u
	}
	for _, a := range g.adj[u] {
		if a.To == v {
			return a.Length, true
		}
	}
	return 0, false
}

// HasEdge reports whether edge (u,v) exists.
func (g *Graph) HasEdge(u, v NodeID) bool {
	_, ok := g.EdgeLength(u, v)
	return ok
}

// Coords returns the node positions, or nil if none were attached.
func (g *Graph) Coords() []geom.Point { return g.coords }

// Labels returns the node labels, or nil if none were attached.
func (g *Graph) Labels() []string { return g.labels }

// Label returns the label of u, falling back to "v<id>".
func (g *Graph) Label(u NodeID) string {
	if g.labels != nil && int(u) < len(g.labels) && g.labels[u] != "" {
		return g.labels[u]
	}
	return fmt.Sprintf("v%d", u)
}

// TotalLength returns the sum of all edge lengths.
func (g *Graph) TotalLength() float64 {
	total := 0.0
	for _, e := range g.edges {
		total += e.Length
	}
	return total
}
