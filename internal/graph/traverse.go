package graph

import "msc/internal/geom"

// Components returns the connected components of g, each as a sorted slice
// of node ids, ordered by their smallest member.
func (g *Graph) Components() [][]NodeID {
	n := g.N()
	seen := make([]bool, n)
	var comps [][]NodeID
	queue := make([]NodeID, 0, n)
	for start := 0; start < n; start++ {
		if seen[start] {
			continue
		}
		queue = queue[:0]
		queue = append(queue, NodeID(start))
		seen[start] = true
		comp := []NodeID{NodeID(start)}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, a := range g.adj[u] {
				if !seen[a.To] {
					seen[a.To] = true
					comp = append(comp, a.To)
					queue = append(queue, a.To)
				}
			}
		}
		comps = append(comps, comp)
	}
	for _, c := range comps {
		sortNodeIDs(c)
	}
	return comps
}

// LargestComponent returns the node set of the largest connected component
// (ties broken by smallest member).
func (g *Graph) LargestComponent() []NodeID {
	comps := g.Components()
	best := 0
	for i, c := range comps {
		if len(c) > len(comps[best]) {
			best = i
		}
	}
	if len(comps) == 0 {
		return nil
	}
	return comps[best]
}

// Connected reports whether g is a single connected component. The empty
// graph is considered connected.
func (g *Graph) Connected() bool {
	return g.N() == 0 || len(g.Components()) == 1
}

// HopDistances returns the unweighted (hop-count) distance from src to every
// node; unreachable nodes get -1.
func (g *Graph) HopDistances(src NodeID) []int {
	n := g.N()
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []NodeID{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, a := range g.adj[u] {
			if dist[a.To] < 0 {
				dist[a.To] = dist[u] + 1
				queue = append(queue, a.To)
			}
		}
	}
	return dist
}

// InducedSubgraph returns the subgraph induced by keep, along with the
// mapping newID -> oldID. Coordinates and labels are carried over when
// present. Node ids are compacted in the order given by keep.
func (g *Graph) InducedSubgraph(keep []NodeID) (*Graph, []NodeID) {
	oldToNew := make(map[NodeID]NodeID, len(keep))
	for i, old := range keep {
		oldToNew[old] = NodeID(i)
	}
	b := NewBuilder(len(keep))
	for _, e := range g.edges {
		nu, okU := oldToNew[e.U]
		nv, okV := oldToNew[e.V]
		if okU && okV {
			b.AddEdge(nu, nv, e.Length)
		}
	}
	if g.coords != nil {
		cs := make([]geom.Point, len(keep))
		for i, old := range keep {
			cs[i] = g.coords[old]
		}
		b.SetCoords(cs)
	}
	if g.labels != nil {
		ls := make([]string, len(keep))
		for i, old := range keep {
			ls[i] = g.labels[old]
		}
		b.SetLabels(ls)
	}
	sub, err := b.Build()
	if err != nil {
		// Induced subgraphs of a valid graph are always valid.
		panic(err)
	}
	mapping := append([]NodeID(nil), keep...)
	return sub, mapping
}

func sortNodeIDs(ids []NodeID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}
