package graph

import (
	"errors"
	"testing"

	"msc/internal/geom"
)

func TestBuilderBasics(t *testing.T) {
	g, err := NewBuilder(3).
		AddEdge(0, 1, 1.5).
		AddEdge(1, 2, 2.5).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 2 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
	if l, ok := g.EdgeLength(1, 0); !ok || l != 1.5 {
		t.Fatalf("EdgeLength(1,0) = %v, %v", l, ok)
	}
	if g.HasEdge(0, 2) {
		t.Fatal("phantom edge")
	}
	if g.Degree(1) != 2 || g.Degree(0) != 1 {
		t.Fatal("degrees wrong")
	}
	if got := g.TotalLength(); got != 4 {
		t.Fatalf("TotalLength = %v", got)
	}
}

func TestBuilderDuplicateKeepsMin(t *testing.T) {
	g := NewBuilder(2).
		AddEdge(0, 1, 3).
		AddEdge(1, 0, 1). // reversed duplicate, smaller
		AddEdge(0, 1, 2).
		MustBuild()
	if g.M() != 1 {
		t.Fatalf("m = %d, want 1", g.M())
	}
	if l, _ := g.EdgeLength(0, 1); l != 1 {
		t.Fatalf("merged length = %v, want 1", l)
	}
}

func TestBuilderErrors(t *testing.T) {
	cases := []struct {
		build func() (*Graph, error)
		want  error
	}{
		{func() (*Graph, error) { return NewBuilder(2).AddEdge(0, 0, 1).Build() }, ErrSelfLoop},
		{func() (*Graph, error) { return NewBuilder(2).AddEdge(0, 2, 1).Build() }, ErrNodeRange},
		{func() (*Graph, error) { return NewBuilder(2).AddEdge(-1, 1, 1).Build() }, ErrNodeRange},
		{func() (*Graph, error) { return NewBuilder(2).AddEdge(0, 1, -1).Build() }, ErrBadLength},
		{func() (*Graph, error) {
			return NewBuilder(2).SetCoords([]geom.Point{{X: 1}}).Build()
		}, ErrCoordCount},
		{func() (*Graph, error) {
			return NewBuilder(2).SetLabels([]string{"a"}).Build()
		}, ErrLabelCount},
	}
	for i, tc := range cases {
		if _, err := tc.build(); !errors.Is(err, tc.want) {
			t.Errorf("case %d: err = %v, want %v", i, err, tc.want)
		}
	}
}

func TestBuilderErrorSticky(t *testing.T) {
	b := NewBuilder(2).AddEdge(0, 0, 1) // error
	b.AddEdge(0, 1, 1)                  // valid but too late
	if _, err := b.Build(); err == nil {
		t.Fatal("sticky error lost")
	}
}

func TestEdgesCanonicalSorted(t *testing.T) {
	g := NewBuilder(4).
		AddEdge(3, 1, 1).
		AddEdge(2, 0, 1).
		AddEdge(1, 0, 1).
		MustBuild()
	edges := g.Edges()
	for i, e := range edges {
		if e.U >= e.V {
			t.Fatalf("edge %d not canonical: %v", i, e)
		}
		if i > 0 {
			prev := edges[i-1]
			if prev.U > e.U || (prev.U == e.U && prev.V >= e.V) {
				t.Fatalf("edges not sorted at %d", i)
			}
		}
	}
}

func TestLabelsAndCoords(t *testing.T) {
	coords := []geom.Point{{X: 0}, {X: 1}}
	g := NewBuilder(2).
		SetCoords(coords).
		SetLabels([]string{"alpha", ""}).
		AddEdge(0, 1, 1).
		MustBuild()
	if g.Label(0) != "alpha" {
		t.Fatalf("Label(0) = %q", g.Label(0))
	}
	if g.Label(1) != "v1" {
		t.Fatalf("Label(1) = %q, want fallback", g.Label(1))
	}
	// Builder must copy the coords.
	coords[0].X = 99
	if g.Coords()[0].X == 99 {
		t.Fatal("builder aliased caller's coords")
	}
}

func TestComponents(t *testing.T) {
	g := NewBuilder(6).
		AddEdge(0, 1, 1).
		AddEdge(1, 2, 1).
		AddEdge(3, 4, 1).
		MustBuild()
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("components = %d, want 3", len(comps))
	}
	if len(comps[0]) != 3 || len(comps[1]) != 2 || len(comps[2]) != 1 {
		t.Fatalf("component sizes wrong: %v", comps)
	}
	if g.Connected() {
		t.Fatal("disconnected graph reported connected")
	}
	largest := g.LargestComponent()
	if len(largest) != 3 || largest[0] != 0 {
		t.Fatalf("largest = %v", largest)
	}
}

func TestConnectedSingleAndEmpty(t *testing.T) {
	if !NewBuilder(0).MustBuild().Connected() {
		t.Fatal("empty graph should be connected")
	}
	if !NewBuilder(1).MustBuild().Connected() {
		t.Fatal("single node should be connected")
	}
}

func TestHopDistances(t *testing.T) {
	g := NewBuilder(5).
		AddEdge(0, 1, 9).
		AddEdge(1, 2, 9).
		AddEdge(0, 3, 9).
		MustBuild()
	d := g.HopDistances(0)
	want := []int{0, 1, 2, 1, -1}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("hop[%d] = %d, want %d", i, d[i], want[i])
		}
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := NewBuilder(5).
		SetCoords([]geom.Point{{X: 0}, {X: 1}, {X: 2}, {X: 3}, {X: 4}}).
		SetLabels([]string{"a", "b", "c", "d", "e"}).
		AddEdge(0, 1, 1).
		AddEdge(1, 2, 2).
		AddEdge(2, 3, 3).
		AddEdge(3, 4, 4).
		MustBuild()
	sub, mapping := g.InducedSubgraph([]NodeID{1, 2, 4})
	if sub.N() != 3 {
		t.Fatalf("sub n = %d", sub.N())
	}
	// Only edge (1,2) survives.
	if sub.M() != 1 {
		t.Fatalf("sub m = %d, want 1", sub.M())
	}
	if l, ok := sub.EdgeLength(0, 1); !ok || l != 2 {
		t.Fatalf("sub edge = %v, %v", l, ok)
	}
	if mapping[2] != 4 {
		t.Fatalf("mapping = %v", mapping)
	}
	if sub.Label(2) != "e" || sub.Coords()[2].X != 4 {
		t.Fatal("labels/coords not carried")
	}
}

func TestEdgeCanon(t *testing.T) {
	e := Edge{U: 5, V: 2, Length: 1}
	c := e.Canon()
	if c.U != 2 || c.V != 5 || c.Length != 1 {
		t.Fatalf("Canon = %v", c)
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBuilder(1).AddEdge(0, 0, 1).MustBuild()
}
