// Package rgg generates Random Geometric graphs, the synthetic workload of
// the paper's evaluation (§VII-A1): n nodes uniform in the unit square,
// connected when within a radius threshold, with distance-proportional link
// failure probabilities.
//
// The paper motivates the model as resembling a social network — RG graphs
// spontaneously exhibit community structure and degree assortativity.
package rgg

import (
	"errors"
	"fmt"

	"msc/internal/geom"
	"msc/internal/graph"
	"msc/internal/netbuild"
	"msc/internal/xrand"
)

// Config parameterizes a random geometric graph.
type Config struct {
	// N is the node count (paper uses 100).
	N int
	// Radius is the connection threshold in the unit square.
	Radius float64
	// FailureAtRadius is the link failure probability at distance exactly
	// Radius (failure scales linearly with distance below it).
	FailureAtRadius float64
	// RequireConnected, when set, redraws positions until the graph is a
	// single connected component (up to MaxAttempts).
	RequireConnected bool
	// MaxAttempts bounds the redraws for RequireConnected (default 100).
	MaxAttempts int
}

// Errors returned by Generate.
var (
	ErrN         = errors.New("rgg: need at least two nodes")
	ErrConnected = errors.New("rgg: could not draw a connected graph")
)

// Generate draws an RG graph. The generator is deterministic in rng.
func Generate(cfg Config, rng *xrand.Rand) (*graph.Graph, error) {
	if cfg.N < 2 {
		return nil, fmt.Errorf("%w: n=%d", ErrN, cfg.N)
	}
	fm := netbuild.FailureModel{Radius: cfg.Radius, FailureAtRadius: cfg.FailureAtRadius}
	if err := fm.Validate(); err != nil {
		return nil, err
	}
	attempts := cfg.MaxAttempts
	if attempts <= 0 {
		attempts = 100
	}
	for try := 0; try < attempts; try++ {
		pts := make([]geom.Point, cfg.N)
		for i := range pts {
			pts[i] = geom.Point{X: rng.Float64(), Y: rng.Float64()}
		}
		g, err := netbuild.Proximity(pts, fm)
		if err != nil {
			return nil, err
		}
		if !cfg.RequireConnected || g.Connected() {
			return g, nil
		}
	}
	return nil, fmt.Errorf("%w after %d attempts (n=%d, radius=%v)", ErrConnected, attempts, cfg.N, cfg.Radius)
}
