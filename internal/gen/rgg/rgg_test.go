package rgg

import (
	"errors"
	"testing"

	"msc/internal/failprob"
	"msc/internal/xrand"
)

func TestGenerateBasics(t *testing.T) {
	g, err := Generate(Config{N: 80, Radius: 0.25, FailureAtRadius: 0.1}, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 80 {
		t.Fatalf("n = %d", g.N())
	}
	coords := g.Coords()
	if coords == nil {
		t.Fatal("no coordinates")
	}
	// Every edge respects the radius and the failure model.
	for _, e := range g.Edges() {
		d := coords[e.U].Dist(coords[e.V])
		if d > 0.25+1e-12 {
			t.Fatalf("edge (%d,%d) spans %v > radius", e.U, e.V, d)
		}
		wantP := 0.1 * d / 0.25
		if got := failprob.ProbFromLength(e.Length); got < wantP-1e-9 || got > wantP+1e-9 {
			t.Fatalf("edge (%d,%d): p = %v, want %v", e.U, e.V, got, wantP)
		}
	}
	// Points live in the unit square.
	for i, p := range coords {
		if p.X < 0 || p.X > 1 || p.Y < 0 || p.Y > 1 {
			t.Fatalf("point %d outside unit square: %v", i, p)
		}
	}
}

func TestGenerateConnected(t *testing.T) {
	g, err := Generate(Config{
		N: 60, Radius: 0.3, FailureAtRadius: 0.1, RequireConnected: true,
	}, xrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if !g.Connected() {
		t.Fatal("RequireConnected produced a disconnected graph")
	}
}

func TestGenerateConnectedFailure(t *testing.T) {
	// A radius this small cannot connect 100 nodes; must give up.
	_, err := Generate(Config{
		N: 100, Radius: 0.01, FailureAtRadius: 0.1,
		RequireConnected: true, MaxAttempts: 3,
	}, xrand.New(3))
	if !errors.Is(err, ErrConnected) {
		t.Fatalf("err = %v, want ErrConnected", err)
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(Config{N: 1, Radius: 0.2, FailureAtRadius: 0.1}, xrand.New(1)); !errors.Is(err, ErrN) {
		t.Fatalf("err = %v, want ErrN", err)
	}
	if _, err := Generate(Config{N: 10, Radius: 0, FailureAtRadius: 0.1}, xrand.New(1)); err == nil {
		t.Fatal("expected radius validation error")
	}
}

func TestDeterministic(t *testing.T) {
	a, err := Generate(Config{N: 50, Radius: 0.25, FailureAtRadius: 0.1}, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Config{N: 50, Radius: 0.25, FailureAtRadius: 0.1}, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if a.M() != b.M() {
		t.Fatal("same seed, different graphs")
	}
	for i, e := range a.Edges() {
		if b.Edges()[i] != e {
			t.Fatal("same seed, different edges")
		}
	}
}

func TestDensityGrowsWithRadius(t *testing.T) {
	small, _ := Generate(Config{N: 100, Radius: 0.1, FailureAtRadius: 0.1}, xrand.New(9))
	large, _ := Generate(Config{N: 100, Radius: 0.3, FailureAtRadius: 0.1}, xrand.New(9))
	if small.M() >= large.M() {
		t.Fatalf("edges: r=0.1 → %d, r=0.3 → %d", small.M(), large.M())
	}
}
