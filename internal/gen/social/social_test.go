package social

import (
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"msc/internal/xrand"
)

func TestGenerateDefault(t *testing.T) {
	net, err := Generate(DefaultConfig(), xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	g := net.Graph
	if g.N() != 134 {
		t.Fatalf("users = %d, want 134", g.N())
	}
	// The paper's subgraph has ~1.9k edges; clustered check-ins should
	// produce the same order of magnitude.
	if g.M() < 400 || g.M() > 4000 {
		t.Fatalf("edges = %d, outside plausible range", g.M())
	}
	if len(net.VenueOf) != g.N() {
		t.Fatal("venue assignment size mismatch")
	}
	solo := 0
	for _, v := range net.VenueOf {
		if v == -1 {
			solo++
		} else if v < 0 || v >= len(net.VenueCenters) {
			t.Fatalf("venue index %d out of range", v)
		}
	}
	if solo == 0 || solo == g.N() {
		t.Fatalf("solo users = %d, want a strict fraction", solo)
	}
}

func TestScaledConfig(t *testing.T) {
	if got, want := ScaledConfig(134), DefaultConfig(); got != want {
		t.Fatalf("ScaledConfig(134) = %+v, want DefaultConfig %+v", got, want)
	}
	if got, want := ScaledConfig(0), DefaultConfig(); got != want {
		t.Fatalf("ScaledConfig(0) = %+v, want DefaultConfig %+v", got, want)
	}
	big := ScaledConfig(13400) // 100× the paper's subgraph
	def := DefaultConfig()
	if big.Users != 13400 {
		t.Fatalf("users = %d", big.Users)
	}
	if big.Venues != 100*def.Venues {
		t.Fatalf("venues = %d, want %d (linear in users)", big.Venues, 100*def.Venues)
	}
	if got, want := big.AreaMeters, def.AreaMeters*10; math.Abs(got-want) > 1e-9 {
		t.Fatalf("area side = %v, want %v (√scale)", got, want)
	}
	// Physical constants stay fixed at any scale.
	if big.ConnectRadiusMeters != def.ConnectRadiusMeters ||
		big.VenueScatterMeters != def.VenueScatterMeters ||
		big.SoloFraction != def.SoloFraction ||
		big.FailureAtRadius != def.FailureAtRadius {
		t.Fatalf("physical constants drifted: %+v", big)
	}
	if tiny := ScaledConfig(3); tiny.Venues < 1 {
		t.Fatalf("tiny scale lost all venues: %+v", tiny)
	}
}

func TestScaledConfigGenerates(t *testing.T) {
	// A 5× city must still generate: same density, bigger downtown.
	cfg := ScaledConfig(670)
	net, err := Generate(cfg, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if net.Graph.N() != 670 {
		t.Fatalf("users = %d", net.Graph.N())
	}
	if len(net.VenueCenters) != cfg.Venues {
		t.Fatalf("venues = %d, want %d", len(net.VenueCenters), cfg.Venues)
	}
	// Density preserved ⇒ degree stays in the defaults' ballpark rather
	// than growing with n.
	if avg := 2 * float64(net.Graph.M()) / 670; avg < 4 || avg > 120 {
		t.Fatalf("average degree %.1f outside the constant-density band", avg)
	}
}

func TestGenerateClusteringStructure(t *testing.T) {
	// Users at the same venue should be far better connected than users at
	// different venues — the property §VII-D's explanation depends on.
	net, err := Generate(DefaultConfig(), xrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	g := net.Graph
	sameEdges, crossEdges := 0, 0
	samePairs, crossPairs := 0, 0
	n := g.N()
	for u := 0; u < n; u++ {
		for w := u + 1; w < n; w++ {
			vu, vw := net.VenueOf[u], net.VenueOf[w]
			if vu < 0 || vw < 0 {
				continue
			}
			has := g.HasEdge(int32(u), int32(w))
			if vu == vw {
				samePairs++
				if has {
					sameEdges++
				}
			} else {
				crossPairs++
				if has {
					crossEdges++
				}
			}
		}
	}
	sameDensity := float64(sameEdges) / float64(samePairs)
	crossDensity := float64(crossEdges) / float64(crossPairs)
	if sameDensity < 10*crossDensity {
		t.Fatalf("intra-venue density %v not ≫ cross-venue %v", sameDensity, crossDensity)
	}
}

func TestGenerateValidation(t *testing.T) {
	rng := xrand.New(1)
	cfg := DefaultConfig()
	cfg.Users = 1
	if _, err := Generate(cfg, rng); !errors.Is(err, ErrUsers) {
		t.Fatalf("err = %v", err)
	}
	cfg = DefaultConfig()
	cfg.Venues = 0
	if _, err := Generate(cfg, rng); !errors.Is(err, ErrVenues) {
		t.Fatalf("err = %v", err)
	}
	cfg = DefaultConfig()
	cfg.SoloFraction = 1.5
	if _, err := Generate(cfg, rng); !errors.Is(err, ErrFraction) {
		t.Fatalf("err = %v", err)
	}
}

const sampleCheckins = `
0	2010-10-01T19:00:00Z	30.2672	-97.7431	101
0	2010-10-01T20:00:00Z	30.2680	-97.7440	102
1	2010-10-01T19:30:00Z	30.2700	-97.7400	103
2	2010-09-30T19:30:00Z	30.2700	-97.7400	103
3	2010-10-01T19:30:00Z	40.7128	-74.0060	200
4	2010-10-01T23:59:00Z	30.2600	-97.7500	104
`

func TestParseCheckinsFilter(t *testing.T) {
	got, err := ParseCheckins(strings.NewReader(sampleCheckins), AustinEvening)
	if err != nil {
		t.Fatal(err)
	}
	// User 2 is out of the time window, user 3 is in New York.
	if len(got) != 3 {
		t.Fatalf("kept %d users, want 3 (%v)", len(got), got)
	}
	// User 0's later check-in wins.
	if got[0].Location != 102 {
		t.Fatalf("user 0 kept location %d, want the latest (102)", got[0].Location)
	}
}

func TestParseCheckinsMalformed(t *testing.T) {
	if _, err := ParseCheckins(strings.NewReader("0 only three fields\n"), CheckinFilter{}); err == nil {
		t.Fatal("expected parse error")
	}
	if _, err := ParseCheckins(strings.NewReader("0\tnot-a-time\t1\t2\t3\n"), CheckinFilter{}); err == nil {
		t.Fatal("expected time parse error")
	}
}

func TestParseFriendships(t *testing.T) {
	in := "0\t1\n1\t0\n2\t3\n4\t4\n"
	fr, err := ParseFriendships(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	// (0,1) deduped, (4,4) self loop dropped.
	if len(fr) != 2 {
		t.Fatalf("friendships = %d, want 2", len(fr))
	}
	if _, ok := fr[[2]int64{0, 1}]; !ok {
		t.Fatal("missing canonical (0,1)")
	}
}

func TestLoadEndToEnd(t *testing.T) {
	edges := "0\t1\n0\t4\n1\t4\n"
	loaded, err := Load(
		strings.NewReader(sampleCheckins),
		strings.NewReader(edges),
		AustinEvening, 2000, 0.4,
	)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Graph.N() != 3 {
		t.Fatalf("nodes = %d, want 3", loaded.Graph.N())
	}
	// Users 0 and 1 are ~100 m apart: connected at radius 2000 m.
	if loaded.Graph.M() == 0 {
		t.Fatal("no proximity edges")
	}
	// Friendships restricted to loaded users {0, 1, 4} → node ids
	// {0, 1, 2}: all three of (0,1), (0,4), (1,4) survive.
	if len(loaded.Friends) != 3 {
		t.Fatalf("friends = %v", loaded.Friends)
	}
	for _, f := range loaded.Friends {
		if f[0] >= f[1] || int(f[1]) >= loaded.Graph.N() {
			t.Fatalf("friend pair %v not canonical node ids", f)
		}
	}
}

func TestHaversine(t *testing.T) {
	// Austin to Dallas ≈ 290 km.
	d := HaversineMeters(30.2672, -97.7431, 32.7767, -96.7970)
	if d < 250000 || d > 330000 {
		t.Fatalf("Austin-Dallas = %v m", d)
	}
	if HaversineMeters(10, 20, 10, 20) != 0 {
		t.Fatal("self distance nonzero")
	}
}

func TestAustinEveningWindow(t *testing.T) {
	in := AustinEvening
	if !in.From.Before(in.To) {
		t.Fatal("window inverted")
	}
	if in.To.Sub(in.From) != 6*time.Hour {
		t.Fatalf("window = %v, want 6h", in.To.Sub(in.From))
	}
}
