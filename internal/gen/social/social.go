// Package social generates (and loads) location-based social network
// workloads in the style of the SNAP Gowalla dataset used by the paper's
// evaluation (§VII-A1).
//
// The paper extracts the users who checked in near Austin, TX between 6pm
// and midnight on Oct 1 2010 (134 nodes, 1886 edges, 63–76 important
// pairs) and connects users whose check-in locations are within 200 m.
// That subgraph's decisive structural property — called out explicitly in
// §VII-D — is co-location clustering: "groups of people may share the same
// location if they are participating in the same activity (e.g., having
// dinner in the same restaurant)", which lets one shortcut between two
// groups maintain several social connections at once.
//
// Generate reproduces exactly that structure synthetically: users cluster
// at venues (restaurants, bars, event sites) with Gaussian scatter, a
// fraction of users roam solo, and the proximity rule plus the
// distance-proportional failure model of internal/netbuild build the
// communication graph. Load ingests the real SNAP files when available.
package social

import (
	"errors"
	"fmt"
	"math"

	"msc/internal/geom"
	"msc/internal/graph"
	"msc/internal/netbuild"
	"msc/internal/xrand"
)

// Config parameterizes the synthetic location-based social network.
type Config struct {
	// Users is the number of people who checked in (paper subgraph: 134).
	Users int
	// Venues is the number of activity clusters (restaurants, bars, ...).
	Venues int
	// AreaMeters is the side of the square downtown region, in meters.
	AreaMeters float64
	// VenueScatterMeters is the Gaussian std-dev of check-in positions
	// around their venue (people inside the same restaurant).
	VenueScatterMeters float64
	// SoloFraction is the share of users not attached to any venue,
	// scattered uniformly (pedestrians, drivers).
	SoloFraction float64
	// ConnectRadiusMeters joins two users whose check-ins are within this
	// distance (paper uses 200 m).
	ConnectRadiusMeters float64
	// FailureAtRadius is the link failure probability at the connect
	// radius (failure scales linearly with distance).
	FailureAtRadius float64
	// RequireConnected redraws until the proximity graph is connected.
	RequireConnected bool
	// MaxAttempts bounds redraws (default 100).
	MaxAttempts int
}

// DefaultConfig mirrors the scale of the paper's Gowalla subgraph. The
// resulting proximity graph is deliberately NOT required to be connected:
// venue clusters form dense islands with sparse bridges, exactly the
// structure that makes inter-group shortcuts valuable (§VII-D).
func DefaultConfig() Config {
	return Config{
		Users:               134,
		Venues:              9,
		AreaMeters:          2500,
		VenueScatterMeters:  35,
		SoloFraction:        0.18,
		ConnectRadiusMeters: 200,
		FailureAtRadius:     0.45,
	}
}

// ScaledConfig scales DefaultConfig to a target user count at constant
// check-in density: venues grow linearly with users (same crowd per
// venue) and the downtown square's side grows as √scale (same venues per
// km²), while the physical constants — connect radius, venue scatter,
// solo fraction, failure-at-radius — stay at the paper's values, since
// they describe radios and restaurants, not city size. The result keeps
// the §VII-D structure (dense venue islands, sparse bridges) at
// Gowalla-city scale and beyond; ScaledConfig(134) is DefaultConfig()
// exactly, and non-positive users fall back to the defaults too.
func ScaledConfig(users int) Config {
	cfg := DefaultConfig()
	if users <= 0 {
		return cfg
	}
	scale := float64(users) / float64(cfg.Users)
	cfg.Users = users
	if v := int(math.Round(float64(cfg.Venues) * scale)); v >= 1 {
		cfg.Venues = v
	} else {
		cfg.Venues = 1
	}
	cfg.AreaMeters *= math.Sqrt(scale)
	return cfg
}

// Network is a generated location-based social network.
type Network struct {
	Graph *graph.Graph
	// VenueOf[u] is the venue index of user u, or -1 for solo users.
	VenueOf []int
	// VenueCenters are the venue positions.
	VenueCenters []geom.Point
}

// Errors returned by Generate.
var (
	ErrUsers     = errors.New("social: need at least two users")
	ErrVenues    = errors.New("social: need at least one venue")
	ErrFraction  = errors.New("social: solo fraction must lie in [0, 1]")
	ErrConnected = errors.New("social: could not draw a connected network")
)

// Generate draws a synthetic location-based social network. Deterministic
// in rng.
func Generate(cfg Config, rng *xrand.Rand) (*Network, error) {
	switch {
	case cfg.Users < 2:
		return nil, fmt.Errorf("%w: %d", ErrUsers, cfg.Users)
	case cfg.Venues < 1:
		return nil, fmt.Errorf("%w: %d", ErrVenues, cfg.Venues)
	case cfg.SoloFraction < 0 || cfg.SoloFraction > 1:
		return nil, fmt.Errorf("%w: %v", ErrFraction, cfg.SoloFraction)
	}
	fm := netbuild.FailureModel{Radius: cfg.ConnectRadiusMeters, FailureAtRadius: cfg.FailureAtRadius}
	if err := fm.Validate(); err != nil {
		return nil, err
	}
	attempts := cfg.MaxAttempts
	if attempts <= 0 {
		attempts = 100
	}
	area := geom.Rect{MinX: 0, MinY: 0, MaxX: cfg.AreaMeters, MaxY: cfg.AreaMeters}
	for try := 0; try < attempts; try++ {
		net, err := draw(cfg, area, fm, rng)
		if err != nil {
			return nil, err
		}
		if !cfg.RequireConnected || net.Graph.Connected() {
			return net, nil
		}
	}
	return nil, fmt.Errorf("%w after %d attempts", ErrConnected, attempts)
}

func draw(cfg Config, area geom.Rect, fm netbuild.FailureModel, rng *xrand.Rand) (*Network, error) {
	centers := make([]geom.Point, cfg.Venues)
	for i := range centers {
		centers[i] = geom.Point{
			X: area.MinX + rng.Float64()*area.Width(),
			Y: area.MinY + rng.Float64()*area.Height(),
		}
	}
	// Venue popularity: proportional to 1/(rank+1), a Zipf-flavored skew —
	// a few big venues (concerts, stadiums) and many small ones, matching
	// check-in distributions observed on Gowalla.
	weights := make([]float64, cfg.Venues)
	total := 0.0
	for i := range weights {
		weights[i] = 1 / float64(i+1)
		total += weights[i]
	}
	pts := make([]geom.Point, cfg.Users)
	venueOf := make([]int, cfg.Users)
	for u := range pts {
		if rng.Float64() < cfg.SoloFraction {
			venueOf[u] = -1
			pts[u] = geom.Point{
				X: area.MinX + rng.Float64()*area.Width(),
				Y: area.MinY + rng.Float64()*area.Height(),
			}
			continue
		}
		v := sampleWeighted(weights, total, rng)
		venueOf[u] = v
		pts[u] = area.Clamp(geom.Point{
			X: centers[v].X + rng.NormFloat64()*cfg.VenueScatterMeters,
			Y: centers[v].Y + rng.NormFloat64()*cfg.VenueScatterMeters,
		})
	}
	g, err := netbuild.Proximity(pts, fm)
	if err != nil {
		return nil, err
	}
	return &Network{Graph: g, VenueOf: venueOf, VenueCenters: centers}, nil
}

func sampleWeighted(weights []float64, total float64, rng *xrand.Rand) int {
	x := rng.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}
