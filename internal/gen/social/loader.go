package social

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"time"

	"msc/internal/geom"
	"msc/internal/graph"
	"msc/internal/netbuild"
)

// This file ingests the real SNAP loc-gowalla dataset for users who have
// it: Gowalla_totalCheckins.txt ("user\ttime\tlat\tlon\tlocation_id") and
// Gowalla_edges.txt ("user\tuser"). The paper filters check-ins to a time
// window and a geographic region (6pm–midnight Oct 1 2010, near Austin,
// TX), keeps each remaining user's check-in position, and connects users
// within 200 m.

// Checkin is one parsed check-in record.
type Checkin struct {
	User     int64
	Time     time.Time
	Lat, Lon float64
	Location int64
}

// CheckinFilter selects the check-ins to keep.
type CheckinFilter struct {
	// From/To bound the check-in time (inclusive); zero values disable the
	// bound.
	From, To time.Time
	// CenterLat/CenterLon and RadiusMeters bound the location;
	// RadiusMeters == 0 disables the bound.
	CenterLat, CenterLon float64
	RadiusMeters         float64
}

// AustinEvening is the paper's filter: check-ins between 6pm and midnight
// (local, stored as UTC in the dataset dumps) on Oct 1 2010 within 30 km of
// downtown Austin, TX.
var AustinEvening = CheckinFilter{
	From:         time.Date(2010, 10, 1, 18, 0, 0, 0, time.UTC),
	To:           time.Date(2010, 10, 2, 0, 0, 0, 0, time.UTC),
	CenterLat:    30.2672,
	CenterLon:    -97.7431,
	RadiusMeters: 30000,
}

// ErrNoCheckins is returned when the filter leaves fewer than two users.
var ErrNoCheckins = errors.New("social: filter left fewer than two users")

// ParseCheckins reads SNAP check-in lines, keeping records that pass the
// filter. Later check-ins overwrite earlier ones per user (the user's most
// recent position in the window wins). Malformed lines produce errors.
func ParseCheckins(r io.Reader, filter CheckinFilter) (map[int64]Checkin, error) {
	latest := make(map[int64]Checkin)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		c, err := parseCheckinLine(line)
		if err != nil {
			return nil, fmt.Errorf("social: line %d: %w", lineNo, err)
		}
		if !filter.keep(c) {
			continue
		}
		if prev, ok := latest[c.User]; !ok || c.Time.After(prev.Time) {
			latest[c.User] = c
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("social: read checkins: %w", err)
	}
	return latest, nil
}

func parseCheckinLine(line string) (Checkin, error) {
	fields := strings.Fields(line)
	if len(fields) != 5 {
		return Checkin{}, fmt.Errorf("want 5 fields, got %d", len(fields))
	}
	user, err := strconv.ParseInt(fields[0], 10, 64)
	if err != nil {
		return Checkin{}, fmt.Errorf("user: %w", err)
	}
	ts, err := time.Parse(time.RFC3339, fields[1])
	if err != nil {
		// SNAP dumps use "2010-10-19T23:55:27Z"; fall back to a legacy
		// space-separated form just in case.
		ts, err = time.Parse("2006-01-02 15:04:05", fields[1])
		if err != nil {
			return Checkin{}, fmt.Errorf("time: %w", err)
		}
	}
	lat, err := strconv.ParseFloat(fields[2], 64)
	if err != nil {
		return Checkin{}, fmt.Errorf("lat: %w", err)
	}
	lon, err := strconv.ParseFloat(fields[3], 64)
	if err != nil {
		return Checkin{}, fmt.Errorf("lon: %w", err)
	}
	loc, err := strconv.ParseInt(fields[4], 10, 64)
	if err != nil {
		return Checkin{}, fmt.Errorf("location: %w", err)
	}
	return Checkin{User: user, Time: ts, Lat: lat, Lon: lon, Location: loc}, nil
}

func (f CheckinFilter) keep(c Checkin) bool {
	if !f.From.IsZero() && c.Time.Before(f.From) {
		return false
	}
	if !f.To.IsZero() && c.Time.After(f.To) {
		return false
	}
	if f.RadiusMeters > 0 {
		if HaversineMeters(c.Lat, c.Lon, f.CenterLat, f.CenterLon) > f.RadiusMeters {
			return false
		}
	}
	return true
}

// ParseFriendships reads SNAP edge lines ("user\tuser") into undirected
// friend pairs keyed canonically (low id first).
func ParseFriendships(r io.Reader) (map[[2]int64]struct{}, error) {
	out := make(map[[2]int64]struct{})
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("social: edges line %d: want 2 fields, got %d", lineNo, len(fields))
		}
		a, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("social: edges line %d: %w", lineNo, err)
		}
		b, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("social: edges line %d: %w", lineNo, err)
		}
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		out[[2]int64{a, b}] = struct{}{}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("social: read edges: %w", err)
	}
	return out, nil
}

// Loaded is a network built from real SNAP data.
type Loaded struct {
	Graph *graph.Graph
	// UserIDs maps node id -> original SNAP user id.
	UserIDs []int64
	// Friends holds the friendship pairs restricted to loaded users, as
	// node-id pairs; useful for picking important social pairs.
	Friends [][2]graph.NodeID
}

// Load builds the proximity communication graph from SNAP check-in and
// (optionally nil) friendship streams: filter check-ins, project each kept
// user's position to local meters around the filter center, and connect
// users within connectRadiusMeters with distance-proportional link
// failures.
func Load(checkins io.Reader, friendships io.Reader, filter CheckinFilter,
	connectRadiusMeters, failureAtRadius float64) (*Loaded, error) {
	latest, err := ParseCheckins(checkins, filter)
	if err != nil {
		return nil, err
	}
	if len(latest) < 2 {
		return nil, fmt.Errorf("%w: %d users", ErrNoCheckins, len(latest))
	}
	users := make([]int64, 0, len(latest))
	for u := range latest {
		users = append(users, u)
	}
	sortInt64s(users)
	pts := make([]geom.Point, len(users))
	labels := make([]string, len(users))
	nodeOf := make(map[int64]graph.NodeID, len(users))
	for i, u := range users {
		c := latest[u]
		pts[i] = projectMeters(c.Lat, c.Lon, filter.CenterLat, filter.CenterLon)
		labels[i] = "user" + strconv.FormatInt(u, 10)
		nodeOf[u] = graph.NodeID(i)
	}
	fm := netbuild.FailureModel{Radius: connectRadiusMeters, FailureAtRadius: failureAtRadius}
	g, err := netbuild.Proximity(pts, fm)
	if err != nil {
		return nil, err
	}
	// Re-attach labels (Proximity sets coords only).
	gb := graph.NewBuilder(g.N())
	gb.SetCoords(pts)
	gb.SetLabels(labels)
	for _, e := range g.Edges() {
		gb.AddEdge(e.U, e.V, e.Length)
	}
	g, err = gb.Build()
	if err != nil {
		return nil, err
	}
	loaded := &Loaded{Graph: g, UserIDs: users}
	if friendships != nil {
		fr, err := ParseFriendships(friendships)
		if err != nil {
			return nil, err
		}
		for key := range fr {
			a, okA := nodeOf[key[0]]
			b, okB := nodeOf[key[1]]
			if okA && okB {
				loaded.Friends = append(loaded.Friends, [2]graph.NodeID{a, b})
			}
		}
		sortFriendPairs(loaded.Friends)
	}
	return loaded, nil
}

// HaversineMeters returns the great-circle distance between two lat/lon
// points in meters.
func HaversineMeters(lat1, lon1, lat2, lon2 float64) float64 {
	const earthRadius = 6371000.0
	toRad := math.Pi / 180
	dLat := (lat2 - lat1) * toRad
	dLon := (lon2 - lon1) * toRad
	a := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(lat1*toRad)*math.Cos(lat2*toRad)*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * earthRadius * math.Asin(math.Min(1, math.Sqrt(a)))
}

// projectMeters maps lat/lon to a local tangent-plane approximation in
// meters centered on (clat, clon): fine at city scale.
func projectMeters(lat, lon, clat, clon float64) geom.Point {
	const earthRadius = 6371000.0
	toRad := math.Pi / 180
	x := (lon - clon) * toRad * earthRadius * math.Cos(clat*toRad)
	y := (lat - clat) * toRad * earthRadius
	return geom.Point{X: x, Y: y}
}

func sortInt64s(xs []int64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func sortFriendPairs(ps [][2]graph.NodeID) {
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && lessPair(ps[j], ps[j-1]); j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
}

func lessPair(a, b [2]graph.NodeID) bool {
	if a[0] != b[0] {
		return a[0] < b[0]
	}
	return a[1] < b[1]
}
