package baselines

import (
	"math"
	"testing"

	"msc/internal/graph"
	"msc/internal/shortestpath"
	"msc/internal/xrand"
)

func lineGraph(t *testing.T, n int) (*graph.Graph, *shortestpath.Table) {
	t.Helper()
	b := graph.NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID(i+1), 1)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g, shortestpath.NewTable(g, 0)
}

func diameter(g *graph.Graph, table *shortestpath.Table, placed []graph.Edge) float64 {
	ov := shortestpath.NewOverlay(table, placed)
	n := g.N()
	row := make([]float64, n)
	worst := 0.0
	for u := 0; u < n; u++ {
		ov.DistRow(graph.NodeID(u), row)
		for v := u + 1; v < n; v++ {
			if row[v] > worst {
				worst = row[v]
			}
		}
	}
	return worst
}

func TestFarthestPairsShrinksDiameter(t *testing.T) {
	g, table := lineGraph(t, 12) // diameter 11
	before := diameter(g, table, nil)
	placed := FarthestPairs(g, table, 2)
	if len(placed) != 2 {
		t.Fatalf("placed %d edges", len(placed))
	}
	// First shortcut must connect the line's endpoints.
	if placed[0].U != 0 || placed[0].V != 11 {
		t.Fatalf("first shortcut = %v, want (0, 11)", placed[0])
	}
	after := diameter(g, table, placed)
	if after >= before/2 {
		t.Fatalf("diameter %v -> %v: expected a large reduction", before, after)
	}
}

func TestFarthestPairsBridgesComponents(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1, 1)
	b.AddEdge(2, 3, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	table := shortestpath.NewTable(g, 0)
	placed := FarthestPairs(g, table, 1)
	if len(placed) != 1 {
		t.Fatal("no shortcut placed")
	}
	ov := shortestpath.NewOverlay(table, placed)
	if math.IsInf(ov.Dist(0, 3), 1) {
		t.Fatalf("placement %v left components disconnected", placed)
	}
}

func TestFarthestPairsStopsAtZeroDiameter(t *testing.T) {
	b := graph.NewBuilder(2)
	b.AddEdge(0, 1, 0)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	table := shortestpath.NewTable(g, 0)
	if placed := FarthestPairs(g, table, 3); len(placed) != 0 {
		t.Fatalf("placed %v on a zero-diameter graph", placed)
	}
}

func TestAvgDistanceGreedyReducesSampledMean(t *testing.T) {
	g, table := lineGraph(t, 16)
	rng := xrand.New(1)
	placed := AvgDistanceGreedy(g, table, 3, 200, rng)
	if len(placed) == 0 {
		t.Fatal("nothing placed")
	}
	mean := func(edges []graph.Edge) float64 {
		ov := shortestpath.NewOverlay(table, edges)
		total, count := 0.0, 0
		for u := 0; u < g.N(); u++ {
			for v := u + 1; v < g.N(); v++ {
				total += ov.Dist(graph.NodeID(u), graph.NodeID(v))
				count++
			}
		}
		return total / float64(count)
	}
	if after, before := mean(placed), mean(nil); after >= before {
		t.Fatalf("mean distance %v -> %v: no improvement", before, after)
	}
}

func TestAvgDistanceGreedyDeterministic(t *testing.T) {
	g, table := lineGraph(t, 14)
	a := AvgDistanceGreedy(g, table, 2, 150, xrand.New(5))
	b := AvgDistanceGreedy(g, table, 2, 150, xrand.New(5))
	if len(a) != len(b) {
		t.Fatal("different lengths")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed, different placement")
		}
	}
}

func TestAvgDistanceGreedyTinyGraph(t *testing.T) {
	b := graph.NewBuilder(2)
	b.AddEdge(0, 1, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	table := shortestpath.NewTable(g, 0)
	placed := AvgDistanceGreedy(g, table, 2, 50, xrand.New(1))
	// Only one candidate (0,1); placing it drops the mean to 0, the
	// second round finds no further gain.
	if len(placed) > 1 {
		t.Fatalf("placed %v", placed)
	}
}
