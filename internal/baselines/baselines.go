// Package baselines implements the all-pairs-oriented shortcut placement
// strategies from the paper's related work, used as comparison points:
//
//   - FarthestPairs follows the diameter-minimization line of Meyerson &
//     Tagiku (reference [7]): repeatedly connect the currently farthest
//     node pair with a zero-length shortcut.
//   - AvgDistanceGreedy follows the average-shortest-path-minimization
//     line (references [8], [17]): greedily pick the shortcut with the
//     largest estimated reduction in mean pairwise distance, estimated
//     over a node-pair sample with the single-extra-shortcut identity
//     d_{F∪{f}}(u,w) = min(d_F(u,w), d_F(u,a)+d_F(b,w), d_F(u,b)+d_F(a,w)).
//
// The paper's argument (§I, §II) is that such placements waste shortcut
// budget on unimportant pairs; the ext1 experiment quantifies exactly
// that: how many IMPORTANT pairs these all-pairs strategies maintain
// compared to the MSC-aware algorithms.
package baselines

import (
	"math"

	"msc/internal/graph"
	"msc/internal/shortestpath"
	"msc/internal/xrand"
)

// FarthestPairs places k shortcuts, each connecting the farthest pair of
// the current augmented graph. Among infinitely-separated pairs
// (disconnected components) it prefers the lexicographically smallest,
// which deterministically stitches components together first.
func FarthestPairs(g *graph.Graph, table *shortestpath.Table, k int) []graph.Edge {
	n := g.N()
	placed := make([]graph.Edge, 0, k)
	for len(placed) < k {
		ov := shortestpath.NewOverlay(table, placed)
		bestU, bestV := -1, -1
		bestD := -1.0
		row := make([]float64, n)
		for u := 0; u < n; u++ {
			ov.DistRow(graph.NodeID(u), row)
			for v := u + 1; v < n; v++ {
				d := row[v]
				if math.IsInf(d, 1) {
					// Disconnected: maximal separation; take the first.
					if !math.IsInf(bestD, 1) {
						bestU, bestV, bestD = u, v, math.Inf(1)
					}
					continue
				}
				if d > bestD && !math.IsInf(bestD, 1) {
					bestU, bestV, bestD = u, v, d
				}
			}
		}
		if bestU < 0 || bestD == 0 {
			break // diameter already 0: nothing left to shrink
		}
		placed = append(placed, graph.Edge{U: graph.NodeID(bestU), V: graph.NodeID(bestV)})
	}
	return placed
}

// AvgDistanceGreedy places k shortcuts greedily minimizing the average
// pairwise distance, estimated on sampleSize uniformly drawn node pairs.
// Unreachable sample pairs contribute a large finite penalty (twice the
// largest finite distance) so that reconnecting components counts.
func AvgDistanceGreedy(g *graph.Graph, table *shortestpath.Table, k, sampleSize int, rng *xrand.Rand) []graph.Edge {
	n := g.N()
	if n < 2 {
		return nil
	}
	type samplePair struct{ u, w graph.NodeID }
	samples := make([]samplePair, 0, sampleSize)
	for len(samples) < sampleSize {
		u := graph.NodeID(rng.Intn(n))
		w := graph.NodeID(rng.Intn(n))
		if u != w {
			samples = append(samples, samplePair{u: u, w: w})
		}
	}
	// Penalty for disconnection: beyond any finite distance.
	maxFinite := 0.0
	for u := 0; u < n; u++ {
		for _, d := range table.Row(graph.NodeID(u)) {
			if !math.IsInf(d, 1) && d > maxFinite {
				maxFinite = d
			}
		}
	}
	penalty := 2*maxFinite + 1

	clampDist := func(d float64) float64 {
		if math.IsInf(d, 1) || d > penalty {
			return penalty
		}
		return d
	}

	placed := make([]graph.Edge, 0, k)
	// Distance rows from each distinct sample endpoint under the current
	// placement; refreshed after every selection.
	endpoints := make([]graph.NodeID, 0, 2*len(samples))
	seen := map[graph.NodeID]int{}
	idx := func(v graph.NodeID) int {
		if i, ok := seen[v]; ok {
			return i
		}
		i := len(endpoints)
		seen[v] = i
		endpoints = append(endpoints, v)
		return i
	}
	type sampleIdx struct{ ui, wi int }
	sIdx := make([]sampleIdx, len(samples))
	for i, s := range samples {
		sIdx[i] = sampleIdx{ui: idx(s.u), wi: idx(s.w)}
	}
	rows := make([][]float64, len(endpoints))
	for i := range rows {
		rows[i] = make([]float64, n)
	}

	for len(placed) < k {
		ov := shortestpath.NewOverlay(table, placed)
		for i, e := range endpoints {
			ov.DistRow(e, rows[i])
		}
		// Scan every candidate (a, b): total sampled distance after
		// adding it, using the single-extra-shortcut identity.
		bestA, bestB := -1, -1
		bestTotal := math.Inf(1)
		baseTotal := 0.0
		for i := range samples {
			baseTotal += clampDist(rows[sIdx[i].ui][samples[i].w])
		}
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				total := 0.0
				for i := range samples {
					ru := rows[sIdx[i].ui]
					rw := rows[sIdx[i].wi]
					d := ru[samples[i].w]
					if via := ru[a] + rw[b]; via < d {
						d = via
					}
					if via := ru[b] + rw[a]; via < d {
						d = via
					}
					total += clampDist(d)
				}
				if total < bestTotal {
					bestA, bestB, bestTotal = a, b, total
				}
			}
		}
		if bestA < 0 || bestTotal >= baseTotal {
			break // no candidate reduces the sampled average
		}
		placed = append(placed, graph.Edge{U: graph.NodeID(bestA), V: graph.NodeID(bestB)})
	}
	return placed
}
