// Package bitset implements a compact dynamic bit set.
//
// The coverage-based objective functions in the MSC solver (the lower bound
// μ and the upper bound ν from §V-B of the paper) repeatedly union
// per-shortcut "satisfied pair" sets and count their cardinality. A word-
// packed bit set makes those unions O(m/64) instead of O(m).
package bitset

import (
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a fixed-capacity bit set over the universe [0, Len()). The zero
// value is an empty set of capacity 0; use New for a sized set.
type Set struct {
	words []uint64
	n     int
}

// New returns an empty set over the universe [0, n).
func New(n int) *Set {
	if n < 0 {
		panic("bitset: negative size")
	}
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// FromIndices returns a set over [0, n) with exactly the given bits set.
// Indices out of range cause a panic.
func FromIndices(n int, indices []int) *Set {
	s := New(n)
	for _, i := range indices {
		s.Add(i)
	}
	return s
}

// Len returns the size of the universe.
func (s *Set) Len() int { return s.n }

// Add sets bit i. It panics if i is out of range.
func (s *Set) Add(i int) {
	s.check(i)
	s.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Remove clears bit i. It panics if i is out of range.
func (s *Set) Remove(i int) {
	s.check(i)
	s.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// Contains reports whether bit i is set. It panics if i is out of range.
func (s *Set) Contains(i int) bool {
	s.check(i)
	return s.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

func (s *Set) check(i int) {
	if i < 0 || i >= s.n {
		panic("bitset: index out of range")
	}
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	total := 0
	for _, w := range s.words {
		total += bits.OnesCount64(w)
	}
	return total
}

// Clone returns an independent copy of s.
func (s *Set) Clone() *Set {
	words := make([]uint64, len(s.words))
	copy(words, s.words)
	return &Set{words: words, n: s.n}
}

// Clear removes every element, keeping capacity.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// UnionWith sets s = s ∪ other. Both sets must share a universe size.
func (s *Set) UnionWith(other *Set) {
	s.checkCompat(other)
	for i, w := range other.words {
		s.words[i] |= w
	}
}

// IntersectWith sets s = s ∩ other. Both sets must share a universe size.
func (s *Set) IntersectWith(other *Set) {
	s.checkCompat(other)
	for i, w := range other.words {
		s.words[i] &= w
	}
}

// DifferenceWith sets s = s \ other. Both sets must share a universe size.
func (s *Set) DifferenceWith(other *Set) {
	s.checkCompat(other)
	for i, w := range other.words {
		s.words[i] &^= w
	}
}

// UnionCount returns |s ∪ other| without allocating.
func (s *Set) UnionCount(other *Set) int {
	s.checkCompat(other)
	total := 0
	for i, w := range other.words {
		total += bits.OnesCount64(s.words[i] | w)
	}
	return total
}

// AndNotCount returns |other \ s|: the number of bits set in other but not
// in s. This is the marginal gain used by the greedy coverage solvers.
func (s *Set) AndNotCount(other *Set) int {
	s.checkCompat(other)
	total := 0
	for i, w := range other.words {
		total += bits.OnesCount64(w &^ s.words[i])
	}
	return total
}

// Equal reports whether the two sets contain exactly the same elements.
func (s *Set) Equal(other *Set) bool {
	if s.n != other.n {
		return false
	}
	for i, w := range s.words {
		if w != other.words[i] {
			return false
		}
	}
	return true
}

// Indices returns the set elements in ascending order.
func (s *Set) Indices() []int {
	out := make([]int, 0, s.Count())
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, wi*wordBits+b)
			w &= w - 1
		}
	}
	return out
}

// ForEach calls fn for every set bit in ascending order.
func (s *Set) ForEach(fn func(i int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi*wordBits + b)
			w &= w - 1
		}
	}
}

// String renders the set as "{1, 5, 9}" for debugging.
func (s *Set) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	first := true
	s.ForEach(func(i int) {
		if !first {
			sb.WriteString(", ")
		}
		first = false
		writeInt(&sb, i)
	})
	sb.WriteByte('}')
	return sb.String()
}

func (s *Set) checkCompat(other *Set) {
	if s.n != other.n {
		panic("bitset: mismatched universe sizes")
	}
}

func writeInt(sb *strings.Builder, v int) {
	if v == 0 {
		sb.WriteByte('0')
		return
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	sb.Write(buf[i:])
}
