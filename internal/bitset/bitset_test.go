package bitset

import (
	"testing"
	"testing/quick"
)

func TestBasicOps(t *testing.T) {
	s := New(130) // spans three words
	if s.Len() != 130 || s.Count() != 0 {
		t.Fatalf("new set: len=%d count=%d", s.Len(), s.Count())
	}
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		s.Add(i)
		if !s.Contains(i) {
			t.Fatalf("Contains(%d) false after Add", i)
		}
	}
	if s.Count() != 8 {
		t.Fatalf("count = %d, want 8", s.Count())
	}
	s.Remove(64)
	if s.Contains(64) || s.Count() != 7 {
		t.Fatalf("remove failed: contains=%v count=%d", s.Contains(64), s.Count())
	}
	// Removing an absent element is a no-op.
	s.Remove(64)
	if s.Count() != 7 {
		t.Fatalf("double remove changed count to %d", s.Count())
	}
}

func TestAddDuplicateIdempotent(t *testing.T) {
	s := New(10)
	s.Add(3)
	s.Add(3)
	if s.Count() != 1 {
		t.Fatalf("count = %d, want 1", s.Count())
	}
}

func TestOutOfRangePanics(t *testing.T) {
	s := New(5)
	for _, fn := range []func(){
		func() { s.Add(5) },
		func() { s.Add(-1) },
		func() { s.Contains(5) },
		func() { s.Remove(99) },
	} {
		assertPanics(t, fn)
	}
}

func assertPanics(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	fn()
}

func TestSetAlgebra(t *testing.T) {
	a := FromIndices(100, []int{1, 5, 70, 99})
	bs := FromIndices(100, []int{5, 6, 70})

	union := a.Clone()
	union.UnionWith(bs)
	if got := union.Indices(); !equalInts(got, []int{1, 5, 6, 70, 99}) {
		t.Fatalf("union = %v", got)
	}
	inter := a.Clone()
	inter.IntersectWith(bs)
	if got := inter.Indices(); !equalInts(got, []int{5, 70}) {
		t.Fatalf("intersection = %v", got)
	}
	diff := a.Clone()
	diff.DifferenceWith(bs)
	if got := diff.Indices(); !equalInts(got, []int{1, 99}) {
		t.Fatalf("difference = %v", got)
	}
	if got := a.UnionCount(bs); got != 5 {
		t.Fatalf("UnionCount = %d, want 5", got)
	}
	if got := a.AndNotCount(bs); got != 1 { // bs \ a = {6}
		t.Fatalf("AndNotCount = %d, want 1", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := FromIndices(10, []int{2, 4})
	b := a.Clone()
	b.Add(7)
	if a.Contains(7) {
		t.Fatal("clone mutated original")
	}
	if !a.Equal(FromIndices(10, []int{2, 4})) {
		t.Fatal("original changed")
	}
}

func TestEqual(t *testing.T) {
	a := FromIndices(64, []int{0, 63})
	b := FromIndices(64, []int{0, 63})
	c := FromIndices(65, []int{0, 63})
	if !a.Equal(b) {
		t.Fatal("equal sets not Equal")
	}
	if a.Equal(c) {
		t.Fatal("different universes Equal")
	}
	b.Add(1)
	if a.Equal(b) {
		t.Fatal("different sets Equal")
	}
}

func TestClear(t *testing.T) {
	s := FromIndices(70, []int{0, 69})
	s.Clear()
	if s.Count() != 0 || s.Len() != 70 {
		t.Fatalf("clear: count=%d len=%d", s.Count(), s.Len())
	}
}

func TestString(t *testing.T) {
	s := FromIndices(20, []int{1, 5, 19})
	if got := s.String(); got != "{1, 5, 19}" {
		t.Fatalf("String = %q", got)
	}
	if got := New(3).String(); got != "{}" {
		t.Fatalf("empty String = %q", got)
	}
}

func TestMismatchedUniversePanics(t *testing.T) {
	a, b := New(10), New(11)
	assertPanics(t, func() { a.UnionWith(b) })
	assertPanics(t, func() { a.UnionCount(b) })
}

// Property: for random index sets, Count/Indices/union semantics agree
// with a map-based reference implementation.
func TestQuickAgainstMapReference(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		const n = 1 << 16
		a, b := New(n), New(n)
		ma, mb := map[int]bool{}, map[int]bool{}
		for _, x := range xs {
			a.Add(int(x))
			ma[int(x)] = true
		}
		for _, y := range ys {
			b.Add(int(y))
			mb[int(y)] = true
		}
		if a.Count() != len(ma) {
			return false
		}
		union := map[int]bool{}
		for k := range ma {
			union[k] = true
		}
		for k := range mb {
			union[k] = true
		}
		if a.UnionCount(b) != len(union) {
			return false
		}
		onlyB := 0
		for k := range mb {
			if !ma[k] {
				onlyB++
			}
		}
		return a.AndNotCount(b) == onlyB
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: ForEach visits exactly Indices() in order.
func TestQuickForEachMatchesIndices(t *testing.T) {
	f := func(xs []uint8) bool {
		s := New(256)
		for _, x := range xs {
			s.Add(int(x))
		}
		var visited []int
		s.ForEach(func(i int) { visited = append(visited, i) })
		return equalInts(visited, s.Indices())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
