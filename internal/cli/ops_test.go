package cli

import (
	"flag"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"msc/internal/obs"
	"msc/internal/telemetry"
)

func TestOpsFlagsDisabledPlaneIsNil(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	o := AddOpsFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	plane, err := o.Start("x")
	if err != nil {
		t.Fatal(err)
	}
	if plane != nil {
		t.Fatal("Start with no ops flags returned a live plane")
	}
	// Every method must be nil-safe: the commands call them unconditionally.
	if plane.Sink() != nil {
		t.Fatal("nil plane Sink() != nil")
	}
	plane.Attach(telemetry.NewRing(1))
	plane.Recover()
	if err := plane.Close(); err != nil {
		t.Fatalf("nil plane Close: %v", err)
	}
}

func TestOpsPlaneServesAndDumps(t *testing.T) {
	dir := t.TempDir()
	addrFile := filepath.Join(dir, "addr")
	metricsFile := filepath.Join(dir, "metrics.prom")
	flightFile := filepath.Join(dir, "flight.jsonl")
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	o := AddOpsFlags(fs)
	err := fs.Parse([]string{
		"-ops", "127.0.0.1:0",
		"-ops-addr-file", addrFile,
		"-flight-recorder", "4",
		"-flight-dump", flightFile,
		"-metrics-dump", metricsFile,
	})
	if err != nil {
		t.Fatal(err)
	}
	plane, err := o.Start("opstest")
	if err != nil {
		t.Fatal(err)
	}
	closed := false
	defer func() {
		if !closed {
			plane.Close()
		}
	}()

	addr, err := os.ReadFile(addrFile)
	if err != nil {
		t.Fatalf("-ops-addr-file not written: %v", err)
	}
	base := "http://" + strings.TrimSpace(string(addr))
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz via addr file: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	// Events route through the plane's sink into the flight recorder.
	sink := plane.Sink()
	if sink == nil {
		t.Fatal("live plane Sink() == nil")
	}
	for i := 0; i < 6; i++ { // overruns the 4-slot ring: dump keeps newest 4
		sink.Emit(telemetry.RoundEvent{Algorithm: "greedy_sigma", Round: i})
	}
	resp, err = http.Get(base + "/debug/flightrecorder")
	if err != nil {
		t.Fatal(err)
	}
	counts, verr := telemetry.ValidateJSONL(resp.Body)
	resp.Body.Close()
	if verr != nil {
		t.Fatalf("/debug/flightrecorder invalid: %v", verr)
	}
	if counts["round"] != 4 {
		t.Fatalf("/debug/flightrecorder has %d events, want ring capacity 4", counts["round"])
	}

	if err := plane.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	closed = true
	if err := plane.Close(); err != nil { // idempotent
		t.Fatalf("second Close: %v", err)
	}

	// Close wrote the -metrics-dump exposition.
	mf, err := os.Open(metricsFile)
	if err != nil {
		t.Fatalf("-metrics-dump not written: %v", err)
	}
	samples, perr := obs.ParsePrometheus(mf)
	mf.Close()
	if perr != nil {
		t.Fatalf("-metrics-dump does not parse: %v", perr)
	}
	if samples["msc_flightrecorder_events_total"] != 6 {
		t.Fatalf("dumped msc_flightrecorder_events_total = %v, want 6",
			samples["msc_flightrecorder_events_total"])
	}
}

func TestOpsPlaneRecoverDumpsOnPanic(t *testing.T) {
	dir := t.TempDir()
	flightFile := filepath.Join(dir, "flight.jsonl")
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	o := AddOpsFlags(fs)
	// Metrics dump alone (no HTTP server) still brings the recorder up.
	err := fs.Parse([]string{
		"-metrics-dump", filepath.Join(dir, "m.prom"),
		"-flight-dump", flightFile,
	})
	if err != nil {
		t.Fatal(err)
	}
	plane, err := o.Start("panictest")
	if err != nil {
		t.Fatal(err)
	}
	defer plane.Close()
	plane.Sink().Emit(telemetry.RoundEvent{Algorithm: "greedy_sigma", Round: 7})

	func() {
		defer func() {
			if recover() == nil {
				t.Error("Recover swallowed the panic")
			}
		}()
		defer plane.Recover()
		panic("shard 3 exploded")
	}()

	f, err := os.Open(flightFile)
	if err != nil {
		t.Fatalf("panic dump not written: %v", err)
	}
	counts, verr := telemetry.ValidateJSONL(f)
	f.Close()
	if verr != nil {
		t.Fatalf("panic dump invalid: %v", verr)
	}
	if counts["round"] != 1 {
		t.Fatalf("panic dump has %d round events, want 1", counts["round"])
	}
}

func TestOpsPlaneRecoverNoPanicIsTransparent(t *testing.T) {
	dir := t.TempDir()
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	o := AddOpsFlags(fs)
	flight := filepath.Join(dir, "f.jsonl")
	if err := fs.Parse([]string{"-metrics-dump", filepath.Join(dir, "m.prom"), "-flight-dump", flight}); err != nil {
		t.Fatal(err)
	}
	plane, err := o.Start("calm")
	if err != nil {
		t.Fatal(err)
	}
	defer plane.Close()
	func() {
		defer plane.Recover()
	}()
	if _, err := os.Stat(flight); !os.IsNotExist(err) {
		t.Fatal("Recover dumped without a panic")
	}
}
