package cli

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"syscall"
)

// Run is the single exit path shared by every msc command. It installs
// SIGINT/SIGTERM handling (see SignalContext), invokes body with the
// resulting context, and converts a non-nil error into exit status 1 on
// stderr. Because body returns before os.Exit is reached, every deferred
// cleanup inside body (profile stops, file flushes, telemetry sinks) runs
// before the process terminates — commands must not call os.Exit
// themselves.
//
//	func main() { cli.Run("mscplace", run) }
//	func run(ctx context.Context) error { ... }
//
// A body that treats cancellation as a graceful stop (emit best-so-far,
// flush records) returns nil and the process exits 0; a body that cannot
// make progress returns ctx.Err() and the process exits 1.
func Run(name string, body func(ctx context.Context) error) {
	ctx, stop := SignalContext()
	err := body(ctx)
	stop()
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
		os.Exit(1)
	}
}

// SignalContext returns a context canceled on the first SIGINT or
// SIGTERM, giving solvers a chance to stop at the next supervision point
// and emit their best-so-far result. A second signal while the first is
// still being handled aborts immediately with the conventional 128+SIGINT
// status, so a wedged run never needs SIGKILL.
func SignalContext() (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(context.Background())
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	go func() {
		select {
		case <-ch:
		case <-ctx.Done():
			signal.Stop(ch)
			return
		}
		cancel()
		<-ch // a second signal means "stop waiting for graceful shutdown"
		os.Exit(130)
	}()
	return ctx, func() {
		signal.Stop(ch)
		cancel()
	}
}
