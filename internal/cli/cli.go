// Package cli holds the flag plumbing shared by every msc command:
// a -version flag backed by the module build info, and the pprof/trace
// profiling flag trio (-cpuprofile, -memprofile, -trace).
//
// It depends only on the standard library and deliberately knows nothing
// about the solver; commands wire it up in three lines:
//
//	prof := cli.AddProfileFlags(flag.CommandLine)
//	version := flag.Bool("version", false, "print version and exit")
//	flag.Parse()
//	if *version { fmt.Println(cli.Version("mscplace")); return nil }
//	stop, err := prof.Start()
//	if err != nil { return err }
//	defer stop()
package cli

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"runtime/trace"
	"strings"
)

// Version formats a one-line version banner for the named command from
// runtime/debug.ReadBuildInfo: module version (when built as a versioned
// module), VCS revision, and VCS commit time, each omitted when the build
// carries no such stamp (e.g. plain `go build` in a work tree without VCS
// metadata keeps only the Go version).
func Version(cmd string) string {
	var b strings.Builder
	b.WriteString(cmd)
	info, ok := debug.ReadBuildInfo()
	if !ok {
		b.WriteString(" (no build info)")
		return b.String()
	}
	if v := info.Main.Version; v != "" && v != "(devel)" {
		b.WriteString(" ")
		b.WriteString(v)
	} else {
		b.WriteString(" (devel)")
	}
	var rev, modified, vtime string
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			modified = s.Value
		case "vcs.time":
			vtime = s.Value
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		b.WriteString(" ")
		b.WriteString(rev)
		if modified == "true" {
			b.WriteString("+dirty")
		}
	}
	if vtime != "" {
		b.WriteString(" (")
		b.WriteString(vtime)
		b.WriteString(")")
	}
	b.WriteString(" ")
	b.WriteString(info.GoVersion)
	return b.String()
}

// AddDistBackendFlag registers the -dist-backend flag shared by the
// solver-facing commands and returns the pointer receiving its value
// after fs.Parse. The package stays solver-agnostic: values are plain
// strings here, validated by the command via msc.ParseDistBackend /
// core.ParseDistBackend.
func AddDistBackendFlag(fs *flag.FlagSet) *string {
	return fs.String("dist-backend", "auto",
		"distance backend: auto|dense|lazy|bounded (auto = dense for small networks, lazy Dijkstra row cache above the node threshold, bounded-reach sparse rows at million-node scale)")
}

// AddLandmarksFlag registers the -landmarks flag shared by the
// solver-facing commands and returns the pointer receiving its value
// after fs.Parse. It tunes the ALT landmark count of the bounded distance
// backend; 0 keeps the built-in default, negative disables landmarks.
func AddLandmarksFlag(fs *flag.FlagSet) *int {
	return fs.Int("landmarks", 0,
		"ALT landmarks for the bounded distance backend (0 = default, negative = disable)")
}

// AddEvalModeFlag registers the -eval flag shared by the solver-facing
// commands and returns the pointer receiving its value after fs.Parse.
// Like AddDistBackendFlag, values stay plain strings here and are
// validated by the command via msc.ParseEvalMode / core.ParseEvalMode.
func AddEvalModeFlag(fs *flag.FlagSet) *string {
	return fs.String("eval", "auto",
		"search evaluation mode: auto|incremental|rebuild (incremental = O(n) row merges and delta gains rescans on Add; rebuild = full recompute reference path; placements are identical either way)")
}

// AddSurviveFlag registers the -survive flag shared by the solver-facing
// commands and returns the pointer receiving its value after fs.Parse.
// Values stay plain strings here and are validated by the command via
// msc.ParseSurvivability / core.ParseSurvivability.
func AddSurviveFlag(fs *flag.FlagSet) *string {
	return fs.String("survive", "auto",
		"survivability mode: auto|none|shortcut|node (shortcut/node optimize the worst-case σ⁻ over all single shortcut or node failures, breaking ties by fault-free σ)")
}

// AddCostModelFlag registers the -cost-model flag shared by the
// budget-aware commands and returns the pointer receiving its value after
// fs.Parse. Values stay plain strings here and are validated by the
// command via msc.ParseCostModel / core.ParseCostModel.
func AddCostModelFlag(fs *flag.FlagSet) *string {
	return fs.String("cost-model", "auto",
		"shortcut cost model for -budget runs: auto|unit|length|table (unit prices every shortcut at 1; length prices by bridged distance; table reads per-pair prices from -cost-table)")
}

// Profile carries the three profiling flag values registered by
// AddProfileFlags. The zero value (no flags set) is a no-op profile.
type Profile struct {
	CPUProfile string
	MemProfile string
	Trace      string
}

// AddProfileFlags registers -cpuprofile, -memprofile, and -trace on the
// given flag set and returns the Profile that receives their values after
// fs.Parse.
func AddProfileFlags(fs *flag.FlagSet) *Profile {
	p := &Profile{}
	fs.StringVar(&p.CPUProfile, "cpuprofile", "", "write a pprof CPU profile to this file")
	fs.StringVar(&p.MemProfile, "memprofile", "", "write a pprof heap profile to this file on exit")
	fs.StringVar(&p.Trace, "trace", "", "write a runtime execution trace to this file")
	return p
}

// Start begins whichever profiles were requested and returns a stop
// function that must run exactly once before the process exits (defer it).
// The stop function finishes the CPU profile and trace and takes the heap
// snapshot, so profiles cover everything between Start and stop. When no
// profiling flags were set both Start and stop are no-ops.
func (p *Profile) Start() (stop func(), err error) {
	var stops []func()
	fail := func(err error) (func(), error) {
		for i := len(stops) - 1; i >= 0; i-- {
			stops[i]()
		}
		return nil, err
	}
	if p.CPUProfile != "" {
		f, err := os.Create(p.CPUProfile)
		if err != nil {
			return fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fail(fmt.Errorf("start CPU profile: %w", err))
		}
		stops = append(stops, func() {
			pprof.StopCPUProfile()
			f.Close()
		})
	}
	if p.Trace != "" {
		f, err := os.Create(p.Trace)
		if err != nil {
			return fail(err)
		}
		if err := trace.Start(f); err != nil {
			f.Close()
			return fail(fmt.Errorf("start execution trace: %w", err))
		}
		stops = append(stops, func() {
			trace.Stop()
			f.Close()
		})
	}
	if p.MemProfile != "" {
		path := p.MemProfile
		stops = append(stops, func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the snapshot reflects live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
		})
	}
	return func() {
		for i := len(stops) - 1; i >= 0; i-- {
			stops[i]()
		}
	}, nil
}
