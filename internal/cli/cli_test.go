package cli

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestVersionMentionsCommandAndGo(t *testing.T) {
	v := Version("mscplace")
	if !strings.HasPrefix(v, "mscplace") {
		t.Fatalf("Version = %q, want mscplace prefix", v)
	}
	// Test binaries always carry build info with a Go version.
	if !strings.Contains(v, "go") {
		t.Fatalf("Version = %q, want a go toolchain stamp", v)
	}
	if strings.Contains(v, "\n") {
		t.Fatalf("Version = %q, want a single line", v)
	}
}

func TestAddProfileFlagsRegistersTrio(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	p := AddProfileFlags(fs)
	if err := fs.Parse([]string{"-cpuprofile", "cpu.out", "-memprofile", "mem.out", "-trace", "t.out"}); err != nil {
		t.Fatal(err)
	}
	if p.CPUProfile != "cpu.out" || p.MemProfile != "mem.out" || p.Trace != "t.out" {
		t.Fatalf("parsed profile = %+v", p)
	}
}

func TestProfileZeroValueIsNoop(t *testing.T) {
	var p Profile
	stop, err := p.Start()
	if err != nil {
		t.Fatal(err)
	}
	stop()
}

func TestProfileWritesFiles(t *testing.T) {
	dir := t.TempDir()
	p := Profile{
		CPUProfile: filepath.Join(dir, "cpu.pprof"),
		MemProfile: filepath.Join(dir, "mem.pprof"),
		Trace:      filepath.Join(dir, "exec.trace"),
	}
	stop, err := p.Start()
	if err != nil {
		t.Fatal(err)
	}
	// A bit of work so the profiles are non-trivial.
	total := 0
	for i := 0; i < 1_000_000; i++ {
		total += i % 7
	}
	_ = total
	stop()
	for _, path := range []string{p.CPUProfile, p.MemProfile, p.Trace} {
		st, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile output %s: %v", path, err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile output %s is empty", path)
		}
	}
}
