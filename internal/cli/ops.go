package cli

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sync"
	"syscall"

	"msc/internal/obs"
	"msc/internal/telemetry"
)

// OpsFlags is the shared -ops flag family every msc command registers via
// AddOpsFlags. The plane is entirely opt-in: with -ops unset (and no
// -metrics-dump), Start returns a nil *OpsPlane whose methods are all
// no-ops, and the solver hot paths keep their zero-overhead contract.
type OpsFlags struct {
	// Addr is the -ops listen address ("127.0.0.1:9090"; port 0 picks a
	// free port). Empty disables the HTTP server.
	Addr string
	// AddrFile is -ops-addr-file: when set, the resolved listen address is
	// written there once the server is up — the handshake harnesses and the
	// sweep orchestrator use with port 0.
	AddrFile string
	// FlightN is -flight-recorder: the flight-recorder ring capacity in
	// events; 0 disables the recorder.
	FlightN int
	// FlightDump is -flight-dump: where SIGQUIT / panic dumps go; empty
	// defaults to <cmd>-flight.jsonl in the working directory.
	FlightDump string
	// MetricsDump is -metrics-dump: when set, Close writes the final
	// /metrics exposition there — the deterministic harvest path for
	// short-lived children (no scrape race with process exit).
	MetricsDump string
}

// AddOpsFlags registers the ops flag family on fs.
func AddOpsFlags(fs *flag.FlagSet) *OpsFlags {
	o := &OpsFlags{}
	fs.StringVar(&o.Addr, "ops", "", "serve ops endpoints (/metrics, /healthz, /events, /debug/pprof) on this address (e.g. 127.0.0.1:9090; port 0 picks a free port)")
	fs.StringVar(&o.AddrFile, "ops-addr-file", "", "write the resolved -ops listen address to this file once serving")
	fs.IntVar(&o.FlightN, "flight-recorder", 1024, "flight recorder capacity in events (dumped on SIGQUIT, on solver panic, and via /debug/flightrecorder); 0 disables")
	fs.StringVar(&o.FlightDump, "flight-dump", "", "flight recorder dump path (default <cmd>-flight.jsonl)")
	fs.StringVar(&o.MetricsDump, "metrics-dump", "", "write the final /metrics exposition to this file at exit")
	return o
}

// enabled reports whether any part of the plane was requested.
func (o *OpsFlags) enabled() bool {
	return o.Addr != "" || o.MetricsDump != ""
}

// OpsPlane is a running observability plane: the event fanout solver sinks
// route through, the flight-recorder ring, the ops HTTP server, and the
// SIGQUIT dump handler. A nil *OpsPlane is valid and inert, so commands
// can call its methods unconditionally.
type OpsPlane struct {
	cmd      string
	flags    *OpsFlags
	fanout   *telemetry.FanoutSink
	recorder *telemetry.RingSink
	server   *obs.Server
	sigCh    chan os.Signal
	sigDone  chan struct{}
	dumpOnce sync.Once // a panic dump suppresses the redundant exit dump
	closed   sync.Once
	closeErr error
}

// Start brings the plane up: it enables obs collection, builds the fanout
// and (when FlightN > 0) the recorder ring, starts the HTTP server when
// Addr is set, and installs the SIGQUIT dump handler. It returns (nil,
// nil) when the flags request nothing.
func (o *OpsFlags) Start(cmd string) (*OpsPlane, error) {
	if !o.enabled() {
		return nil, nil
	}
	p := &OpsPlane{cmd: cmd, flags: o, fanout: telemetry.NewFanout()}
	if o.FlightN > 0 {
		p.recorder = telemetry.NewRing(o.FlightN)
		p.fanout.Attach(p.recorder)
	}
	obs.SetEnabled(true)
	if o.Addr != "" {
		srv, err := obs.StartServer(o.Addr, obs.ServerOptions{
			Registry: obs.Default(),
			Events:   p.fanout,
			Recorder: p.recorder,
		})
		if err != nil {
			return nil, err
		}
		p.server = srv
		if o.AddrFile != "" {
			if err := os.WriteFile(o.AddrFile, []byte(srv.Addr()+"\n"), 0o644); err != nil {
				srv.Close()
				return nil, fmt.Errorf("write -ops-addr-file: %w", err)
			}
		}
		fmt.Fprintf(os.Stderr, "%s: ops server listening on http://%s\n", cmd, srv.Addr())
	}
	if p.recorder != nil {
		// SIGQUIT dumps the flight recorder and keeps running. This replaces
		// Go's default dump-goroutines-and-die behavior — goroutine stacks
		// remain available via /debug/pprof/goroutine.
		p.sigCh = make(chan os.Signal, 1)
		p.sigDone = make(chan struct{})
		signal.Notify(p.sigCh, syscall.SIGQUIT)
		go func() {
			defer close(p.sigDone)
			for range p.sigCh {
				p.dump("SIGQUIT")
			}
		}()
	}
	return p, nil
}

// Sink returns the plane's event fanout as a telemetry.Sink, or nil on a
// nil plane — directly usable as the "is tracing on" sentinel the commands
// already key their sink wiring off.
func (p *OpsPlane) Sink() telemetry.Sink {
	if p == nil {
		return nil
	}
	return p.fanout
}

// Fanout returns the plane's fanout for attaching further sinks (the
// command's -jsonl writer), or nil on a nil plane.
func (p *OpsPlane) Fanout() *telemetry.FanoutSink {
	if p == nil {
		return nil
	}
	return p.fanout
}

// Attach adds a sink to the plane's fanout. No-op on a nil plane.
func (p *OpsPlane) Attach(s telemetry.Sink) {
	if p != nil {
		p.fanout.Attach(s)
	}
}

// dumpPath resolves the flight-dump destination.
func (p *OpsPlane) dumpPath() string {
	if p.flags.FlightDump != "" {
		return p.flags.FlightDump
	}
	return p.cmd + "-flight.jsonl"
}

// dump writes the flight-recorder contents, logging outcome to stderr.
func (p *OpsPlane) dump(reason string) {
	if p.recorder == nil {
		return
	}
	path := p.dumpPath()
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: flight recorder (%s): %v\n", p.cmd, reason, err)
		return
	}
	n, werr := p.recorder.WriteJSONL(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		fmt.Fprintf(os.Stderr, "%s: flight recorder (%s): %v\n", p.cmd, reason, werr)
		return
	}
	fmt.Fprintf(os.Stderr, "%s: flight recorder (%s): dumped %d events to %s\n", p.cmd, reason, n, path)
}

// Recover is the plane's panic hook: deferred around a solver invocation,
// it dumps the flight recorder when the call panics (a shard panic
// re-raised by ParallelFor, say) and re-panics so the crash still
// surfaces. On a nil plane, or without a panic, it does nothing — it must
// not swallow the recover of an enclosing handler.
func (p *OpsPlane) Recover() {
	if p == nil {
		return
	}
	r := recover()
	if r == nil {
		return
	}
	p.dumpOnce.Do(func() { p.dump("panic") })
	panic(r)
}

// Close tears the plane down: stops the SIGQUIT handler, shuts down the
// HTTP server, and writes the -metrics-dump exposition. Idempotent; safe
// on a nil plane.
func (p *OpsPlane) Close() error {
	if p == nil {
		return nil
	}
	p.closed.Do(func() {
		if p.sigCh != nil {
			signal.Stop(p.sigCh)
			close(p.sigCh)
			<-p.sigDone
		}
		if p.server != nil {
			p.closeErr = p.server.Close()
		}
		if p.flags.MetricsDump != "" {
			f, err := os.Create(p.flags.MetricsDump)
			if err == nil {
				err = obs.Default().WritePrometheus(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil && p.closeErr == nil {
				p.closeErr = fmt.Errorf("write -metrics-dump: %w", err)
			}
		}
	})
	return p.closeErr
}
