package core

import (
	"fmt"
	"sync/atomic"
)

// EvalMode selects how the incremental σ evaluator (Instance.NewSearch)
// maintains its state when a shortcut is committed with Search.Add.
type EvalMode string

const (
	// EvalModeAuto resolves to the process default installed with
	// SetDefaultEvalMode, else to EvalIncremental.
	EvalModeAuto EvalMode = ""
	// EvalIncremental merges a committed shortcut into every endpoint
	// distance row in O(n) (two overlay row queries instead of one per
	// endpoint) and patches the gains array with a delta rescan that skips
	// pairs whose rows the merge left untouched. Placements, σ values, and
	// gains arrays are identical to EvalRebuild — the eval-differential
	// suite locks that in — so this is the default.
	EvalIncremental EvalMode = "incremental"
	// EvalRebuild recomputes every endpoint distance row and rescans the
	// full candidate grid after every mutation: the straight-line reference
	// path the incremental engine is verified against, and a useful
	// baseline for benchmarking the merge.
	EvalRebuild EvalMode = "rebuild"
)

// defaultEvalMode holds the process-wide mode used when Options.EvalMode is
// EvalModeAuto; empty means EvalIncremental. Set from the -eval flag of the
// cmds, mirroring SetDefaultDistBackend.
var defaultEvalMode atomic.Value // EvalMode

// ParseEvalMode validates an -eval flag value; "auto", "incremental", and
// "rebuild" are accepted.
func ParseEvalMode(s string) (EvalMode, error) {
	switch s {
	case "", "auto":
		return EvalModeAuto, nil
	case string(EvalIncremental):
		return EvalIncremental, nil
	case string(EvalRebuild):
		return EvalRebuild, nil
	}
	return EvalModeAuto, fmt.Errorf("core: unknown eval mode %q (want auto, incremental, or rebuild)", s)
}

// SetDefaultEvalMode sets the evaluation mode used by instances built with
// EvalModeAuto; EvalModeAuto restores the built-in incremental default.
func SetDefaultEvalMode(m EvalMode) {
	defaultEvalMode.Store(m)
}

// resolveEvalMode applies the explicit-option → process-default → built-in
// resolution chain. Unknown non-auto values pass through for NewInstance to
// reject.
func resolveEvalMode(m EvalMode) EvalMode {
	if m == EvalModeAuto {
		if d, ok := defaultEvalMode.Load().(EvalMode); ok {
			m = d
		}
	}
	if m == EvalModeAuto {
		return EvalIncremental
	}
	return m
}
