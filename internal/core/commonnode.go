package core

import (
	"errors"
	"fmt"

	"msc/internal/bitset"
	"msc/internal/graph"
	"msc/internal/maxcover"
)

// Errors returned by SolveCommonNode.
var (
	// ErrNoCommonNode reports that the instance's pairs do not all share
	// a node.
	ErrNoCommonNode = errors.New("core: pairs do not share a common node")
	// ErrRestrictedUniverse reports that the instance excludes pair nodes
	// from the candidate universe, which contradicts MSC-CN's shortcuts
	// incident to the common (pair) node.
	ErrRestrictedUniverse = errors.New("core: MSC-CN requires the unrestricted candidate universe")
)

// CommonNodeResult reports the MSC-CN greedy (§IV-B).
type CommonNodeResult struct {
	Placement Placement
	// Common is the node shared by every pair.
	Common graph.NodeID
	// Coverage is the max-coverage value achieved (== Placement.Sigma; the
	// equality is the reduction of Theorem 1 and is asserted in tests).
	Coverage int
}

// SolveCommonNode solves the MSC-CN special case (§IV): when every
// important pair shares a common node u, there is an optimal placement
// whose shortcuts are all incident to u, and the problem reduces exactly to
// maximum coverage — candidate endpoint v covers pair {u,w} iff
// D(v,w) ≤ d_t. The greedy selection therefore achieves the (1−1/e)
// approximation of Theorem 5.
func SolveCommonNode(inst *Instance) (CommonNodeResult, error) {
	if inst.candPos != nil {
		return CommonNodeResult{}, ErrRestrictedUniverse
	}
	u, ok := inst.Pairs().CommonNode()
	if !ok {
		return CommonNodeResult{}, ErrNoCommonNode
	}
	m := inst.Pairs().Len()
	// other[i] is the non-common endpoint of pair i.
	other := make([]graph.NodeID, m)
	for i, p := range inst.Pairs().Pairs() {
		if p.U == u {
			other[i] = p.W
		} else {
			other[i] = p.U
		}
	}
	n := inst.N()
	// Candidate v ∈ V\{u} covers pair i iff D(v, other[i]) ≤ d_t.
	sets := make([]*bitset.Set, 0, n-1)
	cands := make([]graph.NodeID, 0, n-1)
	for v := 0; v < n; v++ {
		if graph.NodeID(v) == u {
			continue
		}
		s := bitset.New(m)
		row := inst.Table().Row(graph.NodeID(v))
		for i, w := range other {
			if row[w] <= inst.Threshold().D {
				s.Add(i)
			}
		}
		sets = append(sets, s)
		cands = append(cands, graph.NodeID(v))
	}
	prob := maxcover.Problem{
		Sets:    sets,
		Initial: inst.satisfied0,
		K:       inst.K(),
	}
	if inst.totalWeight != m {
		weights := make([]float64, m)
		for i, w := range inst.weights {
			weights[i] = float64(w)
		}
		prob.Weights = weights
	}
	res := maxcover.LazyGreedy(prob)
	sel := make([]int, len(res.Chosen))
	for i, c := range res.Chosen {
		sel[i] = inst.CandidateIndex(graph.Edge{U: u, V: cands[c]})
	}
	pl := newPlacement(inst, sel)
	coverage := 0
	res.Covered.ForEach(func(i int) { coverage += int(inst.weights[i]) })
	return CommonNodeResult{
		Placement: pl,
		Common:    u,
		Coverage:  coverage,
	}, nil
}

// VerifyCommonNodeReduction cross-checks Theorem 1's reduction on an
// instance: the coverage value of the greedy max-coverage run must equal
// the exact σ of the produced placement. It returns an error describing any
// mismatch; tests call it on randomized instances.
func VerifyCommonNodeReduction(inst *Instance) error {
	res, err := SolveCommonNode(inst)
	if err != nil {
		return err
	}
	if res.Coverage != res.Placement.Sigma {
		return fmt.Errorf("core: coverage %d != σ %d for common-node placement %v",
			res.Coverage, res.Placement.Sigma, res.Placement.Edges)
	}
	return nil
}
