package core

import (
	"sort"
	"testing"

	"msc/internal/xrand"
)

func TestMutateExpectedFlips(t *testing.T) {
	rng := xrand.New(301)
	const numCand = 1000
	parent := []int{1, 5, 900}
	totalDiff := 0
	const trials = 3000
	for i := 0; i < trials; i++ {
		child := mutate(parent, numCand, 1.0/numCand, rng)
		totalDiff += symmetricDiff(parent, child)
	}
	// Each of numCand bits flips w.p. 1/numCand → expected 1 flip/draw.
	mean := float64(totalDiff) / trials
	if mean < 0.8 || mean > 1.2 {
		t.Fatalf("mean flips = %v, want ≈ 1", mean)
	}
}

func TestMutatePreservesSortedUnique(t *testing.T) {
	rng := xrand.New(302)
	parent := []int{3, 7, 11}
	for i := 0; i < 200; i++ {
		child := mutate(parent, 50, 0.1, rng)
		if !sort.IntsAreSorted(child) {
			t.Fatalf("child not sorted: %v", child)
		}
		for j := 1; j < len(child); j++ {
			if child[j] == child[j-1] {
				t.Fatalf("duplicate in child: %v", child)
			}
		}
		for _, c := range child {
			if c < 0 || c >= 50 {
				t.Fatalf("candidate out of range: %v", child)
			}
		}
	}
}

func TestMutateZeroFlipsCopies(t *testing.T) {
	rng := xrand.New(303)
	parent := []int{2, 4}
	child := mutate(parent, 10, 0, rng) // flip probability 0
	if symmetricDiff(parent, child) != 0 {
		t.Fatalf("child differs with p=0: %v", child)
	}
	// And it must be a copy, not an alias.
	child[0] = 99
	if parent[0] == 99 {
		t.Fatal("mutate aliased the parent")
	}
}

func TestInsertParetoKeepsFrontConsistent(t *testing.T) {
	pop := []eaSol{}
	insert := func(sigma int, size int) {
		sel := make([]int, size)
		for i := range sel {
			sel[i] = i
		}
		insertPareto(&pop, eaSol{sel: sel, sigma: sigma})
	}
	insert(0, 0) // baseline
	insert(3, 2)
	insert(5, 4)
	insert(2, 1)
	// Dominated entries must not join.
	insert(2, 3) // dominated by (3,2)
	insert(1, 5) // dominated by several
	// A dominating entry must evict.
	insert(6, 4) // dominates (5,4)

	// Verify: no member weakly dominates another.
	for i := range pop {
		for j := range pop {
			if i == j {
				continue
			}
			if pop[i].sigma >= pop[j].sigma && len(pop[i].sel) <= len(pop[j].sel) {
				t.Fatalf("archive holds dominated pair: (%d,%d) vs (%d,%d)",
					pop[i].sigma, len(pop[i].sel), pop[j].sigma, len(pop[j].sel))
			}
		}
	}
	// The evicted (5,4) must be gone and (6,4) present.
	for _, s := range pop {
		if s.sigma == 5 && len(s.sel) == 4 {
			t.Fatal("(5,4) should have been evicted by (6,4)")
		}
	}
	found := false
	for _, s := range pop {
		if s.sigma == 6 && len(s.sel) == 4 {
			found = true
		}
	}
	if !found {
		t.Fatal("(6,4) missing from the archive")
	}
}

func TestInsertParetoRejectsDuplicates(t *testing.T) {
	pop := []eaSol{}
	insertPareto(&pop, eaSol{sel: []int{1}, sigma: 3})
	insertPareto(&pop, eaSol{sel: []int{2}, sigma: 3}) // same objectives: weakly dominated
	if len(pop) != 1 {
		t.Fatalf("archive size %d, want 1", len(pop))
	}
}

func TestEAArchiveBoundedByObjectives(t *testing.T) {
	rng := xrand.New(304)
	inst := testInstance(t, 14, 6, 3, 0.9, rng)
	res := EA(inst, EAOptions{Iterations: 400}, rng)
	// The Pareto front over (σ ∈ [0, m], minimal |F| per σ) holds at most
	// m+1 members.
	if res.PopulationSize > inst.MaxSigma()+1 {
		t.Fatalf("archive size %d exceeds m+1 = %d", res.PopulationSize, inst.MaxSigma()+1)
	}
}

func TestAEASeedGreedyDominatesGreedyArm(t *testing.T) {
	rng := xrand.New(305)
	inst := testInstance(t, 18, 9, 3, 0.9, rng)
	greedy := GreedySigma(inst)
	res := AEA(inst, AEAOptions{Iterations: 50, PopSize: 5, Delta: 0.05, SeedGreedy: true}, rng)
	if res.Best.Sigma < greedy.Sigma {
		t.Fatalf("SeedGreedy AEA σ=%d below greedy σ=%d", res.Best.Sigma, greedy.Sigma)
	}
}

func symmetricDiff(a, b []int) int {
	in := map[int]int{}
	for _, x := range a {
		in[x]++
	}
	for _, x := range b {
		in[x]--
	}
	diff := 0
	for _, v := range in {
		if v != 0 {
			diff++
		}
	}
	return diff
}
