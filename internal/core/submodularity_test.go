package core

import (
	"math"
	"testing"

	"msc/internal/failprob"
	"msc/internal/graph"
	"msc/internal/pairs"
	"msc/internal/shortestpath"
	"msc/internal/submodular"
	"msc/internal/xrand"
)

// TestSigmaNotSubmodularCounterexample reproduces the counterexample of
// §V-A: three isolated nodes, S = all three pairs, d_t such that only a
// direct shortcut satisfies a pair. Adding f_{1,2} to ∅ gains 1 pair, but
// adding it to {f_{2,3}} gains 2 (the chained zero-length path also
// satisfies {v1, v3}) — violating diminishing returns.
func TestSigmaNotSubmodularCounterexample(t *testing.T) {
	g := graph.NewBuilder(3).MustBuild()
	ps := pairs.MustNewSet(3, []pairs.Pair{{U: 0, W: 1}, {U: 0, W: 2}, {U: 1, W: 2}})
	inst := MustNewInstance(g, ps, failprob.NewThreshold(0.5), 1, &Options{AllowTrivial: true})

	f12 := inst.CandidateIndex(graph.Edge{U: 0, V: 1})
	f23 := inst.CandidateIndex(graph.Edge{U: 1, V: 2})

	gainEmpty := inst.Sigma([]int{f12}) - inst.Sigma(nil)
	gainSuper := inst.Sigma([]int{f23, f12}) - inst.Sigma([]int{f23})
	if gainEmpty != 1 || gainSuper != 2 {
		t.Fatalf("counterexample gains = (%d, %d), want (1, 2)", gainEmpty, gainSuper)
	}
	if gainEmpty >= gainSuper {
		t.Fatal("expected a submodularity violation")
	}
}

// restrictedValue turns a set function over a small candidate subset into
// the submodular.Value form for the exhaustive checkers.
func restrictedValue(cands []int, f func(sel []int) float64) submodular.Value {
	return func(selection []int) float64 {
		sel := make([]int, len(selection))
		for i, s := range selection {
			sel[i] = cands[s]
		}
		return f(sel)
	}
}

// TestMuNuSubmodularExhaustive verifies §V-B's structural claims on random
// instances by exhaustive check over a small candidate subset: μ and ν are
// monotone submodular.
func TestMuNuSubmodularExhaustive(t *testing.T) {
	rng := xrand.New(515)
	for trial := 0; trial < 6; trial++ {
		inst := testInstance(t, 12, 6, 3, 0.8, rng)
		cands := rng.SampleDistinct(inst.NumCandidates(), 7)

		mu := restrictedValue(cands, inst.Mu)
		if !submodular.IsMonotone(len(cands), mu) {
			t.Fatalf("trial %d: μ not monotone", trial)
		}
		if ok, w := submodular.IsSubmodular(len(cands), mu); !ok {
			t.Fatalf("trial %d: μ not submodular: %+v", trial, w)
		}

		nu := restrictedValue(cands, inst.Nu)
		if !submodular.IsMonotone(len(cands), nu) {
			t.Fatalf("trial %d: ν not monotone", trial)
		}
		if ok, w := submodular.IsSubmodular(len(cands), nu); !ok {
			t.Fatalf("trial %d: ν not submodular: %+v", trial, w)
		}
	}
}

// TestSigmaMonotone verifies that σ itself is monotone (adding shortcuts
// never disconnects anyone), even though it is not submodular.
func TestSigmaMonotone(t *testing.T) {
	rng := xrand.New(717)
	for trial := 0; trial < 4; trial++ {
		inst := testInstance(t, 12, 6, 3, 0.8, rng)
		cands := rng.SampleDistinct(inst.NumCandidates(), 7)
		sigma := restrictedValue(cands, func(sel []int) float64 {
			return float64(inst.Sigma(sel))
		})
		if !submodular.IsMonotone(len(cands), sigma) {
			t.Fatalf("trial %d: σ not monotone", trial)
		}
	}
}

// TestCommonNodeReduction verifies Theorem 1's reduction on randomized
// MSC-CN instances: the greedy max-coverage value equals the exact σ of
// the produced placement.
func TestCommonNodeReduction(t *testing.T) {
	rng := xrand.New(919)
	for trial := 0; trial < 8; trial++ {
		g := randomConnectedGraph(t, 20, 30, rng)
		inst := commonNodeInstance(t, g, 0, 8, 3, 0.9, rng)
		if inst == nil {
			continue
		}
		if err := VerifyCommonNodeReduction(inst); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func commonNodeInstance(t *testing.T, g *graph.Graph, u graph.NodeID, m, k int, dt float64, rng *xrand.Rand) *Instance {
	t.Helper()
	table := shortestpath.NewTable(g, 0)
	ps, err := pairs.SampleViolatingWithCommonNode(table, dt, m, u, rng)
	if err != nil {
		return nil
	}
	thr := failprob.Threshold{P: 1 - math.Exp(-dt), D: dt}
	inst, err := NewInstance(g, ps, thr, k, &Options{AllowTrivial: true, Table: table})
	if err != nil {
		t.Fatalf("NewInstance: %v", err)
	}
	return inst
}

// TestCommonNodeGreedyBeatsRandomArm sanity-checks that the specialized
// MSC-CN greedy is at least as good as a random placement restricted to
// the same budget.
func TestCommonNodeGreedyBeatsRandomArm(t *testing.T) {
	rng := xrand.New(121)
	g := randomConnectedGraph(t, 24, 36, rng)
	inst := commonNodeInstance(t, g, 0, 10, 3, 0.9, rng)
	if inst == nil {
		t.Skip("no common-node instance available")
	}
	res, err := SolveCommonNode(inst)
	if err != nil {
		t.Fatal(err)
	}
	rnd, err := RandomPlacement(inst, 20, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Placement.Sigma < rnd.Sigma-2 {
		// Greedy with the (1−1/e) guarantee should essentially never lose
		// to 20 random draws; small slack guards against freak instances.
		t.Fatalf("common-node greedy σ=%d far below random σ=%d", res.Placement.Sigma, rnd.Sigma)
	}
}

// TestCommonNodeErrNoCommon checks the error path.
func TestCommonNodeErrNoCommon(t *testing.T) {
	rng := xrand.New(131)
	inst := testInstance(t, 14, 6, 2, 0.8, rng)
	if _, hasCommon := inst.Pairs().CommonNode(); hasCommon {
		t.Skip("sampled pairs coincidentally share a node")
	}
	if _, err := SolveCommonNode(inst); err == nil {
		t.Fatal("expected ErrNoCommonNode")
	}
}

// TestCommonNodeOptimality: on tiny instances, MSC-CN greedy must reach at
// least (1 − 1/e) of the exhaustive optimum (Theorem 5).
func TestCommonNodeApproxRatio(t *testing.T) {
	rng := xrand.New(141)
	for trial := 0; trial < 5; trial++ {
		g := randomConnectedGraph(t, 10, 14, rng)
		inst := commonNodeInstance(t, g, 0, 5, 2, 0.9, rng)
		if inst == nil {
			continue
		}
		res, err := SolveCommonNode(inst)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := Exhaustive(inst, 1_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if float64(res.Placement.Sigma) < (1-1/eConst)*float64(opt.Sigma)-1e-9 {
			t.Fatalf("trial %d: CN greedy σ=%d below (1-1/e)·opt=%v",
				trial, res.Placement.Sigma, (1-1/eConst)*float64(opt.Sigma))
		}
	}
}

const eConst = 2.718281828459045
