package core

import (
	"fmt"
	"math"
	"sync/atomic"

	"msc/internal/failprob"
	"msc/internal/graph"
	"msc/internal/pairs"
	"msc/internal/shortestpath"
)

// DistBackend selects the distance-source implementation backing an
// Instance (see shortestpath.DistanceSource).
type DistBackend string

const (
	// BackendAuto picks dense below DefaultLazyThreshold nodes and lazy at
	// or above it (unless a process default was set, which takes
	// precedence over the threshold).
	BackendAuto DistBackend = ""
	// BackendDense materializes the full n×n table eagerly (n Dijkstras
	// at construction). Right when most rows get read: bound coverage
	// construction, common-node coverage, threshold sweeps over one
	// network.
	BackendDense DistBackend = "dense"
	// BackendLazy computes Dijkstra rows on demand and memoizes them in a
	// sharded cache, with the social-pair endpoint rows pinned. Right when
	// only a sparse row set is touched — GreedySigma/EA/AEA/LocalSearch
	// read the rows of the 2m pair endpoints plus the shortcut endpoints
	// of evaluated selections, so construction cost stops scaling with n.
	BackendLazy DistBackend = "lazy"
	// BackendBounded computes rows with a Dijkstra bounded at the
	// threshold d_t and stores them sparsely, with an ALT landmark layer
	// for certified "farther than d_t" answers. The objective only ever
	// compares distances against d_t, so the truncation is unobservable
	// to the solvers; per-row memory and per-row compute scale with the
	// d_t-ball instead of with n, which is what makes 10⁵–10⁶-node
	// instances tractable. Distances carry float32 quantization (≈1e-7
	// relative); the "length" cost model is rejected (it needs full-range
	// distances).
	BackendBounded DistBackend = "bounded"
)

// DefaultLazyThreshold is the node count at and above which BackendAuto
// selects the lazy backend. Below it the dense table is cheap enough that
// its O(1) row access wins; above it the n Dijkstras and n² float64s of
// the eager build dominate instance construction (see EXPERIMENTS.md,
// "Distance backends" for the measurements behind the value).
const DefaultLazyThreshold = 512

// DefaultBoundedThreshold is the node count at and above which
// BackendAuto selects the bounded backend. Around 10⁵ nodes even lazy
// rows hurt — each cached row is 8·n bytes and each row compute is a
// full-graph Dijkstra — while a d_t-ball holds a few dozen nodes on the
// paper's instance families (see EXPERIMENTS.md, "Scale recipe").
const DefaultBoundedThreshold = 100_000

// DefaultLandmarks is the ALT landmark count the bounded backend builds
// when the option is left at auto: enough farthest-point landmarks that
// most beyond-d_t pair queries are answered by a lower bound, cheap
// enough (one full Dijkstra + 4·n bytes each) to amortize immediately.
const DefaultLandmarks = 16

// defaultDistBackend holds the process-wide backend default used when
// Options.DistBackend is BackendAuto; empty means "apply the threshold
// rule". Set from the -dist-backend flag of the cmds.
var defaultDistBackend atomic.Value // DistBackend

// ParseDistBackend validates a -dist-backend flag value; "auto", "dense",
// "lazy", and "bounded" are accepted.
func ParseDistBackend(s string) (DistBackend, error) {
	switch s {
	case "", "auto":
		return BackendAuto, nil
	case string(BackendDense):
		return BackendDense, nil
	case string(BackendLazy):
		return BackendLazy, nil
	case string(BackendBounded):
		return BackendBounded, nil
	}
	return BackendAuto, fmt.Errorf("core: unknown distance backend %q (want auto, dense, lazy, or bounded)", s)
}

// SetDefaultDistBackend sets the backend used by instances built with
// BackendAuto; BackendAuto restores the node-threshold rule. It mirrors
// SetDefaultParallelism so commands can wire one flag without threading an
// option through every construction site.
func SetDefaultDistBackend(b DistBackend) {
	defaultDistBackend.Store(b)
}

// resolveDistBackend applies the explicit-option → process-default →
// node-threshold resolution chain.
func resolveDistBackend(b DistBackend, n int) DistBackend {
	if b == BackendAuto {
		if d, ok := defaultDistBackend.Load().(DistBackend); ok {
			b = d
		}
	}
	if b == BackendAuto {
		switch {
		case n >= DefaultBoundedThreshold:
			return BackendBounded
		case n >= DefaultLazyThreshold:
			return BackendLazy
		default:
			return BackendDense
		}
	}
	return b
}

// defaultLandmarks holds the process-wide ALT landmark count used when
// Options.Landmarks is 0; 0 means "apply DefaultLandmarks". Set from the
// -landmarks flag of the cmds. Negative disables the landmark layer.
var defaultLandmarks atomic.Int64

// SetDefaultLandmarks sets the ALT landmark count used by bounded-backend
// instances whose Options leave Landmarks at 0 (auto). Pass a negative
// value to disable landmarks, 0 to restore DefaultLandmarks.
func SetDefaultLandmarks(k int) { defaultLandmarks.Store(int64(k)) }

// resolveLandmarks applies the explicit-option → process-default →
// DefaultLandmarks chain; negative anywhere in the chain means "no
// landmarks".
func resolveLandmarks(opt int) int {
	if opt == 0 {
		opt = int(defaultLandmarks.Load())
	}
	if opt == 0 {
		opt = DefaultLandmarks
	}
	if opt < 0 {
		return 0
	}
	return opt
}

// newDistanceSource builds the distance backend for an instance: the
// caller-supplied source if any, else a dense table (built with the
// option's worker budget), a lazy row cache, or a bounded sparse table
// at reach thr.D, the latter two with the social-pair endpoint rows
// pinned, per the resolved backend.
func newDistanceSource(g *graph.Graph, ps *pairs.Set, thr failprob.Threshold, opts *Options) (shortestpath.DistanceSource, error) {
	if opts != nil && opts.Table != nil {
		if opts.Table.N() != g.N() {
			return nil, fmt.Errorf("core: supplied table covers %d nodes, graph has %d", opts.Table.N(), g.N())
		}
		return opts.Table, nil
	}
	var backend DistBackend
	parallelism, lazyMaxRows, landmarks := 0, 0, 0
	if opts != nil {
		backend = opts.DistBackend
		parallelism = opts.Parallelism
		lazyMaxRows = opts.LazyMaxRows
		landmarks = opts.Landmarks
	}
	switch b := resolveDistBackend(backend, g.N()); b {
	case BackendDense:
		return shortestpath.NewTable(g, ResolveParallelism(parallelism)), nil
	case BackendLazy:
		lt := shortestpath.NewLazyTable(g, shortestpath.LazyOptions{MaxRows: lazyMaxRows})
		// Deterministic pinning: pair-set node order is fixed by the pair
		// set, so the pinned row set never depends on solver scheduling.
		lt.Pin(ps.Nodes())
		return lt, nil
	case BackendBounded:
		// A NaN threshold would make every `d > reach` comparison false
		// and silently degenerate the bounded search into full
		// exploration — reject it as a structural input error instead.
		if math.IsNaN(thr.D) {
			return nil, &InputError{Param: "threshold", Reason: "bounded distance backend needs a non-NaN reach d_t"}
		}
		bt, err := shortestpath.NewBoundedTable(g, shortestpath.BoundedOptions{
			Reach:     thr.D,
			MaxRows:   lazyMaxRows,
			Landmarks: resolveLandmarks(landmarks),
		})
		if err != nil {
			return nil, err
		}
		bt.Pin(ps.Nodes())
		return bt, nil
	default:
		return nil, fmt.Errorf("core: unknown distance backend %q (want auto, dense, lazy, or bounded)", b)
	}
}
