package core

import (
	"fmt"
	"sync/atomic"

	"msc/internal/graph"
	"msc/internal/pairs"
	"msc/internal/shortestpath"
)

// DistBackend selects the distance-source implementation backing an
// Instance (see shortestpath.DistanceSource).
type DistBackend string

const (
	// BackendAuto picks dense below DefaultLazyThreshold nodes and lazy at
	// or above it (unless a process default was set, which takes
	// precedence over the threshold).
	BackendAuto DistBackend = ""
	// BackendDense materializes the full n×n table eagerly (n Dijkstras
	// at construction). Right when most rows get read: bound coverage
	// construction, common-node coverage, threshold sweeps over one
	// network.
	BackendDense DistBackend = "dense"
	// BackendLazy computes Dijkstra rows on demand and memoizes them in a
	// sharded cache, with the social-pair endpoint rows pinned. Right when
	// only a sparse row set is touched — GreedySigma/EA/AEA/LocalSearch
	// read the rows of the 2m pair endpoints plus the shortcut endpoints
	// of evaluated selections, so construction cost stops scaling with n.
	BackendLazy DistBackend = "lazy"
)

// DefaultLazyThreshold is the node count at and above which BackendAuto
// selects the lazy backend. Below it the dense table is cheap enough that
// its O(1) row access wins; above it the n Dijkstras and n² float64s of
// the eager build dominate instance construction (see EXPERIMENTS.md,
// "Distance backends" for the measurements behind the value).
const DefaultLazyThreshold = 512

// defaultDistBackend holds the process-wide backend default used when
// Options.DistBackend is BackendAuto; empty means "apply the threshold
// rule". Set from the -dist-backend flag of the cmds.
var defaultDistBackend atomic.Value // DistBackend

// ParseDistBackend validates a -dist-backend flag value; "auto", "dense",
// and "lazy" are accepted.
func ParseDistBackend(s string) (DistBackend, error) {
	switch s {
	case "", "auto":
		return BackendAuto, nil
	case string(BackendDense):
		return BackendDense, nil
	case string(BackendLazy):
		return BackendLazy, nil
	}
	return BackendAuto, fmt.Errorf("core: unknown distance backend %q (want auto, dense, or lazy)", s)
}

// SetDefaultDistBackend sets the backend used by instances built with
// BackendAuto; BackendAuto restores the node-threshold rule. It mirrors
// SetDefaultParallelism so commands can wire one flag without threading an
// option through every construction site.
func SetDefaultDistBackend(b DistBackend) {
	defaultDistBackend.Store(b)
}

// resolveDistBackend applies the explicit-option → process-default →
// node-threshold resolution chain.
func resolveDistBackend(b DistBackend, n int) DistBackend {
	if b == BackendAuto {
		if d, ok := defaultDistBackend.Load().(DistBackend); ok {
			b = d
		}
	}
	if b == BackendAuto {
		if n >= DefaultLazyThreshold {
			return BackendLazy
		}
		return BackendDense
	}
	return b
}

// newDistanceSource builds the distance backend for an instance: the
// caller-supplied source if any, else a dense table (built with the
// option's worker budget) or a lazy row cache with the social-pair
// endpoint rows pinned, per the resolved backend.
func newDistanceSource(g *graph.Graph, ps *pairs.Set, opts *Options) (shortestpath.DistanceSource, error) {
	if opts != nil && opts.Table != nil {
		if opts.Table.N() != g.N() {
			return nil, fmt.Errorf("core: supplied table covers %d nodes, graph has %d", opts.Table.N(), g.N())
		}
		return opts.Table, nil
	}
	var backend DistBackend
	parallelism, lazyMaxRows := 0, 0
	if opts != nil {
		backend = opts.DistBackend
		parallelism = opts.Parallelism
		lazyMaxRows = opts.LazyMaxRows
	}
	switch b := resolveDistBackend(backend, g.N()); b {
	case BackendDense:
		return shortestpath.NewTable(g, ResolveParallelism(parallelism)), nil
	case BackendLazy:
		lt := shortestpath.NewLazyTable(g, shortestpath.LazyOptions{MaxRows: lazyMaxRows})
		// Deterministic pinning: pair-set node order is fixed by the pair
		// set, so the pinned row set never depends on solver scheduling.
		lt.Pin(ps.Nodes())
		return lt, nil
	default:
		return nil, fmt.Errorf("core: unknown distance backend %q (want auto, dense, or lazy)", b)
	}
}
