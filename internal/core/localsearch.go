package core

// LocalSearchOptions tune the swap-based refinement pass.
type LocalSearchOptions struct {
	// MaxIters bounds the number of improving swaps (default 100).
	MaxIters int
}

// LocalSearch refines a placement by best-improvement swaps: repeatedly
// find the (drop, add) pair that increases σ the most and apply it,
// stopping at a swap-local optimum. Unlike AEA's stochastic single swap
// it scans the full drop×add neighborhood each round, so it can only
// improve the input. An extension beyond the paper — the natural
// post-processing pass after the sandwich algorithm.
//
// Cost per round: |F| σ-drops plus |F| full candidate scans, i.e.
// O(|F|·(N·m + rebuild)).
func LocalSearch(p Problem, start []int, opts LocalSearchOptions) Placement {
	maxIters := opts.MaxIters
	if maxIters <= 0 {
		maxIters = 100
	}
	cur := append([]int(nil), start...)
	s := p.NewSearch(cur)
	for iter := 0; iter < maxIters; iter++ {
		bestSigma := s.Sigma()
		bestDrop, bestAdd := -1, -1
		for pos := 0; pos < len(cur); pos++ {
			// Evaluate the neighborhood of dropping position pos: build a
			// search without it, scan the best addition.
			rest := make([]int, 0, len(cur)-1)
			rest = append(rest, cur[:pos]...)
			rest = append(rest, cur[pos+1:]...)
			sub := p.NewSearch(rest)
			cand, gain := sub.BestAdd()
			if sigma := sub.Sigma() + gain; sigma > bestSigma {
				bestSigma = sigma
				bestDrop, bestAdd = pos, cand
			}
		}
		if bestDrop < 0 {
			break // swap-local optimum
		}
		cur = append(cur[:bestDrop], cur[bestDrop+1:]...)
		cur = append(cur, bestAdd)
		s = p.NewSearch(cur)
	}
	return newPlacement(p, cur)
}
