package core

import (
	"context"
	"time"

	"msc/internal/obs"
	"msc/internal/telemetry"
)

// LocalSearchOptions tune the swap-based refinement pass.
type LocalSearchOptions struct {
	// MaxIters bounds the number of improving swaps (default 100).
	MaxIters int
	// Parallelism shards the drop×add neighborhood scan across workers via
	// ParBestSwap; 1 forces the serial path, <= 0 resolves via
	// ResolveParallelism. The refinement is identical for every worker
	// count.
	Parallelism int
	// Sink, when non-nil, receives one RoundEvent per applied swap (the
	// added shortcut, the σ gain of the swap, and σ after it). Tracing
	// reads solver state only, so the refinement is identical with and
	// without a sink.
	Sink telemetry.Sink
	// Context supervises the pass: checked before each swap is committed,
	// so cancellation returns the refinement achieved so far (never worse
	// than the input). nil means never canceled.
	Context context.Context
	// Deadline bounds the pass in wall-clock time (composes with Context).
	Deadline time.Duration
}

// LocalSearch refines a placement by best-improvement swaps: repeatedly
// find the (drop, add) pair that increases σ the most and apply it,
// stopping at a swap-local optimum. Unlike AEA's stochastic single swap
// it scans the full drop×add neighborhood each round, so it can only
// improve the input. An extension beyond the paper — the natural
// post-processing pass after the sandwich algorithm.
//
// Cost per round: |F| σ-drops plus |F| full candidate scans, i.e.
// O(|F|·(N·m + rebuild)).
//
// On a budgeted problem each swap additionally checks budget feasibility:
// the incoming shortcut must fit the headroom freed by the dropped one
// (parBestSwapBudget), so a budget-feasible start stays feasible through
// every round.
func LocalSearch(p Problem, start []int, opts LocalSearchOptions) Placement {
	maxIters := opts.MaxIters
	if maxIters <= 0 {
		maxIters = 100
	}
	bp, budgeted := asBudgeted(p)
	workers := ResolveParallelism(opts.Parallelism)
	ctx, cancel := superviseCtx(opts.Context, opts.Deadline)
	defer cancel()
	cur := append([]int(nil), start...)
	s := p.NewSearch(cur)
	stop := StopInfo{Reason: StopEvalBudget}
	obsOn := obs.Enabled()
	for iter := 0; iter < maxIters; iter++ {
		var start time.Time
		if opts.Sink != nil || obsOn {
			start = time.Now()
		}
		// Evaluate the full (drop, add) neighborhood: for each drop
		// position, a private search without it scans the best addition;
		// positions shard across workers (see ParBestSwap).
		prevSigma := s.Sigma()
		var bestDrop, bestAdd int
		if budgeted {
			bestDrop, bestAdd, _ = parBestSwapBudget(bp, cur, prevSigma, workers)
		} else {
			bestDrop, bestAdd, _ = ParBestSwap(p, cur, prevSigma, workers)
		}
		// Supervision before committing the swap: a canceled scan's result
		// is discarded and the refinement so far returned.
		if err := ctxErr(ctx); err != nil {
			stop.Reason = stopReasonFor(err)
			break
		}
		if bestDrop < 0 {
			stop.Reason = StopConverged
			break // swap-local optimum
		}
		cur = append(cur[:bestDrop], cur[bestDrop+1:]...)
		cur = append(cur, bestAdd)
		s = p.NewSearch(cur)
		stop.Rounds = iter + 1
		if obsOn {
			obs.ObserveRound(time.Since(start))
		}
		if opts.Sink != nil {
			e := p.CandidateEdge(bestAdd)
			sigma, sigmaWorst := sigmaParts(s)
			mu, nu := diagBounds(p, cur)
			opts.Sink.Emit(telemetry.RoundEvent{
				Algorithm:  "local_search",
				Round:      iter,
				Shortcut:   &[2]int32{int32(e.U), int32(e.V)},
				Gain:       s.Sigma() - prevSigma,
				Sigma:      sigma,
				SigmaWorst: sigmaWorst,
				Selected:   len(cur),
				Candidates: p.NumCandidates(),
				Mu:         mu,
				Nu:         nu,
				ElapsedNS:  time.Since(start).Nanoseconds(),
			})
		}
	}
	pl := newPlacement(p, cur)
	stop.Sigma = pl.Sigma
	pl.Stop = stop
	return pl
}
