package core

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"msc/internal/failprob"
	"msc/internal/graph"
	"msc/internal/pairs"
	"msc/internal/shortestpath"
	"msc/internal/xrand"
)

// budgetWorld deterministically builds a (graph, pairs, table) world for
// budgeted-solver sweeps. Like surviveInstanceRetry, a seed whose graph
// cannot supply m violating pairs perturbs the sub-seed instead of
// skipping, so every sweep seed yields a world.
func budgetWorld(t *testing.T, n, m int, dt float64, seed int64) (*graph.Graph, *pairs.Set, *shortestpath.Table) {
	t.Helper()
	for off := int64(0); off < 20; off++ {
		rng := xrand.New(seed*1000 + off)
		g := randomConnectedGraph(t, n, 2*n, rng)
		table := shortestpath.NewTable(g, 0)
		ps, err := pairs.SampleViolating(table, dt, m, rng)
		if err != nil {
			continue
		}
		return g, ps, table
	}
	t.Fatalf("seed %d: no graph yielded %d violating pairs", seed, m)
	return nil, nil, nil
}

// budgetInstance builds an instance on a prebuilt world with the given
// budget options layered on top of the shared test defaults.
func budgetInstance(t *testing.T, g *graph.Graph, ps *pairs.Set, table *shortestpath.Table, k int, dt float64, opts Options) *Instance {
	t.Helper()
	opts.AllowTrivial = true
	opts.Table = table
	inst, err := NewInstance(g, ps, failprob.Threshold{P: 1 - math.Exp(-dt), D: dt}, k, &opts)
	if err != nil {
		t.Fatalf("NewInstance: %v", err)
	}
	return inst
}

// budgetSolvers is the full budget-aware solver stack the differential
// suite drives. Each runner is deterministic given (problem, workers,
// seed); RNG solvers get a fresh generator per call so repeated runs
// reproduce exactly.
var budgetSolvers = []struct {
	name string
	run  func(t *testing.T, p Problem, workers int, seed int64) []int
}{
	{"greedy", func(t *testing.T, p Problem, w int, _ int64) []int {
		return GreedySigma(p, Parallelism(w)).Selection
	}},
	{"sandwich", func(t *testing.T, p Problem, w int, _ int64) []int {
		return Sandwich(p, Parallelism(w)).Best.Selection
	}},
	{"localsearch", func(t *testing.T, p Problem, w int, _ int64) []int {
		start := GreedySigma(p, Parallelism(w))
		return LocalSearch(p, start.Selection, LocalSearchOptions{MaxIters: 4, Parallelism: w}).Selection
	}},
	{"ea", func(t *testing.T, p Problem, w int, seed int64) []int {
		return EA(p, EAOptions{Iterations: 40, Parallelism: w}, xrand.New(seed)).Best.Selection
	}},
	{"aea", func(t *testing.T, p Problem, w int, seed int64) []int {
		return AEA(p, AEAOptions{Iterations: 40, PopSize: 4, Delta: 0.2, Parallelism: w}, xrand.New(seed)).Best.Selection
	}},
	{"random", func(t *testing.T, p Problem, w int, seed int64) []int {
		pl, err := RandomPlacement(p, 16, xrand.New(seed), Parallelism(w))
		if err != nil {
			t.Fatalf("RandomPlacement: %v", err)
		}
		return pl.Selection
	}},
}

// TestBudgetedSolversDifferential is the brute-force differential suite of
// the budgeted stack: on 24 seeds with heterogeneous length-proportional
// prices, every solver must stay budget-feasible, never beat the
// ExhaustiveBudget optimum, and return byte-identical placements across
// worker counts and across both eval-engine modes. The exhaustive
// reference itself must agree between its serial and residue-strided
// parallel enumerations, and the sandwich must honor its reported
// (budget-adjusted) approximation factor against the true optimum.
func TestBudgetedSolversDifferential(t *testing.T) {
	const budget = 4.0
	for seed := int64(1); seed <= 24; seed++ {
		g, ps, table := budgetWorld(t, 10, 5, 0.8, seed)
		inst := budgetInstance(t, g, ps, table, 3, 0.8, Options{Budget: budget, CostModel: CostLength})
		rebuilt := budgetInstance(t, g, ps, table, 3, 0.8, Options{Budget: budget, CostModel: CostLength, EvalMode: EvalRebuild})

		opt, err := ExhaustiveBudget(inst, 2_000_000)
		if err != nil {
			t.Fatalf("seed=%d: ExhaustiveBudget: %v", seed, err)
		}
		optPar, err := ExhaustiveBudget(inst, 2_000_000, Parallelism(3))
		if err != nil {
			t.Fatalf("seed=%d: parallel ExhaustiveBudget: %v", seed, err)
		}
		if !equalInts(opt.Selection, optPar.Selection) || opt.Sigma != optPar.Sigma {
			t.Fatalf("seed=%d: exhaustive serial %v (σ=%d) != parallel %v (σ=%d)",
				seed, opt.Selection, opt.Sigma, optPar.Selection, optPar.Sigma)
		}
		if got := inst.CostOf(opt.Selection); got > budget+1e-9 {
			t.Fatalf("seed=%d: exhaustive optimum spends %v of budget %v", seed, got, budget)
		}

		for _, s := range budgetSolvers {
			serial := s.run(t, inst, 1, seed)
			parallel := s.run(t, inst, 4, seed)
			if !equalInts(serial, parallel) {
				t.Fatalf("seed=%d %s: parallel %v != serial %v", seed, s.name, parallel, serial)
			}
			other := s.run(t, rebuilt, 1, seed)
			if !equalInts(serial, other) {
				t.Fatalf("seed=%d %s: rebuild eval mode %v != incremental %v", seed, s.name, other, serial)
			}
			if spent := inst.CostOf(serial); spent > budget+1e-9 {
				t.Fatalf("seed=%d %s: placement %v spends %v of budget %v", seed, s.name, serial, spent, budget)
			}
			if sigma := inst.Sigma(serial); sigma > opt.Sigma {
				t.Fatalf("seed=%d %s: σ=%d beats exhaustive optimum %d", seed, s.name, sigma, opt.Sigma)
			}
		}

		res := Sandwich(inst)
		if float64(res.Best.Sigma) < res.ApproxFactor*float64(opt.Sigma)-1e-9 {
			t.Fatalf("seed=%d: budgeted sandwich bound violated: σ=%d factor=%v opt=%d",
				seed, res.Best.Sigma, res.ApproxFactor, opt.Sigma)
		}
	}
}

// TestBudgetUnitCostEqualsCardinality locks the reduction the cost model
// is designed around: a unit-cost budget B = k run is bit-for-bit
// identical to the paper's cardinality-k run, for every solver in the
// stack. The RNG solvers require k·3 < N so the cardinality seed draw
// takes SampleDistinct's rejection branch (the one affordableFill
// reproduces); the worlds here satisfy that by construction.
func TestBudgetUnitCostEqualsCardinality(t *testing.T) {
	const k = 3
	for seed := int64(1); seed <= 12; seed++ {
		g, ps, table := budgetWorld(t, 12, 5, 0.8, seed)
		card := budgetInstance(t, g, ps, table, k, 0.8, Options{})
		bud := budgetInstance(t, g, ps, table, k, 0.8, Options{Budget: k, CostModel: CostUnit})
		if card.Budgeted() || !bud.Budgeted() {
			t.Fatalf("seed=%d: budget activation wrong: card=%v bud=%v", seed, card.Budgeted(), bud.Budgeted())
		}
		if k*3 >= card.NumCandidates() {
			t.Fatalf("seed=%d: world too small for RNG-parity precondition (k=%d, N=%d)", seed, k, card.NumCandidates())
		}
		for _, s := range budgetSolvers {
			a := s.run(t, card, 1, seed)
			b := s.run(t, bud, 1, seed)
			if !equalInts(a, b) {
				t.Fatalf("seed=%d %s: unit-cost B=k placement %v != cardinality-k placement %v", seed, s.name, b, a)
			}
		}
		ra, rb := Sandwich(card), Sandwich(bud)
		if !equalInts(ra.FMu.Selection, rb.FMu.Selection) ||
			!equalInts(ra.FSigma.Selection, rb.FSigma.Selection) ||
			!equalInts(ra.FNu.Selection, rb.FNu.Selection) {
			t.Fatalf("seed=%d: sandwich arms diverge: %v/%v/%v vs %v/%v/%v", seed,
				ra.FMu.Selection, ra.FSigma.Selection, ra.FNu.Selection,
				rb.FMu.Selection, rb.FSigma.Selection, rb.FNu.Selection)
		}
		if ra.Ratio != rb.Ratio {
			t.Fatalf("seed=%d: sandwich ratio diverges: %v vs %v", seed, ra.Ratio, rb.Ratio)
		}
		if math.Abs(rb.ApproxFactor-ra.ApproxFactor/2) > 1e-12 {
			t.Fatalf("seed=%d: budgeted factor %v is not half the cardinality factor %v", seed, rb.ApproxFactor, ra.ApproxFactor)
		}
		optA, err := Exhaustive(card, 2_000_000)
		if err != nil {
			t.Fatalf("seed=%d: Exhaustive: %v", seed, err)
		}
		optB, err := ExhaustiveBudget(bud, 2_000_000)
		if err != nil {
			t.Fatalf("seed=%d: ExhaustiveBudget: %v", seed, err)
		}
		if optA.Sigma != optB.Sigma {
			t.Fatalf("seed=%d: cardinality optimum σ=%d != unit-budget optimum σ=%d", seed, optA.Sigma, optB.Sigma)
		}
	}
}

// Property: the exact budgeted optimum is monotone in B — a larger budget
// admits a superset of the feasible selections, so σ* can only grow.
// ExhaustiveBudget results are cached per (world, budget) so the quick
// sweep costs at most len(worlds)·len(budgets) enumerations.
func TestQuickBudgetOptimumMonotone(t *testing.T) {
	type world struct {
		g     *graph.Graph
		ps    *pairs.Set
		table *shortestpath.Table
	}
	worlds := make([]world, 3)
	for i := range worlds {
		g, ps, table := budgetWorld(t, 9, 4, 0.8, int64(100+i))
		worlds[i] = world{g, ps, table}
	}
	budgets := []float64{0, 1, 1.5, 2.5, 3.5, 4.5}
	cache := map[[2]int]int{}
	sigmaOpt := func(w, b int) int {
		if v, ok := cache[[2]int{w, b}]; ok {
			return v
		}
		inst := budgetInstance(t, worlds[w].g, worlds[w].ps, worlds[w].table, 2, 0.8,
			Options{Budget: budgets[b], CostModel: CostLength})
		opt, err := ExhaustiveBudget(inst, 1_000_000)
		if err != nil {
			t.Fatalf("world=%d budget=%v: %v", w, budgets[b], err)
		}
		cache[[2]int{w, b}] = opt.Sigma
		return opt.Sigma
	}
	property := func(pick, b1, b2 uint8) bool {
		w := int(pick) % len(worlds)
		i, j := int(b1)%len(budgets), int(b2)%len(budgets)
		if budgets[i] > budgets[j] {
			i, j = j, i
		}
		return sigmaOpt(w, i) <= sigmaOpt(w, j)
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: budgeted RandomPlacement under unit costs with B = k consumes
// the exact RNG draw sequence of the cardinality sampler, for arbitrary
// quick-chosen seeds — the draw-compatibility contract of affordableFill.
func TestQuickUnitBudgetRandomParity(t *testing.T) {
	type pair struct{ card, bud *Instance }
	const k = 2
	pool := make([]pair, 4)
	for i := range pool {
		g, ps, table := budgetWorld(t, 10, 4, 0.8, int64(200+i))
		pool[i] = pair{
			card: budgetInstance(t, g, ps, table, k, 0.8, Options{}),
			bud:  budgetInstance(t, g, ps, table, k, 0.8, Options{Budget: k, CostModel: CostUnit}),
		}
	}
	property := func(pick uint8, seed int64) bool {
		p := pool[int(pick)%len(pool)]
		a, err := RandomPlacement(p.card, 8, xrand.New(seed))
		if err != nil {
			return false
		}
		b, err := RandomPlacement(p.bud, 8, xrand.New(seed))
		if err != nil {
			return false
		}
		return equalInts(a.Selection, b.Selection) && a.Sigma == b.Sigma
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestBudgetEdgeCases covers the degenerate corners of the budget surface:
// B = 0 is legal and yields the empty placement, a universe of
// unaffordable candidates degrades every solver to the empty placement
// without spinning, and malformed prices or budgets are rejected up front
// with typed *InputError values.
func TestBudgetEdgeCases(t *testing.T) {
	g := graph.NewBuilder(4).MustBuild() // no edges: both pairs violating
	ps := pairs.MustNewSet(4, []pairs.Pair{{U: 0, W: 1}, {U: 2, W: 3}})
	thr := failprob.NewThreshold(0.3)
	numCand := NumCandidatesFor(4)
	build := func(opts Options) (*Instance, error) {
		opts.AllowTrivial = true
		return NewInstance(g, ps, thr, 1, &opts)
	}
	mustBuild := func(t *testing.T, opts Options) *Instance {
		t.Helper()
		inst, err := build(opts)
		if err != nil {
			t.Fatalf("NewInstance: %v", err)
		}
		return inst
	}
	allCost := func(c float64) []float64 {
		costs := make([]float64, numCand)
		for i := range costs {
			costs[i] = c
		}
		return costs
	}

	t.Run("zero budget yields the empty placement without error", func(t *testing.T) {
		inst := mustBuild(t, Options{Budget: 0, CostModel: CostUnit})
		if !inst.Budgeted() || inst.Budget() != 0 {
			t.Fatalf("explicit B=0 not budgeted: budgeted=%v B=%v", inst.Budgeted(), inst.Budget())
		}
		if pl := GreedySigma(inst); len(pl.Selection) != 0 || pl.Sigma != 0 {
			t.Fatalf("greedy under B=0 placed %v (σ=%d)", pl.Selection, pl.Sigma)
		}
		pl, err := RandomPlacement(inst, 5, xrand.New(1))
		if err != nil || len(pl.Selection) != 0 {
			t.Fatalf("random under B=0: %v, %v", pl.Selection, err)
		}
		opt, err := ExhaustiveBudget(inst, 1000)
		if err != nil || len(opt.Selection) != 0 {
			t.Fatalf("exhaustive under B=0: %v, %v", opt.Selection, err)
		}
		res := AEA(inst, AEAOptions{Iterations: 10, PopSize: 2, Delta: 0.5}, xrand.New(1))
		if len(res.Best.Selection) != 0 {
			t.Fatalf("AEA under B=0 placed %v", res.Best.Selection)
		}
	})

	t.Run("all candidates unaffordable degrades to the empty placement", func(t *testing.T) {
		for name, opts := range map[string]Options{
			"finite but over budget": {Budget: 5, Costs: allCost(10)},
			"all infinite":           {Budget: 1e9, Costs: allCost(math.Inf(1))},
		} {
			inst := mustBuild(t, opts)
			if pl := GreedySigma(inst); len(pl.Selection) != 0 {
				t.Fatalf("%s: greedy placed %v", name, pl.Selection)
			}
			pl, err := RandomPlacement(inst, 5, xrand.New(1))
			if err != nil || len(pl.Selection) != 0 {
				t.Fatalf("%s: random placed %v, %v", name, pl.Selection, err)
			}
			res := AEA(inst, AEAOptions{Iterations: 10, PopSize: 2, Delta: 0.5}, xrand.New(1))
			if len(res.Best.Selection) != 0 {
				t.Fatalf("%s: AEA placed %v", name, res.Best.Selection)
			}
			opt, err := ExhaustiveBudget(inst, 1000)
			if err != nil || len(opt.Selection) != 0 {
				t.Fatalf("%s: exhaustive placed %v, %v", name, opt.Selection, err)
			}
		}
	})

	t.Run("single infinite price is legal and never selected", func(t *testing.T) {
		costs := allCost(1)
		heavy := 2
		costs[heavy] = math.Inf(1)
		inst := mustBuild(t, Options{Budget: 100, Costs: costs})
		pl := GreedySigma(inst)
		for _, c := range pl.Selection {
			if c == heavy {
				t.Fatalf("greedy selected the +Inf-priced candidate: %v", pl.Selection)
			}
		}
	})

	rejected := []struct {
		name  string
		opts  Options
		param string
	}{
		{"NaN cost", Options{Budget: 2, Costs: func() []float64 { c := allCost(1); c[2] = math.NaN(); return c }()}, "costs"},
		{"negative cost", Options{Budget: 2, Costs: func() []float64 { c := allCost(1); c[0] = -1; return c }()}, "costs"},
		{"zero cost", Options{Budget: 2, Costs: func() []float64 { c := allCost(1); c[4] = 0; return c }()}, "costs"},
		{"cost table length mismatch", Options{Budget: 2, Costs: []float64{1, 1}}, "costs"},
		{"negative budget", Options{Budget: -1, CostModel: CostUnit}, "budget"},
		{"NaN budget", Options{Budget: math.NaN(), CostModel: CostUnit}, "budget"},
		{"infinite budget", Options{Budget: math.Inf(1), CostModel: CostUnit}, "budget"},
		{"costs conflict with unit model", Options{Budget: 2, CostModel: CostUnit, Costs: []float64{1}}, "costs"},
		{"costs conflict with length model", Options{Budget: 2, CostModel: CostLength, Costs: []float64{1}}, "costs"},
		{"table model without costs", Options{Budget: 2, CostModel: CostTable}, "costs"},
	}
	for _, tc := range rejected {
		t.Run(tc.name+" rejected", func(t *testing.T) {
			_, err := build(tc.opts)
			var ie *InputError
			if !errors.As(err, &ie) {
				t.Fatalf("got %v (%T), want *InputError", err, err)
			}
			if ie.Param != tc.param {
				t.Fatalf("flagged param %q, want %q (%v)", ie.Param, tc.param, err)
			}
		})
	}
}

// TestGreedyBudgetFallbackSingleton pins the load-bearing best-single-item
// fallback (Khuller–Moss–Naor; cf. Ren & Zhao): the ratio greedy prefers a
// cheap mediocre shortcut whose commitment prices the excellent one out of
// the budget, and only the fallback recovers the optimum.
func TestGreedyBudgetFallbackSingleton(t *testing.T) {
	g := graph.NewBuilder(4).MustBuild()
	ps := pairs.MustNewSet(4, []pairs.Pair{{U: 0, W: 1}, {U: 2, W: 3}})
	costs := make([]float64, NumCandidatesFor(4))
	for i := range costs {
		costs[i] = math.Inf(1)
	}
	heavy := CandidateIndexFor(4, edgeOf(0, 1)) // serves the weight-5 pair
	cheap := CandidateIndexFor(4, edgeOf(2, 3)) // serves the weight-1 pair
	costs[heavy], costs[cheap] = 5, 0.5
	inst, err := NewInstance(g, ps, failprob.NewThreshold(0.3), 1, &Options{
		AllowTrivial: true, PairWeights: []int{5, 1}, Budget: 5, Costs: costs,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Ratio greedy alone: round 0 picks cheap (ratio 2 vs 1), leaving
	// 4.5 < 5 of budget, so heavy never fits and the prefix ends at σ=1.
	// The fallback singleton (heavy, σ=5) must win.
	pl := GreedySigma(inst)
	if !equalInts(pl.Selection, []int{heavy}) || pl.Sigma != 5 {
		t.Fatalf("fallback not taken: placed %v (σ=%d), want [%d] (σ=5)", pl.Selection, pl.Sigma, heavy)
	}
	opt, err := ExhaustiveBudget(inst, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Sigma != pl.Sigma {
		t.Fatalf("fallback σ=%d misses the exhaustive optimum σ=%d", pl.Sigma, opt.Sigma)
	}
}

// TestCostLengthPricing locks the length model's price formula to the raw
// distance table: 1 + D0(u,v)/d_t, evaluated lazily and cached.
func TestCostLengthPricing(t *testing.T) {
	g, ps, table := budgetWorld(t, 10, 4, 0.8, 5)
	inst := budgetInstance(t, g, ps, table, 2, 0.8, Options{Budget: 3, CostModel: CostLength})
	if inst.CostModel() != CostLength {
		t.Fatalf("cost model %q, want %q", inst.CostModel(), CostLength)
	}
	total := 0.0
	sel := make([]int, 0, 4)
	for c := 0; c < inst.NumCandidates(); c += 7 {
		e := inst.CandidateEdge(c)
		want := 1.0
		if d := table.Dist(e.U, e.V); d > 0 {
			want = 1 + d/inst.Threshold().D
		}
		if got := inst.Cost(c); got != want {
			t.Fatalf("Cost(%d) = %v, want %v", c, got, want)
		}
		sel = append(sel, c)
		total += want
	}
	if got := inst.CostOf(sel); math.Abs(got-total) > 1e-12 {
		t.Fatalf("CostOf(%v) = %v, want %v", sel, got, total)
	}
	// Cardinality instances price everything at 1, making CostOf the
	// selection size.
	card := budgetInstance(t, g, ps, table, 2, 0.8, Options{})
	if card.Cost(3) != 1 || card.CostOf([]int{0, 5, 9}) != 3 {
		t.Fatalf("cardinality pricing broken: Cost=%v CostOf=%v", card.Cost(3), card.CostOf([]int{0, 5, 9}))
	}
}

// TestExhaustiveBudgetGuards covers the typed rejections and the counting
// pre-pass of the budgeted brute force.
func TestExhaustiveBudgetGuards(t *testing.T) {
	g, ps, table := budgetWorld(t, 9, 4, 0.8, 7)
	card := budgetInstance(t, g, ps, table, 2, 0.8, Options{})
	bud := budgetInstance(t, g, ps, table, 2, 0.8, Options{Budget: 2, CostModel: CostUnit})

	var ie *InputError
	if _, err := ExhaustiveBudget(card, 1000); !errors.As(err, &ie) || ie.Param != "budget" {
		t.Fatalf("ExhaustiveBudget on a cardinality problem: %v", err)
	}
	if _, err := Exhaustive(bud, 1000); !errors.As(err, &ie) || ie.Param != "budget" {
		t.Fatalf("Exhaustive on a budgeted problem: %v", err)
	}
	if _, err := ExhaustiveBudget(bud, 0); !errors.As(err, &ie) || ie.Param != "maxEvals" {
		t.Fatalf("ExhaustiveBudget with maxEvals=0: %v", err)
	}
	if _, err := ExhaustiveBudget(bud, 3); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("ExhaustiveBudget beyond the eval cap: %v", err)
	}
}

// TestParseCostModelAndDefaults covers the flag-value surface and the
// explicit-option → process-default → built-in resolution chain, including
// the SetDefaultBudget activation path mscbench uses.
func TestParseCostModelAndDefaults(t *testing.T) {
	for in, want := range map[string]CostModel{
		"": CostModelAuto, "auto": CostModelAuto, "unit": CostUnit,
		"length": CostLength, "table": CostTable,
	} {
		got, err := ParseCostModel(in)
		if err != nil || got != want {
			t.Fatalf("ParseCostModel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseCostModel("bogus"); err == nil {
		t.Fatal("ParseCostModel(bogus) did not error")
	}

	SetDefaultCostModel(CostLength)
	defer SetDefaultCostModel(CostModelAuto)
	if got := resolveCostModel(CostModelAuto); got != CostLength {
		t.Fatalf("resolve auto with default length = %v", got)
	}
	if got := resolveCostModel(CostUnit); got != CostUnit {
		t.Fatalf("explicit unit must override default, got %v", got)
	}

	// A process-wide budget turns instances built with no budget options
	// into budgeted ones, priced by the default model installed above.
	SetDefaultBudget(2)
	defer SetDefaultBudget(0)
	g, ps, table := budgetWorld(t, 9, 4, 0.8, 11)
	inst := budgetInstance(t, g, ps, table, 2, 0.8, Options{})
	if !inst.Budgeted() || inst.Budget() != 2 || inst.CostModel() != CostLength {
		t.Fatalf("process default not applied: budgeted=%v B=%v model=%q",
			inst.Budgeted(), inst.Budget(), inst.CostModel())
	}
}

// TestBudgetedSurvivableDifferential threads the knapsack budget through
// the survivable scalarization: on 8 seeds the budgeted shortcut-mode
// greedy must match an exhaustive recompute of the ratio-greedy recursion
// with the KMN fallback under the lexicographic (σ⁻, σ) objective, and
// stay byte-identical across worker counts.
func TestBudgetedSurvivableDifferential(t *testing.T) {
	const budget = 3.5
	for seed := int64(1); seed <= 8; seed++ {
		g, ps, table := budgetWorld(t, 10, 4, 0.8, seed)
		inst := budgetInstance(t, g, ps, table, 3, 0.8,
			Options{Budget: budget, CostModel: CostLength, Survive: SurviveShortcut})

		// Reference: the same cost-benefit recursion, evaluated from
		// scratch with survivableValue (duplicates legal, each re-charged).
		var want []int
		rem := budget
		singleC, singleGain := -1, 0
		for round := 0; ; round++ {
			cur := inst.survivableValue(want)
			scratch := append([]int(nil), want...)
			bestC, bestGain := -1, 0
			bestCost := 0.0
			for c := 0; c < inst.NumCandidates(); c++ {
				gain := inst.survivableValue(append(scratch, c)) - cur
				if gain <= 0 {
					continue
				}
				cost := inst.Cost(c)
				if round == 0 && cost <= budget && gain > singleGain {
					singleC, singleGain = c, gain
				}
				if cost > rem {
					continue
				}
				l, r := float64(gain)*bestCost, float64(bestGain)*cost
				if bestC < 0 || l > r || (l == r && gain > bestGain) {
					bestC, bestGain, bestCost = c, gain, cost
				}
			}
			if bestC < 0 {
				break
			}
			want = append(want, bestC)
			rem -= bestCost
		}
		if singleC >= 0 && inst.survivableValue([]int{singleC}) > inst.survivableValue(want) {
			want = []int{singleC}
		}

		serial := GreedySigma(inst, Parallelism(1))
		parallel := GreedySigma(inst, Parallelism(4))
		if !equalInts(serial.Selection, want) {
			t.Fatalf("seed=%d: budgeted survivable greedy picked %v, reference %v", seed, serial.Selection, want)
		}
		if !equalInts(parallel.Selection, serial.Selection) {
			t.Fatalf("seed=%d: parallel %v != serial %v", seed, parallel.Selection, serial.Selection)
		}
		if spent := inst.CostOf(serial.Selection); spent > budget+1e-9 {
			t.Fatalf("seed=%d: survivable placement spends %v of budget %v", seed, spent, budget)
		}
	}
}
