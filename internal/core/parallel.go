package core

import (
	"context"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"msc/internal/telemetry"
)

// This file is the shared parallel candidate-scan engine. Every placement
// algorithm bottoms out in a scan over the N = n(n−1)/2 candidate shortcuts
// (GreedySigma and AEA through Search.GainsAdd, LocalSearch through its
// drop×add neighborhood, RandomPlacement and Exhaustive through repeated σ
// evaluations); the engine shards those scans across workers while keeping
// the results byte-identical to the serial code path.
//
// Determinism contract: for every worker count, each scan produces exactly
// the values the serial scan produces. Shards are contiguous index blocks
// writing to disjoint output ranges (no shared mutable state, no atomics on
// the hot path), integer reductions are exact, and per-shard argmax results
// are reduced in shard order with ties broken toward the lowest candidate
// index — the same tie-break the serial scans use. Parallel and serial runs
// therefore return identical placements; the equivalence suite in
// parallel_test.go locks the contract in under the race detector.

var _ ParallelSigma = (*Instance)(nil)

// Option configures a solver entry point (GreedySigma, Sandwich,
// RandomPlacement, Exhaustive, LocalSearch via its options struct). EA and
// AEA carry the equivalent Parallelism field on their options structs.
type Option func(*solveConfig)

type solveConfig struct {
	workers int
	sink    telemetry.Sink
	// ctx supervises the run (WithContext); nil means never canceled.
	ctx context.Context
	// timeout is a relative deadline (WithDeadline); resolveConfig wraps
	// ctx with it and records cancel for release().
	timeout time.Duration
	cancel  context.CancelFunc
}

// Parallelism fixes the number of candidate-scan workers a solver may use.
// n = 1 restores the fully serial code path; n <= 0 (and omitting the
// option) selects the package default — runtime.GOMAXPROCS(0) unless
// overridden with SetDefaultParallelism.
func Parallelism(n int) Option {
	return func(c *solveConfig) { c.workers = n }
}

// WithSink attaches a telemetry sink to a solver run: GreedySigma emits one
// RoundEvent per greedy round, Sandwich additionally a SandwichEvent; other
// Option-taking solvers accept and ignore it. A nil sink (or omitting the
// option) disables tracing entirely — emission sites nil-check before doing
// any work, so detached telemetry adds no allocations and no time to the
// candidate-scan hot path, and placements are identical with or without a
// sink.
func WithSink(s telemetry.Sink) Option {
	return func(c *solveConfig) { c.sink = s }
}

// defaultParallelism holds the package-wide default worker count; 0 means
// runtime.GOMAXPROCS(0). Stored atomically so command-line entry points can
// set it once at startup while solvers read it freely.
var defaultParallelism atomic.Int64

// SetDefaultParallelism sets the worker count used by solvers that receive
// no explicit Parallelism option. n <= 0 restores the GOMAXPROCS default.
func SetDefaultParallelism(n int) {
	if n < 0 {
		n = 0
	}
	defaultParallelism.Store(int64(n))
}

// ResolveParallelism normalizes a Parallelism value: n >= 1 is returned
// unchanged; n <= 0 resolves to the package default set by
// SetDefaultParallelism, else runtime.GOMAXPROCS(0).
func ResolveParallelism(n int) int {
	if n >= 1 {
		return n
	}
	if d := int(defaultParallelism.Load()); d >= 1 {
		return d
	}
	return runtime.GOMAXPROCS(0)
}

func resolveOptions(opts []Option) int {
	return resolveConfig(opts).workers
}

func resolveConfig(opts []Option) solveConfig {
	var c solveConfig
	for _, o := range opts {
		o(&c)
	}
	c.workers = ResolveParallelism(c.workers)
	if c.timeout > 0 {
		c.ctx, c.cancel = superviseCtx(c.ctx, c.timeout)
	}
	return c
}

// ParallelSearch extends Search with sharded candidate scans. A Search
// remains single-caller (no concurrent method calls); SetWorkers only
// allows the implementation to fan each scan out internally, using
// goroutine-private scratch so results stay identical to a serial scan.
type ParallelSearch interface {
	Search
	// SetWorkers fixes the shard count for subsequent scans (GainsAdd,
	// BestAdd, SigmaDrops, BestDrop). 1 means fully serial; n <= 0 resolves
	// via ResolveParallelism.
	SetWorkers(n int)
	// SigmaDrops returns σ(S \ {S[pos]}) for every selection position in
	// one sharded pass. Like GainsAdd, the slice is scratch owned by the
	// Search: valid until the next call, not to be retained or modified.
	SigmaDrops() []int
}

// ScanTimer is implemented by searches that can time their sharded
// candidate scans for telemetry. Timing is off by default — recording costs
// two monotonic clock reads per shard per scan, so solvers enable it only
// when a trace sink is attached.
type ScanTimer interface {
	// EnableScanTiming turns per-shard timing of GainsAdd scans on or off.
	EnableScanTiming(on bool)
	// LastScanShards reports the fastest and slowest per-shard wall time of
	// the most recent timed gains scan and its shard count; zeros when no
	// timed scan has run.
	LastScanShards() (minNS, maxNS int64, shards int)
}

// EvalStats is implemented by searches that track the incremental
// evaluation engine's work (see search.go): how many endpoint rows the
// committed shortcuts' O(n) merges changed vs. proved untouched, and how
// many pairs the gains scans recomputed vs. kept verbatim. LastEvalStats
// drains the accumulators, so each call reports the work since the
// previous one — GreedySigma calls it once per committed round to fill the
// RoundEvent fields. All four stay 0 under EvalRebuild.
type EvalStats interface {
	LastEvalStats() (rowsMerged, rowsUnchanged, pairsRescanned, pairsSkipped int64)
}

// lastEvalStats drains a search's incremental-evaluation stats, or returns
// zeros for searches without incremental state.
func lastEvalStats(s Search) (rowsMerged, rowsUnchanged, pairsRescanned, pairsSkipped int64) {
	if es, ok := s.(EvalStats); ok {
		return es.LastEvalStats()
	}
	return 0, 0, 0, 0
}

// enableScanTiming turns scan timing on when the search supports it.
func enableScanTiming(s Search) {
	if st, ok := s.(ScanTimer); ok {
		st.EnableScanTiming(true)
	}
}

// lastScanShards reads the most recent timed scan's shard extrema, or zeros
// for searches without timing support.
func lastScanShards(s Search) (minNS, maxNS int64, shards int) {
	if st, ok := s.(ScanTimer); ok {
		return st.LastScanShards()
	}
	return 0, 0, 0
}

// setSearchWorkers applies a worker count when the search supports sharded
// scans; other implementations keep their serial behavior.
func setSearchWorkers(s Search, workers int) {
	if ps, ok := s.(ParallelSearch); ok {
		ps.SetWorkers(workers)
	}
}

// sigmaDrops returns σ(S \ {S[pos]}) for every position, using the sharded
// scan when available and a serial loop otherwise. buf is an optional
// scratch slice for the serial fallback.
func sigmaDrops(s Search, buf []int) []int {
	if ps, ok := s.(ParallelSearch); ok {
		return ps.SigmaDrops()
	}
	if cap(buf) < s.Len() {
		buf = make([]int, s.Len())
	}
	buf = buf[:s.Len()]
	for pos := range buf {
		buf[pos] = s.SigmaDrop(pos)
	}
	return buf
}

// ParallelSigma is implemented by problems whose σ oracle can shard its
// per-pair distance checks across workers. SigmaPar(sel, w) must equal
// Sigma(sel) for every worker count.
type ParallelSigma interface {
	SigmaPar(sel []int, workers int) int
}

// SigmaOf evaluates p.Sigma(sel) with the given parallelism when the
// problem supports it, falling back to the serial oracle otherwise.
func SigmaOf(p Problem, sel []int, workers int) int {
	if workers > 1 {
		if ps, ok := p.(ParallelSigma); ok {
			return ps.SigmaPar(sel, workers)
		}
	}
	return p.Sigma(sel)
}

// ParallelFor splits [0, n) into at most `workers` contiguous shards of
// near-equal size and runs fn(shard, lo, hi) on one goroutine per shard,
// returning when all complete. fn must confine its writes to
// shard-indexed or [lo, hi)-indexed state. With workers <= 1 (or n <= 1)
// fn runs inline on the caller's goroutine.
//
// Panic isolation: a panic inside a worker goroutine is recovered there,
// the remaining shards drain normally (the WaitGroup never deadlocks and no
// goroutine leaks), and the first panicking shard — in shard order, for
// determinism — is re-raised on the caller's goroutine as a typed
// *ShardPanicError carrying the shard's index range and stack. Nested
// ParallelFor calls propagate the innermost ShardPanicError unchanged, so
// the reported range always names the scan that actually failed.
func ParallelFor(workers, n int, fn func(shard, lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, 0, n)
		return
	}
	panics := make([]*ShardPanicError, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := n * w / workers
		hi := n * (w + 1) / workers
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(shard, lo, hi int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					if inner, ok := r.(*ShardPanicError); ok {
						panics[shard] = inner
						return
					}
					panics[shard] = &ShardPanicError{
						Shard: shard, Lo: lo, Hi: hi,
						Value: r, Stack: debug.Stack(),
					}
				}
			}()
			fn(shard, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	for _, p := range panics {
		if p != nil {
			panic(p)
		}
	}
}

// ParBestAdd returns the candidate with the largest σ gain (ties toward
// the lowest candidate index), computing the gains with the given
// parallelism when the search supports sharded scans. It is the parallel
// form of Search.BestAdd and returns identical results for every worker
// count.
func ParBestAdd(s Search, workers int) (cand, gain int) {
	setSearchWorkers(s, workers)
	return s.BestAdd()
}

// ParBestDrop returns the selection position whose removal leaves the
// largest σ (ties toward the lowest position), sharding the per-position
// evaluations when the search supports it. It is the parallel form of
// Search.BestDrop.
func ParBestDrop(s Search, workers int) (pos, sigma int) {
	setSearchWorkers(s, workers)
	return s.BestDrop()
}

// ParBestSwap scans the full (drop, add) swap neighborhood of sel: for
// each drop position it builds a private Search on the remaining selection
// and scans the best addition. Drop positions shard across workers — each
// worker owns its cloned Search and scratch distance buffers, so no state
// is shared — and the per-shard bests reduce deterministically: highest σ
// first, ties toward the lowest drop position, exactly as the serial scan
// resolves them. It returns drop = -1 when no swap yields σ > curSigma.
func ParBestSwap(p Problem, sel []int, curSigma, workers int) (drop, add, sigma int) {
	if len(sel) == 0 {
		return -1, -1, curSigma
	}
	// Workers beyond the position count flow into each position's own
	// candidate scan instead of going idle.
	inner := workers / len(sel)
	if inner < 1 {
		inner = 1
	}
	type swapBest struct {
		drop, add, sigma int
	}
	shards := workers
	if shards > len(sel) {
		shards = len(sel)
	}
	bests := make([]swapBest, shards)
	ParallelFor(workers, len(sel), func(shard, lo, hi int) {
		best := swapBest{drop: -1, add: -1, sigma: curSigma}
		rest := make([]int, 0, len(sel)-1)
		for pos := lo; pos < hi; pos++ {
			rest = append(rest[:0], sel[:pos]...)
			rest = append(rest, sel[pos+1:]...)
			sub := p.NewSearch(rest)
			setSearchWorkers(sub, inner)
			cand, gain := sub.BestAdd()
			if cand < 0 {
				continue // empty candidate universe: nothing to swap in
			}
			if sigma := sub.Sigma() + gain; sigma > best.sigma {
				best = swapBest{drop: pos, add: cand, sigma: sigma}
			}
		}
		bests[shard] = best
	})
	out := swapBest{drop: -1, add: -1, sigma: curSigma}
	for _, b := range bests[:shards] {
		if b.sigma > out.sigma {
			out = b
		}
	}
	return out.drop, out.add, out.sigma
}

// parBestSwapBudget is ParBestSwap under a knapsack budget: a swap is
// admissible only when the incoming candidate fits the headroom freed by
// the dropped one, B − CostOf(sel) + Cost(sel[pos]). The add scan is
// BestAdd's unconditional argmax (ties toward the lowest index, any gain
// sign — the σ > curSigma filter below rejects non-improving swaps)
// restricted to affordable candidates, so under unit costs with B = k it
// reproduces ParBestSwap exactly. Sharding and reduction are identical to
// ParBestSwap.
func parBestSwapBudget(bp BudgetProblem, sel []int, curSigma, workers int) (drop, add, sigma int) {
	if len(sel) == 0 {
		return -1, -1, curSigma
	}
	inner := workers / len(sel)
	if inner < 1 {
		inner = 1
	}
	spent := bp.CostOf(sel)
	type swapBest struct {
		drop, add, sigma int
	}
	shards := workers
	if shards > len(sel) {
		shards = len(sel)
	}
	bests := make([]swapBest, shards)
	ParallelFor(workers, len(sel), func(shard, lo, hi int) {
		best := swapBest{drop: -1, add: -1, sigma: curSigma}
		rest := make([]int, 0, len(sel)-1)
		for pos := lo; pos < hi; pos++ {
			rest = append(rest[:0], sel[:pos]...)
			rest = append(rest, sel[pos+1:]...)
			rem := bp.Budget() - spent + bp.Cost(sel[pos])
			sub := bp.NewSearch(rest)
			setSearchWorkers(sub, inner)
			gains := sub.GainsAdd()
			cand, gain := -1, 0
			for c, g := range gains {
				if bp.Cost(c) <= rem && (cand < 0 || g > gain) {
					cand, gain = c, g
				}
			}
			if cand < 0 {
				continue // no affordable candidate to swap in
			}
			if sigma := sub.Sigma() + gain; sigma > best.sigma {
				best = swapBest{drop: pos, add: cand, sigma: sigma}
			}
		}
		bests[shard] = best
	})
	out := swapBest{drop: -1, add: -1, sigma: curSigma}
	for _, b := range bests[:shards] {
		if b.sigma > out.sigma {
			out = b
		}
	}
	return out.drop, out.add, out.sigma
}

// triRowBounds splits the rows of the upper-triangular candidate grid over
// t nodes (row ai holds the t−1−ai cells with first endpoint ai) into at
// most `workers` contiguous row ranges of roughly equal cell count.
// bounds[w]..bounds[w+1] is shard w's row range; empty ranges are allowed.
func triRowBounds(t, workers int) []int {
	rows := t - 1
	if rows < 1 {
		rows = 1
	}
	if workers > rows {
		workers = rows
	}
	if workers < 1 {
		workers = 1
	}
	total := t * (t - 1) / 2
	bounds := make([]int, workers+1)
	for w := 1; w < workers; w++ {
		target := total * w / workers
		ai := bounds[w-1]
		for ai < rows && rowStart(t, ai) < target {
			ai++
		}
		bounds[w] = ai
	}
	bounds[workers] = rows
	return bounds
}
