package core

import (
	"math"
	"reflect"
	"sync"
	"testing"

	"msc/internal/failprob"
	"msc/internal/graph"
	"msc/internal/pairs"
	"msc/internal/shortestpath"
	"msc/internal/telemetry"
	"msc/internal/xrand"
)

// This file locks in the telemetry contract: with a sink attached, every
// iterative solver emits a faithful per-round trace; with the sink
// detached, placements are identical and the candidate-scan hot path adds
// zero allocations.

// memSink collects events in memory for assertions.
type memSink struct {
	mu     sync.Mutex
	events []telemetry.Event
}

func (s *memSink) Emit(e telemetry.Event) {
	s.mu.Lock()
	s.events = append(s.events, e)
	s.mu.Unlock()
}

func (s *memSink) rounds(alg string) []telemetry.RoundEvent {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []telemetry.RoundEvent
	for _, e := range s.events {
		if r, ok := e.(telemetry.RoundEvent); ok && r.Algorithm == alg {
			out = append(out, r)
		}
	}
	return out
}

// TestGreedySigmaTraceMatchesReport is the acceptance check for the trace
// layer: GreedySigma with a sink emits exactly one RoundEvent per greedy
// round, and the σ trajectory those events report agrees with the final
// placement, with a σ oracle replay of the selection prefixes, and with
// Report/Summarize.
func TestGreedySigmaTraceMatchesReport(t *testing.T) {
	rng := xrand.New(301)
	inst := testInstance(t, 24, 10, 4, 0.8, rng)
	sink := &memSink{}
	pl := GreedySigma(inst, WithSink(sink))

	rounds := sink.rounds("greedy_sigma")
	if len(rounds) != len(pl.Selection) {
		t.Fatalf("%d round events for %d greedy rounds", len(rounds), len(pl.Selection))
	}
	if len(rounds) == 0 {
		t.Skip("greedy found no improving shortcut on this instance")
	}
	prevSigma := inst.BaseSigma()
	for i, ev := range rounds {
		if ev.Round != i {
			t.Fatalf("event %d has round index %d", i, ev.Round)
		}
		if ev.Shortcut == nil {
			t.Fatalf("round %d event carries no shortcut", i)
		}
		e := inst.CandidateEdge(pl.Selection[i])
		if got := *ev.Shortcut; got != [2]int32{int32(e.U), int32(e.V)} {
			t.Fatalf("round %d shortcut %v, placement edge %v", i, got, e)
		}
		// σ after the round must match an oracle replay of the prefix.
		if oracle := inst.Sigma(pl.Selection[:i+1]); ev.Sigma != oracle {
			t.Fatalf("round %d σ %d, oracle %d", i, ev.Sigma, oracle)
		}
		if ev.Gain != ev.Sigma-prevSigma {
			t.Fatalf("round %d gain %d, σ step %d−%d", i, ev.Gain, ev.Sigma, prevSigma)
		}
		if ev.Gain <= 0 {
			t.Fatalf("round %d committed a non-positive gain %d", i, ev.Gain)
		}
		if ev.Selected != i+1 {
			t.Fatalf("round %d selected %d", i, ev.Selected)
		}
		if ev.Candidates != inst.NumCandidates() {
			t.Fatalf("round %d candidates %d, universe %d", i, ev.Candidates, inst.NumCandidates())
		}
		// Sandwich bounds of the traced selection: μ ≤ σ ≤ ν.
		if ev.Mu > float64(ev.Sigma)+1e-9 || float64(ev.Sigma) > ev.Nu+1e-9 {
			t.Fatalf("round %d bounds violated: μ=%v σ=%d ν=%v", i, ev.Mu, ev.Sigma, ev.Nu)
		}
		// The greedy candidate scan is instrumented: shard extrema are
		// populated and ordered.
		if ev.Shards < 1 {
			t.Fatalf("round %d reports %d scan shards", i, ev.Shards)
		}
		if ev.ShardMinNS < 0 || ev.ShardMaxNS < ev.ShardMinNS {
			t.Fatalf("round %d shard times out of order: min=%d max=%d", i, ev.ShardMinNS, ev.ShardMaxNS)
		}
		prevSigma = ev.Sigma
	}
	last := rounds[len(rounds)-1]
	if last.Sigma != pl.Sigma {
		t.Fatalf("final event σ %d, placement σ %d", last.Sigma, pl.Sigma)
	}
	// The trace agrees with the operator-facing diagnostics.
	sum := Summarize(inst.Report(pl.Selection))
	if sum.Maintained != pl.Sigma || sum.Maintained != last.Sigma {
		t.Fatalf("Summarize maintained %d, placement σ %d, trace σ %d", sum.Maintained, pl.Sigma, last.Sigma)
	}
}

// TestSandwichTrace checks the closing SandwichEvent against the result
// struct and that the F_σ arm's per-round trace rode along.
func TestSandwichTrace(t *testing.T) {
	rng := xrand.New(302)
	inst := testInstance(t, 20, 8, 3, 0.8, rng)
	sink := &memSink{}
	res := Sandwich(inst, WithSink(sink))

	var sw []telemetry.SandwichEvent
	for _, e := range sink.events {
		if s, ok := e.(telemetry.SandwichEvent); ok {
			sw = append(sw, s)
		}
	}
	if len(sw) != 1 {
		t.Fatalf("want 1 sandwich event, got %d", len(sw))
	}
	ev := sw[0]
	if ev.Sigma != res.Best.Sigma || ev.SigmaMu != res.FMu.Sigma ||
		ev.SigmaSigma != res.FSigma.Sigma || ev.SigmaNu != res.FNu.Sigma {
		t.Fatalf("sandwich event %+v disagrees with result", ev)
	}
	if ev.Ratio != res.Ratio || ev.ApproxFactor != res.ApproxFactor || ev.NuAtFSigma != res.NuAtFSigma {
		t.Fatalf("bound fields %+v disagree with result", ev)
	}
	switch ev.Best {
	case "mu", "sigma", "nu":
	default:
		t.Fatalf("best arm %q", ev.Best)
	}
	if rounds := sink.rounds("greedy_sigma"); len(rounds) != len(res.FSigma.Selection) {
		t.Fatalf("F_σ arm traced %d rounds for %d shortcuts", len(rounds), len(res.FSigma.Selection))
	}
}

// TestIterativeSolversEmitPerIteration pins the event cadence of EA, AEA,
// and LocalSearch: EA/AEA one RoundEvent per iteration, LocalSearch one per
// applied swap with strictly positive gains.
func TestIterativeSolversEmitPerIteration(t *testing.T) {
	rng := xrand.New(303)
	inst := testInstance(t, 20, 8, 3, 0.8, rng)
	const iters = 25

	sink := &memSink{}
	EA(inst, EAOptions{Iterations: iters, Sink: sink}, xrand.New(7))
	if got := len(sink.rounds("ea")); got != iters {
		t.Fatalf("EA emitted %d events for %d iterations", got, iters)
	}

	sink = &memSink{}
	aopts := DefaultAEAOptions()
	aopts.Iterations = iters
	aopts.Sink = sink
	AEA(inst, aopts, xrand.New(7))
	if got := len(sink.rounds("aea")); got != iters {
		t.Fatalf("AEA emitted %d events for %d iterations", got, iters)
	}

	sink = &memSink{}
	start := xrand.New(9).SampleDistinct(inst.NumCandidates(), inst.K())
	refined := LocalSearch(inst, start, LocalSearchOptions{Sink: sink})
	swaps := sink.rounds("local_search")
	sigma := inst.Sigma(start)
	for i, ev := range swaps {
		if ev.Gain <= 0 {
			t.Fatalf("swap %d committed gain %d", i, ev.Gain)
		}
		if ev.Sigma != sigma+ev.Gain {
			t.Fatalf("swap %d σ %d, previous %d + gain %d", i, ev.Sigma, sigma, ev.Gain)
		}
		sigma = ev.Sigma
	}
	if len(swaps) > 0 && swaps[len(swaps)-1].Sigma != refined.Sigma {
		t.Fatalf("last swap σ %d, refined σ %d", swaps[len(swaps)-1].Sigma, refined.Sigma)
	}
}

// TestSinkDetachedPlacementsIdentical is the "telemetry is free" half of
// the contract: attaching a sink must not change any solver's output, and
// detaching it must reproduce the pre-telemetry placements exactly.
func TestSinkDetachedPlacementsIdentical(t *testing.T) {
	rng := xrand.New(304)
	inst := testInstance(t, 22, 9, 4, 0.8, rng)
	sink := &memSink{}

	plain := GreedySigma(inst)
	traced := GreedySigma(inst, WithSink(sink))
	if !reflect.DeepEqual(plain, traced) {
		t.Fatalf("GreedySigma differs with sink: %+v vs %+v", plain, traced)
	}

	sres := Sandwich(inst)
	stres := Sandwich(inst, WithSink(sink))
	if !reflect.DeepEqual(sres, stres) {
		t.Fatalf("Sandwich differs with sink")
	}

	ea := EA(inst, EAOptions{Iterations: 30}, xrand.New(5))
	eat := EA(inst, EAOptions{Iterations: 30, Sink: sink}, xrand.New(5))
	if !reflect.DeepEqual(ea.Best, eat.Best) {
		t.Fatalf("EA differs with sink: %+v vs %+v", ea.Best, eat.Best)
	}

	aopts := DefaultAEAOptions()
	aopts.Iterations = 30
	aea := AEA(inst, aopts, xrand.New(5))
	aopts.Sink = sink
	aeat := AEA(inst, aopts, xrand.New(5))
	if !reflect.DeepEqual(aea.Best, aeat.Best) {
		t.Fatalf("AEA differs with sink: %+v vs %+v", aea.Best, aeat.Best)
	}

	start := xrand.New(6).SampleDistinct(inst.NumCandidates(), inst.K())
	ls := LocalSearch(inst, start, LocalSearchOptions{})
	lst := LocalSearch(inst, start, LocalSearchOptions{Sink: sink})
	if !reflect.DeepEqual(ls, lst) {
		t.Fatalf("LocalSearch differs with sink: %+v vs %+v", ls, lst)
	}
}

// TestCounterTotalsSerialParallelEquivalence extends the serial-vs-parallel
// equivalence suite to the work counters: the same run at 1 worker and at 8
// workers must report identical totals, because counters tally logical work
// (scans, evaluations), not per-goroutine activity.
func TestCounterTotalsSerialParallelEquivalence(t *testing.T) {
	countRun := func(seed int64, run func(inst *Instance)) telemetry.CounterSnapshot {
		// A fresh instance per run keeps lazily built caches (bounds,
		// query scratch) from making the first run look more expensive.
		inst := testInstance(t, 22, 9, 4, 0.8, xrand.New(seed))
		before := telemetry.Global().Snapshot()
		run(inst)
		return telemetry.Global().Snapshot().Sub(before)
	}

	algs := []struct {
		name string
		run  func(inst *Instance, workers int)
	}{
		{"greedy_sigma", func(inst *Instance, w int) { GreedySigma(inst, Parallelism(w)) }},
		{"sandwich", func(inst *Instance, w int) { Sandwich(inst, Parallelism(w)) }},
		{"ea", func(inst *Instance, w int) {
			EA(inst, EAOptions{Iterations: 20, Parallelism: w}, xrand.New(11))
		}},
		{"local_search", func(inst *Instance, w int) {
			start := xrand.New(12).SampleDistinct(inst.NumCandidates(), inst.K())
			LocalSearch(inst, start, LocalSearchOptions{Parallelism: w})
		}},
	}
	for _, alg := range algs {
		serial := countRun(305, func(inst *Instance) { alg.run(inst, 1) })
		parallel := countRun(305, func(inst *Instance) { alg.run(inst, 8) })
		if serial != parallel {
			t.Errorf("%s: counter totals differ\n serial:   %+v\n parallel: %+v", alg.name, serial, parallel)
		}
		if serial.CandidateEvals == 0 && serial.SigmaEvals == 0 {
			t.Errorf("%s: no work counted at all", alg.name)
		}
	}
}

// TestCandidateScanZeroAllocs is the acceptance allocation check: with no
// sink attached, the candidate-scan hot path (GainAdd and a warm serial
// GainsAdd) performs zero allocations per operation — instrumentation is
// one atomic add, never an allocation. Both eval modes are covered: under
// EvalIncremental a warm GainsAdd is a pure return, under EvalRebuild it
// re-runs the fused grid scan — neither may allocate.
func TestCandidateScanZeroAllocs(t *testing.T) {
	rng := xrand.New(306)
	inst := testInstance(t, 24, 10, 4, 0.8, rng)
	for _, mode := range []EvalMode{EvalIncremental, EvalRebuild} {
		mi, err := NewInstance(inst.Graph(), inst.Pairs(), inst.Threshold(), inst.K(),
			&Options{AllowTrivial: true, Table: inst.Table(), EvalMode: mode})
		if err != nil {
			t.Fatalf("NewInstance(%s): %v", mode, err)
		}
		s := mi.NewSearch(nil)
		setSearchWorkers(s, 1)
		s.GainsAdd() // warm scratch buffers

		if allocs := testing.AllocsPerRun(50, func() { s.GainsAdd() }); allocs != 0 {
			t.Errorf("%s: GainsAdd (serial, warm) allocates %v/op", mode, allocs)
		}
		if allocs := testing.AllocsPerRun(50, func() { s.GainAdd(3) }); allocs != 0 {
			t.Errorf("%s: GainAdd allocates %v/op", mode, allocs)
		}
	}
}

// benchInstance mirrors testInstance for benchmarks (testing.TB covers
// both, but the shared helpers are typed to *testing.T).
func benchInstance(tb testing.TB, n, m, k int, dt float64, rng *xrand.Rand) *Instance {
	tb.Helper()
	b := graph.NewBuilder(n)
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		b.AddEdge(graph.NodeID(perm[i]), graph.NodeID(perm[rng.Intn(i)]), 0.1+rng.Float64())
	}
	for e := 0; e < 2*n; e++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			b.AddEdge(graph.NodeID(u), graph.NodeID(v), 0.1+rng.Float64())
		}
	}
	g, err := b.Build()
	if err != nil {
		tb.Fatal(err)
	}
	table := shortestpath.NewTable(g, 0)
	ps, err := pairs.SampleViolating(table, dt, m, rng)
	if err != nil {
		tb.Skipf("could not sample %d violating pairs: %v", m, err)
	}
	inst, err := NewInstance(g, ps, failprob.Threshold{P: 1 - math.Exp(-dt), D: dt}, k,
		&Options{AllowTrivial: true, Table: table})
	if err != nil {
		tb.Fatalf("NewInstance: %v", err)
	}
	return inst
}

// BenchmarkGainsAddSerialNoSink is the alloc/op evidence the acceptance
// criteria call for; run with -benchmem. It pins EvalRebuild so every
// iteration re-runs the fused grid scan — under the incremental default a
// warm GainsAdd is a pure return and would measure nothing.
func BenchmarkGainsAddSerialNoSink(b *testing.B) {
	rng := xrand.New(307)
	inst0 := benchInstance(b, 64, 20, 6, 0.8, rng)
	inst, err := NewInstance(inst0.Graph(), inst0.Pairs(), inst0.Threshold(), inst0.K(),
		&Options{AllowTrivial: true, Table: inst0.Table(), EvalMode: EvalRebuild})
	if err != nil {
		b.Fatalf("NewInstance: %v", err)
	}
	s := inst.NewSearch(nil)
	setSearchWorkers(s, 1)
	s.GainsAdd()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.GainsAdd()
	}
}
