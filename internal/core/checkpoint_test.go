package core

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"msc/internal/telemetry"
	"msc/internal/xrand"
)

// This file locks in the checkpoint/resume contract for the evolutionary
// algorithms: a run stopped at iteration r and resumed from its
// checkpoint is bit-identical — population, best, RNG position,
// evaluation counts, final placement — to the run that never stopped.

// lastCheckpointOf pulls the final CheckpointEvent a memSink collected.
func lastCheckpointOf(t *testing.T, s *memSink) *telemetry.CheckpointEvent {
	t.Helper()
	s.mu.Lock()
	defer s.mu.Unlock()
	var last *telemetry.CheckpointEvent
	for _, e := range s.events {
		if cp, ok := e.(telemetry.CheckpointEvent); ok {
			c := cp
			last = &c
		}
	}
	if last == nil {
		t.Fatal("sink collected no checkpoint")
	}
	return last
}

// cancelAfterSink cancels a context once it has seen n RoundEvents —
// a deterministic mid-run cancellation landing exactly on the iteration
// boundary after round n.
type cancelAfterSink struct {
	n      int
	seen   int
	cancel context.CancelFunc
}

func (s *cancelAfterSink) Emit(e telemetry.Event) {
	if _, ok := e.(telemetry.RoundEvent); !ok {
		return
	}
	s.seen++
	if s.seen == s.n {
		s.cancel()
	}
}

func TestEACheckpointResumeBitIdentical(t *testing.T) {
	inst := testInstance(t, 24, 10, 4, 0.9, xrand.New(31))
	const total, stopAt = 80, 33

	// Straight-through reference run.
	refSink := &memSink{}
	ref := EA(inst, EAOptions{Iterations: total, CheckpointSink: refSink}, xrand.New(5))
	refCP := lastCheckpointOf(t, refSink)

	// Stage 1: same run, canceled deterministically after stopAt rounds.
	ctx, cancel := context.WithCancel(context.Background())
	stage1Sink := &memSink{}
	stage1 := EA(inst, EAOptions{
		Iterations:     total,
		Context:        ctx,
		Sink:           &cancelAfterSink{n: stopAt, cancel: cancel},
		CheckpointSink: stage1Sink,
	}, xrand.New(5))
	cancel()
	if stage1.Best.Stop.Reason != StopCanceled {
		t.Fatalf("stage 1 Stop.Reason = %q, want %q", stage1.Best.Stop.Reason, StopCanceled)
	}
	if stage1.Best.Stop.Rounds != stopAt {
		t.Fatalf("stage 1 stopped after %d rounds, want %d", stage1.Best.Stop.Rounds, stopAt)
	}
	cp := lastCheckpointOf(t, stage1Sink)
	if cp.Round != stopAt {
		t.Fatalf("checkpoint at round %d, want %d", cp.Round, stopAt)
	}

	// Stage 2: resume from the cancellation checkpoint to the same total.
	stage2Sink := &memSink{}
	stage2 := EA(inst, EAOptions{
		Iterations:     total,
		Resume:         cp,
		CheckpointSink: stage2Sink,
	}, xrand.New(999)) // seed irrelevant: Resume repositions the RNG
	resCP := lastCheckpointOf(t, stage2Sink)

	comparePlacements(t, "EA resumed vs straight", ref.Best, stage2.Best)
	if ref.Evaluations != stage2.Evaluations {
		t.Fatalf("evaluations differ: straight %d, resumed %d", ref.Evaluations, stage2.Evaluations)
	}
	if ref.PopulationSize != stage2.PopulationSize {
		t.Fatalf("population sizes differ: straight %d, resumed %d", ref.PopulationSize, stage2.PopulationSize)
	}
	if !reflect.DeepEqual(refCP, resCP) {
		t.Fatalf("final checkpoints differ:\nstraight: %+v\nresumed:  %+v", refCP, resCP)
	}
}

func TestAEACheckpointResumeBitIdentical(t *testing.T) {
	inst := testInstance(t, 24, 10, 4, 0.9, xrand.New(32))
	const total, stopAt = 60, 21

	base := DefaultAEAOptions()
	base.Iterations = total

	refOpts := base
	refSink := &memSink{}
	refOpts.CheckpointSink = refSink
	ref := AEA(inst, refOpts, xrand.New(6))
	refCP := lastCheckpointOf(t, refSink)

	ctx, cancel := context.WithCancel(context.Background())
	s1Opts := base
	s1Sink := &memSink{}
	s1Opts.Context = ctx
	s1Opts.Sink = &cancelAfterSink{n: stopAt, cancel: cancel}
	s1Opts.CheckpointSink = s1Sink
	stage1 := AEA(inst, s1Opts, xrand.New(6))
	cancel()
	if stage1.Best.Stop.Reason != StopCanceled || stage1.Best.Stop.Rounds != stopAt {
		t.Fatalf("stage 1 stop = %+v, want canceled at round %d", stage1.Best.Stop, stopAt)
	}
	cp := lastCheckpointOf(t, s1Sink)
	if cp.Round != stopAt {
		t.Fatalf("checkpoint at round %d, want %d", cp.Round, stopAt)
	}

	s2Opts := base
	s2Sink := &memSink{}
	s2Opts.Resume = cp
	s2Opts.CheckpointSink = s2Sink
	stage2 := AEA(inst, s2Opts, xrand.New(404))
	resCP := lastCheckpointOf(t, s2Sink)

	comparePlacements(t, "AEA resumed vs straight", ref.Best, stage2.Best)
	if !reflect.DeepEqual(refCP, resCP) {
		t.Fatalf("final checkpoints differ:\nstraight: %+v\nresumed:  %+v", refCP, resCP)
	}
}

// TestEACheckpointCadence: CheckpointEvery > 0 emits periodic snapshots
// plus the final one; every intermediate snapshot is itself resumable to
// the same end state.
func TestEACheckpointCadence(t *testing.T) {
	inst := testInstance(t, 20, 8, 3, 0.9, xrand.New(33))
	const total, every = 40, 10
	sink := &memSink{}
	ref := EA(inst, EAOptions{Iterations: total, CheckpointSink: sink, CheckpointEvery: every}, xrand.New(9))

	sink.mu.Lock()
	var cps []telemetry.CheckpointEvent
	for _, e := range sink.events {
		if cp, ok := e.(telemetry.CheckpointEvent); ok {
			cps = append(cps, cp)
		}
	}
	sink.mu.Unlock()
	// Rounds 10, 20, 30 periodic + 40 final.
	wantRounds := []int{10, 20, 30, 40}
	if len(cps) != len(wantRounds) {
		t.Fatalf("got %d checkpoints, want %d", len(cps), len(wantRounds))
	}
	for i, cp := range cps {
		if cp.Round != wantRounds[i] {
			t.Fatalf("checkpoint %d at round %d, want %d", i, cp.Round, wantRounds[i])
		}
	}
	for _, cp := range cps[:len(cps)-1] {
		c := cp
		resumed := EA(inst, EAOptions{Iterations: total, Resume: &c}, xrand.New(123))
		comparePlacements(t, "EA resumed from cadence checkpoint", ref.Best, resumed.Best)
		if resumed.Evaluations != ref.Evaluations {
			t.Fatalf("resume from round %d: evaluations %d, want %d", c.Round, resumed.Evaluations, ref.Evaluations)
		}
	}
}

// TestCheckpointRoundTripsThroughJSONL: the file protocol mscplace uses —
// JSONLSink out, LastCheckpoint back — preserves the snapshot exactly.
func TestCheckpointRoundTripsThroughJSONL(t *testing.T) {
	inst := testInstance(t, 20, 8, 3, 0.9, xrand.New(34))
	var buf bytes.Buffer
	jsink := telemetry.NewJSONL(&buf)
	ref := EA(inst, EAOptions{Iterations: 30, CheckpointSink: jsink, CheckpointEvery: 7}, xrand.New(11))
	if err := jsink.Err(); err != nil {
		t.Fatal(err)
	}
	cp, err := telemetry.LastCheckpoint(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if cp.Algorithm != "ea" || cp.Round != 30 {
		t.Fatalf("last checkpoint = %+v, want ea at round 30", cp)
	}
	resumed := EA(inst, EAOptions{Iterations: 30, Resume: cp}, xrand.New(77))
	comparePlacements(t, "EA resumed from JSONL", ref.Best, resumed.Best)
}

func TestLastCheckpointErrors(t *testing.T) {
	if _, err := telemetry.LastCheckpoint(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty stream should error")
	}
	if _, err := telemetry.LastCheckpoint(bytes.NewReader([]byte("{\"event\":\"round\"}\n"))); err == nil {
		t.Fatal("stream without checkpoints should error")
	}
	if _, err := telemetry.LastCheckpoint(bytes.NewReader([]byte("not json\n"))); err == nil {
		t.Fatal("malformed stream should error")
	}
}

func TestCheckpointDue(t *testing.T) {
	cases := []struct {
		done, total, every int
		want               bool
	}{
		{10, 100, 10, true},
		{15, 100, 10, false},
		{100, 100, 10, true}, // final state always snapshots
		{100, 100, 0, true},
		{50, 100, 0, false},
	}
	for _, tc := range cases {
		if got := checkpointDue(tc.done, tc.total, tc.every); got != tc.want {
			t.Errorf("checkpointDue(%d, %d, %d) = %v, want %v", tc.done, tc.total, tc.every, got, tc.want)
		}
	}
}

func TestCheckResumePanicsOnMismatch(t *testing.T) {
	cp := &telemetry.CheckpointEvent{Algorithm: "ea", Round: 10}
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("algorithm mismatch", func() { checkResume("aea", cp, 100) })
	mustPanic("round beyond budget", func() { checkResume("ea", cp, 5) })
}
