package core

import (
	"errors"
	"math"
)

// ErrTooLarge is returned by Exhaustive when the search space exceeds the
// given cap.
var ErrTooLarge = errors.New("core: exhaustive search space too large")

// Exhaustive computes the exact optimal placement by enumerating every
// selection of up to k candidates. It is exponential and exists to verify
// approximation ratios on test-sized instances; maxEvals caps the number of
// σ evaluations (use ~1e6).
//
// Because σ is monotone in F, it suffices to enumerate selections of size
// exactly min(k, N).
//
// With Parallelism > 1 the enumeration is residue-strided: every worker
// walks the (cheap) lexicographic combination sequence but evaluates only
// combinations whose enumeration index falls in its residue class,
// tracking its local best with the lowest enumeration index on ties. The
// per-worker bests reduce serially — highest σ, ties toward the lowest
// enumeration index — which is exactly the combination the serial
// first-strictly-better loop keeps.
func Exhaustive(p Problem, maxEvals int, opts ...Option) (Placement, error) {
	workers := resolveOptions(opts)
	numCand := p.NumCandidates()
	k := p.K()
	if k > numCand {
		k = numCand
	}
	total := binomial(numCand, k)
	if total < 0 || total > float64(maxEvals) {
		return Placement{}, ErrTooLarge
	}
	if workers <= 1 || k == 0 {
		sel := make([]int, k)
		for i := range sel {
			sel[i] = i
		}
		var bestSel []int
		bestSigma := -1
		for {
			if sigma := p.Sigma(sel); sigma > bestSigma {
				bestSigma = sigma
				bestSel = append([]int(nil), sel...)
			}
			if !nextCombination(sel, numCand) {
				break
			}
		}
		if bestSel == nil { // k == 0
			bestSel = []int{}
		}
		return newPlacement(p, bestSel), nil
	}
	type exhBest struct {
		sel   []int
		sigma int
		index int
	}
	bests := make([]exhBest, workers)
	ParallelFor(workers, workers, func(shard, _, _ int) {
		sel := make([]int, k)
		for i := range sel {
			sel[i] = i
		}
		best := exhBest{sigma: -1, index: -1}
		for index := 0; ; index++ {
			if index%workers == shard {
				if sigma := p.Sigma(sel); sigma > best.sigma {
					best = exhBest{sel: append([]int(nil), sel...), sigma: sigma, index: index}
				}
			}
			if !nextCombination(sel, numCand) {
				break
			}
		}
		bests[shard] = best
	})
	winner := bests[0]
	for _, b := range bests[1:] {
		if b.sigma > winner.sigma || (b.sigma == winner.sigma && b.index < winner.index) {
			winner = b
		}
	}
	return newPlacement(p, winner.sel), nil
}

// nextCombination advances sel to the next k-combination of [0, n) in
// lexicographic order, returning false after the last one.
func nextCombination(sel []int, n int) bool {
	k := len(sel)
	if k == 0 {
		return false
	}
	i := k - 1
	for i >= 0 && sel[i] == n-k+i {
		i--
	}
	if i < 0 {
		return false
	}
	sel[i]++
	for j := i + 1; j < k; j++ {
		sel[j] = sel[j-1] + 1
	}
	return true
}

func binomial(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	res := 1.0
	for i := 0; i < k; i++ {
		res *= float64(n-i) / float64(i+1)
		if math.IsInf(res, 1) {
			return res
		}
	}
	return res
}
