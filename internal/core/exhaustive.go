package core

import (
	"errors"
	"fmt"
	"math"
)

// ErrTooLarge is returned by Exhaustive when the search space exceeds the
// given cap.
var ErrTooLarge = errors.New("core: exhaustive search space too large")

// Exhaustive computes the exact optimal placement by enumerating every
// selection of up to k candidates. It is exponential and exists to verify
// approximation ratios on test-sized instances; maxEvals caps the number of
// σ evaluations (use ~1e6). It rejects maxEvals < 1 and budgets exceeding
// the candidate universe with a typed *InputError.
//
// Because σ is monotone in F, it suffices to enumerate selections of size
// exactly k.
//
// With Parallelism > 1 the enumeration is residue-strided: every worker
// walks the (cheap) lexicographic combination sequence but evaluates only
// combinations whose enumeration index falls in its residue class,
// tracking its local best with the lowest enumeration index on ties. The
// per-worker bests reduce serially — highest σ, ties toward the lowest
// enumeration index — which is exactly the combination the serial
// first-strictly-better loop keeps.
//
// With WithContext/WithDeadline attached, cancellation returns the best
// placement among the combinations evaluated so far with Stop.Reason
// reporting why; a full enumeration reports StopConverged — the returned
// placement is exact.
func Exhaustive(p Problem, maxEvals int, opts ...Option) (Placement, error) {
	cfg := resolveConfig(opts)
	defer cfg.release()
	if _, ok := asBudgeted(p); ok {
		return Placement{}, &InputError{Param: "budget", Reason: "problem is budgeted; use ExhaustiveBudget"}
	}
	numCand := p.NumCandidates()
	if maxEvals < 1 {
		return Placement{}, &InputError{Param: "maxEvals", Value: maxEvals, Reason: "must be at least 1"}
	}
	k := p.K()
	if k > numCand {
		return Placement{}, &InputError{Param: "k", Value: k,
			Reason: fmt.Sprintf("budget exceeds the %d candidate edges", numCand)}
	}
	total := binomial(numCand, k)
	if total < 0 || total > float64(maxEvals) {
		return Placement{}, ErrTooLarge
	}
	stop := StopInfo{Reason: StopConverged}
	finish := func(sel []int) (Placement, error) {
		pl := newPlacement(p, sel)
		stop.Sigma = pl.Sigma
		pl.Stop = stop
		return pl, nil
	}
	if cfg.workers <= 1 || k == 0 {
		sel := make([]int, k)
		for i := range sel {
			sel[i] = i
		}
		var bestSel []int
		bestSigma := -1
		for {
			if err := cfg.err(); err != nil {
				stop.Reason = stopReasonFor(err)
				break
			}
			if sigma := p.Sigma(sel); sigma > bestSigma {
				bestSigma = sigma
				bestSel = append([]int(nil), sel...)
			}
			stop.Rounds++
			if !nextCombination(sel, numCand) {
				break
			}
		}
		if bestSel == nil { // k == 0 or canceled before the first evaluation
			bestSel = []int{}
		}
		return finish(bestSel)
	}
	type exhBest struct {
		sel   []int
		sigma int
		index int
		evals int
	}
	bests := make([]exhBest, cfg.workers)
	ParallelFor(cfg.workers, cfg.workers, func(shard, _, _ int) {
		sel := make([]int, k)
		for i := range sel {
			sel[i] = i
		}
		best := exhBest{sigma: -1, index: -1}
		for index := 0; ; index++ {
			if index%cfg.workers == shard {
				if cfg.err() != nil {
					break
				}
				if sigma := p.Sigma(sel); sigma > best.sigma {
					best = exhBest{sel: append([]int(nil), sel...), sigma: sigma, index: index, evals: best.evals}
				}
				best.evals++
			}
			if !nextCombination(sel, numCand) {
				break
			}
		}
		bests[shard] = best
	})
	if err := cfg.err(); err != nil {
		stop.Reason = stopReasonFor(err)
	}
	winner := bests[0]
	stop.Rounds = bests[0].evals
	for _, b := range bests[1:] {
		stop.Rounds += b.evals
		if b.sigma > winner.sigma || (b.sigma == winner.sigma && b.index < winner.index) {
			winner = b
		}
	}
	if winner.sel == nil { // canceled before any shard evaluated
		winner.sel = []int{}
	}
	return finish(winner.sel)
}

// ExhaustiveBudget computes the exact optimal budget-feasible placement by
// enumerating every selection whose total cost fits the budget — the
// brute-force reference the budgeted solvers are verified against. It
// rejects non-budgeted problems and maxEvals < 1 with a typed *InputError;
// maxEvals caps the number of σ evaluations, counted in a cheap pre-pass
// (ErrTooLarge beyond it).
//
// σ is monotone, but unlike the cardinality case no single selection size
// dominates, so the enumeration visits every feasible subset — the empty
// one first, then depth-first in lexicographic prefix order ({0}, {0,1},
// {0,1,2}, …). A budget of 0 admits only the empty placement.
//
// With Parallelism > 1 the enumeration is residue-strided exactly like
// Exhaustive: every worker walks the (cheap, evaluation-free) feasibility
// tree but evaluates only subsets whose enumeration index falls in its
// residue class, and the per-worker bests reduce serially — highest σ,
// ties toward the lowest enumeration index — matching the serial
// first-strictly-better loop for every worker count.
//
// With WithContext/WithDeadline attached, cancellation returns the best
// placement among the subsets evaluated so far with Stop.Reason reporting
// why; a full enumeration reports StopConverged — the returned placement
// is exact.
func ExhaustiveBudget(p Problem, maxEvals int, opts ...Option) (Placement, error) {
	cfg := resolveConfig(opts)
	defer cfg.release()
	bp, ok := asBudgeted(p)
	if !ok {
		return Placement{}, &InputError{Param: "budget", Reason: "problem is not budgeted; use Exhaustive"}
	}
	if maxEvals < 1 {
		return Placement{}, &InputError{Param: "maxEvals", Value: maxEvals, Reason: "must be at least 1"}
	}
	numCand := p.NumCandidates()
	total := 0
	walkBudget(bp, numCand, func(sel []int, index int) bool {
		total++
		return total <= maxEvals
	})
	if total > maxEvals {
		return Placement{}, ErrTooLarge
	}
	stop := StopInfo{Reason: StopConverged}
	finish := func(sel []int) (Placement, error) {
		pl := newPlacement(p, sel)
		stop.Sigma = pl.Sigma
		pl.Stop = stop
		return pl, nil
	}
	if cfg.workers <= 1 {
		bestSel := []int{}
		bestSigma := -1
		walkBudget(bp, numCand, func(sel []int, index int) bool {
			if err := cfg.err(); err != nil {
				stop.Reason = stopReasonFor(err)
				return false
			}
			if sigma := p.Sigma(sel); sigma > bestSigma {
				bestSigma = sigma
				bestSel = append([]int(nil), sel...)
			}
			stop.Rounds++
			return true
		})
		return finish(bestSel)
	}
	type exhBest struct {
		sel   []int
		sigma int
		index int
		evals int
	}
	bests := make([]exhBest, cfg.workers)
	ParallelFor(cfg.workers, cfg.workers, func(shard, _, _ int) {
		best := exhBest{sigma: -1, index: -1}
		walkBudget(bp, numCand, func(sel []int, index int) bool {
			if index%cfg.workers != shard {
				return true
			}
			if cfg.err() != nil {
				return false
			}
			if sigma := p.Sigma(sel); sigma > best.sigma {
				best = exhBest{sel: append([]int(nil), sel...), sigma: sigma, index: index, evals: best.evals}
			}
			best.evals++
			return true
		})
		bests[shard] = best
	})
	if err := cfg.err(); err != nil {
		stop.Reason = stopReasonFor(err)
	}
	winner := bests[0]
	stop.Rounds = bests[0].evals
	for _, b := range bests[1:] {
		stop.Rounds += b.evals
		if b.sigma > winner.sigma || (b.sigma == winner.sigma && b.index < winner.index) {
			winner = b
		}
	}
	if winner.sel == nil { // canceled before any shard evaluated
		winner.sel = []int{}
	}
	return finish(winner.sel)
}

// walkBudget visits every budget-feasible selection of distinct candidates
// — the empty one first, then depth-first in lexicographic prefix order —
// calling visit with the current selection (scratch: valid only during the
// call) and its enumeration index. visit returns false to stop the walk.
// Candidate costs are positive, so the tree is finite.
func walkBudget(bp BudgetProblem, numCand int, visit func(sel []int, index int) bool) {
	sel := make([]int, 0, numCand)
	index := 0
	if !visit(sel, index) {
		return
	}
	var rec func(start int, rem float64) bool
	rec = func(start int, rem float64) bool {
		for c := start; c < numCand; c++ {
			cost := bp.Cost(c)
			if cost > rem {
				continue
			}
			sel = append(sel, c)
			index++
			if !visit(sel, index) {
				return false
			}
			if !rec(c+1, rem-cost) {
				return false
			}
			sel = sel[:len(sel)-1]
		}
		return true
	}
	rec(0, bp.Budget())
}

// nextCombination advances sel to the next k-combination of [0, n) in
// lexicographic order, returning false after the last one.
func nextCombination(sel []int, n int) bool {
	k := len(sel)
	if k == 0 {
		return false
	}
	i := k - 1
	for i >= 0 && sel[i] == n-k+i {
		i--
	}
	if i < 0 {
		return false
	}
	sel[i]++
	for j := i + 1; j < k; j++ {
		sel[j] = sel[j-1] + 1
	}
	return true
}

func binomial(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	res := 1.0
	for i := 0; i < k; i++ {
		res *= float64(n-i) / float64(i+1)
		if math.IsInf(res, 1) {
			return res
		}
	}
	return res
}
