package core

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"msc/internal/failprob"
	"msc/internal/pairs"
	"msc/internal/shortestpath"
	"msc/internal/telemetry"
	"msc/internal/xrand"
)

// This file is the eval-differential suite: for every placement algorithm,
// an instance evaluated incrementally (O(n) row merges + delta gains
// rescans on Add) and one evaluated by full rebuilds must produce
// byte-identical placements, and within the incremental mode the patched
// gains array must match a cold rescan of the merged rows bit for bit.
// Run under -race it also certifies the sharded merge and gains patch.

// evalPair builds an incremental-mode and a rebuild-mode instance over the
// same graph, pair set, threshold, budget, and distance table, so the only
// difference between the two is the evaluation strategy.
func evalPair(t *testing.T, n, m, k int, dt float64, rng *xrand.Rand) (inc, reb *Instance) {
	t.Helper()
	g := randomConnectedGraph(t, n, 2*n, rng)
	table := shortestpath.NewTable(g, 0)
	ps, err := pairs.SampleViolating(table, dt, m, rng)
	if err != nil {
		t.Skipf("could not sample %d violating pairs: %v", m, err)
	}
	thr := failprob.Threshold{P: 1 - math.Exp(-dt), D: dt}
	inc, err = NewInstance(g, ps, thr, k, &Options{AllowTrivial: true, Table: table, EvalMode: EvalIncremental})
	if err != nil {
		t.Fatalf("NewInstance(incremental): %v", err)
	}
	reb, err = NewInstance(g, ps, thr, k, &Options{AllowTrivial: true, Table: table, EvalMode: EvalRebuild})
	if err != nil {
		t.Fatalf("NewInstance(rebuild): %v", err)
	}
	return inc, reb
}

// TestEvalDifferentialSolvers runs every solver on incremental and rebuild
// instances across ≥24 seeds, serial and parallel, and requires identical
// placements. The logical-work counters the two modes share (candidate and
// σ evaluations) must also match: incrementality may only change how a
// scan is carried out, never how many scans the algorithm asks for.
func TestEvalDifferentialSolvers(t *testing.T) {
	const seeds = 24
	for seed := int64(0); seed < seeds; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := xrand.New(9800 + seed)
			n := 13 + int(seed%5)
			inc, reb := evalPair(t, n, 6, 3, 0.8, rng)

			for _, workers := range []int{1, 8} {
				workers := workers
				t.Run(fmt.Sprintf("par%d", workers), func(t *testing.T) {
					t.Run("greedy_sigma", func(t *testing.T) {
						var ipl, rpl Placement
						ic := runCounted(func() { ipl = GreedySigma(inc, Parallelism(workers)) })
						rc := runCounted(func() { rpl = GreedySigma(reb, Parallelism(workers)) })
						comparePlacements(t, "GreedySigma", ipl, rpl)
						if ic.CandidateEvals != rc.CandidateEvals || ic.SigmaEvals != rc.SigmaEvals {
							t.Errorf("GreedySigma logical work differs: incremental (cand=%d, σ=%d), rebuild (cand=%d, σ=%d)",
								ic.CandidateEvals, ic.SigmaEvals, rc.CandidateEvals, rc.SigmaEvals)
						}
						if rc.RowsMerged != 0 || rc.RowsUnchanged != 0 || rc.PairsSkipped != 0 {
							t.Errorf("rebuild mode touched incremental counters: %+v", rc)
						}
					})

					t.Run("sandwich", func(t *testing.T) {
						ires := Sandwich(inc, Parallelism(workers))
						rres := Sandwich(reb, Parallelism(workers))
						comparePlacements(t, "Sandwich.Best", ires.Best, rres.Best)
						comparePlacements(t, "Sandwich.FMu", ires.FMu, rres.FMu)
						comparePlacements(t, "Sandwich.FSigma", ires.FSigma, rres.FSigma)
						comparePlacements(t, "Sandwich.FNu", ires.FNu, rres.FNu)
						if ires.Ratio != rres.Ratio || ires.ApproxFactor != rres.ApproxFactor {
							t.Errorf("sandwich guarantee differs: incremental (%v, %v), rebuild (%v, %v)",
								ires.Ratio, ires.ApproxFactor, rres.Ratio, rres.ApproxFactor)
						}
					})

					t.Run("ea", func(t *testing.T) {
						ires := EA(inc, EAOptions{Iterations: 30, Parallelism: workers}, xrand.New(seed))
						rres := EA(reb, EAOptions{Iterations: 30, Parallelism: workers}, xrand.New(seed))
						comparePlacements(t, "EA.Best", ires.Best, rres.Best)
						if ires.Evaluations != rres.Evaluations {
							t.Errorf("EA evaluations differ: incremental %d, rebuild %d", ires.Evaluations, rres.Evaluations)
						}
					})

					t.Run("aea", func(t *testing.T) {
						opts := AEAOptions{Iterations: 30, PopSize: 5, Delta: 0.05, RecordTrace: true, Parallelism: workers}
						ires := AEA(inc, opts, xrand.New(seed))
						rres := AEA(reb, opts, xrand.New(seed))
						comparePlacements(t, "AEA.Best", ires.Best, rres.Best)
						if !reflect.DeepEqual(ires.Trace, rres.Trace) {
							t.Errorf("AEA trace differs between eval modes")
						}
					})

					t.Run("random_placement", func(t *testing.T) {
						ipl, ierr := RandomPlacement(inc, 25, xrand.New(seed), Parallelism(workers))
						rpl, rerr := RandomPlacement(reb, 25, xrand.New(seed), Parallelism(workers))
						if ierr != nil || rerr != nil {
							t.Fatalf("RandomPlacement: incremental err %v, rebuild err %v", ierr, rerr)
						}
						comparePlacements(t, "RandomPlacement", ipl, rpl)
					})

					t.Run("local_search", func(t *testing.T) {
						start := xrand.New(seed).SampleDistinct(inc.NumCandidates(), inc.K())
						ipl := LocalSearch(inc, start, LocalSearchOptions{Parallelism: workers})
						rpl := LocalSearch(reb, start, LocalSearchOptions{Parallelism: workers})
						comparePlacements(t, "LocalSearch", ipl, rpl)
					})
				})
			}
		})
	}
}

// TestEvalGainsPatchMatchesColdScan is the bit-identity check at the heart
// of the incremental engine: after every Add, the gains array the delta
// patch maintained in place must equal — cell for cell — what a cold fused
// rescan of the (merged) rows computes, and σ must agree with the
// instance's overlay oracle. It also exercises the RemoveAt rebuild
// fallback and the first cold scan after it.
func TestEvalGainsPatchMatchesColdScan(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		for _, workers := range []int{1, 8} {
			t.Run(fmt.Sprintf("seed%d/par%d", seed, workers), func(t *testing.T) {
				rng := xrand.New(9900 + seed)
				inc, _ := evalPair(t, 14+int(seed%4), 7, 4, 0.8, rng)
				s := inc.NewSearch(nil).(*instSearch)
				s.SetWorkers(workers)

				verify := func(step string) {
					warm := append([]int(nil), s.GainsAdd()...)
					if !s.gainsValid {
						t.Fatalf("%s: gains not valid after a completed scan", step)
					}
					s.gainsValid = false // force the cold path over the same rows
					cold := s.GainsAdd()
					if !reflect.DeepEqual(warm, cold) {
						t.Fatalf("%s: patched gains differ from cold rescan\npatched %v\ncold    %v", step, warm, cold)
					}
					if oracle := s.inst.Sigma(s.sel); s.sigma != oracle {
						t.Fatalf("%s: search σ %d, oracle σ %d", step, s.sigma, oracle)
					}
				}

				verify("initial")
				adds := 0
				for adds < inc.K() {
					cand, gain := s.BestAdd()
					if cand < 0 || gain <= 0 {
						break
					}
					s.Add(cand)
					adds++
					verify(fmt.Sprintf("after add %d", adds))
				}
				if adds == 0 {
					t.Skip("no improving shortcut on this instance")
				}
				// RemoveAt must drop the live gains and rebuild exactly.
				s.RemoveAt(0)
				if s.gainsValid {
					t.Fatal("gains still marked valid after RemoveAt")
				}
				verify("after remove")
				if cand, gain := s.BestAdd(); cand >= 0 && gain > 0 {
					s.Add(cand)
					verify("after re-add")
				}
			})
		}
	}
}

// TestEvalCountersWorkerInvariance pins the new counters' determinism: the
// same incremental greedy run at 1 and at 8 workers must report identical
// totals for every counter, including rows merged/unchanged and pairs
// rescanned/skipped, and the run must actually exercise the delta paths.
func TestEvalCountersWorkerInvariance(t *testing.T) {
	countRun := func(workers int) telemetry.CounterSnapshot {
		rng := xrand.New(9950)
		inc, _ := evalPair(t, 18, 9, 4, 0.8, rng)
		before := telemetry.Global().Snapshot()
		GreedySigma(inc, Parallelism(workers))
		return telemetry.Global().Snapshot().Sub(before)
	}
	serial := countRun(1)
	parallel := countRun(8)
	if serial != parallel {
		t.Errorf("incremental counter totals differ\n serial:   %+v\n parallel: %+v", serial, parallel)
	}
	if serial.RowsMerged == 0 {
		t.Error("greedy run merged no rows — incremental path not engaged")
	}
	if serial.RowsMerged+serial.RowsUnchanged == 0 || serial.PairsRescanned == 0 {
		t.Errorf("incremental counters not populated: %+v", serial)
	}
}

// TestEvalStatsRoundTrace checks the per-round plumbing: GreedySigma with
// a sink reports the incremental work of each round in its RoundEvents,
// and LastEvalStats drains (a second read returns zeros).
func TestEvalStatsRoundTrace(t *testing.T) {
	rng := xrand.New(9960)
	inc, reb := evalPair(t, 20, 8, 4, 0.8, rng)

	sink := &memSink{}
	pl := GreedySigma(inc, WithSink(sink))
	rounds := sink.rounds("greedy_sigma")
	if len(rounds) != len(pl.Selection) {
		t.Fatalf("%d round events for %d greedy rounds", len(rounds), len(pl.Selection))
	}
	if len(rounds) == 0 {
		t.Skip("greedy found no improving shortcut on this instance")
	}
	var merged, rescanned int64
	for _, ev := range rounds {
		if ev.RowsMerged < 0 || ev.RowsUnchanged < 0 || ev.PairsRescanned < 0 || ev.PairsSkipped < 0 {
			t.Fatalf("negative eval stats in round %d: %+v", ev.Round, ev)
		}
		merged += ev.RowsMerged + ev.RowsUnchanged
		rescanned += ev.PairsRescanned
	}
	if merged == 0 || rescanned == 0 {
		t.Errorf("incremental rounds report no eval work: merged+unchanged=%d rescanned=%d", merged, rescanned)
	}

	// The search's accumulators were drained by the sink path.
	s := inc.NewSearch(nil)
	s.GainsAdd()
	es := s.(EvalStats)
	if _, _, pr, _ := es.LastEvalStats(); pr == 0 {
		t.Error("cold scan reported no rescanned pairs")
	}
	if rm, ru, pr, psk := es.LastEvalStats(); rm != 0 || ru != 0 || pr != 0 || psk != 0 {
		t.Errorf("LastEvalStats did not drain: (%d, %d, %d, %d)", rm, ru, pr, psk)
	}

	// Rebuild-mode rounds carry zero incremental stats.
	sink = &memSink{}
	GreedySigma(reb, WithSink(sink))
	for _, ev := range sink.rounds("greedy_sigma") {
		if ev.RowsMerged != 0 || ev.RowsUnchanged != 0 || ev.PairsSkipped != 0 {
			t.Fatalf("rebuild-mode round %d carries incremental stats: %+v", ev.Round, ev)
		}
	}
}

// TestEvalMergeStress is the -race certification of the sharded merge and
// gains patch at a size where every pass (row pre-pass, classification,
// delta patch, in-place merge) runs multi-shard for many rounds, and the
// final placement still matches the rebuild reference.
func TestEvalMergeStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	rng := xrand.New(9970)
	inc, reb := evalPair(t, 120, 24, 8, 0.8, rng)
	ipl := GreedySigma(inc, Parallelism(8))
	rpl := GreedySigma(reb, Parallelism(8))
	comparePlacements(t, "GreedySigma(stress)", ipl, rpl)
	if len(ipl.Selection) == 0 {
		t.Skip("no improving shortcut at stress size")
	}
}

// TestEvalModeResolution pins the resolution chain: explicit option →
// process default (SetDefaultEvalMode) → incremental.
func TestEvalModeResolution(t *testing.T) {
	defer SetDefaultEvalMode(EvalModeAuto)

	def := pathInstance(t, 32, &Options{AllowTrivial: true})
	if def.EvalMode() != EvalIncremental {
		t.Errorf("auto default: got %q, want %q", def.EvalMode(), EvalIncremental)
	}

	SetDefaultEvalMode(EvalRebuild)
	reb := pathInstance(t, 32, &Options{AllowTrivial: true})
	if reb.EvalMode() != EvalRebuild {
		t.Errorf("default rebuild: got %q, want %q", reb.EvalMode(), EvalRebuild)
	}
	// An explicit option always beats the process default.
	explicit := pathInstance(t, 32, &Options{AllowTrivial: true, EvalMode: EvalIncremental})
	if explicit.EvalMode() != EvalIncremental {
		t.Errorf("explicit incremental under default rebuild: got %q", explicit.EvalMode())
	}

	SetDefaultEvalMode(EvalModeAuto)
	restored := pathInstance(t, 32, &Options{AllowTrivial: true})
	if restored.EvalMode() != EvalIncremental {
		t.Errorf("after reset: got %q, want %q", restored.EvalMode(), EvalIncremental)
	}
}

func TestParseEvalMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want EvalMode
	}{
		{"", EvalModeAuto},
		{"auto", EvalModeAuto},
		{"incremental", EvalIncremental},
		{"rebuild", EvalRebuild},
	} {
		got, err := ParseEvalMode(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseEvalMode(%q) = (%q, %v), want (%q, nil)", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParseEvalMode("lazy"); err == nil {
		t.Error("ParseEvalMode(\"lazy\") succeeded, want error")
	}
}

// TestEvalModeOptionValidation rejects an unknown mode smuggled past
// ParseEvalMode into Options.
func TestEvalModeOptionValidation(t *testing.T) {
	rng := xrand.New(9980)
	g := randomConnectedGraph(t, 12, 24, rng)
	table := shortestpath.NewTable(g, 0)
	ps, err := pairs.SampleViolating(table, 0.8, 4, rng)
	if err != nil {
		t.Skipf("could not sample pairs: %v", err)
	}
	thr := failprob.Threshold{P: 1 - math.Exp(-0.8), D: 0.8}
	if _, err := NewInstance(g, ps, thr, 2, &Options{AllowTrivial: true, Table: table, EvalMode: EvalMode("bogus")}); err == nil {
		t.Error("bogus eval mode accepted, want error")
	}
}

// TestEvalZeroCandidates fabricates the degenerate empty candidate
// universe (unreachable through the public constructors, which require at
// least two candidate nodes) and checks every solver entry point survives
// it: BestAdd reports (-1, 0) instead of panicking, and the solvers return
// empty placements.
func TestEvalZeroCandidates(t *testing.T) {
	rng := xrand.New(9990)
	inst := testInstance(t, 16, 6, 3, 0.8, rng)
	// Shrink the universe to a single candidate node: zero candidate edges.
	inst.candNodes = inst.candNodes[:1]
	inst.candPos = nil
	inst.numCand = 0

	s := inst.NewSearch(nil)
	if cand, gain := s.BestAdd(); cand != -1 || gain != 0 {
		t.Fatalf("BestAdd on empty universe = (%d, %d), want (-1, 0)", cand, gain)
	}
	if got := len(s.GainsAdd()); got != 0 {
		t.Fatalf("GainsAdd returned %d gains for an empty universe", got)
	}

	if pl := GreedySigma(inst); len(pl.Selection) != 0 {
		t.Errorf("GreedySigma selected %v from an empty universe", pl.Selection)
	}
	if curve := GreedySigmaCurve(inst); len(curve) != 1 {
		t.Errorf("GreedySigmaCurve returned %d points, want 1 (base only)", len(curve))
	}
	opts := DefaultAEAOptions()
	opts.Iterations = 5
	if res := AEA(inst, opts, xrand.New(1)); len(res.Best.Selection) != 0 {
		t.Errorf("AEA selected %v from an empty universe", res.Best.Selection)
	}
	for _, workers := range []int{1, 8} {
		if pl := LocalSearch(inst, nil, LocalSearchOptions{Parallelism: workers}); len(pl.Selection) != 0 {
			t.Errorf("LocalSearch(par=%d) selected %v from an empty universe", workers, pl.Selection)
		}
	}
}
