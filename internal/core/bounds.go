package core

import (
	"msc/internal/bitset"
	"msc/internal/graph"
	"msc/internal/maxcover"
	"msc/internal/telemetry"
)

// buildBounds materializes the coverage structures behind the two
// submodular bound functions (paper §V-B). Both derive from the all-pairs
// table D of the raw network:
//
//   - μ (lower bound): restrict every path to use at most one shortcut.
//     Candidate f=(a,b) then satisfies a fixed pair set
//     S_f = { {u,w} ∈ S : min(D[u][a]+D[b][w], D[u][b]+D[a][w]) ≤ d_t },
//     and μ(F) = |S_∅ ∪ ⋃_{f∈F} S_f| — a coverage function, hence
//     monotone submodular, and μ ≤ σ everywhere (the restriction can only
//     lengthen paths).
//
//   - ν (upper bound): a pair endpoint x is "covered" by F when some
//     shortcut endpoint is within d_t of x. With node weight
//     w(x) = ½ × (multiplicity of x in S), ν(F) = Σ weights of covered
//     endpoints + |S_∅|. Any pair newly satisfied by F must have both
//     endpoints covered (its path enters/leaves the shortcut region within
//     budget), so ν ≥ σ; weighted coverage is submodular.
//
// The |S_∅| offset keeps ν ≥ σ on instances where some pairs already meet
// the threshold (the paper assumes none do; adding a constant preserves
// both the bound and submodularity).
func (inst *Instance) buildBounds() {
	inst.boundsOnce.Do(func() {
		inst.buildMuSets()
		inst.buildNuSets()
	})
}

// maxBoundCandidates caps the candidate universe for which the μ/ν
// coverage structures may be materialized: buildMuSets/buildNuSets
// allocate one bitset per candidate pair, O(n²) of them, which is fine at
// paper scale but multiple terabytes at n=10⁶. Above the cap (t ≈ 4100
// candidate nodes) BoundsTractable reports false and round-event
// diagnostics skip μ/ν with a -1 sentinel instead of crashing the solve.
// Solvers that *need* the bounds (sandwich, mu, nu) still build them
// unconditionally — at that scale they were never feasible.
const maxBoundCandidates = 8 << 20

// BoundsTractable reports whether the μ/ν coverage structures can be
// materialized within a sane memory budget (~hundreds of MB, not TB).
func (inst *Instance) BoundsTractable() bool {
	return inst.numCand <= maxBoundCandidates
}

// diagBounds returns μ/ν of a selection for round-event diagnostics, or
// the (-1, -1) sentinel when building the coverage structures is
// intractable. Telemetry must never force an O(n²) allocation the solve
// itself does not need.
func diagBounds(p Problem, sel []int) (mu, nu float64) {
	if !p.BoundsTractable() {
		return -1, -1
	}
	return p.Mu(sel), p.Nu(sel)
}

func (inst *Instance) buildMuSets() {
	m := inst.ps.Len()
	inst.muSets = make([]*bitset.Set, inst.numCand)
	// Iterate candidates in row-major triangular order over the candidate
	// nodes so the candidate index advances in lockstep with (a, b).
	t := len(inst.candNodes)
	idx := 0
	for ai := 0; ai < t; ai++ {
		rowA := inst.table.Row(inst.candNodes[ai])
		for bi := ai + 1; bi < t; bi++ {
			rowB := inst.table.Row(inst.candNodes[bi])
			s := bitset.New(m)
			for i, p := range inst.ps.Pairs() {
				if inst.satisfied0.Contains(i) {
					continue // handled by the Initial set
				}
				d1 := rowA[p.U] + rowB[p.W]
				d2 := rowB[p.U] + rowA[p.W]
				if d1 <= inst.thr.D || d2 <= inst.thr.D {
					s.Add(i)
				}
			}
			inst.muSets[idx] = s
			idx++
		}
	}
}

func (inst *Instance) buildNuSets() {
	// Universe: distinct nodes appearing in S. Node weight is half the
	// total importance of the pairs it appears in — ½ × multiplicity when
	// unweighted, matching §V-B2 exactly.
	inst.nuNodes = inst.ps.Nodes()
	inst.nuIndex = make(map[graph.NodeID]int, len(inst.nuNodes))
	inst.nuWeights = make([]float64, len(inst.nuNodes))
	for i, v := range inst.nuNodes {
		inst.nuIndex[v] = i
	}
	for i, p := range inst.ps.Pairs() {
		half := float64(inst.weights[i]) / 2
		inst.nuWeights[inst.nuIndex[p.U]] += half
		inst.nuWeights[inst.nuIndex[p.W]] += half
	}
	// perNode[vi] = pair-node indices within d_t of candidate node vi.
	t := len(inst.candNodes)
	perNode := make([]*bitset.Set, t)
	for vi := 0; vi < t; vi++ {
		s := bitset.New(len(inst.nuNodes))
		row := inst.table.Row(inst.candNodes[vi])
		for i, x := range inst.nuNodes {
			if row[x] <= inst.thr.D {
				s.Add(i)
			}
		}
		perNode[vi] = s
	}
	inst.nuSets = make([]*bitset.Set, inst.numCand)
	idx := 0
	for ai := 0; ai < t; ai++ {
		for bi := ai + 1; bi < t; bi++ {
			s := perNode[ai].Clone()
			s.UnionWith(perNode[bi])
			inst.nuSets[idx] = s
			idx++
		}
	}
}

// Mu evaluates the lower bound μ on a selection: the total weight of
// pairs satisfiable with at most one shortcut each, plus pairs already
// satisfied.
func (inst *Instance) Mu(sel []int) float64 {
	telemetry.Global().MuEvals.Add(1)
	inst.buildBounds()
	covered := inst.satisfied0.Clone()
	for _, c := range sel {
		covered.UnionWith(inst.muSets[c])
	}
	total := 0.0
	covered.ForEach(func(i int) {
		total += float64(inst.weights[i])
	})
	return total
}

// Nu evaluates the upper bound ν on a selection: total weight of covered
// pair endpoints plus the satisfied-at-baseline offset.
func (inst *Instance) Nu(sel []int) float64 {
	telemetry.Global().NuEvals.Add(1)
	inst.buildBounds()
	covered := bitset.New(len(inst.nuNodes))
	for _, c := range sel {
		covered.UnionWith(inst.nuSets[c])
	}
	total := float64(inst.baseSigma)
	covered.ForEach(func(i int) {
		total += inst.nuWeights[i]
	})
	return total
}

// MuProblem exposes μ as a max-coverage instance (budget k) for the greedy
// arm F_μ of the sandwich algorithm. The coverage elements are pairs,
// weighted by importance (nil weights when uniform, keeping the faster
// popcount marginals).
func (inst *Instance) MuProblem() maxcover.Problem {
	inst.buildBounds()
	p := maxcover.Problem{
		Sets:    inst.muSets,
		Initial: inst.satisfied0,
		K:       inst.k,
	}
	if inst.totalWeight != inst.ps.Len() {
		weights := make([]float64, inst.ps.Len())
		for i, w := range inst.weights {
			weights[i] = float64(w)
		}
		p.Weights = weights
	}
	return p
}

// NuProblem exposes ν as a weighted max-coverage instance (budget k) for
// the greedy arm F_ν. The baseline offset is a constant and does not affect
// which sets greedy picks.
func (inst *Instance) NuProblem() maxcover.Problem {
	inst.buildBounds()
	return maxcover.Problem{
		Weights: inst.nuWeights,
		Sets:    inst.nuSets,
		K:       inst.k,
	}
}
