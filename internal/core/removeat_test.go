package core

import (
	"testing"

	"msc/internal/xrand"
)

// TestRemoveAtRebuildBitIdentical is the regression the survivable failure
// evaluator leans on: RemoveAt always takes the rebuild path (a deletion
// can lengthen distances, and min-merges cannot undo a min), and the state
// it leaves — distance rows, pair distances, σ, and the next gains scan —
// must be bit-identical to a search built cold on the reduced selection,
// under both eval modes and after incremental (merge-path) adds.
func TestRemoveAtRebuildBitIdentical(t *testing.T) {
	for _, mode := range []EvalMode{EvalIncremental, EvalRebuild} {
		rng := xrand.New(5150)
		for trial := 0; trial < 8; trial++ {
			inst := testInstance(t, 16, 7, 6, 0.9, rng)
			warm, ok := inst.NewSearch(nil).(*instSearch)
			if !ok {
				t.Fatalf("mode=%s: NewSearch returned %T", mode, warm)
			}
			warm.incremental = mode == EvalIncremental
			// Grow through the mode's Add path, with warm gains state live so
			// removal must invalidate a patched array, not a cold one.
			adds := rng.SampleDistinct(inst.NumCandidates(), 4)
			for _, c := range adds {
				warm.GainsAdd()
				warm.Add(c)
			}
			pos := rng.Intn(len(adds))
			warm.RemoveAt(pos)

			cold, _ := inst.NewSearch(warm.sel).(*instSearch)
			if warm.sigma != cold.sigma {
				t.Fatalf("mode=%s trial=%d: σ after RemoveAt %d != cold %d", mode, trial, warm.sigma, cold.sigma)
			}
			for r := range warm.rows {
				for x := range warm.rows[r] {
					if warm.rows[r][x] != cold.rows[r][x] {
						t.Fatalf("mode=%s trial=%d: row %d col %d: %v != cold %v",
							mode, trial, r, x, warm.rows[r][x], cold.rows[r][x])
					}
				}
			}
			for i := range warm.pairDist {
				if warm.pairDist[i] != cold.pairDist[i] {
					t.Fatalf("mode=%s trial=%d: pairDist[%d] %v != cold %v",
						mode, trial, i, warm.pairDist[i], cold.pairDist[i])
				}
			}
			if warm.gainsValid {
				t.Fatalf("mode=%s trial=%d: RemoveAt left gainsValid set", mode, trial)
			}
			wg := append([]int(nil), warm.GainsAdd()...)
			cg := cold.GainsAdd()
			for c := range wg {
				if wg[c] != cg[c] {
					t.Fatalf("mode=%s trial=%d: post-remove gains[%d] = %d, cold %d",
						mode, trial, c, wg[c], cg[c])
				}
			}
		}
	}
}
