package core

import (
	"math"
	"strings"
	"testing"

	"msc/internal/failprob"
	"msc/internal/graph"
	"msc/internal/pairs"
	"msc/internal/xrand"
)

// explicitInstance builds an instance from a literal edge list and pair
// list, for report tests that need exact distances (unreachable pairs,
// improved-but-short pairs).
func explicitInstance(t *testing.T, n int, edges [][3]float64, prs []pairs.Pair, dt float64, k int) *Instance {
	t.Helper()
	b := graph.NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(graph.NodeID(e[0]), graph.NodeID(e[1]), e[2])
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ps, err := pairs.NewSet(n, prs)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := NewInstance(g, ps, failprob.Threshold{P: 1 - math.Exp(-dt), D: dt}, k,
		&Options{AllowTrivial: true})
	if err != nil {
		t.Fatalf("NewInstance: %v", err)
	}
	return inst
}

func TestReportConsistentWithSigma(t *testing.T) {
	rng := xrand.New(201)
	inst := testInstance(t, 16, 7, 3, 0.8, rng)
	sel := GreedySigma(inst).Selection
	statuses := inst.Report(sel)
	if len(statuses) != inst.Pairs().Len() {
		t.Fatalf("report length %d", len(statuses))
	}
	maintained := 0
	for _, st := range statuses {
		if st.Maintained {
			maintained++
		}
		if st.After > st.Before+1e-12 {
			t.Fatalf("pair %v got worse: %v -> %v", st.Pair, st.Before, st.After)
		}
		if st.UsesShortcut && st.After >= st.Before {
			t.Fatalf("pair %v claims shortcut without improvement", st.Pair)
		}
		if st.MaintainedBefore && !st.Maintained {
			t.Fatalf("pair %v lost maintenance by adding edges", st.Pair)
		}
	}
	if maintained != inst.Sigma(sel) {
		t.Fatalf("report maintained %d != σ %d", maintained, inst.Sigma(sel))
	}
}

func TestSummarize(t *testing.T) {
	rng := xrand.New(202)
	inst := testInstance(t, 16, 7, 3, 0.8, rng)
	sel := GreedySigma(inst).Selection
	statuses := inst.Report(sel)
	s := Summarize(statuses)
	if s.Total != len(statuses) {
		t.Fatalf("total %d", s.Total)
	}
	if s.Maintained != inst.Sigma(sel) {
		t.Fatalf("maintained %d != σ %d", s.Maintained, inst.Sigma(sel))
	}
	if s.NewlyMaintained != s.Maintained-inst.BaseSigma() {
		t.Fatalf("newly maintained %d, σ %d, base %d", s.NewlyMaintained, s.Maintained, inst.BaseSigma())
	}
	if s.WorstAfter < 0 || s.WorstAfter > 1 {
		t.Fatalf("worst after %v", s.WorstAfter)
	}
}

func TestFormatReport(t *testing.T) {
	rng := xrand.New(203)
	inst := testInstance(t, 12, 5, 2, 0.8, rng)
	out := FormatReport(inst.Report(GreedySigma(inst).Selection))
	if !strings.Contains(out, "p_before") || !strings.Contains(out, "maintained") {
		t.Fatalf("report header missing:\n%s", out)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != inst.Pairs().Len()+1 {
		t.Fatal("row count wrong")
	}
}

func TestGreedySigmaCurve(t *testing.T) {
	rng := xrand.New(204)
	inst := testInstance(t, 18, 8, 4, 0.8, rng)
	curve := GreedySigmaCurve(inst)
	if curve[0] != inst.BaseSigma() {
		t.Fatalf("curve[0] = %d, want baseline %d", curve[0], inst.BaseSigma())
	}
	if len(curve) > inst.K()+1 {
		t.Fatalf("curve length %d exceeds k+1", len(curve))
	}
	for i := 1; i < len(curve); i++ {
		if curve[i] <= curve[i-1] {
			t.Fatalf("curve not strictly increasing at %d: %v", i, curve)
		}
	}
	// The final point must match GreedySigma's result.
	if got := GreedySigma(inst).Sigma; curve[len(curve)-1] != got {
		t.Fatalf("curve end %d != greedy σ %d", curve[len(curve)-1], got)
	}
}

// TestReportUnreachablePairs: a pair split across graph components reports
// failure probability 1 on both sides until a shortcut bridges the gap.
func TestReportUnreachablePairs(t *testing.T) {
	// Two components: 0–1 and 2–3. Pair (0,2) is unreachable; pair (0,1)
	// is one short hop.
	inst := explicitInstance(t, 4,
		[][3]float64{{0, 1, 0.1}, {2, 3, 0.1}},
		[]pairs.Pair{pairs.New(0, 2), pairs.New(0, 1)},
		0.5, 2)

	statuses := inst.Report(nil)
	var cross, local PairStatus
	for _, st := range statuses {
		if st.Pair == pairs.New(0, 2) {
			cross = st
		} else {
			local = st
		}
	}
	if cross.Before != 1 || cross.After != 1 {
		t.Fatalf("unreachable pair must report probability 1: %+v", cross)
	}
	if cross.Maintained || cross.MaintainedBefore || cross.UsesShortcut {
		t.Fatalf("unreachable pair misflagged: %+v", cross)
	}
	if !local.Maintained || !local.MaintainedBefore {
		t.Fatalf("adjacent pair should be maintained at baseline: %+v", local)
	}
	if s := Summarize(statuses); s.WorstAfter != 1 {
		t.Fatalf("WorstAfter must be 1 with an unreachable pair, got %v", s.WorstAfter)
	}

	// A shortcut 1–3 bridges the components: 0→1→3→2 = 0.1+0+0.1.
	sel := []int{inst.CandidateIndex(graph.Edge{U: 1, V: 3})}
	statuses = inst.Report(sel)
	for _, st := range statuses {
		if st.Pair != pairs.New(0, 2) {
			continue
		}
		if st.Before != 1 {
			t.Fatalf("Before must stay 1: %+v", st)
		}
		if st.After >= 1 || !st.Maintained || !st.UsesShortcut {
			t.Fatalf("bridged pair not repaired: %+v", st)
		}
	}
	s := Summarize(statuses)
	if s.NewlyMaintained != 1 || s.Maintained != 2 {
		t.Fatalf("summary after bridging: %+v", s)
	}
	if s.WorstAfter >= 1 {
		t.Fatalf("WorstAfter should drop below 1 once bridged: %v", s.WorstAfter)
	}
}

// TestReportEmptySelection: with no shortcuts, After equals Before for
// every pair, nothing uses a shortcut, and Summarize reduces to the
// baseline σ.
func TestReportEmptySelection(t *testing.T) {
	rng := xrand.New(207)
	inst := testInstance(t, 16, 7, 3, 0.8, rng)
	statuses := inst.Report(nil)
	if len(statuses) != inst.Pairs().Len() {
		t.Fatalf("report length %d", len(statuses))
	}
	for _, st := range statuses {
		if st.After != st.Before {
			t.Fatalf("pair %v changed without shortcuts: %v -> %v", st.Pair, st.Before, st.After)
		}
		if st.UsesShortcut {
			t.Fatalf("pair %v claims a shortcut on empty selection", st.Pair)
		}
		if st.Maintained != st.MaintainedBefore {
			t.Fatalf("pair %v maintenance flags disagree: %+v", st.Pair, st)
		}
	}
	s := Summarize(statuses)
	if s.Maintained != inst.BaseSigma() {
		t.Fatalf("maintained %d != baseline σ %d", s.Maintained, inst.BaseSigma())
	}
	if s.NewlyMaintained != 0 || s.ImprovedButShort != 0 {
		t.Fatalf("empty selection improved something: %+v", s)
	}
}

// TestReportAllPairsAlreadyMaintained: when the raw network already meets
// the threshold for every pair, a placement changes nothing the report
// cares about — no newly maintained pairs, none improved-but-short.
func TestReportAllPairsAlreadyMaintained(t *testing.T) {
	// Triangle-free path 0–1–2 with short hops; both pairs well under d_t.
	inst := explicitInstance(t, 3,
		[][3]float64{{0, 1, 0.1}, {1, 2, 0.1}},
		[]pairs.Pair{pairs.New(0, 1), pairs.New(1, 2)},
		1.0, 1)
	sel := []int{inst.CandidateIndex(graph.Edge{U: 0, V: 2})}
	statuses := inst.Report(sel)
	for _, st := range statuses {
		if !st.Maintained || !st.MaintainedBefore {
			t.Fatalf("pair %v should be maintained before and after: %+v", st.Pair, st)
		}
	}
	s := Summarize(statuses)
	if s.Maintained != s.Total {
		t.Fatalf("all pairs should count as maintained: %+v", s)
	}
	if s.NewlyMaintained != 0 || s.ImprovedButShort != 0 {
		t.Fatalf("nothing should be newly maintained or improved-but-short: %+v", s)
	}
	if want := failprob.ProbFromLength(0.2); s.WorstAfter > want+1e-12 {
		t.Fatalf("WorstAfter %v exceeds worst baseline pair %v", s.WorstAfter, want)
	}
}

// TestSummarizeImprovedButShort pins the ImprovedButShort and WorstAfter
// semantics: a pair whose best path a shortcut shortens without reaching
// the threshold counts as improved-but-short, and WorstAfter tracks the
// maximum post-placement failure probability.
func TestSummarizeImprovedButShort(t *testing.T) {
	// Path 0–1–2–3 with hops of 2: pair (0,3) sits at distance 6.
	// Shortcut 0–2 cuts it to 2, still over d_t = 1.
	inst := explicitInstance(t, 4,
		[][3]float64{{0, 1, 2}, {1, 2, 2}, {2, 3, 2}},
		[]pairs.Pair{pairs.New(0, 3)},
		1.0, 1)
	sel := []int{inst.CandidateIndex(graph.Edge{U: 0, V: 2})}
	statuses := inst.Report(sel)
	st := statuses[0]
	if !st.UsesShortcut || st.Maintained {
		t.Fatalf("pair should be improved but not maintained: %+v", st)
	}
	if want := failprob.ProbFromLength(2); math.Abs(st.After-want) > 1e-12 {
		t.Fatalf("After %v, want probability of the shortcut path %v", st.After, want)
	}
	s := Summarize(statuses)
	if s.ImprovedButShort != 1 || s.Maintained != 0 || s.NewlyMaintained != 0 {
		t.Fatalf("summary %+v", s)
	}
	if math.Abs(s.WorstAfter-st.After) > 1e-12 {
		t.Fatalf("WorstAfter %v != worst pair After %v", s.WorstAfter, st.After)
	}
}

func TestLocalSearchOnlyImproves(t *testing.T) {
	rng := xrand.New(205)
	inst := testInstance(t, 16, 8, 3, 0.9, rng)
	for trial := 0; trial < 5; trial++ {
		start := rng.SampleDistinct(inst.NumCandidates(), inst.K())
		before := inst.Sigma(start)
		refined := LocalSearch(inst, start, LocalSearchOptions{})
		if refined.Sigma < before {
			t.Fatalf("local search worsened: %d -> %d", before, refined.Sigma)
		}
		if len(refined.Edges) != len(start) {
			t.Fatalf("local search changed budget: %d -> %d", len(start), len(refined.Edges))
		}
	}
}

func TestLocalSearchReachesSwapOptimum(t *testing.T) {
	rng := xrand.New(206)
	inst := testInstance(t, 14, 6, 2, 0.9, rng)
	refined := LocalSearch(inst, rng.SampleDistinct(inst.NumCandidates(), 2), LocalSearchOptions{})
	// At a swap-local optimum, no single (drop, add) improves σ.
	sel := refined.Selection
	for pos := range sel {
		rest := make([]int, 0, len(sel)-1)
		rest = append(rest, sel[:pos]...)
		rest = append(rest, sel[pos+1:]...)
		sub := inst.NewSearch(rest)
		_, gain := sub.BestAdd()
		if sub.Sigma()+gain > refined.Sigma {
			t.Fatalf("swap improvement still available at pos %d", pos)
		}
	}
}
