package core

import (
	"strings"
	"testing"

	"msc/internal/xrand"
)

func TestReportConsistentWithSigma(t *testing.T) {
	rng := xrand.New(201)
	inst := testInstance(t, 16, 7, 3, 0.8, rng)
	sel := GreedySigma(inst).Selection
	statuses := inst.Report(sel)
	if len(statuses) != inst.Pairs().Len() {
		t.Fatalf("report length %d", len(statuses))
	}
	maintained := 0
	for _, st := range statuses {
		if st.Maintained {
			maintained++
		}
		if st.After > st.Before+1e-12 {
			t.Fatalf("pair %v got worse: %v -> %v", st.Pair, st.Before, st.After)
		}
		if st.UsesShortcut && st.After >= st.Before {
			t.Fatalf("pair %v claims shortcut without improvement", st.Pair)
		}
		if st.MaintainedBefore && !st.Maintained {
			t.Fatalf("pair %v lost maintenance by adding edges", st.Pair)
		}
	}
	if maintained != inst.Sigma(sel) {
		t.Fatalf("report maintained %d != σ %d", maintained, inst.Sigma(sel))
	}
}

func TestSummarize(t *testing.T) {
	rng := xrand.New(202)
	inst := testInstance(t, 16, 7, 3, 0.8, rng)
	sel := GreedySigma(inst).Selection
	statuses := inst.Report(sel)
	s := Summarize(statuses)
	if s.Total != len(statuses) {
		t.Fatalf("total %d", s.Total)
	}
	if s.Maintained != inst.Sigma(sel) {
		t.Fatalf("maintained %d != σ %d", s.Maintained, inst.Sigma(sel))
	}
	if s.NewlyMaintained != s.Maintained-inst.BaseSigma() {
		t.Fatalf("newly maintained %d, σ %d, base %d", s.NewlyMaintained, s.Maintained, inst.BaseSigma())
	}
	if s.WorstAfter < 0 || s.WorstAfter > 1 {
		t.Fatalf("worst after %v", s.WorstAfter)
	}
}

func TestFormatReport(t *testing.T) {
	rng := xrand.New(203)
	inst := testInstance(t, 12, 5, 2, 0.8, rng)
	out := FormatReport(inst.Report(GreedySigma(inst).Selection))
	if !strings.Contains(out, "p_before") || !strings.Contains(out, "maintained") {
		t.Fatalf("report header missing:\n%s", out)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != inst.Pairs().Len()+1 {
		t.Fatal("row count wrong")
	}
}

func TestGreedySigmaCurve(t *testing.T) {
	rng := xrand.New(204)
	inst := testInstance(t, 18, 8, 4, 0.8, rng)
	curve := GreedySigmaCurve(inst)
	if curve[0] != inst.BaseSigma() {
		t.Fatalf("curve[0] = %d, want baseline %d", curve[0], inst.BaseSigma())
	}
	if len(curve) > inst.K()+1 {
		t.Fatalf("curve length %d exceeds k+1", len(curve))
	}
	for i := 1; i < len(curve); i++ {
		if curve[i] <= curve[i-1] {
			t.Fatalf("curve not strictly increasing at %d: %v", i, curve)
		}
	}
	// The final point must match GreedySigma's result.
	if got := GreedySigma(inst).Sigma; curve[len(curve)-1] != got {
		t.Fatalf("curve end %d != greedy σ %d", curve[len(curve)-1], got)
	}
}

func TestLocalSearchOnlyImproves(t *testing.T) {
	rng := xrand.New(205)
	inst := testInstance(t, 16, 8, 3, 0.9, rng)
	for trial := 0; trial < 5; trial++ {
		start := rng.SampleDistinct(inst.NumCandidates(), inst.K())
		before := inst.Sigma(start)
		refined := LocalSearch(inst, start, LocalSearchOptions{})
		if refined.Sigma < before {
			t.Fatalf("local search worsened: %d -> %d", before, refined.Sigma)
		}
		if len(refined.Edges) != len(start) {
			t.Fatalf("local search changed budget: %d -> %d", len(start), len(refined.Edges))
		}
	}
}

func TestLocalSearchReachesSwapOptimum(t *testing.T) {
	rng := xrand.New(206)
	inst := testInstance(t, 14, 6, 2, 0.9, rng)
	refined := LocalSearch(inst, rng.SampleDistinct(inst.NumCandidates(), 2), LocalSearchOptions{})
	// At a swap-local optimum, no single (drop, add) improves σ.
	sel := refined.Selection
	for pos := range sel {
		rest := make([]int, 0, len(sel)-1)
		rest = append(rest, sel[:pos]...)
		rest = append(rest, sel[pos+1:]...)
		sub := inst.NewSearch(rest)
		_, gain := sub.BestAdd()
		if sub.Sigma()+gain > refined.Sigma {
			t.Fatalf("swap improvement still available at pos %d", pos)
		}
	}
}
