package core

import (
	"fmt"

	"msc/internal/telemetry"
	"msc/internal/xrand"
)

// Checkpoint/resume for the randomized solvers. A telemetry.CheckpointEvent
// is a complete snapshot of an EA/AEA run at an iteration boundary: RNG
// stream position (seed + draw count), population in archive order, best
// feasible solution, and iteration count. Both solvers draw randomness only
// through the counted xrand stream and mutate no other cross-iteration
// state, so restore-and-continue replays the straight-through run bit for
// bit (locked by checkpoint_test.go).
//
// Durability is the sink's job: point CheckpointSink at a
// telemetry.AtomicJSONLSink (mscplace -checkpoint does) so a crash
// mid-snapshot can never tear the stream — the file on disk is always the
// previous or the new complete snapshot sequence, and LastCheckpoint
// never sees a partial line.

// snapshotSolution converts an internal solution to its checkpoint form.
func snapshotSolution(sel []int, sigma int) telemetry.CheckpointSolution {
	return telemetry.CheckpointSolution{
		Selection: append([]int(nil), sel...),
		Sigma:     sigma,
	}
}

// checkResume validates that a checkpoint belongs to the named algorithm
// and fits the iteration budget. Violations are programmer/CLI errors, so
// the solvers panic; mscplace validates first and reports typed errors.
func checkResume(alg string, cp *telemetry.CheckpointEvent, iterations int) {
	if cp.Algorithm != alg {
		panic(fmt.Sprintf("core: resume checkpoint belongs to %q, not %q", cp.Algorithm, alg))
	}
	if cp.Round > iterations {
		panic(fmt.Sprintf("core: resume checkpoint at round %d exceeds the %d-iteration budget", cp.Round, iterations))
	}
}

// restoreRNG positions rng at the checkpoint's stream position.
func restoreRNG(rng *xrand.Rand, cp *telemetry.CheckpointEvent) {
	rng.Restore(cp.Seed, cp.Draws)
}

// checkpointDue reports whether a checkpoint should be emitted after
// `done` completed iterations out of `total`, with cadence `every`
// (0 = final iteration only).
func checkpointDue(done, total, every int) bool {
	if done == total {
		return true
	}
	return every > 0 && done%every == 0
}
