package core

import (
	"errors"
	"testing"

	"msc/internal/failprob"
	"msc/internal/graph"
	"msc/internal/pairs"
	"msc/internal/xrand"
)

// FuzzInstance decodes an arbitrary byte string into a small MSC instance
// — graph, important pairs, budget, threshold — and cross-checks the
// solvers against each other. Degenerate shapes (no pairs, zero budget,
// disconnected graphs, d_t = 0) must come back as clean errors or valid
// placements, never panics; and the algorithm lattice must hold:
// Exhaustive ≥ GreedySigma, Sandwich.Best ≥ each of its arms, all σ in
// [0, m], serial == parallel.
func FuzzInstance(f *testing.F) {
	f.Add([]byte{5, 2, 1, 0x01, 0x12, 0x23, 0x34, 0x04, 0x13})
	f.Add([]byte{2, 1, 0, 0x01, 0x01})                   // tiny, d_t = 0
	f.Add([]byte{9, 0, 2, 0x18, 0x27, 0x36, 0x45, 0x08}) // k = 0 → ErrBudget
	f.Add([]byte{8, 3, 3})                               // no edges, no pairs
	f.Add([]byte{6, 2, 2, 0x01, 0x23, 0x45, 0x05, 0x24}) // disconnected components

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 {
			return
		}
		n := 2 + int(data[0])%9 // 2..10 nodes
		k := int(data[1]) % 4   // 0..3 shortcuts; 0 exercises ErrBudget
		pt := []float64{0, 0.1, 0.5, 0.9}[int(data[2])%4]
		body := data[3:]

		// Each remaining byte encodes a node pair (u, v) in its nibbles;
		// alternate bytes become graph edges and social pairs. Self-loops
		// and duplicates are skipped, so sparse and disconnected graphs
		// occur naturally.
		b := graph.NewBuilder(n)
		var prs []pair2
		for i, raw := range body {
			u := graph.NodeID(int(raw>>4) % n)
			v := graph.NodeID(int(raw&0x0f) % n)
			if u == v {
				continue
			}
			if i%2 == 0 {
				b.AddEdge(u, v, failprob.LengthFromProb(float64(raw%8)/10))
			} else {
				prs = append(prs, pair2{u, v})
			}
		}
		g, err := b.Build()
		if err != nil {
			t.Fatalf("builder rejected sanitized edges: %v", err)
		}

		seen := map[pairs.Pair]bool{}
		var ps []pairs.Pair
		for _, pr := range prs {
			c := pairs.New(pr.u, pr.v)
			if !seen[c] {
				seen[c] = true
				ps = append(ps, c)
			}
		}
		set, err := pairs.NewSet(n, ps)
		if err != nil {
			if len(ps) == 0 {
				return // no social pairs decoded: ErrEmpty is the contract
			}
			t.Fatalf("NewSet rejected sanitized pairs %v: %v", ps, err)
		}

		inst, err := NewInstance(g, set, failprob.NewThreshold(pt), k, &Options{AllowTrivial: true})
		if err != nil {
			if k < 1 {
				return // zero budget: ErrBudget is the contract
			}
			t.Fatalf("NewInstance(n=%d, k=%d, pt=%v): %v", n, k, pt, err)
		}
		// The same shape on the lazy backend (with a tight row cap, so the
		// eviction path fuzzes too) must agree with the dense instance on
		// every placement below.
		lazyInst, err := NewInstance(g, set, failprob.NewThreshold(pt), k,
			&Options{AllowTrivial: true, DistBackend: BackendLazy, LazyMaxRows: 2})
		if err != nil {
			t.Fatalf("NewInstance(lazy, n=%d, k=%d, pt=%v): %v", n, k, pt, err)
		}
		m := set.Len()

		checkSigma := func(what string, sigma int) {
			if sigma < 0 || sigma > m {
				t.Fatalf("%s: σ = %d outside [0, %d]", what, sigma, m)
			}
		}

		greedy := GreedySigma(inst, Parallelism(1))
		checkSigma("GreedySigma", greedy.Sigma)
		if par := GreedySigma(inst, Parallelism(4)); par.Sigma != greedy.Sigma {
			t.Fatalf("greedy parallel σ %d != serial %d", par.Sigma, greedy.Sigma)
		}
		lazyGreedy := GreedySigma(lazyInst, Parallelism(4))
		if lazyGreedy.Sigma != greedy.Sigma {
			t.Fatalf("lazy-backend greedy σ %d != dense %d", lazyGreedy.Sigma, greedy.Sigma)
		}
		if len(lazyGreedy.Selection) != len(greedy.Selection) {
			t.Fatalf("lazy-backend greedy selection %v != dense %v", lazyGreedy.Selection, greedy.Selection)
		}
		for i := range greedy.Selection {
			if lazyGreedy.Selection[i] != greedy.Selection[i] {
				t.Fatalf("lazy-backend greedy selection %v != dense %v", lazyGreedy.Selection, greedy.Selection)
			}
		}

		sw := Sandwich(inst)
		checkSigma("Sandwich.Best", sw.Best.Sigma)
		for _, arm := range []Placement{sw.FMu, sw.FSigma, sw.FNu} {
			if sw.Best.Sigma < arm.Sigma {
				t.Fatalf("Sandwich.Best σ %d below arm σ %d", sw.Best.Sigma, arm.Sigma)
			}
		}
		if sw.Best.Sigma < greedy.Sigma {
			t.Fatalf("Sandwich.Best σ %d below GreedySigma %d", sw.Best.Sigma, greedy.Sigma)
		}

		opt, err := Exhaustive(inst, 20000, Parallelism(1))
		if err == nil {
			checkSigma("Exhaustive", opt.Sigma)
			if opt.Sigma < greedy.Sigma {
				t.Fatalf("Exhaustive σ %d below GreedySigma %d", opt.Sigma, greedy.Sigma)
			}
			if opt.Sigma < sw.Best.Sigma {
				t.Fatalf("Exhaustive σ %d below Sandwich %d", opt.Sigma, sw.Best.Sigma)
			}
			if par, err := Exhaustive(inst, 20000, Parallelism(4)); err != nil || par.Sigma != opt.Sigma {
				t.Fatalf("parallel Exhaustive (%v, σ %d) != serial σ %d", err, par.Sigma, opt.Sigma)
			}
		}

		rnd, rndErr := RandomPlacement(inst, 5, xrand.New(int64(len(data))))
		if rndErr != nil {
			// k > numCandidates is rejected with a typed InputError; any
			// other failure on a validated instance is a bug.
			var inputErr *InputError
			if !errors.As(rndErr, &inputErr) {
				t.Fatalf("RandomPlacement: %v", rndErr)
			}
			return
		}
		checkSigma("RandomPlacement", rnd.Sigma)
		if err == nil && rnd.Sigma > opt.Sigma {
			t.Fatalf("RandomPlacement σ %d above Exhaustive optimum %d", rnd.Sigma, opt.Sigma)
		}
	})
}

type pair2 struct{ u, v graph.NodeID }
