package core

import (
	"math"
	"os"
	"testing"
	"time"

	"msc/internal/failprob"
	"msc/internal/gen/rgg"
	"msc/internal/graph"
	"msc/internal/pairs"
	"msc/internal/shortestpath"
	"msc/internal/xrand"
)

// TestScaleSmokeBounded is the CI scale-smoke gate: a 50 000-node RGG
// solved end to end on the bounded backend. It is too big for the default
// test run (a dense table alone would be 20 GB), so it only runs with
// MSC_SCALE_SMOKE=1; the CI job sets that under -race with a wall-clock
// budget. Beyond "it finishes", it checks the two properties the backend
// exists for: row memory scales with the d_t-ball (orders of magnitude
// below 8·n² dense bytes) and the solve never materializes dense rows.
func TestScaleSmokeBounded(t *testing.T) {
	if os.Getenv("MSC_SCALE_SMOKE") != "1" {
		t.Skip("set MSC_SCALE_SMOKE=1 to run the 50k-node scale smoke")
	}
	const (
		n  = 50_000
		m  = 64
		k  = 4
		dt = 0.8
	)
	rng := xrand.New(1)
	radius := 1.6 * math.Sqrt(math.Log(n)/(math.Pi*n))
	g, err := rgg.Generate(rgg.Config{N: n, Radius: radius, FailureAtRadius: 0.08}, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Random distinct pairs; at this scale a uniform pair violates d_t
	// with near certainty, and NewInstance tolerates the exceptions.
	seen := map[pairs.Pair]bool{}
	var ps []pairs.Pair
	for len(ps) < m {
		p := pairs.New(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
		if p.U == p.W || seen[p] {
			continue
		}
		seen[p] = true
		ps = append(ps, p)
	}
	set := pairs.MustNewSet(n, ps)
	thr := failprob.Threshold{P: 1 - math.Exp(-dt), D: dt}

	start := time.Now()
	inst, err := NewInstance(g, set, thr, k, &Options{AllowTrivial: true, DistBackend: BackendBounded})
	if err != nil {
		t.Fatal(err)
	}
	buildWall := time.Since(start)
	bt, ok := inst.Table().(*shortestpath.BoundedTable)
	if !ok {
		t.Fatalf("instance table is %T, want *shortestpath.BoundedTable", inst.Table())
	}

	start = time.Now()
	pl := GreedySigma(inst)
	solveWall := time.Since(start)
	if len(pl.Selection) != k {
		t.Fatalf("placement has %d shortcuts, want %d", len(pl.Selection), k)
	}
	if pl.Sigma <= 0 {
		t.Fatalf("σ = %d after placing %d shortcuts across %d pairs", pl.Sigma, k, m)
	}

	st := bt.Stats()
	if st.DenseRows != 0 {
		t.Errorf("solve materialized %d dense rows; the bounded path must stay sparse", st.DenseRows)
	}
	denseBytes := int64(n) * int64(n) * 8
	if st.RowBytes*100 > denseBytes {
		t.Errorf("row memory %d bytes is within 100× of a dense table (%d bytes)", st.RowBytes, denseBytes)
	}
	rows := st.Computes
	t.Logf("n=%d m=%d k=%d dt=%v: build %v, solve %v, σ=%d", n, m, k, dt, buildWall, solveWall, pl.Sigma)
	t.Logf("rows computed %d (%.0f rows/sec), resident %d bytes (%.1f bytes/row avg, dense would be %d bytes/row)",
		rows, float64(rows)/(buildWall+solveWall).Seconds(), st.RowBytes, float64(st.RowBytes)/float64(rows), n*8)
}

// TestDiagBoundsIntractableSentinel pins the guard that keeps telemetry
// from sinking a large solve: past maxBoundCandidates, round events must
// carry the -1 μ/ν sentinel instead of materializing the O(n²) coverage
// bitsets (4 TB of pointers alone at n=10⁶ — the sets are a paper-scale
// structure, not a diagnostic).
func TestDiagBoundsIntractableSentinel(t *testing.T) {
	const (
		n = 4_200 // n(n-1)/2 ≈ 8.8M candidates, just past maxBoundCandidates
		m = 6
		k = 2
	)
	rng := xrand.New(7)
	radius := 1.6 * math.Sqrt(math.Log(n)/(math.Pi*n))
	g, err := rgg.Generate(rgg.Config{N: n, Radius: radius, FailureAtRadius: 0.08}, rng)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[pairs.Pair]bool{}
	var ps []pairs.Pair
	for len(ps) < m {
		p := pairs.New(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
		if p.U == p.W || seen[p] {
			continue
		}
		seen[p] = true
		ps = append(ps, p)
	}
	set := pairs.MustNewSet(n, ps)
	thr := failprob.NewThreshold(0.11)
	inst, err := NewInstance(g, set, thr, k, &Options{AllowTrivial: true, DistBackend: BackendBounded})
	if err != nil {
		t.Fatal(err)
	}
	if inst.BoundsTractable() {
		t.Fatalf("BoundsTractable() = true with %d candidates, want false past %d",
			inst.NumCandidates(), maxBoundCandidates)
	}

	sink := &memSink{}
	pl := GreedySigma(inst, WithSink(sink))
	rounds := sink.rounds("greedy_sigma")
	if len(rounds) == 0 {
		t.Fatal("no greedy_sigma round events emitted")
	}
	for _, r := range rounds {
		if r.Mu != -1 || r.Nu != -1 {
			t.Fatalf("round %d carries μ=%v ν=%v, want the -1 sentinel on an intractable instance", r.Round, r.Mu, r.Nu)
		}
	}
	if inst.muSets != nil || inst.nuSets != nil {
		t.Fatal("emitting round events materialized the μ/ν coverage sets")
	}
	if pl.Sigma < 0 || len(pl.Selection) > k {
		t.Fatalf("placement invalid: σ=%d, %d shortcuts", pl.Sigma, len(pl.Selection))
	}

	// Contrast: at paper scale the bounds stay on and the events carry
	// real values (μ is a count, never negative).
	small := testInstance(t, 40, 8, 2, 1.5, xrand.New(8))
	if !small.BoundsTractable() {
		t.Fatal("BoundsTractable() = false on a 40-node instance")
	}
	smallSink := &memSink{}
	GreedySigma(small, WithSink(smallSink))
	for _, r := range smallSink.rounds("greedy_sigma") {
		if r.Mu < 0 || r.Nu < 0 {
			t.Fatalf("round %d on a tractable instance carries μ=%v ν=%v", r.Round, r.Mu, r.Nu)
		}
	}
}
