package core

import (
	"errors"
	"fmt"
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"msc/internal/failprob"
	"msc/internal/graph"
	"msc/internal/pairs"
	"msc/internal/shortestpath"
	"msc/internal/telemetry"
	"msc/internal/xrand"
)

// This file extends the backend-differential suite to the bounded sparse
// backend. The bounded metric is declared to differ from dense/lazy in
// exactly two ways — distances beyond d_t read +Inf, in-ball distances
// are float32-quantized — and the solver only ever compares distances
// against d_t, so placements must still be byte-identical. To make that a
// hard equality rather than a probabilistic one, these tests use DYADIC
// edge lengths (integer multiples of 2⁻¹⁰, magnitudes far below 2¹⁴):
// every path sum is then exactly representable in float32 and float64
// alike, so quantization is lossless and any divergence the suite sees is
// a real truncation bug, not a rounding artifact. The production backend
// accepts the ≈1e-7 relative quantization as its metric; the declared
// contract lives in shortestpath.SparseSource.

// dyadicConnectedGraph is randomConnectedGraph with every edge length
// snapped to max(1, round(l·1024))/1024.
func dyadicConnectedGraph(t *testing.T, n, extra int, rng *xrand.Rand) *graph.Graph {
	t.Helper()
	dyadic := func(l float64) float64 {
		q := math.Round(l * 1024)
		if q < 1 {
			q = 1
		}
		return q / 1024
	}
	b := graph.NewBuilder(n)
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		b.AddEdge(graph.NodeID(perm[i]), graph.NodeID(perm[rng.Intn(i)]), dyadic(0.1+rng.Float64()))
	}
	for e := 0; e < extra; e++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			b.AddEdge(graph.NodeID(u), graph.NodeID(v), dyadic(0.1+rng.Float64()))
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// boundedPair builds a dense-backed and a bounded-backed instance over
// the same dyadic graph, pair set, threshold, and budget. maxRows caps
// the bounded sparse-row cache so a third of the seeds exercise the
// eviction path, exactly like the dense/lazy suite.
func boundedPair(t *testing.T, n, m, k int, dt float64, rng *xrand.Rand, maxRows int) (dense, bounded *Instance) {
	t.Helper()
	g := dyadicConnectedGraph(t, n, 2*n, rng)
	sampler := shortestpath.NewTable(g, 0)
	ps, err := pairs.SampleViolating(sampler, dt, m, rng)
	if err != nil {
		t.Skipf("could not sample %d violating pairs: %v", m, err)
	}
	thr := failprob.Threshold{P: 1 - math.Exp(-dt), D: dt}
	dense, err = NewInstance(g, ps, thr, k, &Options{AllowTrivial: true, DistBackend: BackendDense})
	if err != nil {
		t.Fatalf("NewInstance(dense): %v", err)
	}
	bounded, err = NewInstance(g, ps, thr, k, &Options{AllowTrivial: true, DistBackend: BackendBounded, LazyMaxRows: maxRows})
	if err != nil {
		t.Fatalf("NewInstance(bounded): %v", err)
	}
	return dense, bounded
}

// TestBackendDifferentialBoundedSolvers runs every solver on dense and
// bounded instances across 24 seeds, serial and parallel, and requires
// identical placements and identical backend-invariant counters. For the
// bounded backend it additionally requires the CandidatesPruned total of
// each solver run to be identical at every worker count (the counter is
// accumulated serially while the near-candidate lists are built).
func TestBackendDifferentialBoundedSolvers(t *testing.T) {
	const seeds = 24
	for seed := int64(0); seed < seeds; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := xrand.New(9700 + seed)
			n := 13 + int(seed%5)
			maxRows := 0
			if seed%3 == 0 {
				maxRows = 3
			}
			dense, bounded := boundedPair(t, n, 6, 3, 0.8, rng, maxRows)

			// prunedBy[solver][workers] collects the bounded backend's
			// CandidatesPruned delta per worker count.
			prunedBy := map[string]map[int]int64{}
			notePruned := func(solver string, workers int, v int64) {
				if prunedBy[solver] == nil {
					prunedBy[solver] = map[int]int64{}
				}
				prunedBy[solver][workers] = v
			}

			for _, workers := range []int{1, 8} {
				workers := workers
				t.Run(fmt.Sprintf("par%d", workers), func(t *testing.T) {
					t.Run("greedy_sigma", func(t *testing.T) {
						var dpl, bpl Placement
						dc := runCounted(func() { dpl = GreedySigma(dense, Parallelism(workers)) })
						before := telemetry.Global().Snapshot()
						bc := runCounted(func() { bpl = GreedySigma(bounded, Parallelism(workers)) })
						notePruned("greedy_sigma", workers, telemetry.Global().Snapshot().Sub(before).CandidatesPruned)
						comparePlacements(t, "GreedySigma", dpl, bpl)
						if dc != bc {
							t.Errorf("GreedySigma counters differ beyond backend-variant set:\ndense   %+v\nbounded %+v", dc, bc)
						}
					})

					t.Run("sandwich", func(t *testing.T) {
						var dres, bres SandwichResult
						dc := runCounted(func() { dres = Sandwich(dense, Parallelism(workers)) })
						bc := runCounted(func() { bres = Sandwich(bounded, Parallelism(workers)) })
						comparePlacements(t, "Sandwich.Best", dres.Best, bres.Best)
						comparePlacements(t, "Sandwich.FMu", dres.FMu, bres.FMu)
						comparePlacements(t, "Sandwich.FSigma", dres.FSigma, bres.FSigma)
						comparePlacements(t, "Sandwich.FNu", dres.FNu, bres.FNu)
						if dres.Ratio != bres.Ratio || dres.ApproxFactor != bres.ApproxFactor {
							t.Errorf("sandwich guarantee differs: dense (%v, %v), bounded (%v, %v)",
								dres.Ratio, dres.ApproxFactor, bres.Ratio, bres.ApproxFactor)
						}
						if dc != bc {
							t.Errorf("Sandwich counters differ beyond backend-variant set:\ndense   %+v\nbounded %+v", dc, bc)
						}
					})

					t.Run("ea", func(t *testing.T) {
						dres := EA(dense, EAOptions{Iterations: 30, Parallelism: workers}, xrand.New(seed))
						bres := EA(bounded, EAOptions{Iterations: 30, Parallelism: workers}, xrand.New(seed))
						comparePlacements(t, "EA.Best", dres.Best, bres.Best)
						if dres.Evaluations != bres.Evaluations {
							t.Errorf("EA evaluations differ: dense %d, bounded %d", dres.Evaluations, bres.Evaluations)
						}
					})

					t.Run("aea", func(t *testing.T) {
						opts := AEAOptions{Iterations: 30, PopSize: 5, Delta: 0.05, RecordTrace: true, Parallelism: workers}
						dres := AEA(dense, opts, xrand.New(seed))
						bres := AEA(bounded, opts, xrand.New(seed))
						comparePlacements(t, "AEA.Best", dres.Best, bres.Best)
						if !reflect.DeepEqual(dres.Trace, bres.Trace) {
							t.Errorf("AEA trace differs between backends")
						}
					})

					t.Run("random_placement", func(t *testing.T) {
						dpl, derr := RandomPlacement(dense, 25, xrand.New(seed), Parallelism(workers))
						bpl, berr := RandomPlacement(bounded, 25, xrand.New(seed), Parallelism(workers))
						if derr != nil || berr != nil {
							t.Fatalf("RandomPlacement: dense err %v, bounded err %v", derr, berr)
						}
						comparePlacements(t, "RandomPlacement", dpl, bpl)
					})

					t.Run("local_search", func(t *testing.T) {
						start := xrand.New(seed).SampleDistinct(dense.NumCandidates(), dense.K())
						dpl := LocalSearch(dense, start, LocalSearchOptions{Parallelism: workers})
						bpl := LocalSearch(bounded, start, LocalSearchOptions{Parallelism: workers})
						comparePlacements(t, "LocalSearch", dpl, bpl)
					})
				})
			}

			for solver, byWorkers := range prunedBy {
				if byWorkers[1] != byWorkers[8] {
					t.Errorf("%s: CandidatesPruned depends on worker count: par1 %d, par8 %d",
						solver, byWorkers[1], byWorkers[8])
				}
			}

			t.Run("sigma_mu_nu", func(t *testing.T) {
				r := xrand.New(9800 + seed)
				for rep := 0; rep < 10; rep++ {
					sel := r.SampleDistinct(dense.NumCandidates(), 1+r.Intn(3))
					if ds, bs := dense.Sigma(sel), bounded.Sigma(sel); ds != bs {
						t.Fatalf("σ(%v): dense %d, bounded %d", sel, ds, bs)
					}
					if dm, bm := dense.Mu(sel), bounded.Mu(sel); dm != bm {
						t.Fatalf("μ(%v): dense %v, bounded %v", sel, dm, bm)
					}
					if dn, bn := dense.Nu(sel), bounded.Nu(sel); dn != bn {
						t.Fatalf("ν(%v): dense %v, bounded %v", sel, dn, bn)
					}
					for _, w := range []int{2, 8} {
						if ds, bs := dense.SigmaPar(sel, w), bounded.SigmaPar(sel, w); ds != bs {
							t.Fatalf("σ_par(%v, %d): dense %d, bounded %d", sel, w, ds, bs)
						}
					}
				}
			})
		})
	}
}

// TestBackendDifferentialBoundedCommonNode runs the MSC-CN reduction on
// dense and bounded backends over common-node instances.
func TestBackendDifferentialBoundedCommonNode(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := xrand.New(9900 + seed)
		n := 14 + int(seed%4)
		g := dyadicConnectedGraph(t, n, 2*n, rng)
		sampler := shortestpath.NewTable(g, 0)
		u := graph.NodeID(rng.Intn(n))
		ps, err := pairs.SampleViolatingWithCommonNode(sampler, 0.8, 5, u, rng)
		if err != nil {
			continue // this graph has too few violating pairs through u
		}
		thr := failprob.Threshold{P: 1 - math.Exp(-0.8), D: 0.8}
		dense, err := NewInstance(g, ps, thr, 2, &Options{AllowTrivial: true, DistBackend: BackendDense})
		if err != nil {
			t.Fatalf("seed %d: NewInstance(dense): %v", seed, err)
		}
		bounded, err := NewInstance(g, ps, thr, 2, &Options{AllowTrivial: true, DistBackend: BackendBounded})
		if err != nil {
			t.Fatalf("seed %d: NewInstance(bounded): %v", seed, err)
		}
		dres, derr := SolveCommonNode(dense)
		bres, berr := SolveCommonNode(bounded)
		if derr != nil || berr != nil {
			t.Fatalf("seed %d: SolveCommonNode: dense err %v, bounded err %v", seed, derr, berr)
		}
		comparePlacements(t, "SolveCommonNode", dres.Placement, bres.Placement)
		if dres.Common != bres.Common || dres.Coverage != bres.Coverage {
			t.Errorf("seed %d: common/coverage differ: dense (%d, %d), bounded (%d, %d)",
				seed, dres.Common, dres.Coverage, bres.Common, bres.Coverage)
		}
	}
}

// TestBoundedQuickProperty is the testing/quick property of the tentpole:
// for random dyadic graphs and random thresholds, an instance on the
// bounded backend reports the same σ values and the same per-candidate
// gains arrays as one on the dense table.
func TestBoundedQuickProperty(t *testing.T) {
	prop := func(seed int64, nRaw, mRaw uint8, dtRaw uint16) bool {
		rng := xrand.New(int64(7000) + seed)
		n := 8 + int(nRaw%10)
		m := 3 + int(mRaw%4)
		dt := 0.3 + float64(dtRaw%1024)/1024 // [0.3, 1.3): spans ball sizes from tiny to most-of-graph
		g := dyadicConnectedGraph(t, n, 2*n, rng)
		sampler := shortestpath.NewTable(g, 0)
		ps, err := pairs.SampleViolating(sampler, dt, m, rng)
		if err != nil {
			return true // too few violating pairs at this threshold — vacuous
		}
		thr := failprob.Threshold{P: 1 - math.Exp(-dt), D: dt}
		dense, err := NewInstance(g, ps, thr, 2, &Options{AllowTrivial: true, DistBackend: BackendDense})
		if err != nil {
			t.Fatalf("NewInstance(dense): %v", err)
		}
		bounded, err := NewInstance(g, ps, thr, 2, &Options{AllowTrivial: true, DistBackend: BackendBounded})
		if err != nil {
			t.Fatalf("NewInstance(bounded): %v", err)
		}
		ds, bs := dense.NewSearch(nil), bounded.NewSearch(nil)
		for round := 0; ; round++ {
			dg := append([]int(nil), ds.GainsAdd()...)
			bg := bs.GainsAdd()
			if !reflect.DeepEqual(dg, bg) {
				t.Logf("gains diverge (n=%d m=%d dt=%v round=%d)", n, m, dt, round)
				return false
			}
			if ds.Sigma() != bs.Sigma() {
				t.Logf("σ diverges: dense %d, bounded %d", ds.Sigma(), bs.Sigma())
				return false
			}
			cand, gain := ds.BestAdd()
			bcand, bgain := bs.BestAdd()
			if cand != bcand || gain != bgain {
				t.Logf("BestAdd diverges: dense (%d,%d), bounded (%d,%d)", cand, gain, bcand, bgain)
				return false
			}
			if round == 2 || gain <= 0 {
				return true
			}
			ds.Add(cand)
			bs.Add(cand)
		}
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestSparseBestAddMatchesDense lowers sparseGainsThreshold so small
// instances take the sparse BestAdd aggregation, and differential-checks
// full GreedySigma runs (and the counter invariant) against the dense
// argmax path on the same bounded instance.
func TestSparseBestAddMatchesDense(t *testing.T) {
	old := sparseGainsThreshold
	defer func() { sparseGainsThreshold = old }()

	for seed := int64(0); seed < 10; seed++ {
		rng := xrand.New(8800 + seed)
		sparseGainsThreshold = 1 << 26 // dense argmax path first
		dense, bounded := boundedPair(t, 14+int(seed%4), 6, 3, 0.8, rng, 0)
		densePl := GreedySigma(dense, Parallelism(1))
		refPl := GreedySigma(bounded, Parallelism(1))

		sparseGainsThreshold = 1 // every search flips to bestAddSparse
		for _, workers := range []int{1, 8} {
			var pl Placement
			before := telemetry.Global().Snapshot()
			pl = GreedySigma(bounded, Parallelism(workers))
			delta := telemetry.Global().Snapshot().Sub(before)
			comparePlacements(t, "GreedySigma sparse-vs-dense-argmax", refPl, pl)
			comparePlacements(t, "GreedySigma sparse-vs-dense-backend", densePl, pl)
			if delta.CandidateEvals == 0 || delta.PairsRescanned == 0 {
				t.Errorf("seed %d: sparse BestAdd did not account its scan work: %+v", seed, delta)
			}
		}
		// The sparse path must also hold on the lazy backend (it is how
		// the full-universe lazy baseline stays runnable at n=10⁵).
		g := dense.Graph()
		lazy, err := NewInstance(g, dense.Pairs(), dense.Threshold(), dense.K(),
			&Options{AllowTrivial: true, DistBackend: BackendLazy})
		if err != nil {
			t.Fatal(err)
		}
		pl := GreedySigma(lazy, Parallelism(1))
		comparePlacements(t, "GreedySigma lazy sparse", densePl, pl)
	}
}

// TestBoundedRejectsNaNThreshold pins the satellite contract: a NaN d_t
// under the bounded backend is a typed input error at instance
// construction, not a silent full-graph exploration.
func TestBoundedRejectsNaNThreshold(t *testing.T) {
	rng := xrand.New(41)
	g := dyadicConnectedGraph(t, 12, 24, rng)
	ps := pairs.MustNewSet(12, []pairs.Pair{{U: 0, W: 11}, {U: 1, W: 10}, {U: 2, W: 9}})
	thr := failprob.Threshold{P: 0.5, D: math.NaN()}
	_, err := NewInstance(g, ps, thr, 1, &Options{AllowTrivial: true, DistBackend: BackendBounded})
	var ie *InputError
	if !errors.As(err, &ie) {
		t.Fatalf("NaN threshold: got %v, want *InputError", err)
	}
}

// TestBoundedRejectsLengthCostModel: length prices need full-range
// distances, which the bounded metric deliberately truncates.
func TestBoundedRejectsLengthCostModel(t *testing.T) {
	rng := xrand.New(42)
	g := dyadicConnectedGraph(t, 12, 24, rng)
	ps := pairs.MustNewSet(12, []pairs.Pair{{U: 0, W: 11}, {U: 1, W: 10}, {U: 2, W: 9}})
	thr := failprob.Threshold{P: 1 - math.Exp(-0.8), D: 0.8}
	_, err := NewInstance(g, ps, thr, 1, &Options{
		AllowTrivial: true, DistBackend: BackendBounded,
		Budget: 2, CostModel: CostLength,
	})
	var ie *InputError
	if !errors.As(err, &ie) {
		t.Fatalf("length cost on bounded backend: got %v, want *InputError", err)
	}
	// The same configuration on the lazy backend stays valid.
	if _, err := NewInstance(g, ps, thr, 1, &Options{
		AllowTrivial: true, DistBackend: BackendLazy,
		Budget: 2, CostModel: CostLength,
	}); err != nil {
		t.Fatalf("length cost on lazy backend: %v", err)
	}
}
