package core

import (
	"fmt"
	"strings"

	"msc/internal/graph"
)

// Placement is the outcome of a placement algorithm: the chosen shortcut
// edges and the number of social pairs they maintain.
type Placement struct {
	// Selection holds candidate indices in selection order.
	Selection []int
	// Edges holds the corresponding shortcut edges.
	Edges []graph.Edge
	// Sigma is σ(Selection): maintained social pairs (summed over time
	// instances for dynamic problems).
	Sigma int
	// Stop records how the producing run ended (reason, rounds completed,
	// final σ). Its zero value means the solver predates supervision or
	// does not report one (GreedyMu/GreedyNu, SolveCommonNode).
	Stop StopInfo
}

func newPlacement(p Problem, sel []int) Placement {
	return Placement{
		Selection: append([]int(nil), sel...),
		Edges:     SelectionEdges(p, sel),
		Sigma:     p.Sigma(sel),
	}
}

// String renders the placement compactly, e.g.
// "σ=12 F={(3,17), (5,40)}".
func (pl Placement) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "σ=%d F={", pl.Sigma)
	for i, e := range pl.Edges {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%d,%d)", e.U, e.V)
	}
	sb.WriteString("}")
	return sb.String()
}
