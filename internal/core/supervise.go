package core

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// This file is the solver supervision layer: cancellation, deadlines, stop
// reporting, panic isolation, and argument validation. Every solver entry
// point accepts a context via WithContext/WithDeadline (or the Context field
// on the EA/AEA options structs) and honors it at round boundaries — always
// BEFORE committing the round's result, so a run that is never canceled
// produces byte-identical placements to a run with no context at all. Long
// sharded candidate scans additionally poll the context between rows
// (ContextAware), bounding cancellation latency on large instances without
// perturbing any scan result: a canceled scan's partial output is discarded
// by the solver, never merged.

// StopReason classifies why a solver run ended.
type StopReason string

const (
	// StopConverged: the solver ran to its natural end — greedy filled the
	// budget or ran out of positive gains, Exhaustive enumerated every
	// subset, LocalSearch reached a local optimum.
	StopConverged StopReason = "converged"
	// StopDeadline: the supervision context's deadline expired.
	StopDeadline StopReason = "deadline"
	// StopCanceled: the supervision context was canceled (e.g. SIGINT).
	StopCanceled StopReason = "canceled"
	// StopEvalBudget: a randomized solver exhausted its configured
	// iteration/trial budget without converging in any structural sense.
	StopEvalBudget StopReason = "eval_budget"
)

// StopInfo describes how a solver run ended: why it stopped, how many rounds
// (greedy rounds, EA/AEA iterations, random trials, local-search passes) it
// completed, and the σ of the placement it returned. Solvers attach it to
// Placement.Stop; a cancelled run still returns the best feasible placement
// found so far.
type StopInfo struct {
	Reason StopReason
	Rounds int
	Sigma  int
}

// WithContext attaches a supervision context to a solver run. Solvers check
// it at round boundaries and inside sharded candidate scans; once the
// context is done they stop early and return the best feasible placement
// found so far, with Placement.Stop.Reason set to StopDeadline or
// StopCanceled. A nil ctx (or omitting the option) disables supervision.
// Uncancelled runs are byte-identical with or without a context.
func WithContext(ctx context.Context) Option {
	return func(c *solveConfig) { c.ctx = ctx }
}

// WithDeadline bounds a solver run to d of wall-clock time, composing with
// WithContext when both are given (whichever limit fires first wins).
// d <= 0 means no deadline.
func WithDeadline(d time.Duration) Option {
	return func(c *solveConfig) { c.timeout = d }
}

// err reports the supervision context's status: nil while the run may
// continue, the context error once it must stop.
func (c *solveConfig) err() error {
	return ctxErr(c.ctx)
}

// ctxErr reports ctx's status, treating nil as never-canceled.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// superviseCtx composes an optional parent context with a relative deadline.
// The returned cancel func is never nil and must be called to release the
// timer; with timeout <= 0 the parent passes through unchanged (possibly
// nil, meaning unsupervised).
func superviseCtx(ctx context.Context, timeout time.Duration) (context.Context, context.CancelFunc) {
	if timeout <= 0 {
		return ctx, func() {}
	}
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithTimeout(ctx, timeout)
}

// release frees the derived deadline context, if any. Solver entry points
// that resolve options must defer it.
func (c *solveConfig) release() {
	if c.cancel != nil {
		c.cancel()
	}
}

// stopReasonFor maps a context error to the StopReason it represents.
func stopReasonFor(err error) StopReason {
	if errors.Is(err, context.DeadlineExceeded) {
		return StopDeadline
	}
	return StopCanceled
}

// ContextAware is implemented by searches whose sharded candidate scans poll
// a supervision context between rows, so cancellation interrupts even a
// single long scan. A canceled scan may return partial results; callers must
// check the context before using them.
type ContextAware interface {
	// SetContext installs the context subsequent scans poll; nil disables
	// polling.
	SetContext(ctx context.Context)
}

// setSearchContext installs a supervision context when the search supports
// in-scan polling; other implementations rely on round-boundary checks.
func setSearchContext(s Search, ctx context.Context) {
	if ca, ok := s.(ContextAware); ok {
		ca.SetContext(ctx)
	}
}

// ShardPanicError reports a panic recovered inside a ParallelFor worker
// goroutine. The shard supervisor recovers the panic, lets every other shard
// drain (no deadlocked WaitGroup, no leaked goroutines), and re-panics with
// this typed value on the caller's goroutine, preserving the candidate range
// the shard owned and the worker's stack trace.
type ShardPanicError struct {
	Shard  int    // shard index that panicked
	Lo, Hi int    // the half-open index range the shard owned
	Value  any    // the recovered panic value
	Stack  []byte // the worker goroutine's stack at panic time
}

func (e *ShardPanicError) Error() string {
	return fmt.Sprintf("core: panic in scan shard %d (range [%d,%d)): %v", e.Shard, e.Lo, e.Hi, e.Value)
}

// InputError reports a structurally invalid solver argument — a negative
// evaluation budget, more shortcuts requested than candidate edges exist —
// rejected up front instead of silently misbehaving.
type InputError struct {
	Param  string // the offending parameter name
	Value  int    // the rejected value
	Reason string
}

func (e *InputError) Error() string {
	return fmt.Sprintf("core: invalid %s = %d: %s", e.Param, e.Value, e.Reason)
}
