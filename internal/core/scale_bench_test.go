package core

import (
	"fmt"
	"math"
	"os"
	"strconv"
	"testing"

	"msc/internal/failprob"
	"msc/internal/gen/rgg"
	"msc/internal/graph"
	"msc/internal/pairs"
	"msc/internal/shortestpath"
	"msc/internal/xrand"
)

// scaleBenchN returns the RGG size for the backend-comparison benchmarks:
// 20 000 by default (seconds per iteration, safe for the CI 1-iteration
// smoke), overridable with MSC_SCALE_BENCH_N=100000 for the EXPERIMENTS.md
// n=10⁵ measurements.
func scaleBenchN(b *testing.B) int {
	b.Helper()
	if s := os.Getenv("MSC_SCALE_BENCH_N"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 2 {
			b.Fatalf("MSC_SCALE_BENCH_N=%q is not a node count", s)
		}
		return n
	}
	return 20_000
}

// BenchmarkScaleGreedySigma is the speed claim behind the bounded backend:
// GreedySigma end to end — instance build (rows, landmarks) plus the full
// greedy solve — on the same RGG and pair set, lazy vs bounded. The
// per-iteration custom metrics record what the backends trade: bytes/row
// resident and rows computed. Run with -benchtime=1x and
// MSC_SCALE_BENCH_N=100000 to reproduce the EXPERIMENTS.md numbers.
func BenchmarkScaleGreedySigma(b *testing.B) {
	n := scaleBenchN(b)
	const (
		m  = 64
		k  = 4
		pt = 0.11 // the tools' default failure threshold
	)
	thr := failprob.NewThreshold(pt)
	rng := xrand.New(1)
	radius := 1.6 * math.Sqrt(math.Log(float64(n))/(math.Pi*float64(n)))
	g, err := rgg.Generate(rgg.Config{N: n, Radius: radius, FailureAtRadius: 0.08}, rng)
	if err != nil {
		b.Fatal(err)
	}
	// One shared pair sample: backend comparisons must solve the same
	// instance. Uniform random pairs violate the tools' default d_t with
	// near certainty at these scales.
	seen := map[pairs.Pair]bool{}
	var ps []pairs.Pair
	for len(ps) < m {
		p := pairs.New(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
		if p.U == p.W || seen[p] {
			continue
		}
		seen[p] = true
		ps = append(ps, p)
	}
	set := pairs.MustNewSet(n, ps)

	for _, backend := range []struct {
		name string
		be   DistBackend
	}{{"lazy", BackendLazy}, {"bounded", BackendBounded}} {
		b.Run(fmt.Sprintf("backend=%s/n=%d", backend.name, n), func(b *testing.B) {
			var bytesPerRow, rows float64
			for i := 0; i < b.N; i++ {
				inst, err := NewInstance(g, set, thr, k, &Options{AllowTrivial: true, DistBackend: backend.be})
				if err != nil {
					b.Fatal(err)
				}
				pl := GreedySigma(inst)
				if len(pl.Selection) != k {
					b.Fatalf("placed %d shortcuts, want %d", len(pl.Selection), k)
				}
				switch t := inst.Table().(type) {
				case *shortestpath.BoundedTable:
					st := t.Stats()
					rows = float64(st.Computes)
					if st.Computes > 0 {
						bytesPerRow = float64(st.RowBytes) / float64(st.Computes)
					}
				case *shortestpath.LazyTable:
					st := t.Stats()
					rows = float64(st.Computes)
					bytesPerRow = float64(8 * n) // dense float64 rows
				}
			}
			b.ReportMetric(bytesPerRow, "bytes/row")
			b.ReportMetric(rows, "rows/op")
		})
	}
}

// BenchmarkScaleRowCompute isolates the row kernel the end-to-end ratio
// rests on: one cold distance row per iteration, full-graph Dijkstra
// (lazy) vs reach-bounded Dijkstra with sparse storage (bounded), cycling
// over distinct sources so caches never serve a warm row.
func BenchmarkScaleRowCompute(b *testing.B) {
	n := scaleBenchN(b)
	thr := failprob.NewThreshold(0.11)
	rng := xrand.New(2)
	radius := 1.6 * math.Sqrt(math.Log(float64(n))/(math.Pi*float64(n)))
	g, err := rgg.Generate(rgg.Config{N: n, Radius: radius, FailureAtRadius: 0.08}, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.Run(fmt.Sprintf("backend=lazy/n=%d", n), func(b *testing.B) {
		t := shortestpath.NewLazyTable(g, shortestpath.LazyOptions{})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = t.Row(graph.NodeID(i % n))
		}
		b.ReportMetric(float64(8*n), "bytes/row")
	})
	b.Run(fmt.Sprintf("backend=bounded/n=%d", n), func(b *testing.B) {
		t, err := shortestpath.NewBoundedTable(g, shortestpath.BoundedOptions{Reach: thr.D, Landmarks: -1})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		var bytes, rows int64
		for i := 0; i < b.N; i++ {
			r := t.SparseRow(graph.NodeID(i % n))
			bytes += r.Bytes()
			rows++
		}
		b.ReportMetric(float64(bytes)/float64(rows), "bytes/row")
	})
}
