package core

import (
	"testing"

	"msc/internal/graph"
	"msc/internal/xrand"
)

// Property: σ is invariant to selection order and duplicates (a selection
// is a set of edges; a duplicated candidate adds a parallel zero-length
// edge, which changes nothing).
func TestSigmaSetSemantics(t *testing.T) {
	rng := xrand.New(401)
	inst := testInstance(t, 15, 6, 3, 0.8, rng)
	for rep := 0; rep < 30; rep++ {
		sel := rng.SampleDistinct(inst.NumCandidates(), 1+rng.Intn(4))
		shuffled := append([]int(nil), sel...)
		rng.Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		if inst.Sigma(sel) != inst.Sigma(shuffled) {
			t.Fatalf("σ not order-invariant: %v vs %v", sel, shuffled)
		}
		dup := append(append([]int(nil), sel...), sel[0])
		if inst.Sigma(sel) != inst.Sigma(dup) {
			t.Fatalf("σ changed under duplicate candidate: %v", dup)
		}
	}
}

// Property: adding any candidate never decreases σ, μ, or ν (monotone in
// F — σ by shorter paths, μ/ν as coverage unions).
func TestAllObjectivesMonotoneUnderAddition(t *testing.T) {
	rng := xrand.New(402)
	inst := testInstance(t, 14, 6, 3, 0.8, rng)
	for rep := 0; rep < 30; rep++ {
		sel := rng.SampleDistinct(inst.NumCandidates(), rng.Intn(4))
		extra := rng.Intn(inst.NumCandidates())
		bigger := append(append([]int(nil), sel...), extra)
		if inst.Sigma(bigger) < inst.Sigma(sel) {
			t.Fatalf("σ decreased adding %d to %v", extra, sel)
		}
		if inst.Mu(bigger) < inst.Mu(sel)-1e-9 {
			t.Fatalf("μ decreased adding %d to %v", extra, sel)
		}
		if inst.Nu(bigger) < inst.Nu(sel)-1e-9 {
			t.Fatalf("ν decreased adding %d to %v", extra, sel)
		}
	}
}

// Property: σ is bounded by m, and connecting every pair directly
// saturates it exactly.
func TestSigmaSaturation(t *testing.T) {
	rng := xrand.New(403)
	inst := testInstance(t, 12, 4, 4, 0.8, rng)
	direct := make([]int, inst.Pairs().Len())
	for i, p := range inst.Pairs().Pairs() {
		direct[i] = inst.CandidateIndex(edgeOf(p.U, p.W))
	}
	if got := inst.Sigma(direct); got != inst.MaxSigma() {
		t.Fatalf("direct connections σ = %d, want m = %d", got, inst.MaxSigma())
	}
}

// Property: greedy σ values dominate random placements of the same budget
// in expectation; check against the best of a small random pool on many
// instances (greedy can lose to lucky draws on pathological instances,
// so compare against the pool's mean).
func TestGreedyBeatsAverageRandom(t *testing.T) {
	rng := xrand.New(404)
	lossCount := 0
	const instances = 8
	for i := 0; i < instances; i++ {
		inst := testInstance(t, 16, 8, 3, 0.9, rng)
		greedy := GreedySigma(inst).Sigma
		total := 0
		const draws = 20
		for d := 0; d < draws; d++ {
			sel := rng.SampleDistinct(inst.NumCandidates(), inst.K())
			total += inst.Sigma(sel)
		}
		if float64(greedy) < float64(total)/draws {
			lossCount++
		}
	}
	if lossCount > 1 {
		t.Fatalf("greedy lost to the random average on %d/%d instances", lossCount, instances)
	}
}

func edgeOf(u, w graph.NodeID) graph.Edge {
	return graph.Edge{U: u, V: w}.Canon()
}
