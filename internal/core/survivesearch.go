package core

import (
	"context"
	"time"

	"msc/internal/obs"
	"msc/internal/telemetry"
)

// surviveSearch is the worst-case survivable evaluator. It maintains one
// incremental instSearch per single-failure scenario alongside the
// fault-free ("free") search, and reports the scalarized lexicographic
// objective L(S) = σ⁻(S)·(MaxSigma+1) + σ(S) as its Sigma(), so
// GreedySigma, ParBestSwap, and LocalSearch optimize (σ⁻, σ) without
// knowing failures exist.
//
// Scenario bookkeeping (DESIGN.md §11):
//
//   - scen[j] evaluates the shortcut-failure scenario S \ {S[j]}, in
//     selection-position order. Add(c) grows each existing scenario by the
//     committed shortcut via its own incremental row min-merge against the
//     surviving set — rows a commit does not touch are skipped by the
//     merge's firstChange pre-pass, which is exactly the "invalidated only
//     for scenarios whose rows a new shortcut touched" contract — and the
//     new scenario S∪{c} \ {c} = S is a clone of the free search taken
//     BEFORE the commit, inheriting its warm rows and live gains for free.
//   - nodeScen[v] (SurviveNode) evaluates σ on the cached G−v scenario
//     instance over the shortcuts that survive v; shortcuts incident to v
//     are excluded from the scenario's selection outright (merging a dead
//     endpoint's zero-length edge would fabricate paths through the dead
//     node). Pairs incident to v contribute the constant nodeVac[v].
//
// All scenario state is memoized across greedy rounds: a round costs one
// O(n)-row merge per live scenario plus warm (patched, scan-free) gains
// reads, never |S|+1 rebuilds.
type surviveSearch struct {
	inst *Instance

	free *instSearch // fault-free σ evaluator on the full selection

	scen     []*instSearch // shortcut-failure scenarios, one per position
	nodeScen []*instSearch // node-failure scenarios (SurviveNode), one per node
	nodeVac  []int         // constant vacuous weight per node scenario

	worst int // σ⁻ of the current selection

	workers int
	ctx     context.Context

	gains      []int // composite L-gain scratch, len numCand
	worstAfter []int // per-candidate σ⁻(S ∪ {c}) scratch
	drops      []int // scratch for SigmaDrops
	dropRest   [][]int
}

var (
	_ ParallelSearch  = (*surviveSearch)(nil)
	_ ScanTimer       = (*surviveSearch)(nil)
	_ ContextAware    = (*surviveSearch)(nil)
	_ EvalStats       = (*surviveSearch)(nil)
	_ worstCaseSearch = (*surviveSearch)(nil)
)

// newSurviveSearch builds the survivable evaluator positioned at sel
// (copied): the free search, one shortcut scenario per selection position,
// and — under SurviveNode — one node scenario per node over the cached G−v
// instances.
func newSurviveSearch(inst *Instance, sel []int) *surviveSearch {
	s := &surviveSearch{inst: inst, workers: 1}
	s.free = inst.newInstSearch(sel)
	sel = s.free.sel
	s.scen = make([]*instSearch, len(sel))
	rest := make([]int, 0, len(sel))
	for j := range sel {
		rest = append(rest[:0], sel[:j]...)
		rest = append(rest, sel[j+1:]...)
		s.scen[j] = inst.newInstSearch(rest)
	}
	if inst.survive == SurviveNode {
		insts, vac := inst.nodeScenarios()
		s.nodeVac = vac
		s.nodeScen = make([]*instSearch, len(insts))
		surv := make([]int, 0, len(sel))
		for v, ni := range insts {
			surv = surv[:0]
			for _, c := range sel {
				e := inst.CandidateEdge(c)
				if int(e.U) != v && int(e.V) != v {
					surv = append(surv, c)
				}
			}
			s.nodeScen[v] = ni.newInstSearch(surv)
		}
	}
	s.recomputeWorst()
	return s
}

// recomputeWorst folds σ⁻ from the live scenario searches. With no
// scenarios at all (empty selection, shortcut mode) σ⁻ degenerates to
// σ(∅), matching Instance.SigmaWorst.
func (s *surviveSearch) recomputeWorst() {
	worst := 0
	have := false
	for _, sc := range s.scen {
		if v := sc.Sigma(); !have || v < worst {
			worst, have = v, true
		}
	}
	for v, sc := range s.nodeScen {
		if val := s.nodeVac[v] + sc.Sigma(); !have || val < worst {
			worst, have = val, true
		}
	}
	count := int64(len(s.scen) + len(s.nodeScen))
	if !have {
		worst = s.free.Sigma()
		count = 1
	}
	telemetry.Global().FailureScenariosEvaled.Add(count)
	s.worst = worst
}

// lexValue scalarizes (σ⁻, σ) into the single integer the Search interface
// speaks: L = σ⁻·(MaxSigma+1) + σ.
func (s *surviveSearch) lexValue(worst, sigma int) int {
	return worst*(s.inst.totalWeight+1) + sigma
}

// Sigma returns the lexicographic value L of the current selection — NOT
// plain σ. Callers needing the components use SigmaParts.
func (s *surviveSearch) Sigma() int { return s.lexValue(s.worst, s.free.Sigma()) }

// SigmaParts implements worstCaseSearch: the fault-free σ and worst-case
// σ⁻ of the current selection.
func (s *surviveSearch) SigmaParts() (sigma, sigmaWorst int) {
	return s.free.Sigma(), s.worst
}

func (s *surviveSearch) Selection() []int { return s.free.Selection() }

func (s *surviveSearch) Len() int { return s.free.Len() }

func (s *surviveSearch) Contains(cand int) bool { return s.free.Contains(cand) }

// timedGains runs a scenario's (usually warm) gains scan, feeding the
// per-scenario eval-cost histogram when the ops plane is up.
func (s *surviveSearch) timedGains(sc *instSearch, timed bool) []int {
	if !timed {
		return sc.GainsAdd()
	}
	start := time.Now()
	g := sc.GainsAdd()
	obs.ObserveScenarioEval(time.Since(start))
	return g
}

// timedAdd commits cand into a scenario search, timing the incremental
// merge for the per-scenario eval-cost histogram when the ops plane is up.
func (s *surviveSearch) timedAdd(sc *instSearch, cand int, timed bool) {
	if !timed {
		sc.Add(cand)
		return
	}
	start := time.Now()
	sc.Add(cand)
	obs.ObserveScenarioEval(time.Since(start))
}

// GainsAdd returns the L-gain of every candidate addition: gain[c] =
// L(S∪{c}) − L(S), exact. σ⁻(S∪{c}) folds, per candidate, the drop-c
// scenario (σ(S), the free search's current value), every shortcut
// scenario's σ + its own warm gain for c, and every node scenario's
// vac + σ + gain — with candidates incident to a failed node pinned to
// that scenario's current σ, since a shortcut dies with its endpoint. The
// slice is scratch reused across calls.
func (s *surviveSearch) GainsAdd() []int {
	if s.gains == nil {
		s.gains = make([]int, s.inst.numCand)
		s.worstAfter = make([]int, s.inst.numCand)
	}
	timed := obs.Enabled()
	freeGains := s.timedGains(s.free, timed)
	freeSigma := s.free.Sigma()
	wa := s.worstAfter
	for c := range wa {
		wa[c] = freeSigma // the scenario dropping the new shortcut itself
	}
	for _, sc := range s.scen {
		g := s.timedGains(sc, timed)
		base := sc.Sigma()
		for c, gc := range g {
			if v := base + gc; v < wa[c] {
				wa[c] = v
			}
		}
	}
	for v, sc := range s.nodeScen {
		g := s.timedGains(sc, timed)
		base := s.nodeVac[v] + sc.Sigma()
		for c, gc := range g {
			if val := base + gc; val < wa[c] {
				wa[c] = val
			}
		}
		// Candidates incident to v die with it: their true scenario-v value
		// is base, which can only lower the fold (the scan above may have
		// credited them a spurious gain through the dead node's zero
		// self-distance).
		s.inst.foldIncident(v, func(c int) {
			if base < wa[c] {
				wa[c] = base
			}
		})
	}
	cur := s.lexValue(s.worst, freeSigma)
	for c := range s.gains {
		s.gains[c] = s.lexValue(wa[c], freeSigma+freeGains[c]) - cur
	}
	return s.gains
}

// GainAdd returns L(S ∪ {cand}) − L(S) without mutating the state.
func (s *surviveSearch) GainAdd(cand int) int {
	freeGain := s.free.GainAdd(cand)
	freeSigma := s.free.Sigma()
	e := s.inst.CandidateEdge(cand)
	wa := freeSigma
	for _, sc := range s.scen {
		if v := sc.Sigma() + sc.GainAdd(cand); v < wa {
			wa = v
		}
	}
	for v, sc := range s.nodeScen {
		base := s.nodeVac[v] + sc.Sigma()
		if int(e.U) != v && int(e.V) != v {
			base += sc.GainAdd(cand)
		}
		if base < wa {
			wa = base
		}
	}
	return s.lexValue(wa, freeSigma+freeGain) - s.lexValue(s.worst, freeSigma)
}

// BestAdd returns the candidate with the largest L-gain (ties toward the
// lowest index) and that gain. Note that unlike the fault-free search a
// candidate already selected can score a positive gain: duplicating a
// critical shortcut is how a placement buys single-failure redundancy.
func (s *surviveSearch) BestAdd() (cand, gain int) {
	gains := s.GainsAdd()
	if len(gains) == 0 {
		return -1, 0
	}
	best, bestGain := 0, gains[0]
	for i := 1; i < len(gains); i++ {
		if gains[i] > bestGain {
			best, bestGain = i, gains[i]
		}
	}
	return best, bestGain
}

// Add commits candidate cand: the pre-commit free search is cloned as the
// new shortcut's own failure scenario (warm rows and gains inherited, no
// shortest-path work), the commit is merged incrementally into every
// existing scenario it can touch, and σ⁻ is refolded.
func (s *surviveSearch) Add(cand int) {
	timed := obs.Enabled()
	newScen := s.free.clone()
	for _, sc := range s.scen {
		s.timedAdd(sc, cand, timed)
	}
	s.scen = append(s.scen, newScen)
	if s.nodeScen != nil {
		e := s.inst.CandidateEdge(cand)
		for v, sc := range s.nodeScen {
			if int(e.U) == v || int(e.V) == v {
				continue // the shortcut dies with v; scenario v never sees it
			}
			s.timedAdd(sc, cand, timed)
		}
	}
	s.timedAdd(s.free, cand, timed)
	s.recomputeWorst()
}

// RemoveAt removes the selection element at position pos. Scenario
// identity is positional, so a removal reconstructs the evaluator from the
// surviving selection — the survivable analogue of the plain search's
// rebuild-on-remove rule.
func (s *surviveSearch) RemoveAt(pos int) {
	sel := s.free.Selection()
	sel = append(sel[:pos], sel[pos+1:]...)
	ns := newSurviveSearch(s.inst, sel)
	ns.workers = s.workers
	ns.ctx = s.ctx
	ns.applyWorkers()
	ns.applyContext()
	*s = *ns
}

// SigmaDrop returns L(S \ {S[pos]}), evaluated from scratch (a drop
// changes every scenario's selection, so nothing memoized applies).
func (s *surviveSearch) SigmaDrop(pos int) int {
	sel := s.free.sel
	rest := make([]int, 0, len(sel)-1)
	rest = append(rest, sel[:pos]...)
	rest = append(rest, sel[pos+1:]...)
	return s.inst.survivableValue(rest)
}

// SigmaDrops returns L(S \ {S[pos]}) for every position, sharded across
// workers; each shard owns a private scratch selection. The slice is
// scratch reused across calls.
func (s *surviveSearch) SigmaDrops() []int {
	sel := s.free.sel
	if cap(s.drops) < len(sel) {
		s.drops = make([]int, len(sel))
	}
	s.drops = s.drops[:len(sel)]
	for cap(s.dropRest) < s.workers {
		s.dropRest = append(s.dropRest[:cap(s.dropRest)], nil)
	}
	s.dropRest = s.dropRest[:s.workers]
	ParallelFor(s.workers, len(sel), func(shard, lo, hi int) {
		rest := s.dropRest[shard]
		for pos := lo; pos < hi; pos++ {
			if s.interrupted() {
				return
			}
			rest = append(rest[:0], sel[:pos]...)
			rest = append(rest, sel[pos+1:]...)
			s.drops[pos] = s.inst.survivableValue(rest)
		}
		s.dropRest[shard] = rest
	})
	return s.drops
}

// BestDrop returns the position whose removal leaves the largest L (ties
// toward the lowest position) and that L. It panics on an empty selection.
func (s *surviveSearch) BestDrop() (pos, sigma int) {
	if s.free.Len() == 0 {
		panic("core: BestDrop on empty selection")
	}
	drops := s.SigmaDrops()
	pos, sigma = 0, drops[0]
	for i := 1; i < len(drops); i++ {
		if drops[i] > sigma {
			pos, sigma = i, drops[i]
		}
	}
	return pos, sigma
}

func (s *surviveSearch) interrupted() bool {
	return s.ctx != nil && s.ctx.Err() != nil
}

// SetWorkers fixes the shard count used by the free search and every
// scenario search; the scenario fold itself stays serial, so results are
// byte-identical at every worker count.
func (s *surviveSearch) SetWorkers(n int) {
	s.workers = ResolveParallelism(n)
	s.applyWorkers()
}

func (s *surviveSearch) applyWorkers() {
	s.free.SetWorkers(s.workers)
	for _, sc := range s.scen {
		sc.SetWorkers(s.workers)
	}
	for _, sc := range s.nodeScen {
		sc.SetWorkers(s.workers)
	}
}

// SetContext implements ContextAware for the free and scenario scans.
func (s *surviveSearch) SetContext(ctx context.Context) {
	s.ctx = ctx
	s.applyContext()
}

func (s *surviveSearch) applyContext() {
	s.free.SetContext(s.ctx)
	for _, sc := range s.scen {
		sc.SetContext(s.ctx)
	}
	for _, sc := range s.nodeScen {
		sc.SetContext(s.ctx)
	}
}

// EnableScanTiming implements ScanTimer on the free search (scenario scans
// are reported through the per-scenario eval histogram instead).
func (s *surviveSearch) EnableScanTiming(on bool) { s.free.EnableScanTiming(on) }

// LastScanShards implements ScanTimer, delegating to the free search.
func (s *surviveSearch) LastScanShards() (minNS, maxNS int64, shards int) {
	return s.free.LastScanShards()
}

// LastEvalStats implements EvalStats, draining the free search and every
// scenario search — the totals reflect the whole survivable round.
func (s *surviveSearch) LastEvalStats() (rowsMerged, rowsUnchanged, pairsRescanned, pairsSkipped int64) {
	drain := func(sc *instSearch) {
		rm, ru, pr, pk := sc.LastEvalStats()
		rowsMerged += rm
		rowsUnchanged += ru
		pairsRescanned += pr
		pairsSkipped += pk
	}
	drain(s.free)
	for _, sc := range s.scen {
		drain(sc)
	}
	for _, sc := range s.nodeScen {
		drain(sc)
	}
	return rowsMerged, rowsUnchanged, pairsRescanned, pairsSkipped
}
