package core

import (
	"testing"

	"msc/internal/failprob"
	"msc/internal/graph"
	"msc/internal/pairs"
	"msc/internal/shortestpath"
	"msc/internal/submodular"
	"msc/internal/xrand"
)

// weightedInstance builds a random instance with random integer pair
// importance levels in [1, 5].
func weightedInstance(t *testing.T, n, m, k int, dt float64, rng *xrand.Rand) *Instance {
	t.Helper()
	g := randomConnectedGraph(t, n, 2*n, rng)
	table := shortestpathTable(g)
	ps, err := pairs.SampleViolating(table, dt, m, rng)
	if err != nil {
		t.Skipf("could not sample pairs: %v", err)
	}
	weights := make([]int, m)
	for i := range weights {
		weights[i] = 1 + rng.Intn(5)
	}
	inst, err := NewInstance(g, ps, thrD(dt), k, &Options{
		AllowTrivial: true, Table: table, PairWeights: weights,
	})
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestWeightValidation(t *testing.T) {
	g := graph.NewBuilder(4).AddEdge(0, 1, 1).MustBuild()
	ps := pairs.MustNewSet(4, []pairs.Pair{{U: 0, W: 2}, {U: 1, W: 3}})
	thr := failprob.NewThreshold(0.2)
	if _, err := NewInstance(g, ps, thr, 1, &Options{AllowTrivial: true, PairWeights: []int{1}}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := NewInstance(g, ps, thr, 1, &Options{AllowTrivial: true, PairWeights: []int{1, 0}}); err == nil {
		t.Fatal("zero weight accepted")
	}
	inst, err := NewInstance(g, ps, thr, 1, &Options{AllowTrivial: true, PairWeights: []int{3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if inst.MaxSigma() != 7 || inst.PairWeight(1) != 4 {
		t.Fatalf("weights not recorded: max=%d w1=%d", inst.MaxSigma(), inst.PairWeight(1))
	}
}

// naiveWeightedSigma recomputes weighted σ from scratch with independent
// Dijkstras on the materialized augmented graph.
func naiveWeightedSigma(inst *Instance, sel []int) int {
	edges := SelectionEdges(inst, sel)
	total := 0
	for i, p := range inst.Pairs().Pairs() {
		dist := shortestpath.AugmentedDistances(inst.Graph(), edges, p.U)
		if dist[p.W] <= inst.Threshold().D {
			total += inst.PairWeight(i)
		}
	}
	return total
}

func TestWeightedSigmaMatchesNaive(t *testing.T) {
	rng := xrand.New(501)
	inst := weightedInstance(t, 16, 7, 3, 0.8, rng)
	for rep := 0; rep < 15; rep++ {
		sel := rng.SampleDistinct(inst.NumCandidates(), rng.Intn(4))
		if got, want := inst.Sigma(sel), naiveWeightedSigma(inst, sel); got != want {
			t.Fatalf("Sigma(%v) = %d, want %d", sel, got, want)
		}
	}
}

func TestWeightedSearchConsistent(t *testing.T) {
	rng := xrand.New(502)
	inst := weightedInstance(t, 15, 6, 3, 0.9, rng)
	sel := rng.SampleDistinct(inst.NumCandidates(), 2)
	s := inst.NewSearch(sel)
	if s.Sigma() != inst.Sigma(sel) {
		t.Fatalf("search σ %d != %d", s.Sigma(), inst.Sigma(sel))
	}
	gains := s.GainsAdd()
	for c := 0; c < inst.NumCandidates(); c += 3 {
		want := inst.Sigma(append(append([]int(nil), sel...), c)) - inst.Sigma(sel)
		if s.GainAdd(c) != want || gains[c] != want {
			t.Fatalf("gain(%d): GainAdd=%d GainsAdd=%d want %d", c, s.GainAdd(c), gains[c], want)
		}
	}
}

func TestWeightedBoundsSandwichSigma(t *testing.T) {
	rng := xrand.New(503)
	for trial := 0; trial < 6; trial++ {
		inst := weightedInstance(t, 14, 6, 3, 0.8, rng)
		for rep := 0; rep < 15; rep++ {
			sel := rng.SampleDistinct(inst.NumCandidates(), rng.Intn(4))
			sigma := float64(inst.Sigma(sel))
			if mu := inst.Mu(sel); mu > sigma+1e-9 {
				t.Fatalf("weighted μ=%v > σ=%v", mu, sigma)
			}
			if nu := inst.Nu(sel); nu < sigma-1e-9 {
				t.Fatalf("weighted ν=%v < σ=%v", nu, sigma)
			}
		}
	}
}

func TestWeightedMuNuStillSubmodular(t *testing.T) {
	rng := xrand.New(504)
	inst := weightedInstance(t, 12, 5, 3, 0.8, rng)
	cands := rng.SampleDistinct(inst.NumCandidates(), 6)
	mu := restrictedValue(cands, inst.Mu)
	if ok, w := submodular.IsSubmodular(len(cands), mu); !ok {
		t.Fatalf("weighted μ not submodular: %+v", w)
	}
	nu := restrictedValue(cands, inst.Nu)
	if ok, w := submodular.IsSubmodular(len(cands), nu); !ok {
		t.Fatalf("weighted ν not submodular: %+v", w)
	}
}

func TestWeightedGreedyPrefersHeavyPair(t *testing.T) {
	// Two isolated violating pairs; one weighs 10, the other 1, budget 1:
	// greedy must serve the heavy pair.
	g := graph.NewBuilder(4).MustBuild() // no edges at all
	ps := pairs.MustNewSet(4, []pairs.Pair{{U: 0, W: 1}, {U: 2, W: 3}})
	inst, err := NewInstance(g, ps, failprob.NewThreshold(0.3), 1, &Options{
		AllowTrivial: true, PairWeights: []int{1, 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	pl := GreedySigma(inst)
	if pl.Sigma != 10 {
		t.Fatalf("greedy σ = %d, want 10 (serve the heavy pair)", pl.Sigma)
	}
	if len(pl.Edges) != 1 || pl.Edges[0].U != 2 || pl.Edges[0].V != 3 {
		t.Fatalf("greedy placed %v, want (2,3)", pl.Edges)
	}
}

func TestWeightedSandwichBoundAgainstExhaustive(t *testing.T) {
	rng := xrand.New(505)
	for trial := 0; trial < 4; trial++ {
		inst := weightedInstance(t, 10, 5, 2, 0.8, rng)
		res := Sandwich(inst)
		opt, err := Exhaustive(inst, 1_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if res.Best.Sigma > opt.Sigma {
			t.Fatalf("AA %d beats optimum %d", res.Best.Sigma, opt.Sigma)
		}
		if float64(res.Best.Sigma) < res.ApproxFactor*float64(opt.Sigma)-1e-9 {
			t.Fatalf("weighted sandwich bound violated: σ=%d factor=%v opt=%d",
				res.Best.Sigma, res.ApproxFactor, opt.Sigma)
		}
	}
}

func TestWeightedCommonNodeReduction(t *testing.T) {
	rng := xrand.New(506)
	for trial := 0; trial < 5; trial++ {
		g := randomConnectedGraph(t, 18, 28, rng)
		table := shortestpathTable(g)
		ps, err := pairs.SampleViolatingWithCommonNode(table, 0.9, 6, 0, rng)
		if err != nil {
			continue
		}
		weights := make([]int, ps.Len())
		for i := range weights {
			weights[i] = 1 + rng.Intn(4)
		}
		inst, err := NewInstance(g, ps, thrD(0.9), 2, &Options{
			AllowTrivial: true, Table: table, PairWeights: weights,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := SolveCommonNode(inst)
		if err != nil {
			t.Fatal(err)
		}
		if res.Coverage != res.Placement.Sigma {
			t.Fatalf("weighted CN coverage %d != σ %d", res.Coverage, res.Placement.Sigma)
		}
	}
}
