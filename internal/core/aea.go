package core

import (
	"context"
	"time"

	"msc/internal/obs"
	"msc/internal/telemetry"
	"msc/internal/xrand"
)

// AEAOptions tune the adaptive evolutionary algorithm.
type AEAOptions struct {
	// Iterations is the adjustment count r (paper uses r = 500).
	Iterations int
	// PopSize is the candidate-solution-set size l (paper uses l = 10).
	PopSize int
	// Delta is the random-exploration probability δ, close to 0 (paper
	// uses δ = 0.05). With probability 1−δ an iteration performs the
	// greedy remove-then-add swap; otherwise a uniformly random swap.
	Delta float64
	// RecordTrace enables per-iteration best-σ recording (Fig. 4).
	RecordTrace bool
	// SeedGreedy seeds the initial population with the greedy-σ placement
	// instead of a uniform random one. This is an extension beyond the
	// paper (Algorithm 2 seeds randomly): it guarantees AEA never returns
	// a worse placement than the F_σ arm of the sandwich algorithm, at
	// the cost of one greedy run before the evolutionary loop.
	SeedGreedy bool
	// Parallelism shards the swap scans (drop re-evaluations and the
	// candidate-addition grid) across workers; 1 forces the serial path,
	// <= 0 resolves via ResolveParallelism. The run is identical for every
	// worker count: the rng draws only on fully reduced scan results.
	Parallelism int
	// Sink, when non-nil, receives one RoundEvent per iteration (the
	// child's σ gain over its parent and the best σ so far). Tracing never
	// touches the RNG, so runs are identical with and without a sink.
	Sink telemetry.Sink
	// Context supervises the run: checked at each iteration boundary;
	// once done the loop stops with the best solution so far and
	// Best.Stop.Reason set accordingly. nil means never canceled.
	Context context.Context
	// Deadline bounds the run in wall-clock time (composes with Context).
	Deadline time.Duration
	// Resume continues from a checkpoint with Algorithm "aea": RNG
	// repositioned, population and best restored, iteration Resume.Round
	// runs next.
	Resume *telemetry.CheckpointEvent
	// CheckpointSink receives CheckpointEvent snapshots: one at the end of
	// the run, plus one every CheckpointEvery iterations when > 0.
	CheckpointSink  telemetry.Sink
	CheckpointEvery int
}

// DefaultAEAOptions mirror the paper's evaluation settings (§VII-D).
func DefaultAEAOptions() AEAOptions {
	return AEAOptions{Iterations: 500, PopSize: 10, Delta: 0.05}
}

// AEAResult reports an AEA run.
type AEAResult struct {
	Best Placement
	// Trace[t] is the best σ found within the first t+1 iterations
	// (recorded only with RecordTrace).
	Trace []int
}

// aeaSol is one population member.
type aeaSol struct {
	sel   []int
	sigma int
}

// AEA is the adaptive evolutionary algorithm of §V-D (Algorithm 2). Unlike
// EA it searches only the feasible region |F| = k: it seeds a random
// placement of k shortcuts, then repeatedly derives a new solution from a
// uniformly chosen population member by a swap — greedy with probability
// 1−δ (drop the edge whose removal hurts σ least, then add the edge with
// the largest σ gain), uniformly random with probability δ. The new
// solution replaces the population's worst member when strictly better,
// and the population keeps at most l members for diversity.
//
// The paper's argmax steps leave ties unspecified; AEA breaks all of them
// uniformly at random. Random tie-breaking matters: on plateaus (several
// removals or additions with equal σ effect) a deterministic tie-break
// regenerates the same child forever, while randomized argmax keeps
// exploring the plateau — the AEADelta ablation bench quantifies the
// difference. When every addition has zero gain, every candidate is an
// argmax and AEA draws one uniformly from the absent candidates.
//
// On a budgeted problem AEA searches the budget-feasible region instead of
// |F| = k: the seed is a random affordable fill, and both swap flavors
// restrict the incoming candidate to those fitting the budget freed by the
// drop (skipping the add when nothing fits). Under unit costs with B = k
// the draw sequence matches the cardinality run exactly whenever the seed
// fill takes SampleDistinct's rejection branch (k·3 < N).
func AEA(p Problem, opts AEAOptions, rng *xrand.Rand) AEAResult {
	if opts.PopSize < 1 {
		opts.PopSize = 1
	}
	workers := ResolveParallelism(opts.Parallelism)
	numCand := p.NumCandidates()
	bp, _ := asBudgeted(p) // nil on cardinality problems
	k := p.K()
	if k > numCand {
		k = numCand
	}

	ctx, cancel := superviseCtx(opts.Context, opts.Deadline)
	defer cancel()
	var pop []aeaSol
	var best aeaSol
	startIter := 0
	if cp := opts.Resume; cp != nil {
		checkResume("aea", cp, opts.Iterations)
		restoreRNG(rng, cp)
		pop = make([]aeaSol, len(cp.Population))
		for i, s := range cp.Population {
			pop[i] = aeaSol{sel: append([]int(nil), s.Selection...), sigma: s.Sigma}
		}
		best = aeaSol{sel: append([]int(nil), cp.Best.Selection...), sigma: cp.Best.Sigma}
		startIter = cp.Round
	} else {
		var seed []int
		if bp != nil {
			seed = affordableFill(bp, rng)
		} else {
			seed = rng.SampleDistinct(numCand, k)
		}
		if opts.SeedGreedy {
			seed = greedySeed(p, bp, k, numCand, rng, workers)
		}
		pop = []aeaSol{{sel: seed, sigma: SigmaOf(p, seed, workers)}}
		best = pop[0]
	}
	res := AEAResult{}
	if opts.RecordTrace {
		res.Trace = make([]int, 0, opts.Iterations-startIter)
	}
	stop := StopInfo{Reason: StopEvalBudget, Rounds: startIter}
	checkpoint := func() {
		if opts.CheckpointSink == nil {
			return
		}
		seed, draws := rng.State()
		cp := telemetry.CheckpointEvent{
			Algorithm:  "aea",
			Round:      stop.Rounds,
			Seed:       seed,
			Draws:      draws,
			Population: make([]telemetry.CheckpointSolution, len(pop)),
			Best:       snapshotSolution(best.sel, best.sigma),
		}
		for i, s := range pop {
			cp.Population[i] = snapshotSolution(s.sel, s.sigma)
		}
		opts.CheckpointSink.Emit(cp)
	}

	obsOn := obs.Enabled()
	for iter := startIter; iter < opts.Iterations; iter++ {
		// Supervision precedes the iteration's RNG draws: cancellation
		// lands on a clean iteration boundary, the state checkpoints
		// capture.
		if err := ctxErr(ctx); err != nil {
			stop.Reason = stopReasonFor(err)
			break
		}
		var start time.Time
		if opts.Sink != nil || obsOn {
			start = time.Now()
		}
		parent := pop[rng.Intn(len(pop))]
		child := deriveChild(p, bp, parent, opts.Delta, rng, workers)
		if child.sigma > best.sigma {
			best = child
		}
		updatePopulation(&pop, child, opts.PopSize)
		stop.Rounds = iter + 1
		if opts.RecordTrace {
			res.Trace = append(res.Trace, best.sigma)
		}
		if obsOn {
			obs.ObserveRound(time.Since(start))
		}
		if opts.Sink != nil {
			// The swap's added candidate sits at the end of the child
			// selection (both greedy and random swaps append it last).
			var added *[2]int32
			if len(child.sel) > 0 {
				e := p.CandidateEdge(child.sel[len(child.sel)-1])
				added = &[2]int32{int32(e.U), int32(e.V)}
			}
			mu, nu := diagBounds(p, child.sel)
			opts.Sink.Emit(telemetry.RoundEvent{
				Algorithm:  "aea",
				Round:      iter,
				Shortcut:   added,
				Gain:       child.sigma - parent.sigma,
				Sigma:      best.sigma,
				Selected:   len(child.sel),
				Candidates: numCand,
				Mu:         mu,
				Nu:         nu,
				ElapsedNS:  time.Since(start).Nanoseconds(),
			})
		}
		if stop.Rounds < opts.Iterations && checkpointDue(stop.Rounds, opts.Iterations, opts.CheckpointEvery) {
			checkpoint()
		}
	}
	checkpoint()
	res.Best = newPlacement(p, best.sel)
	stop.Sigma = res.Best.Sigma
	res.Best.Stop = stop
	return res
}

// greedySeed starts from the greedy-σ placement and tops it up with random
// extras so the swap moves operate on a full budget: to k shortcuts on
// cardinality problems, to budget exhaustion on budgeted ones (bp != nil).
func greedySeed(p Problem, bp BudgetProblem, k, numCand int, rng *xrand.Rand, workers int) []int {
	seed := GreedySigma(p, Parallelism(workers)).Selection
	if bp != nil {
		rem := bp.Budget() - bp.CostOf(seed)
		for {
			if c := randomAbsentSelAffordable(seed, bp, rem, numCand, rng); c >= 0 {
				seed = append(seed, c)
				rem -= bp.Cost(c)
				continue
			}
			return seed
		}
	}
	for len(seed) < k {
		c := rng.Intn(numCand)
		dup := false
		for _, x := range seed {
			if x == c {
				dup = true
				break
			}
		}
		if !dup {
			seed = append(seed, c)
		}
	}
	return seed
}

// deriveChild produces a new feasible solution from parent via one swap.
// The greedy swap's drop and add scans shard across the given workers; the
// rng consumes draws only from fully reduced scan results, so the child is
// identical for every worker count. On budgeted problems (bp != nil) the
// incoming candidate must fit the budget headroom after the drop; when
// nothing fits the swap degenerates to a pure drop.
func deriveChild(p Problem, bp BudgetProblem, parent aeaSol, delta float64, rng *xrand.Rand, workers int) aeaSol {
	numCand := p.NumCandidates()
	if numCand == 0 {
		// Degenerate universe: nothing to swap in (and randomAbsent would
		// spin forever). Keep the parent.
		return aeaSol{sel: append([]int(nil), parent.sel...), sigma: parent.sigma}
	}
	if rng.Float64() <= 1-delta {
		// Greedy swap on an incremental search state, argmax ties broken
		// uniformly at random.
		s := p.NewSearch(parent.sel)
		setSearchWorkers(s, workers)
		if s.Len() > 0 {
			s.RemoveAt(randomBestDrop(s, rng))
		}
		if bp != nil {
			rem := bp.Budget() - bp.CostOf(s.Selection())
			cand := randomBestAddBudget(s, bp, rem, rng)
			if cand < 0 {
				cand = randomAbsentAffordable(s, bp, rem, numCand, rng)
			}
			if cand >= 0 {
				s.Add(cand)
			}
			return aeaSol{sel: s.Selection(), sigma: s.Sigma()}
		}
		cand := randomBestAdd(s, rng)
		if cand < 0 {
			cand = randomAbsent(s, numCand, rng)
		}
		s.Add(cand)
		return aeaSol{sel: s.Selection(), sigma: s.Sigma()}
	}
	// Random swap.
	child := append([]int(nil), parent.sel...)
	if len(child) > 0 {
		i := rng.Intn(len(child))
		child[i] = child[len(child)-1]
		child = child[:len(child)-1]
	}
	if bp != nil {
		rem := bp.Budget() - bp.CostOf(child)
		if c := randomAbsentSelAffordable(child, bp, rem, numCand, rng); c >= 0 {
			child = append(child, c)
		}
		return aeaSol{sel: child, sigma: SigmaOf(p, child, workers)}
	}
	child = append(child, randomAbsentSel(child, numCand, rng))
	return aeaSol{sel: child, sigma: SigmaOf(p, child, workers)}
}

// randomBestDrop returns a uniformly random position among those whose
// removal leaves the maximal σ. The per-position σ values come from one
// (possibly sharded) SigmaDrops pass; tie collection and the rng draw stay
// serial, so the choice matches the serial scan draw for draw.
func randomBestDrop(s Search, rng *xrand.Rand) int {
	drops := sigmaDrops(s, nil)
	bestSigma := -1
	var ties []int
	for pos, sig := range drops {
		switch {
		case sig > bestSigma:
			bestSigma = sig
			ties = ties[:0]
			ties = append(ties, pos)
		case sig == bestSigma:
			ties = append(ties, pos)
		}
	}
	return ties[rng.Intn(len(ties))]
}

// randomBestAdd returns a uniformly random candidate among those with the
// maximal positive σ gain, or -1 when no addition gains anything.
func randomBestAdd(s Search, rng *xrand.Rand) int {
	gains := s.GainsAdd()
	bestGain := 0
	count := 0
	for _, g := range gains {
		switch {
		case g > bestGain:
			bestGain = g
			count = 1
		case g == bestGain && g > 0:
			count++
		}
	}
	if bestGain <= 0 {
		return -1
	}
	// Reservoir-free second pass: pick the j-th maximizer.
	j := rng.Intn(count)
	for c, g := range gains {
		if g == bestGain {
			if j == 0 {
				return c
			}
			j--
		}
	}
	return -1 // unreachable
}

// randomAbsent draws a uniform candidate not in the search's selection.
func randomAbsent(s Search, numCand int, rng *xrand.Rand) int {
	for {
		c := rng.Intn(numCand)
		if !s.Contains(c) {
			return c
		}
	}
}

// randomBestAddBudget is randomBestAdd restricted to candidates affordable
// within rem. Under unit costs with full headroom every candidate is
// affordable and the draw sequence matches randomBestAdd exactly.
func randomBestAddBudget(s Search, bp BudgetProblem, rem float64, rng *xrand.Rand) int {
	gains := s.GainsAdd()
	bestGain := 0
	count := 0
	for c, g := range gains {
		if bp.Cost(c) > rem {
			continue
		}
		switch {
		case g > bestGain:
			bestGain = g
			count = 1
		case g == bestGain && g > 0:
			count++
		}
	}
	if bestGain <= 0 {
		return -1
	}
	j := rng.Intn(count)
	for c, g := range gains {
		if g == bestGain && bp.Cost(c) <= rem {
			if j == 0 {
				return c
			}
			j--
		}
	}
	return -1 // unreachable
}

// randomAbsentAffordable draws a uniform candidate that is absent from the
// search's selection and affordable within rem, or -1 when none exists (the
// existence scan consumes no rng draws, preserving unit-cost parity with
// randomAbsent).
func randomAbsentAffordable(s Search, bp BudgetProblem, rem float64, numCand int, rng *xrand.Rand) int {
	exists := false
	for c := 0; c < numCand; c++ {
		if !s.Contains(c) && bp.Cost(c) <= rem {
			exists = true
			break
		}
	}
	if !exists {
		return -1
	}
	for {
		c := rng.Intn(numCand)
		if !s.Contains(c) && bp.Cost(c) <= rem {
			return c
		}
	}
}

// randomAbsentSelAffordable is randomAbsentAffordable over a plain selection
// slice.
func randomAbsentSelAffordable(sel []int, bp BudgetProblem, rem float64, numCand int, rng *xrand.Rand) int {
	contains := func(c int) bool {
		for _, x := range sel {
			if x == c {
				return true
			}
		}
		return false
	}
	exists := false
	for c := 0; c < numCand; c++ {
		if !contains(c) && bp.Cost(c) <= rem {
			exists = true
			break
		}
	}
	if !exists {
		return -1
	}
	for {
		c := rng.Intn(numCand)
		if !contains(c) && bp.Cost(c) <= rem {
			return c
		}
	}
}

func randomAbsentSel(sel []int, numCand int, rng *xrand.Rand) int {
	for {
		c := rng.Intn(numCand)
		dup := false
		for _, x := range sel {
			if x == c {
				dup = true
				break
			}
		}
		if !dup {
			return c
		}
	}
}

// updatePopulation inserts child, evicting the worst member when the
// population is full and the child strictly improves on it.
func updatePopulation(pop *[]aeaSol, child aeaSol, popSize int) {
	if len(*pop) < popSize {
		*pop = append(*pop, child)
		return
	}
	worst := 0
	for i := 1; i < len(*pop); i++ {
		if (*pop)[i].sigma < (*pop)[worst].sigma {
			worst = i
		}
	}
	if (*pop)[worst].sigma < child.sigma {
		(*pop)[worst] = child
	}
}
