package core

import (
	"math"
	"time"

	"msc/internal/telemetry"
)

// SandwichResult reports the approximation algorithm AA of §V-B: the best
// of three greedy arms together with the data-dependent approximation
// bound of Eq. (5).
type SandwichResult struct {
	// Best is argmax_{F ∈ {FMu, FSigma, FNu}} σ(F).
	Best Placement
	// FMu, FSigma, FNu are the three greedy arms.
	FMu, FSigma, FNu Placement
	// Ratio is σ(F_σ)/ν(F_σ), the computable factor of the bound: AA is
	// guaranteed at least Ratio · (1 − 1/e) of the optimum (the paper's
	// practical form of Eq. (5); Tables I and II report this Ratio).
	Ratio float64
	// ApproxFactor is Ratio · (1 − 1/e) on cardinality problems. On
	// budgeted problems the μ/ν arms run the knapsack weighted greedy,
	// whose guarantee is ½(1 − 1/e) (Khuller–Moss–Naor), so the factor is
	// Ratio · ½(1 − 1/e).
	ApproxFactor float64
	// NuAtFSigma is ν(F_σ), kept for diagnostics.
	NuAtFSigma float64
}

// Sandwich runs the approximation algorithm (AA): greedy placements for the
// lower bound μ, the objective σ itself, and the upper bound ν, returning
// the one that maintains the most social pairs. Per Eq. (5),
//
//	σ(F_app) ≥ (σ(F_σ)/ν(F_σ)) · (1 − 1/e) · σ(F*).
//
// Options (e.g. Parallelism, WithSink) are forwarded to the F_σ arm, whose
// candidate scans dominate the run; the μ/ν arms run on the lazy-greedy
// coverage solver, which is already cheap. With a sink attached, the F_σ arm
// emits its per-round trace and Sandwich itself emits one closing
// SandwichEvent summarizing the three arms and the bound.
func Sandwich(p Problem, opts ...Option) SandwichResult {
	cfg := resolveConfig(opts)
	defer cfg.release()
	// The F_σ arm must share this run's derived deadline context rather than
	// re-deriving its own (which would restart the clock mid-run), so the
	// forwarded options pin the resolved context and clear the deadline.
	armOpts := append(append([]Option(nil), opts...), WithContext(cfg.ctx), WithDeadline(0))
	start := time.Now()
	res := SandwichResult{
		FMu:    GreedyMu(p),
		FSigma: GreedySigma(p, armOpts...),
		FNu:    GreedyNu(p),
	}
	// Under a survivability mode the winner is picked lexicographically by
	// (σ⁻, σ): an arm that keeps more pairs through the worst single
	// failure beats one that only looks better fault-free. armValue is
	// plain σ on fault-free problems, so the pick is unchanged there.
	wp, survivable := p.(WorstCaseProblem)
	if survivable && wp.Survive() == SurviveNone {
		survivable = false
	}
	armValue := func(pl Placement) int {
		if survivable {
			return wp.SigmaWorst(pl.Selection)*(p.MaxSigma()+1) + pl.Sigma
		}
		return pl.Sigma
	}
	res.Best = res.FMu
	best, bestVal := "mu", armValue(res.FMu)
	if v := armValue(res.FSigma); v > bestVal {
		res.Best, best, bestVal = res.FSigma, "sigma", v
	}
	if v := armValue(res.FNu); v > bestVal {
		res.Best, best, bestVal = res.FNu, "nu", v
	}
	res.NuAtFSigma = p.Nu(res.FSigma.Selection)
	if res.NuAtFSigma > 0 {
		res.Ratio = float64(res.FSigma.Sigma) / res.NuAtFSigma
	} else {
		res.Ratio = 1 // ν ≥ σ ≥ 0; ν == 0 forces σ == 0 too
	}
	res.ApproxFactor = res.Ratio * (1 - 1/math.E)
	if _, budgeted := asBudgeted(p); budgeted {
		res.ApproxFactor /= 2 // the weighted-greedy arms only carry ½(1−1/e)
	}
	// The μ/ν arms run the cheap lazy-greedy coverage solver open-loop, so
	// only the F_σ arm observes cancellation; its stop reason describes the
	// whole run, re-attached with the winning arm's σ.
	res.Best.Stop = StopInfo{
		Reason: res.FSigma.Stop.Reason,
		Rounds: res.FSigma.Stop.Rounds,
		Sigma:  res.Best.Sigma,
	}
	if cfg.sink != nil {
		var bestWorst *int
		if survivable {
			w := wp.SigmaWorst(res.Best.Selection)
			bestWorst = &w
		}
		cfg.sink.Emit(telemetry.SandwichEvent{
			SigmaMu:      res.FMu.Sigma,
			SigmaSigma:   res.FSigma.Sigma,
			SigmaNu:      res.FNu.Sigma,
			Best:         best,
			Sigma:        res.Best.Sigma,
			SigmaWorst:   bestWorst,
			Ratio:        res.Ratio,
			ApproxFactor: res.ApproxFactor,
			NuAtFSigma:   res.NuAtFSigma,
			ElapsedNS:    time.Since(start).Nanoseconds(),
		})
	}
	return res
}
