package core

import (
	"fmt"
	"math"
	"testing"

	"msc/internal/failprob"
	"msc/internal/graph"
	"msc/internal/pairs"
	"msc/internal/xrand"
)

// benchInputs builds a random connected graph of n nodes (~3n edges) and m
// random social pairs, outside the timed region. The pairs need not be
// violating: construction cost does not depend on it, and sampling would
// drown the measurement in Dijkstras.
func benchInputs(b *testing.B, n, m int) (*graph.Graph, *pairs.Set) {
	b.Helper()
	rng := xrand.New(99)
	gb := graph.NewBuilder(n)
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		gb.AddEdge(graph.NodeID(perm[i]), graph.NodeID(perm[rng.Intn(i)]), 0.1+rng.Float64())
	}
	for e := 0; e < 2*n; e++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			gb.AddEdge(graph.NodeID(u), graph.NodeID(v), 0.1+rng.Float64())
		}
	}
	g, err := gb.Build()
	if err != nil {
		b.Fatal(err)
	}
	seen := map[pairs.Pair]bool{}
	var ps []pairs.Pair
	for len(ps) < m {
		p := pairs.New(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
		if p.U == p.W || seen[p] {
			continue
		}
		seen[p] = true
		ps = append(ps, p)
	}
	set, err := pairs.NewSet(n, ps)
	if err != nil {
		b.Fatal(err)
	}
	return g, set
}

func benchNewInstance(b *testing.B, backend DistBackend) {
	for _, shape := range []struct{ n, m int }{{200, 50}, {1000, 50}} {
		b.Run(fmt.Sprintf("n%d_m%d", shape.n, shape.m), func(b *testing.B) {
			g, ps := benchInputs(b, shape.n, shape.m)
			thr := failprob.Threshold{P: 1 - math.Exp(-0.8), D: 0.8}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				inst, err := NewInstance(g, ps, thr, 4, &Options{AllowTrivial: true, DistBackend: backend})
				if err != nil {
					b.Fatal(err)
				}
				_ = inst
			}
		})
	}
}

// BenchmarkNewInstanceDense measures eager instance construction: n
// Dijkstras plus the n×n table, regardless of how many rows the solver
// will read.
func BenchmarkNewInstanceDense(b *testing.B) { benchNewInstance(b, BackendDense) }

// BenchmarkNewInstanceLazy measures lazy instance construction: only the
// ≤2m pair-endpoint rows are computed (for the σ(∅) baseline); everything
// else is deferred until a solver touches it.
func BenchmarkNewInstanceLazy(b *testing.B) { benchNewInstance(b, BackendLazy) }

func benchGreedyEndToEnd(b *testing.B, backend DistBackend) {
	g, ps := benchInputs(b, 200, 20)
	thr := failprob.Threshold{P: 1 - math.Exp(-0.8), D: 0.8}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inst, err := NewInstance(g, ps, thr, 3, &Options{AllowTrivial: true, DistBackend: backend})
		if err != nil {
			b.Fatal(err)
		}
		GreedySigma(inst, Parallelism(1))
	}
}

// BenchmarkGreedySigmaDense / ...Lazy time construction plus a full greedy
// run, the workload the auto-selection threshold trades off: the lazy
// backend wins construction but pays a cache lookup per row read.
func BenchmarkGreedySigmaDense(b *testing.B) { benchGreedyEndToEnd(b, BackendDense) }

func BenchmarkGreedySigmaLazy(b *testing.B) { benchGreedyEndToEnd(b, BackendLazy) }
