package core

import (
	"fmt"
	"sync/atomic"

	"msc/internal/graph"
	"msc/internal/telemetry"
)

// Survivability selects the failure model a placement must survive: the
// objective becomes the worst-case σ⁻(S) = min_{f ∈ scenarios(S)} σ(S \ f)
// over all single-failure scenarios, instead of the fault-free σ(S).
//
// The survivable solvers (GreedySigma, LocalSearch, Sandwich on a
// survivable Instance) optimize the pair (σ⁻, σ) lexicographically: among
// placements with equal worst-case coverage the fault-free coverage breaks
// the tie. See DESIGN.md §11 for the objective, the scenario-memoization
// invariants, and the monotonicity caveats of σ⁻.
type Survivability string

const (
	// SurviveAuto resolves to the process default installed with
	// SetDefaultSurvivability, else to SurviveNone.
	SurviveAuto Survivability = ""
	// SurviveNone is the paper's fault-free objective: no failure
	// scenarios, σ⁻ degenerates to σ.
	SurviveNone Survivability = "none"
	// SurviveShortcut guards against the loss of any single placed
	// shortcut: scenarios(S) = S, one per selection position, so
	// σ⁻(S) = min_j σ(S \ {S[j]}) (σ⁻(∅) = σ(∅) by convention). σ⁻ is
	// monotone in this mode but not submodular.
	SurviveShortcut Survivability = "shortcut"
	// SurviveNode additionally guards against the loss of any single
	// network node v: scenarios(S) = S ∪ V. In the node scenario for v the
	// graph loses every edge incident to v, shortcuts incident to v are
	// dead, and pairs incident to v are vacuously satisfied (their demand
	// left with the node; the scenario adds their weight as a constant).
	// Node-mode σ⁻ is NOT monotone — and can even exceed σ when a failed
	// node takes hard pairs with it — see DESIGN.md §11.
	SurviveNode Survivability = "node"
)

// defaultSurvivability holds the process-wide mode used when
// Options.Survive is SurviveAuto; empty means SurviveNone. Set from the
// -survive flag of the cmds, mirroring SetDefaultEvalMode.
var defaultSurvivability atomic.Value // Survivability

// ParseSurvivability validates a -survive flag value; "auto", "none",
// "shortcut", and "node" are accepted.
func ParseSurvivability(s string) (Survivability, error) {
	switch s {
	case "", "auto":
		return SurviveAuto, nil
	case string(SurviveNone):
		return SurviveNone, nil
	case string(SurviveShortcut):
		return SurviveShortcut, nil
	case string(SurviveNode):
		return SurviveNode, nil
	}
	return SurviveAuto, fmt.Errorf("core: unknown survivability mode %q (want auto, none, shortcut, or node)", s)
}

// SetDefaultSurvivability sets the failure model used by instances built
// with SurviveAuto; SurviveAuto restores the built-in fault-free default.
func SetDefaultSurvivability(m Survivability) {
	defaultSurvivability.Store(m)
}

// resolveSurvivability applies the explicit-option → process-default →
// built-in resolution chain. Unknown non-auto values pass through for
// NewInstance to reject.
func resolveSurvivability(m Survivability) Survivability {
	if m == SurviveAuto {
		if d, ok := defaultSurvivability.Load().(Survivability); ok {
			m = d
		}
	}
	if m == SurviveAuto {
		return SurviveNone
	}
	return m
}

// WorstCaseProblem is implemented by problems that carry a survivability
// mode and can evaluate the worst-case objective σ⁻ for a selection.
// Sandwich uses it to pick its best arm lexicographically by (σ⁻, σ), and
// the cmds use it to report sigma_worst in run records.
type WorstCaseProblem interface {
	Problem
	// Survive returns the resolved failure model.
	Survive() Survivability
	// SigmaWorst evaluates σ⁻(sel) from scratch: the minimum σ over every
	// single-failure scenario of the selection. Under SurviveNone it
	// degenerates to Sigma(sel).
	SigmaWorst(sel []int) int
}

// worstCaseSearch is implemented by searches whose Sigma() speaks the
// scalarized lexicographic value L = σ⁻·(MaxSigma+1) + σ rather than plain
// σ. SigmaParts decomposes it so trace emission can report the two
// components separately.
type worstCaseSearch interface {
	// SigmaParts returns the fault-free σ and the worst-case σ⁻ of the
	// current selection.
	SigmaParts() (sigma, sigmaWorst int)
}

// sigmaParts decomposes a search's reported value for trace emission: the
// fault-free σ, and — when the search speaks the survivable lexicographic
// objective — a non-nil σ⁻.
func sigmaParts(s Search) (sigma int, sigmaWorst *int) {
	if ws, ok := s.(worstCaseSearch); ok {
		sg, wc := ws.SigmaParts()
		return sg, &wc
	}
	return s.Sigma(), nil
}

// Survive returns the instance's resolved failure model.
func (inst *Instance) Survive() Survivability { return inst.survive }

// SigmaWorst evaluates σ⁻(sel) from scratch per the instance's failure
// model: the minimum σ over every single-failure scenario. Under
// SurviveNone it returns Sigma(sel). Unlike the incremental survivable
// search this rebuilds every scenario overlay, so it is meant for final
// reporting and differential testing, not for solver inner loops.
func (inst *Instance) SigmaWorst(sel []int) int {
	switch inst.survive {
	case SurviveShortcut:
		return inst.sigmaWorstShortcut(sel)
	case SurviveNode:
		nw := inst.sigmaWorstNode(sel)
		if len(sel) == 0 {
			return nw
		}
		if sw := inst.sigmaWorstShortcut(sel); sw < nw {
			return sw
		}
		return nw
	default:
		return inst.Sigma(sel)
	}
}

// sigmaWorstShortcut is min_j σ(sel \ {sel[j]}); σ(∅) for an empty
// selection (no scenarios — the empty placement has nothing to lose).
func (inst *Instance) sigmaWorstShortcut(sel []int) int {
	if len(sel) == 0 {
		telemetry.Global().FailureScenariosEvaled.Add(1)
		return inst.Sigma(nil)
	}
	telemetry.Global().FailureScenariosEvaled.Add(int64(len(sel)))
	worst := 0
	rest := make([]int, 0, len(sel)-1)
	for j := range sel {
		rest = append(rest[:0], sel[:j]...)
		rest = append(rest, sel[j+1:]...)
		s := inst.Sigma(rest)
		if j == 0 || s < worst {
			worst = s
		}
	}
	return worst
}

// sigmaWorstNode is min_v (vac_v + σ_v(surviving(sel, v))) over every node
// v, where σ_v evaluates on the cached G−v scenario instance, surviving
// drops the shortcuts incident to v, and vac_v is the constant weight of
// the pairs incident to v (vacuously satisfied — their demand left with
// the node).
func (inst *Instance) sigmaWorstNode(sel []int) int {
	insts, vac := inst.nodeScenarios()
	telemetry.Global().FailureScenariosEvaled.Add(int64(len(insts)))
	worst := 0
	surv := make([]int, 0, len(sel))
	for v, ni := range insts {
		surv = surv[:0]
		for _, c := range sel {
			e := inst.CandidateEdge(c)
			if int(e.U) != v && int(e.V) != v {
				surv = append(surv, c)
			}
		}
		s := vac[v] + ni.Sigma(surv)
		if v == 0 || s < worst {
			worst = s
		}
	}
	return worst
}

// survivableValue is the scalarized lexicographic objective
// L(sel) = σ⁻(sel)·(MaxSigma+1) + σ(sel): integer ordering of L equals
// lexicographic ordering of (σ⁻, σ), which is what the survivable search
// reports as its Sigma() so the greedy/swap machinery works unchanged.
func (inst *Instance) survivableValue(sel []int) int {
	return inst.SigmaWorst(sel)*(inst.totalWeight+1) + inst.Sigma(sel)
}

// nodeScenarios lazily builds (once) the per-node failure scenario
// instances: nodeInsts[v] is the instance on G−v (same node universe, every
// edge incident to v removed, identical candidate indexing and pair
// weights), and nodeVac[v] the constant vacuous weight of pairs incident
// to v. The scenario instances use the lazy distance backend — only the
// pair-endpoint rows are ever read — and are shared by every search built
// from this instance.
func (inst *Instance) nodeScenarios() ([]*Instance, []int) {
	inst.nodeOnce.Do(func() {
		n := inst.g.N()
		inst.nodeVac = make([]int, n)
		for i, p := range inst.ps.Pairs() {
			w := int(inst.weights[i])
			inst.nodeVac[p.U] += w
			inst.nodeVac[p.W] += w
		}
		weights := make([]int, inst.ps.Len())
		for i := range weights {
			weights[i] = int(inst.weights[i])
		}
		opts := &Options{
			AllowTrivial:         true,
			DistBackend:          BackendLazy,
			EvalMode:             inst.evalMode,
			Survive:              SurviveNone, // scenario instances must never recurse
			ExcludePairEndpoints: inst.candPos != nil,
			PairWeights:          weights,
		}
		inst.nodeInsts = make([]*Instance, n)
		for v := 0; v < n; v++ {
			b := graph.NewBuilder(n)
			for _, e := range inst.g.Edges() {
				if int(e.U) != v && int(e.V) != v {
					b.AddEdge(e.U, e.V, e.Length)
				}
			}
			inst.nodeInsts[v] = MustNewInstance(b.MustBuild(), inst.ps, inst.thr, inst.k, opts)
		}
	})
	return inst.nodeInsts, inst.nodeVac
}

// foldIncident calls fn for every candidate index incident to node v (none
// when v is outside the candidate universe). Used to overwrite a node
// scenario's gains for candidates that die with the node.
func (inst *Instance) foldIncident(v int, fn func(c int)) {
	pv := v
	if inst.candPos != nil {
		p, ok := inst.candPos[graph.NodeID(v)]
		if !ok {
			return
		}
		pv = int(p)
	}
	t := len(inst.candNodes)
	if pv >= t {
		return
	}
	// Grid row pv: candidates (pv, bi) for bi > pv.
	idx := rowStart(t, pv)
	for bi := pv + 1; bi < t; bi++ {
		fn(idx)
		idx++
	}
	// Grid column pv: candidates (ai, pv) for ai < pv.
	for ai := 0; ai < pv; ai++ {
		fn(rowStart(t, ai) + pv - ai - 1)
	}
}
