package core

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"msc/internal/xrand"
)

// This file locks in the determinism contract of the parallel candidate-
// scan engine (parallel.go): for every algorithm, Parallelism(1) and
// Parallelism(n) must produce identical placements — same selection, same
// order, same σ — on every instance. Run it under -race to also certify
// that the sharded scans share no mutable state.

// comparePlacements fails the test when two placements differ in any
// observable way.
func comparePlacements(t *testing.T, what string, serial, parallel Placement) {
	t.Helper()
	if serial.Sigma != parallel.Sigma {
		t.Errorf("%s: σ differs: serial %d, parallel %d", what, serial.Sigma, parallel.Sigma)
	}
	if !reflect.DeepEqual(serial.Selection, parallel.Selection) {
		t.Errorf("%s: selection differs: serial %v, parallel %v", what, serial.Selection, parallel.Selection)
	}
	if !reflect.DeepEqual(serial.Edges, parallel.Edges) {
		t.Errorf("%s: edges differ: serial %v, parallel %v", what, serial.Edges, parallel.Edges)
	}
}

// referenceGreedySigma is an independent oracle for the greedy-σ placement:
// plain σ evaluations, no incremental search, no engine. It pins down the
// exact pre-engine semantics — argmax with ties toward the lowest candidate
// index, stop on non-positive gain — so the equivalence tests certify the
// engine against the algorithm's definition, not against itself.
func referenceGreedySigma(p Problem) []int {
	sel := []int{}
	for len(sel) < p.K() {
		base := p.Sigma(sel)
		bestCand, bestGain := 0, p.Sigma(append(append([]int(nil), sel...), 0))-base
		for c := 1; c < p.NumCandidates(); c++ {
			gain := p.Sigma(append(append([]int(nil), sel...), c)) - base
			if gain > bestGain {
				bestCand, bestGain = c, gain
			}
		}
		if bestGain <= 0 {
			break
		}
		sel = append(sel, bestCand)
	}
	return sel
}

// TestSerialParallelEquivalence certifies, for every placement algorithm,
// that Parallelism(1) and Parallelism(8) return identical placements on
// seeded random-geometric instances. Randomized algorithms get identical
// seeds on both sides: the engine guarantees the rng consumes the same
// draws in the same order regardless of worker count.
func TestSerialParallelEquivalence(t *testing.T) {
	const seeds = 24
	const workers = 8
	for seed := int64(0); seed < seeds; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := xrand.New(7000 + seed)
			n := 13 + int(seed%5)
			inst := testInstance(t, n, 6, 3, 0.8, rng)

			t.Run("greedy_sigma", func(t *testing.T) {
				serial := GreedySigma(inst, Parallelism(1))
				par := GreedySigma(inst, Parallelism(workers))
				comparePlacements(t, "GreedySigma", serial, par)
				if ref := referenceGreedySigma(inst); !reflect.DeepEqual(serial.Selection, ref) {
					t.Errorf("serial greedy deviates from reference oracle: got %v, want %v",
						serial.Selection, ref)
				}
			})

			t.Run("sandwich", func(t *testing.T) {
				serial := Sandwich(inst, Parallelism(1))
				par := Sandwich(inst, Parallelism(workers))
				comparePlacements(t, "Sandwich.Best", serial.Best, par.Best)
				comparePlacements(t, "Sandwich.FMu", serial.FMu, par.FMu)
				comparePlacements(t, "Sandwich.FSigma", serial.FSigma, par.FSigma)
				comparePlacements(t, "Sandwich.FNu", serial.FNu, par.FNu)
				if serial.Ratio != par.Ratio {
					t.Errorf("sandwich ratio differs: serial %v, parallel %v", serial.Ratio, par.Ratio)
				}
			})

			t.Run("ea", func(t *testing.T) {
				serial := EA(inst, EAOptions{Iterations: 40, Parallelism: 1}, xrand.New(seed))
				par := EA(inst, EAOptions{Iterations: 40, Parallelism: workers}, xrand.New(seed))
				comparePlacements(t, "EA.Best", serial.Best, par.Best)
				if serial.Evaluations != par.Evaluations || serial.PopulationSize != par.PopulationSize {
					t.Errorf("EA run shape differs: serial (%d evals, pop %d), parallel (%d evals, pop %d)",
						serial.Evaluations, serial.PopulationSize, par.Evaluations, par.PopulationSize)
				}
			})

			t.Run("aea", func(t *testing.T) {
				serialOpts := AEAOptions{Iterations: 40, PopSize: 5, Delta: 0.05, RecordTrace: true, Parallelism: 1}
				parOpts := serialOpts
				parOpts.Parallelism = workers
				serial := AEA(inst, serialOpts, xrand.New(seed))
				par := AEA(inst, parOpts, xrand.New(seed))
				comparePlacements(t, "AEA.Best", serial.Best, par.Best)
				if !reflect.DeepEqual(serial.Trace, par.Trace) {
					t.Errorf("AEA trace differs between worker counts")
				}
			})

			t.Run("aea_seed_greedy", func(t *testing.T) {
				serialOpts := AEAOptions{Iterations: 20, PopSize: 5, Delta: 0.05, SeedGreedy: true, Parallelism: 1}
				parOpts := serialOpts
				parOpts.Parallelism = workers
				serial := AEA(inst, serialOpts, xrand.New(seed))
				par := AEA(inst, parOpts, xrand.New(seed))
				comparePlacements(t, "AEA(SeedGreedy).Best", serial.Best, par.Best)
			})

			t.Run("random_placement", func(t *testing.T) {
				serial, serr := RandomPlacement(inst, 30, xrand.New(seed), Parallelism(1))
				par, perr := RandomPlacement(inst, 30, xrand.New(seed), Parallelism(workers))
				if serr != nil || perr != nil {
					t.Fatalf("RandomPlacement: serial err %v, parallel err %v", serr, perr)
				}
				comparePlacements(t, "RandomPlacement", serial, par)
			})

			t.Run("local_search", func(t *testing.T) {
				start := xrand.New(seed).SampleDistinct(inst.NumCandidates(), inst.K())
				serial := LocalSearch(inst, start, LocalSearchOptions{Parallelism: 1})
				par := LocalSearch(inst, start, LocalSearchOptions{Parallelism: workers})
				comparePlacements(t, "LocalSearch", serial, par)
			})

			t.Run("sigma_par", func(t *testing.T) {
				r := xrand.New(seed)
				for rep := 0; rep < 10; rep++ {
					sel := r.SampleDistinct(inst.NumCandidates(), 1+r.Intn(3))
					want := inst.Sigma(sel)
					for _, w := range []int{2, 3, workers} {
						if got := inst.SigmaPar(sel, w); got != want {
							t.Fatalf("SigmaPar(%v, %d) = %d, want %d", sel, w, got, want)
						}
					}
				}
			})
		})
	}
}

// TestExhaustiveSerialParallelEquivalence runs the exact solver on small
// instances where full enumeration is cheap, across several worker counts;
// the strided enumeration must recover the exact combination the serial
// scan keeps (lowest enumeration index among the optima).
func TestExhaustiveSerialParallelEquivalence(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := xrand.New(8100 + seed)
		inst := testInstance(t, 8, 4, 2, 0.8, rng)
		serial, err := Exhaustive(inst, 100000, Parallelism(1))
		if err != nil {
			t.Fatalf("seed %d: serial exhaustive: %v", seed, err)
		}
		for _, workers := range []int{2, 3, 5, 16} {
			par, err := Exhaustive(inst, 100000, Parallelism(workers))
			if err != nil {
				t.Fatalf("seed %d: parallel exhaustive (%d workers): %v", seed, workers, err)
			}
			comparePlacements(t, fmt.Sprintf("Exhaustive seed %d workers %d", seed, workers), serial, par)
		}
	}
}

// TestGainsAddShardedMatchesSerial drives the sharded gains scan directly
// against the serial one on the same search state, across worker counts
// that exercise unbalanced and degenerate shard splits.
func TestGainsAddShardedMatchesSerial(t *testing.T) {
	rng := xrand.New(8200)
	inst := testInstance(t, 16, 7, 3, 0.8, rng)
	for rep := 0; rep < 5; rep++ {
		sel := rng.SampleDistinct(inst.NumCandidates(), rep%3)
		serialSearch := inst.NewSearch(sel)
		want := append([]int(nil), serialSearch.GainsAdd()...)
		for _, workers := range []int{2, 3, 7, 64} {
			s := inst.NewSearch(sel).(ParallelSearch)
			s.SetWorkers(workers)
			if got := s.GainsAdd(); !reflect.DeepEqual(append([]int(nil), got...), want) {
				t.Fatalf("rep %d, %d workers: sharded gains differ from serial", rep, workers)
			}
		}
	}
}

// TestSigmaDropsMatchesSigmaDrop checks the sharded per-position drop scan
// against position-by-position evaluation.
func TestSigmaDropsMatchesSigmaDrop(t *testing.T) {
	rng := xrand.New(8300)
	inst := testInstance(t, 14, 6, 4, 0.8, rng)
	sel := rng.SampleDistinct(inst.NumCandidates(), 4)
	for _, workers := range []int{1, 2, 3, 8} {
		s := inst.NewSearch(sel).(ParallelSearch)
		s.SetWorkers(workers)
		drops := append([]int(nil), s.SigmaDrops()...)
		for pos := range sel {
			if want := s.SigmaDrop(pos); drops[pos] != want {
				t.Fatalf("%d workers: SigmaDrops[%d] = %d, want %d", workers, pos, drops[pos], want)
			}
		}
	}
}

// TestParBestAddAndDrop checks the exported engine helpers against the
// serial Search methods.
func TestParBestAddAndDrop(t *testing.T) {
	rng := xrand.New(8400)
	inst := testInstance(t, 15, 6, 3, 0.8, rng)
	sel := rng.SampleDistinct(inst.NumCandidates(), 3)

	serial := inst.NewSearch(sel)
	wantCand, wantGain := serial.BestAdd()
	wantPos, wantSigma := serial.BestDrop()

	for _, workers := range []int{2, 5, 16} {
		s := inst.NewSearch(sel)
		if cand, gain := ParBestAdd(s, workers); cand != wantCand || gain != wantGain {
			t.Errorf("ParBestAdd(%d workers) = (%d, %d), want (%d, %d)", workers, cand, gain, wantCand, wantGain)
		}
		s = inst.NewSearch(sel)
		if pos, sigma := ParBestDrop(s, workers); pos != wantPos || sigma != wantSigma {
			t.Errorf("ParBestDrop(%d workers) = (%d, %d), want (%d, %d)", workers, pos, sigma, wantPos, wantSigma)
		}
	}
}

// TestParBestSwapMatchesSerialScan pins ParBestSwap against the serial
// drop×add scan it replaces (the LocalSearch inner loop).
func TestParBestSwapMatchesSerialScan(t *testing.T) {
	rng := xrand.New(8500)
	inst := testInstance(t, 15, 6, 4, 0.8, rng)
	for rep := 0; rep < 5; rep++ {
		sel := rng.SampleDistinct(inst.NumCandidates(), 4)
		cur := inst.Sigma(sel)

		wantDrop, wantAdd, wantSigma := -1, -1, cur
		for pos := 0; pos < len(sel); pos++ {
			rest := make([]int, 0, len(sel)-1)
			rest = append(rest, sel[:pos]...)
			rest = append(rest, sel[pos+1:]...)
			sub := inst.NewSearch(rest)
			cand, gain := sub.BestAdd()
			if sigma := sub.Sigma() + gain; sigma > wantSigma {
				wantDrop, wantAdd, wantSigma = pos, cand, sigma
			}
		}

		for _, workers := range []int{1, 2, 3, 8} {
			drop, add, sigma := ParBestSwap(inst, sel, cur, workers)
			if drop != wantDrop || add != wantAdd || sigma != wantSigma {
				t.Fatalf("rep %d, %d workers: ParBestSwap = (%d, %d, %d), want (%d, %d, %d)",
					rep, workers, drop, add, sigma, wantDrop, wantAdd, wantSigma)
			}
		}
	}
}

// TestParallelForCoversRange checks the engine's shard splitter: every
// index in [0, n) is visited exactly once, shards are contiguous, and
// degenerate worker counts collapse to the inline path.
func TestParallelForCoversRange(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 64} {
		for _, n := range []int{0, 1, 2, 5, 17, 100} {
			visits := make([]int, n)
			ParallelFor(workers, n, func(_, lo, hi int) {
				if lo < 0 || hi > n || lo >= hi {
					t.Errorf("workers=%d n=%d: bad shard [%d, %d)", workers, n, lo, hi)
					return
				}
				for i := lo; i < hi; i++ {
					visits[i]++ // shards are disjoint, so this is race-free
				}
			})
			for i, v := range visits {
				if v != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, v)
				}
			}
		}
	}
}

// TestTriRowBounds checks the triangular-grid row splitter: bounds are
// monotone, cover exactly the rows [0, t−1), and never produce an
// out-of-range row.
func TestTriRowBounds(t *testing.T) {
	for _, tt := range []int{2, 3, 4, 10, 50, 141} {
		for _, workers := range []int{1, 2, 3, 8, 200} {
			bounds := triRowBounds(tt, workers)
			if bounds[0] != 0 || bounds[len(bounds)-1] != tt-1 {
				t.Fatalf("t=%d workers=%d: bounds %v do not span [0, %d]", tt, workers, bounds, tt-1)
			}
			for i := 1; i < len(bounds); i++ {
				if bounds[i] < bounds[i-1] {
					t.Fatalf("t=%d workers=%d: bounds %v not monotone", tt, workers, bounds)
				}
			}
		}
	}
}

// TestResolveParallelism covers the option plumbing and the package
// default.
func TestResolveParallelism(t *testing.T) {
	if got := ResolveParallelism(5); got != 5 {
		t.Errorf("ResolveParallelism(5) = %d", got)
	}
	if got := ResolveParallelism(1); got != 1 {
		t.Errorf("ResolveParallelism(1) = %d", got)
	}
	if got := ResolveParallelism(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("ResolveParallelism(0) = %d, want GOMAXPROCS = %d", got, runtime.GOMAXPROCS(0))
	}
	SetDefaultParallelism(3)
	if got := ResolveParallelism(0); got != 3 {
		t.Errorf("after SetDefaultParallelism(3): ResolveParallelism(0) = %d", got)
	}
	if got := ResolveParallelism(2); got != 2 {
		t.Errorf("explicit value must win over default: got %d", got)
	}
	SetDefaultParallelism(0)
	if got := ResolveParallelism(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("after reset: ResolveParallelism(0) = %d", got)
	}
	if got := resolveOptions([]Option{Parallelism(7)}); got != 7 {
		t.Errorf("resolveOptions(Parallelism(7)) = %d", got)
	}
}
