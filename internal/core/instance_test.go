package core

import (
	"errors"
	"math"
	"strings"
	"testing"

	"msc/internal/failprob"
	"msc/internal/graph"
	"msc/internal/maxcover"
	"msc/internal/pairs"
	"msc/internal/shortestpath"
	"msc/internal/xrand"
)

func TestNewInstanceValidation(t *testing.T) {
	g := graph.NewBuilder(4).AddEdge(0, 1, 1).MustBuild()
	ps := pairs.MustNewSet(4, []pairs.Pair{{U: 0, W: 2}, {U: 1, W: 3}})
	thr := failprob.NewThreshold(0.2)

	if _, err := NewInstance(g, ps, thr, 0, nil); !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	// m=2 ≤ k=2 is trivial (§III-C) unless allowed.
	if _, err := NewInstance(g, ps, thr, 2, nil); !errors.Is(err, ErrTrivial) {
		t.Fatalf("err = %v, want ErrTrivial", err)
	}
	if _, err := NewInstance(g, ps, thr, 2, &Options{AllowTrivial: true}); err != nil {
		t.Fatalf("AllowTrivial failed: %v", err)
	}
	psBig := pairs.MustNewSet(9, []pairs.Pair{{U: 0, W: 8}, {U: 1, W: 7}})
	if _, err := NewInstance(g, psBig, thr, 1, nil); !errors.Is(err, ErrPairGraph) {
		t.Fatalf("err = %v, want ErrPairGraph", err)
	}
}

func TestSuppliedTableSizeChecked(t *testing.T) {
	g := graph.NewBuilder(4).AddEdge(0, 1, 1).MustBuild()
	g2 := graph.NewBuilder(5).AddEdge(0, 1, 1).MustBuild()
	ps := pairs.MustNewSet(4, []pairs.Pair{{U: 0, W: 2}, {U: 1, W: 3}})
	wrongTable := shortestpathTable(g2)
	if _, err := NewInstance(g, ps, failprob.NewThreshold(0.2), 1,
		&Options{AllowTrivial: true, Table: wrongTable}); err == nil {
		t.Fatal("expected table-size error")
	}
}

func TestSigmaEdgesMatchesSelection(t *testing.T) {
	rng := xrand.New(61)
	inst := testInstance(t, 14, 6, 3, 0.8, rng)
	sel := rng.SampleDistinct(inst.NumCandidates(), 3)
	edges := SelectionEdges(inst, sel)
	if inst.SigmaEdges(edges) != inst.Sigma(sel) {
		t.Fatal("SigmaEdges disagrees with Sigma")
	}
	back := EdgeSelection(inst, edges)
	for i := range back {
		if back[i] != sel[i] {
			t.Fatal("EdgeSelection not inverse of SelectionEdges")
		}
	}
}

func TestRestrictedUniverseExcludesPairNodes(t *testing.T) {
	rng := xrand.New(71)
	g := randomConnectedGraph(t, 16, 24, rng)
	table := shortestpathTable(g)
	ps, err := pairs.SampleViolating(table, 0.8, 5, rng)
	if err != nil {
		t.Skip("no violating pairs")
	}
	inst, err := NewInstance(g, ps, thrD(0.8), 3,
		&Options{AllowTrivial: true, Table: table, ExcludePairEndpoints: true})
	if err != nil {
		t.Fatal(err)
	}
	pairNodes := map[graph.NodeID]bool{}
	for _, v := range ps.Nodes() {
		pairNodes[v] = true
	}
	wantNodes := 16 - len(ps.Nodes())
	if got := len(inst.CandidateNodes()); got != wantNodes {
		t.Fatalf("candidate nodes = %d, want %d", got, wantNodes)
	}
	if inst.NumCandidates() != wantNodes*(wantNodes-1)/2 {
		t.Fatalf("NumCandidates = %d", inst.NumCandidates())
	}
	for i := 0; i < inst.NumCandidates(); i++ {
		e := inst.CandidateEdge(i)
		if pairNodes[e.U] || pairNodes[e.V] {
			t.Fatalf("candidate %d = %v touches a pair node", i, e)
		}
		if back := inst.CandidateIndex(e); back != i {
			t.Fatalf("roundtrip %d -> %v -> %d", i, e, back)
		}
	}
	// Asking for an excluded edge panics.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic for out-of-universe edge")
			}
		}()
		p := ps.At(0)
		inst.CandidateIndex(graph.Edge{U: p.U, V: p.W})
	}()
	// MSC-CN refuses restricted universes.
	if _, err := SolveCommonNode(inst); !errors.Is(err, ErrRestrictedUniverse) && !errors.Is(err, ErrNoCommonNode) {
		t.Fatalf("err = %v", err)
	}
	// σ and the bounds still behave: μ ≤ σ ≤ ν on random selections.
	for rep := 0; rep < 10; rep++ {
		sel := rng.SampleDistinct(inst.NumCandidates(), rng.Intn(4))
		sigma := float64(inst.Sigma(sel))
		if inst.Mu(sel) > sigma+1e-9 || inst.Nu(sel) < sigma-1e-9 {
			t.Fatal("bound violated under restricted universe")
		}
	}
	// Search machinery agrees with direct evaluation too.
	s := inst.NewSearch(nil)
	cand, gain := s.BestAdd()
	if want := inst.Sigma([]int{cand}) - inst.BaseSigma(); gain != want {
		t.Fatalf("restricted BestAdd gain %d, want %d", gain, want)
	}
}

func TestMuProblemGreedyMatchesMuEvaluator(t *testing.T) {
	rng := xrand.New(81)
	inst := testInstance(t, 16, 7, 3, 0.8, rng)
	res := maxcover.LazyGreedy(inst.MuProblem())
	// The coverage value of the greedy run must equal μ of the selection.
	if got := inst.Mu(res.Chosen); got != res.Value+float64(inst.BaseSigma()) {
		t.Fatalf("μ(%v) = %v, coverage gain %v + base %d", res.Chosen, got, res.Value, inst.BaseSigma())
	}
}

func TestNuProblemGreedyMatchesNuEvaluator(t *testing.T) {
	rng := xrand.New(91)
	inst := testInstance(t, 16, 7, 3, 0.8, rng)
	res := maxcover.LazyGreedy(inst.NuProblem())
	if got := inst.Nu(res.Chosen); got != res.Value+float64(inst.BaseSigma()) {
		t.Fatalf("ν(%v) = %v, coverage gain %v + base %d", res.Chosen, got, res.Value, inst.BaseSigma())
	}
}

func TestPlacementString(t *testing.T) {
	rng := xrand.New(95)
	inst := testInstance(t, 12, 5, 2, 0.8, rng)
	pl := newPlacement(inst, []int{0, 1})
	s := pl.String()
	if !strings.HasPrefix(s, "σ=") || !strings.Contains(s, "F={") {
		t.Fatalf("String = %q", s)
	}
}

// Helpers shared with other test files.

func shortestpathTable(g *graph.Graph) *shortestpath.Table {
	return shortestpath.NewTable(g, 0)
}

func thrD(d float64) failprob.Threshold {
	return failprob.Threshold{P: 1 - math.Exp(-d), D: d}
}
