package core

import (
	"math"
	"testing"

	"msc/internal/failprob"
	"msc/internal/graph"
	"msc/internal/pairs"
	"msc/internal/shortestpath"
	"msc/internal/xrand"
)

// testInstance builds a random instance on a connected random graph.
func testInstance(t *testing.T, n, m, k int, dt float64, rng *xrand.Rand) *Instance {
	t.Helper()
	g := randomConnectedGraph(t, n, 2*n, rng)
	table := shortestpath.NewTable(g, 0)
	ps, err := pairs.SampleViolating(table, dt, m, rng)
	if err != nil {
		t.Skipf("could not sample %d violating pairs: %v", m, err)
	}
	inst, err := NewInstance(g, ps, failprob.Threshold{P: 1 - math.Exp(-dt), D: dt}, k,
		&Options{AllowTrivial: true, Table: table})
	if err != nil {
		t.Fatalf("NewInstance: %v", err)
	}
	return inst
}

func randomConnectedGraph(t *testing.T, n, extra int, rng *xrand.Rand) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(n)
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		b.AddEdge(graph.NodeID(perm[i]), graph.NodeID(perm[rng.Intn(i)]), 0.1+rng.Float64())
	}
	for e := 0; e < extra; e++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			b.AddEdge(graph.NodeID(u), graph.NodeID(v), 0.1+rng.Float64())
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// naiveSigma recomputes σ with fresh Dijkstras on the augmented graph.
func naiveSigma(inst *Instance, sel []int) int {
	edges := SelectionEdges(inst, sel)
	count := 0
	for _, p := range inst.Pairs().Pairs() {
		dist := shortestpath.AugmentedDistances(inst.Graph(), edges, p.U)
		if dist[p.W] <= inst.Threshold().D {
			count++
		}
	}
	return count
}

func TestCandidateIndexRoundTrip(t *testing.T) {
	for _, n := range []int{2, 3, 5, 17, 64} {
		g := graph.NewBuilder(n).MustBuild()
		_ = g
		numCand := n * (n - 1) / 2
		seen := make(map[[2]graph.NodeID]bool, numCand)
		for i := 0; i < numCand; i++ {
			e := candidateEdge(n, i)
			if e.U >= e.V || e.U < 0 || int(e.V) >= n {
				t.Fatalf("n=%d: candidateEdge(%d) = %v invalid", n, i, e)
			}
			if back := candidateIndex(n, e); back != i {
				t.Fatalf("n=%d: index %d -> %v -> %d", n, i, e, back)
			}
			key := [2]graph.NodeID{e.U, e.V}
			if seen[key] {
				t.Fatalf("n=%d: duplicate edge %v", n, e)
			}
			seen[key] = true
		}
	}
}

func TestSigmaMatchesNaive(t *testing.T) {
	rng := xrand.New(101)
	for trial := 0; trial < 10; trial++ {
		inst := testInstance(t, 18, 8, 3, 0.8, rng)
		for rep := 0; rep < 10; rep++ {
			sel := rng.SampleDistinct(inst.NumCandidates(), rng.Intn(5))
			got := inst.Sigma(sel)
			want := naiveSigma(inst, sel)
			if got != want {
				t.Fatalf("trial %d: Sigma(%v) = %d, want %d", trial, sel, got, want)
			}
		}
	}
}

func TestSearchMatchesSigma(t *testing.T) {
	rng := xrand.New(303)
	inst := testInstance(t, 16, 7, 4, 0.9, rng)
	sel := rng.SampleDistinct(inst.NumCandidates(), 3)
	s := inst.NewSearch(sel)
	if s.Sigma() != inst.Sigma(sel) {
		t.Fatalf("search σ %d != instance σ %d", s.Sigma(), inst.Sigma(sel))
	}
	// GainAdd must equal the σ difference for every candidate.
	for c := 0; c < inst.NumCandidates(); c++ {
		want := inst.Sigma(append(append([]int(nil), sel...), c)) - inst.Sigma(sel)
		if got := s.GainAdd(c); got != want {
			t.Fatalf("GainAdd(%d) = %d, want %d", c, got, want)
		}
	}
	// SigmaDrop must match recomputation.
	for pos := range sel {
		rest := make([]int, 0, len(sel)-1)
		rest = append(rest, sel[:pos]...)
		rest = append(rest, sel[pos+1:]...)
		if got, want := s.SigmaDrop(pos), inst.Sigma(rest); got != want {
			t.Fatalf("SigmaDrop(%d) = %d, want %d", pos, got, want)
		}
	}
}

func TestSearchBestAddMatchesScan(t *testing.T) {
	rng := xrand.New(909)
	for trial := 0; trial < 5; trial++ {
		inst := testInstance(t, 14, 6, 3, 0.8, rng)
		sel := rng.SampleDistinct(inst.NumCandidates(), rng.Intn(3))
		s := inst.NewSearch(sel)
		bestCand, bestGain := s.BestAdd()
		// Reference: linear scan over GainAdd.
		wantCand, wantGain := 0, s.GainAdd(0)
		for c := 1; c < inst.NumCandidates(); c++ {
			if g := s.GainAdd(c); g > wantGain {
				wantCand, wantGain = c, g
			}
		}
		if bestCand != wantCand || bestGain != wantGain {
			t.Fatalf("trial %d: BestAdd = (%d, %d), want (%d, %d)",
				trial, bestCand, bestGain, wantCand, wantGain)
		}
	}
}

func TestSearchAddRemoveConsistency(t *testing.T) {
	rng := xrand.New(77)
	inst := testInstance(t, 15, 6, 4, 0.9, rng)
	s := inst.NewSearch(nil)
	var sel []int
	for i := 0; i < 4; i++ {
		c := rng.Intn(inst.NumCandidates())
		s.Add(c)
		sel = append(sel, c)
		if s.Sigma() != inst.Sigma(sel) {
			t.Fatalf("after add %d: σ %d != %d", c, s.Sigma(), inst.Sigma(sel))
		}
	}
	s.RemoveAt(1)
	sel = append(sel[:1], sel[2:]...)
	if s.Sigma() != inst.Sigma(sel) {
		t.Fatalf("after remove: σ %d != %d", s.Sigma(), inst.Sigma(sel))
	}
	if s.Len() != len(sel) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(sel))
	}
}

func TestMuLowerBoundsNuUpperBoundsSigma(t *testing.T) {
	rng := xrand.New(404)
	for trial := 0; trial < 8; trial++ {
		inst := testInstance(t, 16, 8, 3, 0.8, rng)
		for rep := 0; rep < 20; rep++ {
			sel := rng.SampleDistinct(inst.NumCandidates(), rng.Intn(5))
			sigma := float64(inst.Sigma(sel))
			mu := inst.Mu(sel)
			nu := inst.Nu(sel)
			if mu > sigma+1e-9 {
				t.Fatalf("trial %d: μ=%v > σ=%v for %v", trial, mu, sigma, sel)
			}
			if nu < sigma-1e-9 {
				t.Fatalf("trial %d: ν=%v < σ=%v for %v", trial, nu, sigma, sel)
			}
		}
	}
}

func TestMuEmptyEqualsBaseSigma(t *testing.T) {
	rng := xrand.New(2024)
	inst := testInstance(t, 14, 6, 3, 0.9, rng)
	if inst.Mu(nil) != float64(inst.BaseSigma()) {
		t.Errorf("μ(∅)=%v, want %d", inst.Mu(nil), inst.BaseSigma())
	}
	if inst.Nu(nil) != float64(inst.BaseSigma()) {
		t.Errorf("ν(∅)=%v, want %d", inst.Nu(nil), inst.BaseSigma())
	}
	if inst.Sigma(nil) != inst.BaseSigma() {
		t.Errorf("σ(∅)=%d, want %d", inst.Sigma(nil), inst.BaseSigma())
	}
}

func TestGreedySigmaNeverWorseThanSingleBest(t *testing.T) {
	rng := xrand.New(555)
	inst := testInstance(t, 18, 8, 3, 0.8, rng)
	pl := GreedySigma(inst)
	if pl.Sigma < inst.BaseSigma() {
		t.Fatalf("greedy σ %d below baseline %d", pl.Sigma, inst.BaseSigma())
	}
	// Greedy with k ≥ 1 is at least as good as the best single shortcut.
	s := inst.NewSearch(nil)
	_, bestGain := s.BestAdd()
	if pl.Sigma < inst.BaseSigma()+bestGain {
		t.Fatalf("greedy σ %d below best single gain %d", pl.Sigma, inst.BaseSigma()+bestGain)
	}
	if len(pl.Edges) > inst.K() {
		t.Fatalf("greedy used %d > k=%d edges", len(pl.Edges), inst.K())
	}
}

func TestSandwichBestOfThree(t *testing.T) {
	rng := xrand.New(666)
	inst := testInstance(t, 20, 9, 3, 0.8, rng)
	res := Sandwich(inst)
	for _, arm := range []Placement{res.FMu, res.FSigma, res.FNu} {
		if res.Best.Sigma < arm.Sigma {
			t.Fatalf("best σ %d below arm σ %d", res.Best.Sigma, arm.Sigma)
		}
		if len(arm.Edges) > inst.K() {
			t.Fatalf("arm used %d > k=%d edges", len(arm.Edges), inst.K())
		}
	}
	if res.Ratio < 0 || res.Ratio > 1+1e-9 {
		t.Fatalf("ratio %v outside [0, 1]", res.Ratio)
	}
	if math.Abs(res.ApproxFactor-res.Ratio*(1-1/math.E)) > 1e-12 {
		t.Fatalf("approx factor inconsistent")
	}
}

func TestSandwichRatioBoundHolds(t *testing.T) {
	// On instances small enough for exhaustive search, AA must achieve at
	// least Ratio·(1−1/e)·OPT (Eq. 5's practical form).
	rng := xrand.New(888)
	for trial := 0; trial < 5; trial++ {
		inst := testInstance(t, 10, 5, 2, 0.8, rng)
		res := Sandwich(inst)
		opt, err := Exhaustive(inst, 1_000_000)
		if err != nil {
			t.Fatalf("exhaustive: %v", err)
		}
		bound := res.ApproxFactor * float64(opt.Sigma)
		if float64(res.Best.Sigma) < bound-1e-9 {
			t.Fatalf("trial %d: AA σ=%d below bound %v (opt %d, ratio %v)",
				trial, res.Best.Sigma, bound, opt.Sigma, res.Ratio)
		}
		if res.Best.Sigma > opt.Sigma {
			t.Fatalf("trial %d: AA σ=%d exceeds optimum %d", trial, res.Best.Sigma, opt.Sigma)
		}
	}
}

func TestExhaustiveTooLarge(t *testing.T) {
	rng := xrand.New(31)
	inst := testInstance(t, 20, 8, 6, 0.8, rng)
	if _, err := Exhaustive(inst, 1000); err == nil {
		t.Fatal("expected ErrTooLarge")
	}
}

func TestEAImprovesOverBaseline(t *testing.T) {
	rng := xrand.New(111)
	inst := testInstance(t, 16, 8, 3, 0.9, rng)
	res := EA(inst, EAOptions{Iterations: 300, RecordTrace: true}, rng)
	if res.Best.Sigma < inst.BaseSigma() {
		t.Fatalf("EA σ %d below baseline %d", res.Best.Sigma, inst.BaseSigma())
	}
	if len(res.Best.Edges) > inst.K() {
		t.Fatalf("EA returned infeasible |F|=%d > k=%d", len(res.Best.Edges), inst.K())
	}
	if len(res.Trace) != 300 {
		t.Fatalf("trace length %d, want 300", len(res.Trace))
	}
	for i := 1; i < len(res.Trace); i++ {
		if res.Trace[i] < res.Trace[i-1] {
			t.Fatalf("trace not monotone at %d", i)
		}
	}
	if res.Trace[len(res.Trace)-1] != res.Best.Sigma {
		t.Fatalf("trace end %d != best %d", res.Trace[len(res.Trace)-1], res.Best.Sigma)
	}
}

func TestAEAFeasibleAndMonotoneTrace(t *testing.T) {
	rng := xrand.New(222)
	inst := testInstance(t, 16, 8, 3, 0.9, rng)
	res := AEA(inst, AEAOptions{Iterations: 200, PopSize: 5, Delta: 0.1, RecordTrace: true}, rng)
	if got := len(res.Best.Edges); got != inst.K() {
		t.Fatalf("AEA |F| = %d, want exactly k=%d", got, inst.K())
	}
	for i := 1; i < len(res.Trace); i++ {
		if res.Trace[i] < res.Trace[i-1] {
			t.Fatalf("trace not monotone at %d", i)
		}
	}
	if res.Best.Sigma != inst.Sigma(res.Best.Selection) {
		t.Fatalf("reported σ inconsistent")
	}
}

func TestRandomPlacementFeasible(t *testing.T) {
	rng := xrand.New(333)
	inst := testInstance(t, 16, 8, 3, 0.9, rng)
	pl, err := RandomPlacement(inst, 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.Edges) != inst.K() {
		t.Fatalf("|F| = %d, want %d", len(pl.Edges), inst.K())
	}
	seen := map[int]bool{}
	for _, c := range pl.Selection {
		if seen[c] {
			t.Fatalf("duplicate candidate %d", c)
		}
		seen[c] = true
	}
}

func TestDeterministicWithSameSeed(t *testing.T) {
	build := func() (Placement, Placement) {
		rng := xrand.New(4242)
		inst := testInstance(t, 16, 8, 3, 0.9, xrand.New(99))
		ea := EA(inst, EAOptions{Iterations: 100}, rng.Split())
		aea := AEA(inst, AEAOptions{Iterations: 100, PopSize: 4, Delta: 0.05}, rng.Split())
		return ea.Best, aea.Best
	}
	ea1, aea1 := build()
	ea2, aea2 := build()
	if ea1.String() != ea2.String() || aea1.String() != aea2.String() {
		t.Fatalf("same seed produced different results:\n%v vs %v\n%v vs %v", ea1, ea2, aea1, aea2)
	}
}
