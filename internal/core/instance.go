// Package core implements the Maintaining Social Connections (MSC) problem
// and every placement algorithm the paper proposes.
//
// MSC (paper §III-C): given an undirected graph G with edge lengths
// l = −ln(1−p_fail), a set S of m important social pairs, a distance
// threshold d_t = −ln(1−p_t), and a budget k, place at most k zero-length
// shortcut edges F ⊆ V×V maximizing σ(F) — the number of pairs of S whose
// shortest-path distance in G ∪ F is ≤ d_t. The problem is NP-hard
// (Corollary 2) and σ is not submodular (§V-A).
//
// Algorithms provided:
//
//   - GreedySigma        — greedy maximization of σ itself (the F_σ arm).
//   - GreedyMu, GreedyNu — greedy on the submodular lower/upper bounds μ, ν.
//   - Sandwich           — the approximation algorithm AA of §V-B: best of
//     the three greedy arms, with the data-dependent ratio bound of Eq. (5).
//   - SolveCommonNode    — the (1−1/e) max-coverage greedy for MSC-CN (§IV).
//   - EA                 — GSEMO-style evolutionary algorithm (Alg. 1).
//   - AEA                — adaptive evolutionary algorithm (Alg. 2).
//   - RandomPlacement    — best-of-R random baseline (§VII-C).
//   - Exhaustive         — exact optimum by enumeration (test-sized only).
//
// All algorithms are written against the Problem interface so they apply
// unchanged to dynamic networks (§VI, internal/dynamic).
package core

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"msc/internal/bitset"
	"msc/internal/failprob"
	"msc/internal/graph"
	"msc/internal/maxcover"
	"msc/internal/pairs"
	"msc/internal/shortestpath"
	"msc/internal/telemetry"
)

// Problem abstracts an MSC instance (single-topology or dynamic) for the
// placement algorithms. Candidates are the N = n(n−1)/2 unordered node
// pairs, identified by dense indices.
//
// Implementations must keep Sigma, Mu, Nu, and NewSearch safe for
// concurrent calls with distinct arguments: the parallel solvers evaluate
// disjoint selections from multiple goroutines (see parallel.go). Lazily
// built state must be guarded (Instance uses sync.Once for its bound
// coverage sets and σ query buffers).
type Problem interface {
	// N returns the number of nodes.
	N() int
	// NumCandidates returns the size of the candidate shortcut universe.
	NumCandidates() int
	// CandidateEdge maps a candidate index to its edge.
	CandidateEdge(i int) graph.Edge
	// CandidateIndex maps an edge to its candidate index.
	CandidateIndex(e graph.Edge) int
	// K returns the shortcut budget.
	K() int
	// MaxSigma returns the largest achievable σ (m, or Σ m_i for dynamic
	// instances).
	MaxSigma() int
	// Sigma evaluates σ on a selection of candidate indices.
	Sigma(sel []int) int
	// Mu evaluates the submodular lower bound μ (§V-B1).
	Mu(sel []int) float64
	// Nu evaluates the submodular upper bound ν (§V-B2).
	Nu(sel []int) float64
	// BoundsTractable reports whether the μ/ν coverage structures fit in
	// memory; when false, diagnostics must not call Mu/Nu (they would
	// allocate O(n²) candidate sets).
	BoundsTractable() bool
	// MuProblem returns μ as a max-coverage instance with budget k.
	MuProblem() maxcover.Problem
	// NuProblem returns ν as a weighted max-coverage instance with budget k.
	NuProblem() maxcover.Problem
	// NewSearch returns an incremental evaluator positioned at the given
	// selection (which it copies).
	NewSearch(sel []int) Search
}

// Search incrementally evaluates σ around a current selection; it is the
// workhorse of GreedySigma and AEA. A Search belongs to one goroutine:
// callers must never invoke its methods concurrently. Implementations may
// additionally satisfy ParallelSearch, in which case their scans shard
// across internal worker goroutines after SetWorkers — with results
// guaranteed identical to the serial scan (see parallel.go for the
// determinism contract).
type Search interface {
	// Sigma returns σ of the current selection.
	Sigma() int
	// Selection returns a copy of the current candidate indices.
	Selection() []int
	// Len returns the current selection size.
	Len() int
	// GainAdd returns σ(S ∪ {cand}) − σ(S) without mutating the state.
	GainAdd(cand int) int
	// BestAdd returns the candidate with the largest σ gain (ties toward
	// the lowest candidate index) and that gain.
	BestAdd() (cand, gain int)
	// GainsAdd returns σ gains for every candidate. The slice is scratch
	// state owned by the Search: it is valid until the next call and must
	// not be retained or modified.
	GainsAdd() []int
	// SigmaDrop returns σ(S \ {S[pos]}) without mutating the state.
	SigmaDrop(pos int) int
	// BestDrop returns the selection position whose removal leaves the
	// largest σ (ties toward the lowest position) and that σ.
	BestDrop() (pos, sigma int)
	// Add inserts candidate cand into the selection.
	Add(cand int)
	// RemoveAt removes the selection element at position pos.
	RemoveAt(pos int)
	// Contains reports whether cand is in the current selection.
	Contains(cand int) bool
}

// Instance is a single-topology MSC instance. It precomputes the all-pairs
// distance table once and derives everything else from it. Instances are
// immutable and safe for concurrent readers.
type Instance struct {
	g     *graph.Graph
	table shortestpath.DistanceSource
	ps    *pairs.Set
	thr   failprob.Threshold
	k     int

	// satisfied0 marks pairs already within d_t in the raw network.
	satisfied0 *bitset.Set

	// Candidate indexing: candidate i ↔ unordered pair of candidate
	// nodes. By default every node may host a shortcut endpoint
	// (candNodes = 0..n-1, N = n(n−1)/2); Options.ExcludePairEndpoints
	// restricts the universe to non-pair nodes (see EXPERIMENTS.md for
	// why the paper's Tables I–II imply that restriction).
	candNodes []graph.NodeID
	candPos   map[graph.NodeID]int32 // nil when candNodes is the identity
	numCand   int

	// evalMode is the resolved Options.EvalMode governing searches.
	evalMode EvalMode

	// survive is the resolved Options.Survive failure model; SurviveNone
	// keeps the paper's fault-free objective (survive.go).
	survive Survivability

	// Budgeted placement (cost.go): when budgeted is set, the knapsack
	// budget B under costModel replaces the cardinality budget k. costs is
	// the per-candidate price table (nil under CostUnit: every price is 1).
	budgeted  bool
	budget    float64
	costModel CostModel
	costOnce  sync.Once
	costs     []float64

	// Lazily-built per-node failure scenario instances (SurviveNode):
	// nodeInsts[v] is this instance on G−v, nodeVac[v] the constant weight
	// of pairs incident to v. Guarded like the other lazy structures.
	nodeOnce  sync.Once
	nodeInsts []*Instance
	nodeVac   []int

	// weights[i] is pair i's importance level (all 1 when unweighted);
	// totalWeight = Σ weights = MaxSigma.
	weights     []int32
	totalWeight int
	baseSigma   int

	// Lazily-built coverage structures for μ and ν. boundsOnce guards the
	// build: parallel scans may race to the first Mu/Nu call, and a bare
	// nil-check would let two goroutines build (and publish) the sets
	// concurrently.
	boundsOnce sync.Once
	muSets     []*bitset.Set // per candidate: pairs satisfied using only that shortcut
	nuSets     []*bitset.Set // per candidate: pair-node indices covered
	nuWeights  []float64     // per pair-node index: ½ × multiplicity
	nuNodes    []graph.NodeID
	nuIndex    map[graph.NodeID]int

	// Lazily-built flat query arrays for the sharded σ oracle, guarded for
	// the same reason as boundsOnce.
	queryOnce sync.Once
	queryU    []graph.NodeID
	queryW    []graph.NodeID
}

// Errors returned by NewInstance.
var (
	ErrBudget    = errors.New("core: shortcut budget must be at least 1")
	ErrPairGraph = errors.New("core: pair set node universe does not match graph")
	ErrTrivial   = errors.New("core: m <= k makes MSC trivial (connect each pair directly)")
)

// Options tune instance construction.
type Options struct {
	// AllowTrivial permits instances with m ≤ k, which the paper excludes
	// as trivial (§III-C). Tests and examples may enable it.
	AllowTrivial bool
	// Table supplies a precomputed distance source (e.g. a dense table
	// shared across thresholds, or a LazyTable shared across budgets);
	// when nil NewInstance builds one per DistBackend.
	Table shortestpath.DistanceSource
	// DistBackend selects the distance backend built when Table is nil:
	// dense all-pairs table, lazy Dijkstra row cache, or (the zero value)
	// automatic selection — dense below DefaultLazyThreshold nodes, lazy
	// at or above, unless SetDefaultDistBackend installed a process-wide
	// choice. Placements, σ/μ/ν values, and all solver work counters
	// except the Dijkstra and row-cache ones are identical across
	// backends.
	DistBackend DistBackend
	// Parallelism bounds the workers used to build the dense table; <= 0
	// resolves like the solvers' Parallelism option (package default,
	// else GOMAXPROCS). The table is identical for every worker count.
	Parallelism int
	// LazyMaxRows caps the lazy backend's cached non-pinned rows; 0 means
	// unbounded. Social-pair endpoint rows are always pinned and exempt.
	// The bounded backend applies the same cap to its sparse rows.
	LazyMaxRows int
	// Landmarks is the ALT landmark count the bounded backend precomputes
	// for triangle-inequality lower bounds: 0 resolves through the
	// process default (SetDefaultLandmarks) to DefaultLandmarks, negative
	// disables the layer. Ignored by the dense and lazy backends.
	Landmarks int
	// EvalMode selects how searches built from the instance maintain their
	// state across Add commits: incremental O(n) row merges with delta
	// gains rescans (the default), or the full-rebuild reference path.
	// Placements, σ values, and gains arrays are identical across modes;
	// the zero value resolves via SetDefaultEvalMode.
	EvalMode EvalMode
	// Survive selects the failure model the objective must survive:
	// SurviveNone (the paper's fault-free σ), SurviveShortcut, or
	// SurviveNode (survive.go). Under a non-none mode NewSearch returns the
	// worst-case survivable evaluator and the solvers optimize (σ⁻, σ)
	// lexicographically; the zero value resolves via
	// SetDefaultSurvivability.
	Survive Survivability
	// ExcludePairEndpoints removes the important-pair nodes from the
	// candidate shortcut universe, so shortcuts may only land on relay
	// nodes. Under the unrestricted universe greedy-σ trivially gains one
	// pair per edge by direct connection, which the published Tables I–II
	// rule out; this option reproduces their regime. Incompatible with
	// SolveCommonNode (whose shortcuts are incident to a pair node).
	ExcludePairEndpoints bool
	// Budget, when set (or when CostModel/Costs is set), switches the
	// instance to budgeted placement: the knapsack budget B replaces the
	// cardinality budget k, and solvers charge each shortcut its CostModel
	// price. B = 0 is legal and admits only the empty placement. Negative,
	// NaN, or infinite budgets are rejected with a typed *InputError. The
	// zero value with no other budget option resolves via SetDefaultBudget
	// (0 keeps cardinality placement).
	Budget float64
	// CostModel prices candidates on budgeted instances: CostUnit (1 per
	// shortcut, so B = k reproduces cardinality placement bit for bit),
	// CostLength (1 + D0(a,b)/d_t), or CostTable (explicit Costs). The
	// zero value resolves via SetDefaultCostModel.
	CostModel CostModel
	// Costs supplies the per-candidate price table for CostTable, one
	// positive entry per candidate index (+Inf marks an unaffordable
	// candidate; NaN and non-positive prices are rejected with a typed
	// *InputError). Setting Costs with CostModelAuto implies CostTable.
	Costs []float64
	// PairWeights assigns an integer importance level ≥ 1 to each pair
	// (one entry per pair, in pair-set order); σ becomes the total weight
	// of maintained pairs. Nil means every pair weighs 1 (the paper's
	// objective). An extension motivated by §VI's observation that "the
	// importance level of different social pairs may change over time":
	// the μ/ν sandwich survives weighting (weighted coverage is still
	// submodular, and a maintained pair still has both endpoints covered),
	// so every algorithm and guarantee carries over.
	PairWeights []int
}

// NewInstance validates and builds an instance.
func NewInstance(g *graph.Graph, ps *pairs.Set, thr failprob.Threshold, k int, opts *Options) (*Instance, error) {
	if k < 1 {
		return nil, ErrBudget
	}
	if ps.N() != g.N() {
		return nil, fmt.Errorf("%w: pairs over %d nodes, graph has %d", ErrPairGraph, ps.N(), g.N())
	}
	if ps.Len() <= k && (opts == nil || !opts.AllowTrivial) {
		return nil, fmt.Errorf("%w: m=%d, k=%d", ErrTrivial, ps.Len(), k)
	}
	table, err := newDistanceSource(g, ps, thr, opts)
	if err != nil {
		return nil, err
	}
	inst := &Instance{
		g:     g,
		table: table,
		ps:    ps,
		thr:   thr,
		k:     k,
	}
	var evalOpt EvalMode
	if opts != nil {
		evalOpt = opts.EvalMode
	}
	switch em := resolveEvalMode(evalOpt); em {
	case EvalIncremental, EvalRebuild:
		inst.evalMode = em
	default:
		return nil, fmt.Errorf("core: unknown eval mode %q (want auto, incremental, or rebuild)", em)
	}
	var survOpt Survivability
	if opts != nil {
		survOpt = opts.Survive
	}
	switch sv := resolveSurvivability(survOpt); sv {
	case SurviveNone, SurviveShortcut, SurviveNode:
		inst.survive = sv
	default:
		return nil, fmt.Errorf("core: unknown survivability mode %q (want auto, none, shortcut, or node)", sv)
	}
	if opts != nil && opts.ExcludePairEndpoints {
		isPairNode := make(map[graph.NodeID]bool, 2*ps.Len())
		for _, v := range ps.Nodes() {
			isPairNode[v] = true
		}
		inst.candPos = make(map[graph.NodeID]int32)
		for v := 0; v < g.N(); v++ {
			if !isPairNode[graph.NodeID(v)] {
				inst.candPos[graph.NodeID(v)] = int32(len(inst.candNodes))
				inst.candNodes = append(inst.candNodes, graph.NodeID(v))
			}
		}
		if len(inst.candNodes) < 2 {
			return nil, fmt.Errorf("core: fewer than two non-pair candidate nodes")
		}
	} else {
		inst.candNodes = make([]graph.NodeID, g.N())
		for v := range inst.candNodes {
			inst.candNodes[v] = graph.NodeID(v)
		}
	}
	inst.numCand = len(inst.candNodes) * (len(inst.candNodes) - 1) / 2
	if err := inst.initBudget(opts); err != nil {
		return nil, err
	}
	inst.weights = make([]int32, ps.Len())
	if opts != nil && opts.PairWeights != nil {
		if len(opts.PairWeights) != ps.Len() {
			return nil, fmt.Errorf("core: %d pair weights for %d pairs", len(opts.PairWeights), ps.Len())
		}
		for i, w := range opts.PairWeights {
			if w < 1 {
				return nil, fmt.Errorf("core: pair weight %d at index %d must be >= 1", w, i)
			}
			inst.weights[i] = int32(w)
		}
	} else {
		for i := range inst.weights {
			inst.weights[i] = 1
		}
	}
	for _, w := range inst.weights {
		inst.totalWeight += int(w)
	}
	inst.satisfied0 = bitset.New(ps.Len())
	for i, p := range ps.Pairs() {
		if table.Dist(p.U, p.W) <= thr.D {
			inst.satisfied0.Add(i)
			inst.baseSigma += int(inst.weights[i])
		}
	}
	return inst, nil
}

// MustNewInstance is NewInstance but panics on error.
func MustNewInstance(g *graph.Graph, ps *pairs.Set, thr failprob.Threshold, k int, opts *Options) *Instance {
	inst, err := NewInstance(g, ps, thr, k, opts)
	if err != nil {
		panic(err)
	}
	return inst
}

// Graph returns the underlying network.
func (inst *Instance) Graph() *graph.Graph { return inst.g }

// Table returns the instance's distance source: a dense all-pairs table
// or a lazy row cache, per Options.DistBackend.
func (inst *Instance) Table() shortestpath.DistanceSource { return inst.table }

// Pairs returns the important social pairs.
func (inst *Instance) Pairs() *pairs.Set { return inst.ps }

// Threshold returns the connectivity requirement.
func (inst *Instance) Threshold() failprob.Threshold { return inst.thr }

// K returns the shortcut budget.
func (inst *Instance) K() int { return inst.k }

// N returns the number of nodes.
func (inst *Instance) N() int { return inst.g.N() }

// MaxSigma returns the largest achievable σ: the total pair weight, which
// is m when unweighted.
func (inst *Instance) MaxSigma() int { return inst.totalWeight }

// BaseSigma returns σ(∅): the weight of pairs already satisfied by the
// raw network.
func (inst *Instance) BaseSigma() int { return inst.baseSigma }

// PairWeight returns pair i's importance level (1 when unweighted).
func (inst *Instance) PairWeight(i int) int { return int(inst.weights[i]) }

// NumCandidates returns the candidate-universe size: t(t−1)/2 for t
// candidate nodes (t = n unless ExcludePairEndpoints was set).
func (inst *Instance) NumCandidates() int { return inst.numCand }

// EvalMode returns the resolved evaluation mode governing searches built
// from the instance.
func (inst *Instance) EvalMode() EvalMode { return inst.evalMode }

// CandidateNodes returns the nodes allowed to host shortcut endpoints.
// Callers must not modify the slice.
func (inst *Instance) CandidateNodes() []graph.NodeID { return inst.candNodes }

// CandidateEdge maps a dense candidate index to its unordered node pair,
// using the standard row-major triangular encoding over candidate nodes.
func (inst *Instance) CandidateEdge(i int) graph.Edge {
	e := candidateEdge(len(inst.candNodes), i)
	if inst.candPos == nil {
		return e
	}
	return graph.Edge{U: inst.candNodes[e.U], V: inst.candNodes[e.V]}.Canon()
}

// CandidateIndex maps an edge to its candidate index. It panics when an
// endpoint is outside the candidate universe (e.g. a pair node under
// ExcludePairEndpoints).
func (inst *Instance) CandidateIndex(e graph.Edge) int {
	if inst.candPos == nil {
		return candidateIndex(len(inst.candNodes), e)
	}
	pu, okU := inst.candPos[e.U]
	pv, okV := inst.candPos[e.V]
	if !okU || !okV {
		panic(fmt.Sprintf("core: edge (%d,%d) outside restricted candidate universe", e.U, e.V))
	}
	return candidateIndex(len(inst.candNodes), graph.Edge{U: graph.NodeID(pu), V: graph.NodeID(pv)})
}

func candidateEdge(n, i int) graph.Edge {
	if i < 0 || i >= n*(n-1)/2 {
		panic(fmt.Sprintf("core: candidate index %d out of range for n=%d", i, n))
	}
	// Find u = largest row with rowStart(u) <= i, where
	// rowStart(u) = u*n - u*(u+1)/2 counts pairs before row u.
	// Solve quadratically, then correct for rounding.
	fn := float64(n)
	u := int(math.Floor((2*fn - 1 - math.Sqrt((2*fn-1)*(2*fn-1)-8*float64(i))) / 2))
	for rowStart(n, u+1) <= i {
		u++
	}
	for u > 0 && rowStart(n, u) > i {
		u--
	}
	v := u + 1 + (i - rowStart(n, u))
	return graph.Edge{U: graph.NodeID(u), V: graph.NodeID(v)}
}

func candidateIndex(n int, e graph.Edge) int {
	c := e.Canon()
	u, v := int(c.U), int(c.V)
	if u < 0 || v >= n || u == v {
		panic(fmt.Sprintf("core: edge (%d,%d) out of range for n=%d", e.U, e.V, n))
	}
	return rowStart(n, u) + (v - u - 1)
}

// rowStart returns the number of unordered pairs (a,b), a<b, with a < u.
func rowStart(n, u int) int { return u*n - u*(u+1)/2 }

// NumCandidatesFor returns the candidate-universe size of an n-node
// instance with the unrestricted universe: n(n−1)/2.
func NumCandidatesFor(n int) int { return n * (n - 1) / 2 }

// CandidateIndexFor maps an edge to its dense candidate index in the
// unrestricted universe of an n-node instance, without an instance in hand
// (e.g. to build Options.Costs from a graphio cost table before
// NewInstance runs). It panics on out-of-range endpoints, like
// Instance.CandidateIndex.
func CandidateIndexFor(n int, e graph.Edge) int { return candidateIndex(n, e) }

// SelectionEdges converts candidate indices to edges.
func SelectionEdges(p Problem, sel []int) []graph.Edge {
	out := make([]graph.Edge, len(sel))
	for i, c := range sel {
		out[i] = p.CandidateEdge(c)
	}
	return out
}

// EdgeSelection converts edges to candidate indices.
func EdgeSelection(p Problem, es []graph.Edge) []int {
	out := make([]int, len(es))
	for i, e := range es {
		out[i] = p.CandidateIndex(e)
	}
	return out
}

// Sigma evaluates σ(F) for the selection via the shortcut-overlay oracle:
// the total weight of pairs within d_t in G ∪ F.
func (inst *Instance) Sigma(sel []int) int {
	telemetry.Global().SigmaEvals.Add(1)
	if len(sel) == 0 {
		return inst.baseSigma
	}
	ov := shortestpath.NewOverlay(inst.table, SelectionEdges(inst, sel))
	total := 0
	for i, p := range inst.ps.Pairs() {
		if ov.Dist(p.U, p.W) <= inst.thr.D {
			total += int(inst.weights[i])
		}
	}
	return total
}

// SigmaEdges is Sigma for an explicit edge set.
func (inst *Instance) SigmaEdges(es []graph.Edge) int {
	return inst.Sigma(EdgeSelection(inst, es))
}

// SigmaPar is Sigma with the per-pair distance checks sharded across
// workers through the shortestpath.Evaluator. The overlay is built once
// and read-only afterward, and per-shard weights sum exactly, so
// SigmaPar(sel, w) == Sigma(sel) for every worker count.
func (inst *Instance) SigmaPar(sel []int, workers int) int {
	if workers <= 1 || len(sel) == 0 {
		return inst.Sigma(sel)
	}
	telemetry.Global().SigmaEvals.Add(1)
	inst.queryOnce.Do(func() {
		ps := inst.ps.Pairs()
		inst.queryU = make([]graph.NodeID, len(ps))
		inst.queryW = make([]graph.NodeID, len(ps))
		for i, p := range ps {
			inst.queryU[i] = p.U
			inst.queryW[i] = p.W
		}
	})
	ov := shortestpath.NewOverlay(inst.table, SelectionEdges(inst, sel))
	ev := shortestpath.NewEvaluator(ov, workers)
	return ev.CountWithin(inst.queryU, inst.queryW, inst.weights, inst.thr.D)
}
