package core

import (
	"context"
	"time"

	"msc/internal/graph"
	"msc/internal/shortestpath"
	"msc/internal/telemetry"
)

// instSearch is the incremental σ evaluator for a single-topology Instance.
//
// It maintains, for the current placement F, the full distance row
// d_F(e, ·) of every distinct pair endpoint e. With those rows in hand, the
// marginal effect of adding one more shortcut f=(a,b) is exact and O(1) per
// pair:
//
//	d_{F∪{f}}(u,w) = min( d_F(u,w),
//	                      d_F(u,a) + d_F(b,w),
//	                      d_F(u,b) + d_F(a,w) )
//
// (a walk through f more than once can drop the repeat uses without getting
// longer, since edge lengths are non-negative and f itself has length 0).
// This is what lets GreedySigma and AEA scan all O(n²) candidate additions
// per round with a tight two-float-compare inner loop instead of re-running
// a shortest-path computation per candidate.
//
// Concurrency: an instSearch is single-caller like every Search, but with
// SetWorkers > 1 its scans shard internally — GainsAdd splits the
// triangular candidate grid into contiguous row ranges writing disjoint
// segments of the gains array, SigmaDrops splits the per-position σ
// re-evaluations, and rebuild computes the endpoint distance rows
// concurrently. All shared inputs (the instance, the overlay, the distance
// rows during a gains scan) are read-only while workers run, so the
// results are byte-identical to the serial scan.
type instSearch struct {
	inst    *Instance
	sel     []int
	workers int             // shard count for scans; 1 = serial
	ctx     context.Context // supervision context polled mid-scan; nil = never

	endpoints []graph.NodeID // distinct pair endpoints
	rows      [][]float64    // rows[i][x] = d_F(endpoints[i], x)
	pairU     []int32        // row index of pair i's U endpoint
	pairW     []int32        // row index of pair i's W endpoint
	pairDist  []float64      // d_F(u,w) per pair
	gains     []int          // scratch for BestAdd, len NumCandidates
	unsat     []int          // scratch: unsatisfied pair indices
	drops     []int          // scratch for SigmaDrops
	sigma     int

	// Scan-timing telemetry (ScanTimer); off unless a trace sink asked for
	// it, so the default gains scan never reads the clock.
	timeScan   bool
	shardNS    []int64 // scratch: per-shard wall time of the last timed scan
	scanMinNS  int64
	scanMaxNS  int64
	scanShards int
}

var (
	_ ParallelSearch = (*instSearch)(nil)
	_ ScanTimer      = (*instSearch)(nil)
	_ ContextAware   = (*instSearch)(nil)
)

// NewSearch returns an incremental evaluator positioned at sel (copied).
func (inst *Instance) NewSearch(sel []int) Search {
	s := &instSearch{
		inst:      inst,
		sel:       append([]int(nil), sel...),
		workers:   1,
		endpoints: inst.ps.Nodes(),
	}
	rowIdx := make(map[graph.NodeID]int, len(s.endpoints))
	for i, e := range s.endpoints {
		rowIdx[e] = i
	}
	s.rows = make([][]float64, len(s.endpoints))
	for i := range s.rows {
		s.rows[i] = make([]float64, inst.g.N())
	}
	m := inst.ps.Len()
	s.pairU = make([]int32, m)
	s.pairW = make([]int32, m)
	for i, p := range inst.ps.Pairs() {
		s.pairU[i] = int32(rowIdx[p.U])
		s.pairW[i] = int32(rowIdx[p.W])
	}
	s.pairDist = make([]float64, m)
	s.rebuild()
	return s
}

// SetWorkers fixes the shard count for subsequent scans; 1 means fully
// serial, n <= 0 resolves via ResolveParallelism.
func (s *instSearch) SetWorkers(n int) { s.workers = ResolveParallelism(n) }

// SetContext implements ContextAware: subsequent scans poll ctx once per
// unsatisfied pair (gains scans) or per drop position (SigmaDrops) and bail
// out when it is done, leaving partial scratch the solver discards. Polling
// reads but never writes scan state, so a context that is never canceled
// leaves every scan result bit-identical.
func (s *instSearch) SetContext(ctx context.Context) { s.ctx = ctx }

// interrupted reports whether the supervision context wants the scan to
// stop.
func (s *instSearch) interrupted() bool {
	return s.ctx != nil && s.ctx.Err() != nil
}

// EnableScanTiming implements ScanTimer.
func (s *instSearch) EnableScanTiming(on bool) { s.timeScan = on }

// LastScanShards implements ScanTimer.
func (s *instSearch) LastScanShards() (minNS, maxNS int64, shards int) {
	return s.scanMinNS, s.scanMaxNS, s.scanShards
}

// recordScanShards reduces the per-shard wall times in s.shardNS[:shards].
func (s *instSearch) recordScanShards(shards int) {
	minNS, maxNS := s.shardNS[0], s.shardNS[0]
	for _, ns := range s.shardNS[1:shards] {
		if ns < minNS {
			minNS = ns
		}
		if ns > maxNS {
			maxNS = ns
		}
	}
	s.scanMinNS, s.scanMaxNS, s.scanShards = minNS, maxNS, shards
}

func (s *instSearch) rebuild() {
	ov := shortestpath.NewOverlay(s.inst.table, SelectionEdges(s.inst, s.sel))
	shortestpath.NewEvaluator(ov, s.workers).DistRows(s.endpoints, s.rows)
	s.sigma = 0
	for i, p := range s.inst.ps.Pairs() {
		d := s.rows[s.pairU[i]][p.W]
		s.pairDist[i] = d
		if d <= s.inst.thr.D {
			s.sigma += int(s.inst.weights[i])
		}
	}
}

func (s *instSearch) Sigma() int { return s.sigma }

func (s *instSearch) Selection() []int { return append([]int(nil), s.sel...) }

func (s *instSearch) Len() int { return len(s.sel) }

func (s *instSearch) Contains(cand int) bool {
	for _, c := range s.sel {
		if c == cand {
			return true
		}
	}
	return false
}

func (s *instSearch) GainAdd(cand int) int {
	telemetry.Global().CandidateEvals.Add(1)
	e := s.inst.CandidateEdge(cand)
	a, b := e.U, e.V
	dt := s.inst.thr.D
	gain := 0
	for i := range s.pairDist {
		if s.pairDist[i] <= dt {
			continue // already satisfied; adding edges cannot unsatisfy
		}
		ru := s.rows[s.pairU[i]]
		rw := s.rows[s.pairW[i]]
		if ru[a]+rw[b] <= dt || ru[b]+rw[a] <= dt {
			gain += int(s.inst.weights[i])
		}
	}
	return gain
}

// BestAdd scans every candidate shortcut and returns the one with the
// largest σ gain (ties toward the lowest candidate index) together with
// that gain. Candidates already in the selection naturally score 0: their
// zero-length edge is already reflected in d_F.
func (s *instSearch) BestAdd() (cand, gain int) {
	gains := s.GainsAdd()
	best, bestGain := 0, gains[0]
	for i := 1; i < len(gains); i++ {
		if gains[i] > bestGain {
			best, bestGain = i, gains[i]
		}
	}
	return best, bestGain
}

// GainsAdd computes the σ gain of every candidate addition in one fused
// scan: for each unsatisfied pair it walks the candidate grid with two
// float compares per cell. The returned slice is reused across calls.
//
// With workers > 1 the triangular candidate grid is split into contiguous
// row ranges of roughly equal cell count; each worker runs the same fused
// scan over its rows, writing the disjoint gains segment those rows map
// to. The distance rows are read-only during the scan and the per-cell
// accumulations are exact integer adds, so the gains array — and hence
// every argmax taken over it — is identical to the serial scan's.
func (s *instSearch) GainsAdd() []int {
	nodes := s.inst.candNodes
	t := len(nodes)
	if s.gains == nil {
		s.gains = make([]int, s.inst.numCand)
	} else {
		for i := range s.gains {
			s.gains[i] = 0
		}
	}
	// One atomic add for the whole scan: the count is the logical scan
	// width, identical for every worker count, and the inner loops stay
	// untouched.
	telemetry.Global().CandidateEvals.Add(int64(s.inst.numCand))
	dt := s.inst.thr.D
	if s.workers > 1 {
		s.unsat = s.unsat[:0]
		for i := range s.pairDist {
			if s.pairDist[i] > dt {
				s.unsat = append(s.unsat, i)
			}
		}
		bounds := triRowBounds(t, s.workers)
		shards := len(bounds) - 1
		if !s.timeScan {
			ParallelFor(shards, shards, func(shard, _, _ int) {
				s.gainsRows(bounds[shard], bounds[shard+1])
			})
			return s.gains
		}
		if cap(s.shardNS) < shards {
			s.shardNS = make([]int64, shards)
		}
		ParallelFor(shards, shards, func(shard, _, _ int) {
			start := time.Now()
			s.gainsRows(bounds[shard], bounds[shard+1])
			s.shardNS[shard] = time.Since(start).Nanoseconds()
		})
		s.recordScanShards(shards)
		return s.gains
	}
	var start time.Time
	if s.timeScan {
		start = time.Now()
	}
	for i := range s.pairDist {
		if s.pairDist[i] <= dt {
			continue
		}
		if s.interrupted() {
			break
		}
		w := int(s.inst.weights[i])
		ru := s.rows[s.pairU[i]]
		rw := s.rows[s.pairW[i]]
		idx := 0
		for ai := 0; ai < t; ai++ {
			a := nodes[ai]
			ca := dt - ru[a] // candidate satisfies via (u..a, b..w) iff rw[b] <= ca
			cb := dt - rw[a] // ... or via (u..b, a..w) iff ru[b] <= cb
			for bi := ai + 1; bi < t; bi++ {
				b := nodes[bi]
				if rw[b] <= ca || ru[b] <= cb {
					s.gains[idx] += w
				}
				idx++
			}
		}
	}
	if s.timeScan {
		ns := time.Since(start).Nanoseconds()
		s.scanMinNS, s.scanMaxNS, s.scanShards = ns, ns, 1
	}
	return s.gains
}

// gainsRows runs the fused gains scan restricted to candidate-grid rows
// [aiLo, aiHi), accumulating into the gains segment those rows own. The
// unsat scratch must already hold the unsatisfied pair indices.
func (s *instSearch) gainsRows(aiLo, aiHi int) {
	if aiLo >= aiHi {
		return
	}
	nodes := s.inst.candNodes
	t := len(nodes)
	dt := s.inst.thr.D
	for _, i := range s.unsat {
		if s.interrupted() {
			return
		}
		w := int(s.inst.weights[i])
		ru := s.rows[s.pairU[i]]
		rw := s.rows[s.pairW[i]]
		idx := rowStart(t, aiLo)
		for ai := aiLo; ai < aiHi; ai++ {
			a := nodes[ai]
			ca := dt - ru[a]
			cb := dt - rw[a]
			for bi := ai + 1; bi < t; bi++ {
				b := nodes[bi]
				if rw[b] <= ca || ru[b] <= cb {
					s.gains[idx] += w
				}
				idx++
			}
		}
	}
}

func (s *instSearch) SigmaDrop(pos int) int {
	rest := make([]int, 0, len(s.sel)-1)
	rest = append(rest, s.sel[:pos]...)
	rest = append(rest, s.sel[pos+1:]...)
	return s.inst.Sigma(rest)
}

// SigmaDrops returns σ(S \ {S[pos]}) for every position. Each evaluation
// builds its own overlay from the immutable instance, so with workers > 1
// the positions shard across goroutines with no shared mutable state. The
// slice is scratch reused across calls.
func (s *instSearch) SigmaDrops() []int {
	if cap(s.drops) < len(s.sel) {
		s.drops = make([]int, len(s.sel))
	}
	s.drops = s.drops[:len(s.sel)]
	ParallelFor(s.workers, len(s.sel), func(_, lo, hi int) {
		for pos := lo; pos < hi; pos++ {
			if s.interrupted() {
				return
			}
			s.drops[pos] = s.SigmaDrop(pos)
		}
	})
	return s.drops
}

// BestDrop returns the selection position whose removal leaves the largest
// σ (ties toward the lowest position) and that σ. It panics on an empty
// selection.
func (s *instSearch) BestDrop() (pos, sigma int) {
	if len(s.sel) == 0 {
		panic("core: BestDrop on empty selection")
	}
	drops := s.SigmaDrops()
	pos, sigma = 0, drops[0]
	for i := 1; i < len(drops); i++ {
		if drops[i] > sigma {
			pos, sigma = i, drops[i]
		}
	}
	return pos, sigma
}

func (s *instSearch) Add(cand int) {
	s.sel = append(s.sel, cand)
	s.rebuild()
}

func (s *instSearch) RemoveAt(pos int) {
	s.sel = append(s.sel[:pos], s.sel[pos+1:]...)
	s.rebuild()
}
