package core

import (
	"context"
	"sort"
	"time"

	"msc/internal/graph"
	"msc/internal/obs"
	"msc/internal/shortestpath"
	"msc/internal/telemetry"
)

// instSearch is the incremental σ evaluator for a single-topology Instance.
//
// It maintains, for the current placement F, the full distance row
// d_F(e, ·) of every distinct pair endpoint e. With those rows in hand, the
// marginal effect of adding one more shortcut f=(a,b) is exact and O(1) per
// pair:
//
//	d_{F∪{f}}(u,w) = min( d_F(u,w),
//	                      d_F(u,a) + d_F(b,w),
//	                      d_F(u,b) + d_F(a,w) )
//
// (a walk through f more than once can drop the repeat uses without getting
// longer, since edge lengths are non-negative and f itself has length 0).
// This is what lets GreedySigma and AEA scan all O(n²) candidate additions
// per round with a tight two-float-compare inner loop instead of re-running
// a shortest-path computation per candidate.
//
// Under EvalIncremental (the default) the same identity also maintains the
// state across commits: Add computes only the two overlay rows d_F(a,·) and
// d_F(b,·) of the new shortcut's endpoints and merges them into every
// endpoint row in O(n), instead of recomputing all rows from a fresh
// overlay. Before the merge overwrites the rows, the live gains array is
// patched in place from the same two rows, so the next BestAdd pays no
// rescan for pairs the commit did not touch (see DESIGN.md §8). RemoveAt
// always falls back to a full rebuild: a deletion can lengthen distances,
// and min-merges cannot undo a min. EvalRebuild disables all of this and
// rebuilds after every mutation — the reference path the eval-differential
// suite compares against.
//
// Concurrency: an instSearch is single-caller like every Search, but with
// SetWorkers > 1 its scans shard internally — GainsAdd splits the
// triangular candidate grid into contiguous row ranges writing disjoint
// segments of the gains array, SigmaDrops splits the per-position σ
// re-evaluations, and Add shards the row merge (and the gains patch) the
// same way. All shared inputs (the instance, the overlay, the distance
// rows during a scan) are read-only while workers run, so the results are
// byte-identical to the serial scan.
type instSearch struct {
	inst    *Instance
	sel     []int
	workers int             // shard count for scans; 1 = serial
	ctx     context.Context // supervision context polled mid-scan; nil = never

	endpoints []graph.NodeID // distinct pair endpoints
	rows      [][]float64    // rows[i][x] = d_F(endpoints[i], x)
	pairU     []int32        // row index of pair i's U endpoint
	pairW     []int32        // row index of pair i's W endpoint
	pairDist  []float64      // d_F(u,w) per pair
	gains     []int          // scratch for BestAdd, len NumCandidates
	unsat     []int          // scratch: unsatisfied pair indices
	drops     []int          // scratch for SigmaDrops
	rest      []int          // scratch for SigmaDrop (single-caller path)
	dropRest  [][]int        // per-shard scratch for SigmaDrops
	sigma     int

	// Cached triangular-grid shard bounds for the current worker count
	// (triRowBounds allocates, and the warm scan path must not).
	bounds        []int
	boundsWorkers int
	// Cached scan-shard trampoline and cold-scan body: closures allocate,
	// and the warm gains scan must not — both are built once and reused,
	// with scanBody carrying the current scan's per-call body.
	scanBody  func(aiLo, aiHi int)
	shardRun  func(shard, lo, hi int)
	gainsBody func(aiLo, aiHi int)

	// Incremental evaluation state (EvalIncremental; DESIGN.md §8).
	incremental bool // resolved Instance eval mode
	// gainsValid marks gains/inGains as exactly what a cold scan over the
	// CURRENT rows would produce. Set by a completed cold scan, kept up to
	// date by Add's delta patch, dropped by RemoveAt and interruption.
	gainsValid bool
	inGains    []bool    // per pair: gains holds its contribution (i.e. it was unsatisfied at the last sync)
	rowShort   []float64 // scratch: d_F(a,·) of the committing shortcut (a,b)... [rowA]
	rowShortB  []float64 // ... and d_F(b,·) [rowB]
	mergeSrc   []graph.NodeID
	mergeDst   [][]float64
	// Per-Add merge scratch: firstChange[r] is the first node index the
	// commit improved in row r (−1 = row untouched); changedCand[r] holds
	// the changed candidate positions whose NEW value is ≤ d_t — the only
	// positions through which a candidate cell can newly satisfy the pair
	// (both summands of a term ≤ d_t must themselves be ≤ d_t).
	firstChange []int
	changedCand [][]int32
	shardCnt    []int64 // per-shard changed-row counts of the last merge

	// Pair classification scratch for the delta gains patch.
	dropPairs  []int32 // pairs the commit newly satisfied
	fullPairs  []int32 // changed pairs past the delta cutoff: fused full rescan
	deltaPairs []int32 // changed pairs rescanned only at changed positions
	deltaOff   []int32 // deltaPos offsets, one extra leading 0
	deltaPos   []int32 // arena of per-pair merged changed-position lists

	// Pruned-scan state. pruneScan restricts each cold-scan pair to its
	// near-candidate list (the candidates within d_t of either endpoint):
	// a candidate cell (a,b) can only gain through ru[a]+rw[b] ≤ d_t or
	// ru[b]+rw[a] ≤ d_t, and with non-negative distances both summands of
	// a passing term are themselves ≤ d_t, so every gaining cell has both
	// endpoints in the list — scanning the list's triangle is exactly
	// equivalent to the full grid. On a sparse (bounded) backend the
	// lists are the d_t-balls and the saving is the whole point; the
	// candidate universe it skips feeds the CandidatesPruned counter,
	// accumulated while the lists are built (serially), so the total is
	// identical at every worker count. sparseBest additionally replaces
	// the dense gains array — numCand ints, ~40 GB at n=10⁵ — with a
	// sparse aggregation in BestAdd.
	pruneScan  bool
	sparseBest bool
	candUOff   []int   // per-unsat-pair offsets into candU (len(unsat)+1)
	candU      []int32 // arena: near-candidate positions, ascending per pair
	// Sparse BestAdd scratch: the inverse near-list index (for each
	// candidate position, which unsat pairs list it and where) and the
	// per-worker gain accumulators.
	byAOff  []int32         // per-position offsets into byAPair (t+1)
	byAPair []int32         // arena: unsat-pair ordinals listing each position
	accW    []sparseScratch // per-worker accumulator scratch, sized lazily
	// Per-pair distance-sorted balls: for unsat pair ui, segment 2·ui is
	// the u-ball (positions with ru ≤ d_t, ascending by ru) and segment
	// 2·ui+1 the w-ball (ascending by rw), so "every b with
	// rw[b] ≤ d_t − ru[a]" is a prefix instead of a filtered scan.
	prefOff  []int
	prefPos  []int32
	prefDist []float64

	// EvalStats accumulators, drained by LastEvalStats.
	evRowsMerged, evRowsUnchanged    int64
	evPairsRescanned, evPairsSkipped int64

	// Scan-timing telemetry (ScanTimer); off unless a trace sink asked for
	// it, so the default gains scan never reads the clock.
	timeScan   bool
	shardNS    []int64 // scratch: per-shard wall time of the last timed scan
	scanMinNS  int64
	scanMaxNS  int64
	scanShards int
}

var (
	_ ParallelSearch = (*instSearch)(nil)
	_ ScanTimer      = (*instSearch)(nil)
	_ ContextAware   = (*instSearch)(nil)
	_ EvalStats      = (*instSearch)(nil)
)

// NewSearch returns an evaluator positioned at sel (copied): the plain
// incremental σ search, or — when the instance carries a survivability
// mode — the worst-case survivable search, which wraps one plain search
// per failure scenario and speaks the lexicographic value L (survive.go).
func (inst *Instance) NewSearch(sel []int) Search {
	if inst.survive != SurviveNone {
		return newSurviveSearch(inst, sel)
	}
	return inst.newInstSearch(sel)
}

// newInstSearch returns the plain incremental evaluator positioned at sel
// (copied), bypassing the survivability dispatch — the survivable search
// uses it to build its per-scenario sub-searches on the same instance.
func (inst *Instance) newInstSearch(sel []int) *instSearch {
	s := inst.newSearchState(sel)
	s.rebuild()
	return s
}

// newSearchState allocates an instSearch positioned at sel with every
// scratch buffer sized, but with the distance rows still unset: callers
// either rebuild() (cold start) or copy rows from a sibling (clone).
func (inst *Instance) newSearchState(sel []int) *instSearch {
	s := &instSearch{
		inst:        inst,
		sel:         append([]int(nil), sel...),
		workers:     1,
		endpoints:   inst.ps.Nodes(),
		incremental: inst.evalMode == EvalIncremental,
	}
	_, sparse := inst.table.(shortestpath.SparseSource)
	s.pruneScan = sparse || inst.numCand >= sparseGainsThreshold
	s.sparseBest = s.pruneScan && inst.numCand >= sparseGainsThreshold
	rowIdx := make(map[graph.NodeID]int, len(s.endpoints))
	for i, e := range s.endpoints {
		rowIdx[e] = i
	}
	s.rows = make([][]float64, len(s.endpoints))
	for i := range s.rows {
		s.rows[i] = make([]float64, inst.g.N())
	}
	m := inst.ps.Len()
	s.pairU = make([]int32, m)
	s.pairW = make([]int32, m)
	for i, p := range inst.ps.Pairs() {
		s.pairU[i] = int32(rowIdx[p.U])
		s.pairW[i] = int32(rowIdx[p.W])
	}
	s.pairDist = make([]float64, m)
	if s.incremental {
		s.inGains = make([]bool, m)
		s.firstChange = make([]int, len(s.rows))
		s.changedCand = make([][]int32, len(s.rows))
		// Classification scratch sized up front so the delta patch of a
		// warm search never allocates.
		s.dropPairs = make([]int32, 0, m)
		s.fullPairs = make([]int32, 0, m)
		s.deltaPairs = make([]int32, 0, m)
		s.deltaOff = make([]int32, 0, m+1)
	}
	return s
}

// clone returns an independent search positioned at the same selection:
// the distance rows, pair distances, σ, and — when live — the gains array
// are copied, so the clone needs no shortest-path work at all. The
// survivable search uses this to snapshot the pre-commit state as the
// failure scenario of the shortcut being committed.
func (s *instSearch) clone() *instSearch {
	c := s.inst.newSearchState(s.sel)
	c.workers = s.workers
	c.ctx = s.ctx
	for i := range s.rows {
		copy(c.rows[i], s.rows[i])
	}
	copy(c.pairDist, s.pairDist)
	c.sigma = s.sigma
	if s.gainsValid {
		c.gains = make([]int, len(s.gains))
		copy(c.gains, s.gains)
		copy(c.inGains, s.inGains)
		c.gainsValid = true
	}
	return c
}

// SetWorkers fixes the shard count for subsequent scans; 1 means fully
// serial, n <= 0 resolves via ResolveParallelism.
func (s *instSearch) SetWorkers(n int) { s.workers = ResolveParallelism(n) }

// SetContext implements ContextAware: subsequent scans poll ctx once per
// unsatisfied pair (gains scans) or per drop position (SigmaDrops) and bail
// out when it is done, leaving partial scratch the solver discards. Polling
// reads but never writes scan state, so a context that is never canceled
// leaves every scan result bit-identical.
func (s *instSearch) SetContext(ctx context.Context) { s.ctx = ctx }

// interrupted reports whether the supervision context wants the scan to
// stop.
func (s *instSearch) interrupted() bool {
	return s.ctx != nil && s.ctx.Err() != nil
}

// EnableScanTiming implements ScanTimer.
func (s *instSearch) EnableScanTiming(on bool) { s.timeScan = on }

// LastScanShards implements ScanTimer. Under EvalIncremental the most
// recent timed scan may be Add's delta gains patch rather than a cold
// GainsAdd pass — both shard over the same grid row ranges.
func (s *instSearch) LastScanShards() (minNS, maxNS int64, shards int) {
	return s.scanMinNS, s.scanMaxNS, s.scanShards
}

// LastEvalStats implements EvalStats: it drains the incremental-evaluation
// work accumulated since the previous call (or since construction).
func (s *instSearch) LastEvalStats() (rowsMerged, rowsUnchanged, pairsRescanned, pairsSkipped int64) {
	rowsMerged, rowsUnchanged = s.evRowsMerged, s.evRowsUnchanged
	pairsRescanned, pairsSkipped = s.evPairsRescanned, s.evPairsSkipped
	s.evRowsMerged, s.evRowsUnchanged = 0, 0
	s.evPairsRescanned, s.evPairsSkipped = 0, 0
	return rowsMerged, rowsUnchanged, pairsRescanned, pairsSkipped
}

// recordScanShards reduces the per-shard wall times in s.shardNS[:shards].
func (s *instSearch) recordScanShards(shards int) {
	minNS, maxNS := s.shardNS[0], s.shardNS[0]
	for _, ns := range s.shardNS[1:shards] {
		if ns < minNS {
			minNS = ns
		}
		if ns > maxNS {
			maxNS = ns
		}
	}
	s.scanMinNS, s.scanMaxNS, s.scanShards = minNS, maxNS, shards
	obs.ObserveScanShards(minNS, maxNS, shards)
}

// gridBounds returns the triangular-grid shard row bounds for the current
// worker count, cached so warm scans never allocate.
func (s *instSearch) gridBounds() []int {
	if s.bounds == nil || s.boundsWorkers != s.workers {
		s.bounds = triRowBounds(len(s.inst.candNodes), s.workers)
		s.boundsWorkers = s.workers
	}
	return s.bounds
}

// scanShardsRun runs body over the shard row ranges of the triangular
// candidate grid (inline when one shard), recording per-shard wall times
// when scan timing is on. Both the cold gains scan and the delta patch go
// through here, so their gains writes shard identically. The trampoline
// handed to ParallelFor is built once and reads the current body from
// scanBody, keeping the warm scan path allocation-free.
func (s *instSearch) scanShardsRun(body func(aiLo, aiHi int)) {
	bounds := s.gridBounds()
	shards := len(bounds) - 1
	s.scanBody = body
	if s.shardRun == nil {
		s.shardRun = func(shard, _, _ int) {
			b := s.bounds
			if !s.timeScan {
				s.scanBody(b[shard], b[shard+1])
				return
			}
			start := time.Now()
			s.scanBody(b[shard], b[shard+1])
			s.shardNS[shard] = time.Since(start).Nanoseconds()
		}
	}
	if s.timeScan && cap(s.shardNS) < shards {
		s.shardNS = make([]int64, shards)
	}
	ParallelFor(shards, shards, s.shardRun)
	s.scanBody = nil
	if s.timeScan {
		s.recordScanShards(shards)
	}
}

// rebuild recomputes every endpoint row from a fresh overlay and refreshes
// the pair distances; any live gains state is dropped.
func (s *instSearch) rebuild() {
	ov := shortestpath.NewOverlay(s.inst.table, SelectionEdges(s.inst, s.sel))
	shortestpath.NewEvaluator(ov, s.workers).DistRows(s.endpoints, s.rows)
	s.recomputeSigma()
	s.gainsValid = false
}

// recomputeSigma refreshes pairDist and σ from the current rows.
func (s *instSearch) recomputeSigma() {
	s.sigma = 0
	for i, p := range s.inst.ps.Pairs() {
		d := s.rows[s.pairU[i]][p.W]
		s.pairDist[i] = d
		if d <= s.inst.thr.D {
			s.sigma += int(s.inst.weights[i])
		}
	}
}

func (s *instSearch) Sigma() int { return s.sigma }

func (s *instSearch) Selection() []int { return append([]int(nil), s.sel...) }

func (s *instSearch) Len() int { return len(s.sel) }

func (s *instSearch) Contains(cand int) bool {
	for _, c := range s.sel {
		if c == cand {
			return true
		}
	}
	return false
}

func (s *instSearch) GainAdd(cand int) int {
	telemetry.Global().CandidateEvals.Add(1)
	e := s.inst.CandidateEdge(cand)
	a, b := e.U, e.V
	dt := s.inst.thr.D
	gain := 0
	for i := range s.pairDist {
		if s.pairDist[i] <= dt {
			continue // already satisfied; adding edges cannot unsatisfy
		}
		ru := s.rows[s.pairU[i]]
		rw := s.rows[s.pairW[i]]
		if ru[a]+rw[b] <= dt || ru[b]+rw[a] <= dt {
			gain += int(s.inst.weights[i])
		}
	}
	return gain
}

// BestAdd scans every candidate shortcut and returns the one with the
// largest σ gain (ties toward the lowest candidate index) together with
// that gain. Candidates already in the selection naturally score 0: their
// zero-length edge is already reflected in d_F. On a degenerate instance
// with an empty candidate universe it returns (-1, 0).
func (s *instSearch) BestAdd() (cand, gain int) {
	if s.sparseBest {
		return s.bestAddSparse()
	}
	gains := s.GainsAdd()
	if len(gains) == 0 {
		return -1, 0
	}
	best, bestGain := 0, gains[0]
	for i := 1; i < len(gains); i++ {
		if gains[i] > bestGain {
			best, bestGain = i, gains[i]
		}
	}
	return best, bestGain
}

// sparseGainsThreshold is the candidate-universe size at and above which
// BestAdd aggregates sparse gain cells instead of materializing the dense
// gains array (numCand ints — 40 GB at n=10⁵ with the full universe). A
// package variable so tests can lower it and differential-check the two
// paths on small instances.
var sparseGainsThreshold = 1 << 26

// sparseScratch is one worker's accumulator state for the sparse
// BestAdd: gain sums per candidate position for the ai row being
// scanned, an epoch stamp marking which entries of acc are live, and the
// list of stamped positions for the argmax pass.
type sparseScratch struct {
	acc     []int
	stamp   []int32
	touched []int32
}

// bestAddSparse is BestAdd for huge candidate universes: instead of a
// dense gains array (numCand ints) it aggregates gains one grid row at a
// time. For each near-candidate position ai it visits — via the inverse
// index built from the near lists — every (unsat pair, passing cell
// (ai, bj)) contribution, summing weights into a per-position
// accumulator, then argmaxes the row and moves on; peak memory is O(t)
// per worker instead of O(t²). The passing b's for a fixed pair and a
// are enumerated as two distance-sorted prefixes (rw[b] ≤ d_t − ru[a]
// over the w-ball, ru[b] ≤ d_t − rw[a] over the u-ball, the second
// skipping cells the first already counted), so the walk touches only
// gaining cells, not the whole near-list triangle. The visited cells are
// exactly the nonzero cells of the dense scan (see the pruneScan
// invariant) and the sums are exact integer adds, so the result matches
// the dense argmax, including the (0, 0) answer of an all-zero scan.
// Workers split the ai range by equal inverse-index load; each keeps a
// local best and the combine is a total order on (gain desc, cell index
// asc), so the answer is identical at every worker count. Counter
// discipline mirrors a cold scan: CandidateEvals advances by the logical
// universe size, PairsRescanned by the unsatisfied pair count,
// CandidatesPruned by the skipped cells.
func (s *instSearch) bestAddSparse() (cand, gain int) {
	telemetry.Global().CandidateEvals.Add(int64(s.inst.numCand))
	if s.inst.numCand == 0 {
		return -1, 0
	}
	dt := s.inst.thr.D
	s.unsat = s.unsat[:0]
	for i := range s.pairDist {
		if s.pairDist[i] > dt {
			s.unsat = append(s.unsat, i)
		}
	}
	telemetry.Global().PairsRescanned.Add(int64(len(s.unsat)))
	s.evPairsRescanned += int64(len(s.unsat))
	obs.ObserveMerge(0, int64(len(s.unsat)))
	s.buildCandU()
	s.buildByA()
	s.buildPrefixes()
	nodes := s.inst.candNodes
	t := len(nodes)

	workers := s.workers
	if workers > t {
		workers = t
	}
	if workers < 1 {
		workers = 1
	}
	if len(s.accW) < workers {
		s.accW = append(s.accW, make([]sparseScratch, workers-len(s.accW))...)
	}
	bounds := s.byALoadBounds(workers)
	bestIdx := make([]int, workers)
	bestGain := make([]int, workers)
	ParallelFor(workers, workers, func(w, _, _ int) {
		sc := &s.accW[w]
		if len(sc.acc) < t {
			sc.acc = make([]int, t)
			sc.stamp = make([]int32, t)
		}
		acc, stamp := sc.acc, sc.stamp
		touched := sc.touched[:0]
		epoch := int32(0)
		best, bg := -1, 0
		for ai := bounds[w]; ai < bounds[w+1]; ai++ {
			lo, hi := s.byAOff[ai], s.byAOff[ai+1]
			if lo == hi {
				continue
			}
			if s.interrupted() {
				break
			}
			epoch++
			if epoch == 1 {
				// First use (or int32 wraparound on reuse): clear the stamps
				// so stale marks can never alias the new epoch sequence.
				for i := range stamp {
					stamp[i] = 0
				}
			}
			touched = touched[:0]
			a := nodes[ai]
			for k := lo; k < hi; k++ {
				ui := s.byAPair[k]
				i := s.unsat[ui]
				w := int(s.inst.weights[i])
				ru := s.rows[s.pairU[i]]
				rw := s.rows[s.pairW[i]]
				ca := dt - ru[a]
				cb := dt - rw[a]
				// b's satisfying ru[a] + rw[b] ≤ d_t: a prefix of the
				// w-ball in ascending-rw order.
				pos := s.prefPos[s.prefOff[2*ui+1]:s.prefOff[2*ui+2]]
				dist := s.prefDist[s.prefOff[2*ui+1]:s.prefOff[2*ui+2]]
				for j := 0; j < len(pos); j++ {
					if dist[j] > ca {
						break
					}
					bj := pos[j]
					if int(bj) <= ai {
						continue // cell owned by the lower position's row
					}
					if stamp[bj] != epoch {
						stamp[bj] = epoch
						acc[bj] = w
						touched = append(touched, bj)
					} else {
						acc[bj] += w
					}
				}
				// b's satisfying rw[a] + ru[b] ≤ d_t, skipping those the
				// first prefix already counted for this pair.
				pos = s.prefPos[s.prefOff[2*ui]:s.prefOff[2*ui+1]]
				dist = s.prefDist[s.prefOff[2*ui]:s.prefOff[2*ui+1]]
				for j := 0; j < len(pos); j++ {
					if dist[j] > cb {
						break
					}
					bj := pos[j]
					if int(bj) <= ai || rw[nodes[bj]] <= ca {
						continue
					}
					if stamp[bj] != epoch {
						stamp[bj] = epoch
						acc[bj] = w
						touched = append(touched, bj)
					} else {
						acc[bj] += w
					}
				}
			}
			base := rowStart(t, ai) - ai - 1
			for _, bj := range touched {
				g := acc[bj]
				idx := base + int(bj)
				if g > bg || (g == bg && (best < 0 || idx < best)) {
					best, bg = idx, g
				}
			}
		}
		sc.touched = touched
		bestIdx[w], bestGain[w] = best, bg
	})
	best, bg := 0, 0
	for w := 0; w < workers; w++ {
		if bestGain[w] > bg || (bestGain[w] == bg && bg > 0 && bestIdx[w] < best) {
			best, bg = bestIdx[w], bestGain[w]
		}
	}
	return best, bg
}

// buildByA inverts the near-candidate lists of buildCandU: for each
// candidate position, the unsat-pair ordinals whose near list contains
// it. Counting sort over the candU arena; byAOff is the prefix-sum
// offset table.
func (s *instSearch) buildByA() {
	t := len(s.inst.candNodes)
	if cap(s.byAOff) < t+1 {
		s.byAOff = make([]int32, t+1)
	}
	off := s.byAOff[:t+1]
	for i := range off {
		off[i] = 0
	}
	for _, p := range s.candU {
		off[p+1]++
	}
	for i := 0; i < t; i++ {
		off[i+1] += off[i]
	}
	n := len(s.candU)
	if cap(s.byAPair) < n {
		s.byAPair = make([]int32, n)
	}
	s.byAPair = s.byAPair[:n]
	fill := make([]int32, t)
	for ui := 0; ui < len(s.unsat); ui++ {
		u := s.candU[s.candUOff[ui]:s.candUOff[ui+1]]
		for _, p := range u {
			s.byAPair[off[p]+fill[p]] = int32(ui)
			fill[p]++
		}
	}
	s.byAOff = off
}

// prefixSorter orders a (position, distance) segment by ascending
// distance; the relative order of equal distances is irrelevant — a
// prefix cut at d_t − ru[a] keeps or drops them together.
type prefixSorter struct {
	pos  []int32
	dist []float64
}

func (p prefixSorter) Len() int           { return len(p.pos) }
func (p prefixSorter) Less(i, j int) bool { return p.dist[i] < p.dist[j] }
func (p prefixSorter) Swap(i, j int) {
	p.pos[i], p.pos[j] = p.pos[j], p.pos[i]
	p.dist[i], p.dist[j] = p.dist[j], p.dist[i]
}

// buildPrefixes fills the per-pair distance-sorted balls backing the
// prefix walks of bestAddSparse: for each unsat pair, the positions
// within d_t of u sorted by ru, then those within d_t of w sorted by rw.
func (s *instSearch) buildPrefixes() {
	dt := s.inst.thr.D
	nodes := s.inst.candNodes
	s.prefOff = s.prefOff[:0]
	s.prefPos = s.prefPos[:0]
	s.prefDist = s.prefDist[:0]
	for ui, i := range s.unsat {
		u := s.candU[s.candUOff[ui]:s.candUOff[ui+1]]
		for _, side := range [2]*[]float64{&s.rows[s.pairU[i]], &s.rows[s.pairW[i]]} {
			r := *side
			start := len(s.prefPos)
			s.prefOff = append(s.prefOff, start)
			for _, p := range u {
				if d := r[nodes[p]]; d <= dt {
					s.prefPos = append(s.prefPos, p)
					s.prefDist = append(s.prefDist, d)
				}
			}
			sort.Sort(prefixSorter{s.prefPos[start:], s.prefDist[start:]})
		}
	}
	s.prefOff = append(s.prefOff, len(s.prefPos))
}

// byALoadBounds splits the candidate-position range into worker shards of
// roughly equal inverse-index load (the per-position near-list entry
// counts, which is what the row scans cost).
func (s *instSearch) byALoadBounds(workers int) []int {
	t := len(s.inst.candNodes)
	total := int64(len(s.byAPair))
	bounds := make([]int, workers+1)
	bounds[workers] = t
	ai := 0
	for w := 1; w < workers; w++ {
		target := total * int64(w) / int64(workers)
		for ai < t && int64(s.byAOff[ai]) < target {
			ai++
		}
		bounds[w] = ai
	}
	return bounds
}

// buildCandU fills the per-pair near-candidate lists for the pairs in
// unsat: the candidate positions within d_t of either pair endpoint, in
// ascending position order. Runs serially; the cells it proves zero-gain
// feed CandidatesPruned here, which keeps the counter identical at every
// worker count.
func (s *instSearch) buildCandU() {
	nodes := s.inst.candNodes
	dt := s.inst.thr.D
	s.candUOff = s.candUOff[:0]
	s.candU = s.candU[:0]
	pruned := int64(0)
	for _, i := range s.unsat {
		ru := s.rows[s.pairU[i]]
		rw := s.rows[s.pairW[i]]
		s.candUOff = append(s.candUOff, len(s.candU))
		for ci, x := range nodes {
			if ru[x] <= dt || rw[x] <= dt {
				s.candU = append(s.candU, int32(ci))
			}
		}
		u := int64(len(s.candU) - s.candUOff[len(s.candUOff)-1])
		pruned += int64(s.inst.numCand) - u*(u-1)/2
	}
	s.candUOff = append(s.candUOff, len(s.candU))
	telemetry.Global().CandidatesPruned.Add(pruned)
}

// GainsAdd computes the σ gain of every candidate addition. The returned
// slice is reused across calls.
//
// Under EvalIncremental the array is usually already current: Add patches
// it in place when it commits a shortcut, so a warm call returns without
// scanning anything. A cold scan — the first call, or the first after a
// RemoveAt or an interrupted patch — runs the fused per-pair grid walk: for
// each unsatisfied pair it visits every candidate cell with two float
// compares.
//
// With workers > 1 the triangular candidate grid is split into contiguous
// row ranges of roughly equal cell count; each worker runs the same fused
// scan over its rows, writing the disjoint gains segment those rows map
// to. The distance rows are read-only during the scan and the per-cell
// accumulations are exact integer adds, so the gains array — and hence
// every argmax taken over it — is identical to the serial scan's.
func (s *instSearch) GainsAdd() []int {
	// One atomic add for the whole scan: the count is the logical scan
	// width, identical for every worker count and both eval modes, and the
	// inner loops stay untouched.
	telemetry.Global().CandidateEvals.Add(int64(s.inst.numCand))
	if s.gains == nil {
		s.gains = make([]int, s.inst.numCand)
	}
	if s.incremental && s.gainsValid {
		return s.gains
	}
	s.coldScan()
	return s.gains
}

// coldScan recomputes the gains array from scratch: zero it, collect the
// unsatisfied pairs, and run the fused grid scan over them.
func (s *instSearch) coldScan() {
	for i := range s.gains {
		s.gains[i] = 0
	}
	dt := s.inst.thr.D
	s.unsat = s.unsat[:0]
	for i := range s.pairDist {
		un := s.pairDist[i] > dt
		if un {
			s.unsat = append(s.unsat, i)
		}
		if s.incremental {
			s.inGains[i] = un
		}
	}
	telemetry.Global().PairsRescanned.Add(int64(len(s.unsat)))
	s.evPairsRescanned += int64(len(s.unsat))
	obs.ObserveMerge(0, int64(len(s.unsat)))
	if s.pruneScan {
		s.buildCandU()
		if s.gainsBody == nil {
			s.gainsBody = s.gainsPrunedRows
		}
	} else if s.gainsBody == nil {
		s.gainsBody = s.gainsRows // method value; built once, reused warm
	}
	s.scanShardsRun(s.gainsBody)
	s.gainsValid = s.incremental && !s.interrupted()
}

// gainsRows runs the fused gains scan restricted to candidate-grid rows
// [aiLo, aiHi), accumulating into the gains segment those rows own. The
// unsat scratch must already hold the unsatisfied pair indices.
func (s *instSearch) gainsRows(aiLo, aiHi int) {
	if aiLo >= aiHi {
		return
	}
	nodes := s.inst.candNodes
	t := len(nodes)
	dt := s.inst.thr.D
	for _, i := range s.unsat {
		if s.interrupted() {
			return
		}
		w := int(s.inst.weights[i])
		ru := s.rows[s.pairU[i]]
		rw := s.rows[s.pairW[i]]
		idx := rowStart(t, aiLo)
		for ai := aiLo; ai < aiHi; ai++ {
			a := nodes[ai]
			ca := dt - ru[a]
			cb := dt - rw[a]
			for bi := ai + 1; bi < t; bi++ {
				b := nodes[bi]
				if rw[b] <= ca || ru[b] <= cb {
					s.gains[idx] += w
				}
				idx++
			}
		}
	}
}

// gainsPrunedRows is gainsRows restricted to each pair's near-candidate
// list (buildCandU must have run for the current unsat set): only cells
// with both endpoints in the list can gain, so walking the list's
// triangle — clipped to grid rows [aiLo, aiHi), the same shard ownership
// as the dense scan — writes exactly the cells the dense scan would
// increment, in the same per-pair order. The gains array is bit-identical
// at every worker count and to the unpruned scan.
func (s *instSearch) gainsPrunedRows(aiLo, aiHi int) {
	if aiLo >= aiHi {
		return
	}
	nodes := s.inst.candNodes
	t := len(nodes)
	dt := s.inst.thr.D
	for ui, i := range s.unsat {
		if s.interrupted() {
			return
		}
		w := int(s.inst.weights[i])
		ru := s.rows[s.pairU[i]]
		rw := s.rows[s.pairW[i]]
		u := s.candU[s.candUOff[ui]:s.candUOff[ui+1]]
		lo := sort.Search(len(u), func(j int) bool { return int(u[j]) >= aiLo })
		for x := lo; x < len(u); x++ {
			ai := int(u[x])
			if ai >= aiHi {
				break
			}
			a := nodes[ai]
			ca := dt - ru[a]
			cb := dt - rw[a]
			base := rowStart(t, ai) - ai - 1
			for _, bj := range u[x+1:] {
				b := nodes[bj]
				if rw[b] <= ca || ru[b] <= cb {
					s.gains[base+int(bj)] += w
				}
			}
		}
	}
}

// SigmaDrop evaluates σ with the pos-th selected shortcut removed, reusing
// a scratch selection buffer (single-caller, like every Search method —
// SigmaDrops uses per-shard buffers instead).
func (s *instSearch) SigmaDrop(pos int) int {
	s.rest = append(s.rest[:0], s.sel[:pos]...)
	s.rest = append(s.rest, s.sel[pos+1:]...)
	return s.inst.Sigma(s.rest)
}

// SigmaDrops returns σ(S \ {S[pos]}) for every position. Each evaluation
// builds its own overlay from the immutable instance, so with workers > 1
// the positions shard across goroutines — each shard owns a private
// selection scratch buffer, so no state is shared. The slice is scratch
// reused across calls.
func (s *instSearch) SigmaDrops() []int {
	if cap(s.drops) < len(s.sel) {
		s.drops = make([]int, len(s.sel))
	}
	s.drops = s.drops[:len(s.sel)]
	for cap(s.dropRest) < s.workers {
		s.dropRest = append(s.dropRest[:cap(s.dropRest)], nil)
	}
	s.dropRest = s.dropRest[:s.workers]
	ParallelFor(s.workers, len(s.sel), func(shard, lo, hi int) {
		rest := s.dropRest[shard]
		for pos := lo; pos < hi; pos++ {
			if s.interrupted() {
				return
			}
			rest = append(rest[:0], s.sel[:pos]...)
			rest = append(rest, s.sel[pos+1:]...)
			s.drops[pos] = s.inst.Sigma(rest)
		}
		s.dropRest[shard] = rest
	})
	return s.drops
}

// BestDrop returns the selection position whose removal leaves the largest
// σ (ties toward the lowest position) and that σ. It panics on an empty
// selection.
func (s *instSearch) BestDrop() (pos, sigma int) {
	if len(s.sel) == 0 {
		panic("core: BestDrop on empty selection")
	}
	drops := s.SigmaDrops()
	pos, sigma = 0, drops[0]
	for i := 1; i < len(drops); i++ {
		if drops[i] > sigma {
			pos, sigma = i, drops[i]
		}
	}
	return pos, sigma
}

// Add commits candidate cand. Under EvalRebuild this recomputes every row
// from a fresh overlay; under EvalIncremental it merges the shortcut into
// the existing rows in O(n) per row and patches the live gains array.
func (s *instSearch) Add(cand int) {
	if !s.incremental {
		s.sel = append(s.sel, cand)
		s.rebuild()
		return
	}
	s.mergeAdd(cand)
}

// RemoveAt removes the selection element at position pos. Deletions always
// rebuild, in both eval modes: removing a shortcut can lengthen distances,
// and the incremental min-merge has no way to undo a min — the information
// about which pre-merge value a cell held is gone.
func (s *instSearch) RemoveAt(pos int) {
	s.sel = append(s.sel[:pos], s.sel[pos+1:]...)
	s.rebuild()
}

// mergeAdd is the incremental commit path. With f=(a,b) the new shortcut,
// it runs up to four passes:
//
//  1. Query the two overlay rows d_F(a,·), d_F(b,·) over the PRE-commit
//     selection (2 row queries — the only shortest-path work of the
//     commit, independent of the number of endpoint rows).
//  2. A read-only merge pre-pass per endpoint row finding the first
//     improved node (none ⇒ the row provably cannot change — RowsUnchanged)
//     and, when the gains array is live, the changed candidate positions
//     with new value ≤ d_t — the only positions through which any
//     candidate cell can newly satisfy a pair.
//  3. When the gains array is live: patch it in place (classifyPairs +
//     patchRows) while the rows still hold their pre-commit values —
//     new values are recomputed on the fly from the same min expression
//     the merge applies, so the patched array is bit-identical to a cold
//     scan over the merged rows.
//  4. Merge the rows in place and refresh pairDist/σ.
func (s *instSearch) mergeAdd(cand int) {
	e := s.inst.CandidateEdge(cand)
	fa, fb := int(e.U), int(e.V)
	n := s.inst.g.N()
	if s.rowShort == nil {
		s.rowShort = make([]float64, n)
		s.rowShortB = make([]float64, n)
		s.mergeSrc = make([]graph.NodeID, 2)
		s.mergeDst = make([][]float64, 2)
	}
	rowA, rowB := s.rowShort, s.rowShortB
	ov := shortestpath.NewOverlay(s.inst.table, SelectionEdges(s.inst, s.sel))
	s.mergeSrc[0], s.mergeSrc[1] = graph.NodeID(fa), graph.NodeID(fb)
	s.mergeDst[0], s.mergeDst[1] = rowA, rowB
	evWorkers := s.workers
	if evWorkers > 2 {
		evWorkers = 2
	}
	shortestpath.NewEvaluator(ov, evWorkers).DistRows(s.mergeSrc, s.mergeDst)
	s.sel = append(s.sel, cand)

	rows := len(s.rows)
	track := s.gainsValid
	dt := s.inst.thr.D
	pos := s.inst.candPos // nil when candidate positions are node ids
	shards := s.workers
	if shards > rows {
		shards = rows
	}
	if shards < 1 {
		shards = 1
	}
	if cap(s.shardCnt) < shards {
		s.shardCnt = make([]int64, shards)
	}
	cnt := s.shardCnt[:shards]
	for i := range cnt {
		cnt[i] = 0
	}
	// Pass 2: per-row merge pre-pass (read-only; rows and the two shortcut
	// rows are shared, every write is row-indexed and disjoint).
	ParallelFor(s.workers, rows, func(shard, lo, hi int) {
		changed := int64(0)
		for r := lo; r < hi; r++ {
			row := s.rows[r]
			da, db := row[fa], row[fb]
			first := -1
			for x, old := range row {
				nd := da + rowB[x]
				if d := db + rowA[x]; d < nd {
					nd = d
				}
				if nd < old {
					first = x
					break
				}
			}
			s.firstChange[r] = first
			if first < 0 {
				continue
			}
			changed++
			if !track {
				continue
			}
			cc := s.changedCand[r][:0]
			for x := first; x < len(row); x++ {
				nd := da + rowB[x]
				if d := db + rowA[x]; d < nd {
					nd = d
				}
				if nd < row[x] && nd <= dt {
					if pos == nil {
						cc = append(cc, int32(x))
					} else if p, ok := pos[graph.NodeID(x)]; ok {
						cc = append(cc, p)
					}
				}
			}
			s.changedCand[r] = cc
		}
		cnt[shard] = changed
	})
	var merged int64
	for _, c := range cnt {
		merged += c
	}
	g := telemetry.Global()
	g.RowsMerged.Add(merged)
	g.RowsUnchanged.Add(int64(rows) - merged)
	s.evRowsMerged += merged
	s.evRowsUnchanged += int64(rows) - merged
	obs.ObserveMerge(merged, 0)

	// Pass 3: patch the live gains array before the merge overwrites the
	// old row values the patch subtracts against.
	if track {
		s.classifyPairs(fa, fb, rowA, rowB)
		s.scanShardsRun(func(aiLo, aiHi int) { s.patchRows(fa, fb, rowA, rowB, aiLo, aiHi) })
		if s.interrupted() {
			s.gainsValid = false
		}
	}

	// Pass 4: merge the rows in place and refresh the pair distances.
	ParallelFor(s.workers, rows, func(_, lo, hi int) {
		for r := lo; r < hi; r++ {
			first := s.firstChange[r]
			if first < 0 {
				continue
			}
			row := s.rows[r]
			da, db := row[fa], row[fb]
			for x := first; x < len(row); x++ {
				nd := da + rowB[x]
				if d := db + rowA[x]; d < nd {
					nd = d
				}
				if nd < row[x] {
					row[x] = nd
				}
			}
		}
	})
	s.recomputeSigma()
}

// classifyPairs sorts every pair carrying a gains contribution into the
// delta-patch work lists: newly satisfied pairs (contribution must leave
// gains), untouched pairs (PairsSkipped — their contribution stays
// verbatim), and changed pairs, rescanned either only at their changed
// candidate positions or — past the cutoff where the dense fused pass is
// cheaper — over the full grid. Classification is serial, so the lists and
// the counters are identical for every worker count.
func (s *instSearch) classifyPairs(fa, fb int, rowA, rowB []float64) {
	dt := s.inst.thr.D
	t := len(s.inst.candNodes)
	s.dropPairs = s.dropPairs[:0]
	s.fullPairs = s.fullPairs[:0]
	s.deltaPairs = s.deltaPairs[:0]
	s.deltaOff = append(s.deltaOff[:0], 0)
	s.deltaPos = s.deltaPos[:0]
	skipped := int64(0)
	for i, p := range s.inst.ps.Pairs() {
		if !s.inGains[i] {
			continue // satisfied at the last sync: no contribution to maintain
		}
		// New pair distance, by the same min expression (same operand
		// values) the row merge applies — bit-identical to the merged row.
		ru := s.rows[s.pairU[i]]
		nd := s.pairDist[i]
		if d := ru[fa] + rowB[p.W]; d < nd {
			nd = d
		}
		if d := ru[fb] + rowA[p.W]; d < nd {
			nd = d
		}
		if nd <= dt {
			s.dropPairs = append(s.dropPairs, int32(i))
			s.inGains[i] = false
			continue
		}
		var cu, cw []int32
		if s.firstChange[s.pairU[i]] >= 0 {
			cu = s.changedCand[s.pairU[i]]
		}
		if s.firstChange[s.pairW[i]] >= 0 {
			cw = s.changedCand[s.pairW[i]]
		}
		if len(cu) == 0 && len(cw) == 0 {
			skipped++
			continue
		}
		// Delta cutoff: each changed position costs one grid row + one grid
		// column at roughly twice the fused scan's per-cell work, so past
		// ~t/4 positions the dense pass wins.
		if 4*(len(cu)+len(cw)) >= t {
			s.fullPairs = append(s.fullPairs, int32(i))
			continue
		}
		// Merge the two sorted unique position lists into the arena.
		a, b := 0, 0
		for a < len(cu) || b < len(cw) {
			switch {
			case b >= len(cw) || (a < len(cu) && cu[a] < cw[b]):
				s.deltaPos = append(s.deltaPos, cu[a])
				a++
			case a >= len(cu) || cw[b] < cu[a]:
				s.deltaPos = append(s.deltaPos, cw[b])
				b++
			default:
				s.deltaPos = append(s.deltaPos, cu[a])
				a++
				b++
			}
		}
		s.deltaPairs = append(s.deltaPairs, int32(i))
		s.deltaOff = append(s.deltaOff, int32(len(s.deltaPos)))
	}
	rescanned := int64(len(s.dropPairs) + len(s.fullPairs) + len(s.deltaPairs))
	g := telemetry.Global()
	g.PairsRescanned.Add(rescanned)
	g.PairsSkipped.Add(skipped)
	s.evPairsRescanned += rescanned
	s.evPairsSkipped += skipped
	obs.ObserveMerge(0, rescanned)
}

// patchRows applies the classified delta patch to the gains segment owned
// by candidate-grid rows [aiLo, aiHi). It runs BEFORE the row merge: old
// values are read straight from the rows, new values recomputed on the fly
// with the merge's own min expression, so every satisfaction test matches
// what a cold scan over the merged rows would compute, bit for bit.
func (s *instSearch) patchRows(fa, fb int, rowA, rowB []float64, aiLo, aiHi int) {
	if aiLo >= aiHi {
		return
	}
	nodes := s.inst.candNodes
	t := len(nodes)
	dt := s.inst.thr.D
	// Newly satisfied pairs: subtract the old contribution wholesale.
	for _, pi := range s.dropPairs {
		if s.interrupted() {
			return
		}
		i := int(pi)
		w := int(s.inst.weights[i])
		ru := s.rows[s.pairU[i]]
		rw := s.rows[s.pairW[i]]
		idx := rowStart(t, aiLo)
		for ai := aiLo; ai < aiHi; ai++ {
			a := nodes[ai]
			ca := dt - ru[a]
			cb := dt - rw[a]
			for bi := ai + 1; bi < t; bi++ {
				b := nodes[bi]
				if rw[b] <= ca || ru[b] <= cb {
					s.gains[idx] -= w
				}
				idx++
			}
		}
	}
	// Changed pairs past the delta cutoff: one fused old/new pass. Merged
	// rows only shrink, so a satisfied cell stays satisfied and the update
	// is +w exactly where the cell newly satisfies.
	for _, pi := range s.fullPairs {
		if s.interrupted() {
			return
		}
		i := int(pi)
		w := int(s.inst.weights[i])
		ru := s.rows[s.pairU[i]]
		rw := s.rows[s.pairW[i]]
		ruFA, ruFB := ru[fa], ru[fb]
		rwFA, rwFB := rw[fa], rw[fb]
		idx := rowStart(t, aiLo)
		for ai := aiLo; ai < aiHi; ai++ {
			a := nodes[ai]
			oa := dt - ru[a]
			ob := dt - rw[a]
			nua := ru[a]
			if d := ruFA + rowB[a]; d < nua {
				nua = d
			}
			if d := ruFB + rowA[a]; d < nua {
				nua = d
			}
			nwa := rw[a]
			if d := rwFA + rowB[a]; d < nwa {
				nwa = d
			}
			if d := rwFB + rowA[a]; d < nwa {
				nwa = d
			}
			ca := dt - nua
			cb := dt - nwa
			for bi := ai + 1; bi < t; bi++ {
				b := nodes[bi]
				if rw[b] <= oa || ru[b] <= ob {
					idx++ // already satisfied before; still satisfied
					continue
				}
				nwb := rw[b]
				if d := rwFA + rowB[b]; d < nwb {
					nwb = d
				}
				if d := rwFB + rowA[b]; d < nwb {
					nwb = d
				}
				nub := ru[b]
				if d := ruFA + rowB[b]; d < nub {
					nub = d
				}
				if d := ruFB + rowA[b]; d < nub {
					nub = d
				}
				if nwb <= ca || nub <= cb {
					s.gains[idx] += w
				}
				idx++
			}
		}
	}
	// Delta pairs: only cells with an endpoint among the pair's changed
	// candidate positions can flip — a newly satisfying term needs both of
	// its summands ≤ d_t, and the summand that changed is then a changed
	// position with new value ≤ d_t. Each position c contributes its grid
	// row (c, ·) and its grid column (·, c); column cells whose other
	// endpoint is also in C are skipped (the row pass owns them).
	for di, pi := range s.deltaPairs {
		if s.interrupted() {
			return
		}
		i := int(pi)
		C := s.deltaPos[s.deltaOff[di]:s.deltaOff[di+1]]
		w := int(s.inst.weights[i])
		ru := s.rows[s.pairU[i]]
		rw := s.rows[s.pairW[i]]
		ruFA, ruFB := ru[fa], ru[fb]
		rwFA, rwFB := rw[fa], rw[fb]
		newRu := func(x graph.NodeID) float64 {
			nd := ru[x]
			if d := ruFA + rowB[x]; d < nd {
				nd = d
			}
			if d := ruFB + rowA[x]; d < nd {
				nd = d
			}
			return nd
		}
		newRw := func(x graph.NodeID) float64 {
			nd := rw[x]
			if d := rwFA + rowB[x]; d < nd {
				nd = d
			}
			if d := rwFB + rowA[x]; d < nd {
				nd = d
			}
			return nd
		}
		for ci, c32 := range C {
			c := int(c32)
			if c >= aiLo && c < aiHi {
				// Grid row c: cells (c, bi) for bi > c.
				a := nodes[c]
				oa := dt - ru[a]
				ob := dt - rw[a]
				ca := dt - newRu(a)
				cb := dt - newRw(a)
				idx := rowStart(t, c)
				for bi := c + 1; bi < t; bi++ {
					b := nodes[bi]
					if !(rw[b] <= oa || ru[b] <= ob) && (newRw(b) <= ca || newRu(b) <= cb) {
						s.gains[idx] += w
					}
					idx++
				}
			}
			// Grid column c: cells (ai, c) for ai < c, ai ∉ C.
			hi := c
			if hi > aiHi {
				hi = aiHi
			}
			if hi <= aiLo {
				continue
			}
			b := nodes[c]
			nwb := newRw(b)
			nub := newRu(b)
			p := 0
			for ai := aiLo; ai < hi; ai++ {
				for p < ci && int(C[p]) < ai {
					p++
				}
				if p < ci && int(C[p]) == ai {
					continue
				}
				a := nodes[ai]
				if !(rw[b] <= dt-ru[a] || ru[b] <= dt-rw[a]) && (nwb <= dt-newRu(a) || nub <= dt-newRw(a)) {
					s.gains[rowStart(t, ai)+c-ai-1] += w
				}
			}
		}
	}
}
