package core

import (
	"time"

	"msc/internal/maxcover"
	"msc/internal/obs"
	"msc/internal/submodular"
	"msc/internal/telemetry"
)

// GreedySigma greedily maximizes σ directly: at each of up to k rounds it
// adds the candidate shortcut with the largest exact marginal gain. This is
// the F_σ arm of the sandwich algorithm (§V-B). σ is not submodular, so
// this greedy alone carries no approximation guarantee — that is exactly
// what the μ/ν arms repair.
//
// Rounds with zero marginal gain stop the search: under a zero gain every
// candidate is an argmax, and adding one cannot be justified by σ alone.
//
// The per-round candidate scan shards across Parallelism(n) workers (see
// parallel.go); the placement is identical for every worker count.
//
// With WithContext/WithDeadline attached, the loop is anytime: each round
// commits only after a supervision check, so cancellation returns the
// feasible prefix built so far with Placement.Stop reporting the reason.
//
// With WithSink attached, every committed round emits a RoundEvent carrying
// the chosen shortcut, its marginal gain, the σ/μ/ν values of the selection
// after the round, the scan width, and the per-shard wall-time extrema of
// the candidate scan. Tracing reads solver state but never influences it,
// so the placement is identical with and without a sink.
// On a budgeted problem (BudgetProblem with Budgeted() == true) the greedy
// switches to cost-benefit ratio form: each round adds the affordable
// candidate maximizing gain/cost (ties toward the larger gain, then the
// lowest index), and the result is the better of that prefix and the best
// affordable single candidate — the standard knapsack-greedy fallback
// (see submodular.WeightedGreedy for why the fallback is load-bearing).
// Under unit costs with B = k the budgeted run reproduces the cardinality
// run bit for bit.
func GreedySigma(p Problem, opts ...Option) Placement {
	cfg := resolveConfig(opts)
	defer cfg.release()
	if bp, ok := asBudgeted(p); ok {
		return greedySigmaBudget(bp, cfg)
	}
	s := p.NewSearch(nil)
	setSearchWorkers(s, cfg.workers)
	setSearchContext(s, cfg.ctx)
	stop := StopInfo{Reason: StopConverged}
	finish := func() Placement {
		pl := newPlacement(p, s.Selection())
		stop.Sigma = pl.Sigma
		pl.Stop = stop
		return pl
	}
	if cfg.sink == nil {
		// With the ops plane enabled, the sink-less loop still feeds the
		// metrics histograms: round wall time here, shard imbalance via the
		// timed scans. The flag is latched once — when it is off this loop is
		// bit for bit the PR 2 zero-allocation fast path (no clock reads).
		obsOn := obs.Enabled()
		if obsOn {
			enableScanTiming(s)
		}
		for s.Len() < p.K() {
			var start time.Time
			if obsOn {
				start = time.Now()
			}
			cand, gain := s.BestAdd()
			// The supervision check sits BEFORE committing the round: a
			// canceled scan's (possibly partial) argmax is discarded, and a
			// run that is never canceled commits exactly the rounds the
			// unsupervised loop would.
			if err := cfg.err(); err != nil {
				stop.Reason = stopReasonFor(err)
				return finish()
			}
			if cand < 0 || gain <= 0 {
				break
			}
			s.Add(cand)
			stop.Rounds++
			if obsOn {
				obs.ObserveRound(time.Since(start))
			}
		}
		return finish()
	}
	enableScanTiming(s)
	for round := 0; s.Len() < p.K(); round++ {
		start := time.Now()
		cand, gain := s.BestAdd()
		if err := cfg.err(); err != nil {
			stop.Reason = stopReasonFor(err)
			return finish()
		}
		if cand < 0 || gain <= 0 {
			break
		}
		s.Add(cand)
		stop.Rounds++
		sel := s.Selection()
		e := p.CandidateEdge(cand)
		minNS, maxNS, shards := lastScanShards(s)
		rowsMerged, rowsUnchanged, pairsRescanned, pairsSkipped := lastEvalStats(s)
		obs.ObserveRound(time.Since(start))
		sigma, sigmaWorst := sigmaParts(s)
		mu, nu := diagBounds(p, sel)
		cfg.sink.Emit(telemetry.RoundEvent{
			Algorithm:      "greedy_sigma",
			Round:          round,
			Shortcut:       &[2]int32{int32(e.U), int32(e.V)},
			Gain:           gain,
			Sigma:          sigma,
			SigmaWorst:     sigmaWorst,
			Selected:       len(sel),
			Candidates:     p.NumCandidates(),
			Mu:             mu,
			Nu:             nu,
			ElapsedNS:      time.Since(start).Nanoseconds(),
			ShardMinNS:     minNS,
			ShardMaxNS:     maxNS,
			Shards:         shards,
			RowsMerged:     rowsMerged,
			RowsUnchanged:  rowsUnchanged,
			PairsRescanned: pairsRescanned,
			PairsSkipped:   pairsSkipped,
		})
	}
	return finish()
}

// greedySigmaBudget is the budgeted GreedySigma loop. The per-round gains
// scan still shards across the configured workers through Search.GainsAdd,
// so placements stay identical at every worker count; with a sink attached
// it emits the same greedy_sigma RoundEvents as the cardinality loop.
func greedySigmaBudget(bp BudgetProblem, cfg solveConfig) Placement {
	s := bp.NewSearch(nil)
	setSearchWorkers(s, cfg.workers)
	setSearchContext(s, cfg.ctx)
	stop := StopInfo{Reason: StopConverged}
	obsOn := obs.Enabled()
	if obsOn || cfg.sink != nil {
		enableScanTiming(s)
	}
	budget := bp.Budget()
	rem := budget
	singleCand, singleGain := -1, 0
	for round := 0; ; round++ {
		var start time.Time
		if obsOn || cfg.sink != nil {
			start = time.Now()
		}
		gains := s.GainsAdd()
		// As in the cardinality loop, the supervision check sits BEFORE
		// committing the round: a canceled scan's partial gains are
		// discarded.
		if err := cfg.err(); err != nil {
			stop.Reason = stopReasonFor(err)
			break
		}
		bestC, bestGain := -1, 0
		bestCost := 0.0
		// Like BestAdd, the scan does not exclude already-selected
		// candidates: plain σ gives them zero gain, and survivable
		// problems legitimately re-pick duplicates (each physical link is
		// charged its cost again).
		for c, g := range gains {
			if g <= 0 {
				continue
			}
			cost := bp.Cost(c)
			if round == 0 && cost <= budget && g > singleGain {
				singleCand, singleGain = c, g
			}
			if cost > rem {
				continue
			}
			if bestC < 0 {
				bestC, bestGain, bestCost = c, g, cost
				continue
			}
			// gain/cost ratio argmax, cross-multiplied; ties toward the
			// larger gain, then the lower index (the scan order).
			l, r := float64(g)*bestCost, float64(bestGain)*cost
			if l > r || (l == r && g > bestGain) {
				bestC, bestGain, bestCost = c, g, cost
			}
		}
		if bestC < 0 {
			break
		}
		s.Add(bestC)
		rem -= bestCost
		stop.Rounds++
		if obsOn {
			obs.ObserveRound(time.Since(start))
		}
		if cfg.sink != nil {
			sel := s.Selection()
			e := bp.CandidateEdge(bestC)
			minNS, maxNS, shards := lastScanShards(s)
			rowsMerged, rowsUnchanged, pairsRescanned, pairsSkipped := lastEvalStats(s)
			sigma, sigmaWorst := sigmaParts(s)
			mu, nu := diagBounds(bp, sel)
			cfg.sink.Emit(telemetry.RoundEvent{
				Algorithm:      "greedy_sigma",
				Round:          round,
				Shortcut:       &[2]int32{int32(e.U), int32(e.V)},
				Gain:           bestGain,
				Sigma:          sigma,
				SigmaWorst:     sigmaWorst,
				Selected:       len(sel),
				Candidates:     bp.NumCandidates(),
				Mu:             mu,
				Nu:             nu,
				ElapsedNS:      time.Since(start).Nanoseconds(),
				ShardMinNS:     minNS,
				ShardMaxNS:     maxNS,
				Shards:         shards,
				RowsMerged:     rowsMerged,
				RowsUnchanged:  rowsUnchanged,
				PairsRescanned: pairsRescanned,
				PairsSkipped:   pairsSkipped,
			})
		}
	}
	sel := s.Selection()
	// Best-single-item fallback: σ is monotone, so under unit costs the
	// prefix contains the fallback singleton and always wins the tie.
	if singleCand >= 0 && stop.Reason == StopConverged {
		if single := []int{singleCand}; problemValue(bp, single) > problemValue(bp, sel) {
			sel = single
		}
	}
	pl := newPlacement(bp, sel)
	stop.Sigma = pl.Sigma
	pl.Stop = stop
	return pl
}

// GreedyMu greedily maximizes the submodular lower bound μ (§V-B1) via its
// max-coverage form, then reports the true σ of the resulting placement.
// As a monotone submodular maximization, the selection is a (1−1/e)
// approximation of the best possible μ; on budgeted problems it runs the
// weighted-greedy knapsack form instead (½(1−1/e) for μ).
func GreedyMu(p Problem) Placement {
	if bp, ok := asBudgeted(p); ok {
		mp := bp.MuProblem()
		return newPlacement(p, submodular.WeightedGreedy(len(mp.Sets), bp.Budget(), bp.Cost, maxcover.NewOracle(mp)))
	}
	res := maxcover.LazyGreedy(p.MuProblem())
	return newPlacement(p, res.Chosen)
}

// GreedyNu greedily maximizes the submodular upper bound ν (§V-B2) via its
// weighted max-coverage form, then reports the true σ of the resulting
// placement. On budgeted problems it runs the weighted-greedy knapsack
// form.
func GreedyNu(p Problem) Placement {
	if bp, ok := asBudgeted(p); ok {
		np := bp.NuProblem()
		return newPlacement(p, submodular.WeightedGreedy(len(np.Sets), bp.Budget(), bp.Cost, maxcover.NewOracle(np)))
	}
	res := maxcover.LazyGreedy(p.NuProblem())
	return newPlacement(p, res.Chosen)
}
