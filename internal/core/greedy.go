package core

import (
	"time"

	"msc/internal/maxcover"
	"msc/internal/telemetry"
)

// GreedySigma greedily maximizes σ directly: at each of up to k rounds it
// adds the candidate shortcut with the largest exact marginal gain. This is
// the F_σ arm of the sandwich algorithm (§V-B). σ is not submodular, so
// this greedy alone carries no approximation guarantee — that is exactly
// what the μ/ν arms repair.
//
// Rounds with zero marginal gain stop the search: under a zero gain every
// candidate is an argmax, and adding one cannot be justified by σ alone.
//
// The per-round candidate scan shards across Parallelism(n) workers (see
// parallel.go); the placement is identical for every worker count.
//
// With WithSink attached, every committed round emits a RoundEvent carrying
// the chosen shortcut, its marginal gain, the σ/μ/ν values of the selection
// after the round, the scan width, and the per-shard wall-time extrema of
// the candidate scan. Tracing reads solver state but never influences it,
// so the placement is identical with and without a sink.
func GreedySigma(p Problem, opts ...Option) Placement {
	cfg := resolveConfig(opts)
	s := p.NewSearch(nil)
	setSearchWorkers(s, cfg.workers)
	if cfg.sink == nil {
		for s.Len() < p.K() {
			cand, gain := s.BestAdd()
			if gain <= 0 {
				break
			}
			s.Add(cand)
		}
		return newPlacement(p, s.Selection())
	}
	enableScanTiming(s)
	for round := 0; s.Len() < p.K(); round++ {
		start := time.Now()
		cand, gain := s.BestAdd()
		if gain <= 0 {
			break
		}
		s.Add(cand)
		sel := s.Selection()
		e := p.CandidateEdge(cand)
		minNS, maxNS, shards := lastScanShards(s)
		cfg.sink.Emit(telemetry.RoundEvent{
			Algorithm:  "greedy_sigma",
			Round:      round,
			Shortcut:   &[2]int32{int32(e.U), int32(e.V)},
			Gain:       gain,
			Sigma:      s.Sigma(),
			Selected:   len(sel),
			Candidates: p.NumCandidates(),
			Mu:         p.Mu(sel),
			Nu:         p.Nu(sel),
			ElapsedNS:  time.Since(start).Nanoseconds(),
			ShardMinNS: minNS,
			ShardMaxNS: maxNS,
			Shards:     shards,
		})
	}
	return newPlacement(p, s.Selection())
}

// GreedyMu greedily maximizes the submodular lower bound μ (§V-B1) via its
// max-coverage form, then reports the true σ of the resulting placement.
// As a monotone submodular maximization, the selection is a (1−1/e)
// approximation of the best possible μ.
func GreedyMu(p Problem) Placement {
	res := maxcover.LazyGreedy(p.MuProblem())
	return newPlacement(p, res.Chosen)
}

// GreedyNu greedily maximizes the submodular upper bound ν (§V-B2) via its
// weighted max-coverage form, then reports the true σ of the resulting
// placement.
func GreedyNu(p Problem) Placement {
	res := maxcover.LazyGreedy(p.NuProblem())
	return newPlacement(p, res.Chosen)
}
