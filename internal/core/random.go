package core

import (
	"fmt"

	"msc/internal/xrand"
)

// RandomPlacement is the baseline of §VII-C: draw trials independent
// uniform placements of k distinct shortcut edges and keep the one
// maintaining the most social pairs (the paper uses trials = 500). It
// rejects trials < 1 and budgets exceeding the candidate universe with a
// typed *InputError.
//
// With Parallelism > 1 every selection is drawn serially first (the rng is
// single-goroutine), the σ evaluations shard across workers, and the best
// trial reduces serially with ties toward the lowest trial index — the
// same winner the serial first-strictly-better loop keeps. The returned
// placement is identical for every worker count.
//
// With WithContext/WithDeadline attached, cancellation returns the best
// placement among the trials evaluated so far, with Stop.Reason reporting
// why; an uncancelled run completes all trials (Stop.Reason ==
// StopEvalBudget) and is identical to an unsupervised run.
//
// On a budgeted problem each trial draws a random budget-feasible selection
// (affordableFill) instead of k distinct candidates; under unit costs with
// B = k the draws match SampleDistinct's rejection branch, so sparse
// (k·3 < N) budgeted runs reproduce cardinality runs bit for bit.
func RandomPlacement(p Problem, trials int, rng *xrand.Rand, opts ...Option) (Placement, error) {
	cfg := resolveConfig(opts)
	defer cfg.release()
	numCand := p.NumCandidates()
	if trials < 1 {
		return Placement{}, &InputError{Param: "trials", Value: trials, Reason: "must be at least 1"}
	}
	bp, budgeted := asBudgeted(p)
	draw := func() []int {
		if budgeted {
			return affordableFill(bp, rng)
		}
		return rng.SampleDistinct(numCand, p.K())
	}
	if k := p.K(); !budgeted && k > numCand {
		return Placement{}, &InputError{Param: "k", Value: k,
			Reason: fmt.Sprintf("budget exceeds the %d candidate edges", numCand)}
	}
	stop := StopInfo{Reason: StopEvalBudget}
	finish := func(sel []int) (Placement, error) {
		pl := newPlacement(p, sel)
		stop.Sigma = pl.Sigma
		pl.Stop = stop
		return pl, nil
	}
	if cfg.workers <= 1 || trials <= 1 {
		var bestSel []int
		bestSigma := -1
		for t := 0; t < trials; t++ {
			if err := cfg.err(); err != nil {
				stop.Reason = stopReasonFor(err)
				break
			}
			sel := draw()
			if sigma := p.Sigma(sel); sigma > bestSigma {
				bestSigma = sigma
				bestSel = sel
			}
			stop.Rounds++
		}
		return finish(bestSel)
	}
	sels := make([][]int, trials)
	for t := range sels {
		sels[t] = draw()
	}
	sigmas := make([]int, trials)
	shards := cfg.workers
	if shards > trials {
		shards = trials
	}
	// Per-shard completion counts report Rounds when a cancellation cuts
	// the evaluation short; unevaluated trials keep σ = 0 and so never
	// outrank an evaluated one in the reduce.
	done := make([]int, shards)
	ParallelFor(cfg.workers, trials, func(shard, lo, hi int) {
		for t := lo; t < hi; t++ {
			if cfg.err() != nil {
				return
			}
			sigmas[t] = p.Sigma(sels[t])
			done[shard]++
		}
	})
	if err := cfg.err(); err != nil {
		stop.Reason = stopReasonFor(err)
	}
	for _, d := range done {
		stop.Rounds += d
	}
	best := 0
	for t := 1; t < trials; t++ {
		if sigmas[t] > sigmas[best] {
			best = t
		}
	}
	return finish(sels[best])
}
