package core

import "msc/internal/xrand"

// RandomPlacement is the baseline of §VII-C: draw trials independent
// uniform placements of k distinct shortcut edges and keep the one
// maintaining the most social pairs (the paper uses trials = 500).
func RandomPlacement(p Problem, trials int, rng *xrand.Rand) Placement {
	numCand := p.NumCandidates()
	k := p.K()
	if k > numCand {
		k = numCand
	}
	var bestSel []int
	bestSigma := -1
	for t := 0; t < trials; t++ {
		sel := rng.SampleDistinct(numCand, k)
		if sigma := p.Sigma(sel); sigma > bestSigma {
			bestSigma = sigma
			bestSel = sel
		}
	}
	return newPlacement(p, bestSel)
}
