package core

import "msc/internal/xrand"

// RandomPlacement is the baseline of §VII-C: draw trials independent
// uniform placements of k distinct shortcut edges and keep the one
// maintaining the most social pairs (the paper uses trials = 500).
//
// With Parallelism > 1 every selection is drawn serially first (the rng is
// single-goroutine), the σ evaluations shard across workers, and the best
// trial reduces serially with ties toward the lowest trial index — the
// same winner the serial first-strictly-better loop keeps. The returned
// placement is identical for every worker count.
func RandomPlacement(p Problem, trials int, rng *xrand.Rand, opts ...Option) Placement {
	workers := resolveOptions(opts)
	numCand := p.NumCandidates()
	k := p.K()
	if k > numCand {
		k = numCand
	}
	if workers <= 1 || trials <= 1 {
		var bestSel []int
		bestSigma := -1
		for t := 0; t < trials; t++ {
			sel := rng.SampleDistinct(numCand, k)
			if sigma := p.Sigma(sel); sigma > bestSigma {
				bestSigma = sigma
				bestSel = sel
			}
		}
		return newPlacement(p, bestSel)
	}
	sels := make([][]int, trials)
	for t := range sels {
		sels[t] = rng.SampleDistinct(numCand, k)
	}
	sigmas := make([]int, trials)
	ParallelFor(workers, trials, func(_, lo, hi int) {
		for t := lo; t < hi; t++ {
			sigmas[t] = p.Sigma(sels[t])
		}
	})
	best := 0
	for t := 1; t < trials; t++ {
		if sigmas[t] > sigmas[best] {
			best = t
		}
	}
	return newPlacement(p, sels[best])
}
