package core

import (
	"testing"

	"msc/internal/xrand"
)

// End-to-end evidence for the incremental evaluation engine: a full greedy
// run (k Add commits plus k+1 candidate scans) at the paper's mid scale,
// once per eval mode on identical inputs. Run with -benchmem; the
// incremental mode must beat rebuild on both wall time and B/op while
// producing the byte-identical placement (the eval-differential suite
// asserts the identity; benchGreedyEval re-checks σ here as a tripwire).
//
//	go test ./internal/core/ -run '^$' -bench BenchmarkGreedySigmaEval -benchmem
func benchGreedyEval(b *testing.B, mode EvalMode) {
	const (
		n  = 1000
		m  = 50
		k  = 10
		dt = 0.8
	)
	rng := xrand.New(308)
	inst0 := benchInstance(b, n, m, k, dt, rng)
	inst, err := NewInstance(inst0.Graph(), inst0.Pairs(), inst0.Threshold(), inst0.K(),
		&Options{AllowTrivial: true, Table: inst0.Table(), EvalMode: mode})
	if err != nil {
		b.Fatalf("NewInstance: %v", err)
	}
	var sigma int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pl := GreedySigma(inst, Parallelism(1))
		if i == 0 {
			sigma = pl.Sigma
		} else if pl.Sigma != sigma {
			b.Fatalf("σ drifted across runs: %d then %d", sigma, pl.Sigma)
		}
	}
	b.StopTimer()
	if sigma <= inst.BaseSigma() {
		b.Logf("warning: greedy gained nothing (σ=%d, base=%d)", sigma, inst.BaseSigma())
	}
}

func BenchmarkGreedySigmaEvalIncremental(b *testing.B) { benchGreedyEval(b, EvalIncremental) }
func BenchmarkGreedySigmaEvalRebuild(b *testing.B)     { benchGreedyEval(b, EvalRebuild) }

// benchAddScan times one greedy round's state work — commit a shortcut,
// then produce the next round's gains array. That pairing is the unit the
// incremental engine optimizes: its Add patches the live gains in place
// (two overlay row queries + O(n) row merges + delta rescan of the touched
// pairs) so the following GainsAdd is a pure return, while the rebuild
// path's cheap Add defers everything to a full cold scan. Timing Add alone
// would credit the rebuild path for work it merely postponed.
func benchAddScan(b *testing.B, mode EvalMode) {
	rng := xrand.New(309)
	inst0 := benchInstance(b, 600, 30, 8, 0.8, rng)
	inst, err := NewInstance(inst0.Graph(), inst0.Pairs(), inst0.Threshold(), inst0.K(),
		&Options{AllowTrivial: true, Table: inst0.Table(), EvalMode: mode})
	if err != nil {
		b.Fatalf("NewInstance: %v", err)
	}
	s := inst.NewSearch(nil)
	setSearchWorkers(s, 1)
	cand, _ := s.BestAdd()
	if cand < 0 {
		b.Skip("no candidate to add")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(cand)
		s.GainsAdd()
		b.StopTimer()
		s.RemoveAt(s.Len() - 1) // rebuilds; not timed
		s.GainsAdd()            // re-warm so every Add patches live gains
		b.StartTimer()
	}
}

func BenchmarkAddScanEvalIncremental(b *testing.B) { benchAddScan(b, EvalIncremental) }
func BenchmarkAddScanEvalRebuild(b *testing.B)     { benchAddScan(b, EvalRebuild) }
