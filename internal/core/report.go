package core

import (
	"fmt"
	"sort"
	"strings"

	"msc/internal/failprob"
	"msc/internal/pairs"
	"msc/internal/shortestpath"
)

// PairStatus describes one important social pair under a placement: the
// operator-facing diagnostic behind "which connections did my budget buy".
type PairStatus struct {
	Pair pairs.Pair
	// Before/After are the best-path failure probabilities without and
	// with the placement (1 means unreachable).
	Before, After float64
	// Maintained reports whether After meets the threshold.
	Maintained bool
	// MaintainedBefore reports whether the raw network already met it.
	MaintainedBefore bool
	// UsesShortcut reports whether the best path actually improved, i.e.
	// the placement (not the raw network) is responsible for After.
	UsesShortcut bool
}

// Report evaluates a placement pair by pair. Results are ordered as in the
// instance's pair set.
func (inst *Instance) Report(sel []int) []PairStatus {
	ov := shortestpath.NewOverlay(inst.table, SelectionEdges(inst, sel))
	out := make([]PairStatus, inst.ps.Len())
	for i, p := range inst.ps.Pairs() {
		before := inst.table.Dist(p.U, p.W)
		after := ov.Dist(p.U, p.W)
		st := PairStatus{
			Pair:             p,
			Before:           failprob.ProbFromLength(before),
			After:            failprob.ProbFromLength(after),
			Maintained:       after <= inst.thr.D,
			MaintainedBefore: before <= inst.thr.D,
			UsesShortcut:     after < before,
		}
		out[i] = st
	}
	return out
}

// Summary condenses a Report for printing: counts plus the worst remaining
// pair.
type Summary struct {
	Total            int
	Maintained       int
	NewlyMaintained  int
	ImprovedButShort int // improved by a shortcut yet still over threshold
	WorstAfter       float64
}

// Summarize aggregates pair statuses.
func Summarize(statuses []PairStatus) Summary {
	s := Summary{Total: len(statuses)}
	for _, st := range statuses {
		if st.Maintained {
			s.Maintained++
			if !st.MaintainedBefore {
				s.NewlyMaintained++
			}
		} else if st.UsesShortcut {
			s.ImprovedButShort++
		}
		if st.After > s.WorstAfter {
			s.WorstAfter = st.After
		}
	}
	return s
}

// FormatReport renders pair statuses as an aligned table, worst pairs
// first, for CLI output.
func FormatReport(statuses []PairStatus) string {
	sorted := append([]PairStatus(nil), statuses...)
	sort.SliceStable(sorted, func(i, j int) bool {
		return sorted[i].After > sorted[j].After
	})
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %-10s %-10s %-11s %s\n", "pair", "p_before", "p_after", "maintained", "via")
	for _, st := range sorted {
		via := "-"
		if st.UsesShortcut {
			via = "shortcut"
		} else if st.MaintainedBefore {
			via = "base path"
		}
		fmt.Fprintf(&sb, "%-12s %-10.4f %-10.4f %-11v %s\n",
			st.Pair.String(), st.Before, st.After, st.Maintained, via)
	}
	return sb.String()
}

// GreedySigmaCurve returns the greedy budget curve: curve[j] is σ after
// the first j greedy shortcuts (curve[0] is the baseline). Practitioners
// use it to answer "how much budget do I actually need" — the marginal
// value of every additional reliable link, in one greedy run.
func GreedySigmaCurve(p Problem, opts ...Option) []int {
	s := p.NewSearch(nil)
	setSearchWorkers(s, resolveOptions(opts))
	curve := []int{s.Sigma()}
	for s.Len() < p.K() {
		cand, gain := s.BestAdd()
		if cand < 0 || gain <= 0 {
			break
		}
		s.Add(cand)
		curve = append(curve, s.Sigma())
	}
	return curve
}
