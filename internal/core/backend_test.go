package core

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"msc/internal/failprob"
	"msc/internal/graph"
	"msc/internal/pairs"
	"msc/internal/shortestpath"
	"msc/internal/telemetry"
	"msc/internal/xrand"
)

// This file is the backend-differential suite: for every placement
// algorithm, an instance built on the dense table and one built on the lazy
// row cache must produce byte-identical placements, identical σ/μ/ν values,
// and identical work counters (modulo the Dijkstra/row-cache counters the
// backends are allowed to differ in — CounterSnapshot.BackendInvariant).
// Run under -race it also certifies the lazy cache against the solvers'
// concurrent row access.

// backendPair builds a dense-backed and a lazy-backed instance over the
// same graph, pair set, threshold, and budget. lazyMaxRows caps the lazy
// row cache (0 = unbounded) — the cap may only change cache counters,
// never a result.
func backendPair(t *testing.T, n, m, k int, dt float64, rng *xrand.Rand, lazyMaxRows int) (dense, lazy *Instance) {
	t.Helper()
	g := randomConnectedGraph(t, n, 2*n, rng)
	sampler := shortestpath.NewTable(g, 0)
	ps, err := pairs.SampleViolating(sampler, dt, m, rng)
	if err != nil {
		t.Skipf("could not sample %d violating pairs: %v", m, err)
	}
	thr := failprob.Threshold{P: 1 - math.Exp(-dt), D: dt}
	dense, err = NewInstance(g, ps, thr, k, &Options{AllowTrivial: true, DistBackend: BackendDense})
	if err != nil {
		t.Fatalf("NewInstance(dense): %v", err)
	}
	lazy, err = NewInstance(g, ps, thr, k, &Options{AllowTrivial: true, DistBackend: BackendLazy, LazyMaxRows: lazyMaxRows})
	if err != nil {
		t.Fatalf("NewInstance(lazy): %v", err)
	}
	return dense, lazy
}

// runCounted runs fn and returns the global-counter delta it caused, with
// the backend-variant counters zeroed for cross-backend comparison.
func runCounted(fn func()) telemetry.CounterSnapshot {
	before := telemetry.Global().Snapshot()
	fn()
	return telemetry.Global().Snapshot().Sub(before).BackendInvariant()
}

// TestBackendDifferentialSolvers runs every solver on dense and lazy
// instances across ≥24 seeds, serial and parallel, and requires identical
// placements and identical backend-invariant counters.
func TestBackendDifferentialSolvers(t *testing.T) {
	const seeds = 24
	for seed := int64(0); seed < seeds; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := xrand.New(9100 + seed)
			n := 13 + int(seed%5)
			// A third of the seeds get a tightly capped lazy cache, so the
			// differential also covers the eviction path.
			maxRows := 0
			if seed%3 == 0 {
				maxRows = 3
			}
			dense, lazy := backendPair(t, n, 6, 3, 0.8, rng, maxRows)

			for _, workers := range []int{1, 8} {
				workers := workers
				t.Run(fmt.Sprintf("par%d", workers), func(t *testing.T) {
					t.Run("greedy_sigma", func(t *testing.T) {
						var dpl, lpl Placement
						dc := runCounted(func() { dpl = GreedySigma(dense, Parallelism(workers)) })
						lc := runCounted(func() { lpl = GreedySigma(lazy, Parallelism(workers)) })
						comparePlacements(t, "GreedySigma", dpl, lpl)
						if dc != lc {
							t.Errorf("GreedySigma counters differ beyond backend-variant set:\ndense %+v\nlazy  %+v", dc, lc)
						}
					})

					t.Run("sandwich", func(t *testing.T) {
						var dres, lres SandwichResult
						dc := runCounted(func() { dres = Sandwich(dense, Parallelism(workers)) })
						lc := runCounted(func() { lres = Sandwich(lazy, Parallelism(workers)) })
						comparePlacements(t, "Sandwich.Best", dres.Best, lres.Best)
						comparePlacements(t, "Sandwich.FMu", dres.FMu, lres.FMu)
						comparePlacements(t, "Sandwich.FSigma", dres.FSigma, lres.FSigma)
						comparePlacements(t, "Sandwich.FNu", dres.FNu, lres.FNu)
						if dres.Ratio != lres.Ratio || dres.ApproxFactor != lres.ApproxFactor {
							t.Errorf("sandwich guarantee differs: dense (%v, %v), lazy (%v, %v)",
								dres.Ratio, dres.ApproxFactor, lres.Ratio, lres.ApproxFactor)
						}
						if dc != lc {
							t.Errorf("Sandwich counters differ beyond backend-variant set:\ndense %+v\nlazy  %+v", dc, lc)
						}
					})

					t.Run("ea", func(t *testing.T) {
						dres := EA(dense, EAOptions{Iterations: 30, Parallelism: workers}, xrand.New(seed))
						lres := EA(lazy, EAOptions{Iterations: 30, Parallelism: workers}, xrand.New(seed))
						comparePlacements(t, "EA.Best", dres.Best, lres.Best)
						if dres.Evaluations != lres.Evaluations {
							t.Errorf("EA evaluations differ: dense %d, lazy %d", dres.Evaluations, lres.Evaluations)
						}
					})

					t.Run("aea", func(t *testing.T) {
						opts := AEAOptions{Iterations: 30, PopSize: 5, Delta: 0.05, RecordTrace: true, Parallelism: workers}
						dres := AEA(dense, opts, xrand.New(seed))
						lres := AEA(lazy, opts, xrand.New(seed))
						comparePlacements(t, "AEA.Best", dres.Best, lres.Best)
						if !reflect.DeepEqual(dres.Trace, lres.Trace) {
							t.Errorf("AEA trace differs between backends")
						}
					})

					t.Run("random_placement", func(t *testing.T) {
						dpl, derr := RandomPlacement(dense, 25, xrand.New(seed), Parallelism(workers))
						lpl, lerr := RandomPlacement(lazy, 25, xrand.New(seed), Parallelism(workers))
						if derr != nil || lerr != nil {
							t.Fatalf("RandomPlacement: dense err %v, lazy err %v", derr, lerr)
						}
						comparePlacements(t, "RandomPlacement", dpl, lpl)
					})

					t.Run("local_search", func(t *testing.T) {
						start := xrand.New(seed).SampleDistinct(dense.NumCandidates(), dense.K())
						dpl := LocalSearch(dense, start, LocalSearchOptions{Parallelism: workers})
						lpl := LocalSearch(lazy, start, LocalSearchOptions{Parallelism: workers})
						comparePlacements(t, "LocalSearch", dpl, lpl)
					})
				})
			}

			t.Run("sigma_mu_nu", func(t *testing.T) {
				r := xrand.New(9200 + seed)
				for rep := 0; rep < 10; rep++ {
					sel := r.SampleDistinct(dense.NumCandidates(), 1+r.Intn(3))
					if ds, ls := dense.Sigma(sel), lazy.Sigma(sel); ds != ls {
						t.Fatalf("σ(%v): dense %d, lazy %d", sel, ds, ls)
					}
					if dm, lm := dense.Mu(sel), lazy.Mu(sel); dm != lm {
						t.Fatalf("μ(%v): dense %v, lazy %v", sel, dm, lm)
					}
					if dn, ln := dense.Nu(sel), lazy.Nu(sel); dn != ln {
						t.Fatalf("ν(%v): dense %v, lazy %v", sel, dn, ln)
					}
					for _, w := range []int{2, 8} {
						if ds, ls := dense.SigmaPar(sel, w), lazy.SigmaPar(sel, w); ds != ls {
							t.Fatalf("σ_par(%v, %d): dense %d, lazy %d", sel, w, ds, ls)
						}
					}
				}
			})
		})
	}
}

// TestBackendDifferentialCommonNode runs the MSC-CN reduction on both
// backends over common-node instances.
func TestBackendDifferentialCommonNode(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := xrand.New(9300 + seed)
		n := 14 + int(seed%4)
		g := randomConnectedGraph(t, n, 2*n, rng)
		sampler := shortestpath.NewTable(g, 0)
		u := graph.NodeID(rng.Intn(n))
		ps, err := pairs.SampleViolatingWithCommonNode(sampler, 0.8, 5, u, rng)
		if err != nil {
			continue // this graph has too few violating pairs through u
		}
		thr := failprob.Threshold{P: 1 - math.Exp(-0.8), D: 0.8}
		dense, err := NewInstance(g, ps, thr, 2, &Options{AllowTrivial: true, DistBackend: BackendDense})
		if err != nil {
			t.Fatalf("seed %d: NewInstance(dense): %v", seed, err)
		}
		lazy, err := NewInstance(g, ps, thr, 2, &Options{AllowTrivial: true, DistBackend: BackendLazy})
		if err != nil {
			t.Fatalf("seed %d: NewInstance(lazy): %v", seed, err)
		}
		dres, derr := SolveCommonNode(dense)
		lres, lerr := SolveCommonNode(lazy)
		if derr != nil || lerr != nil {
			t.Fatalf("seed %d: SolveCommonNode: dense err %v, lazy err %v", seed, derr, lerr)
		}
		comparePlacements(t, "SolveCommonNode", dres.Placement, lres.Placement)
		if dres.Common != lres.Common || dres.Coverage != lres.Coverage {
			t.Errorf("seed %d: common/coverage differ: dense (%d, %d), lazy (%d, %d)",
				seed, dres.Common, dres.Coverage, lres.Common, lres.Coverage)
		}
	}
}

// pathInstance builds an instance over a path graph of n nodes with two
// far-apart pairs; cheap at any n, so auto-selection can be tested at the
// 512-node threshold without paying a dense build.
func pathInstance(t *testing.T, n int, opts *Options) *Instance {
	t.Helper()
	b := graph.NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID(i+1), 1)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ps := pairs.MustNewSet(n, []pairs.Pair{
		{U: 0, W: graph.NodeID(n - 1)},
		{U: 1, W: graph.NodeID(n - 2)},
	})
	thr := failprob.Threshold{P: 1 - math.Exp(-2), D: 2}
	inst, err := NewInstance(g, ps, thr, 1, opts)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

// TestBackendAutoSelection pins the resolution chain: explicit option →
// process default (SetDefaultDistBackend) → node threshold.
func TestBackendAutoSelection(t *testing.T) {
	defer SetDefaultDistBackend(BackendAuto)

	small := pathInstance(t, 32, &Options{AllowTrivial: true})
	if _, ok := small.Table().(*shortestpath.Table); !ok {
		t.Errorf("auto below threshold: got %T, want *shortestpath.Table", small.Table())
	}
	big := pathInstance(t, DefaultLazyThreshold, &Options{AllowTrivial: true})
	if _, ok := big.Table().(*shortestpath.LazyTable); !ok {
		t.Errorf("auto at threshold: got %T, want *shortestpath.LazyTable", big.Table())
	}

	SetDefaultDistBackend(BackendLazy)
	smallLazy := pathInstance(t, 32, &Options{AllowTrivial: true})
	if _, ok := smallLazy.Table().(*shortestpath.LazyTable); !ok {
		t.Errorf("default lazy: got %T, want *shortestpath.LazyTable", smallLazy.Table())
	}
	// An explicit option always beats the process default.
	explicit := pathInstance(t, 32, &Options{AllowTrivial: true, DistBackend: BackendDense})
	if _, ok := explicit.Table().(*shortestpath.Table); !ok {
		t.Errorf("explicit dense under default lazy: got %T, want *shortestpath.Table", explicit.Table())
	}

	SetDefaultDistBackend(BackendDense)
	bigDense := pathInstance(t, DefaultLazyThreshold, &Options{AllowTrivial: true})
	if _, ok := bigDense.Table().(*shortestpath.Table); !ok {
		t.Errorf("default dense at threshold: got %T, want *shortestpath.Table", bigDense.Table())
	}

	SetDefaultDistBackend(BackendAuto)
	restored := pathInstance(t, 32, &Options{AllowTrivial: true})
	if _, ok := restored.Table().(*shortestpath.Table); !ok {
		t.Errorf("after reset: got %T, want *shortestpath.Table", restored.Table())
	}

	// At the bounded threshold, auto picks the sparse bounded backend.
	// Landmarks are disabled (Landmarks: -1): the balls on a d_t = 2 path
	// graph are tiny, but 16 full landmark Dijkstras on 10⁵ nodes are not.
	huge := pathInstance(t, DefaultBoundedThreshold, &Options{AllowTrivial: true, Landmarks: -1})
	if _, ok := huge.Table().(*shortestpath.BoundedTable); !ok {
		t.Errorf("auto at bounded threshold: got %T, want *shortestpath.BoundedTable", huge.Table())
	}
	// One node below the bounded threshold, auto still picks lazy.
	below := pathInstance(t, DefaultBoundedThreshold-1, &Options{AllowTrivial: true})
	if _, ok := below.Table().(*shortestpath.LazyTable); !ok {
		t.Errorf("auto below bounded threshold: got %T, want *shortestpath.LazyTable", below.Table())
	}
	// An explicit bounded request works at any size.
	explicitBounded := pathInstance(t, 32, &Options{AllowTrivial: true, DistBackend: BackendBounded})
	if _, ok := explicitBounded.Table().(*shortestpath.BoundedTable); !ok {
		t.Errorf("explicit bounded: got %T, want *shortestpath.BoundedTable", explicitBounded.Table())
	}
}

func TestParseDistBackend(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want DistBackend
	}{
		{"", BackendAuto},
		{"auto", BackendAuto},
		{"dense", BackendDense},
		{"lazy", BackendLazy},
		{"bounded", BackendBounded},
	} {
		got, err := ParseDistBackend(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseDistBackend(%q) = (%q, %v), want (%q, nil)", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParseDistBackend("eager"); err == nil {
		t.Error("ParseDistBackend(\"eager\") succeeded, want error")
	}
}

// TestBackendOptionValidation covers the supplied-table path and its size
// check, plus the rejection of an unknown backend value smuggled past
// ParseDistBackend.
func TestBackendOptionValidation(t *testing.T) {
	rng := xrand.New(9400)
	g := randomConnectedGraph(t, 12, 24, rng)
	table := shortestpath.NewTable(g, 0)
	ps, err := pairs.SampleViolating(table, 0.8, 4, rng)
	if err != nil {
		t.Skipf("could not sample pairs: %v", err)
	}
	thr := failprob.Threshold{P: 1 - math.Exp(-0.8), D: 0.8}

	inst, err := NewInstance(g, ps, thr, 2, &Options{AllowTrivial: true, Table: table})
	if err != nil {
		t.Fatalf("NewInstance with supplied table: %v", err)
	}
	if inst.Table() != shortestpath.DistanceSource(table) {
		t.Error("supplied table was not used verbatim")
	}

	other := randomConnectedGraph(t, 13, 26, rng)
	wrong := shortestpath.NewTable(other, 0)
	if _, err := NewInstance(g, ps, thr, 2, &Options{AllowTrivial: true, Table: wrong}); err == nil {
		t.Error("mismatched supplied table accepted, want error")
	}

	if _, err := newDistanceSource(g, ps, thr, &Options{DistBackend: DistBackend("bogus")}); err == nil {
		t.Error("bogus backend accepted, want error")
	}
}

// TestBackendLazyPinsPairRows checks the deterministic pinning contract:
// after construction plus one σ(∅) evaluation, every social-pair endpoint
// row survives even a cache capped far below the endpoint count.
func TestBackendLazyPinsPairRows(t *testing.T) {
	rng := xrand.New(9500)
	dense, lazy := backendPair(t, 16, 6, 3, 0.8, rng, 1)
	// Touch many non-pair rows through a solver pass to force evictions.
	GreedySigma(lazy, Parallelism(1))
	lt := lazy.Table().(*shortestpath.LazyTable)
	before := lt.Stats().Computes
	for _, v := range lazy.Pairs().Nodes() {
		lt.Row(v)
	}
	if after := lt.Stats().Computes; after != before {
		t.Errorf("pair rows were evicted: %d recomputes", after-before)
	}
	_ = dense
}
