package core

import (
	"math"
	"testing"

	"msc/internal/failprob"
	"msc/internal/graph"
	"msc/internal/pairs"
	"msc/internal/shortestpath"
	"msc/internal/submodular"
	"msc/internal/telemetry"
	"msc/internal/xrand"
)

// surviveInstance builds a random survivable instance on a connected
// random graph.
func surviveInstance(t *testing.T, n, m, k int, dt float64, mode Survivability, rng *xrand.Rand) *Instance {
	t.Helper()
	g := randomConnectedGraph(t, n, 2*n, rng)
	table := shortestpath.NewTable(g, 0)
	ps, err := pairs.SampleViolating(table, dt, m, rng)
	if err != nil {
		t.Skipf("could not sample %d violating pairs: %v", m, err)
	}
	inst, err := NewInstance(g, ps, failprob.Threshold{P: 1 - math.Exp(-dt), D: dt}, k,
		&Options{AllowTrivial: true, Table: table, Survive: mode})
	if err != nil {
		t.Fatalf("NewInstance: %v", err)
	}
	return inst
}

// surviveInstanceRetry is surviveInstance for exhaustive seed sweeps: when
// a seed's graph cannot supply m violating pairs it deterministically
// perturbs the sub-seed instead of skipping, so every sweep seed yields an
// instance.
func surviveInstanceRetry(t *testing.T, n, m, k int, dt float64, mode Survivability, seed int64) *Instance {
	t.Helper()
	for off := int64(0); off < 20; off++ {
		rng := xrand.New(seed*1000 + off)
		g := randomConnectedGraph(t, n, 2*n, rng)
		table := shortestpath.NewTable(g, 0)
		ps, err := pairs.SampleViolating(table, dt, m, rng)
		if err != nil {
			continue
		}
		inst, err := NewInstance(g, ps, failprob.Threshold{P: 1 - math.Exp(-dt), D: dt}, k,
			&Options{AllowTrivial: true, Table: table, Survive: mode})
		if err != nil {
			t.Fatalf("NewInstance: %v", err)
		}
		return inst
	}
	t.Fatalf("seed %d: no graph yielded %d violating pairs", seed, m)
	return nil
}

// naiveSigmaWorst recomputes σ⁻ with fresh Dijkstras per scenario: each
// shortcut scenario drops one selected shortcut, each node scenario (node
// mode) rebuilds G−v, drops the shortcuts incident to v, and counts pairs
// incident to v as vacuously maintained.
func naiveSigmaWorst(t *testing.T, inst *Instance, sel []int) int {
	t.Helper()
	worst, have := 0, false
	fold := func(s int) {
		if !have || s < worst {
			worst, have = s, true
		}
	}
	for j := range sel {
		rest := make([]int, 0, len(sel)-1)
		rest = append(rest, sel[:j]...)
		rest = append(rest, sel[j+1:]...)
		fold(naiveSigma(inst, rest))
	}
	if inst.Survive() == SurviveNode {
		for v := 0; v < inst.N(); v++ {
			fold(naiveNodeScenario(inst, sel, v))
		}
	}
	if !have {
		return naiveSigma(inst, nil)
	}
	return worst
}

// naiveNodeScenario evaluates σ for the failure of node v from first
// principles, independent of the overlay machinery.
func naiveNodeScenario(inst *Instance, sel []int, v int) int {
	n := inst.N()
	b := graph.NewBuilder(n)
	for _, e := range inst.Graph().Edges() {
		if int(e.U) != v && int(e.V) != v {
			b.AddEdge(e.U, e.V, e.Length)
		}
	}
	gv := b.MustBuild()
	var edges []graph.Edge
	for _, c := range sel {
		e := inst.CandidateEdge(c)
		if int(e.U) != v && int(e.V) != v {
			edges = append(edges, e)
		}
	}
	total := 0
	for i, p := range inst.Pairs().Pairs() {
		if int(p.U) == v || int(p.W) == v {
			total += inst.PairWeight(i) // vacuous: the demand left with v
			continue
		}
		dist := shortestpath.AugmentedDistances(gv, edges, p.U)
		if dist[p.W] <= inst.Threshold().D {
			total += inst.PairWeight(i)
		}
	}
	return total
}

// TestSigmaWorstMatchesNaive locks Instance.SigmaWorst — the from-scratch
// reference the incremental survivable search is compared against — to a
// first-principles recompute, in both failure modes, on random selections
// including duplicates.
func TestSigmaWorstMatchesNaive(t *testing.T) {
	for _, mode := range []Survivability{SurviveShortcut, SurviveNode} {
		rng := xrand.New(977)
		for trial := 0; trial < 6; trial++ {
			inst := surviveInstance(t, 14, 6, 3, 0.8, mode, rng)
			for rep := 0; rep < 6; rep++ {
				sel := rng.SampleDistinct(inst.NumCandidates(), rng.Intn(4))
				if len(sel) > 0 && rng.Bernoulli(0.3) {
					sel = append(sel, sel[0]) // duplicates are legal survivable moves
				}
				got := inst.SigmaWorst(sel)
				want := naiveSigmaWorst(t, inst, sel)
				if got != want {
					t.Fatalf("mode=%s trial=%d: SigmaWorst(%v) = %d, want %d", mode, trial, sel, got, want)
				}
			}
		}
	}
}

// TestSurviveSearchMatchesInstance checks the memoized survivable search
// against from-scratch evaluation after every mutation: Sigma() must equal
// the scalarized survivableValue, and GainAdd must be the exact L
// difference — including for candidates already selected.
func TestSurviveSearchMatchesInstance(t *testing.T) {
	for _, mode := range []Survivability{SurviveShortcut, SurviveNode} {
		rng := xrand.New(1231)
		inst := surviveInstance(t, 12, 5, 4, 0.8, mode, rng)
		s := inst.NewSearch(nil)
		if _, ok := s.(*surviveSearch); !ok {
			t.Fatalf("mode=%s: NewSearch returned %T, want *surviveSearch", mode, s)
		}
		check := func(stage string) {
			sel := s.Selection()
			if got, want := s.Sigma(), inst.survivableValue(sel); got != want {
				t.Fatalf("mode=%s %s: search L %d != instance L %d (sel %v)", mode, stage, got, want, sel)
			}
			for c := 0; c < inst.NumCandidates(); c += 3 {
				want := inst.survivableValue(append(append([]int(nil), sel...), c)) - inst.survivableValue(sel)
				if got := s.GainAdd(c); got != want {
					t.Fatalf("mode=%s %s: GainAdd(%d) = %d, want %d (sel %v)", mode, stage, c, got, want, sel)
				}
			}
			gains := s.GainsAdd()
			for c := range gains {
				want := inst.survivableValue(append(append([]int(nil), sel...), c)) - inst.survivableValue(sel)
				if gains[c] != want {
					t.Fatalf("mode=%s %s: GainsAdd[%d] = %d, want %d (sel %v)", mode, stage, c, gains[c], want, sel)
				}
			}
		}
		check("empty")
		s.Add(7)
		check("after add 7")
		s.Add(7) // duplicate commit
		check("after duplicate add")
		s.Add(2)
		check("after add 2")
		for pos := range s.Selection() {
			rest := s.Selection()
			rest = append(rest[:pos], rest[pos+1:]...)
			if got, want := s.SigmaDrop(pos), inst.survivableValue(rest); got != want {
				t.Fatalf("mode=%s: SigmaDrop(%d) = %d, want %d", mode, pos, got, want)
			}
		}
		s.RemoveAt(1)
		check("after remove")
	}
}

// TestSurvivableGreedyMatchesExhaustive is the brute-force differential
// suite of the tentpole's acceptance criteria: on 24 seeds and both
// failure modes, the survivable GreedySigma (memoized scenario searches,
// warm gains, serial and parallel) must pick exactly the selection an
// exhaustive per-round worst-case recompute picks, and the serial and
// parallel runs must be byte-identical with identical deterministic work
// counters.
func TestSurvivableGreedyMatchesExhaustive(t *testing.T) {
	for _, mode := range []Survivability{SurviveShortcut, SurviveNode} {
		for seed := int64(1); seed <= 24; seed++ {
			inst := surviveInstanceRetry(t, 12, 5, 3, 0.8, mode, seed)

			// Exhaustive reference: every round evaluates L(S ∪ {c}) from
			// scratch for every candidate (duplicates included), ties toward
			// the lowest index, stopping at zero gain or budget.
			var want []int
			for len(want) < inst.K() {
				cur := inst.survivableValue(want)
				bestC, bestGain := -1, 0
				scratch := append([]int(nil), want...)
				for c := 0; c < inst.NumCandidates(); c++ {
					if g := inst.survivableValue(append(scratch, c)) - cur; g > bestGain {
						bestC, bestGain = c, g
					}
				}
				if bestC < 0 {
					break
				}
				want = append(want, bestC)
			}

			tg := telemetry.Global()
			before := tg.Snapshot()
			serial := GreedySigma(inst, Parallelism(1))
			mid := tg.Snapshot()
			parallel := GreedySigma(inst, Parallelism(4))
			after := tg.Snapshot()

			if !equalInts(serial.Selection, want) {
				t.Fatalf("mode=%s seed=%d: survivable greedy picked %v, exhaustive reference %v",
					mode, seed, serial.Selection, want)
			}
			if !equalInts(parallel.Selection, serial.Selection) {
				t.Fatalf("mode=%s seed=%d: parallel %v != serial %v", mode, seed, parallel.Selection, serial.Selection)
			}
			sw, pw := mid.Sub(before).BackendInvariant(), after.Sub(mid).BackendInvariant()
			if sw != pw {
				t.Fatalf("mode=%s seed=%d: deterministic counters diverge across worker counts:\nserial   %+v\nparallel %+v",
					mode, seed, sw, pw)
			}
			if sw.FailureScenariosEvaled == 0 {
				t.Fatalf("mode=%s seed=%d: survivable run evaluated no failure scenarios", mode, seed)
			}
			if got := inst.SigmaWorst(serial.Selection); got < inst.BaseSigma() && mode == SurviveShortcut {
				t.Fatalf("mode=%s seed=%d: shortcut-mode σ⁻ %d fell below σ(∅) %d", mode, seed, got, inst.BaseSigma())
			}
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSurvivableLocalSearchNeverWorse drives LocalSearch over a survivable
// problem: the refinement speaks the lexicographic objective, so (σ⁻, σ)
// of the result must be ≥ the greedy input's, and the final placement must
// still verify against the from-scratch evaluator.
func TestSurvivableLocalSearchNeverWorse(t *testing.T) {
	for _, mode := range []Survivability{SurviveShortcut, SurviveNode} {
		rng := xrand.New(4242)
		inst := surviveInstance(t, 12, 5, 3, 0.8, mode, rng)
		seed := GreedySigma(inst)
		before := inst.survivableValue(seed.Selection)
		refined := LocalSearch(inst, seed.Selection, LocalSearchOptions{MaxIters: 5})
		after := inst.survivableValue(refined.Selection)
		if after < before {
			t.Fatalf("mode=%s: local search worsened L: %d -> %d", mode, before, after)
		}
	}
}

// TestSurvivableSandwichPicksLexBest locks the survivable sandwich arm
// pick: the winner must be lexicographically (σ⁻, σ)-maximal among the
// three arms.
func TestSurvivableSandwichPicksLexBest(t *testing.T) {
	rng := xrand.New(808)
	inst := surviveInstance(t, 12, 5, 3, 0.8, SurviveShortcut, rng)
	res := Sandwich(inst)
	bestL := inst.survivableValue(res.Best.Selection)
	for _, arm := range []Placement{res.FMu, res.FSigma, res.FNu} {
		if l := inst.survivableValue(arm.Selection); l > bestL {
			t.Fatalf("sandwich winner L=%d beaten by arm L=%d", bestL, l)
		}
	}
}

// TestSigmaWorstShortcutMonotone exercises the monotonicity claim DESIGN.md
// §11 makes for shortcut-mode σ⁻ (dropping any single shortcut from S∪{c}
// leaves at least the coverage some scenario of S had), via the submodular
// package's property checker over a small candidate sub-universe.
func TestSigmaWorstShortcutMonotone(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		rng := xrand.New(seed)
		inst := surviveInstance(t, 10, 4, 3, 0.8, SurviveShortcut, rng)
		sub := subUniverse(inst, 6)
		f := func(sel []int) float64 {
			mapped := make([]int, len(sel))
			for i, e := range sel {
				mapped[i] = sub[e]
			}
			return float64(inst.SigmaWorst(mapped))
		}
		if !submodular.IsMonotone(len(sub), f) {
			t.Fatalf("seed=%d: shortcut-mode σ⁻ not monotone on sub-universe %v", seed, sub)
		}
	}
}

// TestSigmaWorstNotSubmodular pins the caveat that σ⁻ — like σ itself —
// is not submodular: the property checker must find a witness within the
// (deterministic) seed budget. This is what justifies verifying the
// survivable greedy differentially instead of leaning on a (1−1/e) bound.
func TestSigmaWorstNotSubmodular(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		rng := xrand.New(seed)
		inst := surviveInstance(t, 10, 4, 3, 0.8, SurviveShortcut, rng)
		sub := subUniverse(inst, 6)
		f := func(sel []int) float64 {
			mapped := make([]int, len(sel))
			for i, e := range sel {
				mapped[i] = sub[e]
			}
			return float64(inst.SigmaWorst(mapped))
		}
		if ok, witness := submodular.IsSubmodular(len(sub), f); !ok {
			t.Logf("seed=%d: non-submodularity witness %+v", seed, witness)
			return
		}
	}
	t.Fatal("no non-submodularity witness found for shortcut-mode σ⁻ within the seed budget")
}

// subUniverse picks count spread-out candidate indices.
func subUniverse(inst *Instance, count int) []int {
	sub := make([]int, count)
	for i := range sub {
		sub[i] = i * inst.NumCandidates() / count
	}
	return sub
}

// TestParseSurvivability covers the flag-value surface and the process
// default resolution chain.
func TestParseSurvivability(t *testing.T) {
	for in, want := range map[string]Survivability{
		"": SurviveAuto, "auto": SurviveAuto, "none": SurviveNone,
		"shortcut": SurviveShortcut, "node": SurviveNode,
	} {
		got, err := ParseSurvivability(in)
		if err != nil || got != want {
			t.Fatalf("ParseSurvivability(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseSurvivability("bogus"); err == nil {
		t.Fatal("ParseSurvivability(bogus) did not error")
	}
	SetDefaultSurvivability(SurviveShortcut)
	defer SetDefaultSurvivability(SurviveAuto)
	if got := resolveSurvivability(SurviveAuto); got != SurviveShortcut {
		t.Fatalf("resolve auto with default shortcut = %v", got)
	}
	if got := resolveSurvivability(SurviveNone); got != SurviveNone {
		t.Fatalf("explicit none must override default, got %v", got)
	}
}
