package core

import (
	"context"
	"sort"
	"time"

	"msc/internal/obs"
	"msc/internal/telemetry"
	"msc/internal/xrand"
)

// EAResult reports an EA run.
type EAResult struct {
	Best Placement
	// Trace[t] is the best feasible σ found within the first t+1
	// iterations; it is recorded only when EAOptions.RecordTrace is set
	// (used to regenerate Fig. 4). A resumed run's trace covers only the
	// continuation.
	Trace []int
	// Evaluations counts σ evaluations performed (carried across resume).
	Evaluations int
	// PopulationSize is the final Pareto-archive size.
	PopulationSize int
}

// EAOptions tune the evolutionary algorithm.
type EAOptions struct {
	// Iterations is the adjustment count r (paper uses r = 500). A resumed
	// run continues up to the same total, not r further iterations.
	Iterations int
	// RecordTrace enables per-iteration best-σ recording.
	RecordTrace bool
	// Parallelism shards the per-offspring σ evaluation (the per-pair
	// distance checks of the overlay oracle) across workers; 1 forces the
	// serial path, <= 0 resolves via ResolveParallelism. Results are
	// identical for every worker count.
	Parallelism int
	// Sink, when non-nil, receives one RoundEvent per iteration (the
	// offspring's σ gain over its parent and the best feasible σ so far).
	// Tracing never touches the RNG, so runs are identical with and
	// without a sink.
	Sink telemetry.Sink
	// Context supervises the run: it is checked at each iteration boundary
	// and, once done, stops the loop with the best feasible solution so
	// far and Best.Stop.Reason set accordingly. nil means never canceled;
	// an uncancelled supervised run is bit-identical to an unsupervised
	// one.
	Context context.Context
	// Deadline bounds the run to this much wall-clock time (composing with
	// Context; whichever fires first wins). <= 0 means no deadline.
	Deadline time.Duration
	// Resume continues a run from a checkpoint instead of starting fresh:
	// the RNG is repositioned, the archive and best-so-far restored, and
	// iteration Resume.Round runs next. The checkpoint must carry
	// Algorithm "ea".
	Resume *telemetry.CheckpointEvent
	// CheckpointSink, when non-nil, receives CheckpointEvent snapshots:
	// always one at the end of the run (converged, canceled, or budget
	// exhausted), plus one every CheckpointEvery iterations when that is
	// > 0. Snapshots read solver state but never steer it.
	CheckpointSink  telemetry.Sink
	CheckpointEvery int
}

// eaSol is one archive member: a solution with cached objective values.
// cost is the second Pareto axis: CostOf(sel) on budgeted problems, |sel|
// otherwise (as a float, so the two cases share the comparison code; small
// integer counts are exact in float64).
type eaSol struct {
	sel   []int // sorted candidate indices
	sigma int
	cost  float64
}

// EA is the evolutionary algorithm of §V-C (Algorithm 1): a GSEMO-style
// multi-objective optimizer over the two objectives (maximize σ(F),
// minimize |F|). The archive P holds the Pareto front; each iteration
// mutates a uniformly chosen member by flipping every candidate bit
// independently with probability 1/N (N = n(n−1)/2), inserts the offspring
// unless weakly dominated, and prunes newly dominated members. The answer
// is the best archive member with |F| ≤ k.
//
// Theorems 6 and 7 bound the expected iterations to reach a
// near-(1−1/e)-approximate feasible solution by O(n²k), with a slack term
// measuring how far σ is from submodular.
//
// On a budgeted problem the second Pareto axis is the selection's cost
// instead of its size, and the answer is the best archive member with
// CostOf(F) ≤ B. Mutation, selection, and every RNG draw are unchanged, so
// unit-cost runs with B = k are bit-for-bit identical to cardinality runs.
func EA(p Problem, opts EAOptions, rng *xrand.Rand) EAResult {
	numCand := p.NumCandidates()
	workers := ResolveParallelism(opts.Parallelism)
	ctx, cancel := superviseCtx(opts.Context, opts.Deadline)
	defer cancel()
	bp, budgeted := asBudgeted(p)
	solCost := func(sel []int) float64 {
		if budgeted {
			return bp.CostOf(sel)
		}
		return float64(len(sel))
	}
	feasLimit := float64(p.K())
	if budgeted {
		feasLimit = bp.Budget()
	}
	res := EAResult{}
	var pop []eaSol
	var bestFeasible eaSol
	startIter := 0
	if cp := opts.Resume; cp != nil {
		checkResume("ea", cp, opts.Iterations)
		restoreRNG(rng, cp)
		pop = make([]eaSol, len(cp.Population))
		for i, s := range cp.Population {
			sel := append([]int(nil), s.Selection...)
			pop[i] = eaSol{sel: sel, sigma: s.Sigma, cost: solCost(sel)}
		}
		best := append([]int(nil), cp.Best.Selection...)
		bestFeasible = eaSol{sel: best, sigma: cp.Best.Sigma, cost: solCost(best)}
		res.Evaluations = cp.Evaluations
		startIter = cp.Round
	} else {
		pop = []eaSol{{sel: nil, sigma: SigmaOf(p, nil, workers)}}
		res.Evaluations++
		bestFeasible = eaSol{sel: nil, sigma: pop[0].sigma}
	}
	if opts.RecordTrace {
		res.Trace = make([]int, 0, opts.Iterations-startIter)
	}
	stop := StopInfo{Reason: StopEvalBudget, Rounds: startIter}
	checkpoint := func() {
		if opts.CheckpointSink == nil {
			return
		}
		seed, draws := rng.State()
		cp := telemetry.CheckpointEvent{
			Algorithm:   "ea",
			Round:       stop.Rounds,
			Seed:        seed,
			Draws:       draws,
			Population:  make([]telemetry.CheckpointSolution, len(pop)),
			Best:        snapshotSolution(bestFeasible.sel, bestFeasible.sigma),
			Evaluations: res.Evaluations,
		}
		for i, s := range pop {
			cp.Population[i] = snapshotSolution(s.sel, s.sigma)
		}
		opts.CheckpointSink.Emit(cp)
	}

	flipProb := 1 / float64(numCand)
	obsOn := obs.Enabled()
	for iter := startIter; iter < opts.Iterations; iter++ {
		// The supervision check precedes the iteration's RNG draws, so a
		// canceled run stops at a clean iteration boundary — exactly the
		// state a checkpoint captures.
		if err := ctxErr(ctx); err != nil {
			stop.Reason = stopReasonFor(err)
			break
		}
		var start time.Time
		if opts.Sink != nil || obsOn {
			start = time.Now()
		}
		parent := pop[rng.Intn(len(pop))]
		child := mutate(parent.sel, numCand, flipProb, rng)
		childSigma := SigmaOf(p, child, workers)
		childCost := solCost(child)
		res.Evaluations++
		insertPareto(&pop, eaSol{sel: child, sigma: childSigma, cost: childCost})
		if childCost <= feasLimit && betterFeasible(childSigma, childCost, bestFeasible) {
			bestFeasible = eaSol{sel: child, sigma: childSigma, cost: childCost}
		}
		stop.Rounds = iter + 1
		if opts.RecordTrace {
			res.Trace = append(res.Trace, bestFeasible.sigma)
		}
		if obsOn {
			obs.ObserveRound(time.Since(start))
		}
		if opts.Sink != nil {
			mu, nu := diagBounds(p, child)
			opts.Sink.Emit(telemetry.RoundEvent{
				Algorithm:  "ea",
				Round:      iter,
				Gain:       childSigma - parent.sigma,
				Sigma:      bestFeasible.sigma,
				Selected:   len(child),
				Candidates: numCand,
				Mu:         mu,
				Nu:         nu,
				ElapsedNS:  time.Since(start).Nanoseconds(),
			})
		}
		if stop.Rounds < opts.Iterations && checkpointDue(stop.Rounds, opts.Iterations, opts.CheckpointEvery) {
			checkpoint()
		}
	}
	checkpoint()
	res.Best = newPlacement(p, bestFeasible.sel)
	stop.Sigma = res.Best.Sigma
	res.Best.Stop = stop
	res.PopulationSize = len(pop)
	return res
}

func betterFeasible(sigma int, cost float64, cur eaSol) bool {
	if sigma != cur.sigma {
		return sigma > cur.sigma
	}
	return cost < cur.cost
}

// mutate flips each of the numCand membership bits with probability
// flipProb. Rather than walking all N bits, it samples the flip count from
// Binomial(N, flipProb) and picks that many distinct positions — O(flips)
// expected work (the EAMutation ablation bench quantifies the win).
func mutate(parent []int, numCand int, flipProb float64, rng *xrand.Rand) []int {
	flips := rng.Binomial(numCand, flipProb)
	if flips == 0 {
		return append([]int(nil), parent...)
	}
	positions := rng.SampleDistinct(numCand, flips)
	member := make(map[int]bool, len(parent)+flips)
	for _, c := range parent {
		member[c] = true
	}
	for _, f := range positions {
		member[f] = !member[f]
	}
	child := make([]int, 0, len(member))
	for c, in := range member {
		if in {
			child = append(child, c)
		}
	}
	sort.Ints(child)
	return child
}

// insertPareto maintains the (σ, −cost) Pareto archive (cost is |F| on
// cardinality problems): the child is discarded when some member weakly
// dominates it; otherwise it joins and every member it weakly dominates
// leaves.
func insertPareto(pop *[]eaSol, child eaSol) {
	for _, s := range *pop {
		if s.sigma >= child.sigma && s.cost <= child.cost {
			return // weakly dominated (covers exact duplicates too)
		}
	}
	kept := (*pop)[:0]
	for _, s := range *pop {
		if child.sigma >= s.sigma && child.cost <= s.cost {
			continue // child dominates s
		}
		kept = append(kept, s)
	}
	*pop = append(kept, child)
}
