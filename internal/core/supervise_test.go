package core

import (
	"context"
	"errors"
	"math"
	"runtime"
	"strings"
	"testing"
	"time"

	"msc/internal/failprob"
	"msc/internal/graph"
	"msc/internal/pairs"
	"msc/internal/xrand"
)

// This file locks in the anytime-solver contract: a canceled or expired
// context stops every solver at its next supervision point with the best
// feasible placement found so far and a typed stop reason; an uncancelled
// supervised run is bit-identical to an unsupervised one; and a panicking
// scan shard surfaces as a typed *ShardPanicError without leaking
// goroutines.

func canceledCtx() context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return ctx
}

func checkFeasibleStop(t *testing.T, what string, pl Placement, p Problem, want StopReason) {
	t.Helper()
	if pl.Stop.Reason != want {
		t.Fatalf("%s: Stop.Reason = %q, want %q", what, pl.Stop.Reason, want)
	}
	if len(pl.Selection) > p.K() {
		t.Fatalf("%s: |F| = %d exceeds budget %d", what, len(pl.Selection), p.K())
	}
	if got := p.Sigma(pl.Selection); got != pl.Sigma {
		t.Fatalf("%s: reported σ = %d, recomputed %d", what, pl.Sigma, got)
	}
	if pl.Stop.Sigma != pl.Sigma {
		t.Fatalf("%s: Stop.Sigma = %d, placement σ = %d", what, pl.Stop.Sigma, pl.Sigma)
	}
}

func TestGreedySigmaCanceledReturnsBestSoFar(t *testing.T) {
	inst := testInstance(t, 24, 10, 4, 0.9, xrand.New(11))
	pl := GreedySigma(inst, WithContext(canceledCtx()))
	checkFeasibleStop(t, "GreedySigma", pl, inst, StopCanceled)
	if pl.Stop.Rounds != 0 {
		t.Fatalf("pre-canceled run committed %d rounds", pl.Stop.Rounds)
	}
}

func TestGreedySigmaDeadline(t *testing.T) {
	inst := testInstance(t, 24, 10, 4, 0.9, xrand.New(12))
	pl := GreedySigma(inst, WithDeadline(time.Nanosecond))
	checkFeasibleStop(t, "GreedySigma", pl, inst, StopDeadline)
}

func TestSandwichDeadline(t *testing.T) {
	inst := testInstance(t, 24, 10, 4, 0.9, xrand.New(13))
	res := Sandwich(inst, WithDeadline(time.Nanosecond))
	if res.Best.Stop.Reason != StopDeadline {
		t.Fatalf("Sandwich Stop.Reason = %q, want %q", res.Best.Stop.Reason, StopDeadline)
	}
	if len(res.Best.Selection) > inst.K() {
		t.Fatalf("|F| = %d exceeds budget %d", len(res.Best.Selection), inst.K())
	}
}

func TestEADeadlineAndCancel(t *testing.T) {
	inst := testInstance(t, 20, 8, 3, 0.9, xrand.New(14))
	res := EA(inst, EAOptions{Iterations: 50, Context: canceledCtx()}, xrand.New(1))
	checkFeasibleStop(t, "EA canceled", res.Best, inst, StopCanceled)
	if res.Best.Stop.Rounds != 0 {
		t.Fatalf("pre-canceled EA committed %d rounds", res.Best.Stop.Rounds)
	}
	res = EA(inst, EAOptions{Iterations: 50, Deadline: time.Nanosecond}, xrand.New(1))
	checkFeasibleStop(t, "EA deadline", res.Best, inst, StopDeadline)
}

func TestAEADeadlineAndCancel(t *testing.T) {
	inst := testInstance(t, 20, 8, 3, 0.9, xrand.New(15))
	opts := DefaultAEAOptions()
	opts.Iterations = 50
	opts.Context = canceledCtx()
	res := AEA(inst, opts, xrand.New(1))
	checkFeasibleStop(t, "AEA canceled", res.Best, inst, StopCanceled)
	opts.Context = nil
	opts.Deadline = time.Nanosecond
	res = AEA(inst, opts, xrand.New(1))
	checkFeasibleStop(t, "AEA deadline", res.Best, inst, StopDeadline)
}

func TestLocalSearchCanceled(t *testing.T) {
	inst := testInstance(t, 20, 8, 3, 0.9, xrand.New(16))
	start := xrand.New(2).SampleDistinct(inst.NumCandidates(), inst.K())
	pl := LocalSearch(inst, start, LocalSearchOptions{Context: canceledCtx()})
	checkFeasibleStop(t, "LocalSearch", pl, inst, StopCanceled)
}

func TestRandomPlacementCanceled(t *testing.T) {
	inst := testInstance(t, 20, 8, 3, 0.9, xrand.New(17))
	for _, workers := range []int{1, 4} {
		pl, err := RandomPlacement(inst, 30, xrand.New(3), WithContext(canceledCtx()), Parallelism(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		checkFeasibleStop(t, "RandomPlacement", pl, inst, StopCanceled)
		if pl.Stop.Rounds != 0 {
			t.Fatalf("workers=%d: pre-canceled run evaluated %d trials", workers, pl.Stop.Rounds)
		}
	}
}

func TestExhaustiveCanceled(t *testing.T) {
	inst := testInstance(t, 12, 5, 2, 0.9, xrand.New(18))
	for _, workers := range []int{1, 4} {
		pl, err := Exhaustive(inst, 1<<20, WithContext(canceledCtx()), Parallelism(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if pl.Stop.Reason != StopCanceled {
			t.Fatalf("workers=%d: Stop.Reason = %q, want %q", workers, pl.Stop.Reason, StopCanceled)
		}
		// Canceled before any evaluation: the honest answer is the empty
		// placement with its true σ, not a junk selection.
		if got := inst.Sigma(pl.Selection); got != pl.Sigma {
			t.Fatalf("workers=%d: reported σ = %d, recomputed %d", workers, pl.Sigma, got)
		}
	}
}

// TestSupervisedUncancelledIdentical is the determinism half of the
// contract: attaching a live context must not change any placement bit.
func TestSupervisedUncancelledIdentical(t *testing.T) {
	inst := testInstance(t, 24, 10, 4, 0.9, xrand.New(19))
	ctx := context.Background()

	plain := GreedySigma(inst)
	ctxed := GreedySigma(inst, WithContext(ctx))
	comparePlacements(t, "GreedySigma", plain, ctxed)

	swPlain := Sandwich(inst)
	swCtx := Sandwich(inst, WithContext(ctx))
	comparePlacements(t, "Sandwich.Best", swPlain.Best, swCtx.Best)

	eaPlain := EA(inst, EAOptions{Iterations: 40}, xrand.New(7))
	eaCtx := EA(inst, EAOptions{Iterations: 40, Context: ctx}, xrand.New(7))
	comparePlacements(t, "EA.Best", eaPlain.Best, eaCtx.Best)
	if eaPlain.Evaluations != eaCtx.Evaluations {
		t.Fatalf("EA evaluations differ: %d vs %d", eaPlain.Evaluations, eaCtx.Evaluations)
	}

	aeaOpts := DefaultAEAOptions()
	aeaOpts.Iterations = 40
	aeaPlain := AEA(inst, aeaOpts, xrand.New(7))
	aeaOpts.Context = ctx
	aeaCtx := AEA(inst, aeaOpts, xrand.New(7))
	comparePlacements(t, "AEA.Best", aeaPlain.Best, aeaCtx.Best)
}

func TestInputErrors(t *testing.T) {
	inst := testInstance(t, 16, 6, 3, 0.9, xrand.New(20))
	var ierr *InputError

	if _, err := RandomPlacement(inst, 0, xrand.New(1)); !errors.As(err, &ierr) || ierr.Param != "trials" {
		t.Fatalf("RandomPlacement(trials=0) err = %v", err)
	}
	if _, err := RandomPlacement(inst, -3, xrand.New(1)); !errors.As(err, &ierr) {
		t.Fatalf("RandomPlacement(trials=-3) err = %v", err)
	}
	if _, err := Exhaustive(inst, 0); !errors.As(err, &ierr) || ierr.Param != "maxEvals" {
		t.Fatalf("Exhaustive(maxEvals=0) err = %v", err)
	}

	// A budget above the candidate count is structurally impossible to
	// fill with distinct edges: typed error, not a silent clamp.
	big := overBudgetInstance(t)
	if _, err := RandomPlacement(big, 5, xrand.New(1)); !errors.As(err, &ierr) || ierr.Param != "k" {
		t.Fatalf("RandomPlacement(k>numCand) err = %v", err)
	}
	if _, err := Exhaustive(big, 100); !errors.As(err, &ierr) || ierr.Param != "k" {
		t.Fatalf("Exhaustive(k>numCand) err = %v", err)
	}
}

// overBudgetInstance builds a 3-node path instance whose budget k = 5
// exceeds its 3 candidate edges.
func overBudgetInstance(t *testing.T) *Instance {
	t.Helper()
	g, err := graph.NewBuilder(3).AddEdge(0, 1, 1).AddEdge(1, 2, 1).Build()
	if err != nil {
		t.Fatal(err)
	}
	ps, err := pairs.NewSet(3, []pairs.Pair{{U: 0, W: 2}})
	if err != nil {
		t.Fatal(err)
	}
	inst, err := NewInstance(g, ps, failprob.Threshold{P: 1 - math.Exp(-0.5), D: 0.5}, 5,
		&Options{AllowTrivial: true})
	if err != nil {
		t.Fatal(err)
	}
	if inst.K() <= inst.NumCandidates() {
		t.Fatalf("instance has k=%d <= %d candidates; fixture broken", inst.K(), inst.NumCandidates())
	}
	return inst
}

func TestShardPanicIsolation(t *testing.T) {
	before := runtime.NumGoroutine()
	var got *ShardPanicError
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("panic did not propagate")
			}
			var ok bool
			got, ok = r.(*ShardPanicError)
			if !ok {
				t.Fatalf("recovered %T, want *ShardPanicError", r)
			}
		}()
		ParallelFor(4, 100, func(shard, lo, hi int) {
			if shard == 2 {
				panic("injected shard failure")
			}
		})
	}()
	if got.Shard != 2 {
		t.Fatalf("Shard = %d, want 2", got.Shard)
	}
	if got.Lo >= got.Hi || got.Lo < 0 || got.Hi > 100 {
		t.Fatalf("range [%d, %d) not a sub-range of [0, 100)", got.Lo, got.Hi)
	}
	if got.Value != "injected shard failure" {
		t.Fatalf("Value = %v", got.Value)
	}
	if len(got.Stack) == 0 {
		t.Fatal("no stack captured")
	}
	if !strings.Contains(got.Error(), "shard 2") {
		t.Fatalf("Error() = %q, want shard index mentioned", got.Error())
	}
	// All non-panicking shards must have drained: no goroutine leak.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutines leaked: %d before, %d after", before, after)
	}
}

// TestShardPanicFirstInShardOrder pins the deterministic choice when
// several shards panic at once.
func TestShardPanicFirstInShardOrder(t *testing.T) {
	defer func() {
		r := recover()
		sp, ok := r.(*ShardPanicError)
		if !ok {
			t.Fatalf("recovered %T, want *ShardPanicError", r)
		}
		if sp.Shard != 1 {
			t.Fatalf("Shard = %d, want lowest panicking shard 1", sp.Shard)
		}
	}()
	ParallelFor(4, 40, func(shard, lo, hi int) {
		if shard >= 1 {
			panic(shard)
		}
	})
}

// TestShardPanicNestedUnchanged: a ShardPanicError crossing an outer
// ParallelFor keeps naming the scan that actually failed.
func TestShardPanicNestedUnchanged(t *testing.T) {
	defer func() {
		sp, ok := recover().(*ShardPanicError)
		if !ok {
			t.Fatal("want *ShardPanicError")
		}
		// The inner scan splits [0, 5) over 2 shards; its first panicking
		// shard is 0 with range [0, 2). The outer ParallelFor must pass
		// that error through untouched, not rewrap it with its own range.
		if sp.Value != "inner" || sp.Shard != 0 || sp.Lo != 0 || sp.Hi != 2 {
			t.Fatalf("inner error rewritten: %+v", sp)
		}
	}()
	ParallelFor(2, 10, func(shard, lo, hi int) {
		if shard == 1 {
			ParallelFor(2, 5, func(s, l, h int) {
				panic("inner")
			})
		}
	})
}

// TestGreedySigmaLiveCancelMidRun drives a real mid-run cancellation (not
// a pre-canceled context) through the in-scan polling path and checks the
// result is still a feasible prefix of the greedy run.
func TestGreedySigmaLiveCancelMidRun(t *testing.T) {
	inst := testInstance(t, 40, 16, 6, 0.95, xrand.New(22))
	full := GreedySigma(inst)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Microsecond)
		cancel()
	}()
	pl := GreedySigma(inst, WithContext(ctx))
	if len(pl.Selection) > len(full.Selection) {
		t.Fatalf("canceled run selected more (%d) than full run (%d)", len(pl.Selection), len(full.Selection))
	}
	switch pl.Stop.Reason {
	case StopCanceled:
		// The committed rounds must be a prefix of the uncancelled run:
		// greedy's choice sequence is deterministic.
		for i, c := range pl.Selection {
			if full.Selection[i] != c {
				t.Fatalf("canceled selection %v not a prefix of %v", pl.Selection, full.Selection)
			}
		}
	case StopConverged:
		comparePlacements(t, "GreedySigma raced-to-completion", full, pl)
	default:
		t.Fatalf("unexpected stop reason %q", pl.Stop.Reason)
	}
}
