package core

import (
	"fmt"
	"math"
	"sync/atomic"

	"msc/internal/shortestpath"
	"msc/internal/xrand"
)

// CostModel selects how candidate shortcuts are priced when an instance
// carries a knapsack budget B instead of the paper's cardinality budget k
// (Options.Budget). The paper prices every shortcut equally — CostUnit with
// B = k reproduces it exactly — but real direct links (satellite, UAV relay)
// have heterogeneous prices, which CostLength and CostTable model.
type CostModel string

const (
	// CostModelAuto resolves to the process default installed with
	// SetDefaultCostModel, else to CostUnit.
	CostModelAuto CostModel = ""
	// CostUnit prices every candidate at 1, so a budget B admits ⌊B⌋
	// shortcuts: the cardinality problem in knapsack form. Unit-cost runs
	// with B = k are bit-for-bit identical to cardinality-k runs (the
	// property suite locks that in).
	CostUnit CostModel = "unit"
	// CostLength prices a candidate by how much connectivity it buys:
	// 1 + D0(a,b)/d_t, where D0 is the raw shortest-path distance between
	// the endpoints. A shortcut bridging a distant pair is proportionally
	// more expensive (longer physical link); endpoints the raw network
	// cannot connect price at +Inf, i.e. unaffordable.
	CostLength CostModel = "length"
	// CostTable prices candidates from an explicit per-candidate table
	// (Options.Costs, typically loaded via graphio.ReadCostTable).
	CostTable CostModel = "table"
)

// defaultCostModel holds the process-wide model used when Options.CostModel
// is CostModelAuto; empty means CostUnit. Set from the -cost-model flag of
// the cmds, mirroring SetDefaultEvalMode.
var defaultCostModel atomic.Value // CostModel

// defaultBudget holds the process-wide knapsack budget applied to instances
// built without explicit budget options; 0 means cardinality placement.
// Set from the -budget flag of mscbench.
var defaultBudget atomic.Value // float64

// ParseCostModel validates a -cost-model flag value; "auto", "unit",
// "length", and "table" are accepted.
func ParseCostModel(s string) (CostModel, error) {
	switch s {
	case "", "auto":
		return CostModelAuto, nil
	case string(CostUnit):
		return CostUnit, nil
	case string(CostLength):
		return CostLength, nil
	case string(CostTable):
		return CostTable, nil
	}
	return CostModelAuto, fmt.Errorf("core: unknown cost model %q (want auto, unit, length, or table)", s)
}

// SetDefaultCostModel sets the cost model used by budgeted instances built
// with CostModelAuto; CostModelAuto restores the built-in unit default.
func SetDefaultCostModel(m CostModel) {
	defaultCostModel.Store(m)
}

// SetDefaultBudget sets the knapsack budget applied to instances built
// without explicit budget options; 0 restores cardinality placement.
func SetDefaultBudget(b float64) {
	defaultBudget.Store(b)
}

// resolveCostModel applies the explicit-option → process-default → built-in
// resolution chain. Unknown non-auto values pass through for NewInstance to
// reject.
func resolveCostModel(m CostModel) CostModel {
	if m == CostModelAuto {
		if d, ok := defaultCostModel.Load().(CostModel); ok {
			m = d
		}
	}
	if m == CostModelAuto {
		return CostUnit
	}
	return m
}

func defaultBudgetValue() float64 {
	if b, ok := defaultBudget.Load().(float64); ok {
		return b
	}
	return 0
}

// BudgetProblem extends Problem with a knapsack budget over priced
// candidates. The solvers type-assert for it: on a budgeted problem greedy
// runs in cost-benefit ratio form, local-search swaps check budget
// feasibility, and EA/AEA treat cost as the second Pareto axis. A problem
// may implement the interface and still report Budgeted() == false, in
// which case the cardinality paths run.
type BudgetProblem interface {
	Problem
	// Budgeted reports whether the knapsack budget replaces cardinality k.
	Budgeted() bool
	// Budget returns the knapsack budget B.
	Budget() float64
	// Cost returns the price of one candidate shortcut (positive; +Inf
	// marks an unaffordable candidate).
	Cost(cand int) float64
	// CostOf returns the total price of a selection.
	CostOf(sel []int) float64
}

// asBudgeted returns the problem's budgeted view when it has one.
func asBudgeted(p Problem) (BudgetProblem, bool) {
	bp, ok := p.(BudgetProblem)
	if !ok || !bp.Budgeted() {
		return nil, false
	}
	return bp, true
}

// initBudget resolves the budget options into the instance's cost state.
// An instance is budgeted when any of Budget/CostModel/Costs is set
// explicitly, or when a process-wide budget was installed with
// SetDefaultBudget; B = 0 is legal (only the empty placement is feasible).
func (inst *Instance) initBudget(opts *Options) error {
	var budget float64
	var model CostModel
	var costs []float64
	explicit := false
	if opts != nil {
		budget, model, costs = opts.Budget, opts.CostModel, opts.Costs
		explicit = budget != 0 || model != CostModelAuto || costs != nil
	}
	if !explicit {
		budget = defaultBudgetValue()
		if budget == 0 {
			return nil // cardinality instance
		}
	}
	if math.IsNaN(budget) || math.IsInf(budget, 0) || budget < 0 {
		return &InputError{Param: "budget", Reason: fmt.Sprintf("budget B = %v must be finite and non-negative", budget)}
	}
	if costs != nil && model == CostModelAuto {
		model = CostTable
	}
	model = resolveCostModel(model)
	switch model {
	case CostUnit:
		if costs != nil {
			return &InputError{Param: "costs", Reason: `explicit per-candidate costs conflict with cost model "unit"`}
		}
	case CostLength:
		if costs != nil {
			return &InputError{Param: "costs", Reason: `explicit per-candidate costs conflict with cost model "length"`}
		}
		if _, ok := inst.table.(shortestpath.SparseSource); ok {
			// Length prices are min(d(u,v), d_t): they need full-range
			// distances, and a bounded backend deliberately reports +Inf
			// beyond its reach — every candidate would price at d_t.
			return &InputError{Param: "cost-model", Reason: `cost model "length" needs full-range distances; use the dense or lazy distance backend`}
		}
		// The price table is materialized lazily on the first Cost call
		// (it reads one distance per candidate pair, which on the lazy
		// backend would force every row): instances that are only ever
		// σ-evaluated — e.g. survivable node-failure scenario instances —
		// never pay for it.
	case CostTable:
		if costs == nil {
			return &InputError{Param: "costs", Reason: `cost model "table" requires per-candidate costs`}
		}
		if len(costs) != inst.numCand {
			return &InputError{Param: "costs", Value: len(costs),
				Reason: fmt.Sprintf("cost table length does not match the %d candidate edges", inst.numCand)}
		}
		copied := make([]float64, len(costs))
		for i, c := range costs {
			if math.IsNaN(c) || c <= 0 {
				return &InputError{Param: "costs", Value: i,
					Reason: fmt.Sprintf("cost %v must be positive (NaN and non-positive prices rejected; +Inf marks unaffordable)", c)}
			}
			copied[i] = c
		}
		costs = copied
	default:
		return fmt.Errorf("core: unknown cost model %q (want auto, unit, length, or table)", model)
	}
	inst.budgeted = true
	inst.budget = budget
	inst.costModel = model
	inst.costs = costs // nil under CostUnit: Cost returns 1 without a table
	return nil
}

// Budgeted reports whether the instance carries a knapsack budget in place
// of the cardinality budget k.
func (inst *Instance) Budgeted() bool { return inst.budgeted }

// Budget returns the knapsack budget B (0 when the instance is not
// budgeted).
func (inst *Instance) Budget() float64 { return inst.budget }

// CostModel returns the resolved cost model of a budgeted instance, or
// CostModelAuto when the instance is a cardinality one.
func (inst *Instance) CostModel() CostModel { return inst.costModel }

// Cost returns the price of one candidate shortcut (1 on cardinality
// instances, so CostOf degenerates to the selection size).
func (inst *Instance) Cost(cand int) float64 {
	if !inst.budgeted || inst.costModel == CostUnit {
		return 1
	}
	inst.costOnce.Do(inst.buildCosts)
	return inst.costs[cand]
}

// buildCosts materializes the CostLength price table; CostTable prices were
// validated and copied by initBudget already.
func (inst *Instance) buildCosts() {
	if inst.costs != nil {
		return
	}
	costs := make([]float64, inst.numCand)
	for i := range costs {
		e := inst.CandidateEdge(i)
		costs[i] = 1
		if d := inst.table.Dist(e.U, e.V); d > 0 {
			costs[i] = 1 + d/inst.thr.D
		}
	}
	inst.costs = costs
}

// CostOf returns the total price of a selection.
func (inst *Instance) CostOf(sel []int) float64 {
	total := 0.0
	for _, c := range sel {
		total += inst.Cost(c)
	}
	return total
}

// problemValue returns the scalar objective solvers compare placements by:
// plain σ, or the lexicographic (σ⁻, σ) scalarization when the problem
// carries a survivable failure model (survive.go).
func problemValue(p Problem, sel []int) int {
	if wp, ok := p.(WorstCaseProblem); ok && wp.Survive() != SurviveNone {
		return wp.SigmaWorst(sel)*(p.MaxSigma()+1) + p.Sigma(sel)
	}
	return p.Sigma(sel)
}

// affordableFill draws a random budget-feasible selection: while some
// absent candidate is still affordable, it rejects uniform draws until one
// fits. Under unit costs with B = k the draw sequence is identical to
// xrand.SampleDistinct's rejection branch, which is what makes budgeted
// RandomPlacement/AEA reproduce their cardinality counterparts bit for bit
// on sparse selections.
func affordableFill(bp BudgetProblem, rng *xrand.Rand) []int {
	n := bp.NumCandidates()
	rem := bp.Budget()
	in := make([]bool, n)
	var sel []int
	for {
		affordable := false
		for c := 0; c < n; c++ {
			if !in[c] && bp.Cost(c) <= rem {
				affordable = true
				break
			}
		}
		if !affordable {
			return sel
		}
		for {
			c := rng.Intn(n)
			if in[c] || bp.Cost(c) > rem {
				continue
			}
			in[c] = true
			rem -= bp.Cost(c)
			sel = append(sel, c)
			break
		}
	}
}
