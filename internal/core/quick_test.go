package core

import (
	"testing"
	"testing/quick"

	"msc/internal/xrand"
)

// Property-based tests over randomized selections, in the style of
// internal/maxcover and internal/bitset: testing/quick drives the
// generators, each property gets a shared pool of seeded instances so a
// reported counterexample (the quick seed values) reproduces exactly.

// quickInstances builds a small pool of random-geometric instances of
// varying size for the quick properties to draw from.
func quickInstances(t *testing.T) []*Instance {
	t.Helper()
	insts := make([]*Instance, 0, 6)
	for i := int64(0); i < 6; i++ {
		rng := xrand.New(9000 + i)
		insts = append(insts, testInstance(t, 10+int(i), 5, 3, 0.8, rng))
	}
	return insts
}

// pickSelection derives a duplicate-free selection from quick's raw
// values: instance from pick, size from size, members from a seed-derived
// sample.
func pickSelection(insts []*Instance, pick, size uint8, seed int64) (*Instance, []int) {
	inst := insts[int(pick)%len(insts)]
	n := int(size) % 5 // 0..4 shortcuts
	if n == 0 {
		return inst, nil
	}
	return inst, xrand.New(seed).SampleDistinct(inst.NumCandidates(), n)
}

// Property: σ is monotone under adding shortcuts — any superset of a
// selection maintains at least as many pairs (shortcuts only shorten
// paths).
func TestQuickSigmaMonotone(t *testing.T) {
	insts := quickInstances(t)
	property := func(pick, size uint8, seed int64, extra uint16) bool {
		inst, sel := pickSelection(insts, pick, size, seed)
		add := int(extra) % inst.NumCandidates()
		bigger := append(append([]int(nil), sel...), add)
		return inst.Sigma(bigger) >= inst.Sigma(sel)
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: the sandwich bounds hold for every selection — μ(F) ≤ σ(F) ≤
// ν(F) (Lemma 2 of the paper: μ counts pairs a single shortcut maintains
// on its own, ν counts pairs some shortcut helps maintain).
func TestQuickSandwichBounds(t *testing.T) {
	insts := quickInstances(t)
	const eps = 1e-9
	property := func(pick, size uint8, seed int64) bool {
		inst, sel := pickSelection(insts, pick, size, seed)
		sigma := float64(inst.Sigma(sel))
		return inst.Mu(sel) <= sigma+eps && sigma <= inst.Nu(sel)+eps
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: σ is invariant under permuting the selection's candidate
// indices — a selection is a set, so any reordering (and the sharded
// parallel oracle) must agree with the serial evaluation.
func TestQuickSigmaPermutationInvariant(t *testing.T) {
	insts := quickInstances(t)
	property := func(pick, size uint8, seed, permSeed int64, workers uint8) bool {
		inst, sel := pickSelection(insts, pick, size, seed)
		want := inst.Sigma(sel)
		perm := append([]int(nil), sel...)
		xrand.New(permSeed).Shuffle(len(perm), func(i, j int) {
			perm[i], perm[j] = perm[j], perm[i]
		})
		if inst.Sigma(perm) != want {
			return false
		}
		return inst.SigmaPar(perm, 1+int(workers)%8) == want
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: the incremental search agrees with the from-scratch oracle on
// any add sequence — after seeding a Search with a selection, Sigma()
// matches Sigma(sel) and each GainsAdd entry matches the σ delta of the
// corresponding candidate.
func TestQuickSearchAgreesWithOracle(t *testing.T) {
	insts := quickInstances(t)
	property := func(pick, size uint8, seed int64, probe uint16) bool {
		inst, sel := pickSelection(insts, pick, size, seed)
		s := inst.NewSearch(sel)
		if s.Sigma() != inst.Sigma(sel) {
			return false
		}
		gains := s.GainsAdd()
		c := int(probe) % inst.NumCandidates()
		with := append(append([]int(nil), sel...), c)
		return gains[c] == inst.Sigma(with)-inst.Sigma(sel)
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
