// Package predict forecasts future network topologies from an observed
// mobility-trace prefix.
//
// The paper's dynamic treatment (§VI) assumes the topology series
// G_1..G_T is *given* by prediction techniques — node-mobility prediction
// [21], [22] and social-evolution prediction [23] — and explicitly leaves
// prediction accuracy out of scope. This package supplies the missing
// substrate so that assumption can be exercised end to end: a group-aware
// dead-reckoning predictor extrapolates each squad's motion from the last
// observed snapshots, producing the predicted series placements are
// computed on. The ext3 experiment then measures how much placement
// quality degrades when the plan is made on predictions but graded
// against what actually happened.
package predict

import (
	"errors"
	"fmt"

	"msc/internal/geom"
	"msc/internal/mobility"
)

// Errors returned by DeadReckon.
var (
	ErrObserved = errors.New("predict: need at least two observed snapshots")
	ErrHorizon  = errors.New("predict: horizon must be at least one step")
)

// DeadReckon predicts `horizon` future snapshots from the first
// `observed` snapshots of a trace using group-aware dead reckoning:
//
//   - each group's reference point advances with the group centroid's
//     velocity estimated over the observed window (least-squares over the
//     last min(observed, 4) snapshots degrades gracefully to two-point
//     differencing);
//   - each member holds its most recent offset from its group centroid
//     (squad formations persist far better than individual jitter).
//
// The returned trace contains only the predicted snapshots, so
// Positions[h] forecasts observed+h. Predictions are clamped to the
// bounding box of the observed positions, expanded by one step of motion,
// mirroring how an operator bounds an area of operations.
func DeadReckon(tr *mobility.Trace, observed, horizon int) (*mobility.Trace, error) {
	if observed < 2 || observed > tr.T() {
		return nil, fmt.Errorf("%w: observed=%d of %d", ErrObserved, observed, tr.T())
	}
	if horizon < 1 {
		return nil, fmt.Errorf("%w: %d", ErrHorizon, horizon)
	}
	n := tr.N()
	groups := maxGroup(tr.GroupOf) + 1

	// Group centroids over the observed window.
	window := observed
	if window > 4 {
		window = 4
	}
	centroids := make([][]geom.Point, window) // [wi][group]
	for wi := 0; wi < window; wi++ {
		t := observed - window + wi
		centroids[wi] = groupCentroids(tr.Positions[t], tr.GroupOf, groups)
	}
	// Per-group velocity: average one-step centroid displacement.
	vel := make([]geom.Point, groups)
	for g := 0; g < groups; g++ {
		var total geom.Point
		for wi := 1; wi < window; wi++ {
			total = total.Add(centroids[wi][g].Sub(centroids[wi-1][g]))
		}
		vel[g] = total.Scale(1 / float64(window-1))
	}
	lastCentroid := centroids[window-1]
	last := tr.Positions[observed-1]

	// Clamp region: observed bounding box plus one step of slack.
	var all []geom.Point
	for t := 0; t < observed; t++ {
		all = append(all, tr.Positions[t]...)
	}
	bb := geom.BoundingBox(all)
	slack := 0.0
	for _, v := range vel {
		if s := v.Norm(); s > slack {
			slack = s
		}
	}
	region := geom.Rect{
		MinX: bb.MinX - slack, MinY: bb.MinY - slack,
		MaxX: bb.MaxX + slack, MaxY: bb.MaxY + slack,
	}

	out := &mobility.Trace{
		Positions:   make([][]geom.Point, horizon),
		GroupOf:     append([]int(nil), tr.GroupOf...),
		StepSeconds: tr.StepSeconds,
	}
	for h := 0; h < horizon; h++ {
		snapshot := make([]geom.Point, n)
		for v := 0; v < n; v++ {
			g := tr.GroupOf[v]
			offset := last[v].Sub(lastCentroid[g])
			center := lastCentroid[g].Add(vel[g].Scale(float64(h + 1)))
			snapshot[v] = region.Clamp(center.Add(offset))
		}
		out.Positions[h] = snapshot
	}
	return out, nil
}

// MeanError reports the mean per-node position error (meters) between a
// predicted trace and the actual continuation actual[offset:], snapshot by
// snapshot, truncated to the shorter of the two.
func MeanError(predicted *mobility.Trace, actual *mobility.Trace, offset int) (float64, error) {
	if predicted.N() != actual.N() {
		return 0, fmt.Errorf("predict: node counts differ: %d vs %d", predicted.N(), actual.N())
	}
	steps := predicted.T()
	if rest := actual.T() - offset; rest < steps {
		steps = rest
	}
	if steps <= 0 {
		return 0, fmt.Errorf("predict: no overlapping snapshots")
	}
	total, count := 0.0, 0
	for h := 0; h < steps; h++ {
		for v := 0; v < predicted.N(); v++ {
			total += predicted.Positions[h][v].Dist(actual.Positions[offset+h][v])
			count++
		}
	}
	return total / float64(count), nil
}

func groupCentroids(pts []geom.Point, groupOf []int, groups int) []geom.Point {
	sums := make([]geom.Point, groups)
	counts := make([]int, groups)
	for v, p := range pts {
		g := groupOf[v]
		sums[g] = sums[g].Add(p)
		counts[g]++
	}
	for g := range sums {
		if counts[g] > 0 {
			sums[g] = sums[g].Scale(1 / float64(counts[g]))
		}
	}
	return sums
}

func maxGroup(groupOf []int) int {
	best := 0
	for _, g := range groupOf {
		if g > best {
			best = g
		}
	}
	return best
}
