package predict

import (
	"testing"

	"msc/internal/geom"
	"msc/internal/mobility"
	"msc/internal/xrand"
)

func sampleTrace(t *testing.T, steps int) *mobility.Trace {
	t.Helper()
	cfg := mobility.DefaultConfig()
	cfg.Nodes = 30
	cfg.Groups = 5
	cfg.Steps = steps
	tr, err := mobility.Generate(cfg, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestDeadReckonShape(t *testing.T) {
	tr := sampleTrace(t, 12)
	pred, err := DeadReckon(tr, 6, 4)
	if err != nil {
		t.Fatal(err)
	}
	if pred.T() != 4 || pred.N() != tr.N() {
		t.Fatalf("shape: T=%d N=%d", pred.T(), pred.N())
	}
	if pred.StepSeconds != tr.StepSeconds {
		t.Fatal("step seconds lost")
	}
	for v := range pred.GroupOf {
		if pred.GroupOf[v] != tr.GroupOf[v] {
			t.Fatal("groups lost")
		}
	}
}

func TestDeadReckonValidation(t *testing.T) {
	tr := sampleTrace(t, 5)
	if _, err := DeadReckon(tr, 1, 2); err == nil {
		t.Fatal("observed=1 accepted")
	}
	if _, err := DeadReckon(tr, 6, 2); err == nil {
		t.Fatal("observed beyond trace accepted")
	}
	if _, err := DeadReckon(tr, 3, 0); err == nil {
		t.Fatal("horizon=0 accepted")
	}
}

// A synthetic trace with perfectly linear group motion must be predicted
// (near-)exactly: dead reckoning is exact on constant-velocity motion.
func TestDeadReckonExactOnLinearMotion(t *testing.T) {
	const n, steps = 6, 10
	tr := &mobility.Trace{
		Positions:   make([][]geom.Point, steps),
		GroupOf:     make([]int, n),
		StepSeconds: 1,
	}
	for v := 0; v < n; v++ {
		tr.GroupOf[v] = v % 2
	}
	for step := 0; step < steps; step++ {
		snapshot := make([]geom.Point, n)
		for v := 0; v < n; v++ {
			base := geom.Point{X: float64(100 * (v % 2)), Y: float64(10 * v)}
			velocity := geom.Point{X: 5, Y: 3}
			snapshot[v] = base.Add(velocity.Scale(float64(step)))
		}
		tr.Positions[step] = snapshot
	}
	pred, err := DeadReckon(tr, 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	mean, err := MeanError(pred, tr, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Clamping can bite at the region edge; allow a small tolerance.
	if mean > 12 {
		t.Fatalf("mean prediction error %v on linear motion", mean)
	}
}

func TestPredictionBeatsFreezing(t *testing.T) {
	// Dead reckoning should not lose badly to the trivial "assume nobody
	// moves" predictor on RPGM motion (a weak but meaningful sanity bar:
	// squads do drift).
	tr := sampleTrace(t, 20)
	const observed, horizon = 10, 6
	pred, err := DeadReckon(tr, observed, horizon)
	if err != nil {
		t.Fatal(err)
	}
	predErr, err := MeanError(pred, tr, observed)
	if err != nil {
		t.Fatal(err)
	}
	frozen := &mobility.Trace{
		Positions:   make([][]geom.Point, horizon),
		GroupOf:     tr.GroupOf,
		StepSeconds: tr.StepSeconds,
	}
	for h := 0; h < horizon; h++ {
		frozen.Positions[h] = tr.Positions[observed-1]
	}
	frozenErr, err := MeanError(frozen, tr, observed)
	if err != nil {
		t.Fatal(err)
	}
	if predErr > 1.5*frozenErr {
		t.Fatalf("dead reckoning (%.1f m) much worse than freezing (%.1f m)", predErr, frozenErr)
	}
}

func TestMeanErrorValidation(t *testing.T) {
	tr := sampleTrace(t, 6)
	pred, err := DeadReckon(tr, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MeanError(pred, tr, 6); err == nil {
		t.Fatal("no-overlap accepted")
	}
}
