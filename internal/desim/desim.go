// Package desim is a discrete-event simulator for message delivery over
// the placed network: the temporal complement to internal/montecarlo's
// per-snapshot sampling.
//
// The paper's setting is data forwarding between important social pairs
// over unreliable multihop wireless links (§I, §III). desim plays that
// tape: flows emit messages periodically, each message is source-routed
// along the currently most reliable path (shortcuts included), and every
// hop succeeds or fails as an independent Bernoulli trial with the link's
// failure probability, with bounded per-hop retransmissions. On dynamic
// networks the topology provider swaps snapshots as simulated time
// advances, so routes degrade and recover exactly as squads move.
//
// The examples and the ext2 experiment use desim to show that a placement
// chosen by the MSC algorithms translates into measurably higher
// end-to-end delivery over a whole operation — not just a better static
// objective value.
package desim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"

	"msc/internal/failprob"
	"msc/internal/graph"
	"msc/internal/mobility"
	"msc/internal/netbuild"
	"msc/internal/pairs"
	"msc/internal/shortestpath"
	"msc/internal/xrand"
)

// TopologyProvider yields the communication graph at a simulated time.
// Implementations must return identical pointers for identical epochs so
// the simulator can cache routing state per topology.
type TopologyProvider interface {
	// TopologyAt returns the graph governing transmissions at time t
	// (seconds), plus an epoch id that changes iff the topology changes.
	TopologyAt(t float64) (g *graph.Graph, epoch int)
	// N returns the (constant) node count.
	N() int
}

// Static is a TopologyProvider for a fixed network.
type Static struct {
	G *graph.Graph
}

// TopologyAt returns the fixed graph with epoch 0.
func (s Static) TopologyAt(float64) (*graph.Graph, int) { return s.G, 0 }

// N returns the node count.
func (s Static) N() int { return s.G.N() }

// TraceProvider serves snapshots of a mobility trace, advancing every
// StepSeconds and clamping to the final snapshot.
type TraceProvider struct {
	graphs []*graph.Graph
	step   float64
}

// NewTraceProvider precomputes all snapshots of tr under the radio model.
func NewTraceProvider(tr *mobility.Trace, fm netbuild.FailureModel) (*TraceProvider, error) {
	graphs, err := tr.Snapshots(fm)
	if err != nil {
		return nil, err
	}
	step := tr.StepSeconds
	if step <= 0 {
		step = 1
	}
	return &TraceProvider{graphs: graphs, step: step}, nil
}

// TopologyAt returns the snapshot covering time t.
func (tp *TraceProvider) TopologyAt(t float64) (*graph.Graph, int) {
	idx := int(t / tp.step)
	if idx < 0 {
		idx = 0
	}
	if idx >= len(tp.graphs) {
		idx = len(tp.graphs) - 1
	}
	return tp.graphs[idx], idx
}

// N returns the node count.
func (tp *TraceProvider) N() int { return tp.graphs[0].N() }

// Flow is a periodic unicast traffic source between one social pair.
type Flow struct {
	Pair pairs.Pair
	// PeriodSeconds separates consecutive messages.
	PeriodSeconds float64
	// StartSeconds delays the first message.
	StartSeconds float64
}

// Config parameterizes a simulation run.
type Config struct {
	Topology TopologyProvider
	// Shortcuts are the placed reliable links (never fail).
	Shortcuts []graph.Edge
	Flows     []Flow
	// DurationSeconds ends the run; messages in flight at the end still
	// resolve.
	DurationSeconds float64
	// HopSeconds is the latency of one transmission attempt.
	HopSeconds float64
	// MaxRetries bounds retransmissions per hop before the message drops.
	MaxRetries int
	// Seed drives all randomness.
	Seed int64
}

// FlowStats aggregates one flow's outcomes.
type FlowStats struct {
	Flow       Flow
	Sent       int
	Delivered  int
	Dropped    int // hop exhausted retries
	Unroutable int // no path existed at send time
	// AvgLatencySeconds averages delivered messages' end-to-end latency.
	AvgLatencySeconds float64
	// DeliveryRatio = Delivered / Sent (0 when nothing sent).
	DeliveryRatio float64
}

// Result is the full simulation outcome.
type Result struct {
	PerFlow []FlowStats
	// Overall delivery ratio across flows.
	DeliveryRatio float64
}

// Errors returned by Run.
var (
	ErrNoFlows  = errors.New("desim: no traffic flows")
	ErrDuration = errors.New("desim: duration must be positive")
	ErrHop      = errors.New("desim: hop latency must be positive")
	ErrFlowSpec = errors.New("desim: flow period must be positive")
	ErrNoTopo   = errors.New("desim: nil topology provider")
)

// event is a scheduled simulator action.
type event struct {
	at  float64
	seq int64 // tie-breaker for determinism
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	x := old[n-1]
	*q = old[:n-1]
	return x
}

// sim is the run state.
type sim struct {
	cfg    Config
	rng    *xrand.Rand
	queue  eventQueue
	seq    int64
	now    float64
	routes *routeCache
	stats  []flowAccum
}

type flowAccum struct {
	sent, delivered, dropped, unroutable int
	latencySum                           float64
}

// routeCache memoizes per-epoch routing state: the distance table of the
// epoch's graph plus the shortcut overlay.
type routeCache struct {
	shortcuts []graph.Edge
	epoch     int
	table     *shortestpath.Table
	aug       *graph.Graph
}

func (rc *routeCache) routeFor(g *graph.Graph, epoch int, u, w graph.NodeID) []graph.NodeID {
	if rc.table == nil || epoch != rc.epoch {
		rc.epoch = epoch
		rc.table = shortestpath.NewTable(g, 0)
		b := graph.NewBuilder(g.N())
		for _, e := range g.Edges() {
			b.AddEdge(e.U, e.V, e.Length)
		}
		for _, f := range rc.shortcuts {
			b.AddEdge(f.U, f.V, 0)
		}
		aug, err := b.Build()
		if err != nil {
			// Inputs are valid graphs; this cannot happen.
			panic(err)
		}
		rc.aug = aug
	}
	_, parent := shortestpath.DijkstraWithParents(rc.aug, u)
	return shortestpath.PathTo(parent, u, w)
}

// Run executes the simulation to completion.
func Run(cfg Config) (Result, error) {
	switch {
	case cfg.Topology == nil:
		return Result{}, ErrNoTopo
	case len(cfg.Flows) == 0:
		return Result{}, ErrNoFlows
	case cfg.DurationSeconds <= 0:
		return Result{}, ErrDuration
	case cfg.HopSeconds <= 0:
		return Result{}, ErrHop
	}
	for _, f := range cfg.Flows {
		if f.PeriodSeconds <= 0 {
			return Result{}, fmt.Errorf("%w: %+v", ErrFlowSpec, f)
		}
	}
	s := &sim{
		cfg:    cfg,
		rng:    xrand.New(cfg.Seed),
		routes: &routeCache{shortcuts: cfg.Shortcuts, epoch: -1},
		stats:  make([]flowAccum, len(cfg.Flows)),
	}
	heap.Init(&s.queue)
	for i := range cfg.Flows {
		fi := i
		s.schedule(cfg.Flows[i].StartSeconds, func() { s.emit(fi) })
	}
	for s.queue.Len() > 0 {
		ev := heap.Pop(&s.queue).(*event)
		s.now = ev.at
		ev.fn()
	}
	return s.collect(), nil
}

func (s *sim) schedule(at float64, fn func()) {
	s.seq++
	heap.Push(&s.queue, &event{at: at, seq: s.seq, fn: fn})
}

// emit generates one message for flow fi and schedules the next emission.
func (s *sim) emit(fi int) {
	flow := s.cfg.Flows[fi]
	if s.now <= s.cfg.DurationSeconds {
		s.stats[fi].sent++
		g, epoch := s.cfg.Topology.TopologyAt(s.now)
		path := s.routes.routeFor(g, epoch, flow.Pair.U, flow.Pair.W)
		if path == nil {
			s.stats[fi].unroutable++
		} else {
			s.forward(fi, s.now, g, path, 0, 0)
		}
		if next := s.now + flow.PeriodSeconds; next <= s.cfg.DurationSeconds {
			s.schedule(next, func() { s.emit(fi) })
		}
	}
}

// forward attempts the hop path[hop] → path[hop+1] after the hop latency.
func (s *sim) forward(fi int, sentAt float64, g *graph.Graph, path []graph.NodeID, hop, attempt int) {
	if hop+1 >= len(path) {
		s.stats[fi].delivered++
		s.stats[fi].latencySum += s.now - sentAt
		return
	}
	s.schedule(s.now+s.cfg.HopSeconds, func() {
		u, v := path[hop], path[hop+1]
		if s.transmit(g, u, v) {
			s.forward(fi, sentAt, g, path, hop+1, 0)
			return
		}
		if attempt < s.cfg.MaxRetries {
			s.forward(fi, sentAt, g, path, hop, attempt+1)
			return
		}
		s.stats[fi].dropped++
	})
}

// transmit samples one transmission attempt on link (u, v). Shortcut hops
// always succeed; base links fail with their model probability.
func (s *sim) transmit(g *graph.Graph, u, v graph.NodeID) bool {
	for _, f := range s.cfg.Shortcuts {
		if (f.U == u && f.V == v) || (f.U == v && f.V == u) {
			return true
		}
	}
	l, ok := g.EdgeLength(u, v)
	if !ok {
		// The route was computed on this topology, so the link must
		// exist; a miss means the hop was a shortcut handled above.
		return false
	}
	return !s.rng.Bernoulli(failprob.ProbFromLength(l))
}

func (s *sim) collect() Result {
	res := Result{PerFlow: make([]FlowStats, len(s.stats))}
	totalSent, totalDelivered := 0, 0
	for i, acc := range s.stats {
		fs := FlowStats{
			Flow:       s.cfg.Flows[i],
			Sent:       acc.sent,
			Delivered:  acc.delivered,
			Dropped:    acc.dropped,
			Unroutable: acc.unroutable,
		}
		if acc.delivered > 0 {
			fs.AvgLatencySeconds = acc.latencySum / float64(acc.delivered)
		}
		if acc.sent > 0 {
			fs.DeliveryRatio = float64(acc.delivered) / float64(acc.sent)
		}
		res.PerFlow[i] = fs
		totalSent += acc.sent
		totalDelivered += acc.delivered
	}
	if totalSent > 0 {
		res.DeliveryRatio = float64(totalDelivered) / float64(totalSent)
	}
	return res
}

// PeriodicFlows builds one flow per pair with a shared period, staggering
// starts so emissions interleave deterministically.
func PeriodicFlows(ps []pairs.Pair, periodSeconds float64) []Flow {
	flows := make([]Flow, len(ps))
	for i, p := range ps {
		flows[i] = Flow{
			Pair:          p,
			PeriodSeconds: periodSeconds,
			StartSeconds:  periodSeconds * float64(i) / math.Max(1, float64(len(ps))),
		}
	}
	return flows
}
