package desim

import (
	"math"
	"testing"

	"msc/internal/failprob"
	"msc/internal/graph"
	"msc/internal/mobility"
	"msc/internal/netbuild"
	"msc/internal/pairs"
	"msc/internal/xrand"
)

func chain(t *testing.T, probs []float64) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(len(probs) + 1)
	for i, p := range probs {
		b.AddEdge(graph.NodeID(i), graph.NodeID(i+1), failprob.LengthFromProb(p))
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestDeliveryMatchesAnalyticNoRetries(t *testing.T) {
	// 2-hop chain at 30% per hop, no retries: delivery = 0.7² = 0.49.
	g := chain(t, []float64{0.3, 0.3})
	res, err := Run(Config{
		Topology:        Static{G: g},
		Flows:           []Flow{{Pair: pairs.New(0, 2), PeriodSeconds: 1}},
		DurationSeconds: 20000,
		HopSeconds:      0.01,
		MaxRetries:      0,
		Seed:            1,
	})
	if err != nil {
		t.Fatal(err)
	}
	fs := res.PerFlow[0]
	if fs.Sent < 19000 {
		t.Fatalf("sent = %d", fs.Sent)
	}
	if math.Abs(fs.DeliveryRatio-0.49) > 0.02 {
		t.Fatalf("delivery = %v, want ≈ 0.49", fs.DeliveryRatio)
	}
	if fs.Delivered+fs.Dropped+fs.Unroutable != fs.Sent {
		t.Fatalf("accounting broken: %+v", fs)
	}
	// Two hops at 0.01 s each: delivered latency ≥ 0.02 s.
	if fs.AvgLatencySeconds < 0.02-1e-9 {
		t.Fatalf("latency = %v", fs.AvgLatencySeconds)
	}
}

func TestRetriesImproveDelivery(t *testing.T) {
	g := chain(t, []float64{0.4, 0.4})
	run := func(retries int) float64 {
		res, err := Run(Config{
			Topology:        Static{G: g},
			Flows:           []Flow{{Pair: pairs.New(0, 2), PeriodSeconds: 1}},
			DurationSeconds: 10000,
			HopSeconds:      0.01,
			MaxRetries:      retries,
			Seed:            2,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.DeliveryRatio
	}
	r0, r2 := run(0), run(2)
	// With 2 retries per hop: per-hop success 1-0.4³ = 0.936 → ≈ 0.876.
	if r2 <= r0 {
		t.Fatalf("retries did not help: %v vs %v", r0, r2)
	}
	if math.Abs(r2-0.876) > 0.03 {
		t.Fatalf("r2 = %v, want ≈ 0.876", r2)
	}
}

func TestShortcutsDeliverPerfectly(t *testing.T) {
	g := chain(t, []float64{0.5, 0.5, 0.5})
	res, err := Run(Config{
		Topology:        Static{G: g},
		Shortcuts:       []graph.Edge{{U: 0, V: 3}},
		Flows:           []Flow{{Pair: pairs.New(0, 3), PeriodSeconds: 1}},
		DurationSeconds: 500,
		HopSeconds:      0.01,
		Seed:            3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.DeliveryRatio != 1 {
		t.Fatalf("shortcut delivery = %v, want 1", res.DeliveryRatio)
	}
	// One hop only.
	if res.PerFlow[0].AvgLatencySeconds > 0.011 {
		t.Fatalf("latency = %v", res.PerFlow[0].AvgLatencySeconds)
	}
}

func TestUnroutableCounted(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1, failprob.LengthFromProb(0.1))
	b.AddEdge(2, 3, failprob.LengthFromProb(0.1))
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Topology:        Static{G: g},
		Flows:           []Flow{{Pair: pairs.New(0, 3), PeriodSeconds: 1}},
		DurationSeconds: 10,
		HopSeconds:      0.01,
		Seed:            4,
	})
	if err != nil {
		t.Fatal(err)
	}
	fs := res.PerFlow[0]
	if fs.Unroutable != fs.Sent || fs.Delivered != 0 {
		t.Fatalf("disconnected pair stats: %+v", fs)
	}
}

func TestConfigValidation(t *testing.T) {
	g := chain(t, []float64{0.1})
	valid := Config{
		Topology:        Static{G: g},
		Flows:           []Flow{{Pair: pairs.New(0, 1), PeriodSeconds: 1}},
		DurationSeconds: 1,
		HopSeconds:      0.01,
	}
	cases := []func(Config) Config{
		func(c Config) Config { c.Topology = nil; return c },
		func(c Config) Config { c.Flows = nil; return c },
		func(c Config) Config { c.DurationSeconds = 0; return c },
		func(c Config) Config { c.HopSeconds = 0; return c },
		func(c Config) Config { c.Flows = []Flow{{Pair: pairs.New(0, 1)}}; return c },
	}
	for i, mod := range cases {
		if _, err := Run(mod(valid)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	if _, err := Run(valid); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestDeterministicRuns(t *testing.T) {
	g := chain(t, []float64{0.3, 0.3})
	cfg := Config{
		Topology:        Static{G: g},
		Flows:           PeriodicFlows([]pairs.Pair{pairs.New(0, 2), pairs.New(1, 2)}, 1),
		DurationSeconds: 200,
		HopSeconds:      0.01,
		MaxRetries:      1,
		Seed:            7,
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.PerFlow {
		if a.PerFlow[i] != b.PerFlow[i] {
			t.Fatalf("nondeterministic flow %d: %+v vs %+v", i, a.PerFlow[i], b.PerFlow[i])
		}
	}
}

func TestTraceProviderSwitchesTopologies(t *testing.T) {
	cfg := mobility.DefaultConfig()
	cfg.Nodes = 20
	cfg.Groups = 4
	cfg.Steps = 5
	tr, err := mobility.Generate(cfg, xrand.New(11))
	if err != nil {
		t.Fatal(err)
	}
	fm := netbuild.FailureModel{Radius: 900, FailureAtRadius: 0.2}
	tp, err := NewTraceProvider(tr, fm)
	if err != nil {
		t.Fatal(err)
	}
	if tp.N() != 20 {
		t.Fatalf("N = %d", tp.N())
	}
	_, e0 := tp.TopologyAt(0)
	_, e1 := tp.TopologyAt(cfg.StepSeconds * 1.5)
	if e0 == e1 {
		t.Fatal("epoch did not advance with time")
	}
	// Clamps beyond the trace end.
	_, eEnd := tp.TopologyAt(1e9)
	if eEnd != cfg.Steps-1 {
		t.Fatalf("end epoch = %d", eEnd)
	}
	// A full simulation across topology switches runs clean.
	res, err := Run(Config{
		Topology:        tp,
		Flows:           PeriodicFlows([]pairs.Pair{pairs.New(0, 19)}, 7),
		DurationSeconds: cfg.StepSeconds * float64(cfg.Steps),
		HopSeconds:      0.05,
		MaxRetries:      1,
		Seed:            13,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.PerFlow[0].Sent == 0 {
		t.Fatal("nothing sent")
	}
}

func TestPeriodicFlowsStagger(t *testing.T) {
	flows := PeriodicFlows([]pairs.Pair{pairs.New(0, 1), pairs.New(1, 2), pairs.New(0, 2)}, 3)
	if len(flows) != 3 {
		t.Fatalf("flows = %d", len(flows))
	}
	seen := map[float64]bool{}
	for _, f := range flows {
		if f.PeriodSeconds != 3 {
			t.Fatalf("period = %v", f.PeriodSeconds)
		}
		if seen[f.StartSeconds] {
			t.Fatalf("starts collide: %v", f.StartSeconds)
		}
		seen[f.StartSeconds] = true
	}
}
