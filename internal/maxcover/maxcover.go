// Package maxcover solves the (weighted) maximum coverage problem with the
// classic greedy algorithm, optionally with lazy (CELF-style) marginal
// evaluation.
//
// Maximum coverage is the combinatorial core of two pieces of the paper:
// the MSC-CN special case reduces to it exactly (§IV, Theorem 1), and the
// upper-bound function ν is a weighted coverage function (§V-B2). Greedy
// achieves the optimal (1 − 1/e) approximation ratio for this problem.
package maxcover

import (
	"container/heap"

	"msc/internal/bitset"
)

// Problem is a weighted maximum coverage instance: a universe of elements
// 0..U-1 with non-negative weights, and a family of candidate sets. Select
// at most K sets maximizing the total weight of covered elements.
type Problem struct {
	// Weights holds one non-negative weight per universe element. A nil
	// Weights means all elements weigh 1 (unweighted coverage).
	Weights []float64
	// Sets is the candidate family; every set must share the same universe
	// size.
	Sets []*bitset.Set
	// Initial holds elements covered before any selection (e.g. social
	// pairs already satisfied by the raw network). Marginal gains are
	// computed against it. May be nil.
	Initial *bitset.Set
	// K is the selection budget.
	K int
}

// Result reports a greedy run.
type Result struct {
	// Chosen holds the indices into Problem.Sets in selection order. It may
	// be shorter than K when coverage saturates early (remaining marginal
	// gains are all zero).
	Chosen []int
	// Covered is the union of the chosen sets and Problem.Initial.
	Covered *bitset.Set
	// Value is the total weight gained by the selection, excluding
	// elements already covered by Problem.Initial.
	Value float64
	// Gains[i] is the marginal gain achieved by the i-th selection.
	Gains []float64
}

// Greedy runs the plain greedy algorithm: at each round select the set with
// the maximum marginal covered weight. Ties break toward the lowest set
// index, making the run deterministic. Zero-gain selections are skipped, so
// the result may use fewer than K sets.
func Greedy(p Problem) Result {
	covered := initialCovered(p)
	res := Result{Covered: covered}
	for len(res.Chosen) < p.K {
		bestIdx, bestGain := -1, 0.0
		for i, s := range p.Sets {
			g := marginal(p.Weights, covered, s)
			if g > bestGain {
				bestIdx, bestGain = i, g
			}
		}
		if bestIdx < 0 {
			break
		}
		covered.UnionWith(p.Sets[bestIdx])
		res.Chosen = append(res.Chosen, bestIdx)
		res.Gains = append(res.Gains, bestGain)
		res.Value += bestGain
	}
	return res
}

// LazyGreedy runs the CELF lazy-greedy algorithm, which exploits the
// submodularity of coverage: a set's marginal gain can only shrink as the
// covered region grows, so stale heap keys are upper bounds. It returns the
// same selection as Greedy (identical tie-breaking) but evaluates far fewer
// marginals on large families.
func LazyGreedy(p Problem) Result {
	covered := initialCovered(p)
	res := Result{Covered: covered}
	pq := make(lazyQueue, 0, len(p.Sets))
	for i, s := range p.Sets {
		g := marginal(p.Weights, covered, s)
		if g > 0 {
			pq = append(pq, lazyEntry{idx: i, gain: g, round: 0})
		}
	}
	heap.Init(&pq)
	round := 0
	for len(res.Chosen) < p.K && pq.Len() > 0 {
		top := pq[0]
		if top.round == round {
			heap.Pop(&pq)
			if top.gain <= 0 {
				break
			}
			covered.UnionWith(p.Sets[top.idx])
			res.Chosen = append(res.Chosen, top.idx)
			res.Gains = append(res.Gains, top.gain)
			res.Value += top.gain
			round++
			continue
		}
		// Stale bound: re-evaluate against the current covered set and
		// push back.
		top.gain = marginal(p.Weights, covered, p.Sets[top.idx])
		top.round = round
		if top.gain <= 0 {
			heap.Pop(&pq)
			continue
		}
		pq[0] = top
		heap.Fix(&pq, 0)
	}
	return res
}

// Oracle adapts a coverage instance to the incremental marginal-gain shape
// internal/submodular's greedy drivers consume (structurally, without an
// import): Gain reports a set's marginal covered weight against the running
// cover, Accept commits the set. It powers the budgeted μ/ν sandwich arms,
// which run submodular.WeightedGreedy over coverage instances whose K no
// longer applies.
type Oracle struct {
	p       Problem
	covered *bitset.Set
}

// NewOracle returns an oracle positioned at the instance's initial cover.
func NewOracle(p Problem) *Oracle {
	return &Oracle{p: p, covered: initialCovered(p)}
}

// Gain returns the marginal covered weight of set e.
func (o *Oracle) Gain(e int) float64 { return marginal(o.p.Weights, o.covered, o.p.Sets[e]) }

// Accept commits set e into the running cover.
func (o *Oracle) Accept(e int) { o.covered.UnionWith(o.p.Sets[e]) }

func universeSize(p Problem) int {
	if len(p.Sets) > 0 {
		return p.Sets[0].Len()
	}
	if p.Initial != nil {
		return p.Initial.Len()
	}
	return len(p.Weights)
}

func initialCovered(p Problem) *bitset.Set {
	if p.Initial != nil {
		return p.Initial.Clone()
	}
	return bitset.New(universeSize(p))
}

// marginal returns the weight of elements in s not yet covered.
func marginal(weights []float64, covered, s *bitset.Set) float64 {
	if weights == nil {
		return float64(covered.AndNotCount(s))
	}
	gain := 0.0
	s.ForEach(func(i int) {
		if !covered.Contains(i) {
			gain += weights[i]
		}
	})
	return gain
}

// lazyEntry is a heap entry carrying a possibly-stale marginal gain.
type lazyEntry struct {
	idx   int
	gain  float64
	round int
}

// lazyQueue is a max-heap on gain with ties broken toward lower set index,
// matching plain Greedy's determinism.
type lazyQueue []lazyEntry

func (q lazyQueue) Len() int { return len(q) }
func (q lazyQueue) Less(i, j int) bool {
	if q[i].gain != q[j].gain {
		return q[i].gain > q[j].gain
	}
	return q[i].idx < q[j].idx
}
func (q lazyQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *lazyQueue) Push(x interface{}) { *q = append(*q, x.(lazyEntry)) }
func (q *lazyQueue) Pop() interface{} {
	old := *q
	n := len(old)
	x := old[n-1]
	*q = old[:n-1]
	return x
}
