package maxcover

import (
	"testing"
	"testing/quick"

	"msc/internal/bitset"
	"msc/internal/xrand"
)

func sets(universe int, families ...[]int) []*bitset.Set {
	out := make([]*bitset.Set, len(families))
	for i, f := range families {
		out[i] = bitset.FromIndices(universe, f)
	}
	return out
}

func TestGreedyPicksCoverOptimally(t *testing.T) {
	// Classic instance: greedy must take the big set then patch the rest.
	p := Problem{
		Sets: sets(6,
			[]int{0, 1, 2, 3}, // big
			[]int{0, 1},
			[]int{4, 5},
			[]int{3, 4},
		),
		K: 2,
	}
	res := Greedy(p)
	if res.Value != 6 {
		t.Fatalf("value = %v, want 6", res.Value)
	}
	if len(res.Chosen) != 2 || res.Chosen[0] != 0 || res.Chosen[1] != 2 {
		t.Fatalf("chosen = %v", res.Chosen)
	}
	if res.Covered.Count() != 6 {
		t.Fatalf("covered = %d", res.Covered.Count())
	}
	if len(res.Gains) != 2 || res.Gains[0] != 4 || res.Gains[1] != 2 {
		t.Fatalf("gains = %v", res.Gains)
	}
}

func TestGreedyStopsAtZeroGain(t *testing.T) {
	p := Problem{
		Sets: sets(3, []int{0, 1, 2}, []int{0}, []int{1}),
		K:    3,
	}
	res := Greedy(p)
	if len(res.Chosen) != 1 {
		t.Fatalf("chosen = %v, want single saturating set", res.Chosen)
	}
}

func TestWeightedGreedy(t *testing.T) {
	// Element 2 is heavy; a small set covering it must win.
	p := Problem{
		Weights: []float64{1, 1, 10},
		Sets:    sets(3, []int{0, 1}, []int{2}),
		K:       1,
	}
	res := Greedy(p)
	if len(res.Chosen) != 1 || res.Chosen[0] != 1 {
		t.Fatalf("chosen = %v", res.Chosen)
	}
	if res.Value != 10 {
		t.Fatalf("value = %v", res.Value)
	}
}

func TestInitialCoverage(t *testing.T) {
	initial := bitset.FromIndices(4, []int{0, 1})
	p := Problem{
		Sets:    sets(4, []int{0, 1}, []int{2}),
		Initial: initial,
		K:       2,
	}
	res := Greedy(p)
	// Set 0 has zero marginal gain (already covered); set 1 gains 1.
	if len(res.Chosen) != 1 || res.Chosen[0] != 1 {
		t.Fatalf("chosen = %v", res.Chosen)
	}
	if res.Value != 1 {
		t.Fatalf("value = %v", res.Value)
	}
	if res.Covered.Count() != 3 {
		t.Fatalf("covered = %d (initial ∪ chosen)", res.Covered.Count())
	}
	// The caller's Initial set must not be mutated.
	if initial.Count() != 2 {
		t.Fatal("Initial mutated")
	}
}

func TestTieBreakLowestIndex(t *testing.T) {
	p := Problem{
		Sets: sets(2, []int{0}, []int{1}, []int{0, 1}),
		K:    1,
	}
	res := Greedy(p)
	if res.Chosen[0] != 2 {
		t.Fatalf("chosen = %v (set 2 has gain 2)", res.Chosen)
	}
	p2 := Problem{Sets: sets(2, []int{0}, []int{1}), K: 1}
	if got := Greedy(p2).Chosen[0]; got != 0 {
		t.Fatalf("tie broke to %d, want 0", got)
	}
}

func TestEmptyProblem(t *testing.T) {
	res := Greedy(Problem{K: 3})
	if len(res.Chosen) != 0 || res.Value != 0 {
		t.Fatalf("empty problem result: %+v", res)
	}
	res = LazyGreedy(Problem{K: 3, Weights: []float64{1, 2}})
	if len(res.Chosen) != 0 {
		t.Fatalf("lazy empty problem chose %v", res.Chosen)
	}
}

// Property: LazyGreedy returns exactly Greedy's selection (CELF exactness
// under submodularity) on random weighted instances.
func TestQuickLazyMatchesPlain(t *testing.T) {
	rng := xrand.New(77)
	f := func(seed int64) bool {
		r := xrand.New(seed)
		universe := 5 + r.Intn(60)
		numSets := 1 + r.Intn(40)
		k := 1 + r.Intn(8)
		ss := make([]*bitset.Set, numSets)
		for i := range ss {
			s := bitset.New(universe)
			for e := 0; e < universe; e++ {
				if r.Bernoulli(0.2) {
					s.Add(e)
				}
			}
			ss[i] = s
		}
		var weights []float64
		if r.Bernoulli(0.5) {
			weights = make([]float64, universe)
			for i := range weights {
				weights[i] = r.Float64() * 10
			}
		}
		var initial *bitset.Set
		if r.Bernoulli(0.3) {
			initial = bitset.New(universe)
			for e := 0; e < universe; e++ {
				if r.Bernoulli(0.1) {
					initial.Add(e)
				}
			}
		}
		p := Problem{Weights: weights, Sets: ss, Initial: initial, K: k}
		a := Greedy(p)
		b := LazyGreedy(p)
		if len(a.Chosen) != len(b.Chosen) {
			return false
		}
		for i := range a.Chosen {
			if a.Chosen[i] != b.Chosen[i] {
				return false
			}
		}
		return a.Value == b.Value
	}
	// Drive seeds from a fixed stream for reproducibility.
	for i := 0; i < 150; i++ {
		if !f(rng.Int63()) {
			t.Fatalf("lazy/plain divergence at case %d", i)
		}
	}
	// And a few from testing/quick's own generator.
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: greedy achieves ≥ (1 − 1/e) of the exhaustive optimum.
func TestQuickGreedyApproximation(t *testing.T) {
	rng := xrand.New(88)
	for trial := 0; trial < 60; trial++ {
		universe := 4 + rng.Intn(10)
		numSets := 2 + rng.Intn(8)
		k := 1 + rng.Intn(3)
		ss := make([]*bitset.Set, numSets)
		for i := range ss {
			s := bitset.New(universe)
			for e := 0; e < universe; e++ {
				if rng.Bernoulli(0.3) {
					s.Add(e)
				}
			}
			ss[i] = s
		}
		p := Problem{Sets: ss, K: k}
		res := Greedy(p)
		opt := exhaustiveOpt(p)
		if res.Value < 0.632*opt-1e-9 {
			t.Fatalf("trial %d: greedy %v < 0.632 × opt %v", trial, res.Value, opt)
		}
	}
}

func exhaustiveOpt(p Problem) float64 {
	best := 0.0
	n := len(p.Sets)
	var rec func(start int, chosen []int)
	rec = func(start int, chosen []int) {
		if len(chosen) > 0 {
			cov := bitset.New(p.Sets[0].Len())
			for _, c := range chosen {
				cov.UnionWith(p.Sets[c])
			}
			if v := float64(cov.Count()); v > best {
				best = v
			}
		}
		if len(chosen) == p.K {
			return
		}
		for i := start; i < n; i++ {
			rec(i+1, append(chosen, i))
		}
	}
	rec(0, nil)
	return best
}
