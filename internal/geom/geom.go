// Package geom provides the 2-D geometry primitives used by the dataset
// generators: points, Euclidean distances, bounding boxes, and a uniform
// grid index for radius queries.
//
// The paper's synthetic workload places nodes uniformly in a unit square and
// connects nodes within a radius (a Random Geometric Graph); the Gowalla
// workload connects check-ins within 200 m. Both reduce to "find all pairs
// within distance r", which the grid index answers in near-linear time.
package geom

import (
	"fmt"
	"math"
)

// Point is a position in the plane.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return math.Hypot(dx, dy)
}

// Dist2 returns the squared Euclidean distance between p and q. Prefer it
// for comparisons to avoid the square root.
func (p Point) Dist2(q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return dx*dx + dy*dy
}

// Add returns p + q componentwise.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q componentwise.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Norm returns the Euclidean norm of p viewed as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// String renders the point with three decimals, e.g. "(0.250, 0.750)".
func (p Point) String() string {
	return fmt.Sprintf("(%.3f, %.3f)", p.X, p.Y)
}

// Rect is an axis-aligned rectangle [MinX, MaxX] × [MinY, MaxY].
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// UnitSquare is the [0,1]² region used by the RGG generator.
var UnitSquare = Rect{0, 0, 1, 1}

// Width returns MaxX - MinX.
func (r Rect) Width() float64 { return r.MaxX - r.MinX }

// Height returns MaxY - MinY.
func (r Rect) Height() float64 { return r.MaxY - r.MinY }

// Contains reports whether p lies inside r (inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// Clamp returns p constrained to lie inside r.
func (r Rect) Clamp(p Point) Point {
	return Point{
		X: math.Min(math.Max(p.X, r.MinX), r.MaxX),
		Y: math.Min(math.Max(p.Y, r.MinY), r.MaxY),
	}
}

// BoundingBox returns the smallest Rect containing all points. It panics on
// an empty slice.
func BoundingBox(pts []Point) Rect {
	if len(pts) == 0 {
		panic("geom: BoundingBox of empty point set")
	}
	r := Rect{pts[0].X, pts[0].Y, pts[0].X, pts[0].Y}
	for _, p := range pts[1:] {
		r.MinX = math.Min(r.MinX, p.X)
		r.MinY = math.Min(r.MinY, p.Y)
		r.MaxX = math.Max(r.MaxX, p.X)
		r.MaxY = math.Max(r.MaxY, p.Y)
	}
	return r
}
