package geom

import (
	"math"
	"testing"
	"testing/quick"

	"msc/internal/xrand"
)

func TestPointOps(t *testing.T) {
	p := Point{X: 3, Y: 4}
	q := Point{X: 0, Y: 0}
	if d := p.Dist(q); d != 5 {
		t.Fatalf("Dist = %v, want 5", d)
	}
	if d2 := p.Dist2(q); d2 != 25 {
		t.Fatalf("Dist2 = %v, want 25", d2)
	}
	if got := p.Add(q); got != p {
		t.Fatalf("Add identity failed: %v", got)
	}
	if got := p.Sub(p); got != (Point{}) {
		t.Fatalf("Sub self = %v", got)
	}
	if got := p.Scale(2); got != (Point{X: 6, Y: 8}) {
		t.Fatalf("Scale = %v", got)
	}
	if n := p.Norm(); n != 5 {
		t.Fatalf("Norm = %v", n)
	}
	if s := p.String(); s != "(3.000, 4.000)" {
		t.Fatalf("String = %q", s)
	}
}

func TestRect(t *testing.T) {
	r := Rect{MinX: 0, MinY: 0, MaxX: 2, MaxY: 1}
	if r.Width() != 2 || r.Height() != 1 {
		t.Fatal("width/height wrong")
	}
	if !r.Contains(Point{X: 1, Y: 0.5}) || r.Contains(Point{X: 3, Y: 0.5}) {
		t.Fatal("Contains wrong")
	}
	if got := r.Clamp(Point{X: -1, Y: 5}); got != (Point{X: 0, Y: 1}) {
		t.Fatalf("Clamp = %v", got)
	}
}

func TestBoundingBox(t *testing.T) {
	pts := []Point{{1, 2}, {-1, 5}, {3, 0}}
	bb := BoundingBox(pts)
	want := Rect{MinX: -1, MinY: 0, MaxX: 3, MaxY: 5}
	if bb != want {
		t.Fatalf("BoundingBox = %v, want %v", bb, want)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on empty slice")
		}
	}()
	BoundingBox(nil)
}

func TestGridNeighborsMatchesBruteForce(t *testing.T) {
	rng := xrand.New(9)
	for trial := 0; trial < 10; trial++ {
		n := 50 + rng.Intn(100)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{X: rng.Float64(), Y: rng.Float64()}
		}
		radius := 0.05 + rng.Float64()*0.15
		g := NewGrid(pts, radius)
		for i := 0; i < n; i += 7 {
			got := map[int]bool{}
			g.Neighbors(i, radius, func(j int) { got[j] = true })
			for j := range pts {
				want := j != i && pts[i].Dist(pts[j]) <= radius
				if got[j] != want {
					t.Fatalf("trial %d: neighbor(%d, %d) = %v, want %v", trial, i, j, got[j], want)
				}
			}
		}
	}
}

func TestGridPairsWithinMatchesBruteForce(t *testing.T) {
	rng := xrand.New(10)
	pts := make([]Point, 120)
	for i := range pts {
		pts[i] = Point{X: rng.Float64(), Y: rng.Float64()}
	}
	const radius = 0.12
	g := NewGrid(pts, radius)
	type pair struct{ i, j int }
	got := map[pair]float64{}
	g.PairsWithin(radius, func(i, j int, dist float64) {
		if i >= j {
			t.Fatalf("pair not canonical: (%d, %d)", i, j)
		}
		if _, dup := got[pair{i, j}]; dup {
			t.Fatalf("duplicate pair (%d, %d)", i, j)
		}
		got[pair{i, j}] = dist
	})
	count := 0
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			d := pts[i].Dist(pts[j])
			if d <= radius {
				count++
				gd, ok := got[pair{i, j}]
				if !ok {
					t.Fatalf("missing pair (%d, %d)", i, j)
				}
				if math.Abs(gd-d) > 1e-12 {
					t.Fatalf("distance mismatch for (%d, %d): %v vs %v", i, j, gd, d)
				}
			}
		}
	}
	if count != len(got) {
		t.Fatalf("pair count %d, want %d", len(got), count)
	}
}

func TestGridRadiusTooLargePanics(t *testing.T) {
	g := NewGrid([]Point{{0, 0}, {1, 1}}, 0.1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.PairsWithin(0.2, func(i, j int, d float64) {})
}

func TestGridInvalidConstruction(t *testing.T) {
	for _, fn := range []func(){
		func() { NewGrid(nil, 1) },
		func() { NewGrid([]Point{{0, 0}}, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

// Property: distance is symmetric and satisfies the triangle inequality.
func TestQuickMetricProperties(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		a := Point{X: math.Mod(ax, 1e6), Y: math.Mod(ay, 1e6)}
		b := Point{X: math.Mod(bx, 1e6), Y: math.Mod(by, 1e6)}
		c := Point{X: math.Mod(cx, 1e6), Y: math.Mod(cy, 1e6)}
		if math.Abs(a.Dist(b)-b.Dist(a)) > 1e-9 {
			return false
		}
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
