package geom

import "math"

// Grid is a uniform spatial hash over a point set, supporting "all pairs
// within radius" queries in expected O(n + pairs) for points with bounded
// local density.
type Grid struct {
	cell   float64
	minX   float64
	minY   float64
	cols   int
	rows   int
	bucket map[int][]int32
	pts    []Point
}

// NewGrid indexes pts with the given cell size. Cell size should be the
// query radius (so a radius query only inspects the 3×3 neighborhood).
// It panics if cell <= 0 or pts is empty.
func NewGrid(pts []Point, cell float64) *Grid {
	if cell <= 0 {
		panic("geom: grid cell size must be positive")
	}
	if len(pts) == 0 {
		panic("geom: grid over empty point set")
	}
	bb := BoundingBox(pts)
	cols := int(bb.Width()/cell) + 1
	rows := int(bb.Height()/cell) + 1
	g := &Grid{
		cell:   cell,
		minX:   bb.MinX,
		minY:   bb.MinY,
		cols:   cols,
		rows:   rows,
		bucket: make(map[int][]int32, len(pts)),
		pts:    pts,
	}
	for i, p := range pts {
		key := g.key(p)
		g.bucket[key] = append(g.bucket[key], int32(i))
	}
	return g
}

func (g *Grid) key(p Point) int {
	cx := int((p.X - g.minX) / g.cell)
	cy := int((p.Y - g.minY) / g.cell)
	return cy*g.cols + cx
}

// Neighbors calls fn(j) for every indexed point j ≠ i within radius r of
// point i. r must be ≤ the cell size used at construction, otherwise
// results are incomplete (the method panics to prevent silent misuse).
func (g *Grid) Neighbors(i int, r float64, fn func(j int)) {
	if r > g.cell {
		panic("geom: query radius exceeds grid cell size")
	}
	p := g.pts[i]
	cx := int((p.X - g.minX) / g.cell)
	cy := int((p.Y - g.minY) / g.cell)
	r2 := r * r
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			nx, ny := cx+dx, cy+dy
			if nx < 0 || ny < 0 || nx >= g.cols || ny >= g.rows {
				continue
			}
			for _, j := range g.bucket[ny*g.cols+nx] {
				if int(j) == i {
					continue
				}
				if p.Dist2(g.pts[j]) <= r2 {
					fn(int(j))
				}
			}
		}
	}
}

// PairsWithin calls fn(i, j, dist) once per unordered pair {i, j} with
// distance ≤ r. r must be ≤ the cell size used at construction.
func (g *Grid) PairsWithin(r float64, fn func(i, j int, dist float64)) {
	if r > g.cell {
		panic("geom: query radius exceeds grid cell size")
	}
	r2 := r * r
	for i := range g.pts {
		p := g.pts[i]
		cx := int((p.X - g.minX) / g.cell)
		cy := int((p.Y - g.minY) / g.cell)
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				nx, ny := cx+dx, cy+dy
				if nx < 0 || ny < 0 || nx >= g.cols || ny >= g.rows {
					continue
				}
				for _, j32 := range g.bucket[ny*g.cols+nx] {
					j := int(j32)
					if j <= i {
						continue
					}
					if d2 := p.Dist2(g.pts[j]); d2 <= r2 {
						fn(i, j, math.Sqrt(d2))
					}
				}
			}
		}
	}
}
