// Package submodular provides a generic greedy maximizer for monotone set
// functions under a cardinality constraint, plus exhaustive property
// checkers used by the test suite to verify the paper's structural claims
// (μ and ν are submodular, σ in general is not — §IV-B, §V-A, §V-B).
//
// When the objective is monotone submodular, Greedy achieves the (1 − 1/e)
// approximation of Nemhauser–Wolsey–Fisher; LazyGreedy returns the identical
// selection while skipping re-evaluations whose stale upper bound cannot
// win. For non-submodular objectives (σ), Greedy is still well-defined —
// it is exactly the "greedy on σ" arm of the sandwich algorithm — but
// LazyGreedy must not be used, since stale bounds are no longer valid.
package submodular

import (
	"container/heap"
	"sort"
)

// Value evaluates a set function on a selection of ground-set elements.
// Implementations must be deterministic and treat the selection as a set
// (order-insensitive).
type Value func(selection []int) float64

// Marginal evaluates the gain of adding element e to the current selection.
// The current selection is passed for context; implementations typically
// maintain incremental state via the Accept callback of Greedy instead.
type Marginal func(current []int, e int) float64

// Oracle is the incremental interface the greedy maximizers drive. It
// avoids recomputing the full objective from scratch at every probe.
type Oracle interface {
	// Gain returns f(S ∪ {e}) − f(S) for the oracle's current S.
	Gain(e int) float64
	// Accept commits element e into S.
	Accept(e int)
}

// funcOracle adapts a plain Value function into an Oracle, recomputing from
// scratch. Fine for tests and small ground sets.
type funcOracle struct {
	f   Value
	cur []int
	val float64
}

// NewFuncOracle wraps a Value function as an Oracle with empty initial
// selection.
func NewFuncOracle(f Value) Oracle {
	return &funcOracle{f: f, val: f(nil)}
}

func (o *funcOracle) Gain(e int) float64 {
	return o.f(append(append([]int(nil), o.cur...), e)) - o.val
}

func (o *funcOracle) Accept(e int) {
	o.cur = append(o.cur, e)
	o.val = o.f(o.cur)
}

// Greedy selects up to k elements from the ground set [0, n) maximizing the
// oracle's objective, stopping early when every remaining marginal gain is
// ≤ 0. Ties break toward the smallest element, making runs deterministic.
func Greedy(n, k int, o Oracle) []int {
	var sel []int
	for len(sel) < k {
		bestE, bestGain := -1, 0.0
		for e := 0; e < n; e++ {
			if contains(sel, e) {
				continue
			}
			if g := o.Gain(e); g > bestGain {
				bestE, bestGain = e, g
			}
		}
		if bestE < 0 {
			break
		}
		o.Accept(bestE)
		sel = append(sel, bestE)
	}
	return sel
}

// WeightedGreedy selects elements from the ground set [0, n) under a
// knapsack budget: each element e has a positive price cost(e), and the
// selection's total price must stay within budget. Each round adds the
// affordable element maximizing the cost-benefit ratio gain/cost (ties
// toward the larger gain, then the smallest element), stopping when no
// affordable element has positive gain.
//
// The ratio greedy alone carries no constant-factor guarantee — a cheap
// mediocre element can crowd out a single expensive excellent one — so
// WeightedGreedy also tracks the best affordable singleton from the first
// round's probes and returns it instead when its gain beats the greedy
// prefix's total. For monotone submodular f this "modified greedy" is a
// ½(1 − 1/e) approximation (Khuller–Moss–Naor); naive weighted-greedy
// ratio arguments without the fallback are known to fail (cf. Ren & Zhao
// on connected set cover).
//
// Elements priced at +Inf are never affordable; NaN and non-positive
// prices are the caller's bug (core.NewInstance rejects them up front).
// With every cost(e) == 1 and budget == k, WeightedGreedy selects exactly
// what Greedy(n, k, o) selects: the first-round ratio argmax is the gain
// argmax with identical tie-breaking, and the fallback singleton is the
// first pick, which monotonicity keeps from overtaking the prefix.
func WeightedGreedy(n int, budget float64, cost func(int) float64, o Oracle) []int {
	var sel []int
	selected := make([]bool, n)
	rem := budget
	singleE, singleGain := -1, 0.0
	greedyTotal := 0.0
	for round := 0; ; round++ {
		bestE, bestGain, bestCost := -1, 0.0, 0.0
		for e := 0; e < n; e++ {
			if selected[e] {
				continue
			}
			g := o.Gain(e)
			if g <= 0 {
				continue
			}
			c := cost(e)
			if round == 0 && c <= budget && g > singleGain {
				singleE, singleGain = e, g
			}
			if c > rem {
				continue
			}
			if bestE < 0 {
				bestE, bestGain, bestCost = e, g, c
				continue
			}
			// gain/cost comparison, cross-multiplied to avoid division.
			l, r := g*bestCost, bestGain*c
			if l > r || (l == r && g > bestGain) {
				bestE, bestGain, bestCost = e, g, c
			}
		}
		if bestE < 0 {
			break
		}
		o.Accept(bestE)
		selected[bestE] = true
		sel = append(sel, bestE)
		rem -= bestCost
		greedyTotal += bestGain
	}
	if singleE >= 0 && singleGain > greedyTotal {
		return []int{singleE}
	}
	return sel
}

// LazyGreedy is CELF lazy greedy: valid only for submodular objectives,
// where a stale marginal gain upper-bounds the true one. Identical output
// to Greedy under submodularity.
func LazyGreedy(n, k int, o Oracle) []int {
	pq := make(gainQueue, 0, n)
	for e := 0; e < n; e++ {
		if g := o.Gain(e); g > 0 {
			pq = append(pq, gainEntry{e: e, gain: g, round: 0})
		}
	}
	heap.Init(&pq)
	var sel []int
	round := 0
	for len(sel) < k && pq.Len() > 0 {
		top := pq[0]
		if top.round == round {
			heap.Pop(&pq)
			if top.gain <= 0 {
				break
			}
			o.Accept(top.e)
			sel = append(sel, top.e)
			round++
			continue
		}
		top.gain = o.Gain(top.e)
		top.round = round
		if top.gain <= 0 {
			heap.Pop(&pq)
			continue
		}
		pq[0] = top
		heap.Fix(&pq, 0)
	}
	return sel
}

// IsMonotone exhaustively checks f(X) ≤ f(Y) for all X ⊆ Y over the ground
// set [0, n). Exponential; for test-sized n only (n ≤ ~12).
func IsMonotone(n int, f Value) bool {
	subsets := enumerate(n)
	vals := make([]float64, len(subsets))
	for i, s := range subsets {
		vals[i] = f(s)
	}
	for xi, x := range subsets {
		for yi, y := range subsets {
			if isSubset(xi, yi) && vals[xi] > vals[yi]+1e-12 {
				_ = x
				_ = y
				return false
			}
		}
	}
	return true
}

// IsSubmodular exhaustively checks the diminishing-returns inequality
// f(X ∪ {e}) − f(X) ≥ f(Y ∪ {e}) − f(Y) for all X ⊆ Y and e ∉ Y over the
// ground set [0, n). Exponential; for test-sized n only. It returns a
// witness violating the inequality when one exists.
func IsSubmodular(n int, f Value) (ok bool, witness *Violation) {
	subsets := enumerate(n)
	vals := make([]float64, len(subsets))
	for i, s := range subsets {
		vals[i] = f(s)
	}
	for xi := range subsets {
		for yi := range subsets {
			if !isSubset(xi, yi) {
				continue
			}
			for e := 0; e < n; e++ {
				if yi&(1<<uint(e)) != 0 {
					continue
				}
				gainX := vals[xi|1<<uint(e)] - vals[xi]
				gainY := vals[yi|1<<uint(e)] - vals[yi]
				if gainX < gainY-1e-12 {
					return false, &Violation{
						X: subsets[xi], Y: subsets[yi], E: e,
						GainX: gainX, GainY: gainY,
					}
				}
			}
		}
	}
	return true, nil
}

// Violation is a witness that a function is not submodular: adding E to the
// superset Y gained strictly more than adding it to the subset X.
type Violation struct {
	X, Y         []int
	E            int
	GainX, GainY float64
}

func enumerate(n int) [][]int {
	total := 1 << uint(n)
	subsets := make([][]int, total)
	for mask := 0; mask < total; mask++ {
		var s []int
		for e := 0; e < n; e++ {
			if mask&(1<<uint(e)) != 0 {
				s = append(s, e)
			}
		}
		subsets[mask] = s
	}
	return subsets
}

func isSubset(xMask, yMask int) bool { return xMask&^yMask == 0 }

func contains(sel []int, e int) bool {
	for _, s := range sel {
		if s == e {
			return true
		}
	}
	return false
}

// SortedCopy returns a sorted copy of a selection; handy for stable
// comparisons in tests.
func SortedCopy(sel []int) []int {
	out := append([]int(nil), sel...)
	sort.Ints(out)
	return out
}

type gainEntry struct {
	e     int
	gain  float64
	round int
}

type gainQueue []gainEntry

func (q gainQueue) Len() int { return len(q) }
func (q gainQueue) Less(i, j int) bool {
	if q[i].gain != q[j].gain {
		return q[i].gain > q[j].gain
	}
	return q[i].e < q[j].e
}
func (q gainQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *gainQueue) Push(x interface{}) { *q = append(*q, x.(gainEntry)) }
func (q *gainQueue) Pop() interface{} {
	old := *q
	n := len(old)
	x := old[n-1]
	*q = old[:n-1]
	return x
}
