package submodular

import (
	"math"
	"testing"

	"msc/internal/xrand"
)

// coverageValue builds a coverage set function: f(S) = |∪_{i∈S} sets[i]|,
// the canonical monotone submodular function.
func coverageValue(sets [][]int) Value {
	return func(selection []int) float64 {
		covered := map[int]bool{}
		for _, s := range selection {
			for _, e := range sets[s] {
				covered[e] = true
			}
		}
		return float64(len(covered))
	}
}

func TestCheckersOnCoverage(t *testing.T) {
	f := coverageValue([][]int{{0, 1}, {1, 2}, {3}, {0, 1, 2, 3}})
	if !IsMonotone(4, f) {
		t.Fatal("coverage not monotone?")
	}
	if ok, w := IsSubmodular(4, f); !ok {
		t.Fatalf("coverage not submodular? witness %+v", w)
	}
}

func TestCheckersDetectViolations(t *testing.T) {
	// f(S) = |S|² is supermodular (strictly, not submodular).
	f := func(sel []int) float64 { return float64(len(sel) * len(sel)) }
	if ok, w := IsSubmodular(4, f); ok {
		t.Fatal("|S|² misclassified as submodular")
	} else if w == nil {
		t.Fatal("no witness returned")
	} else if w.GainX >= w.GainY {
		t.Fatalf("witness inconsistent: %+v", w)
	}
	// Decreasing function is not monotone.
	g := func(sel []int) float64 { return -float64(len(sel)) }
	if IsMonotone(3, g) {
		t.Fatal("decreasing function misclassified as monotone")
	}
}

func TestGreedyOnModularFunction(t *testing.T) {
	// Additive weights: greedy must take the k largest.
	weights := []float64{5, 1, 9, 3, 7}
	f := func(sel []int) float64 {
		total := 0.0
		for _, s := range sel {
			total += weights[s]
		}
		return total
	}
	got := Greedy(5, 3, NewFuncOracle(f))
	want := map[int]bool{2: true, 4: true, 0: true}
	if len(got) != 3 {
		t.Fatalf("selected %v", got)
	}
	for _, s := range got {
		if !want[s] {
			t.Fatalf("selected %v, want top-3 {0,2,4}", got)
		}
	}
	// Greedy picks in decreasing-gain order.
	if got[0] != 2 || got[1] != 4 || got[2] != 0 {
		t.Fatalf("selection order %v", got)
	}
}

func TestGreedyStopsAtZeroGain(t *testing.T) {
	f := coverageValue([][]int{{0}, {0}, {0}})
	got := Greedy(3, 3, NewFuncOracle(f))
	if len(got) != 1 {
		t.Fatalf("greedy should stop after saturating: %v", got)
	}
}

func TestLazyGreedyMatchesGreedyOnSubmodular(t *testing.T) {
	rng := xrand.New(5)
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(8)
		universe := 3 + rng.Intn(10)
		sets := make([][]int, n)
		for i := range sets {
			for e := 0; e < universe; e++ {
				if rng.Bernoulli(0.3) {
					sets[i] = append(sets[i], e)
				}
			}
		}
		k := 1 + rng.Intn(4)
		f := coverageValue(sets)
		plain := Greedy(n, k, NewFuncOracle(f))
		lazy := LazyGreedy(n, k, NewFuncOracle(f))
		if len(plain) != len(lazy) {
			t.Fatalf("trial %d: lengths differ: %v vs %v", trial, plain, lazy)
		}
		for i := range plain {
			if plain[i] != lazy[i] {
				t.Fatalf("trial %d: %v vs %v", trial, plain, lazy)
			}
		}
	}
}

func TestGreedyNWFBound(t *testing.T) {
	// On random coverage instances, greedy ≥ (1−1/e) × exhaustive optimum.
	rng := xrand.New(6)
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(6)
		universe := 4 + rng.Intn(8)
		sets := make([][]int, n)
		for i := range sets {
			for e := 0; e < universe; e++ {
				if rng.Bernoulli(0.35) {
					sets[i] = append(sets[i], e)
				}
			}
		}
		k := 1 + rng.Intn(3)
		f := coverageValue(sets)
		greedyVal := f(Greedy(n, k, NewFuncOracle(f)))
		opt := bestSubsetValue(n, k, f)
		if greedyVal < (1-1/math.E)*opt-1e-9 {
			t.Fatalf("trial %d: greedy %v < (1-1/e)·opt %v", trial, greedyVal, opt)
		}
	}
}

func bestSubsetValue(n, k int, f Value) float64 {
	best := f(nil)
	var rec func(start int, sel []int)
	rec = func(start int, sel []int) {
		if v := f(sel); v > best {
			best = v
		}
		if len(sel) == k {
			return
		}
		for i := start; i < n; i++ {
			rec(i+1, append(sel, i))
		}
	}
	rec(0, nil)
	return best
}

func TestSortedCopy(t *testing.T) {
	in := []int{3, 1, 2}
	out := SortedCopy(in)
	if out[0] != 1 || out[1] != 2 || out[2] != 3 {
		t.Fatalf("SortedCopy = %v", out)
	}
	if in[0] != 3 {
		t.Fatal("input mutated")
	}
}
