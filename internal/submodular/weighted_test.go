package submodular

import (
	"math"
	"testing"

	"msc/internal/xrand"
)

func unitCost(int) float64 { return 1 }

// modularValue builds an additive set function from per-element weights.
func modularValue(weights []float64) Value {
	return func(sel []int) float64 {
		total := 0.0
		for _, s := range sel {
			total += weights[s]
		}
		return total
	}
}

// TestWeightedGreedyUnitEqualsGreedy locks the reduction the budgeted
// solver stack depends on: with every price 1 and budget k, WeightedGreedy
// selects exactly what the cardinality Greedy selects — same elements,
// same order — on random coverage instances.
func TestWeightedGreedyUnitEqualsGreedy(t *testing.T) {
	rng := xrand.New(11)
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(8)
		universe := 3 + rng.Intn(10)
		sets := make([][]int, n)
		for i := range sets {
			for e := 0; e < universe; e++ {
				if rng.Bernoulli(0.3) {
					sets[i] = append(sets[i], e)
				}
			}
		}
		k := 1 + rng.Intn(4)
		f := coverageValue(sets)
		plain := Greedy(n, k, NewFuncOracle(f))
		weighted := WeightedGreedy(n, float64(k), unitCost, NewFuncOracle(f))
		if len(plain) != len(weighted) {
			t.Fatalf("trial %d: lengths differ: %v vs %v", trial, plain, weighted)
		}
		for i := range plain {
			if plain[i] != weighted[i] {
				t.Fatalf("trial %d: %v vs %v", trial, plain, weighted)
			}
		}
	}
}

// TestWeightedGreedyFallbackSingleton is the Khuller–Moss–Naor failure
// mode of the bare ratio greedy: a cheap mediocre element crowds out a
// single expensive excellent one, and only the best-singleton fallback
// recovers it. Naive ratio arguments without the fallback are known to
// fail (cf. Ren & Zhao on connected set cover).
func TestWeightedGreedyFallbackSingleton(t *testing.T) {
	f := modularValue([]float64{1, 5})
	cost := func(e int) float64 { return []float64{0.1, 5}[e] }
	// Round 0: element 0 has ratio 10, element 1 ratio 1 → greedy takes 0,
	// leaving 4.9 < 5 of budget, so 1 never fits and the prefix totals 1.
	// The fallback singleton {1} (gain 5) must win.
	got := WeightedGreedy(2, 5, cost, NewFuncOracle(f))
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("WeightedGreedy = %v, want the fallback singleton [1]", got)
	}
}

// TestWeightedGreedyPrefixWinsWhenBetter checks the other side of the
// fallback comparison: when the ratio-greedy prefix outgains every
// affordable singleton, the prefix is returned.
func TestWeightedGreedyPrefixWinsWhenBetter(t *testing.T) {
	f := modularValue([]float64{3, 3, 4})
	cost := func(e int) float64 { return []float64{1, 1, 2}[e] }
	got := WeightedGreedy(3, 2, cost, NewFuncOracle(f))
	// Budget 2 affords {0,1} (total 6) or the singleton {2} (gain 4):
	// the prefix wins.
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("WeightedGreedy = %v, want the prefix [0 1]", got)
	}
}

// TestWeightedGreedyRespectsBudget checks feasibility and distinctness on
// random coverage instances with heterogeneous prices, including +Inf
// prices that must never be selected.
func TestWeightedGreedyRespectsBudget(t *testing.T) {
	rng := xrand.New(12)
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(8)
		universe := 4 + rng.Intn(8)
		sets := make([][]int, n)
		costs := make([]float64, n)
		for i := range sets {
			costs[i] = 0.5 + 2*rng.Float64()
			if rng.Bernoulli(0.15) {
				costs[i] = math.Inf(1)
			}
			for e := 0; e < universe; e++ {
				if rng.Bernoulli(0.35) {
					sets[i] = append(sets[i], e)
				}
			}
		}
		budget := 1 + 3*rng.Float64()
		sel := WeightedGreedy(n, budget, func(e int) float64 { return costs[e] }, NewFuncOracle(coverageValue(sets)))
		total := 0.0
		seen := map[int]bool{}
		for _, e := range sel {
			if seen[e] {
				t.Fatalf("trial %d: duplicate element %d in %v", trial, e, sel)
			}
			seen[e] = true
			total += costs[e]
		}
		if total > budget+1e-9 {
			t.Fatalf("trial %d: selection %v costs %v of budget %v", trial, sel, total, budget)
		}
	}
}

// TestWeightedGreedyKMNBound checks the ½(1−1/e) guarantee of the
// modified greedy against the exhaustive budgeted optimum on random
// coverage instances.
func TestWeightedGreedyKMNBound(t *testing.T) {
	rng := xrand.New(13)
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(6)
		universe := 4 + rng.Intn(8)
		sets := make([][]int, n)
		costs := make([]float64, n)
		for i := range sets {
			costs[i] = 0.5 + 2*rng.Float64()
			for e := 0; e < universe; e++ {
				if rng.Bernoulli(0.35) {
					sets[i] = append(sets[i], e)
				}
			}
		}
		budget := 1 + 3*rng.Float64()
		cost := func(e int) float64 { return costs[e] }
		f := coverageValue(sets)
		got := f(WeightedGreedy(n, budget, cost, NewFuncOracle(f)))
		opt := bestBudgetedValue(n, budget, cost, f)
		if got < 0.5*(1-1/math.E)*opt-1e-9 {
			t.Fatalf("trial %d: weighted greedy %v < ½(1−1/e)·opt %v", trial, got, opt)
		}
	}
}

// bestBudgetedValue brute-forces the budgeted optimum over all feasible
// subsets.
func bestBudgetedValue(n int, budget float64, cost func(int) float64, f Value) float64 {
	best := f(nil)
	var rec func(start int, sel []int, rem float64)
	rec = func(start int, sel []int, rem float64) {
		if v := f(sel); v > best {
			best = v
		}
		for i := start; i < n; i++ {
			if c := cost(i); c <= rem {
				rec(i+1, append(sel, i), rem-c)
			}
		}
	}
	rec(0, nil, budget)
	return best
}

// TestWeightedGreedyNothingAffordable covers the degenerate corners: a
// budget below every price, an empty ground set, and a function with no
// positive gains all yield the empty selection without spinning.
func TestWeightedGreedyNothingAffordable(t *testing.T) {
	f := coverageValue([][]int{{0}, {1}, {2}})
	if got := WeightedGreedy(3, 0.5, unitCost, NewFuncOracle(f)); len(got) != 0 {
		t.Fatalf("unaffordable universe selected %v", got)
	}
	if got := WeightedGreedy(0, 10, unitCost, NewFuncOracle(f)); len(got) != 0 {
		t.Fatalf("empty ground set selected %v", got)
	}
	zero := func([]int) float64 { return 0 }
	if got := WeightedGreedy(3, 10, unitCost, NewFuncOracle(zero)); len(got) != 0 {
		t.Fatalf("zero-gain function selected %v", got)
	}
}

// TestWeightedGreedyTieBreaks pins the deterministic tie rules: equal
// ratios break toward the larger gain, and fully equal (gain, cost) pairs
// break toward the smaller element (scan order).
func TestWeightedGreedyTieBreaks(t *testing.T) {
	// Elements 0 and 1 share ratio 2 (2/1 vs 4/2): the larger gain wins.
	f := modularValue([]float64{2, 4})
	cost := func(e int) float64 { return []float64{1, 2}[e] }
	got := WeightedGreedy(2, 2, cost, NewFuncOracle(f))
	if len(got) == 0 || got[0] != 1 {
		t.Fatalf("ratio tie broke to %v, want element 1 (larger gain)", got)
	}
	// Identical elements: the smaller index wins.
	g := modularValue([]float64{3, 3})
	got = WeightedGreedy(2, 1, unitCost, NewFuncOracle(g))
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("full tie broke to %v, want element 0", got)
	}
}
