// Package viz renders networks and shortcut placements, regenerating the
// paper's Fig. 1 (placement of the approximation algorithm vs the random
// baseline on a geometric graph). SVG output shows node positions, base
// links shaded by failure probability, important pairs, and shortcut
// edges; an ASCII mode summarizes the same picture for terminals.
package viz

import (
	"fmt"
	"io"
	"math"
	"strings"

	"msc/internal/failprob"
	"msc/internal/geom"
	"msc/internal/graph"
	"msc/internal/pairs"
)

// Scene is everything one rendering shows.
type Scene struct {
	Graph *graph.Graph
	// Pairs marks the important social pairs (drawn as ring highlights).
	Pairs *pairs.Set
	// Shortcuts are the placed reliable links (drawn as bold dashed arcs).
	Shortcuts []graph.Edge
	// Title is printed above the drawing.
	Title string
}

// SVGOptions tune the raster.
type SVGOptions struct {
	// Width is the canvas width in pixels (height follows the aspect
	// ratio of the node bounding box). Default 640.
	Width int
	// NodeRadius in pixels. Default 4.
	NodeRadius float64
}

// WriteSVG renders the scene as a standalone SVG document. The graph must
// carry node coordinates.
func WriteSVG(w io.Writer, sc Scene, opts SVGOptions) error {
	coords := sc.Graph.Coords()
	if coords == nil {
		return fmt.Errorf("viz: graph has no coordinates")
	}
	if opts.Width <= 0 {
		opts.Width = 640
	}
	if opts.NodeRadius <= 0 {
		opts.NodeRadius = 4
	}
	const margin = 24.0
	bb := geom.BoundingBox(coords)
	spanX := bb.Width()
	spanY := bb.Height()
	if spanX == 0 {
		spanX = 1
	}
	if spanY == 0 {
		spanY = 1
	}
	width := float64(opts.Width)
	height := width * spanY / spanX
	proj := func(p geom.Point) (float64, float64) {
		x := margin + (p.X-bb.MinX)/spanX*(width-2*margin)
		y := margin + (1-(p.Y-bb.MinY)/spanY)*(height-2*margin)
		return x, y
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n",
		width, height+28, width, height+28)
	fmt.Fprintf(&sb, `<rect width="100%%" height="100%%" fill="white"/>`+"\n")
	if sc.Title != "" {
		fmt.Fprintf(&sb, `<text x="%.0f" y="18" font-family="sans-serif" font-size="14" text-anchor="middle">%s</text>`+"\n",
			width/2, escapeXML(sc.Title))
	}
	fmt.Fprintf(&sb, `<g transform="translate(0,24)">`+"\n")

	// Base links, darker for more reliable links.
	for _, e := range sc.Graph.Edges() {
		x1, y1 := proj(coords[e.U])
		x2, y2 := proj(coords[e.V])
		p := failprob.ProbFromLength(e.Length)
		gray := int(120 + 120*p)
		if gray > 230 {
			gray = 230
		}
		fmt.Fprintf(&sb, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="rgb(%d,%d,%d)" stroke-width="1"/>`+"\n",
			x1, y1, x2, y2, gray, gray, gray)
	}
	// Important pairs as thin colored chords.
	if sc.Pairs != nil {
		for _, p := range sc.Pairs.Pairs() {
			x1, y1 := proj(coords[p.U])
			x2, y2 := proj(coords[p.W])
			fmt.Fprintf(&sb, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#7aa6d8" stroke-width="0.7" stroke-dasharray="2,3"/>`+"\n",
				x1, y1, x2, y2)
		}
	}
	// Shortcuts as bold dashed red arcs.
	for _, f := range sc.Shortcuts {
		x1, y1 := proj(coords[f.U])
		x2, y2 := proj(coords[f.V])
		mx, my := (x1+x2)/2, (y1+y2)/2
		// Bow the arc perpendicular to the chord so parallel shortcuts
		// stay distinguishable.
		dx, dy := x2-x1, y2-y1
		norm := math.Hypot(dx, dy)
		if norm == 0 {
			norm = 1
		}
		off := math.Min(30, norm/4)
		cx, cy := mx-dy/norm*off, my+dx/norm*off
		fmt.Fprintf(&sb, `<path d="M %.1f %.1f Q %.1f %.1f %.1f %.1f" fill="none" stroke="#c0392b" stroke-width="2.2" stroke-dasharray="7,4"/>`+"\n",
			x1, y1, cx, cy, x2, y2)
	}
	// Nodes; pair members filled darker.
	member := map[graph.NodeID]bool{}
	if sc.Pairs != nil {
		for _, p := range sc.Pairs.Pairs() {
			member[p.U] = true
			member[p.W] = true
		}
	}
	for i, p := range coords {
		x, y := proj(p)
		fill := "#bdc3c7"
		if member[graph.NodeID(i)] {
			fill = "#2c3e50"
		}
		fmt.Fprintf(&sb, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="%s" stroke="#555" stroke-width="0.5"/>`+"\n",
			x, y, opts.NodeRadius, fill)
	}
	sb.WriteString("</g>\n</svg>\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

// WriteASCII prints a terminal summary of the scene: grid sketch of node
// density plus a table of the placed shortcuts.
func WriteASCII(w io.Writer, sc Scene) error {
	coords := sc.Graph.Coords()
	if coords == nil {
		return fmt.Errorf("viz: graph has no coordinates")
	}
	const cols, rows = 60, 24
	bb := geom.BoundingBox(coords)
	spanX, spanY := bb.Width(), bb.Height()
	if spanX == 0 {
		spanX = 1
	}
	if spanY == 0 {
		spanY = 1
	}
	grid := make([][]rune, rows)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", cols))
	}
	cell := func(p geom.Point) (int, int) {
		c := int((p.X - bb.MinX) / spanX * float64(cols-1))
		r := int((1 - (p.Y-bb.MinY)/spanY) * float64(rows-1))
		return r, c
	}
	for _, p := range coords {
		r, c := cell(p)
		if grid[r][c] == ' ' {
			grid[r][c] = '.'
		}
	}
	if sc.Pairs != nil {
		for _, pr := range sc.Pairs.Pairs() {
			for _, v := range []graph.NodeID{pr.U, pr.W} {
				r, c := cell(coords[v])
				grid[r][c] = 'o'
			}
		}
	}
	for i, f := range sc.Shortcuts {
		mark := rune('A' + i%26)
		for _, v := range []graph.NodeID{f.U, f.V} {
			r, c := cell(coords[v])
			grid[r][c] = mark
		}
	}
	var sb strings.Builder
	if sc.Title != "" {
		fmt.Fprintf(&sb, "%s\n", sc.Title)
	}
	border := "+" + strings.Repeat("-", cols) + "+\n"
	sb.WriteString(border)
	for _, row := range grid {
		sb.WriteString("|")
		sb.WriteString(string(row))
		sb.WriteString("|\n")
	}
	sb.WriteString(border)
	for i, f := range sc.Shortcuts {
		fmt.Fprintf(&sb, "  shortcut %c: %s -- %s\n", 'A'+i%26, sc.Graph.Label(f.U), sc.Graph.Label(f.V))
	}
	sb.WriteString("  legend: '.' node, 'o' important-pair member, letters = shortcut endpoints\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

func escapeXML(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
