package viz

import (
	"bytes"
	"strings"
	"testing"

	"msc/internal/geom"
	"msc/internal/graph"
	"msc/internal/pairs"
)

func scene(t *testing.T) Scene {
	t.Helper()
	g, err := graph.NewBuilder(4).
		SetCoords([]geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 0, Y: 1}, {X: 1, Y: 1}}).
		AddEdge(0, 1, 0.1).
		AddEdge(1, 3, 0.2).
		AddEdge(0, 2, 0.3).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return Scene{
		Graph:     g,
		Pairs:     pairs.MustNewSet(4, []pairs.Pair{{U: 0, W: 3}}),
		Shortcuts: []graph.Edge{{U: 2, V: 3}},
		Title:     "test <scene> & co",
	}
}

func TestWriteSVG(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSVG(&buf, scene(t), SVGOptions{}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"<svg", "</svg>", "<circle", "<line", "<path", // structure
		"test &lt;scene&gt; &amp; co", // escaped title
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
	// 3 base edges, 1 pair chord → 4 <line> elements.
	if got := strings.Count(out, "<line"); got != 4 {
		t.Fatalf("line count = %d, want 4", got)
	}
	if got := strings.Count(out, "<circle"); got != 4 {
		t.Fatalf("circle count = %d, want 4", got)
	}
	// Shortcut arc.
	if got := strings.Count(out, "<path"); got != 1 {
		t.Fatalf("path count = %d, want 1", got)
	}
}

func TestWriteASCII(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteASCII(&buf, scene(t)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "shortcut A:") {
		t.Fatalf("ASCII missing shortcut legend:\n%s", out)
	}
	if !strings.Contains(out, "legend:") {
		t.Fatal("ASCII missing legend")
	}
	// The grid box borders.
	if strings.Count(out, "+") < 4 {
		t.Fatal("ASCII missing borders")
	}
}

func TestNoCoordinatesError(t *testing.T) {
	g := graph.NewBuilder(2).AddEdge(0, 1, 0.1).MustBuild()
	sc := Scene{Graph: g}
	if err := WriteSVG(&bytes.Buffer{}, sc, SVGOptions{}); err == nil {
		t.Fatal("expected error without coordinates")
	}
	if err := WriteASCII(&bytes.Buffer{}, sc); err == nil {
		t.Fatal("expected error without coordinates")
	}
}

func TestDegenerateGeometry(t *testing.T) {
	// All nodes at the same point must not divide by zero.
	g := graph.NewBuilder(2).
		SetCoords([]geom.Point{{X: 0.5, Y: 0.5}, {X: 0.5, Y: 0.5}}).
		AddEdge(0, 1, 0.1).
		MustBuild()
	sc := Scene{Graph: g, Shortcuts: []graph.Edge{{U: 0, V: 1}}}
	if err := WriteSVG(&bytes.Buffer{}, sc, SVGOptions{Width: 100}); err != nil {
		t.Fatal(err)
	}
	if err := WriteASCII(&bytes.Buffer{}, sc); err != nil {
		t.Fatal(err)
	}
}
