package netbuild

import (
	"errors"
	"math"
	"testing"

	"msc/internal/failprob"
	"msc/internal/geom"
)

func TestValidate(t *testing.T) {
	cases := []struct {
		fm   FailureModel
		want error
	}{
		{FailureModel{Radius: 0, FailureAtRadius: 0.1}, ErrRadius},
		{FailureModel{Radius: -1, FailureAtRadius: 0.1}, ErrRadius},
		{FailureModel{Radius: 1, FailureAtRadius: -0.1}, ErrFailure},
		{FailureModel{Radius: 1, FailureAtRadius: 1}, ErrFailure},
		{FailureModel{Radius: 1, FailureAtRadius: 0.5}, nil},
	}
	for i, tc := range cases {
		err := tc.fm.Validate()
		if tc.want == nil && err != nil {
			t.Errorf("case %d: unexpected error %v", i, err)
		}
		if tc.want != nil && !errors.Is(err, tc.want) {
			t.Errorf("case %d: err = %v, want %v", i, err, tc.want)
		}
	}
}

func TestFailureProportionalToDistance(t *testing.T) {
	fm := FailureModel{Radius: 200, FailureAtRadius: 0.4}
	if p := fm.FailureProb(0); p != 0 {
		t.Fatalf("p(0) = %v", p)
	}
	if p := fm.FailureProb(100); math.Abs(p-0.2) > 1e-12 {
		t.Fatalf("p(100) = %v, want 0.2", p)
	}
	if p := fm.FailureProb(200); math.Abs(p-0.4) > 1e-12 {
		t.Fatalf("p(200) = %v, want 0.4", p)
	}
	// Length is the −ln(1−p) transform of that probability.
	if l := fm.EdgeLength(100); math.Abs(l-failprob.LengthFromProb(0.2)) > 1e-12 {
		t.Fatalf("length(100) = %v", l)
	}
}

func TestProximityGraph(t *testing.T) {
	pts := []geom.Point{
		{X: 0, Y: 0},
		{X: 100, Y: 0}, // within 150 of node 0
		{X: 300, Y: 0}, // only within 150 of node 1? dist(1,2)=200 > 150 — isolated
	}
	fm := FailureModel{Radius: 150, FailureAtRadius: 0.3}
	g, err := Proximity(pts, fm)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 1 {
		t.Fatalf("n=%d m=%d, want 3, 1", g.N(), g.M())
	}
	l, ok := g.EdgeLength(0, 1)
	if !ok {
		t.Fatal("missing edge (0,1)")
	}
	want := fm.EdgeLength(100)
	if math.Abs(l-want) > 1e-12 {
		t.Fatalf("length = %v, want %v", l, want)
	}
	if g.Coords() == nil {
		t.Fatal("coordinates not attached")
	}
}

func TestProximityErrors(t *testing.T) {
	fm := FailureModel{Radius: 1, FailureAtRadius: 0.5}
	if _, err := Proximity([]geom.Point{{X: 0}}, fm); !errors.Is(err, ErrNoNodes) {
		t.Fatalf("err = %v, want ErrNoNodes", err)
	}
	if _, err := Proximity([]geom.Point{{X: 0}, {X: 1}}, FailureModel{}); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestProximityDense(t *testing.T) {
	// A 3×3 grid with radius covering horizontal/vertical neighbors only.
	var pts []geom.Point
	for y := 0; y < 3; y++ {
		for x := 0; x < 3; x++ {
			pts = append(pts, geom.Point{X: float64(x), Y: float64(y)})
		}
	}
	g, err := Proximity(pts, FailureModel{Radius: 1.0, FailureAtRadius: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	// 12 axis-aligned unit edges in a 3×3 grid.
	if g.M() != 12 {
		t.Fatalf("m = %d, want 12", g.M())
	}
}
