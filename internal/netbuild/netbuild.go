// Package netbuild constructs wireless-network graphs from node positions.
//
// All three workloads in the paper's evaluation (random geometric graphs,
// the Gowalla location-based social network, and the tactical mobility
// traces) share the same physical model: two nodes are connected when
// within a communication radius, and the link failure probability is
// proportional to the geographical distance between the endpoints
// (§VII-A). This package is that model.
package netbuild

import (
	"errors"
	"fmt"

	"msc/internal/failprob"
	"msc/internal/geom"
	"msc/internal/graph"
)

// FailureModel maps link distance to failure probability.
type FailureModel struct {
	// Radius is the communication radius: nodes farther apart than Radius
	// share no link.
	Radius float64
	// FailureAtRadius is the failure probability of a link at exactly
	// Radius; shorter links scale down linearly:
	// p(d) = FailureAtRadius · d / Radius (the paper's "proportional to
	// the geographical distance").
	FailureAtRadius float64
}

// Errors returned by the builders.
var (
	ErrRadius  = errors.New("netbuild: radius must be positive")
	ErrFailure = errors.New("netbuild: failure-at-radius must lie in [0, 1)")
	ErrNoNodes = errors.New("netbuild: need at least two nodes")
)

// Validate checks the model parameters.
func (fm FailureModel) Validate() error {
	if fm.Radius <= 0 {
		return fmt.Errorf("%w: %v", ErrRadius, fm.Radius)
	}
	if fm.FailureAtRadius < 0 || fm.FailureAtRadius >= 1 {
		return fmt.Errorf("%w: %v", ErrFailure, fm.FailureAtRadius)
	}
	return nil
}

// FailureProb returns the link failure probability at distance d ≤ Radius.
func (fm FailureModel) FailureProb(d float64) float64 {
	return fm.FailureAtRadius * d / fm.Radius
}

// EdgeLength returns the −ln(1−p) length of a link at distance d.
func (fm FailureModel) EdgeLength(d float64) float64 {
	return failprob.LengthFromProb(fm.FailureProb(d))
}

// Proximity builds the wireless graph over the given positions: one edge
// per node pair within the model radius, weighted by the failure-derived
// length. Node coordinates are attached to the graph.
func Proximity(pts []geom.Point, fm FailureModel) (*graph.Graph, error) {
	if err := fm.Validate(); err != nil {
		return nil, err
	}
	if len(pts) < 2 {
		return nil, fmt.Errorf("%w: got %d", ErrNoNodes, len(pts))
	}
	b := graph.NewBuilder(len(pts))
	b.SetCoords(pts)
	grid := geom.NewGrid(pts, fm.Radius)
	grid.PairsWithin(fm.Radius, func(i, j int, dist float64) {
		b.AddEdge(graph.NodeID(i), graph.NodeID(j), fm.EdgeLength(dist))
	})
	return b.Build()
}
