package montecarlo

import (
	"errors"
	"fmt"
	"math"

	"msc/internal/failprob"
	"msc/internal/graph"
	"msc/internal/pairs"
	"msc/internal/shortestpath"
	"msc/internal/xrand"
)

// This file is the fault-injection verification harness for survivable
// placements (core.Survivability): it measures the post-failure σ of a
// placement by direct knockout — each placed shortcut and (optionally)
// each node in turn — plus random multi-failure sampling priced by
// internal/failprob. Every σ here is computed from first principles with
// fresh Dijkstras on the degraded topology, independent of the overlay
// and row-merge machinery the solvers use, so the harness can catch an
// optimistic σ⁻ no matter where the bug lives.

// Knockout records the measured σ after failing one element.
type Knockout struct {
	// Failed identifies the failed element: the placement index of the
	// shortcut, or the node id.
	Failed int `json:"failed"`
	// Sigma is the measured post-failure σ. For node knockouts pairs
	// incident to the failed node count as vacuously maintained, matching
	// core's σ⁻ semantics (their demand left with the node).
	Sigma int `json:"sigma"`
}

// SampleStats summarizes random multi-failure sampling.
type SampleStats struct {
	Trials    int     `json:"trials"`
	MinSigma  int     `json:"min_sigma"`
	MeanSigma float64 `json:"mean_sigma"`
	// MeanFailures is the mean number of failed elements (base edges,
	// shortcuts, nodes) per trial.
	MeanFailures float64 `json:"mean_failures"`
}

// FaultReport is the result of a fault-injection audit.
type FaultReport struct {
	// SigmaNominal is σ of the intact placement.
	SigmaNominal int `json:"sigma_nominal"`
	// ShortcutKnockouts holds one entry per placed shortcut; nil for an
	// empty placement.
	ShortcutKnockouts []Knockout `json:"shortcut_knockouts,omitempty"`
	// NodeKnockouts holds one entry per node when Options.Nodes is set.
	NodeKnockouts []Knockout `json:"node_knockouts,omitempty"`
	// MinSigma is the smallest measured σ over all knockouts performed —
	// exactly the quantity a declared worst-case σ⁻ must not exceed.
	// SigmaNominal when no knockout was performed.
	MinSigma int `json:"min_sigma"`
	// Samples summarizes random multi-failure sampling (zero when
	// Options.Trials is 0). Multi-failure σ may legitimately fall below a
	// single-failure σ⁻.
	Samples SampleStats `json:"samples"`
}

// InjectOptions configure a fault-injection audit.
type InjectOptions struct {
	// Weights assigns an importance weight per pair (nil = all 1),
	// matching the instance's σ units.
	Weights []int
	// Nodes adds per-node knockouts (the core.SurviveNode scenario
	// family) on top of the per-shortcut ones.
	Nodes bool
	// Trials is the number of random multi-failure sampling trials; 0
	// skips sampling.
	Trials int
	// IntrinsicBase makes base edges fail with their intrinsic
	// probability p = 1 − e^(−length) during sampling (the failprob
	// pricing); when false base edges never fail, isolating the
	// shortcut/node failure families.
	IntrinsicBase bool
	// ShortcutFail is the per-trial failure probability of each placed
	// shortcut during sampling (shortcuts are reliable in the paper's
	// model, so this is the harness's adversarial override).
	ShortcutFail float64
	// NodeFail is the per-trial failure probability of each node during
	// sampling.
	NodeFail float64
}

// ErrPairUniverse is returned when the pair set does not match the graph.
var ErrPairUniverse = errors.New("montecarlo: pair set node universe does not match graph")

// Inject audits a placement by fault injection: σ of the intact network,
// σ after knocking out each shortcut (and each node, when requested) in
// turn, and random multi-failure sampling. Deterministic in rng; rng may
// be nil when Trials is 0.
func Inject(g *graph.Graph, ps *pairs.Set, thr failprob.Threshold, shortcuts []graph.Edge, opts InjectOptions, rng *xrand.Rand) (*FaultReport, error) {
	if ps.N() != g.N() {
		return nil, fmt.Errorf("%w: pairs over %d nodes, graph has %d", ErrPairUniverse, ps.N(), g.N())
	}
	weights := opts.Weights
	if weights == nil {
		weights = make([]int, ps.Len())
		for i := range weights {
			weights[i] = 1
		}
	} else if len(weights) != ps.Len() {
		return nil, fmt.Errorf("montecarlo: %d weights for %d pairs", len(weights), ps.Len())
	}
	if opts.Trials > 0 && rng == nil {
		return nil, errors.New("montecarlo: sampling trials require an rng")
	}

	rep := &FaultReport{SigmaNominal: degradedSigma(g, ps, thr, weights, shortcuts, -1)}
	rep.MinSigma = rep.SigmaNominal
	haveKnockout := false
	fold := func(s int) {
		if !haveKnockout || s < rep.MinSigma {
			rep.MinSigma, haveKnockout = s, true
		}
	}
	rest := make([]graph.Edge, 0, len(shortcuts))
	for j := range shortcuts {
		rest = append(rest[:0], shortcuts[:j]...)
		rest = append(rest, shortcuts[j+1:]...)
		s := degradedSigma(g, ps, thr, weights, rest, -1)
		rep.ShortcutKnockouts = append(rep.ShortcutKnockouts, Knockout{Failed: j, Sigma: s})
		fold(s)
	}
	if opts.Nodes {
		for v := 0; v < g.N(); v++ {
			s := degradedSigma(g, ps, thr, weights, shortcuts, v)
			rep.NodeKnockouts = append(rep.NodeKnockouts, Knockout{Failed: v, Sigma: s})
			fold(s)
		}
	}

	if opts.Trials > 0 {
		if err := sampleFailures(g, ps, thr, weights, shortcuts, opts, rng, rep); err != nil {
			return nil, err
		}
	}
	return rep, nil
}

// degradedSigma measures σ on the degraded topology from first
// principles: the base graph without deadNode's edges (deadNode < 0 =
// intact), the surviving shortcuts overlaid, one fresh Dijkstra per pair.
// Pairs incident to a dead node count as vacuously maintained.
func degradedSigma(g *graph.Graph, ps *pairs.Set, thr failprob.Threshold, weights []int, shortcuts []graph.Edge, deadNode int) int {
	base := g
	surviving := shortcuts
	if deadNode >= 0 {
		b := graph.NewBuilder(g.N())
		for _, e := range g.Edges() {
			if int(e.U) != deadNode && int(e.V) != deadNode {
				b.AddEdge(e.U, e.V, e.Length)
			}
		}
		base = b.MustBuild()
		surviving = nil
		for _, f := range shortcuts {
			if int(f.U) != deadNode && int(f.V) != deadNode {
				surviving = append(surviving, f)
			}
		}
	}
	total := 0
	for i, p := range ps.Pairs() {
		if int(p.U) == deadNode || int(p.W) == deadNode {
			total += weights[i]
			continue
		}
		dist := shortestpath.AugmentedDistances(base, surviving, p.U)
		if dist[p.W] <= thr.D {
			total += weights[i]
		}
	}
	return total
}

// sampleFailures runs the random multi-failure trials: base edges fail
// with their intrinsic failprob pricing (when enabled), shortcuts and
// nodes with the configured probabilities, all independently.
func sampleFailures(g *graph.Graph, ps *pairs.Set, thr failprob.Threshold, weights []int, shortcuts []graph.Edge, opts InjectOptions, rng *xrand.Rand, rep *FaultReport) error {
	if opts.ShortcutFail < 0 || opts.ShortcutFail > 1 || opts.NodeFail < 0 || opts.NodeFail > 1 ||
		math.IsNaN(opts.ShortcutFail) || math.IsNaN(opts.NodeFail) {
		return fmt.Errorf("montecarlo: failure probabilities outside [0, 1]: shortcut=%v node=%v",
			opts.ShortcutFail, opts.NodeFail)
	}
	edges := g.Edges()
	edgeFail := make([]float64, len(edges))
	if opts.IntrinsicBase {
		for i, e := range edges {
			edgeFail[i] = failprob.ProbFromLength(e.Length)
		}
	}
	deadNode := make([]bool, g.N())
	st := &rep.Samples
	st.Trials = opts.Trials
	totalSigma, totalFailures := 0, 0
	for trial := 0; trial < opts.Trials; trial++ {
		failures := 0
		for v := range deadNode {
			deadNode[v] = opts.NodeFail > 0 && rng.Bernoulli(opts.NodeFail)
			if deadNode[v] {
				failures++
			}
		}
		b := graph.NewBuilder(g.N())
		for i, e := range edges {
			if edgeFail[i] > 0 && rng.Bernoulli(edgeFail[i]) {
				failures++
				continue
			}
			if deadNode[e.U] || deadNode[e.V] {
				continue
			}
			b.AddEdge(e.U, e.V, e.Length)
		}
		var surviving []graph.Edge
		for _, f := range shortcuts {
			if opts.ShortcutFail > 0 && rng.Bernoulli(opts.ShortcutFail) {
				failures++
				continue
			}
			if deadNode[f.U] || deadNode[f.V] {
				continue
			}
			surviving = append(surviving, f)
		}
		degraded := b.MustBuild()
		sigma := 0
		for i, p := range ps.Pairs() {
			if deadNode[p.U] || deadNode[p.W] {
				sigma += weights[i]
				continue
			}
			dist := shortestpath.AugmentedDistances(degraded, surviving, p.U)
			if dist[p.W] <= thr.D {
				sigma += weights[i]
			}
		}
		totalSigma += sigma
		totalFailures += failures
		if trial == 0 || sigma < st.MinSigma {
			st.MinSigma = sigma
		}
	}
	st.MeanSigma = float64(totalSigma) / float64(opts.Trials)
	st.MeanFailures = float64(totalFailures) / float64(opts.Trials)
	return nil
}
