package montecarlo

import (
	"math"
	"reflect"
	"testing"

	"msc/internal/core"
	"msc/internal/failprob"
	"msc/internal/graph"
	"msc/internal/pairs"
	"msc/internal/shortestpath"
	"msc/internal/xrand"
)

// injectFixture builds a survivable instance and a greedy placement on a
// random connected graph, retrying the pair sample deterministically so a
// seed sweep never silently skips.
func injectFixture(t *testing.T, seed int64, mode core.Survivability) (*core.Instance, []int) {
	t.Helper()
	const n, m, k, dt = 14, 6, 4, 0.9
	for off := int64(0); off < 20; off++ {
		rng := xrand.New(seed*1000 + off)
		b := graph.NewBuilder(n)
		perm := rng.Perm(n)
		for i := 1; i < n; i++ {
			b.AddEdge(graph.NodeID(perm[i]), graph.NodeID(perm[rng.Intn(i)]), 0.1+rng.Float64())
		}
		for e := 0; e < 2*n; e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				b.AddEdge(graph.NodeID(u), graph.NodeID(v), 0.1+rng.Float64())
			}
		}
		g, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		table := shortestpath.NewTable(g, 0)
		ps, err := pairs.SampleViolating(table, dt, m, rng)
		if err != nil {
			continue
		}
		inst, err := core.NewInstance(g, ps, failprob.Threshold{P: 1 - math.Exp(-dt), D: dt}, k,
			&core.Options{AllowTrivial: true, Table: table, Survive: mode})
		if err != nil {
			t.Fatalf("NewInstance: %v", err)
		}
		return inst, core.GreedySigma(inst, core.Parallelism(1)).Selection
	}
	t.Fatalf("seed %d: no violating pair sample in 20 attempts", seed)
	return nil, nil
}

func instWeights(inst *core.Instance) []int {
	w := make([]int, inst.Pairs().Len())
	for i := range w {
		w[i] = inst.PairWeight(i)
	}
	return w
}

// TestInjectNeverBelowDeclaredSigmaWorst is the acceptance check for the
// survivable solvers: fault injection — which recomputes every degraded σ
// from first principles, independent of the solvers' overlay machinery —
// must find no failure scenario whose measured σ falls below the declared
// σ⁻, and the worst measured scenario must equal it exactly.
func TestInjectNeverBelowDeclaredSigmaWorst(t *testing.T) {
	for _, mode := range []core.Survivability{core.SurviveShortcut, core.SurviveNode} {
		for seed := int64(1); seed <= 8; seed++ {
			inst, sel := injectFixture(t, seed, mode)
			declared := inst.SigmaWorst(sel)
			rep, err := Inject(inst.Graph(), inst.Pairs(), inst.Threshold(),
				core.SelectionEdges(inst, sel),
				InjectOptions{Weights: instWeights(inst), Nodes: mode == core.SurviveNode}, nil)
			if err != nil {
				t.Fatalf("mode=%s seed=%d: Inject: %v", mode, seed, err)
			}
			if rep.SigmaNominal != inst.Sigma(sel) {
				t.Fatalf("mode=%s seed=%d: nominal σ %d != instance σ %d",
					mode, seed, rep.SigmaNominal, inst.Sigma(sel))
			}
			if len(rep.ShortcutKnockouts) != len(sel) {
				t.Fatalf("mode=%s seed=%d: %d shortcut knockouts for %d shortcuts",
					mode, seed, len(rep.ShortcutKnockouts), len(sel))
			}
			for _, ko := range append(append([]Knockout(nil), rep.ShortcutKnockouts...), rep.NodeKnockouts...) {
				if ko.Sigma < declared {
					t.Fatalf("mode=%s seed=%d: knockout %d measured σ %d below declared σ⁻ %d",
						mode, seed, ko.Failed, ko.Sigma, declared)
				}
			}
			if rep.MinSigma != declared {
				t.Fatalf("mode=%s seed=%d: measured worst σ %d, declared σ⁻ %d (sel=%v)",
					mode, seed, rep.MinSigma, declared, sel)
			}
		}
	}
}

// TestInjectSamplingDeterministic pins the multi-failure sampler: same
// seed, same report; and killing every shortcut with certainty and nothing
// else must reproduce the analytic no-shortcut σ in every trial.
func TestInjectSamplingDeterministic(t *testing.T) {
	inst, sel := injectFixture(t, 3, core.SurviveShortcut)
	shortcuts := core.SelectionEdges(inst, sel)
	opts := InjectOptions{
		Weights:       instWeights(inst),
		Nodes:         true,
		Trials:        200,
		IntrinsicBase: true,
		ShortcutFail:  0.3,
		NodeFail:      0.05,
	}
	a, err := Inject(inst.Graph(), inst.Pairs(), inst.Threshold(), shortcuts, opts, xrand.New(77))
	if err != nil {
		t.Fatalf("Inject: %v", err)
	}
	b, err := Inject(inst.Graph(), inst.Pairs(), inst.Threshold(), shortcuts, opts, xrand.New(77))
	if err != nil {
		t.Fatalf("Inject: %v", err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different reports:\n%+v\n%+v", a, b)
	}
	if a.Samples.Trials != opts.Trials || a.Samples.MeanFailures <= 0 {
		t.Fatalf("sampling stats not populated: %+v", a.Samples)
	}
	if a.Samples.MinSigma < 0 || a.Samples.MeanSigma < float64(a.Samples.MinSigma) {
		t.Fatalf("inconsistent sampling stats: %+v", a.Samples)
	}

	// Certain failure of all shortcuts, nothing else → every trial is the
	// bare-graph placement.
	base := inst.Sigma(nil)
	all, err := Inject(inst.Graph(), inst.Pairs(), inst.Threshold(), shortcuts,
		InjectOptions{Weights: instWeights(inst), Trials: 50, ShortcutFail: 1}, xrand.New(9))
	if err != nil {
		t.Fatalf("Inject: %v", err)
	}
	if all.Samples.MinSigma != base || all.Samples.MeanSigma != float64(base) {
		t.Fatalf("all-shortcuts-dead sampling: min=%d mean=%v, want both %d",
			all.Samples.MinSigma, all.Samples.MeanSigma, base)
	}
}

func TestInjectValidation(t *testing.T) {
	inst, sel := injectFixture(t, 5, core.SurviveShortcut)
	g, ps, thr := inst.Graph(), inst.Pairs(), inst.Threshold()
	shortcuts := core.SelectionEdges(inst, sel)
	if _, err := Inject(g, ps, thr, shortcuts, InjectOptions{Weights: []int{1}}, nil); err == nil {
		t.Fatal("want error for short weights slice")
	}
	if _, err := Inject(g, ps, thr, shortcuts, InjectOptions{Trials: 5}, nil); err == nil {
		t.Fatal("want error for trials without rng")
	}
	if _, err := Inject(g, ps, thr, shortcuts,
		InjectOptions{Trials: 5, ShortcutFail: 1.5}, xrand.New(1)); err == nil {
		t.Fatal("want error for failure probability > 1")
	}
	small := graph.NewBuilder(ps.N() + 1).MustBuild()
	if _, err := Inject(small, ps, thr, nil, InjectOptions{}, nil); err == nil {
		t.Fatal("want error for pair/graph universe mismatch")
	}
}
