package montecarlo

import (
	"math"
	"testing"

	"msc/internal/failprob"
	"msc/internal/graph"
	"msc/internal/pairs"
	"msc/internal/xrand"
)

func chainGraph(t *testing.T, probs []float64) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(len(probs) + 1)
	for i, p := range probs {
		b.AddEdge(graph.NodeID(i), graph.NodeID(i+1), failprob.LengthFromProb(p))
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBestPathMatchesAnalytic(t *testing.T) {
	// 3-hop chain, each hop failing 20%: delivery = 0.8³ = 0.512.
	g := chainGraph(t, []float64{0.2, 0.2, 0.2})
	nw, err := NewNetwork(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := nw.Run([]pairs.Pair{{U: 0, W: 3}}, 40000, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	r := res[0]
	if math.Abs(r.PredictedBestPath-0.512) > 1e-9 {
		t.Fatalf("predicted = %v, want 0.512", r.PredictedBestPath)
	}
	if math.Abs(r.BestPath-0.512) > 0.01 {
		t.Fatalf("simulated = %v, want ≈ 0.512", r.BestPath)
	}
	// Single path: any-path equals best-path.
	if r.AnyPath != r.BestPath {
		t.Fatalf("any-path %v != best-path %v on a chain", r.AnyPath, r.BestPath)
	}
}

func TestShortcutsNeverFail(t *testing.T) {
	g := chainGraph(t, []float64{0.5, 0.5, 0.5})
	nw, err := NewNetwork(g, []graph.Edge{{U: 0, V: 3}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := nw.Run([]pairs.Pair{{U: 0, W: 3}}, 2000, xrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if res[0].BestPath != 1 || res[0].AnyPath != 1 || res[0].PredictedBestPath != 1 {
		t.Fatalf("direct shortcut should be perfect: %+v", res[0])
	}
}

func TestShortcutMidpointImprovesDelivery(t *testing.T) {
	// Chain 0-1-2-3-4 at 30% per hop; shortcut (0, 3) leaves one real hop.
	g := chainGraph(t, []float64{0.3, 0.3, 0.3, 0.3})
	base, err := NewNetwork(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	upgraded, err := NewNetwork(g, []graph.Edge{{U: 0, V: 3}})
	if err != nil {
		t.Fatal(err)
	}
	pr := []pairs.Pair{{U: 0, W: 4}}
	resBase, err := base.Run(pr, 20000, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	resUp, err := upgraded.Run(pr, 20000, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	// Expected: 0.7⁴ ≈ 0.24 before, 0.7 after.
	if math.Abs(resUp[0].PredictedBestPath-0.7) > 1e-9 {
		t.Fatalf("upgraded predicted = %v", resUp[0].PredictedBestPath)
	}
	if resUp[0].BestPath <= resBase[0].BestPath {
		t.Fatalf("shortcut did not help: %v vs %v", resUp[0].BestPath, resBase[0].BestPath)
	}
}

func TestAnyPathAtLeastBestPath(t *testing.T) {
	// Two parallel 2-hop routes: any-path > best-path.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1, failprob.LengthFromProb(0.3))
	b.AddEdge(1, 3, failprob.LengthFromProb(0.3))
	b.AddEdge(0, 2, failprob.LengthFromProb(0.31))
	b.AddEdge(2, 3, failprob.LengthFromProb(0.31))
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	nw, err := NewNetwork(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := nw.Run([]pairs.Pair{{U: 0, W: 3}}, 30000, xrand.New(4))
	if err != nil {
		t.Fatal(err)
	}
	r := res[0]
	if r.AnyPath < r.BestPath {
		t.Fatalf("any-path %v < best-path %v", r.AnyPath, r.BestPath)
	}
	// Analytic any-path: 1 - (1-q1)(1-q2) with q1=0.49, q2≈0.476.
	want := 1 - (1-0.7*0.7)*(1-0.69*0.69)
	if math.Abs(r.AnyPath-want) > 0.02 {
		t.Fatalf("any-path = %v, want ≈ %v", r.AnyPath, want)
	}
}

func TestUnreachablePair(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1, failprob.LengthFromProb(0.1))
	b.AddEdge(2, 3, failprob.LengthFromProb(0.1))
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	nw, err := NewNetwork(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := nw.Run([]pairs.Pair{{U: 0, W: 3}}, 100, xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if res[0].BestPath != 0 || res[0].AnyPath != 0 || res[0].PredictedBestPath != 0 {
		t.Fatalf("disconnected pair delivered: %+v", res[0])
	}
}

func TestRunValidation(t *testing.T) {
	g := chainGraph(t, []float64{0.1})
	nw, err := NewNetwork(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Run([]pairs.Pair{{U: 0, W: 1}}, 0, xrand.New(1)); err == nil {
		t.Fatal("expected ErrTrials")
	}
}
