// Package montecarlo validates placements against the paper's underlying
// delivery semantics by direct simulation.
//
// The MSC formulation promises that a "maintained" pair owns a path whose
// failure probability is ≤ p_t — equivalently, a single transmission along
// that path succeeds with probability ≥ 1 − p_t when links fail
// independently. This package samples link up/down states and measures
// per-pair delivery ratios, both along the designated best path
// (BestPathDelivery — the exact quantity the formulation bounds) and under
// opportunistic any-path routing (AnyPathDelivery — an upper bound that
// flooding would achieve). Examples and tests use it to show the
// end-to-end guarantee actually holds on placed networks.
package montecarlo

import (
	"errors"
	"fmt"

	"msc/internal/failprob"
	"msc/internal/graph"
	"msc/internal/pairs"
	"msc/internal/shortestpath"
	"msc/internal/xrand"
)

// Network couples a base graph with a shortcut placement. Shortcut edges
// never fail (failure probability 0, §III-C).
type Network struct {
	g         *graph.Graph
	shortcuts []graph.Edge
	// edgeFail[i] is the failure probability of base edge i.
	edgeFail []float64
	// aug is the augmented graph used for any-path connectivity checks.
	aug *graph.Graph
}

// NewNetwork prepares a simulation network.
func NewNetwork(g *graph.Graph, shortcuts []graph.Edge) (*Network, error) {
	edges := g.Edges()
	fail := make([]float64, len(edges))
	for i, e := range edges {
		fail[i] = failprob.ProbFromLength(e.Length)
	}
	b := graph.NewBuilder(g.N())
	for _, e := range edges {
		b.AddEdge(e.U, e.V, e.Length)
	}
	for _, f := range shortcuts {
		b.AddEdge(f.U, f.V, 0)
	}
	aug, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("montecarlo: build augmented graph: %w", err)
	}
	return &Network{
		g:         g,
		shortcuts: append([]graph.Edge(nil), shortcuts...),
		edgeFail:  fail,
		aug:       aug,
	}, nil
}

// Result summarizes a delivery simulation for one pair.
type Result struct {
	Pair pairs.Pair
	// BestPath is the fraction of trials in which every link of the
	// designated shortest (most reliable) path survived.
	BestPath float64
	// AnyPath is the fraction of trials in which any surviving route
	// connected the pair (shortcuts always survive).
	AnyPath float64
	// PredictedBestPath is the analytic success probability
	// e^(−d_F(u,w)) of the designated path, for comparison.
	PredictedBestPath float64
}

// ErrTrials is returned for a non-positive trial count.
var ErrTrials = errors.New("montecarlo: trials must be positive")

// Run simulates the given pairs for the given number of independent trials.
// Each trial samples every base link up/down; shortcut links always stay
// up. Deterministic in rng.
func (nw *Network) Run(ps []pairs.Pair, trials int, rng *xrand.Rand) ([]Result, error) {
	if trials <= 0 {
		return nil, fmt.Errorf("%w: %d", ErrTrials, trials)
	}
	// Designated best path per pair, in the augmented metric.
	results := make([]Result, len(ps))
	paths := make([][]graph.NodeID, len(ps))
	for i, p := range ps {
		dist, parent := shortestpath.DijkstraWithParents(nw.aug, p.U)
		paths[i] = shortestpath.PathTo(parent, p.U, p.W)
		results[i] = Result{
			Pair:              p,
			PredictedBestPath: 1 - failprob.ProbFromLength(dist[p.W]),
		}
	}
	up := make([]bool, nw.g.M())
	bestOK := make([]int, len(ps))
	anyOK := make([]int, len(ps))
	for t := 0; t < trials; t++ {
		for i, pf := range nw.edgeFail {
			up[i] = !rng.Bernoulli(pf)
		}
		survivors := nw.survivingGraph(up)
		for i, p := range ps {
			if paths[i] != nil && nw.pathSurvives(paths[i], up) {
				bestOK[i]++
				anyOK[i]++
				continue
			}
			if connected(survivors, p.U, p.W) {
				anyOK[i]++
			}
		}
	}
	for i := range results {
		results[i].BestPath = float64(bestOK[i]) / float64(trials)
		results[i].AnyPath = float64(anyOK[i]) / float64(trials)
	}
	return results, nil
}

// survivingGraph assembles adjacency lists of the up base edges plus all
// shortcuts.
func (nw *Network) survivingGraph(up []bool) [][]graph.NodeID {
	adj := make([][]graph.NodeID, nw.g.N())
	for i, e := range nw.g.Edges() {
		if up[i] {
			adj[e.U] = append(adj[e.U], e.V)
			adj[e.V] = append(adj[e.V], e.U)
		}
	}
	for _, f := range nw.shortcuts {
		adj[f.U] = append(adj[f.U], f.V)
		adj[f.V] = append(adj[f.V], f.U)
	}
	return adj
}

// pathSurvives reports whether every hop of the node path is up. Shortcut
// hops survive unconditionally; a hop that is both a shortcut and a base
// edge counts as surviving (the reliable link carries it).
func (nw *Network) pathSurvives(path []graph.NodeID, up []bool) bool {
	for i := 0; i+1 < len(path); i++ {
		u, v := path[i], path[i+1]
		if nw.isShortcut(u, v) {
			continue
		}
		idx, ok := nw.edgeIndex(u, v)
		if !ok || !up[idx] {
			return false
		}
	}
	return true
}

func (nw *Network) isShortcut(u, v graph.NodeID) bool {
	for _, f := range nw.shortcuts {
		if (f.U == u && f.V == v) || (f.U == v && f.V == u) {
			return true
		}
	}
	return false
}

// edgeIndex finds the base-edge index of (u,v) by binary search over the
// canonical sorted edge list.
func (nw *Network) edgeIndex(u, v graph.NodeID) (int, bool) {
	if u > v {
		u, v = v, u
	}
	edges := nw.g.Edges()
	lo, hi := 0, len(edges)
	for lo < hi {
		mid := (lo + hi) / 2
		e := edges[mid]
		if e.U < u || (e.U == u && e.V < v) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(edges) && edges[lo].U == u && edges[lo].V == v {
		return lo, true
	}
	return 0, false
}

func connected(adj [][]graph.NodeID, src, dst graph.NodeID) bool {
	if src == dst {
		return true
	}
	seen := make([]bool, len(adj))
	stack := []graph.NodeID{src}
	seen[src] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range adj[u] {
			if v == dst {
				return true
			}
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return false
}
