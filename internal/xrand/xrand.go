// Package xrand provides deterministic, seedable random-number helpers used
// by the generators and the randomized placement algorithms.
//
// Every randomized component in this repository receives an explicit *Rand so
// that experiments are reproducible bit-for-bit from a single seed. The
// package wraps math/rand (stdlib) and adds samplers that the algorithms
// need: binomial draws for evolutionary bit-flip mutation, sampling without
// replacement, and seed splitting for independent subsystem streams.
package xrand

import (
	"math"
	"math/rand"
)

// Rand is a deterministic source of randomness. It is NOT safe for
// concurrent use; derive independent streams with Split instead of sharing.
type Rand struct {
	src *rand.Rand
	cnt *countingSource
}

// countingSource wraps a rand.Source64 and counts how many values it has
// produced. Every Int63 or Uint64 call advances the underlying generator by
// exactly one state step, so (seed, draws) fully captures the stream
// position: rebuilding the source and discarding draws values reproduces the
// state bit-for-bit. The wrapper forwards values untouched, so streams are
// identical to an unwrapped math/rand source.
type countingSource struct {
	src   rand.Source64
	seed  int64
	draws uint64
}

func (s *countingSource) Int63() int64 {
	s.draws++
	return s.src.Int63()
}

func (s *countingSource) Uint64() uint64 {
	s.draws++
	return s.src.Uint64()
}

func (s *countingSource) Seed(seed int64) {
	s.seed = seed
	s.draws = 0
	s.src.Seed(seed)
}

// newCounting builds a counting source over the stdlib generator.
func newCounting(seed int64) *countingSource {
	// rand.NewSource's concrete type implements Source64 (one state step
	// per value); the assertion is checked by TestStateRestore.
	return &countingSource{src: rand.NewSource(seed).(rand.Source64), seed: seed}
}

// New returns a Rand seeded with the given seed. Equal seeds yield equal
// streams across runs and platforms.
func New(seed int64) *Rand {
	cnt := newCounting(seed)
	return &Rand{src: rand.New(cnt), cnt: cnt}
}

// State reports the stream position as (seed, draws): the seed the stream
// was created with and the number of values drawn so far. The pair is a
// complete checkpoint — NewFromState(seed, draws) continues the stream
// exactly where r left off.
func (r *Rand) State() (seed int64, draws uint64) {
	return r.cnt.seed, r.cnt.draws
}

// Restore rewinds r to the stream position (seed, draws), discarding its
// current state. Cost is O(draws), which is fine for the checkpoint sizes
// the solvers produce (one draw per mutation or swap decision).
func (r *Rand) Restore(seed int64, draws uint64) {
	cnt := newCounting(seed)
	src := rand.New(cnt)
	for i := uint64(0); i < draws; i++ {
		src.Uint64()
	}
	r.src, r.cnt = src, cnt
}

// NewFromState returns a Rand positioned at (seed, draws), as reported by
// State. NewFromState(s, 0) is equivalent to New(s).
func NewFromState(seed int64, draws uint64) *Rand {
	r := New(seed)
	if draws > 0 {
		r.Restore(seed, draws)
	}
	return r
}

// Split derives a new independent Rand from r. The derived stream is a
// deterministic function of r's current state, so a fixed sequence of Split
// calls is reproducible.
func (r *Rand) Split() *Rand {
	return New(r.src.Int63())
}

// Int63 returns a non-negative pseudo-random 63-bit integer.
func (r *Rand) Int63() int64 { return r.src.Int63() }

// Intn returns a uniform integer in [0, n). It panics if n <= 0, matching
// math/rand semantics.
func (r *Rand) Intn(n int) int { return r.src.Intn(n) }

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 { return r.src.Float64() }

// NormFloat64 returns a standard-normal variate.
func (r *Rand) NormFloat64() float64 { return r.src.NormFloat64() }

// Perm returns a uniform random permutation of [0, n).
func (r *Rand) Perm(n int) []int { return r.src.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) { r.src.Shuffle(n, swap) }

// Bernoulli returns true with probability p. Values of p outside [0, 1] are
// clamped.
func (r *Rand) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.src.Float64() < p
}

// Binomial samples the number of successes among n independent trials with
// success probability p. For small n·p it uses the exact inversion method on
// the Poisson-binomial recurrence; for large n it falls back to a normal
// approximation with continuity correction, which is more than accurate
// enough for mutation-count sampling.
func (r *Rand) Binomial(n int, p float64) int {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	mean := float64(n) * p
	if mean <= 30 {
		return r.binomialInversion(n, p)
	}
	sd := math.Sqrt(mean * (1 - p))
	for {
		v := math.Round(r.src.NormFloat64()*sd + mean)
		if v >= 0 && v <= float64(n) {
			return int(v)
		}
	}
}

// binomialInversion samples Binomial(n, p) by inverting the CDF, walking the
// probability mass from k=0 upward. O(n·p) expected time.
func (r *Rand) binomialInversion(n int, p float64) int {
	q := 1 - p
	// P(X = 0) = q^n, computed in log space to avoid underflow for large n.
	logq := math.Log(q)
	pk := math.Exp(float64(n) * logq)
	u := r.src.Float64()
	cum := pk
	k := 0
	for u > cum && k < n {
		// P(X=k+1) = P(X=k) * (n-k)/(k+1) * p/q
		pk *= float64(n-k) / float64(k+1) * p / q
		cum += pk
		k++
	}
	return k
}

// SampleDistinct returns count distinct uniform integers from [0, n). It
// panics if count > n or count < 0. The result is in random order.
//
// For count much smaller than n it uses rejection with a set; otherwise it
// takes a prefix of a permutation (Floyd's algorithm is avoided for clarity;
// both are O(count) expected).
func (r *Rand) SampleDistinct(n, count int) []int {
	if count < 0 || count > n {
		panic("xrand: SampleDistinct count out of range")
	}
	if count == 0 {
		return nil
	}
	if count*3 >= n {
		perm := r.src.Perm(n)
		return perm[:count]
	}
	seen := make(map[int]struct{}, count)
	out := make([]int, 0, count)
	for len(out) < count {
		v := r.src.Intn(n)
		if _, dup := seen[v]; dup {
			continue
		}
		seen[v] = struct{}{}
		out = append(out, v)
	}
	return out
}

// Exp returns an exponential variate with rate lambda (mean 1/lambda).
// It panics if lambda <= 0.
func (r *Rand) Exp(lambda float64) float64 {
	if lambda <= 0 {
		panic("xrand: Exp requires lambda > 0")
	}
	return r.src.ExpFloat64() / lambda
}
